file(REMOVE_RECURSE
  "CMakeFiles/key_server_test.dir/key_server_test.cc.o"
  "CMakeFiles/key_server_test.dir/key_server_test.cc.o.d"
  "key_server_test"
  "key_server_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/key_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
