# Empty dependencies file for id_tree_test.
# This may be replaced when dependencies are built.
