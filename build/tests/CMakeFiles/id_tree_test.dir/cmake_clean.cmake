file(REMOVE_RECURSE
  "CMakeFiles/id_tree_test.dir/id_tree_test.cc.o"
  "CMakeFiles/id_tree_test.dir/id_tree_test.cc.o.d"
  "id_tree_test"
  "id_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/id_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
