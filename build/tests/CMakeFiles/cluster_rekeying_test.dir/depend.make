# Empty dependencies file for cluster_rekeying_test.
# This may be replaced when dependencies are built.
