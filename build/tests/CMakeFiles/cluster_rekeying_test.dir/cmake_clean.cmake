file(REMOVE_RECURSE
  "CMakeFiles/cluster_rekeying_test.dir/cluster_rekeying_test.cc.o"
  "CMakeFiles/cluster_rekeying_test.dir/cluster_rekeying_test.cc.o.d"
  "cluster_rekeying_test"
  "cluster_rekeying_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_rekeying_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
