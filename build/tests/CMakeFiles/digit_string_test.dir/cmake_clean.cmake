file(REMOVE_RECURSE
  "CMakeFiles/digit_string_test.dir/digit_string_test.cc.o"
  "CMakeFiles/digit_string_test.dir/digit_string_test.cc.o.d"
  "digit_string_test"
  "digit_string_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digit_string_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
