# Empty dependencies file for modified_key_tree_test.
# This may be replaced when dependencies are built.
