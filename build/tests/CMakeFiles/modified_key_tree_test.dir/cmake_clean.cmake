file(REMOVE_RECURSE
  "CMakeFiles/modified_key_tree_test.dir/modified_key_tree_test.cc.o"
  "CMakeFiles/modified_key_tree_test.dir/modified_key_tree_test.cc.o.d"
  "modified_key_tree_test"
  "modified_key_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modified_key_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
