# Empty dependencies file for silk_test.
# This may be replaced when dependencies are built.
