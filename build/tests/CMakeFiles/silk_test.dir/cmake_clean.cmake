file(REMOVE_RECURSE
  "CMakeFiles/silk_test.dir/silk_test.cc.o"
  "CMakeFiles/silk_test.dir/silk_test.cc.o.d"
  "silk_test"
  "silk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
