# Empty dependencies file for rekey_interval_test.
# This may be replaced when dependencies are built.
