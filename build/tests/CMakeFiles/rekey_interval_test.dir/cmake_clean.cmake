file(REMOVE_RECURSE
  "CMakeFiles/rekey_interval_test.dir/rekey_interval_test.cc.o"
  "CMakeFiles/rekey_interval_test.dir/rekey_interval_test.cc.o.d"
  "rekey_interval_test"
  "rekey_interval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rekey_interval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
