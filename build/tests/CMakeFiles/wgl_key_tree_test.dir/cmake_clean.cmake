file(REMOVE_RECURSE
  "CMakeFiles/wgl_key_tree_test.dir/wgl_key_tree_test.cc.o"
  "CMakeFiles/wgl_key_tree_test.dir/wgl_key_tree_test.cc.o.d"
  "wgl_key_tree_test"
  "wgl_key_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgl_key_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
