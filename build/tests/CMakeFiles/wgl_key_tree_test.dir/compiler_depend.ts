# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for wgl_key_tree_test.
