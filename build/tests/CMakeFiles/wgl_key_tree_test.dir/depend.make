# Empty dependencies file for wgl_key_tree_test.
# This may be replaced when dependencies are built.
