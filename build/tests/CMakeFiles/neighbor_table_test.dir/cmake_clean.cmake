file(REMOVE_RECURSE
  "CMakeFiles/neighbor_table_test.dir/neighbor_table_test.cc.o"
  "CMakeFiles/neighbor_table_test.dir/neighbor_table_test.cc.o.d"
  "neighbor_table_test"
  "neighbor_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neighbor_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
