file(REMOVE_RECURSE
  "CMakeFiles/nice_test.dir/nice_test.cc.o"
  "CMakeFiles/nice_test.dir/nice_test.cc.o.d"
  "nice_test"
  "nice_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
