# Empty dependencies file for nice_test.
# This may be replaced when dependencies are built.
