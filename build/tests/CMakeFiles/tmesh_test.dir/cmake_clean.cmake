file(REMOVE_RECURSE
  "CMakeFiles/tmesh_test.dir/tmesh_test.cc.o"
  "CMakeFiles/tmesh_test.dir/tmesh_test.cc.o.d"
  "tmesh_test"
  "tmesh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmesh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
