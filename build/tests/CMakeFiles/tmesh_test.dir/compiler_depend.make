# Empty compiler generated dependencies file for tmesh_test.
# This may be replaced when dependencies are built.
