# Empty compiler generated dependencies file for gnp_test.
# This may be replaced when dependencies are built.
