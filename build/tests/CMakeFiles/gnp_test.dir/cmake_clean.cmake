file(REMOVE_RECURSE
  "CMakeFiles/gnp_test.dir/gnp_test.cc.o"
  "CMakeFiles/gnp_test.dir/gnp_test.cc.o.d"
  "gnp_test"
  "gnp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gnp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
