file(REMOVE_RECURSE
  "CMakeFiles/ip_multicast_test.dir/ip_multicast_test.cc.o"
  "CMakeFiles/ip_multicast_test.dir/ip_multicast_test.cc.o.d"
  "ip_multicast_test"
  "ip_multicast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ip_multicast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
