# Empty compiler generated dependencies file for online_rekeying.
# This may be replaced when dependencies are built.
