file(REMOVE_RECURSE
  "CMakeFiles/online_rekeying.dir/online_rekeying.cpp.o"
  "CMakeFiles/online_rekeying.dir/online_rekeying.cpp.o.d"
  "online_rekeying"
  "online_rekeying.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_rekeying.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
