# Empty compiler generated dependencies file for payperview_churn.
# This may be replaced when dependencies are built.
