file(REMOVE_RECURSE
  "CMakeFiles/payperview_churn.dir/payperview_churn.cpp.o"
  "CMakeFiles/payperview_churn.dir/payperview_churn.cpp.o.d"
  "payperview_churn"
  "payperview_churn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payperview_churn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
