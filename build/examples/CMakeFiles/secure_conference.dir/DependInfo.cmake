
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/secure_conference.cpp" "examples/CMakeFiles/secure_conference.dir/secure_conference.cpp.o" "gcc" "examples/CMakeFiles/secure_conference.dir/secure_conference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocols/CMakeFiles/tmesh_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tmesh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nice/CMakeFiles/tmesh_nice.dir/DependInfo.cmake"
  "/root/repo/build/src/ipmc/CMakeFiles/tmesh_ipmc.dir/DependInfo.cmake"
  "/root/repo/build/src/keytree/CMakeFiles/tmesh_keytree.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tmesh_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/tmesh_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tmesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
