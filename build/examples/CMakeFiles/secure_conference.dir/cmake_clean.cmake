file(REMOVE_RECURSE
  "CMakeFiles/secure_conference.dir/secure_conference.cpp.o"
  "CMakeFiles/secure_conference.dir/secure_conference.cpp.o.d"
  "secure_conference"
  "secure_conference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_conference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
