# Empty compiler generated dependencies file for secure_conference.
# This may be replaced when dependencies are built.
