file(REMOVE_RECURSE
  "CMakeFiles/tmesh_metrics.dir/report.cc.o"
  "CMakeFiles/tmesh_metrics.dir/report.cc.o.d"
  "libtmesh_metrics.a"
  "libtmesh_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmesh_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
