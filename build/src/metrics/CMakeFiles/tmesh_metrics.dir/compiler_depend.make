# Empty compiler generated dependencies file for tmesh_metrics.
# This may be replaced when dependencies are built.
