file(REMOVE_RECURSE
  "libtmesh_metrics.a"
)
