file(REMOVE_RECURSE
  "libtmesh_keytree.a"
)
