# Empty compiler generated dependencies file for tmesh_keytree.
# This may be replaced when dependencies are built.
