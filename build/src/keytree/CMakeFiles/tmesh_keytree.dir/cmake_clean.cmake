file(REMOVE_RECURSE
  "CMakeFiles/tmesh_keytree.dir/wgl_key_tree.cc.o"
  "CMakeFiles/tmesh_keytree.dir/wgl_key_tree.cc.o.d"
  "libtmesh_keytree.a"
  "libtmesh_keytree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmesh_keytree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
