# Empty dependencies file for tmesh_common.
# This may be replaced when dependencies are built.
