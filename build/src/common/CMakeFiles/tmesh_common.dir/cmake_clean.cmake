file(REMOVE_RECURSE
  "CMakeFiles/tmesh_common.dir/stats.cc.o"
  "CMakeFiles/tmesh_common.dir/stats.cc.o.d"
  "libtmesh_common.a"
  "libtmesh_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmesh_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
