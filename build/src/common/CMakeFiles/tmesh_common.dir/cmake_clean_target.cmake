file(REMOVE_RECURSE
  "libtmesh_common.a"
)
