file(REMOVE_RECURSE
  "CMakeFiles/tmesh_nice.dir/nice_overlay.cc.o"
  "CMakeFiles/tmesh_nice.dir/nice_overlay.cc.o.d"
  "libtmesh_nice.a"
  "libtmesh_nice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmesh_nice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
