# Empty compiler generated dependencies file for tmesh_nice.
# This may be replaced when dependencies are built.
