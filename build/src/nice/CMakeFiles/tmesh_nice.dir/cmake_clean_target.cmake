file(REMOVE_RECURSE
  "libtmesh_nice.a"
)
