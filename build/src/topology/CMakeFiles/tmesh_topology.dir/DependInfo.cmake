
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/gnp.cc" "src/topology/CMakeFiles/tmesh_topology.dir/gnp.cc.o" "gcc" "src/topology/CMakeFiles/tmesh_topology.dir/gnp.cc.o.d"
  "/root/repo/src/topology/graph.cc" "src/topology/CMakeFiles/tmesh_topology.dir/graph.cc.o" "gcc" "src/topology/CMakeFiles/tmesh_topology.dir/graph.cc.o.d"
  "/root/repo/src/topology/gtitm.cc" "src/topology/CMakeFiles/tmesh_topology.dir/gtitm.cc.o" "gcc" "src/topology/CMakeFiles/tmesh_topology.dir/gtitm.cc.o.d"
  "/root/repo/src/topology/planetlab.cc" "src/topology/CMakeFiles/tmesh_topology.dir/planetlab.cc.o" "gcc" "src/topology/CMakeFiles/tmesh_topology.dir/planetlab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tmesh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
