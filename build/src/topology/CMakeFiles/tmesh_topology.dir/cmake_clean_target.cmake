file(REMOVE_RECURSE
  "libtmesh_topology.a"
)
