file(REMOVE_RECURSE
  "CMakeFiles/tmesh_topology.dir/gnp.cc.o"
  "CMakeFiles/tmesh_topology.dir/gnp.cc.o.d"
  "CMakeFiles/tmesh_topology.dir/graph.cc.o"
  "CMakeFiles/tmesh_topology.dir/graph.cc.o.d"
  "CMakeFiles/tmesh_topology.dir/gtitm.cc.o"
  "CMakeFiles/tmesh_topology.dir/gtitm.cc.o.d"
  "CMakeFiles/tmesh_topology.dir/planetlab.cc.o"
  "CMakeFiles/tmesh_topology.dir/planetlab.cc.o.d"
  "libtmesh_topology.a"
  "libtmesh_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmesh_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
