# Empty compiler generated dependencies file for tmesh_topology.
# This may be replaced when dependencies are built.
