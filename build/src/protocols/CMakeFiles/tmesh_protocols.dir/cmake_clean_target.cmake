file(REMOVE_RECURSE
  "libtmesh_protocols.a"
)
