# Empty dependencies file for tmesh_protocols.
# This may be replaced when dependencies are built.
