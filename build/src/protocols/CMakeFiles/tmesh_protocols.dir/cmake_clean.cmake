file(REMOVE_RECURSE
  "CMakeFiles/tmesh_protocols.dir/group_session.cc.o"
  "CMakeFiles/tmesh_protocols.dir/group_session.cc.o.d"
  "CMakeFiles/tmesh_protocols.dir/latency_experiment.cc.o"
  "CMakeFiles/tmesh_protocols.dir/latency_experiment.cc.o.d"
  "CMakeFiles/tmesh_protocols.dir/nice_accounting.cc.o"
  "CMakeFiles/tmesh_protocols.dir/nice_accounting.cc.o.d"
  "CMakeFiles/tmesh_protocols.dir/rekey_cost_experiment.cc.o"
  "CMakeFiles/tmesh_protocols.dir/rekey_cost_experiment.cc.o.d"
  "CMakeFiles/tmesh_protocols.dir/rekey_protocols.cc.o"
  "CMakeFiles/tmesh_protocols.dir/rekey_protocols.cc.o.d"
  "libtmesh_protocols.a"
  "libtmesh_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmesh_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
