file(REMOVE_RECURSE
  "CMakeFiles/tmesh_core.dir/cluster_rekeying.cc.o"
  "CMakeFiles/tmesh_core.dir/cluster_rekeying.cc.o.d"
  "CMakeFiles/tmesh_core.dir/directory.cc.o"
  "CMakeFiles/tmesh_core.dir/directory.cc.o.d"
  "CMakeFiles/tmesh_core.dir/id_assignment.cc.o"
  "CMakeFiles/tmesh_core.dir/id_assignment.cc.o.d"
  "CMakeFiles/tmesh_core.dir/id_tree.cc.o"
  "CMakeFiles/tmesh_core.dir/id_tree.cc.o.d"
  "CMakeFiles/tmesh_core.dir/key_server.cc.o"
  "CMakeFiles/tmesh_core.dir/key_server.cc.o.d"
  "CMakeFiles/tmesh_core.dir/modified_key_tree.cc.o"
  "CMakeFiles/tmesh_core.dir/modified_key_tree.cc.o.d"
  "CMakeFiles/tmesh_core.dir/neighbor_table.cc.o"
  "CMakeFiles/tmesh_core.dir/neighbor_table.cc.o.d"
  "CMakeFiles/tmesh_core.dir/silk.cc.o"
  "CMakeFiles/tmesh_core.dir/silk.cc.o.d"
  "CMakeFiles/tmesh_core.dir/tmesh.cc.o"
  "CMakeFiles/tmesh_core.dir/tmesh.cc.o.d"
  "CMakeFiles/tmesh_core.dir/wire.cc.o"
  "CMakeFiles/tmesh_core.dir/wire.cc.o.d"
  "libtmesh_core.a"
  "libtmesh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmesh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
