file(REMOVE_RECURSE
  "libtmesh_core.a"
)
