# Empty dependencies file for tmesh_core.
# This may be replaced when dependencies are built.
