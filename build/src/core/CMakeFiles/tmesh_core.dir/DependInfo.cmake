
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster_rekeying.cc" "src/core/CMakeFiles/tmesh_core.dir/cluster_rekeying.cc.o" "gcc" "src/core/CMakeFiles/tmesh_core.dir/cluster_rekeying.cc.o.d"
  "/root/repo/src/core/directory.cc" "src/core/CMakeFiles/tmesh_core.dir/directory.cc.o" "gcc" "src/core/CMakeFiles/tmesh_core.dir/directory.cc.o.d"
  "/root/repo/src/core/id_assignment.cc" "src/core/CMakeFiles/tmesh_core.dir/id_assignment.cc.o" "gcc" "src/core/CMakeFiles/tmesh_core.dir/id_assignment.cc.o.d"
  "/root/repo/src/core/id_tree.cc" "src/core/CMakeFiles/tmesh_core.dir/id_tree.cc.o" "gcc" "src/core/CMakeFiles/tmesh_core.dir/id_tree.cc.o.d"
  "/root/repo/src/core/key_server.cc" "src/core/CMakeFiles/tmesh_core.dir/key_server.cc.o" "gcc" "src/core/CMakeFiles/tmesh_core.dir/key_server.cc.o.d"
  "/root/repo/src/core/modified_key_tree.cc" "src/core/CMakeFiles/tmesh_core.dir/modified_key_tree.cc.o" "gcc" "src/core/CMakeFiles/tmesh_core.dir/modified_key_tree.cc.o.d"
  "/root/repo/src/core/neighbor_table.cc" "src/core/CMakeFiles/tmesh_core.dir/neighbor_table.cc.o" "gcc" "src/core/CMakeFiles/tmesh_core.dir/neighbor_table.cc.o.d"
  "/root/repo/src/core/silk.cc" "src/core/CMakeFiles/tmesh_core.dir/silk.cc.o" "gcc" "src/core/CMakeFiles/tmesh_core.dir/silk.cc.o.d"
  "/root/repo/src/core/tmesh.cc" "src/core/CMakeFiles/tmesh_core.dir/tmesh.cc.o" "gcc" "src/core/CMakeFiles/tmesh_core.dir/tmesh.cc.o.d"
  "/root/repo/src/core/wire.cc" "src/core/CMakeFiles/tmesh_core.dir/wire.cc.o" "gcc" "src/core/CMakeFiles/tmesh_core.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tmesh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tmesh_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/keytree/CMakeFiles/tmesh_keytree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
