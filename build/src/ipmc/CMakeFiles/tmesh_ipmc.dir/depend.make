# Empty dependencies file for tmesh_ipmc.
# This may be replaced when dependencies are built.
