file(REMOVE_RECURSE
  "CMakeFiles/tmesh_ipmc.dir/ip_multicast.cc.o"
  "CMakeFiles/tmesh_ipmc.dir/ip_multicast.cc.o.d"
  "libtmesh_ipmc.a"
  "libtmesh_ipmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmesh_ipmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
