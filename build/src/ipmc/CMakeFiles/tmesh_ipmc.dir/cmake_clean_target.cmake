file(REMOVE_RECURSE
  "libtmesh_ipmc.a"
)
