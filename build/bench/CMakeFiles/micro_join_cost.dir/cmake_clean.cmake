file(REMOVE_RECURSE
  "CMakeFiles/micro_join_cost.dir/micro_join_cost.cc.o"
  "CMakeFiles/micro_join_cost.dir/micro_join_cost.cc.o.d"
  "micro_join_cost"
  "micro_join_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_join_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
