# Empty compiler generated dependencies file for micro_join_cost.
# This may be replaced when dependencies are built.
