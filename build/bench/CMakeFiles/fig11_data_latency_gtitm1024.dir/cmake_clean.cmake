file(REMOVE_RECURSE
  "CMakeFiles/fig11_data_latency_gtitm1024.dir/fig11_data_latency_gtitm1024.cc.o"
  "CMakeFiles/fig11_data_latency_gtitm1024.dir/fig11_data_latency_gtitm1024.cc.o.d"
  "fig11_data_latency_gtitm1024"
  "fig11_data_latency_gtitm1024.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_data_latency_gtitm1024.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
