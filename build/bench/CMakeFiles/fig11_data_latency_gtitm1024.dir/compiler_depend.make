# Empty compiler generated dependencies file for fig11_data_latency_gtitm1024.
# This may be replaced when dependencies are built.
