# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig11_data_latency_gtitm1024.
