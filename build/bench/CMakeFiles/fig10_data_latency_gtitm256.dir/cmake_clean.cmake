file(REMOVE_RECURSE
  "CMakeFiles/fig10_data_latency_gtitm256.dir/fig10_data_latency_gtitm256.cc.o"
  "CMakeFiles/fig10_data_latency_gtitm256.dir/fig10_data_latency_gtitm256.cc.o.d"
  "fig10_data_latency_gtitm256"
  "fig10_data_latency_gtitm256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_data_latency_gtitm256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
