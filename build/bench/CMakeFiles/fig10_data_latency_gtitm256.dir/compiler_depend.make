# Empty compiler generated dependencies file for fig10_data_latency_gtitm256.
# This may be replaced when dependencies are built.
