file(REMOVE_RECURSE
  "CMakeFiles/ablation_id_assignment.dir/ablation_id_assignment.cc.o"
  "CMakeFiles/ablation_id_assignment.dir/ablation_id_assignment.cc.o.d"
  "ablation_id_assignment"
  "ablation_id_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_id_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
