# Empty compiler generated dependencies file for ablation_id_assignment.
# This may be replaced when dependencies are built.
