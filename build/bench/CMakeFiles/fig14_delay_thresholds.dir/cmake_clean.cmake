file(REMOVE_RECURSE
  "CMakeFiles/fig14_delay_thresholds.dir/fig14_delay_thresholds.cc.o"
  "CMakeFiles/fig14_delay_thresholds.dir/fig14_delay_thresholds.cc.o.d"
  "fig14_delay_thresholds"
  "fig14_delay_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_delay_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
