# Empty dependencies file for fig14_delay_thresholds.
# This may be replaced when dependencies are built.
