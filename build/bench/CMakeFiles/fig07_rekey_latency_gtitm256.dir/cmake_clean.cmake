file(REMOVE_RECURSE
  "CMakeFiles/fig07_rekey_latency_gtitm256.dir/fig07_rekey_latency_gtitm256.cc.o"
  "CMakeFiles/fig07_rekey_latency_gtitm256.dir/fig07_rekey_latency_gtitm256.cc.o.d"
  "fig07_rekey_latency_gtitm256"
  "fig07_rekey_latency_gtitm256.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_rekey_latency_gtitm256.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
