# Empty compiler generated dependencies file for fig07_rekey_latency_gtitm256.
# This may be replaced when dependencies are built.
