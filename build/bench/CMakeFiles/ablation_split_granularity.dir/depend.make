# Empty dependencies file for ablation_split_granularity.
# This may be replaced when dependencies are built.
