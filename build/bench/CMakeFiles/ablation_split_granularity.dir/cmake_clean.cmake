file(REMOVE_RECURSE
  "CMakeFiles/ablation_split_granularity.dir/ablation_split_granularity.cc.o"
  "CMakeFiles/ablation_split_granularity.dir/ablation_split_granularity.cc.o.d"
  "ablation_split_granularity"
  "ablation_split_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_split_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
