file(REMOVE_RECURSE
  "CMakeFiles/fig08_rekey_latency_gtitm1024.dir/fig08_rekey_latency_gtitm1024.cc.o"
  "CMakeFiles/fig08_rekey_latency_gtitm1024.dir/fig08_rekey_latency_gtitm1024.cc.o.d"
  "fig08_rekey_latency_gtitm1024"
  "fig08_rekey_latency_gtitm1024.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_rekey_latency_gtitm1024.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
