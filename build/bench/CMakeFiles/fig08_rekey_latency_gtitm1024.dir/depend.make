# Empty dependencies file for fig08_rekey_latency_gtitm1024.
# This may be replaced when dependencies are built.
