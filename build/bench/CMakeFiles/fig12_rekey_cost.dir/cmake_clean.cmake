file(REMOVE_RECURSE
  "CMakeFiles/fig12_rekey_cost.dir/fig12_rekey_cost.cc.o"
  "CMakeFiles/fig12_rekey_cost.dir/fig12_rekey_cost.cc.o.d"
  "fig12_rekey_cost"
  "fig12_rekey_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_rekey_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
