# Empty compiler generated dependencies file for fig12_rekey_cost.
# This may be replaced when dependencies are built.
