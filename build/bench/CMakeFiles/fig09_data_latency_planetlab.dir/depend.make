# Empty dependencies file for fig09_data_latency_planetlab.
# This may be replaced when dependencies are built.
