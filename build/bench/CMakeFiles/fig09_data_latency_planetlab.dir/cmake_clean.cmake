file(REMOVE_RECURSE
  "CMakeFiles/fig09_data_latency_planetlab.dir/fig09_data_latency_planetlab.cc.o"
  "CMakeFiles/fig09_data_latency_planetlab.dir/fig09_data_latency_planetlab.cc.o.d"
  "fig09_data_latency_planetlab"
  "fig09_data_latency_planetlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_data_latency_planetlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
