file(REMOVE_RECURSE
  "CMakeFiles/fig06_rekey_latency_planetlab.dir/fig06_rekey_latency_planetlab.cc.o"
  "CMakeFiles/fig06_rekey_latency_planetlab.dir/fig06_rekey_latency_planetlab.cc.o.d"
  "fig06_rekey_latency_planetlab"
  "fig06_rekey_latency_planetlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_rekey_latency_planetlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
