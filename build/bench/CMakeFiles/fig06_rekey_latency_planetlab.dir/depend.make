# Empty dependencies file for fig06_rekey_latency_planetlab.
# This may be replaced when dependencies are built.
