// Differential equivalence suite: the flat WglKeyTree / ModifiedKeyTree
// against the frozen seed baselines (keytree/seed_wgl_key_tree.h,
// keytree/seed_modified_key_tree.h).
//
// The flat rewrites promise *byte-identical* observable behavior — the same
// RekeyMessage (content and order), KeysHeld, PathNodes, and key versions —
// on every schedule where both can run. This suite drives both
// implementations through 56 randomized churn schedules (joins, leaves,
// failures-as-leaves; WGL degrees 2/3/4/8; modified-tree shapes up to
// depth 5 × base 6; serial and sharded rekeying) plus the streaming-rekey
// edge cases, asserting equality at every interval. It also pins the
// complexity contract of the flat layout via operation counters: rekey
// work, placement scans, and MembersNeeding visits must track the affected
// subtree, not the population.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/modified_key_tree.h"
#include "keytree/seed_modified_key_tree.h"
#include "keytree/seed_wgl_key_tree.h"
#include "keytree/wgl_key_tree.h"

namespace tmesh {
namespace {

std::vector<MemberId> Iota(int n, int from = 0) {
  std::vector<MemberId> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = from + i;
  return v;
}

void ExpectSameMessage(const RekeyMessage& flat, const RekeyMessage& seed,
                       const char* what) {
  ASSERT_EQ(flat.encryptions.size(), seed.encryptions.size()) << what;
  for (std::size_t i = 0; i < flat.encryptions.size(); ++i) {
    const Encryption& a = flat.encryptions[i];
    const Encryption& b = seed.encryptions[i];
    ASSERT_TRUE(a == b) << what << ": encryption " << i << " differs — flat ("
                        << a.enc_key_id.ToString() << " v"
                        << a.enc_key_version << " -> "
                        << a.new_key_id.ToString() << " v" << a.new_key_version
                        << " wgl " << a.wgl_enc_node << "/" << a.wgl_new_node
                        << ") vs seed (" << b.enc_key_id.ToString() << " v"
                        << b.enc_key_version << " -> "
                        << b.new_key_id.ToString() << " v" << b.new_key_version
                        << " wgl " << b.wgl_enc_node << "/" << b.wgl_new_node
                        << ")";
  }
}

// ---------------------------------------------------------------------------
// WGL tree: 32 randomized schedules (4 degrees x 8 seeds), 40 intervals
// each, three starting modes (balanced build, incremental build, empty).
// ---------------------------------------------------------------------------

void CompareWglState(const WglKeyTree& flat, const SeedWglKeyTree& seed,
                     const std::vector<MemberId>& present) {
  ASSERT_EQ(flat.member_count(), seed.member_count());
  for (MemberId m : present) {
    ASSERT_TRUE(flat.Contains(m) && seed.Contains(m));
    ASSERT_EQ(flat.KeysHeld(m), seed.KeysHeld(m)) << "member " << m;
    ASSERT_EQ(flat.PathNodes(m), seed.PathNodes(m)) << "member " << m;
  }
  flat.CheckInvariants();
  seed.CheckInvariants();
}

class WglDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WglDifferentialTest, FortyIntervalChurnScheduleMatchesSeed) {
  auto [degree, schedule_seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(degree * 1000 + schedule_seed));
  WglKeyTree flat(degree);
  SeedWglKeyTree seed(degree);
  std::vector<MemberId> present;
  int next_id = 0;

  // Vary the starting mode across schedules.
  switch (schedule_seed % 3) {
    case 0: {  // full balanced start at degree^3
      int n = degree * degree * degree;
      std::vector<MemberId> init = Iota(n);
      next_id = n;
      flat.BuildFullBalanced(init);
      seed.BuildFullBalanced(init);
      present = init;
      break;
    }
    case 1: {  // incremental start at a non-power population
      std::vector<MemberId> init = Iota(degree * degree + degree / 2 + 1);
      next_id = static_cast<int>(init.size());
      flat.BuildIncremental(init);
      seed.BuildIncremental(init);
      present = init;
      break;
    }
    default:  // empty start: the first interval creates the root
      break;
  }
  CompareWglState(flat, seed, present);

  for (int interval = 0; interval < 40; ++interval) {
    int nj = static_cast<int>(rng.UniformInt(0, 6));
    int nl = static_cast<int>(
        rng.UniformInt(0, std::min<std::int64_t>(6, present.size())));
    std::vector<MemberId> joins;
    for (int i = 0; i < nj; ++i) joins.push_back(next_id++);
    std::vector<MemberId> shuffled = present;
    rng.Shuffle(shuffled);
    std::vector<MemberId> leaves(shuffled.begin(), shuffled.begin() + nl);

    RekeyMessage flat_msg = flat.Rekey(joins, leaves);
    RekeyMessage seed_msg = seed.Rekey(joins, leaves);
    ExpectSameMessage(flat_msg, seed_msg, "wgl interval");

    for (MemberId m : leaves) {
      present.erase(std::find(present.begin(), present.end(), m));
    }
    for (MemberId m : joins) present.push_back(m);
    CompareWglState(flat, seed, present);
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, WglDifferentialTest,
                         ::testing::Combine(::testing::Values(2, 3, 4, 8),
                                            ::testing::Range(0, 8)));

// ---------------------------------------------------------------------------
// Streaming-vs-materialized edge cases. The seed IS the old
// set-materializing path (bitmap over all node ids, O(N) sweep), so these
// pin that the streamed marked-subtree walk emits exactly the same
// encryptions in the cases where the two approaches are easiest to get
// to disagree.
// ---------------------------------------------------------------------------

TEST(WglStreamingRekey, EmptyBatchEmitsNothing) {
  WglKeyTree flat(4);
  SeedWglKeyTree seed(4);
  flat.BuildFullBalanced(Iota(16));
  seed.BuildFullBalanced(Iota(16));
  ExpectSameMessage(flat.Rekey({}, {}), seed.Rekey({}, {}), "empty batch");
  ASSERT_EQ(flat.Rekey({}, {}).RekeyCost(), 0u);
}

TEST(WglStreamingRekey, AllLeaveDrainsIdentically) {
  // Drain to empty: the last detach leaves a childless root; the streamed
  // walk must still renew the same surviving k-nodes the bitmap sweep did,
  // in the same order.
  WglKeyTree flat(3);
  SeedWglKeyTree seed(3);
  flat.BuildFullBalanced(Iota(27));
  seed.BuildFullBalanced(Iota(27));
  ExpectSameMessage(flat.Rekey({}, Iota(27)), seed.Rekey({}, Iota(27)),
                    "all-leave");
  ASSERT_EQ(flat.member_count(), 0);
  flat.CheckInvariants();
  // Regrow over the freed ids: allocation order (LIFO free list) must match.
  ExpectSameMessage(flat.Rekey(Iota(5, 100), {}), seed.Rekey(Iota(5, 100), {}),
                    "regrow");
  flat.CheckInvariants();
  seed.CheckInvariants();
}

TEST(WglStreamingRekey, JoinFillsDepartedSlotIdentically) {
  // J == L: every join reuses a departed leaf position; the only marks are
  // the reused leaves themselves.
  WglKeyTree flat(4);
  SeedWglKeyTree seed(4);
  flat.BuildFullBalanced(Iota(64));
  seed.BuildFullBalanced(Iota(64));
  ExpectSameMessage(flat.Rekey({100, 101, 102}, {5, 21, 40}),
                    seed.Rekey({100, 101, 102}, {5, 21, 40}),
                    "slot reuse");
  ASSERT_EQ(flat.LeafDepth(100), seed.LeafDepth(100));
}

TEST(WglStreamingRekey, PruneThenSplitReusesIdsIdentically) {
  // Leaves prune a whole subtree (freeing k-node ids), then extra joins
  // split shallow leaves — the new nodes must take the same recycled ids
  // and the marks on since-freed ids must resolve the same way.
  WglKeyTree flat(2);
  SeedWglKeyTree seed(2);
  flat.BuildFullBalanced(Iota(16));
  seed.BuildFullBalanced(Iota(16));
  std::vector<MemberId> leaves = {0, 1, 2, 3};           // kills two k-nodes
  std::vector<MemberId> joins = {50, 51, 52, 53, 54, 55};  // 2 reuse + 4 new
  ExpectSameMessage(flat.Rekey(joins, leaves), seed.Rekey(joins, leaves),
                    "prune+split");
  for (MemberId m : joins) {
    ASSERT_EQ(flat.PathNodes(m), seed.PathNodes(m));
  }
  flat.CheckInvariants();
}

// ---------------------------------------------------------------------------
// Modified key tree: 24 randomized schedules (4 shapes x 6 seeds), serial
// AND sharded rekeying side by side against the seed.
// ---------------------------------------------------------------------------

class ModifiedDifferentialTest
    : public ::testing::TestWithParam<std::tuple<std::tuple<int, int>, int>> {
};

TEST_P(ModifiedDifferentialTest, ChurnScheduleMatchesSeedSerialAndSharded) {
  auto [shape, schedule_seed] = GetParam();
  auto [depth, base] = shape;
  Rng rng(static_cast<std::uint64_t>(depth * 10000 + base * 100 +
                                     schedule_seed));
  SeedModifiedKeyTree seed(depth);
  ModifiedKeyTree serial(depth);
  ModifiedKeyTree sharded(depth);
  const int shards = 2 + schedule_seed % 3;  // 2..4 worker threads
  std::vector<UserId> members;

  for (int interval = 0; interval < 25; ++interval) {
    int nj = static_cast<int>(rng.UniformInt(0, 5));
    int nl = static_cast<int>(
        rng.UniformInt(0, std::min<std::int64_t>(4, members.size())));
    for (int j = 0; j < nj; ++j) {
      UserId id;
      for (int i = 0; i < depth; ++i) {
        id.Append(static_cast<int>(rng.UniformInt(0, base - 1)));
      }
      if (seed.Contains(id)) continue;
      seed.Join(id);
      serial.Join(id);
      sharded.Join(id);
      members.push_back(id);
    }
    for (int l = 0; l < nl && !members.empty(); ++l) {
      std::size_t i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(members.size()) - 1));
      seed.Leave(members[i]);
      serial.Leave(members[i]);
      sharded.Leave(members[i]);
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(i));
    }
    ASSERT_EQ(serial.pending_changes(), seed.pending_changes());

    RekeyMessage seed_msg = seed.Rekey();
    ExpectSameMessage(serial.Rekey(), seed_msg, "serial interval");
    ExpectSameMessage(sharded.Rekey(shards), seed_msg, "sharded interval");

    ASSERT_EQ(serial.user_count(), seed.user_count());
    ASSERT_EQ(serial.knode_count(), seed.knode_count());
    ASSERT_EQ(sharded.knode_count(), seed.knode_count());
    for (const UserId& u : members) {
      for (int len = 0; len <= depth; ++len) {
        KeyId k = u.Prefix(len);
        ASSERT_EQ(serial.KeyVersion(k), seed.KeyVersion(k))
            << "key " << k.ToString();
        ASSERT_EQ(sharded.KeyVersion(k), seed.KeyVersion(k))
            << "key " << k.ToString();
      }
      ASSERT_EQ(serial.KeysOf(u), seed.KeysOf(u));
    }
    serial.CheckInvariants();
    sharded.CheckInvariants();
    seed.CheckInvariants();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ModifiedDifferentialTest,
    ::testing::Combine(::testing::Values(std::make_tuple(2, 3),
                                         std::make_tuple(3, 3),
                                         std::make_tuple(4, 4),
                                         std::make_tuple(5, 6)),
                       ::testing::Range(0, 6)));

TEST(ModifiedStreamingRekey, JoinThenLeaveSameIntervalMatchesSeed) {
  // The joiner held the keys it was unicast, so the surviving path must
  // rotate even though the net membership change is zero — the streamed
  // dirty list must keep the marks of the pruned-and-recreated path.
  SeedModifiedKeyTree seed(3);
  ModifiedKeyTree flat(3);
  for (auto u : {UserId{0, 0, 0}, UserId{1, 2, 0}}) {
    seed.Join(u);
    flat.Join(u);
  }
  ExpectSameMessage(flat.Rekey(), seed.Rekey(), "settle");
  seed.Join(UserId{0, 1, 1});
  flat.Join(UserId{0, 1, 1});
  seed.Leave(UserId{0, 1, 1});
  flat.Leave(UserId{0, 1, 1});
  ExpectSameMessage(flat.Rekey(), seed.Rekey(), "join+leave");
  seed.CheckInvariants();
  flat.CheckInvariants();
}

TEST(ModifiedStreamingRekey, RecreatedNodeResumesRetiredVersionChain) {
  // Forward secrecy across pruning: a re-created k-node must resume one
  // past its retired version in both implementations.
  SeedModifiedKeyTree seed(2);
  ModifiedKeyTree flat(2);
  for (auto u : {UserId{0, 0}, UserId{1, 0}}) {
    seed.Join(u);
    flat.Join(u);
  }
  ExpectSameMessage(flat.Rekey(), seed.Rekey(), "settle");
  seed.Leave(UserId{0, 0});
  flat.Leave(UserId{0, 0});
  ExpectSameMessage(flat.Rekey(), seed.Rekey(), "prune [0]");
  seed.Join(UserId{0, 1});
  flat.Join(UserId{0, 1});
  ASSERT_EQ(flat.KeyVersion(DigitString{0}), seed.KeyVersion(DigitString{0}));
  ExpectSameMessage(flat.Rekey(), seed.Rekey(), "recreate [0]");
}

// ---------------------------------------------------------------------------
// Complexity pins: the flat layout's operation counters must track the
// affected subtree, not the population. These are the regressions the
// O(N)-per-call ShallowLeaf/MembersNeeding scans (and the O(N) bitmap
// sweep) would trip immediately.
// ---------------------------------------------------------------------------

TEST(WglComplexity, SlotReuseRekeyDoesNoPlacementScanAtAnySize) {
  for (int levels : {3, 7}) {  // 64 and 16384 members, degree 4
    int n = 1;
    for (int i = 0; i < levels; ++i) n *= 4;
    WglKeyTree t(4);
    t.BuildFullBalanced(Iota(n));
    t.ResetOpStats();
    (void)t.Rekey({n + 1, n + 2}, {0, 1});
    const WglKeyTree::OpStats& s = t.op_stats();
    // Pure slot reuse: no join placement, so no descent at all; the
    // streamed walk touches only the two changed root paths.
    EXPECT_EQ(s.shallow_scan_steps, 0u) << "n=" << n;
    EXPECT_LE(s.rekey_marked_nodes, 2u * (static_cast<unsigned>(levels) + 1))
        << "n=" << n;
  }
}

TEST(WglComplexity, PureJoinPlacementScanIsDepthBounded) {
  // The seed's BFS visited O(N) nodes to find a placement in a full tree.
  // The augmented descent must touch at most degree*depth records per join.
  const int n = 16384;  // 4^7, full: every join splits a shallowest leaf
  WglKeyTree t(4);
  t.BuildFullBalanced(Iota(n));
  t.ResetOpStats();
  (void)t.Rekey({n + 1}, {});
  const WglKeyTree::OpStats& s = t.op_stats();
  EXPECT_GT(s.shallow_scan_steps, 0u);
  EXPECT_LE(s.shallow_scan_steps, 64u);  // ~ (degree+1) * depth, not ~ N
  EXPECT_LE(s.rekey_marked_nodes, 32u);
}

TEST(WglComplexity, MembersNeedingVisitsOnlyTheEncryptingSubtree) {
  WglKeyTree t(4);
  t.BuildFullBalanced(Iota(1024));  // 4^5
  RekeyMessage msg = t.Rekey({}, {0});
  ASSERT_FALSE(msg.encryptions.empty());
  // The deepest updated k-node's encryptions have leaf children: the walk
  // must visit just that node and its children, independent of the 1024
  // member population.
  const Encryption& leaf_level = msg.encryptions.front();
  t.ResetOpStats();
  std::vector<MemberId> needing = t.MembersNeeding(leaf_level);
  ASSERT_FALSE(needing.empty());
  EXPECT_LE(t.op_stats().members_needing_steps,
            2u * needing.size() + 2u);  // subtree nodes only
  // And the result size came from the stored subtree aggregate, which the
  // invariant checker verifies against a recomputation.
  t.CheckInvariants();
}

TEST(WglComplexity, LeafDepthIsStoredNotClimbed) {
  // Depths are node fields in the flat layout; KeysHeld at any population
  // is a hash lookup plus a field read. Sanity-check values against the
  // seed at a non-trivial shape.
  WglKeyTree flat(3);
  SeedWglKeyTree seed(3);
  std::vector<MemberId> init = Iota(40);
  flat.BuildIncremental(init);
  seed.BuildIncremental(init);
  for (MemberId m : init) {
    ASSERT_EQ(flat.LeafDepth(m), seed.LeafDepth(m));
    ASSERT_EQ(flat.KeysHeld(m), seed.KeysHeld(m));
  }
}

}  // namespace
}  // namespace tmesh
