// ReplicaRunner determinism and pool-contract tests.
//
// The acceptance bar for the parallel replica harness: for every figure
// bench, output with --threads=N (any N) is byte-identical to --threads=1,
// which in turn is exactly the old sequential loop. This suite pins that
// three ways:
//  1. pool mechanics — every index runs exactly once, merge is called in
//     strictly increasing index order, each replica sees a
//     freshly-Reset() worker simulator, exceptions propagate;
//  2. a fig06-style latency figure printed at threads 1 / 2 / 7 is
//     byte-identical to a hand-rolled copy of the old sequential bench
//     loop (fresh Simulator per run, no runner);
//  3. the Fig. 12 rekey-cost experiment produces bit-equal cell averages
//     for any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "metrics/report.h"
#include "protocols/latency_figure.h"
#include "protocols/rekey_cost_experiment.h"
#include "sim/replica_runner.h"

namespace tmesh {
namespace {

TEST(ReplicaRunner, EveryIndexRunsOnceAndMergesInOrder) {
  for (int threads : {1, 2, 7}) {
    ReplicaRunner runner(threads);
    const int runs = 37;
    std::atomic<int> body_calls{0};
    int expect = 0;
    runner.Run(
        runs,
        [&](ReplicaRunner::Replica& rep) {
          body_calls.fetch_add(1);
          return rep.index * rep.index;
        },
        [&](int i, int&& v) {
          EXPECT_EQ(i, expect) << "merge out of order at threads=" << threads;
          EXPECT_EQ(v, i * i);
          ++expect;
        });
    EXPECT_EQ(body_calls.load(), runs);
    EXPECT_EQ(expect, runs);
  }
}

TEST(ReplicaRunner, WorkerSimulatorIsFreshForEveryReplica) {
  ReplicaRunner runner(3);
  std::atomic<int> dirty{0};
  runner.Run(
      16,
      [&](ReplicaRunner::Replica& rep) {
        if (rep.sim.Now() != 0 || !rep.sim.Empty()) dirty.fetch_add(1);
        // Leave the simulator mid-flight: clock advanced, events pending.
        rep.sim.ScheduleIn(10, [] {});
        rep.sim.ScheduleIn(1000, [] {});
        rep.sim.RunUntil(10);
        return 0;
      },
      [](int, int&&) {});
  EXPECT_EQ(dirty.load(), 0);
}

TEST(ReplicaRunner, SequentialPathStreamsBodyAndMerge) {
  // threads=1 must be the old loop: body(i) then merge(i), interleaved.
  ReplicaRunner runner(1);
  std::vector<std::string> order;
  runner.Run(
      3,
      [&](ReplicaRunner::Replica& rep) {
        order.push_back("body" + std::to_string(rep.index));
        return 0;
      },
      [&](int i, int&&) { order.push_back("merge" + std::to_string(i)); });
  EXPECT_EQ(order, (std::vector<std::string>{"body0", "merge0", "body1",
                                             "merge1", "body2", "merge2"}));
}

TEST(ReplicaRunner, ReplicaExceptionPropagates) {
  for (int threads : {1, 4}) {
    ReplicaRunner runner(threads);
    auto run = [&] {
      runner.Run(
          12,
          [&](ReplicaRunner::Replica& rep) {
            if (rep.index == 5) throw std::runtime_error("replica 5 failed");
            return 0;
          },
          [](int, int&&) {});
    };
    EXPECT_THROW(run(), std::runtime_error);
  }
}

// --- figure-level byte identity ------------------------------------------

LatencyFigureConfig SmallFigure() {
  LatencyFigureConfig cfg;
  cfg.title = "test figure";
  cfg.topo = FigureTopology::kPlanetLab;
  cfg.users = 24;
  cfg.data_path = false;
  cfg.runs = 5;
  cfg.seed = 3;
  return cfg;  // session: defaults == the paper session
}

// A verbatim copy of the old sequential bench loop (bench_common.h before
// the ReplicaRunner port): fresh local Simulator per run, streaming merge.
std::string SequentialFigure(const LatencyFigureConfig& cfg) {
  RankedRunStats t_stress, t_delay, t_rdp, n_stress, n_delay, n_rdp;
  std::vector<double> t_rdp_all, n_rdp_all;
  for (int run = 0; run < cfg.runs; ++run) {
    std::uint64_t run_seed =
        cfg.seed + static_cast<std::uint64_t>(run) * 1000003;
    auto net = MakeFigureNetwork(cfg.topo, cfg.users + 1, run_seed);
    LatencyRunConfig rcfg;
    rcfg.users = cfg.users;
    rcfg.data_path = cfg.data_path;
    rcfg.join_window_s =
        cfg.topo == FigureTopology::kPlanetLab ? 452.0 : 2048.0;
    rcfg.session = cfg.session;
    auto res = RunLatencyExperiment(*net, rcfg, run_seed * 7 + 13);
    t_stress.AddRun(res.tmesh.stress);
    t_delay.AddRun(res.tmesh.delay_ms);
    t_rdp.AddRun(res.tmesh.rdp);
    n_stress.AddRun(res.nice.stress);
    n_delay.AddRun(res.nice.delay_ms);
    n_rdp.AddRun(res.nice.rdp);
    t_rdp_all.insert(t_rdp_all.end(), res.tmesh.rdp.begin(),
                     res.tmesh.rdp.end());
    n_rdp_all.insert(n_rdp_all.end(), res.nice.rdp.begin(),
                     res.nice.rdp.end());
  }
  std::ostringstream os;
  auto fr = DefaultFractions();
  PrintRankedTable(os, cfg.title + " (a): user stress", fr,
                   {{"T-mesh", &t_stress}, {"NICE", &n_stress}});
  os << "\n";
  PrintRankedTable(os, cfg.title + " (b): application-layer delay [ms]", fr,
                   {{"T-mesh", &t_delay}, {"NICE", &n_delay}});
  os << "\n";
  PrintRankedTable(os, cfg.title + " (c): relative delay penalty (RDP)", fr,
                   {{"T-mesh", &t_rdp}, {"NICE", &n_rdp}});
  InverseCdf tc(t_rdp_all), nc(n_rdp_all);
  char headline[256];
  std::snprintf(
      headline, sizeof(headline),
      "\n# headline: T-mesh RDP<2: %.0f%%, RDP<3: %.0f%%  |  NICE RDP<2: "
      "%.0f%%, RDP<3: %.0f%%\n"
      "#   (paper, Fig. 6: T-mesh 78%% / 95%%; NICE 23%% / 47%%)\n",
      100 * tc.FractionAtOrBelow(2.0), 100 * tc.FractionAtOrBelow(3.0),
      100 * nc.FractionAtOrBelow(2.0), 100 * nc.FractionAtOrBelow(3.0));
  os << headline;
  return os.str();
}

TEST(ReplicaRunner, LatencyFigureBytesAreThreadCountInvariant) {
  LatencyFigureConfig cfg = SmallFigure();
  const std::string sequential = SequentialFigure(cfg);
  ASSERT_FALSE(sequential.empty());
  for (int threads : {1, 2, 7}) {
    cfg.threads = threads;
    std::ostringstream os;
    PrintLatencyFigure(os, cfg);
    EXPECT_EQ(os.str(), sequential) << "threads=" << threads;
  }
}

TEST(ReplicaRunner, RekeyCostCellsAreThreadCountInvariant) {
  RekeyCostConfig cfg;
  cfg.seed = 11;
  cfg.initial_users = 48;
  cfg.grid = {0, 16, 48};
  cfg.runs = 3;
  // A small transit-stub instance keeps the per-run topology build cheap.
  cfg.topology.transit_domains = 3;
  cfg.topology.transit_routers_per_domain = 3;
  cfg.topology.stub_domains_per_transit_router = 2;
  cfg.topology.stub_routers_min = 4;
  cfg.topology.stub_routers_max = 7;
  cfg.session.with_nice = false;

  cfg.threads = 1;
  auto sequential = RunRekeyCostExperiment(cfg);
  ASSERT_EQ(sequential.size(), cfg.grid.size() * cfg.grid.size());
  for (int threads : {2, 7}) {
    cfg.threads = threads;
    auto parallel = RunRekeyCostExperiment(cfg);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(parallel[i].joins, sequential[i].joins);
      EXPECT_EQ(parallel[i].leaves, sequential[i].leaves);
      // Bit-equality, not tolerance: merge order is fixed by run index.
      EXPECT_EQ(parallel[i].modified, sequential[i].modified) << i;
      EXPECT_EQ(parallel[i].original, sequential[i].original) << i;
      EXPECT_EQ(parallel[i].cluster, sequential[i].cluster) << i;
    }
  }
}

}  // namespace
}  // namespace tmesh
