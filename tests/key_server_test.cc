// Tests for the online KeyServer: periodic batch rekeying over the
// simulator, concurrent with membership churn and data traffic.
#include "core/key_server.h"

#include <gtest/gtest.h>

#include <map>

#include "topology/planetlab.h"

namespace tmesh {
namespace {

PlanetLabNetwork MakeNet(int hosts, std::uint64_t seed = 3) {
  PlanetLabParams p;
  p.hosts = hosts;
  p.seed = seed;
  return PlanetLabNetwork(p);
}

KeyServer::Config SmallConfig() {
  KeyServer::Config c;
  c.group = GroupParams{3, 8, 2};
  c.assign.collect_target = 4;
  c.assign.thresholds_ms = {60.0, 20.0};
  c.rekey_interval = FromSeconds(10);
  c.seed = 5;
  return c;
}

TEST(KeyServer, QuietIntervalsEmitNothing) {
  auto net = MakeNet(10);
  Simulator sim;
  KeyServer server(net, 0, sim, SmallConfig());
  server.Start();
  sim.RunUntil(FromSeconds(35));  // 3 intervals, no membership activity
  server.Stop();
  sim.Run();
  ASSERT_GE(server.history().size(), 3u);
  for (const auto& rec : server.history()) {
    EXPECT_EQ(rec.rekey_cost, 0u);
    EXPECT_EQ(rec.delivery, -1);
  }
}

TEST(KeyServer, BatchesChurnIntoOneIntervalMessage) {
  auto net = MakeNet(20);
  Simulator sim;
  KeyServer server(net, 0, sim, SmallConfig());
  // Joins land before the first interval tick.
  std::vector<UserId> members;
  for (HostId h = 1; h <= 12; ++h) {
    auto id = server.RequestJoin(h);
    ASSERT_TRUE(id.has_value());
    members.push_back(*id);
  }
  server.Start();
  sim.RunUntil(FromSeconds(5));
  server.RequestLeave(members[3]);
  server.RequestLeave(members[7]);
  sim.RunUntil(FromSeconds(15));
  server.Stop();
  sim.Run();

  ASSERT_GE(server.history().size(), 1u);
  const auto& first = server.history()[0];
  EXPECT_EQ(first.joins, 12);
  EXPECT_EQ(first.leaves, 2);
  EXPECT_GT(first.rekey_cost, 0u);
  ASSERT_GE(first.delivery, 0);
  // Everyone still present received the interval's message exactly once.
  const TMesh::Result& res = server.delivery(first.delivery);
  EXPECT_EQ(res.ReceivedCount(), 10);
}

TEST(KeyServer, GroupKeyVersionAdvancesOnlyWithChurn) {
  auto net = MakeNet(12);
  Simulator sim;
  KeyServer server(net, 0, sim, SmallConfig());
  for (HostId h = 1; h <= 6; ++h) {
    ASSERT_TRUE(server.RequestJoin(h).has_value());
  }
  server.Start();
  sim.RunUntil(FromSeconds(15));
  std::uint32_t v1 = server.group_key_version();
  sim.RunUntil(FromSeconds(25));  // quiet interval
  EXPECT_EQ(server.group_key_version(), v1);
  server.RequestLeave(*server.directory().IdOfHost(3));
  sim.RunUntil(FromSeconds(35));
  EXPECT_EQ(server.group_key_version(), v1 + 1);
  server.Stop();
  sim.Run();
}

TEST(KeyServer, SplitDeliveryIsDecryptionCompletePerInterval) {
  auto net = MakeNet(40, 7);
  Simulator sim;
  KeyServer::Config cfg = SmallConfig();
  cfg.record_encryptions = true;
  KeyServer server(net, 0, sim, cfg);
  Rng rng(9);

  // Track held keys per member.
  std::map<UserId, std::map<KeyId, std::uint32_t>> held;
  auto grant = [&](const UserId& u) {
    for (const KeyId& k : server.key_tree().KeysOf(u)) {
      held[u][k] = server.key_tree().KeyVersion(k);
    }
  };

  for (HostId h = 1; h <= 25; ++h) {
    auto id = server.RequestJoin(h);
    ASSERT_TRUE(id.has_value());
    grant(*id);
  }
  server.Start();

  HostId next_host = 26;
  for (int interval = 0; interval < 5; ++interval) {
    sim.RunUntil(FromSeconds(10 * interval + 3));
    // Mid-interval churn.
    if (next_host < 40) {
      auto id = server.RequestJoin(next_host++);
      ASSERT_TRUE(id.has_value());
      grant(*id);
    }
    auto victim = server.directory().RandomAliveMember(rng);
    held.erase(*victim);
    server.RequestLeave(*victim);
    sim.RunUntil(FromSeconds(10 * (interval + 1) + 5));  // past the tick

    const auto& rec = server.history().back();
    if (rec.delivery < 0) continue;
    const TMesh::Result& res = server.delivery(rec.delivery);
    const RekeyMessage& msg = server.message(rec.delivery);
    for (const auto& [id, info] : server.directory().members()) {
      auto h = static_cast<std::size_t>(info.host);
      ASSERT_EQ(res.member[h].copies, 1);
      auto& keys = held[id];
      bool progress = true;
      while (progress) {
        progress = false;
        for (std::int32_t idx : res.member_encs[h]) {
          const Encryption& e =
              msg.encryptions[static_cast<std::size_t>(idx)];
          auto it = keys.find(e.enc_key_id);
          if (it == keys.end() || it->second != e.enc_key_version) continue;
          auto cur = keys.find(e.new_key_id);
          if (cur != keys.end() && cur->second >= e.new_key_version) continue;
          keys[e.new_key_id] = e.new_key_version;
          progress = true;
        }
      }
      for (const KeyId& k : server.key_tree().KeysOf(id)) {
        ASSERT_EQ(keys.at(k), server.key_tree().KeyVersion(k))
            << "interval " << interval << " member " << id.ToString();
      }
    }
  }
  server.Stop();
  sim.Run();
}

TEST(KeyServer, ClusterHeuristicModeDistributesGroupKey) {
  auto net = MakeNet(30, 11);
  Simulator sim;
  KeyServer::Config cfg = SmallConfig();
  cfg.cluster_heuristic = true;
  KeyServer server(net, 0, sim, cfg);
  std::vector<UserId> members;
  for (HostId h = 1; h <= 20; ++h) {
    auto id = server.RequestJoin(h);
    ASSERT_TRUE(id.has_value());
    members.push_back(*id);
  }
  server.Start();
  sim.RunUntil(FromSeconds(2));
  // Force leader churn: remove a leader.
  for (const UserId& id : members) {
    if (server.directory().Contains(id) && server.clusters().IsLeader(id)) {
      server.RequestLeave(id);
      break;
    }
  }
  sim.RunUntil(FromSeconds(15));
  server.Stop();
  sim.Run();

  const auto& rec = server.history()[0];
  ASSERT_GE(rec.delivery, 0);
  const TMesh::Result& res = server.delivery(rec.delivery);
  for (const auto& [id, info] : server.directory().members()) {
    auto h = static_cast<std::size_t>(info.host);
    // Every member got something: the split leader message or a pairwise
    // group-key unicast.
    EXPECT_GE(res.member[h].copies, 1) << id.ToString();
    if (!server.clusters().IsLeader(id)) {
      EXPECT_GE(res.member[h].group_key_copies, 1) << id.ToString();
    }
  }
}

TEST(KeyServer, ConcurrentDataTrafficDeliversDuringRekey) {
  auto net = MakeNet(25, 13);
  Simulator sim;
  KeyServer server(net, 0, sim, SmallConfig());
  for (HostId h = 1; h <= 15; ++h) {
    ASSERT_TRUE(server.RequestJoin(h).has_value());
  }
  server.Start();
  sim.RunUntil(FromSeconds(8));
  server.RequestLeave(*server.directory().IdOfHost(5));
  sim.RunUntil(FromSeconds(10) - 1);  // just before the interval tick
  auto sender = server.directory().IdOfHost(1);
  ASSERT_NE(sender, nullptr);
  auto data = server.MulticastData(*sender);
  server.Stop();
  sim.Run();

  // Data reached everyone but the sender even while the rekey fired.
  int received = 0;
  for (const auto& [id, info] : server.directory().members()) {
    if (id == *sender) continue;
    received +=
        data.result().member[static_cast<std::size_t>(info.host)].copies;
  }
  EXPECT_EQ(received, server.directory().member_count() - 1);
  ASSERT_FALSE(server.history().empty());
  EXPECT_GE(server.history()[0].delivery, 0);
}

TEST(KeyServer, StopHaltsFurtherIntervals) {
  auto net = MakeNet(8);
  Simulator sim;
  KeyServer server(net, 0, sim, SmallConfig());
  ASSERT_TRUE(server.RequestJoin(1).has_value());
  server.Start();
  sim.RunUntil(FromSeconds(12));
  server.Stop();
  sim.Run();
  std::size_t n = server.history().size();
  // No further events exist; time cannot produce more intervals.
  EXPECT_TRUE(sim.Empty());
  EXPECT_LE(n, 2u);
}

TEST(KeyServerLifecycle, DoubleStartIsChecked) {
  auto net = MakeNet(8);
  Simulator sim;
  KeyServer server(net, 0, sim, SmallConfig());
  EXPECT_FALSE(server.running());
  server.Start();
  EXPECT_TRUE(server.running());
  EXPECT_THROW(server.Start(), std::logic_error);
  // The failed Start left the server running and the tick chain intact.
  EXPECT_TRUE(server.running());
  EXPECT_NE(server.next_interval_at(), kNoTime);
}

TEST(KeyServerLifecycle, StopIsIdempotent) {
  auto net = MakeNet(8);
  Simulator sim;
  KeyServer server(net, 0, sim, SmallConfig());
  server.Stop();  // never started: a no-op, not an error
  server.Start();
  server.Stop();
  server.Stop();
  EXPECT_FALSE(server.running());
  // The already-scheduled tick fires once (processing the batch) but does
  // not re-arm.
  sim.Run();
  EXPECT_EQ(server.history().size(), 1u);
  EXPECT_EQ(server.next_interval_at(), kNoTime);
}

TEST(KeyServerLifecycle, RestartWhileTickInFlightDoesNotDoubleSchedule) {
  auto net = MakeNet(8);
  Simulator sim;
  KeyServer server(net, 0, sim, SmallConfig());
  server.Start();
  const SimTime first_tick = server.next_interval_at();
  server.Stop();
  // Restart before the stopped tick fires: the in-flight tick must be
  // reused, not duplicated — otherwise two tick chains would each rekey.
  server.Start();
  EXPECT_TRUE(server.running());
  EXPECT_EQ(server.next_interval_at(), first_tick);
  EXPECT_EQ(sim.Pending(), 1u);
  sim.RunUntil(FromSeconds(35));
  server.Stop();
  sim.Run();
  // One interval per rekey_interval: no doubled-up tick chain.
  EXPECT_LE(server.history().size(), 4u);
  ASSERT_GE(server.history().size(), 2u);
  for (std::size_t i = 1; i < server.history().size(); ++i) {
    EXPECT_EQ(server.history()[i].when - server.history()[i - 1].when,
              FromSeconds(10));
  }
}

// The sharded end-of-interval rekey (Config::rekey_shards > 1) must produce
// the exact same interval messages, history, and key versions as the serial
// server on an identical schedule. Run under the tsan preset, this is also
// the data-race check for the level-1 subtree sharding.
TEST(KeyServer, ShardedRekeyMatchesSerialByteForByte) {
  auto run = [](int shards) {
    auto net = MakeNet(24);
    Simulator sim;
    KeyServer::Config cfg = SmallConfig();
    cfg.rekey_shards = shards;
    KeyServer server(net, 0, sim, cfg);
    std::vector<UserId> members;
    for (HostId h = 1; h <= 16; ++h) {
      auto id = server.RequestJoin(h);
      if (id.has_value()) members.push_back(*id);
    }
    server.Start();
    sim.RunUntil(FromSeconds(5));
    server.RequestLeave(members[2]);
    server.RequestLeave(members[9]);
    sim.RunUntil(FromSeconds(15));
    server.RequestLeave(members[5]);
    for (HostId h = 17; h <= 20; ++h) (void)server.RequestJoin(h);
    sim.RunUntil(FromSeconds(25));
    server.Stop();
    sim.Run();
    struct Out {
      std::vector<RekeyMessage> messages;
      std::size_t intervals;
      std::uint32_t group_version;
    } out;
    out.intervals = server.history().size();
    for (const auto& rec : server.history()) {
      if (rec.delivery >= 0) out.messages.push_back(server.message(rec.delivery));
    }
    out.group_version = server.group_key_version();
    return out;
  };

  auto serial = run(1);
  auto sharded = run(4);
  EXPECT_EQ(serial.intervals, sharded.intervals);
  EXPECT_EQ(serial.group_version, sharded.group_version);
  ASSERT_EQ(serial.messages.size(), sharded.messages.size());
  for (std::size_t i = 0; i < serial.messages.size(); ++i) {
    const auto& a = serial.messages[i].encryptions;
    const auto& b = sharded.messages[i].encryptions;
    ASSERT_EQ(a.size(), b.size()) << "interval " << i;
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_TRUE(a[j] == b[j]) << "interval " << i << " encryption " << j;
    }
  }
}

}  // namespace
}  // namespace tmesh
