// Tests for the online KeyServer: periodic batch rekeying over the
// simulator, concurrent with membership churn and data traffic.
#include "core/key_server.h"

#include <gtest/gtest.h>

#include <map>

#include "core/modified_key_tree.h"
#include "transport/sim_transport.h"
#include "metrics/registry.h"
#include "topology/planetlab.h"

namespace tmesh {
namespace {

PlanetLabNetwork MakeNet(int hosts, std::uint64_t seed = 3) {
  PlanetLabParams p;
  p.hosts = hosts;
  p.seed = seed;
  return PlanetLabNetwork(p);
}

KeyServer::Config SmallConfig(const Network& net) {
  KeyServer::Config c;
  c.net = &net;
  c.group = GroupParams{3, 8, 2};
  c.assign.collect_target = 4;
  c.assign.thresholds_ms = {60.0, 20.0};
  c.rekey_interval = FromSeconds(10);
  c.seed = 5;
  return c;
}

TEST(KeyServer, QuietIntervalsEmitNothing) {
  auto net = MakeNet(10);
  Simulator sim;
  SimTransport server_bus(sim);
  KeyServer server(server_bus, SmallConfig(net));
  server.Start();
  sim.RunUntil(FromSeconds(35));  // 3 intervals, no membership activity
  server.Stop();
  sim.Run();
  ASSERT_GE(server.history().size(), 3u);
  for (const auto& rec : server.history()) {
    EXPECT_EQ(rec.rekey_cost, 0u);
    EXPECT_EQ(rec.delivery, -1);
  }
}

TEST(KeyServer, BatchesChurnIntoOneIntervalMessage) {
  auto net = MakeNet(20);
  Simulator sim;
  SimTransport server_bus(sim);
  KeyServer server(server_bus, SmallConfig(net));
  // Joins land before the first interval tick.
  std::vector<UserId> members;
  for (HostId h = 1; h <= 12; ++h) {
    auto id = server.RequestJoin(h);
    ASSERT_TRUE(id.has_value());
    members.push_back(*id);
  }
  server.Start();
  sim.RunUntil(FromSeconds(5));
  server.RequestLeave(members[3]);
  server.RequestLeave(members[7]);
  sim.RunUntil(FromSeconds(15));
  server.Stop();
  sim.Run();

  ASSERT_GE(server.history().size(), 1u);
  const auto& first = server.history()[0];
  EXPECT_EQ(first.joins, 12);
  EXPECT_EQ(first.leaves, 2);
  EXPECT_GT(first.rekey_cost, 0u);
  ASSERT_GE(first.delivery, 0);
  // Everyone still present received the interval's message exactly once.
  const TMesh::Result& res = server.delivery(first.delivery);
  EXPECT_EQ(res.ReceivedCount(), 10);
}

TEST(KeyServer, GroupKeyVersionAdvancesOnlyWithChurn) {
  auto net = MakeNet(12);
  Simulator sim;
  SimTransport server_bus(sim);
  KeyServer server(server_bus, SmallConfig(net));
  for (HostId h = 1; h <= 6; ++h) {
    ASSERT_TRUE(server.RequestJoin(h).has_value());
  }
  server.Start();
  sim.RunUntil(FromSeconds(15));
  std::uint32_t v1 = server.group_key_version();
  sim.RunUntil(FromSeconds(25));  // quiet interval
  EXPECT_EQ(server.group_key_version(), v1);
  server.RequestLeave(*server.directory().IdOfHost(3));
  sim.RunUntil(FromSeconds(35));
  EXPECT_EQ(server.group_key_version(), v1 + 1);
  server.Stop();
  sim.Run();
}

TEST(KeyServer, SplitDeliveryIsDecryptionCompletePerInterval) {
  auto net = MakeNet(40, 7);
  Simulator sim;
  KeyServer::Config cfg = SmallConfig(net);
  cfg.record_encryptions = true;
  SimTransport server_bus(sim);
  KeyServer server(server_bus, cfg);
  Rng rng(9);

  // Track held keys per member.
  std::map<UserId, std::map<KeyId, std::uint32_t>> held;
  auto grant = [&](const UserId& u) {
    for (const KeyId& k : server.key_tree().KeysOf(u)) {
      held[u][k] = server.key_tree().KeyVersion(k);
    }
  };

  for (HostId h = 1; h <= 25; ++h) {
    auto id = server.RequestJoin(h);
    ASSERT_TRUE(id.has_value());
    grant(*id);
  }
  server.Start();

  HostId next_host = 26;
  for (int interval = 0; interval < 5; ++interval) {
    sim.RunUntil(FromSeconds(10 * interval + 3));
    // Mid-interval churn.
    if (next_host < 40) {
      auto id = server.RequestJoin(next_host++);
      ASSERT_TRUE(id.has_value());
      grant(*id);
    }
    auto victim = server.directory().RandomAliveMember(rng);
    held.erase(*victim);
    server.RequestLeave(*victim);
    sim.RunUntil(FromSeconds(10 * (interval + 1) + 5));  // past the tick

    const auto& rec = server.history().back();
    if (rec.delivery < 0) continue;
    const TMesh::Result& res = server.delivery(rec.delivery);
    const RekeyMessage& msg = server.message(rec.delivery);
    for (const auto& [id, info] : server.directory().members()) {
      auto h = static_cast<std::size_t>(info.host);
      ASSERT_EQ(res.member[h].copies, 1);
      auto& keys = held[id];
      bool progress = true;
      while (progress) {
        progress = false;
        for (std::int32_t idx : res.member_encs[h]) {
          const Encryption& e =
              msg.encryptions[static_cast<std::size_t>(idx)];
          auto it = keys.find(e.enc_key_id);
          if (it == keys.end() || it->second != e.enc_key_version) continue;
          auto cur = keys.find(e.new_key_id);
          if (cur != keys.end() && cur->second >= e.new_key_version) continue;
          keys[e.new_key_id] = e.new_key_version;
          progress = true;
        }
      }
      for (const KeyId& k : server.key_tree().KeysOf(id)) {
        ASSERT_EQ(keys.at(k), server.key_tree().KeyVersion(k))
            << "interval " << interval << " member " << id.ToString();
      }
    }
  }
  server.Stop();
  sim.Run();
}

TEST(KeyServer, ClusterHeuristicModeDistributesGroupKey) {
  auto net = MakeNet(30, 11);
  Simulator sim;
  KeyServer::Config cfg = SmallConfig(net);
  cfg.cluster_heuristic = true;
  SimTransport server_bus(sim);
  KeyServer server(server_bus, cfg);
  std::vector<UserId> members;
  for (HostId h = 1; h <= 20; ++h) {
    auto id = server.RequestJoin(h);
    ASSERT_TRUE(id.has_value());
    members.push_back(*id);
  }
  server.Start();
  sim.RunUntil(FromSeconds(2));
  // Force leader churn: remove a leader.
  for (const UserId& id : members) {
    if (server.directory().Contains(id) && server.clusters().IsLeader(id)) {
      server.RequestLeave(id);
      break;
    }
  }
  sim.RunUntil(FromSeconds(15));
  server.Stop();
  sim.Run();

  const auto& rec = server.history()[0];
  ASSERT_GE(rec.delivery, 0);
  const TMesh::Result& res = server.delivery(rec.delivery);
  for (const auto& [id, info] : server.directory().members()) {
    auto h = static_cast<std::size_t>(info.host);
    // Every member got something: the split leader message or a pairwise
    // group-key unicast.
    EXPECT_GE(res.member[h].copies, 1) << id.ToString();
    if (!server.clusters().IsLeader(id)) {
      EXPECT_GE(res.member[h].group_key_copies, 1) << id.ToString();
    }
  }
}

TEST(KeyServer, ConcurrentDataTrafficDeliversDuringRekey) {
  auto net = MakeNet(25, 13);
  Simulator sim;
  SimTransport server_bus(sim);
  KeyServer server(server_bus, SmallConfig(net));
  for (HostId h = 1; h <= 15; ++h) {
    ASSERT_TRUE(server.RequestJoin(h).has_value());
  }
  server.Start();
  sim.RunUntil(FromSeconds(8));
  server.RequestLeave(*server.directory().IdOfHost(5));
  sim.RunUntil(FromSeconds(10) - 1);  // just before the interval tick
  auto sender = server.directory().IdOfHost(1);
  ASSERT_NE(sender, nullptr);
  auto data = server.MulticastData(*sender);
  server.Stop();
  sim.Run();

  // Data reached everyone but the sender even while the rekey fired.
  int received = 0;
  for (const auto& [id, info] : server.directory().members()) {
    if (id == *sender) continue;
    received +=
        data.result().member[static_cast<std::size_t>(info.host)].copies;
  }
  EXPECT_EQ(received, server.directory().member_count() - 1);
  ASSERT_FALSE(server.history().empty());
  EXPECT_GE(server.history()[0].delivery, 0);
}

TEST(KeyServer, StopHaltsFurtherIntervals) {
  auto net = MakeNet(8);
  Simulator sim;
  SimTransport server_bus(sim);
  KeyServer server(server_bus, SmallConfig(net));
  ASSERT_TRUE(server.RequestJoin(1).has_value());
  server.Start();
  sim.RunUntil(FromSeconds(12));
  server.Stop();
  sim.Run();
  std::size_t n = server.history().size();
  // No further events exist; time cannot produce more intervals.
  EXPECT_TRUE(sim.Empty());
  EXPECT_LE(n, 2u);
}

TEST(KeyServerLifecycle, DoubleStartIsChecked) {
  auto net = MakeNet(8);
  Simulator sim;
  SimTransport server_bus(sim);
  KeyServer server(server_bus, SmallConfig(net));
  EXPECT_FALSE(server.running());
  server.Start();
  EXPECT_TRUE(server.running());
  EXPECT_THROW(server.Start(), std::logic_error);
  // The failed Start left the server running and the tick chain intact.
  EXPECT_TRUE(server.running());
  EXPECT_NE(server.next_interval_at(), kNoTime);
}

TEST(KeyServerLifecycle, StopIsIdempotent) {
  auto net = MakeNet(8);
  Simulator sim;
  SimTransport server_bus(sim);
  KeyServer server(server_bus, SmallConfig(net));
  server.Stop();  // never started: a no-op, not an error
  server.Start();
  server.Stop();
  server.Stop();
  EXPECT_FALSE(server.running());
  // The already-scheduled tick fires once (processing the batch) but does
  // not re-arm.
  sim.Run();
  EXPECT_EQ(server.history().size(), 1u);
  EXPECT_EQ(server.next_interval_at(), kNoTime);
}

TEST(KeyServerLifecycle, RestartWhileTickInFlightDoesNotDoubleSchedule) {
  auto net = MakeNet(8);
  Simulator sim;
  SimTransport server_bus(sim);
  KeyServer server(server_bus, SmallConfig(net));
  server.Start();
  const SimTime first_tick = server.next_interval_at();
  server.Stop();
  // Restart before the stopped tick fires: the in-flight tick must be
  // reused, not duplicated — otherwise two tick chains would each rekey.
  server.Start();
  EXPECT_TRUE(server.running());
  EXPECT_EQ(server.next_interval_at(), first_tick);
  EXPECT_EQ(sim.Pending(), 1u);
  sim.RunUntil(FromSeconds(35));
  server.Stop();
  sim.Run();
  // One interval per rekey_interval: no doubled-up tick chain.
  EXPECT_LE(server.history().size(), 4u);
  ASSERT_GE(server.history().size(), 2u);
  for (std::size_t i = 1; i < server.history().size(); ++i) {
    EXPECT_EQ(server.history()[i].when - server.history()[i - 1].when,
              FromSeconds(10));
  }
}

// The sharded end-of-interval rekey (Config::rekey_shards > 1) must produce
// the exact same interval messages, history, and key versions as the serial
// server on an identical schedule. Run under the tsan preset, this is also
// the data-race check for the level-1 subtree sharding.
TEST(KeyServer, ShardedRekeyMatchesSerialByteForByte) {
  auto run = [](int shards) {
    auto net = MakeNet(24);
    Simulator sim;
    KeyServer::Config cfg = SmallConfig(net);
    cfg.rekey_shards = shards;
    SimTransport server_bus(sim);
    KeyServer server(server_bus, cfg);
    std::vector<UserId> members;
    for (HostId h = 1; h <= 16; ++h) {
      auto id = server.RequestJoin(h);
      if (id.has_value()) members.push_back(*id);
    }
    server.Start();
    sim.RunUntil(FromSeconds(5));
    server.RequestLeave(members[2]);
    server.RequestLeave(members[9]);
    sim.RunUntil(FromSeconds(15));
    server.RequestLeave(members[5]);
    for (HostId h = 17; h <= 20; ++h) (void)server.RequestJoin(h);
    sim.RunUntil(FromSeconds(25));
    server.Stop();
    sim.Run();
    struct Out {
      std::vector<RekeyMessage> messages;
      std::size_t intervals;
      std::uint32_t group_version;
    } out;
    out.intervals = server.history().size();
    for (const auto& rec : server.history()) {
      if (rec.delivery >= 0) out.messages.push_back(server.message(rec.delivery));
    }
    out.group_version = server.group_key_version();
    return out;
  };

  auto serial = run(1);
  auto sharded = run(4);
  EXPECT_EQ(serial.intervals, sharded.intervals);
  EXPECT_EQ(serial.group_version, sharded.group_version);
  ASSERT_EQ(serial.messages.size(), sharded.messages.size());
  for (std::size_t i = 0; i < serial.messages.size(); ++i) {
    const auto& a = serial.messages[i].encryptions;
    const auto& b = sharded.messages[i].encryptions;
    ASSERT_EQ(a.size(), b.size()) << "interval " << i;
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_TRUE(a[j] == b[j]) << "interval " << i << " encryption " << j;
    }
  }
}

// A leave notice for a MarkFailed-but-unrepaired member is its §2.3 failure
// detection completing (a crashed member cannot send a voluntary leave), so
// it must route through RepairFailure: eviction plus table repair, never
// the silent voluntary-leave path that would leave the failure window open.
TEST(KeyServerLifecycle, LeaveOfFailedMemberRoutesToRepair) {
  auto net = MakeNet(12);
  Simulator sim;
  MetricsRegistry metrics;
  SimTransport server_bus(sim);
  KeyServer server(server_bus, SmallConfig(net));
  server.SetMetrics(&metrics);
  std::vector<UserId> members;
  for (HostId h = 1; h <= 6; ++h) {
    auto id = server.RequestJoin(h);
    ASSERT_TRUE(id.has_value());
    members.push_back(*id);
  }
  server.Start();
  sim.RunUntil(FromSeconds(12));  // the joins' interval message went out

  server.MarkFailed(members[2]);
  ASSERT_TRUE(server.directory().Contains(members[2]));
  ASSERT_FALSE(server.directory().IsAlive(members[2]));
  server.RequestLeave(members[2]);
  // Evicted AND repaired: no outstanding failure, K-consistent tables.
  EXPECT_FALSE(server.directory().Contains(members[2]));
  server.directory().CheckKConsistency();
  EXPECT_EQ(metrics.GetCounter("keyserver.failures_repaired")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("keyserver.leaves")->value(), 0);

  sim.RunUntil(FromSeconds(22));
  server.Stop();
  sim.Run();
  // The eviction entered the batch: the departed member's path keys renew.
  const auto& rec = server.history()[1];
  EXPECT_EQ(rec.leaves, 1);
  EXPECT_GT(rec.rekey_cost, 0u);
  EXPECT_GE(rec.delivery, 0);
}

// EndInterval rekeys only the chosen scheme. The chosen message must be
// byte-identical to a bare ModifiedKeyTree replaying the same batches (the
// dropped cluster batch cannot perturb it), and the unchosen scheme's tree
// must never advance a key version.
TEST(KeyServer, UnchosenSchemeNeverRekeys) {
  auto net = MakeNet(24);
  Simulator sim;
  SimTransport server_bus(sim);
  KeyServer server(server_bus, SmallConfig(net));
  ModifiedKeyTree oracle(3);
  std::vector<UserId> members;
  for (HostId h = 1; h <= 14; ++h) {
    auto id = server.RequestJoin(h);
    ASSERT_TRUE(id.has_value());
    oracle.Join(*id);
    members.push_back(*id);
  }
  server.Start();

  auto expect_interval_matches = [&](int interval) {
    RekeyMessage want = oracle.Rekey(1);
    const auto& rec = server.history().back();
    ASSERT_EQ(rec.when, FromSeconds(10 * (interval + 1)));
    ASSERT_GE(rec.delivery, 0);
    const RekeyMessage& got = server.message(rec.delivery);
    ASSERT_EQ(got.encryptions.size(), want.encryptions.size())
        << "interval " << interval;
    for (std::size_t j = 0; j < got.encryptions.size(); ++j) {
      EXPECT_TRUE(got.encryptions[j] == want.encryptions[j])
          << "interval " << interval << " encryption " << j;
    }
  };

  sim.RunUntil(FromSeconds(12));
  expect_interval_matches(0);
  const std::uint32_t cluster_root =
      server.clusters().leader_tree().KeyVersion(KeyId{});

  server.RequestLeave(members[3]);
  oracle.Leave(members[3]);
  ASSERT_TRUE(server.RequestJoin(15).has_value());
  oracle.Join(*server.directory().IdOfHost(15));
  sim.RunUntil(FromSeconds(22));
  expect_interval_matches(1);

  server.RequestLeave(members[9]);
  oracle.Leave(members[9]);
  sim.RunUntil(FromSeconds(32));
  expect_interval_matches(2);
  server.Stop();
  sim.Run();

  // The cluster-side leader tree tracked membership but never rekeyed.
  EXPECT_EQ(server.clusters().leader_tree().KeyVersion(KeyId{}), cluster_root);
}

// The mirror of the above: in cluster-heuristic mode the modified tree
// tracks membership but must never rekey.
TEST(KeyServer, ClusterModeLeavesModifiedTreeVersionsAlone) {
  auto net = MakeNet(24, 11);
  Simulator sim;
  KeyServer::Config cfg = SmallConfig(net);
  cfg.cluster_heuristic = true;
  SimTransport server_bus(sim);
  KeyServer server(server_bus, cfg);
  std::vector<UserId> members;
  for (HostId h = 1; h <= 14; ++h) {
    auto id = server.RequestJoin(h);
    ASSERT_TRUE(id.has_value());
    members.push_back(*id);
  }
  server.Start();
  sim.RunUntil(FromSeconds(12));
  const std::uint32_t mtree_root = server.key_tree().KeyVersion(KeyId{});
  const std::uint32_t cluster_v1 = server.group_key_version();
  server.RequestLeave(members[2]);
  server.RequestLeave(members[8]);
  sim.RunUntil(FromSeconds(22));
  server.Stop();
  sim.Run();
  // The chosen (cluster) scheme renewed its group key; the unchosen
  // modified tree did not move.
  EXPECT_GT(server.group_key_version(), cluster_v1);
  EXPECT_EQ(server.key_tree().KeyVersion(KeyId{}), mtree_root);
}

// Rekey work with no alive recipient: the record says delivery == -1, and
// keyserver.encryptions — distributed traffic — must not count it. The
// dedicated undistributed_rekeys counter takes it instead.
TEST(KeyServer, RekeyWithNoAliveRecipientIsUndistributed) {
  auto net = MakeNet(12);
  Simulator sim;
  MetricsRegistry metrics;
  SimTransport server_bus(sim);
  KeyServer server(server_bus, SmallConfig(net));
  server.SetMetrics(&metrics);
  std::vector<UserId> members;
  for (HostId h = 1; h <= 4; ++h) {
    auto id = server.RequestJoin(h);
    ASSERT_TRUE(id.has_value());
    members.push_back(*id);
  }
  server.Start();
  sim.RunUntil(FromSeconds(12));  // interval 1 distributed the joins

  // Interval 2: one more join dirties the tree, then the whole group fails
  // before the tick — rekey work exists, but nobody alive can receive it.
  auto id5 = server.RequestJoin(5);
  ASSERT_TRUE(id5.has_value());
  for (const UserId& m : members) server.MarkFailed(m);
  server.MarkFailed(*id5);
  sim.RunUntil(FromSeconds(22));
  server.Stop();
  sim.Run();

  ASSERT_GE(server.history().size(), 2u);
  const auto& rec = server.history()[1];
  EXPECT_GT(rec.rekey_cost, 0u);
  EXPECT_EQ(rec.delivery, -1);
  EXPECT_EQ(metrics.GetCounter("keyserver.undistributed_rekeys")->value(), 1);
  // The contract the fix pins: encryptions ≡ Σ rekey_cost over records that
  // actually delivered.
  std::int64_t distributed = 0;
  for (const auto& r : server.history()) {
    if (r.delivery >= 0) distributed += static_cast<std::int64_t>(r.rekey_cost);
  }
  EXPECT_EQ(metrics.GetCounter("keyserver.encryptions")->value(), distributed);
}

// The whole group leaving in one interval empties the tree: no rekey work
// remains, so the interval is quiet — not undistributed.
TEST(KeyServer, AllMembersLeavingInOneIntervalIsQuiet) {
  auto net = MakeNet(12);
  Simulator sim;
  MetricsRegistry metrics;
  SimTransport server_bus(sim);
  KeyServer server(server_bus, SmallConfig(net));
  server.SetMetrics(&metrics);
  std::vector<UserId> members;
  for (HostId h = 1; h <= 4; ++h) {
    auto id = server.RequestJoin(h);
    ASSERT_TRUE(id.has_value());
    members.push_back(*id);
  }
  server.Start();
  sim.RunUntil(FromSeconds(12));
  for (const UserId& m : members) server.RequestLeave(m);
  sim.RunUntil(FromSeconds(22));
  server.Stop();
  sim.Run();

  ASSERT_GE(server.history().size(), 2u);
  const auto& rec = server.history()[1];
  EXPECT_EQ(rec.leaves, 4);
  EXPECT_EQ(rec.rekey_cost, 0u);
  EXPECT_EQ(rec.delivery, -1);
  // Every zero-cost record counted as quiet (the eviction interval included
  // — an empty tree has no rekey work), none as undistributed.
  std::int64_t quiet = 0;
  for (const auto& r : server.history()) {
    if (r.rekey_cost == 0) ++quiet;
  }
  EXPECT_EQ(metrics.GetCounter("keyserver.quiet_intervals")->value(), quiet);
  EXPECT_EQ(metrics.GetCounter("keyserver.undistributed_rekeys")->value(), 0);
  std::int64_t distributed = 0;
  for (const auto& r : server.history()) {
    if (r.delivery >= 0) distributed += static_cast<std::int64_t>(r.rekey_cost);
  }
  EXPECT_EQ(metrics.GetCounter("keyserver.encryptions")->value(), distributed);
}

// The per-delivery loss stream is seeded by the delivery index, not the
// interval count: quiet intervals between two batches must not perturb the
// second batch's loss pattern.
TEST(KeyServer, QuietIntervalsDoNotPerturbLossStreams) {
  struct Outcome {
    std::vector<int> copies;
    int sent = 0;
    int lost = 0;
    int failed = 0;
  };
  auto run = [](int quiet_intervals) {
    auto net = MakeNet(20, 7);
    Simulator sim;
    KeyServer::Config cfg = SmallConfig(net);
    cfg.loss_prob = 0.3;
    SimTransport server_bus(sim);
    KeyServer server(server_bus, cfg);
    std::vector<UserId> members;
    for (HostId h = 1; h <= 12; ++h) {
      auto id = server.RequestJoin(h);
      EXPECT_TRUE(id.has_value());
      members.push_back(*id);
    }
    server.Start();
    sim.RunUntil(FromSeconds(12));  // delivery 0
    // Optionally idle through quiet intervals, then the same leave.
    sim.RunUntil(FromSeconds(12 + 10 * quiet_intervals));
    server.RequestLeave(members[3]);
    sim.RunUntil(FromSeconds(22 + 10 * quiet_intervals));
    server.Stop();
    sim.Run();
    // Stop() leaves one in-flight tick that appends a trailing quiet
    // record, so scan for the last record that actually delivered.
    int delivery = -1;
    for (const auto& r : server.history()) {
      if (r.delivery >= 0) delivery = r.delivery;
    }
    EXPECT_GE(delivery, 0);
    const TMesh::Result& res = server.delivery(delivery);
    Outcome out;
    for (const auto& r : res.member) out.copies.push_back(r.copies);
    out.sent = res.messages_sent;
    out.lost = res.messages_lost;
    out.failed = res.deliveries_failed;
    return out;
  };

  Outcome direct = run(0);
  Outcome gapped = run(3);
  EXPECT_GT(direct.lost, 0);  // the loss model actually engaged
  EXPECT_EQ(direct.copies, gapped.copies);
  EXPECT_EQ(direct.sent, gapped.sent);
  EXPECT_EQ(direct.lost, gapped.lost);
  EXPECT_EQ(direct.failed, gapped.failed);
}

// Transport double for wall-clock timing bugs: an explicit event list whose
// clock can be made to run LATE relative to scheduled deadlines — the thing
// the simulator can never do (there, callbacks always see Now() == their
// deadline). Models UdpTransport under processing/scheduling jitter.
class LateManualTransport : public Transport {
 public:
  SimTime Now() const override { return now_; }
  HostId local_host() const override { return 0; }
  TimerId ScheduleTimer(SimTime delay, TransportClosure fn) override {
    Push(now_ + delay, std::move(fn));
    return ++last_timer_;
  }
  bool CancelTimer(TimerId) override { return false; }  // unused here
  void Send(HostId, const std::uint8_t*, std::size_t) override {}
  void OnReceive(RecvHandler) override {}

  // Fires the earliest pending closure, advancing the clock to its deadline
  // plus `lateness` (never backwards). Returns false when idle.
  bool RunNextLateBy(SimTime lateness) {
    if (events_.empty()) return false;
    std::size_t best = 0;
    for (std::size_t i = 1; i < events_.size(); ++i) {
      if (events_[i].when < events_[best].when ||
          (events_[i].when == events_[best].when &&
           events_[i].seq < events_[best].seq)) {
        best = i;
      }
    }
    Event e = std::move(events_[best]);
    events_.erase(events_.begin() + static_cast<std::ptrdiff_t>(best));
    now_ = std::max(now_, e.when + lateness);
    e.fn();
    return true;
  }

 protected:
  void ScheduleClosureAt(SimTime when, TransportClosure fn) override {
    Push(when, std::move(fn));
  }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    TransportClosure fn;
  };
  void Push(SimTime when, TransportClosure fn) {
    events_.push_back(Event{when, next_seq_++, std::move(fn)});
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  TimerId last_timer_ = kNoTimer;
  std::vector<Event> events_;
};

// Regression (transport seam, DESIGN.md §3h): EndInterval must re-arm from
// the tick's *scheduled* instant, not from Now(). On a wall-clock transport
// every tick fires a bit late; a Now()-relative re-arm compounds that
// lateness into unbounded cadence drift. Under the simulator the two are
// indistinguishable (Now() == the deadline inside the tick), so this pins
// the behavior with a transport double whose ticks run 3 s late.
TEST(KeyServer, IntervalCadenceDoesNotDriftUnderLateTimers) {
  auto net = MakeNet(10);
  LateManualTransport bus;
  KeyServer server(bus, SmallConfig(net));  // rekey_interval = 10 s
  server.Start();
  const SimTime interval = FromSeconds(10);
  const SimTime late = FromSeconds(3);
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(bus.RunNextLateBy(late));
    // The i-th tick ran `late` past its absolute deadline i * interval...
    ASSERT_EQ(server.history().size(), static_cast<std::size_t>(i));
    EXPECT_EQ(server.history().back().when, i * interval + late);
    // ...and the next one is armed on the absolute grid regardless — with
    // the drifting re-arm this would be (i * interval + late) + interval.
    EXPECT_EQ(server.next_interval_at(), (i + 1) * interval);
  }
  // A tick that overruns a whole interval re-arms ASAP (clamped to Now(),
  // never into the past), then recovers the grid from there.
  ASSERT_TRUE(bus.RunNextLateBy(2 * interval + FromSeconds(5)));  // fires at 85 s
  EXPECT_EQ(server.next_interval_at(), bus.Now());
  server.Stop();
}

}  // namespace
}  // namespace tmesh
