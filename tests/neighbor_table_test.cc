#include "core/neighbor_table.h"

#include <gtest/gtest.h>

namespace tmesh {
namespace {

NeighborRecord Rec(UserId id, HostId host, double rtt) {
  NeighborRecord r;
  r.id = id;
  r.host = host;
  r.rtt_ms = rtt;
  return r;
}

TEST(NeighborTable, EmptyEntriesAreNull) {
  NeighborTable t(3, 8, 4);
  EXPECT_EQ(t.entry(0, 0), nullptr);
  EXPECT_TRUE(t.row(1).empty());
  EXPECT_EQ(t.TotalRecords(), 0);
}

TEST(NeighborTable, InsertKeepsAscendingRttOrder) {
  NeighborTable t(2, 8, 4);
  t.Insert(0, 3, Rec(UserId{3, 0}, 1, 20.0));
  t.Insert(0, 3, Rec(UserId{3, 1}, 2, 5.0));
  t.Insert(0, 3, Rec(UserId{3, 2}, 3, 12.0));
  const auto* e = t.entry(0, 3);
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->size(), 3u);
  // "All the neighbors in the same entry are arranged in increasing order
  // of their RTTs"; the first is the primary neighbor.
  EXPECT_DOUBLE_EQ((*e)[0].rtt_ms, 5.0);
  EXPECT_DOUBLE_EQ((*e)[1].rtt_ms, 12.0);
  EXPECT_DOUBLE_EQ((*e)[2].rtt_ms, 20.0);
}

TEST(NeighborTable, CapacityEvictsWorst) {
  NeighborTable t(1, 4, 2);
  EXPECT_TRUE(t.Insert(0, 1, Rec(UserId{1, 0}, 1, 10)));
  EXPECT_TRUE(t.Insert(0, 1, Rec(UserId{1, 1}, 2, 20)));
  // Closer record bumps the farthest out.
  EXPECT_TRUE(t.Insert(0, 1, Rec(UserId{1, 2}, 3, 5)));
  const auto* e = t.entry(0, 1);
  ASSERT_EQ(e->size(), 2u);
  EXPECT_EQ((*e)[0].id, (UserId{1, 2}));
  EXPECT_EQ((*e)[1].id, (UserId{1, 0}));
  // Farther record is rejected outright.
  EXPECT_FALSE(t.Insert(0, 1, Rec(UserId{1, 3}, 4, 100)));
  EXPECT_EQ(t.entry(0, 1)->size(), 2u);
}

TEST(NeighborTable, RemoveAndContains) {
  NeighborTable t(2, 4, 4);
  t.Insert(1, 2, Rec(UserId{0, 2}, 1, 3.0));
  EXPECT_TRUE(t.ContainsNeighbor(1, 2, UserId{0, 2}));
  EXPECT_FALSE(t.ContainsNeighbor(1, 2, UserId{0, 3}));
  EXPECT_FALSE(t.Remove(1, 2, UserId{0, 3}));
  EXPECT_TRUE(t.Remove(1, 2, UserId{0, 2}));
  EXPECT_EQ(t.entry(1, 2), nullptr);  // empty entries disappear
  EXPECT_FALSE(t.Remove(1, 2, UserId{0, 2}));
}

TEST(NeighborTable, RowIterationListsNonEmptyEntries) {
  NeighborTable t(2, 16, 4);
  t.Insert(0, 5, Rec(UserId{5, 0}, 1, 1));
  t.Insert(0, 9, Rec(UserId{9, 0}, 2, 1));
  const auto& row = t.row(0);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_TRUE(row.count(5) == 1 && row.count(9) == 1);
}

TEST(NeighborTable, BoundsChecked) {
  NeighborTable t(2, 4, 2);
  EXPECT_THROW(t.entry(2, 0), std::logic_error);
  EXPECT_THROW(t.entry(0, 4), std::logic_error);
  EXPECT_THROW(t.Insert(-1, 0, Rec(UserId{0, 0}, 1, 1)), std::logic_error);
}

TEST(NeighborTable, ServerTableShapeIsSingleRow) {
  NeighborTable server(1, 256, 4);
  EXPECT_EQ(server.rows(), 1);
  server.Insert(0, 200, Rec(UserId{200, 0, 0, 0, 0}, 3, 9.0));
  EXPECT_EQ(server.TotalRecords(), 1);
}

}  // namespace
}  // namespace tmesh
