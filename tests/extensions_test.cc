// Tests for the optional/extension features: packet-level rekey splitting
// (§2.5's coarser alternative) and the §5 centralized (GNP-style) ID
// assignment, plus the random-ID strawman used by the ablation benches.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/tmesh.h"
#include "protocols/group_session.h"
#include "topology/planetlab.h"

namespace tmesh {
namespace {

PlanetLabNetwork MakeNet(int hosts, std::uint64_t seed = 19) {
  PlanetLabParams p;
  p.hosts = hosts;
  p.seed = seed;
  return PlanetLabNetwork(p);
}

SessionConfig SmallSession() {
  SessionConfig s;
  s.group = GroupParams{3, 8, 2};
  s.assign.collect_target = 4;
  s.assign.thresholds_ms = {60.0, 20.0};
  s.with_nice = false;
  s.seed = 3;
  return s;
}

struct SplitSetup {
  PlanetLabNetwork net;
  GroupSession session;
  RekeyMessage msg;

  explicit SplitSetup(std::uint64_t seed)
      : net(MakeNet(51, seed)), session(net, 0, [&] {
          SessionConfig s = SmallSession();
          s.seed = seed;
          return s;
        }()) {
    Rng rng(seed);
    for (HostId h = 1; h <= 50; ++h) {
      EXPECT_TRUE(session.Join(h, h).has_value());
    }
    session.FlushRekeyState();
    for (int i = 0; i < 10; ++i) {
      auto victim = session.directory().RandomAliveMember(rng);
      session.Leave(*victim);
    }
    msg = session.key_tree().Rekey();
  }
};

TEST(PacketSplit, ReceivedSetIsSupersetOfEncryptionLevelAndSubsetOfFull) {
  SplitSetup setup(7);
  ASSERT_GT(setup.msg.RekeyCost(), 0u);

  auto run = [&](bool split, int packet) {
    Simulator sim;
    TMesh tmesh(setup.session.directory(), sim);
    TMesh::Options opts;
    opts.split = split;
    opts.split_packet_encs = packet;
    opts.record_encryptions = true;
    return tmesh.MulticastRekey(setup.msg, opts);
  };
  auto fine = run(true, 0);
  auto coarse = run(true, 8);
  auto full = run(false, 0);

  for (const auto& [id, info] : setup.session.directory().members()) {
    (void)id;
    auto h = static_cast<std::size_t>(info.host);
    std::set<std::int32_t> fine_set(fine.member_encs[h].begin(),
                                    fine.member_encs[h].end());
    std::set<std::int32_t> coarse_set(coarse.member_encs[h].begin(),
                                      coarse.member_encs[h].end());
    // Packet-level keeps everything encryption-level keeps...
    for (std::int32_t e : fine_set) {
      EXPECT_TRUE(coarse_set.count(e) > 0);
    }
    // ...but never more than the unsplit message, and no duplicates.
    EXPECT_LE(coarse.member[h].encs_received, full.member[h].encs_received);
    EXPECT_EQ(coarse_set.size(), coarse.member_encs[h].size());
    // Exact-once delivery is unaffected.
    EXPECT_EQ(coarse.member[h].copies, 1);
  }
}

TEST(PacketSplit, BandwidthGrowsWithPacketSize) {
  SplitSetup setup(9);
  auto total = [&](int packet) {
    Simulator sim;
    TMesh tmesh(setup.session.directory(), sim);
    TMesh::Options opts;
    opts.split = true;
    opts.split_packet_encs = packet;
    auto res = tmesh.MulticastRekey(setup.msg, opts);
    std::int64_t sum = 0;
    for (const auto& r : res.member) sum += r.encs_received;
    return sum;
  };
  std::int64_t fine = total(0);
  std::int64_t p4 = total(4);
  std::int64_t p16 = total(16);
  EXPECT_LE(fine, p4);
  EXPECT_LE(p4, p16);
}

TEST(PacketSplit, PacketSizeOneEqualsEncryptionLevel) {
  SplitSetup setup(11);
  auto run = [&](int packet) {
    Simulator sim;
    TMesh tmesh(setup.session.directory(), sim);
    TMesh::Options opts;
    opts.split = true;
    opts.split_packet_encs = packet;
    auto res = tmesh.MulticastRekey(setup.msg, opts);
    std::int64_t sum = 0;
    for (const auto& r : res.member) sum += r.encs_received;
    return sum;
  };
  EXPECT_EQ(run(0), run(1));
}

TEST(CentralizedAssignment, ProducesUniqueIdsAndConsistentTables) {
  auto net = MakeNet(60);
  SessionConfig cfg = SmallSession();
  cfg.centralized_assignment = true;
  GroupSession session(net, 0, cfg);
  std::set<UserId> seen;
  for (HostId h = 1; h <= 59; ++h) {
    IdAssignStats stats;
    auto id = session.Join(h, h, &stats);
    ASSERT_TRUE(id.has_value());
    EXPECT_TRUE(seen.insert(*id).second);
    // Centralized assignment makes no user-to-user queries.
    EXPECT_EQ(stats.queries, 0);
  }
  session.directory().CheckKConsistency();
}

TEST(CentralizedAssignment, GroupsLikeDistributed) {
  // Both policies should place same-site hosts into shared subtrees; we
  // compare the average common-prefix length of same-site pairs.
  PlanetLabParams p;
  p.hosts = 100;
  p.seed = 33;
  PlanetLabNetwork net(p);

  auto avg_same_site_cpl = [&](bool centralized) {
    SessionConfig cfg;
    cfg.group = GroupParams{5, 256, 4};
    cfg.assign.thresholds_ms = {150.0, 30.0, 9.0, 3.0};
    cfg.with_nice = false;
    cfg.centralized_assignment = centralized;
    cfg.seed = 4;
    GroupSession session(net, 0, cfg);
    std::map<HostId, UserId> ids;
    for (HostId h = 1; h < 100; ++h) {
      auto id = session.Join(h, h);
      EXPECT_TRUE(id.has_value());
      ids[h] = *id;
    }
    double cpl = 0;
    int pairs = 0;
    for (HostId a = 1; a < 100; ++a) {
      for (HostId b = a + 1; b < 100; ++b) {
        if (net.site_of(a) != net.site_of(b)) continue;
        cpl += ids[a].CommonPrefixLen(ids[b]);
        ++pairs;
      }
    }
    return pairs > 0 ? cpl / pairs : 0.0;
  };

  double central = avg_same_site_cpl(true);
  double distributed = avg_same_site_cpl(false);
  EXPECT_GT(central, 2.0);
  EXPECT_GT(distributed, 2.0);
}

TEST(RandomIds, SessionModeStillDeliversCorrectly) {
  auto net = MakeNet(41);
  SessionConfig cfg = SmallSession();
  cfg.random_ids = true;
  GroupSession session(net, 0, cfg);
  for (HostId h = 1; h <= 40; ++h) {
    ASSERT_TRUE(session.Join(h, h).has_value());
  }
  session.directory().CheckKConsistency();
  Simulator sim;
  TMesh tmesh(session.directory(), sim);
  auto res = tmesh.MulticastRekey(RekeyMessage{}, TMesh::Options{});
  EXPECT_EQ(res.ReceivedCount(), 40);
}

}  // namespace
}  // namespace tmesh
