#include "topology/graph.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"

namespace tmesh {
namespace {

TEST(Graph, SingleEdgeDistance) {
  Graph g;
  RouterId a = g.AddNode(), b = g.AddNode();
  g.AddEdge(a, b, 5.0);
  auto spt = g.Dijkstra(a);
  EXPECT_FLOAT_EQ(spt.dist_ms[static_cast<std::size_t>(b)], 5.0f);
  EXPECT_EQ(spt.parent[static_cast<std::size_t>(b)], a);
}

TEST(Graph, ChoosesShorterOfTwoRoutes) {
  // a - b - c (1+1) vs a - c (3)
  Graph g;
  RouterId a = g.AddNode(), b = g.AddNode(), c = g.AddNode();
  g.AddEdge(a, b, 1.0);
  g.AddEdge(b, c, 1.0);
  LinkId direct = g.AddEdge(a, c, 3.0);
  auto spt = g.Dijkstra(a);
  EXPECT_FLOAT_EQ(spt.dist_ms[static_cast<std::size_t>(c)], 2.0f);
  std::vector<LinkId> path;
  g.AppendPathLinks(spt, c, path);
  EXPECT_EQ(path.size(), 2u);
  for (LinkId l : path) EXPECT_NE(l, direct);
}

TEST(Graph, PathLinksConnectSourceToDest) {
  Graph g;
  for (int i = 0; i < 5; ++i) g.AddNode();
  g.AddEdge(0, 1, 1);
  g.AddEdge(1, 2, 1);
  g.AddEdge(2, 3, 1);
  g.AddEdge(3, 4, 1);
  auto spt = g.Dijkstra(0);
  std::vector<LinkId> path;
  g.AppendPathLinks(spt, 4, path);
  EXPECT_EQ(path.size(), 4u);
  double total = 0;
  for (LinkId l : path) total += g.link(l).rtt_ms;
  EXPECT_DOUBLE_EQ(total, 4.0);
}

TEST(Graph, DisconnectedNodeUnreachable) {
  Graph g;
  RouterId a = g.AddNode();
  RouterId b = g.AddNode();
  (void)b;
  auto spt = g.Dijkstra(a);
  EXPECT_FALSE(spt.Reachable(1));
  EXPECT_FALSE(g.IsConnected());
}

TEST(Graph, ConnectedDetection) {
  Graph g;
  RouterId a = g.AddNode(), b = g.AddNode(), c = g.AddNode();
  g.AddEdge(a, b, 1);
  EXPECT_FALSE(g.IsConnected());
  g.AddEdge(b, c, 1);
  EXPECT_TRUE(g.IsConnected());
}

TEST(Graph, RejectsSelfLoopAndBadWeight) {
  Graph g;
  RouterId a = g.AddNode();
  RouterId b = g.AddNode();
  EXPECT_THROW(g.AddEdge(a, a, 1.0), std::logic_error);
  EXPECT_THROW(g.AddEdge(a, b, 0.0), std::logic_error);
  EXPECT_THROW(g.AddEdge(a, b, -2.0), std::logic_error);
}

// Property: Dijkstra distances equal brute-force Bellman-Ford distances on
// random connected graphs, and extracted paths sum to the distance.
class GraphPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GraphPropertyTest, MatchesBellmanFordOnRandomGraphs) {
  const int n = GetParam();
  Rng rng(1234 + static_cast<std::uint64_t>(n));
  for (int trial = 0; trial < 5; ++trial) {
    Graph g;
    for (int i = 0; i < n; ++i) g.AddNode();
    // Random tree for connectivity + extra random edges.
    for (int i = 1; i < n; ++i) {
      g.AddEdge(i, static_cast<RouterId>(rng.UniformInt(0, i - 1)),
                rng.UniformReal(0.5, 10.0));
    }
    int extra = n;
    for (int e = 0; e < extra; ++e) {
      int a = static_cast<int>(rng.UniformInt(0, n - 1));
      int b = static_cast<int>(rng.UniformInt(0, n - 1));
      if (a != b) g.AddEdge(a, b, rng.UniformReal(0.5, 10.0));
    }
    ASSERT_TRUE(g.IsConnected());

    int src = static_cast<int>(rng.UniformInt(0, n - 1));
    auto spt = g.Dijkstra(src);

    // Bellman-Ford.
    std::vector<double> dist(static_cast<std::size_t>(n), 1e18);
    dist[static_cast<std::size_t>(src)] = 0;
    for (int round = 0; round < n; ++round) {
      for (int l = 0; l < g.link_count(); ++l) {
        const auto& link = g.link(l);
        double w = link.rtt_ms;
        auto a = static_cast<std::size_t>(link.a);
        auto b = static_cast<std::size_t>(link.b);
        if (dist[a] + w < dist[b]) dist[b] = dist[a] + w;
        if (dist[b] + w < dist[a]) dist[a] = dist[b] + w;
      }
    }
    for (int v = 0; v < n; ++v) {
      EXPECT_NEAR(spt.dist_ms[static_cast<std::size_t>(v)],
                  dist[static_cast<std::size_t>(v)], 1e-3);
      if (v != src) {
        std::vector<LinkId> path;
        g.AppendPathLinks(spt, v, path);
        double total = 0;
        for (LinkId l : path) total += g.link(l).rtt_ms;
        EXPECT_NEAR(total, dist[static_cast<std::size_t>(v)], 1e-3);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GraphPropertyTest,
                         ::testing::Values(2, 5, 20, 60));

}  // namespace
}  // namespace tmesh
