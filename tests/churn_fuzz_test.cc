// Tests for the churn fuzzing harness itself, plus the tier-1 fixed-seed
// smoke campaigns and the check-in repro corpus.
//
// The corpus scripts under tests/fuzz_repros/ are 1-minimal traces that
// violated an invariant on pre-fix code; each must now replay clean. A
// regression in any of the fixed paths re-trips its repro here, long
// before a nightly campaign would rediscover it.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/churn_fuzzer.h"

namespace tmesh {
namespace fuzz {
namespace {

FuzzConfig SmokeConfig(Substrate substrate, std::uint64_t seed) {
  FuzzConfig cfg;
  cfg.substrate = substrate;
  cfg.group = GroupParams{3, 8, 2};
  cfg.hosts = 48;
  cfg.seed = seed;
  cfg.ops = 600;
  return cfg;
}

TEST(ChurnFuzzSmoke, DirectoryCampaignRunsClean) {
  auto report = ChurnFuzzer::RunCampaign(SmokeConfig(Substrate::kDirectory, 101));
  ASSERT_FALSE(report.has_value())
      << report->violation.invariant << ": " << report->violation.message
      << "\n"
      << report->script;
}

TEST(ChurnFuzzSmoke, DirectoryCampaignWithLossRunsClean) {
  FuzzConfig cfg = SmokeConfig(Substrate::kDirectory, 303);
  cfg.loss_prob = 0.05;
  auto report = ChurnFuzzer::RunCampaign(cfg);
  ASSERT_FALSE(report.has_value())
      << report->violation.invariant << ": " << report->violation.message;
}

TEST(ChurnFuzzSmoke, DirectoryClusterCampaignRunsClean) {
  FuzzConfig cfg = SmokeConfig(Substrate::kDirectory, 404);
  cfg.cluster_heuristic = true;
  auto report = ChurnFuzzer::RunCampaign(cfg);
  ASSERT_FALSE(report.has_value())
      << report->violation.invariant << ": " << report->violation.message;
}

TEST(ChurnFuzzSmoke, SilkCampaignRunsClean) {
  FuzzConfig cfg = SmokeConfig(Substrate::kSilk, 202);
  cfg.group = GroupParams{3, 4, 2};  // dense ID space: subtrees have depth
  auto report = ChurnFuzzer::RunCampaign(cfg);
  ASSERT_FALSE(report.has_value())
      << report->violation.invariant << ": " << report->violation.message;
}

TEST(ChurnFuzzSmoke, SilkUncappedCampaignRunsClean) {
  // Leave bursts beyond Definition 3's K-1 tolerance; the harness sweeps
  // SilkGroup::RunMaintenance() to a fixpoint before asserting.
  FuzzConfig cfg = SmokeConfig(Substrate::kSilk, 205);
  cfg.group = GroupParams{3, 4, 2};
  cfg.uncapped_leaves = true;
  auto report = ChurnFuzzer::RunCampaign(cfg);
  ASSERT_FALSE(report.has_value())
      << report->violation.invariant << ": " << report->violation.message;
}

// Replicated manager: generated traces now draw kill/partition/heal ops
// against the HA facade, and every failover must keep the Theorem-1,
// forward-secrecy, and version-uniqueness invariants clean.
TEST(ChurnFuzzSmoke, DirectoryReplicatedCampaignRunsClean) {
  FuzzConfig cfg = SmokeConfig(Substrate::kDirectory, 505);
  cfg.replicas = 3;
  auto report = ChurnFuzzer::RunCampaign(cfg);
  ASSERT_FALSE(report.has_value())
      << report->violation.invariant << ": " << report->violation.message
      << "\n"
      << report->script;
}

TEST(ChurnFuzzSmoke, DirectoryReplicatedCampaignWithLossRunsClean) {
  FuzzConfig cfg = SmokeConfig(Substrate::kDirectory, 606);
  cfg.replicas = 3;
  cfg.loss_prob = 0.05;
  auto report = ChurnFuzzer::RunCampaign(cfg);
  ASSERT_FALSE(report.has_value())
      << report->violation.invariant << ": " << report->violation.message;
}

// The replica-count determinism pin at the fuzzer level: one handcrafted
// fault trace — a fail-stop kill, a partition+heal, and a mid-batch crash —
// must produce a byte-identical op log at every replica count that survives
// it (DESIGN.md §3g: nothing about an incarnation depends on N).
TEST(ChurnFuzzDeterminism, FaultTraceLogIsReplicaCountInvariant) {
  std::vector<Op> trace;
  auto push = [&trace](OpKind kind, std::uint32_t arg = 0,
                       std::uint32_t arg2 = 0) {
    trace.push_back(Op{kind, arg, arg2});
  };
  for (std::uint32_t i = 0; i < 10; ++i) push(OpKind::kJoin, i);
  push(OpKind::kAdvance, 2);                 // one full interval
  push(OpKind::kKillServer);                 // fail-stop the manager
  push(OpKind::kLeave, 3);                   // lands on the successor
  push(OpKind::kAdvance, 3);                 // past the election + rekey
  push(OpKind::kPartitionServer);
  push(OpKind::kAdvance, 1);
  push(OpKind::kHealPartition);
  push(OpKind::kAdvance, 2);
  push(OpKind::kLeave, 1);                   // dirty the batch...
  push(OpKind::kKillServer, 0, 1);           // ...then crash mid-batch
  push(OpKind::kAdvance, 3);
  push(OpKind::kData, 2);
  push(OpKind::kAdvance, 2);

  std::string baseline;
  for (int replicas : {3, 4, 7}) {
    FuzzConfig cfg = SmokeConfig(Substrate::kDirectory, 31);
    cfg.replicas = replicas;
    RunResult r = ChurnFuzzer::RunTrace(cfg, trace);
    ASSERT_FALSE(r.violation.has_value())
        << "replicas " << replicas << ": " << r.violation->invariant << ": "
        << r.violation->message;
    EXPECT_EQ(r.ops_executed, static_cast<int>(trace.size()));
    if (baseline.empty()) {
      baseline = r.log;
    } else {
      EXPECT_EQ(r.log, baseline) << "replicas " << replicas;
    }
  }
}

TEST(ChurnFuzzReducer, ShrinksPlantedViolationToMinimum) {
  // The planted invariant "membership stays below plant_max_members" has a
  // known 1-minimal repro: exactly plant_max_members join operations.
  FuzzConfig cfg = SmokeConfig(Substrate::kDirectory, 7);
  cfg.ops = 400;
  cfg.plant_max_members = 5;
  auto report = ChurnFuzzer::RunCampaign(cfg);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->violation.invariant, "planted");
  ASSERT_LE(report->minimized.size(), 5u);
  for (const Op& op : report->minimized) {
    EXPECT_EQ(op.kind, OpKind::kJoin);
  }
  // The reduced trace still trips the same invariant.
  RunResult rerun = ChurnFuzzer::RunTrace(cfg, report->minimized);
  ASSERT_TRUE(rerun.violation.has_value());
  EXPECT_EQ(rerun.violation->invariant, "planted");
}

TEST(ChurnFuzzDeterminism, LogByteIdenticalAcrossQueueDisciplines) {
  for (Substrate substrate : {Substrate::kDirectory, Substrate::kSilk}) {
    FuzzConfig cfg = SmokeConfig(substrate, 11);
    if (substrate == Substrate::kSilk) cfg.group = GroupParams{3, 4, 2};
    cfg.ops = 400;
    std::vector<Op> trace = ChurnFuzzer::GenerateTrace(cfg);

    FuzzConfig calendar = cfg;
    calendar.discipline = QueueDiscipline::kCalendar;
    FuzzConfig heap = cfg;
    heap.discipline = QueueDiscipline::kBinaryHeap;

    RunResult a = ChurnFuzzer::RunTrace(calendar, trace);
    RunResult b = ChurnFuzzer::RunTrace(heap, trace);
    ASSERT_FALSE(a.violation.has_value());
    ASSERT_FALSE(b.violation.has_value());
    EXPECT_EQ(a.ops_executed, b.ops_executed);
    EXPECT_EQ(a.log, b.log);

    // And replays of the same discipline are byte-identical too.
    RunResult c = ChurnFuzzer::RunTrace(calendar, trace);
    EXPECT_EQ(a.log, c.log);
  }
}

// Chunked execution: replaying one trace with every simulator drain sliced
// into RunFor chunks must be byte-identical to the monolithic replay, for
// several slice sizes, on both queue disciplines, with adaptive calendar
// retuning on and off. (The 10k-op version of this sweep is the PR's
// acceptance run; this keeps a fast always-on guard in tier 1.)
TEST(ChurnFuzzDeterminism, LogByteIdenticalAcrossRunForSliceShapes) {
  FuzzConfig cfg = SmokeConfig(Substrate::kDirectory, 23);
  cfg.ops = 300;
  std::vector<Op> trace = ChurnFuzzer::GenerateTrace(cfg);

  for (QueueDiscipline d :
       {QueueDiscipline::kCalendar, QueueDiscipline::kBinaryHeap}) {
    for (bool adaptive : {true, false}) {
      FuzzConfig base = cfg;
      base.discipline = d;
      base.adaptive_retune = adaptive;
      RunResult mono = ChurnFuzzer::RunTrace(base, trace);
      ASSERT_FALSE(mono.violation.has_value());
      for (std::size_t step : {std::size_t{1}, std::size_t{17},
                               std::size_t{1024}}) {
        FuzzConfig sliced = base;
        sliced.step_events = step;
        RunResult r = ChurnFuzzer::RunTrace(sliced, trace);
        ASSERT_FALSE(r.violation.has_value());
        EXPECT_EQ(r.ops_executed, mono.ops_executed)
            << "step " << step << " adaptive " << adaptive;
        EXPECT_EQ(r.log, mono.log)
            << "step " << step << " adaptive " << adaptive;
      }
    }
  }
}

TEST(ChurnFuzzScript, FormatParseRoundTrip) {
  FuzzConfig cfg = SmokeConfig(Substrate::kSilk, 42);
  cfg.group = GroupParams{3, 4, 2};
  cfg.uncapped_leaves = true;
  cfg.ops = 60;
  std::vector<Op> trace = ChurnFuzzer::GenerateTrace(cfg);
  std::string script = ChurnFuzzer::FormatScript(cfg, trace, "round trip");

  FuzzConfig parsed;
  std::vector<Op> parsed_trace;
  std::string error;
  ASSERT_TRUE(ChurnFuzzer::ParseScript(script, &parsed, &parsed_trace, &error))
      << error;
  EXPECT_EQ(parsed.substrate, cfg.substrate);
  EXPECT_EQ(parsed.group.digits, cfg.group.digits);
  EXPECT_EQ(parsed.group.base, cfg.group.base);
  EXPECT_EQ(parsed.group.capacity, cfg.group.capacity);
  EXPECT_EQ(parsed.hosts, cfg.hosts);
  EXPECT_EQ(parsed.seed, cfg.seed);
  EXPECT_EQ(parsed.uncapped_leaves, cfg.uncapped_leaves);
  ASSERT_EQ(parsed_trace.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed_trace[i].kind, trace[i].kind);
    EXPECT_EQ(parsed_trace[i].arg, trace[i].arg);
    EXPECT_EQ(parsed_trace[i].arg2, trace[i].arg2);
  }
}

// Every minimized repro checked in under tests/fuzz_repros/ documents a
// fixed bug; each must replay clean on current code.
TEST(ChurnFuzzCorpus, ArchivedReprosReplayClean) {
  const std::filesystem::path dir = FUZZ_REPRO_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  int replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".repro") continue;
    SCOPED_TRACE(entry.path().filename().string());
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good());
    std::ostringstream text;
    text << in.rdbuf();

    FuzzConfig cfg;
    std::vector<Op> trace;
    std::string error;
    ASSERT_TRUE(ChurnFuzzer::ParseScript(text.str(), &cfg, &trace, &error))
        << error;
    ASSERT_FALSE(trace.empty());

    for (QueueDiscipline d :
         {QueueDiscipline::kCalendar, QueueDiscipline::kBinaryHeap}) {
      cfg.discipline = d;
      RunResult r = ChurnFuzzer::RunTrace(cfg, trace);
      EXPECT_FALSE(r.violation.has_value())
          << r.violation->invariant << ": " << r.violation->message;
      EXPECT_EQ(r.ops_executed, static_cast<int>(trace.size()));
    }
    ++replayed;
  }
  EXPECT_GE(replayed, 3);  // the corpus this harness shipped with
}

// ---------------------------------------------------------------------------
// Big-N scale mode (ISSUE: --users up to 10^5 in tier1, 10^6 nightly).

TEST(ChurnFuzzScale, HundredThousandUserSmoke) {
  ScaleConfig cfg;
  cfg.users = 100000;
  cfg.epochs = 2;
  cfg.batch_joins = 1000;
  cfg.batch_leaves = 1000;
  cfg.shards = 2;  // exercises the sharded rekey (and its serial cross-check)
  cfg.seed = 7;
  // Generous: the RSS invariant targets the nightly 10^6 non-sanitized run;
  // here it only proves the hook fires, and sanitizer builds inflate RSS.
  cfg.max_peak_rss_kb = std::size_t{4} << 20;  // 4 GiB
  ScaleReport rep = ChurnFuzzer::RunScaleCampaign(cfg);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_GT(rep.events_per_sec, 0.0);
  EXPECT_GT(rep.peak_rss_kb, 0u);
  ASSERT_EQ(rep.epochs.size(), 2u);
  for (const auto& e : rep.epochs) {
    EXPECT_EQ(e.joins, 1000);
    EXPECT_EQ(e.leaves, 1000);
    EXPECT_GT(e.wgl_encryptions, 0u);
    EXPECT_GT(e.mtree_encryptions, 0u);
    EXPECT_GT(e.wgl_marked_nodes, 0u);
  }
}

TEST(ChurnFuzzScale, CampaignIsDeterministic) {
  ScaleConfig cfg;
  cfg.users = 10000;
  cfg.epochs = 3;
  cfg.batch_joins = 300;
  cfg.batch_leaves = 300;
  cfg.seed = 42;
  ScaleReport a = ChurnFuzzer::RunScaleCampaign(cfg);
  ScaleReport b = ChurnFuzzer::RunScaleCampaign(cfg);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.build_encryptions, b.build_encryptions);
  ASSERT_EQ(a.epochs.size(), b.epochs.size());
  for (std::size_t i = 0; i < a.epochs.size(); ++i) {
    EXPECT_EQ(a.epochs[i].wgl_encryptions, b.epochs[i].wgl_encryptions);
    EXPECT_EQ(a.epochs[i].mtree_encryptions, b.epochs[i].mtree_encryptions);
    EXPECT_EQ(a.epochs[i].wgl_marked_nodes, b.epochs[i].wgl_marked_nodes);
  }
}

TEST(ChurnFuzzScale, RssBoundViolationIsReported) {
  ScaleConfig cfg;
  cfg.users = 5000;
  cfg.epochs = 1;
  cfg.batch_joins = 100;
  cfg.batch_leaves = 100;
  cfg.max_peak_rss_kb = 1;  // impossible: the hook must trip
  ScaleReport rep = ChurnFuzzer::RunScaleCampaign(cfg);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("peak RSS"), std::string::npos) << rep.error;
}

TEST(ChurnFuzzScale, RejectsUndersizedIdSpace) {
  ScaleConfig cfg;
  cfg.users = 10000;
  cfg.group = GroupParams{2, 8, 4};  // 64 IDs for 10^4 users
  ScaleReport rep = ChurnFuzzer::RunScaleCampaign(cfg);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("ID space"), std::string::npos) << rep.error;
}

// ---------------------------------------------------------------------------
// Through-directory scale mode (tentpole acceptance): churn runs through
// Directory::AddMember/RemoveMember instead of bypassing the directory.

TEST(ChurnFuzzScale, ThroughDirectoryCrossCheckSmall) {
  // Every directory operation is replayed on a kScanReference twin and the
  // two directories compared byte-for-byte (tables, aliveness, hosts) — the
  // scale-mode analogue of directory_test's differential suite. O(N) per op
  // on the twin, so tier 1 runs it small.
  ScaleConfig cfg;
  cfg.users = 1500;
  cfg.epochs = 2;
  cfg.batch_joins = 150;
  cfg.batch_leaves = 150;
  cfg.seed = 13;
  cfg.through_directory = true;
  cfg.directory_cross_check = true;
  cfg.check_invariants = true;
  ScaleReport rep = ChurnFuzzer::RunScaleCampaign(cfg);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_GT(rep.dir_build_seconds, 0.0);
  EXPECT_GT(rep.dir_build_touched_per_op, 0.0);
  EXPECT_GT(rep.dir_allowance_per_op, 0.0);
  ASSERT_EQ(rep.epochs.size(), 2u);
  for (const auto& e : rep.epochs) {
    EXPECT_GT(e.dir_fails, 0);  // fail/repair cycles exercised
    EXPECT_GT(e.dir_touched_per_op, 0.0);
  }
}

TEST(ChurnFuzzScale, ThroughDirectoryAdmissionStaysSublinear) {
  // The complexity pin at a size where it means something: the campaign's
  // internal per-op admission-work bound is N-independent (slack * D * B *
  // (K + W) = 2240 for the 8^7/K=2 shape), far below N = 10^4, and the
  // campaign fails if any single operation exceeds it. A scan-based
  // directory touches all N members per join and cannot pass.
  ScaleConfig cfg;
  cfg.users = 10000;
  cfg.epochs = 2;
  cfg.batch_joins = 400;
  cfg.batch_leaves = 400;
  cfg.seed = 29;
  cfg.through_directory = true;
  cfg.directory_policy = AdmissionPolicy::kIndexed;
  ScaleReport rep = ChurnFuzzer::RunScaleCampaign(cfg);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_LE(rep.dir_build_touched_per_op, rep.dir_allowance_per_op);
  EXPECT_LT(rep.dir_allowance_per_op, cfg.users / 4.0);
  for (const auto& e : rep.epochs) {
    EXPECT_LE(e.dir_touched_per_op, rep.dir_allowance_per_op);
  }
}

// ---------------------------------------------------------------------------
// Tree-shape ablation: placement policies under the skewed-churn workload.

TEST(ChurnFuzzScale, PlacementAblationRunsBothArmsDeterministically) {
  ScaleConfig cfg;
  cfg.users = 5000;
  cfg.epochs = 2;
  cfg.batch_joins = 250;
  cfg.batch_leaves = 250;
  cfg.seed = 17;
  cfg.volatile_fraction = 0.3;

  for (WglPlacement placement :
       {WglPlacement::kShallowest, WglPlacement::kChurnAffinity}) {
    cfg.wgl_placement = placement;
    ScaleReport a = ChurnFuzzer::RunScaleCampaign(cfg);
    ScaleReport b = ChurnFuzzer::RunScaleCampaign(cfg);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t i = 0; i < a.epochs.size(); ++i) {
      EXPECT_EQ(a.epochs[i].wgl_encryptions, b.epochs[i].wgl_encryptions);
      EXPECT_GT(a.epochs[i].wgl_encryptions, 0u);
    }
  }
}

}  // namespace
}  // namespace fuzz
}  // namespace tmesh
