#include "ipmc/ip_multicast.h"

#include <gtest/gtest.h>

namespace tmesh {
namespace {

GtItmParams SmallGtItm() {
  GtItmParams p;
  p.transit_domains = 3;
  p.transit_routers_per_domain = 3;
  p.stub_domains_per_transit_router = 2;
  p.stub_routers_min = 3;
  p.stub_routers_max = 5;
  return p;
}

TEST(IpMulticast, EveryLinkCarriesAtMostOneCopy) {
  GtItmNetwork net(SmallGtItm(), 20, 2);
  IpMulticast ipmc(net);
  std::vector<HostId> receivers;
  for (HostId h = 1; h < 20; ++h) receivers.push_back(h);
  auto res = ipmc.Multicast(0, receivers, 500);
  int loaded = 0;
  for (int l = 0; l < net.link_count(); ++l) {
    auto msgs = res.link_messages[static_cast<std::size_t>(l)];
    EXPECT_LE(msgs, 1);  // DVMRP: one copy per tree link
    if (msgs == 1) {
      EXPECT_EQ(res.link_encryptions[static_cast<std::size_t>(l)], 500);
      ++loaded;
    } else {
      EXPECT_EQ(res.link_encryptions[static_cast<std::size_t>(l)], 0);
    }
  }
  EXPECT_EQ(loaded, res.tree_links);
  EXPECT_GT(loaded, 0);
}

TEST(IpMulticast, TreeIsNoWiderThanUnionOfPathsAndCoversThem) {
  GtItmNetwork net(SmallGtItm(), 12, 4);
  IpMulticast ipmc(net);
  std::vector<HostId> receivers{1, 2, 3, 4, 5};
  auto res = ipmc.Multicast(0, receivers, 7);
  // Every unicast path link is on the tree.
  for (HostId r : receivers) {
    std::vector<LinkId> path;
    net.AppendPathLinks(0, r, path);
    for (LinkId l : path) {
      EXPECT_EQ(res.link_messages[static_cast<std::size_t>(l)], 1);
    }
  }
}

TEST(IpMulticast, DelaysAreHalfRtt) {
  GtItmNetwork net(SmallGtItm(), 10, 6);
  IpMulticast ipmc(net);
  std::vector<HostId> receivers{1, 2, 3};
  auto res = ipmc.Multicast(0, receivers, 1);
  for (HostId r : receivers) {
    EXPECT_NEAR(res.delay_ms[static_cast<std::size_t>(r)],
                net.RttHosts(0, r) / 2.0, 1e-3);
  }
  EXPECT_DOUBLE_EQ(res.delay_ms[5], -1.0);  // non-receiver untouched
}

TEST(IpMulticast, SharedPathSegmentsNotDoubleCounted) {
  // Total tree links <= sum of individual path lengths.
  GtItmNetwork net(SmallGtItm(), 15, 8);
  IpMulticast ipmc(net);
  std::vector<HostId> receivers;
  for (HostId h = 1; h < 15; ++h) receivers.push_back(h);
  auto res = ipmc.Multicast(0, receivers, 1);
  std::size_t total_path_links = 0;
  for (HostId r : receivers) {
    std::vector<LinkId> path;
    net.AppendPathLinks(0, r, path);
    total_path_links += path.size();
  }
  EXPECT_LE(static_cast<std::size_t>(res.tree_links), total_path_links);
  EXPECT_LT(res.tree_links, net.link_count());
}

}  // namespace
}  // namespace tmesh
