#include "core/id_tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace tmesh {
namespace {

// The running example of Fig. 1: five users with IDs [0,0], [0,1], [2,0],
// [2,1], [2,2] and D = 2.
class Fig1IdTree : public ::testing::Test {
 protected:
  void SetUp() override {
    for (auto id : {UserId{0, 0}, UserId{0, 1}, UserId{2, 0}, UserId{2, 1},
                    UserId{2, 2}}) {
      tree_.Insert(id);
    }
  }
  IdTree tree_{2, 256};
};

TEST_F(Fig1IdTree, NodesExistForAllPrefixes) {
  EXPECT_TRUE(tree_.NodeExists(DigitString{}));
  EXPECT_TRUE(tree_.NodeExists(DigitString{0}));
  EXPECT_TRUE(tree_.NodeExists(DigitString{2}));
  EXPECT_FALSE(tree_.NodeExists(DigitString{1}));
  EXPECT_TRUE(tree_.NodeExists(UserId{2, 1}));
  EXPECT_EQ(tree_.user_count(), 5);
}

TEST_F(Fig1IdTree, SubtreeMembershipMatchesPaperExample) {
  // "userss u3, u4, and u5 belong to u1's (0,2)-ID subtree, and u2 belongs
  // to u1's (1,1)-ID subtree."
  UserId u1{0, 0};
  auto sub02 = tree_.UsersInSubtree(u1, 0, 2);
  EXPECT_EQ(sub02.size(), 3u);
  EXPECT_TRUE(std::count(sub02.begin(), sub02.end(), UserId{2, 0}) == 1);
  EXPECT_TRUE(std::count(sub02.begin(), sub02.end(), UserId{2, 1}) == 1);
  EXPECT_TRUE(std::count(sub02.begin(), sub02.end(), UserId{2, 2}) == 1);
  auto sub11 = tree_.UsersInSubtree(u1, 1, 1);
  ASSERT_EQ(sub11.size(), 1u);
  EXPECT_EQ(sub11[0], (UserId{0, 1}));
}

TEST_F(Fig1IdTree, ChildDigits) {
  EXPECT_EQ(tree_.ChildDigits(DigitString{}), (std::set<int>{0, 2}));
  EXPECT_EQ(tree_.ChildDigits(DigitString{2}), (std::set<int>{0, 1, 2}));
  EXPECT_TRUE(tree_.ChildDigits(DigitString{7}).empty());
}

TEST_F(Fig1IdTree, EraseRemovesEmptyNodes) {
  tree_.Erase(UserId{0, 0});
  tree_.Erase(UserId{0, 1});
  EXPECT_FALSE(tree_.NodeExists(DigitString{0}));
  EXPECT_TRUE(tree_.NodeExists(DigitString{}));
  EXPECT_EQ(tree_.user_count(), 3);
  EXPECT_EQ(tree_.ChildDigits(DigitString{}), (std::set<int>{2}));
}

TEST_F(Fig1IdTree, DuplicateInsertAndMissingEraseThrow) {
  EXPECT_THROW(tree_.Insert(UserId{0, 0}), std::logic_error);
  EXPECT_THROW(tree_.Erase(UserId{9, 9}), std::logic_error);
}

TEST(IdTree, CountWithPrefix) {
  IdTree t(3, 4);
  t.Insert(UserId{0, 1, 2});
  t.Insert(UserId{0, 1, 3});
  t.Insert(UserId{0, 2, 0});
  EXPECT_EQ(t.CountWithPrefix(DigitString{}), 3);
  EXPECT_EQ(t.CountWithPrefix(DigitString{0}), 3);
  EXPECT_EQ(t.CountWithPrefix(DigitString{0, 1}), 2);
  EXPECT_EQ(t.CountWithPrefix(DigitString{3}), 0);
}

class IdTreePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(IdTreePropertyTest, RandomChurnKeepsDefinitionsConsistent) {
  auto [depth, base] = GetParam();
  IdTree tree(depth, base);
  Rng rng(99);
  std::vector<UserId> present;

  for (int step = 0; step < 400; ++step) {
    bool insert = present.empty() || rng.Bernoulli(0.6);
    if (insert) {
      UserId id;
      for (int i = 0; i < depth; ++i) {
        id.Append(static_cast<int>(rng.UniformInt(0, base - 1)));
      }
      if (std::find(present.begin(), present.end(), id) != present.end()) {
        continue;
      }
      tree.Insert(id);
      present.push_back(id);
    } else {
      std::size_t idx = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(present.size()) - 1));
      tree.Erase(present[idx]);
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(idx));
    }

    // Definition 1: a node with ID v exists iff v prefixes some user.
    ASSERT_EQ(tree.user_count(), static_cast<int>(present.size()));
    for (const UserId& u : present) {
      for (int len = 0; len <= depth; ++len) {
        ASSERT_TRUE(tree.NodeExists(u.Prefix(len)));
      }
    }
    // Spot-check counts against brute force.
    if (step % 50 == 0 && !present.empty()) {
      UserId probe = present[0];
      for (int len = 0; len <= depth; ++len) {
        DigitString p = probe.Prefix(len);
        int expected = 0;
        for (const UserId& u : present) expected += p.IsPrefixOf(u) ? 1 : 0;
        ASSERT_EQ(tree.CountWithPrefix(p), expected);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IdTreePropertyTest,
    ::testing::Values(std::make_tuple(2, 4), std::make_tuple(3, 3),
                      std::make_tuple(5, 8), std::make_tuple(4, 256)));

}  // namespace
}  // namespace tmesh
