// Byte-identity suite for the conservative parallel driver (DESIGN.md §3i).
//
// The acceptance bar mirrors the repo's other parallelism seams
// (replica_runner_test, the sharded-rekey differential): executing on
// ParallelDriver with ANY worker count W — including W = 1 and a W that
// does not divide the host count — must reproduce the sequential
// Simulator's event history byte-for-byte: same (when, seq, host) stream,
// same per-host side effects, same event counts. The suite pins that four
// ways:
//  1. a scripted host-tagged workload with exact ties and zero-delay local
//     children, against the SequentialHostReference golden;
//  2. self-driving randomized cascades (randomness derived from hash
//     chains carried in the events themselves, so workers never share an
//     RNG) across seeds and worker counts;
//  3. driver stats (events scheduled/run, barrier windows) are
//     W-invariant, so exporting them as metrics cannot leak W;
//  4. the real protocol stack: RunLatencyExperiment with psim_workers in
//     {1, 2, 7} reproduces the sequential run's result series and its
//     metrics registry (modulo the documented engine-specific keys).
//
// Also here: the topology MinCrossHostDelayMs() contracts the driver's
// lookahead depends on — positive, and a true lower bound over sampled
// host pairs — for all three multi-host topology families.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "protocols/latency_experiment.h"
#include "sim/parallel_driver.h"
#include "topology/gtitm.h"
#include "topology/planetlab.h"
#include "topology/synthetic_wan.h"

namespace tmesh {
namespace {

using History = std::vector<ParallelDriver::HistoryEntry>;

// --- scripted golden ------------------------------------------------------

constexpr SimTime kLook = 100;  // scripted workloads keep cross hops >= this

// A fixed workload over 4 hosts: root events seeded from outside, local
// children at zero and small delays (exercising the FIFO tiebreak), cross-
// host children at exactly the lookahead and beyond (the tightest legal
// hop). Side effects land in per-host logs — worker-exclusive state, the
// discipline protocol code follows.
template <class Engine>
struct Scripted {
  Engine& eng;
  std::vector<std::vector<std::pair<SimTime, int>>> per_host;

  explicit Scripted(Engine& e) : eng(e), per_host(4) {}

  void Note(HostId h, int tag) {
    per_host[static_cast<std::size_t>(h)].emplace_back(eng.Now(), tag);
  }

  void Seed() {
    eng.ScheduleOnHost(0, 10, [this] {
      Note(0, 0);
      eng.ScheduleOnHost(0, eng.Now(), [this] { Note(0, 1); });  // zero delay
      eng.ScheduleOnHost(0, eng.Now(), [this] { Note(0, 2); });  // tie with 1
      eng.ScheduleOnHost(2, eng.Now() + kLook, [this] {  // tightest cross hop
        Note(2, 3);
        eng.ScheduleOnHost(1, eng.Now() + kLook + 5, [this] { Note(1, 4); });
      });
    });
    eng.ScheduleOnHost(1, 10, [this] {  // exact tie with host 0's root
      Note(1, 5);
      eng.ScheduleOnHost(1, eng.Now() + 3, [this] { Note(1, 6); });
    });
    eng.ScheduleOnHost(3, 5, [this] {
      Note(3, 7);
      eng.ScheduleOnHost(0, eng.Now() + 2 * kLook, [this] { Note(0, 8); });
    });
    eng.ScheduleOnHost(2, 500, [this] { Note(2, 9); });
  }
};

TEST(ParallelDriver, ScriptedWorkloadMatchesSequentialAtEveryW) {
  SequentialHostReference ref;
  Scripted<SequentialHostReference> golden(ref);
  golden.Seed();
  const std::size_t ran = ref.Run();
  EXPECT_EQ(ran, 10u);

  for (int w : {1, 2, 7}) {
    ParallelDriver::Options opts;
    opts.workers = w;
    opts.hosts = 4;
    opts.lookahead = kLook;
    ParallelDriver driver(opts);
    driver.EnableHistory(true);
    Scripted<ParallelDriver> load(driver);
    load.Seed();
    EXPECT_FALSE(driver.Empty());
    EXPECT_EQ(driver.Run(), 10u) << "W=" << w;
    EXPECT_TRUE(driver.Empty());
    EXPECT_EQ(driver.history(), ref.history()) << "W=" << w;
    EXPECT_EQ(load.per_host, golden.per_host) << "W=" << w;
    EXPECT_EQ(driver.Now(), ref.Now()) << "W=" << w;
  }
}

// --- randomized cascades --------------------------------------------------

std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Hash-chain cascades: each event derives its hops from state carried in
// the closure (never a shared RNG — workers run concurrently), mixes into a
// per-host accumulator, and spawns 0-2 children: local at any delay
// including zero, cross-host at >= lookahead.
template <class Engine>
struct Cascade {
  Engine& eng;
  int hosts;
  SimTime look;
  std::vector<std::uint64_t> acc;

  Cascade(Engine& e, int h, SimTime l)
      : eng(e), hosts(h), look(l), acc(static_cast<std::size_t>(h), 0) {}

  void Step(HostId host, std::uint64_t state, int depth) {
    acc[static_cast<std::size_t>(host)] ^= Mix(state);
    if (depth <= 0) return;
    const int kids = static_cast<int>(Mix(state ^ 0xc01d) % 3);
    for (int k = 0; k < kids; ++k) {
      const std::uint64_t s = Mix(state + 0x5eed + static_cast<std::uint64_t>(k));
      HostId to = host;
      SimTime delay = static_cast<SimTime>(s % 40);  // local, zero allowed
      if (s % 3 == 0) {
        to = static_cast<HostId>((s >> 8) % static_cast<std::uint64_t>(hosts));
        delay = look + static_cast<SimTime>((s >> 32) % 777);
      }
      eng.ScheduleOnHost(to, eng.Now() + delay,
                         [this, to, s, depth] { Step(to, s, depth - 1); });
    }
  }

  void Seed(std::uint64_t seed, int chains, int depth) {
    for (HostId h = 0; h < hosts; ++h) {
      for (int c = 0; c < chains; ++c) {
        const std::uint64_t s0 =
            Mix(seed * 9176 + static_cast<std::uint64_t>(h) * 131 + c);
        eng.ScheduleOnHost(h, static_cast<SimTime>(s0 % 200),
                           [this, h, s0, depth] { Step(h, s0, depth); });
      }
    }
  }
};

TEST(ParallelDriver, RandomizedCascadesMatchSequentialAtEveryW) {
  constexpr int kHosts = 13;  // odd: W=2 and W=7 both split hosts unevenly
  constexpr SimTime kCascadeLook = 1000;
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    SequentialHostReference ref;
    Cascade<SequentialHostReference> golden(ref, kHosts, kCascadeLook);
    golden.Seed(seed, 3, 12);
    ref.Run();
    ASSERT_GT(ref.history().size(), 100u) << "workload degenerate";

    for (int w : {1, 2, 7}) {
      ParallelDriver::Options opts;
      opts.workers = w;
      opts.hosts = kHosts;
      opts.lookahead = kCascadeLook;
      ParallelDriver driver(opts);
      driver.EnableHistory(true);
      Cascade<ParallelDriver> load(driver, kHosts, kCascadeLook);
      load.Seed(seed, 3, 12);
      driver.Run();
      EXPECT_EQ(driver.history(), ref.history())
          << "seed " << seed << " W=" << w;
      EXPECT_EQ(load.acc, golden.acc) << "seed " << seed << " W=" << w;
    }
  }
}

TEST(ParallelDriver, StatsAreWorkerInvariant) {
  constexpr int kHosts = 9;
  constexpr SimTime kStatsLook = 500;
  SequentialHostReference ref;
  Cascade<SequentialHostReference> golden(ref, kHosts, kStatsLook);
  golden.Seed(3, 2, 10);
  const std::size_t ref_run = ref.Run();

  ParallelDriver::Stats first{};
  for (int w : {1, 2, 7}) {
    ParallelDriver::Options opts;
    opts.workers = w;
    opts.hosts = kHosts;
    opts.lookahead = kStatsLook;
    ParallelDriver driver(opts);
    Cascade<ParallelDriver> load(driver, kHosts, kStatsLook);
    load.Seed(3, 2, 10);
    driver.Run();
    const ParallelDriver::Stats st = driver.stats();
    EXPECT_EQ(st.events_run, static_cast<std::uint64_t>(ref_run));
    EXPECT_EQ(st.events_scheduled, st.events_run);  // everything drained
    if (w == 1) {
      first = st;
      EXPECT_EQ(st.cross_partition_sends, 0u);  // one partition, no outbox
    } else {
      // The exported stats (event counts, windows) must not leak W;
      // cross_partition_sends is the one W-dependent stat and stays
      // benchmark-only.
      EXPECT_EQ(st.windows, first.windows) << "W=" << w;
    }
  }
}

// --- the real protocol stack ----------------------------------------------

SessionConfig PsimTestSession() {
  SessionConfig s;
  s.group = GroupParams{3, 8, 2};
  s.assign.collect_target = 4;
  s.assign.thresholds_ms.assign(2, 40.0);
  return s;
}

// WriteJson with the engine-specific keys removed: a sequential drain
// exports sim.calendar_retunes, a psim drain exports psim.windows; every
// other key — protocol counters, histograms, event counts — must agree
// exactly. Trailing commas are normalized so dropping a line cannot create
// a spurious diff on its neighbor.
std::string ComparableRegistryJson(const MetricsRegistry& reg) {
  std::ostringstream os;
  reg.WriteJson(os);
  std::istringstream is(os.str());
  std::string line, out;
  while (std::getline(is, line)) {
    if (line.find("calendar_retunes") != std::string::npos) continue;
    if (line.find("psim.windows") != std::string::npos) continue;
    if (!line.empty() && line.back() == ',') line.pop_back();
    out += line;
    out += '\n';
  }
  return out;
}

TEST(ParallelDriver, LatencyExperimentMatchesSequentialDrain) {
  PlanetLabParams np;
  np.hosts = 33;
  PlanetLabNetwork net(np);
  for (bool data_path : {false, true}) {
    LatencyRunConfig cfg;
    cfg.users = 32;
    cfg.data_path = data_path;
    cfg.session = PsimTestSession();
    MetricsRegistry seq_reg;
    cfg.metrics = &seq_reg;
    const LatencyRunResult seq = RunLatencyExperiment(net, cfg, 99);
    const std::string seq_json = ComparableRegistryJson(seq_reg);

    for (int w : {1, 2, 7}) {
      LatencyRunConfig pcfg = cfg;
      MetricsRegistry psim_reg;
      pcfg.metrics = &psim_reg;
      pcfg.psim_workers = w;
      const LatencyRunResult par = RunLatencyExperiment(net, pcfg, 99);
      EXPECT_EQ(par.tmesh.delay_ms, seq.tmesh.delay_ms)
          << "data=" << data_path << " W=" << w;
      EXPECT_EQ(par.tmesh.rdp, seq.tmesh.rdp)
          << "data=" << data_path << " W=" << w;
      EXPECT_EQ(par.tmesh.stress, seq.tmesh.stress)
          << "data=" << data_path << " W=" << w;
      EXPECT_EQ(par.nice.delay_ms, seq.nice.delay_ms);
      EXPECT_EQ(par.nice.rdp, seq.nice.rdp);
      EXPECT_EQ(par.nice.stress, seq.nice.stress);
      EXPECT_EQ(ComparableRegistryJson(psim_reg), seq_json)
          << "data=" << data_path << " W=" << w;
    }
  }
}

// --- topology lookahead bounds --------------------------------------------
//
// The driver's safety rests on MinCrossHostDelayMs() being a true positive
// lower bound: no pair of distinct hosts may be closer than the reported
// value. Verified here by exhaustive (PlanetLab/GT-ITM sizes permitting)
// pair scans against OneWayDelayMs.

template <class Net>
void CheckCrossHostBound(const Net& net) {
  const double bound = net.MinCrossHostDelayMs();
  ASSERT_GT(bound, 0.0);
  double observed = 1e300;
  for (HostId a = 0; a < net.host_count(); ++a) {
    for (HostId b = 0; b < net.host_count(); ++b) {
      if (a == b) continue;
      observed = std::min(observed, net.OneWayDelayMs(a, b));
    }
  }
  EXPECT_LE(bound, observed + 1e-9)
      << "reported lookahead bound exceeds an actual host pair delay";
}

TEST(MinCrossHostDelay, PlanetLabBoundHolds) {
  PlanetLabParams p;
  p.hosts = 40;
  p.seed = 5;
  CheckCrossHostBound(PlanetLabNetwork(p));
}

TEST(MinCrossHostDelay, GtItmBoundHolds) {
  GtItmParams p;
  p.seed = 11;
  p.stub_routers_min = 3;
  p.stub_routers_max = 5;
  CheckCrossHostBound(GtItmNetwork(p, 48, 12));
}

TEST(MinCrossHostDelay, SyntheticWanBoundHolds) {
  SyntheticWanParams p;
  p.hosts = 64;
  p.seed = 9;
  CheckCrossHostBound(SyntheticWanNetwork(p));
}

TEST(MinCrossHostDelay, BaseNetworkReportsUnknown) {
  // The default contract: a topology that cannot bound its delays reports
  // 0.0, and the experiment layer refuses to parallel-drive it.
  class Flat final : public Network {
   public:
    int host_count() const override { return 2; }
    double RttHosts(HostId, HostId) const override { return 2.0; }
    double RttGateways(HostId, HostId) const override { return 2.0; }
    double RttHostGateway(HostId) const override { return 0.0; }
  };
  EXPECT_EQ(Flat().MinCrossHostDelayMs(), 0.0);
}

}  // namespace
}  // namespace tmesh
