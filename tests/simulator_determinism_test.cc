// Determinism suite for the simulator core and its queue migration.
//
// The repository's experiments all lean on one contract: events run in
// strictly increasing (time, sequence-number) order, with sequence numbers
// assigned at Schedule* time, so a seeded simulation is bit-for-bit
// reproducible. This suite pins that contract three ways:
//
//  1. Golden ordering — a scripted workload has a hand-computed execution
//     trace, asserted verbatim. If any queue reorders ties (or loses the
//     contract in a refactor), this fails with the exact divergence.
//  2. Queue migration — the same workloads (scripted and randomized) run on
//     the seed implementation (LegacySimulator: binary heap of
//     std::function) and on both disciplines of the pooled-record Simulator
//     (calendar queue and binary heap), and must produce identical traces.
//     The random workloads are built to stress calendar-queue internals:
//     same-time bursts (FIFO bucket appends), dense ripples (day advance),
//     far-future events (overflow heap + migration), and growth/shrink
//     retunes.
//  3. End to end — a full T-mesh rekey (splitting, loss + retries, uplink
//     contention, cluster mode, a concurrent data session) run twice with
//     the same seed yields byte-identical serialized MemberDeliveryRecord
//     streams, and the calendar and binary-heap disciplines agree.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/directory.h"
#include "core/modified_key_tree.h"
#include "core/tmesh.h"
#include "sim/legacy_simulator.h"
#include "sim/simulator.h"
#include "topology/planetlab.h"

namespace tmesh {
namespace {

using Trace = std::vector<std::pair<SimTime, int>>;

// --- 1. golden ordering --------------------------------------------------

// Scripted workload: ties, zero delays, re-entrant scheduling, and one
// far-future event (2^40 past the clock — deep in the calendar queue's
// overflow region).
template <class Sim>
Trace ScriptedTrace() {
  Sim sim;
  Trace trace;
  auto hit = [&](int tag) { trace.emplace_back(sim.Now(), tag); };
  sim.ScheduleIn(300, [&] { hit(0); });
  sim.ScheduleIn(100, [&] {
    hit(1);
    sim.ScheduleIn(0, [&] { hit(5); });
    sim.ScheduleIn(50, [&] { hit(6); });
  });
  sim.ScheduleIn(200, [&] {
    hit(2);
    sim.ScheduleIn(SimTime{1} << 40, [&] { hit(7); });
  });
  sim.ScheduleIn(100, [&] { hit(3); });  // tie with tag 1: schedule order
  sim.ScheduleIn(0, [&] { hit(4); });
  sim.Run();
  return trace;
}

TEST(GoldenOrdering, ScriptedWorkloadMatchesHandComputedTrace) {
  const Trace golden = {
      {0, 4},   {100, 1}, {100, 3}, {100, 5},
      {150, 6}, {200, 2}, {300, 0}, {(SimTime{1} << 40) + 200, 7},
  };
  EXPECT_EQ(ScriptedTrace<LegacySimulator>(), golden);
  EXPECT_EQ(ScriptedTrace<Simulator>(), golden);
}

// --- 2. old -> new queue migration --------------------------------------

// Self-driving random workload. Every event appends (Now, tag) to the trace
// and may schedule children with delays drawn from four regimes: zero
// (same-instant ties), short (intra-day ripple), long (multi-day hops), and
// huge (overflow heap). Randomness is consumed *inside* events, so the
// streams only stay aligned if the execution orders match — any reordering
// derails the whole tail of the trace, which is exactly what we want to
// detect.
template <class Sim>
struct RandomDriver {
  Sim sim;
  Rng rng;
  Trace trace;
  int next_tag = 0;

  explicit RandomDriver(std::uint64_t seed) : rng(seed) {}

  void Spawn(SimTime delay, int depth) {
    const int tag = next_tag++;
    sim.ScheduleIn(delay, [this, tag, depth] {
      trace.emplace_back(sim.Now(), tag);
      if (depth <= 0) return;
      const int kids = static_cast<int>(rng.UniformInt(0, 2));
      for (int k = 0; k < kids; ++k) {
        const std::int64_t regime = rng.UniformInt(0, 9);
        SimTime d;
        if (regime < 3) {
          d = 0;
        } else if (regime < 7) {
          d = rng.UniformInt(1, 64);
        } else if (regime < 9) {
          d = rng.UniformInt(1000, 50000);
        } else {
          d = rng.UniformInt(1, 4) << 30;
        }
        Spawn(d, depth - 1);
      }
    });
  }
};

template <class Sim>
Trace RandomTrace(std::uint64_t seed) {
  RandomDriver<Sim> d(seed);
  // A burst of simultaneous roots (bucket FIFO appends), a spread of
  // near-term roots, and a few far-future ones.
  for (int i = 0; i < 32; ++i) d.Spawn(500, 3);
  for (int i = 0; i < 96; ++i) d.Spawn(d.rng.UniformInt(0, 20000), 3);
  for (int i = 0; i < 8; ++i) d.Spawn(d.rng.UniformInt(1, 8) << 28, 2);
  d.sim.Run();
  return d.trace;
}

// The binary-heap discipline of the pooled Simulator is the "obviously
// correct" reference the calendar queue is checked against.
template <QueueDiscipline D>
struct DisciplinedSimulator : Simulator {
  DisciplinedSimulator() : Simulator(Options{.discipline = D}) {}
};

TEST(QueueMigration, RandomWorkloadsAgreeAcrossAllThreeQueues) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1234567ull}) {
    Trace legacy = RandomTrace<LegacySimulator>(seed);
    ASSERT_GT(legacy.size(), 200u) << "workload too small to be probing";
    for (std::size_t i = 1; i < legacy.size(); ++i) {
      ASSERT_GE(legacy[i].first, legacy[i - 1].first) << "time went backward";
    }
    EXPECT_EQ(
        RandomTrace<DisciplinedSimulator<QueueDiscipline::kCalendar>>(seed),
        legacy)
        << "seed " << seed;
    EXPECT_EQ(
        RandomTrace<DisciplinedSimulator<QueueDiscipline::kBinaryHeap>>(seed),
        legacy)
        << "seed " << seed;
  }
}

TEST(QueueMigration, RunUntilSemanticsAgree) {
  auto run = [](auto&& sim) {
    Trace trace;
    for (int i = 0; i < 40; ++i) {
      sim.ScheduleIn(i * 25, [&trace, &sim, i] {
        trace.emplace_back(sim.Now(), i);
      });
    }
    std::vector<std::size_t> counts;
    for (SimTime deadline : {100, 100, 333, 5000}) {
      counts.push_back(sim.RunUntil(deadline));
      trace.emplace_back(sim.Now(), -1);  // clock checkpoints
    }
    counts.push_back(sim.Run());
    return std::make_pair(trace, counts);
  };
  LegacySimulator legacy;
  Simulator cal;
  Simulator heap(Simulator::Options{.discipline = QueueDiscipline::kBinaryHeap});
  auto expect = run(legacy);
  EXPECT_EQ(run(cal), expect);
  EXPECT_EQ(run(heap), expect);
}

// Chunked execution: RandomTrace's workload driven through RunFor slices of
// several budget shapes must reproduce the monolithic Run() trace exactly,
// for both disciplines and with adaptive calendar retuning on and off. The
// slicing reuses RandomDriver so randomness still flows through the events
// themselves — any order divergence derails the stream.
template <class Sim>
Trace RandomTraceSliced(std::uint64_t seed, const EventBudget& chunk) {
  RandomDriver<Sim> d(seed);
  for (int i = 0; i < 32; ++i) d.Spawn(500, 3);
  for (int i = 0; i < 96; ++i) d.Spawn(d.rng.UniformInt(0, 20000), 3);
  for (int i = 0; i < 8; ++i) d.Spawn(d.rng.UniformInt(1, 8) << 28, 2);
  for (;;) {
    EventBudget b = chunk;
    if (b.deadline != kNoTime) {
      // Rolling deadline: each slice covers another window of virtual time.
      b.deadline += d.sim.Now();
    }
    RunStatus s = d.sim.RunFor(b);
    if (s.next_event_time == kNoTime) break;
  }
  d.sim.Run();  // nothing left; proves the loop really drained
  return d.trace;
}

template <QueueDiscipline D, bool Adaptive>
struct TunedSimulator : Simulator {
  TunedSimulator()
      : Simulator(Options{.discipline = D, .adaptive_retune = Adaptive}) {}
};

TEST(ChunkedExecution, RunForSlicesReproduceMonolithicRunExactly) {
  const std::uint64_t seed = 20260806;
  const Trace golden = RandomTrace<LegacySimulator>(seed);
  ASSERT_GT(golden.size(), 200u);

  const EventBudget shapes[] = {
      EventBudget::Events(1),            // single-step
      EventBudget::Events(7),            // small odd chunks
      EventBudget::Events(512),          // large chunks
      EventBudget::Until(100'000),       // rolling time windows
      EventBudget{13, 1'000'000},        // both limits at once
  };
  auto check = [&]<class Sim>(const char* name) {
    EXPECT_EQ(RandomTrace<Sim>(seed), golden) << name << " monolithic";
    int i = 0;
    for (const EventBudget& b : shapes) {
      EXPECT_EQ((RandomTraceSliced<Sim>(seed, b)), golden)
          << name << " budget shape " << i;
      ++i;
    }
  };
  check.template operator()<TunedSimulator<QueueDiscipline::kCalendar, true>>(
      "calendar/adaptive");
  check.template operator()<TunedSimulator<QueueDiscipline::kCalendar, false>>(
      "calendar/static");
  check.template operator()<TunedSimulator<QueueDiscipline::kBinaryHeap, true>>(
      "heap");
}

// --- 3. end-to-end byte-identical delivery records -----------------------

template <class T>
void Put(std::string& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  out.append(buf, sizeof v);
}

// Field-wise serialization (not memcmp of the structs: padding bytes are
// indeterminate and would make the comparison flaky-by-construction).
std::string Serialize(const TMesh::Result& res) {
  std::string out;
  Put(out, std::uint64_t{res.member.size()});
  for (const MemberDeliveryRecord& r : res.member) {
    Put(out, r.copies);
    Put(out, r.delay_ms);
    Put(out, r.rdp);
    Put(out, r.forward_level);
    Put(out, r.from);
    Put(out, r.stress);
    Put(out, r.group_key_copies);
    Put(out, r.encs_received);
    Put(out, r.encs_forwarded);
  }
  Put(out, std::uint64_t{res.member_encs.size()});
  for (const auto& encs : res.member_encs) {
    Put(out, std::uint64_t{encs.size()});
    for (std::int32_t e : encs) Put(out, e);
  }
  Put(out, res.messages_sent);
  Put(out, res.messages_lost);
  Put(out, res.deliveries_failed);
  Put(out, res.start);
  return out;
}

UserId RandomId(Rng& rng, int d, int b) {
  UserId id;
  for (int i = 0; i < d; ++i) {
    id.Append(static_cast<int>(rng.UniformInt(0, b - 1)));
  }
  return id;
}

struct Group {
  PlanetLabNetwork net;
  Directory dir;
  ModifiedKeyTree tree;
  ClusterRekeying clusters;
  std::vector<UserId> ids;

  Group(int users, GroupParams gp, std::uint64_t seed)
      : net([&] {
          PlanetLabParams p;
          p.hosts = users + 1;
          p.seed = seed;
          return p;
        }()),
        dir(net, gp, 0),
        tree(gp.digits),
        clusters(gp.digits) {
    Rng rng(seed * 131 + 7);
    for (HostId h = 1; h <= users; ++h) {
      UserId id;
      do {
        id = RandomId(rng, gp.digits, gp.base);
      } while (dir.Contains(id));
      dir.AddMember(id, h, h);
      tree.Join(id);
      clusters.Join(id, h);
      ids.push_back(id);
    }
  }
};

// One full scenario: churned group, split rekey with loss + retries under
// an uplink model, plus a concurrent data session sharing the uplinks.
// Returns the serialized records of both sessions.
std::string RekeyScenario(QueueDiscipline discipline, bool cluster_mode) {
  GroupParams gp{3, 4, 2};
  Group g(60, gp, 2026);
  (void)g.tree.Rekey();
  (void)g.clusters.Rekey();
  for (int k = 0; k < 10; ++k) {
    UserId victim = g.ids.back();
    g.dir.RemoveMember(victim);
    g.tree.Leave(victim);
    g.clusters.Leave(victim);
    g.ids.pop_back();
  }
  RekeyMessage msg = cluster_mode ? g.clusters.Rekey() : g.tree.Rekey();

  Simulator sim(Simulator::Options{.discipline = discipline});
  TMesh tmesh(g.dir, sim);
  TMesh::UplinkModel uplink;
  uplink.kbps = 512.0;
  tmesh.SetUplinkModel(uplink);

  TMesh::Options opts;
  opts.split = true;
  opts.record_encryptions = true;
  opts.loss_prob = 0.15;
  opts.loss_seed = 99;
  if (cluster_mode) opts.clusters = &g.clusters;

  auto rekey = tmesh.BeginRekey(msg, opts);
  TMesh::Options data_opts;
  data_opts.loss_prob = 0.10;
  data_opts.loss_seed = 7;
  auto data = tmesh.BeginData(g.ids.front(), data_opts);
  sim.Run();
  return Serialize(rekey.result()) + Serialize(data.result());
}

TEST(EndToEndDeterminism, SameSeedSameBytesAcrossRuns) {
  for (bool cluster_mode : {false, true}) {
    std::string a = RekeyScenario(QueueDiscipline::kCalendar, cluster_mode);
    std::string b = RekeyScenario(QueueDiscipline::kCalendar, cluster_mode);
    EXPECT_EQ(a, b) << "cluster_mode=" << cluster_mode;
    EXPECT_GT(a.size(), 1000u);
  }
}

TEST(EndToEndDeterminism, SameBytesAcrossQueueDisciplines) {
  for (bool cluster_mode : {false, true}) {
    std::string cal = RekeyScenario(QueueDiscipline::kCalendar, cluster_mode);
    std::string heap =
        RekeyScenario(QueueDiscipline::kBinaryHeap, cluster_mode);
    EXPECT_EQ(cal, heap) << "cluster_mode=" << cluster_mode;
  }
}

}  // namespace
}  // namespace tmesh
