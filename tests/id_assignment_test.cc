#include "core/id_assignment.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "topology/planetlab.h"

namespace tmesh {
namespace {

IdAssignParams SmallParams(int d) {
  IdAssignParams p;
  p.collect_target = 4;
  p.thresholds_ms.assign(static_cast<std::size_t>(d - 1), 50.0);
  return p;
}

TEST(IdAssignment, FirstJoinGetsAllZeros) {
  PlanetLabParams np;
  np.hosts = 5;
  PlanetLabNetwork net(np);
  Directory dir(net, GroupParams{3, 4, 2}, 0);
  IdAssigner assigner(dir, SmallParams(3), 1);
  auto id = assigner.AssignId(1);
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, (UserId{0, 0, 0}));
}

TEST(IdAssignment, ThresholdVectorMustMatchDepth) {
  PlanetLabParams np;
  np.hosts = 3;
  PlanetLabNetwork net(np);
  Directory dir(net, GroupParams{4, 4, 2}, 0);
  IdAssignParams p;
  p.thresholds_ms = {100.0};  // needs 3
  EXPECT_THROW(IdAssigner(dir, p, 1), std::logic_error);
}

TEST(IdAssignment, AssignedIdsAreUnique) {
  PlanetLabParams np;
  np.hosts = 60;
  PlanetLabNetwork net(np);
  Directory dir(net, GroupParams{3, 8, 4}, 0);
  IdAssigner assigner(dir, SmallParams(3), 7);
  std::set<UserId> seen;
  for (HostId h = 1; h < 60; ++h) {
    auto id = assigner.AssignId(h);
    ASSERT_TRUE(id.has_value());
    EXPECT_TRUE(seen.insert(*id).second) << "duplicate " << id->ToString();
    dir.AddMember(*id, h, h);
  }
  dir.CheckKConsistency();
}

TEST(IdAssignment, ExhaustsTinyIdSpaceGracefully) {
  PlanetLabParams np;
  np.hosts = 10;
  PlanetLabNetwork net(np);
  Directory dir(net, GroupParams{2, 2, 2}, 0);  // 4 possible IDs
  IdAssigner assigner(dir, SmallParams(2), 3);
  int assigned = 0;
  for (HostId h = 1; h < 10; ++h) {
    auto id = assigner.AssignId(h);
    if (!id.has_value()) break;
    dir.AddMember(*id, h, h);
    ++assigned;
  }
  EXPECT_EQ(assigned, 4);
  EXPECT_FALSE(assigner.AssignId(9).has_value());
}

TEST(IdAssignment, ProximityGroupsSameSiteUsers) {
  // With thresholds far above intra-site RTTs, users of one site should end
  // up sharing their first digits far more often than users of different
  // continents.
  PlanetLabParams np;
  np.hosts = 120;
  np.seed = 21;
  PlanetLabNetwork net(np);
  Directory dir(net, GroupParams{5, 256, 4}, 0);
  IdAssignParams p;
  p.collect_target = 10;
  p.thresholds_ms = {150.0, 30.0, 9.0, 3.0};  // the paper's defaults
  IdAssigner assigner(dir, p, 9);

  std::map<HostId, UserId> ids;
  for (HostId h = 1; h < 120; ++h) {
    auto id = assigner.AssignId(h);
    ASSERT_TRUE(id.has_value());
    dir.AddMember(*id, h, h);
    ids[h] = *id;
  }

  double same_site_cpl = 0, cross_continent_cpl = 0;
  int same_site_pairs = 0, cross_pairs = 0;
  for (HostId a = 1; a < 120; ++a) {
    for (HostId b = a + 1; b < 120; ++b) {
      int cpl = ids[a].CommonPrefixLen(ids[b]);
      if (net.site_of(a) == net.site_of(b)) {
        same_site_cpl += cpl;
        ++same_site_pairs;
      } else if (net.continent_of(a) != net.continent_of(b)) {
        cross_continent_cpl += cpl;
        ++cross_pairs;
      }
    }
  }
  ASSERT_GT(same_site_pairs, 0);
  ASSERT_GT(cross_pairs, 0);
  same_site_cpl /= same_site_pairs;
  cross_continent_cpl /= cross_pairs;
  // Same-site users share long prefixes; cross-continent users almost none.
  EXPECT_GT(same_site_cpl, 2.0);
  EXPECT_LT(cross_continent_cpl, 1.0);
}

TEST(IdAssignment, StatsCountProbes) {
  PlanetLabParams np;
  np.hosts = 40;
  PlanetLabNetwork net(np);
  Directory dir(net, GroupParams{3, 16, 4}, 0);
  IdAssigner assigner(dir, SmallParams(3), 5);
  IdAssignStats stats;
  for (HostId h = 1; h < 40; ++h) {
    auto id = assigner.AssignId(h, &stats);
    ASSERT_TRUE(id.has_value());
    dir.AddMember(*id, h, h);
  }
  // The last joiner of a populated group must have probed someone.
  EXPECT_GT(stats.queries, 0);
  EXPECT_GT(stats.rtt_probes, 0);
}

TEST(IdAssignment, ServerTailWhenNobodyIsClose) {
  // Thresholds of 0 ms force the "not close to anyone" path: the server
  // assigns a fresh subtree at digit 0, so every user gets its own level-1
  // subtree until the digits run out.
  PlanetLabParams np;
  np.hosts = 12;
  PlanetLabNetwork net(np);
  Directory dir(net, GroupParams{3, 16, 4}, 0);
  IdAssignParams p;
  p.collect_target = 4;
  p.thresholds_ms = {0.0, 0.0};
  IdAssigner assigner(dir, p, 5);
  std::set<int> first_digits;
  for (HostId h = 1; h < 12; ++h) {
    IdAssignStats stats;
    auto id = assigner.AssignId(h, &stats);
    ASSERT_TRUE(id.has_value());
    if (h > 1) {
      EXPECT_TRUE(stats.server_assigned_tail);
    }
    dir.AddMember(*id, h, h);
    first_digits.insert(id->digit(0));
  }
  EXPECT_EQ(first_digits.size(), 11u);
}

}  // namespace
}  // namespace tmesh
