// Tests for the binary wire format: exact round trips, size accounting,
// and total decoding (corruption, truncation, and garbage never crash or
// return partial state).
#include "core/wire.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/modified_key_tree.h"

namespace tmesh {
namespace {

Encryption MakeEnc(KeyId enc, KeyId key, std::uint32_t nv, std::uint32_t ev) {
  Encryption e;
  e.enc_key_id = enc;
  e.new_key_id = key;
  e.new_key_version = nv;
  e.enc_key_version = ev;
  return e;
}

TEST(Wire, EmptyMessageRoundTrips) {
  RekeyMessage msg;
  auto bytes = EncodeRekeyMessage(msg);
  EXPECT_EQ(bytes.size(), WireSize(msg));
  auto decoded = DecodeRekeyMessage(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->encryptions.empty());
}

TEST(Wire, MessageRoundTripPreservesEverything) {
  RekeyMessage msg;
  msg.encryptions.push_back(MakeEnc(KeyId{2, 0}, KeyId{2}, 7, 3));
  msg.encryptions.push_back(MakeEnc(KeyId{}, KeyId{}, 1, 1));
  msg.encryptions.push_back(
      MakeEnc(KeyId{255, 0, 255, 1, 9}, KeyId{255, 0, 255, 1}, 42, 41));
  auto bytes = EncodeRekeyMessage(msg);
  EXPECT_EQ(bytes.size(), WireSize(msg));
  auto decoded = DecodeRekeyMessage(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->encryptions.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded->encryptions[i].enc_key_id,
              msg.encryptions[i].enc_key_id);
    EXPECT_EQ(decoded->encryptions[i].new_key_id,
              msg.encryptions[i].new_key_id);
    EXPECT_EQ(decoded->encryptions[i].new_key_version,
              msg.encryptions[i].new_key_version);
    EXPECT_EQ(decoded->encryptions[i].enc_key_version,
              msg.encryptions[i].enc_key_version);
  }
}

TEST(Wire, RealKeyTreeMessageRoundTrips) {
  ModifiedKeyTree tree(3);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 2; ++b) tree.Join(UserId{a, b, 0});
  }
  (void)tree.Rekey();
  tree.Leave(UserId{1, 0, 0});
  RekeyMessage msg = tree.Rekey();
  ASSERT_GT(msg.RekeyCost(), 0u);
  auto decoded = DecodeRekeyMessage(EncodeRekeyMessage(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->RekeyCost(), msg.RekeyCost());
}

TEST(Wire, RejectsBadMagic) {
  auto bytes = EncodeRekeyMessage(RekeyMessage{});
  bytes[0] = 'X';
  EXPECT_FALSE(DecodeRekeyMessage(bytes).has_value());
}

TEST(Wire, RejectsTruncationAtEveryPoint) {
  RekeyMessage msg;
  msg.encryptions.push_back(MakeEnc(KeyId{1, 2, 3}, KeyId{1, 2}, 5, 4));
  auto bytes = EncodeRekeyMessage(msg);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> partial(bytes.begin(),
                                      bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeRekeyMessage(partial).has_value()) << "cut " << cut;
  }
}

TEST(Wire, RejectsTrailingGarbage) {
  auto bytes = EncodeRekeyMessage(RekeyMessage{});
  bytes.push_back(0);
  EXPECT_FALSE(DecodeRekeyMessage(bytes).has_value());
}

TEST(Wire, RejectsOverlongDigitString) {
  RekeyMessage msg;
  msg.encryptions.push_back(MakeEnc(KeyId{1}, KeyId{}, 1, 1));
  auto bytes = EncodeRekeyMessage(msg);
  // Corrupt the enc_key_id length byte (right after magic + count).
  bytes[8] = kMaxDigits + 1;
  EXPECT_FALSE(DecodeRekeyMessage(bytes).has_value());
}

TEST(Wire, RandomBytesNeverCrash) {
  Rng rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(
        static_cast<std::size_t>(rng.UniformInt(0, 64)));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
    }
    (void)DecodeRekeyMessage(junk);  // must not throw or crash
    (void)DecodeNeighborRecord(junk);
  }
}

TEST(Wire, RejectsHugeCountField) {
  RekeyMessage msg;
  msg.encryptions.push_back(MakeEnc(KeyId{1, 2}, KeyId{1}, 2, 1));
  auto bytes = EncodeRekeyMessage(msg);
  // The count lives right after the 4-byte magic. A huge claimed count must
  // fail cleanly — decoding is bounded by the buffer, never by the count
  // (the asan-ubsan preset verifies no read past the end).
  for (std::uint32_t claimed :
       {0u, 2u, 0xFFu, 0xFFFFu, 0x7FFFFFFFu, 0xFFFFFFFFu}) {
    auto corrupt = bytes;
    corrupt[4] = static_cast<std::uint8_t>(claimed);
    corrupt[5] = static_cast<std::uint8_t>(claimed >> 8);
    corrupt[6] = static_cast<std::uint8_t>(claimed >> 16);
    corrupt[7] = static_cast<std::uint8_t>(claimed >> 24);
    EXPECT_FALSE(DecodeRekeyMessage(corrupt).has_value())
        << "claimed count " << claimed;
  }
}

// Every single-bit flip either fails cleanly or decodes to a message that
// re-encodes at the same size and survives a second round trip (the format
// is canonical except the mocked ciphertext payload, which encodes as
// zeros). Either way: no crash, no partial state, no out-of-bounds access —
// the asan-ubsan preset runs this sweep under AddressSanitizer to make
// "never reads past the buffer" a checked claim.
TEST(Wire, BitFlipSweepNeverCrashesAndStaysCanonical) {
  ModifiedKeyTree tree(3);
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) tree.Join(UserId{a, b, 0});
  }
  (void)tree.Rekey();
  tree.Leave(UserId{0, 1, 0});
  auto bytes = EncodeRekeyMessage(tree.Rekey());
  ASSERT_GT(bytes.size(), 12u);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = bytes;
      flipped[i] = static_cast<std::uint8_t>(flipped[i] ^ (1u << bit));
      auto decoded = DecodeRekeyMessage(flipped);
      if (decoded.has_value()) {
        auto reenc = EncodeRekeyMessage(*decoded);
        EXPECT_EQ(reenc.size(), flipped.size()) << "byte " << i << " bit "
                                                << bit;
        auto redec = DecodeRekeyMessage(reenc);
        ASSERT_TRUE(redec.has_value()) << "byte " << i << " bit " << bit;
        EXPECT_EQ(redec->encryptions.size(), decoded->encryptions.size());
      }
      if (i < 4) {
        EXPECT_FALSE(decoded.has_value()) << "magic byte " << i << " survived";
      }
    }
  }
}

// Corrupting any DigitString length byte to an out-of-range value must be
// rejected without reading the phantom digits.
TEST(Wire, RejectsCorruptedLengthFieldsEverywhere) {
  RekeyMessage msg;
  msg.encryptions.push_back(MakeEnc(KeyId{1, 2, 3}, KeyId{1, 2}, 5, 4));
  msg.encryptions.push_back(MakeEnc(KeyId{7}, KeyId{}, 2, 1));
  auto bytes = EncodeRekeyMessage(msg);
  for (std::size_t i = 8; i < bytes.size(); ++i) {
    auto corrupt = bytes;
    corrupt[i] = 0xFF;  // far beyond kMaxDigits and any in-buffer length
    auto decoded = DecodeRekeyMessage(corrupt);
    if (decoded.has_value()) {
      // 0xFF landed in a digit/payload/version byte, not a length byte.
      EXPECT_EQ(EncodeRekeyMessage(*decoded).size(), corrupt.size())
          << "byte " << i;
    }
  }
}

TEST(Wire, NeighborRecordRejectsTruncationAtEveryPoint) {
  NeighborRecord rec;
  rec.id = UserId{3, 1, 4, 1, 5};
  rec.host = 42;
  rec.rtt_ms = 12.25;
  rec.join_time = FromSeconds(9.0);
  auto bytes = EncodeNeighborRecord(rec);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> partial(
        bytes.begin(), bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(DecodeNeighborRecord(partial).has_value()) << "cut " << cut;
  }
  bytes.push_back(0);  // trailing garbage
  EXPECT_FALSE(DecodeNeighborRecord(bytes).has_value());
}

TEST(Wire, NeighborRecordBitFlipSweepStaysCanonical) {
  NeighborRecord rec;
  rec.id = UserId{9, 8, 7};
  rec.host = 77;
  rec.rtt_ms = 3.5;
  rec.join_time = FromSeconds(1.25);
  auto bytes = EncodeNeighborRecord(rec);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = bytes;
      flipped[i] = static_cast<std::uint8_t>(flipped[i] ^ (1u << bit));
      auto decoded = DecodeNeighborRecord(flipped);
      if (decoded.has_value()) {
        // Canonical up to the rtt microsecond rounding: a second round trip
        // must preserve every field exactly.
        auto reenc = EncodeNeighborRecord(*decoded);
        EXPECT_EQ(reenc.size(), flipped.size()) << "byte " << i << " bit "
                                                << bit;
        auto redec = DecodeNeighborRecord(reenc);
        ASSERT_TRUE(redec.has_value()) << "byte " << i << " bit " << bit;
        EXPECT_EQ(redec->id, decoded->id);
        EXPECT_EQ(redec->host, decoded->host);
        EXPECT_EQ(redec->join_time, decoded->join_time);
        EXPECT_NEAR(redec->rtt_ms, decoded->rtt_ms, 1e-3);
      }
    }
  }
}

TEST(Wire, NeighborRecordRoundTrip) {
  NeighborRecord rec;
  rec.id = UserId{9, 8, 7, 6, 5};
  rec.host = 1234;
  rec.rtt_ms = 88.125;
  rec.join_time = FromSeconds(123.5);
  auto bytes = EncodeNeighborRecord(rec);
  EXPECT_EQ(bytes.size(), WireSize(rec));
  auto decoded = DecodeNeighborRecord(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, rec.id);
  EXPECT_EQ(decoded->host, rec.host);
  EXPECT_NEAR(decoded->rtt_ms, rec.rtt_ms, 1e-3);  // microsecond precision
  EXPECT_EQ(decoded->join_time, rec.join_time);
}

TEST(Wire, SizeMatchesUplinkModelScale) {
  // TMesh::UplinkModel charges each rekey packet the exact wire size of
  // its encryptions. Pin the formula it depends on: two length-prefixed
  // IDs, two 4-byte versions, and a kKeyBytes ciphertext.
  Encryption e = MakeEnc(KeyId{1, 2, 3, 4, 5}, KeyId{1, 2, 3, 4}, 2, 1);
  EXPECT_EQ(WireSize(e),
            static_cast<std::size_t>((1 + e.enc_key_id.size()) +
                                     (1 + e.new_key_id.size()) + 4 + 4) +
                kKeyBytes);
  // The size is depth-dependent — a root-level and a leaf-level encryption
  // must not be charged the same number of bytes.
  Encryption shallow = MakeEnc(KeyId{1}, KeyId{}, 2, 1);
  EXPECT_EQ(WireSize(e) - WireSize(shallow),
            static_cast<std::size_t>(
                (e.enc_key_id.size() - shallow.enc_key_id.size()) +
                (e.new_key_id.size() - shallow.new_key_id.size())));
}

class WireFuzzRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(WireFuzzRoundTrip, RandomMessagesRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    RekeyMessage msg;
    int n = static_cast<int>(rng.UniformInt(0, 40));
    for (int i = 0; i < n; ++i) {
      KeyId parent;
      int len = static_cast<int>(rng.UniformInt(0, kMaxDigits - 1));
      for (int d = 0; d < len; ++d) {
        parent.Append(static_cast<int>(rng.UniformInt(0, 255)));
      }
      KeyId child = parent.Child(static_cast<int>(rng.UniformInt(0, 255)));
      msg.encryptions.push_back(MakeEnc(
          child, parent, static_cast<std::uint32_t>(rng.UniformInt(0, 1 << 30)),
          static_cast<std::uint32_t>(rng.UniformInt(0, 1 << 30))));
    }
    auto bytes = EncodeRekeyMessage(msg);
    ASSERT_EQ(bytes.size(), WireSize(msg));
    auto decoded = DecodeRekeyMessage(bytes);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->encryptions.size(), msg.encryptions.size());
    for (std::size_t i = 0; i < msg.encryptions.size(); ++i) {
      ASSERT_EQ(decoded->encryptions[i].enc_key_id,
                msg.encryptions[i].enc_key_id);
      ASSERT_EQ(decoded->encryptions[i].new_key_version,
                msg.encryptions[i].new_key_version);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzRoundTrip, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace tmesh
