#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace tmesh {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(FromMillis(1.5), 1500);
  EXPECT_DOUBLE_EQ(ToMillis(2500), 2.5);
  EXPECT_EQ(FromSeconds(2.0), 2000000);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleIn(300, [&] { order.push_back(3); });
  sim.ScheduleIn(100, [&] { order.push_back(1); });
  sim.ScheduleIn(200, [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 300);
}

TEST(Simulator, SimultaneousEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleIn(50, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ReentrantScheduling) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.ScheduleIn(10, [&] {
    times.push_back(sim.Now());
    sim.ScheduleIn(5, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Simulator, RunUntilLeavesLaterEventsQueued) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleIn(10, [&] { ++ran; });
  sim.ScheduleIn(20, [&] { ++ran; });
  EXPECT_EQ(sim.RunUntil(15), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.Now(), 15);
  EXPECT_EQ(sim.Pending(), 1u);
  sim.Run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  SimTime seen = -1;
  sim.ScheduleIn(100, [&] {
    sim.ScheduleIn(0, [&] { seen = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 100);
}

TEST(Simulator, RejectsSchedulingIntoThePast) {
  Simulator sim;
  sim.ScheduleIn(10, [] {});
  sim.Run();
  EXPECT_THROW(sim.ScheduleAt(5, [] {}), std::logic_error);
  EXPECT_THROW(sim.ScheduleIn(-1, [] {}), std::logic_error);
}

TEST(Simulator, ClockNeverGoesBackward) {
  Simulator sim;
  SimTime last = 0;
  bool monotone = true;
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleIn(i % 7 * 10, [&, i] {
      if (sim.Now() < last) monotone = false;
      last = sim.Now();
      if (i % 3 == 0) {
        sim.ScheduleIn(1, [&] {
          if (sim.Now() < last) monotone = false;
          last = sim.Now();
        });
      }
    });
  }
  sim.Run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace tmesh
