#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <utility>
#include <vector>

namespace tmesh {
namespace {

TEST(SimTime, Conversions) {
  EXPECT_EQ(FromMillis(1.5), 1500);
  EXPECT_DOUBLE_EQ(ToMillis(2500), 2.5);
  EXPECT_EQ(FromSeconds(2.0), 2000000);
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleIn(300, [&] { order.push_back(3); });
  sim.ScheduleIn(100, [&] { order.push_back(1); });
  sim.ScheduleIn(200, [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 300);
}

TEST(Simulator, SimultaneousEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.ScheduleIn(50, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ReentrantScheduling) {
  Simulator sim;
  std::vector<SimTime> times;
  sim.ScheduleIn(10, [&] {
    times.push_back(sim.Now());
    sim.ScheduleIn(5, [&] { times.push_back(sim.Now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Simulator, RunUntilLeavesLaterEventsQueued) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleIn(10, [&] { ++ran; });
  sim.ScheduleIn(20, [&] { ++ran; });
  EXPECT_EQ(sim.RunUntil(15), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.Now(), 15);
  EXPECT_EQ(sim.Pending(), 1u);
  sim.Run();
  EXPECT_EQ(ran, 2);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  SimTime seen = -1;
  sim.ScheduleIn(100, [&] {
    sim.ScheduleIn(0, [&] { seen = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 100);
}

TEST(Simulator, RejectsSchedulingIntoThePast) {
  Simulator sim;
  sim.ScheduleIn(10, [] {});
  sim.Run();
  EXPECT_THROW(sim.ScheduleAt(5, [] {}), std::logic_error);
  EXPECT_THROW(sim.ScheduleIn(-1, [] {}), std::logic_error);
}

TEST(Simulator, ResetRestoresFreshObservableState) {
  Simulator sim;
  int destroyed = 0;
  struct CountDestroy {
    int* n;
    CountDestroy(int* n) : n(n) {}
    CountDestroy(const CountDestroy& o) : n(o.n) {}
    CountDestroy(CountDestroy&& o) noexcept : n(o.n) { o.n = nullptr; }
    ~CountDestroy() {
      if (n) ++*n;
    }
    void operator()() const {}
  };
  sim.ScheduleIn(5, [] {});
  sim.ScheduleIn(50, CountDestroy(&destroyed));   // will still be pending
  sim.ScheduleIn(900, CountDestroy(&destroyed));  // far-future, also pending
  sim.RunUntil(10);
  EXPECT_EQ(sim.Now(), 10);
  EXPECT_FALSE(sim.Empty());

  sim.Reset();
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_TRUE(sim.Empty());
  EXPECT_EQ(sim.Pending(), 0u);
  // Pending closures were destroyed exactly once (they may own resources).
  EXPECT_EQ(destroyed, 2);
}

// A Reset() simulator must execute a workload bit-identically to a brand
// new one — the property ReplicaRunner workers rely on when reusing one
// Simulator across replicas.
template <class Sim>
std::vector<std::pair<SimTime, int>> ReplayTrace(Sim& sim) {
  std::vector<std::pair<SimTime, int>> trace;
  auto hit = [&](int tag) { trace.emplace_back(sim.Now(), tag); };
  for (int i = 0; i < 64; ++i) {
    sim.ScheduleIn(i % 9 * 7, [&, i] {
      hit(i);
      if (i % 4 == 0) {
        sim.ScheduleIn(0, [&, i] { hit(1000 + i); });
        sim.ScheduleIn(1 << (i % 13), [&, i] { hit(2000 + i); });
      }
    });
  }
  sim.Run();
  return trace;
}

TEST(Simulator, ResetSimulatorReplaysIdentically) {
  for (QueueDiscipline d :
       {QueueDiscipline::kCalendar, QueueDiscipline::kBinaryHeap}) {
    Simulator fresh(Simulator::Options{.discipline = d});
    auto expected = ReplayTrace(fresh);

    Simulator reused(Simulator::Options{.discipline = d});
    // Dirty it thoroughly: run a different workload, leave events pending.
    for (int i = 0; i < 200; ++i) reused.ScheduleIn(i * 3, [] {});
    reused.ScheduleIn(1'000'000'000, [] {});
    reused.RunUntil(300);
    for (int round = 0; round < 3; ++round) {
      reused.Reset();
      EXPECT_EQ(ReplayTrace(reused), expected) << "round " << round;
    }
  }
}

TEST(Step, RunsExactlyOneEventAndReportsEmptiness) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleIn(10, [&] { order.push_back(1); });
  sim.ScheduleIn(20, [&] { order.push_back(2); });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.Now(), 10);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.Now(), 20);
  // Empty queue: Step runs nothing, returns false, leaves the clock alone.
  EXPECT_FALSE(sim.Step());
  EXPECT_EQ(sim.Now(), 20);
}

TEST(RunFor, EventCapBindsBeforeDeadlineAndLeavesClockAtLastEvent) {
  Simulator sim;
  int ran = 0;
  for (int i = 1; i <= 5; ++i) sim.ScheduleIn(i * 10, [&] { ++ran; });
  RunStatus s = sim.RunFor(EventBudget{2, /*deadline=*/1000});
  EXPECT_EQ(s.events_run, 2u);
  EXPECT_EQ(s.exhausted_reason, Exhausted::kEvents);
  EXPECT_EQ(s.next_event_time, 30);
  // An event-cap stop must NOT advance the clock to the deadline: resuming
  // mid-slice would otherwise skew Now() for the remaining events.
  EXPECT_EQ(sim.Now(), 20);
  EXPECT_EQ(ran, 2);
}

TEST(RunFor, DeadlineEqualToHeadEventTimeRunsTheEvent) {
  // Boundary: RunUntil/RunFor are inclusive — an event AT the deadline runs.
  Simulator sim;
  int ran = 0;
  sim.ScheduleIn(100, [&] { ++ran; });
  sim.ScheduleIn(101, [&] { ++ran; });
  RunStatus s = sim.RunFor(EventBudget::Until(100));
  EXPECT_EQ(s.events_run, 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(s.exhausted_reason, Exhausted::kDeadline);
  EXPECT_EQ(s.next_event_time, 101);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(RunFor, ZeroMaxEventsMeansUncapped) {
  // EventBudget{} (max_events 0, no deadline) is Run(): drain everything.
  Simulator sim;
  int ran = 0;
  for (int i = 0; i < 7; ++i) sim.ScheduleIn(i, [&] { ++ran; });
  RunStatus s = sim.RunFor(EventBudget{});
  EXPECT_EQ(s.events_run, 7u);
  EXPECT_EQ(ran, 7);
  EXPECT_EQ(s.exhausted_reason, Exhausted::kDrained);
  EXPECT_EQ(s.next_event_time, kNoTime);
}

TEST(RunFor, ExhaustedBudgetOnNonEmptyQueueRunsNothing) {
  Simulator sim;
  int ran = 0;
  sim.ScheduleIn(10, [&] { ++ran; });
  // A deadline strictly before the head event: nothing runs, the clock
  // still advances to the deadline (same final Now() as RunUntil).
  RunStatus s = sim.RunFor(EventBudget::Until(5));
  EXPECT_EQ(s.events_run, 0u);
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(s.exhausted_reason, Exhausted::kDeadline);
  EXPECT_EQ(s.next_event_time, 10);
  EXPECT_EQ(sim.Now(), 5);
  EXPECT_EQ(sim.Pending(), 1u);
}

TEST(RunFor, DrainedSliceWithDeadlineAdvancesClockToDeadline) {
  Simulator sim;
  sim.ScheduleIn(10, [] {});
  RunStatus s = sim.RunFor(EventBudget{0, 50});
  EXPECT_EQ(s.events_run, 1u);
  EXPECT_EQ(s.exhausted_reason, Exhausted::kDrained);
  EXPECT_EQ(s.next_event_time, kNoTime);
  // Drained before the deadline: the slice still lands on the deadline, so
  // a deadline-sliced loop ends at the same Now() as one RunUntil().
  EXPECT_EQ(sim.Now(), 50);
}

TEST(RunFor, ReentrantScheduleAtNowAtTheSliceBoundary) {
  // An event at the slice's cap that schedules another event for the same
  // instant: the child must be visible as next_event_time and run first in
  // the next slice (same when, later seq).
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleIn(10, [&] {
    order.push_back(1);
    sim.ScheduleAt(sim.Now(), [&] { order.push_back(2); });
  });
  sim.ScheduleIn(20, [&] { order.push_back(3); });
  RunStatus s = sim.RunFor(EventBudget::Events(1));
  EXPECT_EQ(s.events_run, 1u);
  EXPECT_EQ(s.exhausted_reason, Exhausted::kEvents);
  EXPECT_EQ(s.next_event_time, 10);  // the re-entrant child, not the 20
  EXPECT_EQ(sim.Now(), 10);
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RunFor, ChunkedDrainMatchesMonolithicAcrossDisciplinesAndReset) {
  // DrainSliced must reproduce Run() exactly for any slice size, on both
  // disciplines, and on a Reset() simulator.
  auto trace_of = [](Simulator& sim, std::size_t step) {
    std::vector<std::pair<SimTime, int>> trace;
    for (int i = 0; i < 40; ++i) {
      sim.ScheduleIn(i % 7 * 11, [&trace, &sim, i] {
        trace.emplace_back(sim.Now(), i);
        if (i % 5 == 0) {
          sim.ScheduleIn(3, [&trace, &sim, i] {
            trace.emplace_back(sim.Now(), 100 + i);
          });
        }
      });
    }
    DrainSliced(sim, step);
    return trace;
  };
  for (QueueDiscipline d :
       {QueueDiscipline::kCalendar, QueueDiscipline::kBinaryHeap}) {
    Simulator mono(Simulator::Options{.discipline = d});
    auto expected = trace_of(mono, 0);
    for (std::size_t step : {std::size_t{1}, std::size_t{3}, std::size_t{64}}) {
      Simulator sliced(Simulator::Options{.discipline = d});
      EXPECT_EQ(trace_of(sliced, step), expected) << "step " << step;
      sliced.Reset();
      EXPECT_EQ(trace_of(sliced, step), expected)
          << "step " << step << " after Reset";
    }
  }
}

TEST(Simulator, ClockNeverGoesBackward) {
  Simulator sim;
  SimTime last = 0;
  bool monotone = true;
  for (int i = 0; i < 100; ++i) {
    sim.ScheduleIn(i % 7 * 10, [&, i] {
      if (sim.Now() < last) monotone = false;
      last = sim.Now();
      if (i % 3 == 0) {
        sim.ScheduleIn(1, [&] {
          if (sim.Now() < last) monotone = false;
          last = sim.Now();
        });
      }
    });
  }
  sim.Run();
  EXPECT_TRUE(monotone);
}

}  // namespace
}  // namespace tmesh
