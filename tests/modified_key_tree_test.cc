#include "core/modified_key_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"

namespace tmesh {
namespace {

// Replays the paper's Fig. 4 key tree (D = 2; users [0,1], [0,2], [2,0],
// [2,1], [2,2]).
class Fig4Tree : public ::testing::Test {
 protected:
  void SetUp() override {
    for (auto id : {UserId{0, 1}, UserId{0, 2}, UserId{2, 0}, UserId{2, 1},
                    UserId{2, 2}}) {
      tree_.Join(id);
    }
    (void)tree_.Rekey();  // settle the initial batch
  }
  ModifiedKeyTree tree_{2};
};

TEST_F(Fig4Tree, UsersHoldRootPathKeys) {
  // "user u5 is given the three keys on the path from its u-node to the
  // root: k5, k345, and k1-5" — i.e. IDs [2,2], [2], [].
  auto keys = tree_.KeysOf(UserId{2, 2});
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], DigitString{});
  EXPECT_EQ(keys[1], DigitString{2});
  EXPECT_EQ(keys[2], (UserId{2, 2}));
}

TEST_F(Fig4Tree, SingleLeaveUpdatesPathAndEmitsFourEncryptions) {
  // "Suppose that a single user, say u5, leaves... the key server... changes
  // k1-5 to k1-4, and changes k345 to k34... and generates four encryptions:
  // {k1-4}k12, {k1-4}k34, {k34}k3, {k34}k4."
  std::uint32_t root_v = tree_.KeyVersion(DigitString{});
  std::uint32_t k2_v = tree_.KeyVersion(DigitString{2});
  std::uint32_t k0_v = tree_.KeyVersion(DigitString{0});

  tree_.Leave(UserId{2, 2});
  RekeyMessage msg = tree_.Rekey();
  EXPECT_EQ(msg.RekeyCost(), 4u);

  EXPECT_EQ(tree_.KeyVersion(DigitString{}), root_v + 1);
  EXPECT_EQ(tree_.KeyVersion(DigitString{2}), k2_v + 1);
  EXPECT_EQ(tree_.KeyVersion(DigitString{0}), k0_v);  // untouched branch

  // Encryption IDs: {newRoot} under [0] and [2]; {new[2]} under [2,0],[2,1].
  std::multiset<std::string> ids;
  for (const Encryption& e : msg.encryptions) {
    ids.insert(e.enc_key_id.ToString());
  }
  EXPECT_EQ(ids, (std::multiset<std::string>{"[0]", "[2]", "[2,0]", "[2,1]"}));
}

TEST_F(Fig4Tree, Lemma3NeededIffEncryptionIdPrefixesUserId) {
  tree_.Leave(UserId{2, 2});
  RekeyMessage msg = tree_.Rekey();
  // u3 = [2,0] "needs only {k1-4}k34" plus its branch key update {k34}k3.
  int needed = 0;
  for (const Encryption& e : msg.encryptions) {
    if (UserNeedsEncryption(UserId{2, 0}, e)) ++needed;
  }
  EXPECT_EQ(needed, 2);  // {newRoot}_{k[2]} and {new[2]}_{k[2,0]}
  // u1 = [0,1] needs exactly one: {newRoot}_{k[0]}.
  needed = 0;
  for (const Encryption& e : msg.encryptions) {
    if (UserNeedsEncryption(UserId{0, 1}, e)) ++needed;
  }
  EXPECT_EQ(needed, 1);
}

TEST(ModifiedKeyTree, JoinCreatesMissingKNodes) {
  ModifiedKeyTree t(3);
  t.Join(UserId{1, 2, 3});
  EXPECT_EQ(t.user_count(), 1);
  EXPECT_EQ(t.knode_count(), 3);  // [], [1], [1,2]
  EXPECT_EQ(t.KeyVersion(DigitString{1, 2}), 1u);
  t.CheckInvariants();
}

TEST(ModifiedKeyTree, LePrunes) {
  ModifiedKeyTree t(3);
  t.Join(UserId{1, 2, 3});
  t.Join(UserId{1, 0, 0});
  t.Leave(UserId{1, 2, 3});
  EXPECT_EQ(t.KeyVersion(DigitString{1, 2}), 0u);  // pruned
  EXPECT_NE(t.KeyVersion(DigitString{1}), 0u);     // survives
  t.CheckInvariants();
}

TEST(ModifiedKeyTree, JoinThenLeaveSameIntervalStillRekeysExposedPath) {
  ModifiedKeyTree t(2);
  t.Join(UserId{0, 0});
  (void)t.Rekey();
  std::uint32_t root_v = t.KeyVersion(DigitString{});
  // A user joins and leaves within the interval: it held the keys (the
  // server unicasts them at join time), so the surviving path must rotate.
  t.Join(UserId{0, 1});
  t.Leave(UserId{0, 1});
  RekeyMessage msg = t.Rekey();
  EXPECT_EQ(t.KeyVersion(DigitString{}), root_v + 1);
  EXPECT_GT(msg.RekeyCost(), 0u);
}

TEST(ModifiedKeyTree, BatchSharesPathUpdates) {
  // Two leaves under the same level-1 subtree update that path once, not
  // twice: cost = children(root) + children([0]) after removal.
  ModifiedKeyTree t(2);
  for (int j = 0; j < 4; ++j) t.Join(UserId{0, j});
  for (int j = 0; j < 2; ++j) t.Join(UserId{1, j});
  (void)t.Rekey();
  t.Leave(UserId{0, 0});
  t.Leave(UserId{0, 1});
  RekeyMessage msg = t.Rekey();
  // Updated k-nodes: [] (2 children), [0] (2 remaining children) => 4.
  EXPECT_EQ(msg.RekeyCost(), 4u);
}

TEST(ModifiedKeyTree, RejectsWrongSizeAndDuplicates) {
  ModifiedKeyTree t(3);
  EXPECT_THROW(t.Join(UserId{0, 0}), std::logic_error);
  t.Join(UserId{0, 0, 0});
  EXPECT_THROW(t.Join(UserId{0, 0, 0}), std::logic_error);
  EXPECT_THROW(t.Leave(UserId{1, 1, 1}), std::logic_error);
}

// Decryption-closure property: after any batch, every current member,
// starting from the keys it held before the batch (or received at join),
// can decrypt its whole new root path from the rekey message alone.
class ModifiedTreeClosureTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ModifiedTreeClosureTest, EveryMemberCanDecryptItsPath) {
  auto [depth, base] = GetParam();
  ModifiedKeyTree tree(depth);
  Rng rng(2024);
  std::vector<UserId> members;
  // Key state per member: key id -> version held.
  std::map<UserId, std::map<KeyId, std::uint32_t>> held;

  auto grant_initial_keys = [&](const UserId& u) {
    // The server unicasts the joiner its current path keys (§3.1).
    for (int len = 0; len <= depth; ++len) {
      held[u][u.Prefix(len)] = tree.KeyVersion(u.Prefix(len));
    }
  };

  for (int interval = 0; interval < 15; ++interval) {
    int joins = static_cast<int>(rng.UniformInt(0, 4));
    int leaves = static_cast<int>(
        rng.UniformInt(0, std::min<std::int64_t>(3, members.size())));
    for (int j = 0; j < joins; ++j) {
      UserId id;
      for (int i = 0; i < depth; ++i) {
        id.Append(static_cast<int>(rng.UniformInt(0, base - 1)));
      }
      if (tree.Contains(id)) continue;
      tree.Join(id);
      members.push_back(id);
      grant_initial_keys(id);
    }
    for (int l = 0; l < leaves && !members.empty(); ++l) {
      std::size_t i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(members.size()) - 1));
      tree.Leave(members[i]);
      held.erase(members[i]);
      members.erase(members.begin() + static_cast<std::ptrdiff_t>(i));
    }
    RekeyMessage msg = tree.Rekey();
    tree.CheckInvariants();

    // Closure: apply encryptions until fixpoint for each member.
    for (const UserId& u : members) {
      auto& keys = held[u];
      bool progress = true;
      while (progress) {
        progress = false;
        for (const Encryption& e : msg.encryptions) {
          auto it = keys.find(e.enc_key_id);
          if (it == keys.end() || it->second != e.enc_key_version) continue;
          auto cur = keys.find(e.new_key_id);
          if (cur != keys.end() && cur->second >= e.new_key_version) continue;
          keys[e.new_key_id] = e.new_key_version;
          progress = true;
        }
      }
      // The member must now hold the latest version of every path key.
      for (int len = 0; len <= depth; ++len) {
        KeyId k = u.Prefix(len);
        ASSERT_EQ(keys.at(k), tree.KeyVersion(k))
            << "member " << u.ToString() << " stuck at key " << k.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ModifiedTreeClosureTest,
    ::testing::Values(std::make_tuple(2, 3), std::make_tuple(3, 3),
                      std::make_tuple(4, 4), std::make_tuple(5, 6)));

// Rekey cost equals the independent formula: sum over updated k-nodes of
// their child counts, where a k-node is updated iff it is an existing
// prefix of a changed user ID.
TEST(ModifiedKeyTree, CostMatchesIndependentFormula) {
  Rng rng(31);
  const int depth = 3, base = 5;
  ModifiedKeyTree tree(depth);
  std::set<UserId> present;
  for (int interval = 0; interval < 25; ++interval) {
    std::set<UserId> changed;
    int nj = static_cast<int>(rng.UniformInt(0, 5));
    int nl = static_cast<int>(
        rng.UniformInt(0, std::min<std::int64_t>(4, present.size())));
    for (int j = 0; j < nj; ++j) {
      UserId id;
      for (int i = 0; i < depth; ++i) {
        id.Append(static_cast<int>(rng.UniformInt(0, base - 1)));
      }
      if (present.count(id)) continue;
      tree.Join(id);
      present.insert(id);
      changed.insert(id);
    }
    for (int l = 0; l < nl; ++l) {
      auto it = present.begin();
      std::advance(it, rng.UniformInt(
                           0, static_cast<std::int64_t>(present.size()) - 1));
      tree.Leave(*it);
      changed.insert(*it);
      present.erase(it);
    }

    // Independent model: rebuild membership sets per prefix.
    std::map<DigitString, std::set<int>> children;
    for (const UserId& u : present) {
      for (int len = 0; len < depth; ++len) {
        children[u.Prefix(len)].insert(u.digit(len));
      }
    }
    std::size_t expected = 0;
    std::set<DigitString> updated;
    for (const UserId& u : changed) {
      for (int len = 0; len < depth; ++len) {
        DigitString p = u.Prefix(len);
        if (children.count(p)) updated.insert(p);
      }
    }
    for (const DigitString& p : updated) {
      expected += children.at(p).size();
    }

    RekeyMessage msg = tree.Rekey();
    ASSERT_EQ(msg.RekeyCost(), expected) << "interval " << interval;
  }
}

}  // namespace
}  // namespace tmesh
