#include "core/tmesh.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/directory.h"
#include "core/modified_key_tree.h"
#include "topology/planetlab.h"

namespace tmesh {
namespace {

UserId RandomId(Rng& rng, int d, int b) {
  UserId id;
  for (int i = 0; i < d; ++i) {
    id.Append(static_cast<int>(rng.UniformInt(0, b - 1)));
  }
  return id;
}

struct Group {
  PlanetLabNetwork net;
  Directory dir;
  ModifiedKeyTree tree;
  ClusterRekeying clusters;
  std::vector<UserId> ids;

  Group(int users, GroupParams gp, std::uint64_t seed)
      : net([&] {
          PlanetLabParams p;
          p.hosts = users + 1;
          p.seed = seed;
          return p;
        }()),
        dir(net, gp, 0),
        tree(gp.digits),
        clusters(gp.digits) {
    Rng rng(seed * 131 + 7);
    for (HostId h = 1; h <= users; ++h) {
      UserId id;
      do {
        id = RandomId(rng, gp.digits, gp.base);
      } while (dir.Contains(id));
      dir.AddMember(id, h, h);
      tree.Join(id);
      clusters.Join(id, h);
      ids.push_back(id);
    }
  }
};

// --- Theorem 1: exact-once delivery -----------------------------------

struct Shape {
  int depth;
  int base;
  int capacity;
  int users;
};

class TMeshDeliveryTest : public ::testing::TestWithParam<Shape> {};

TEST_P(TMeshDeliveryTest, RekeyMulticastReachesEveryMemberExactlyOnce) {
  const Shape s = GetParam();
  Group g(s.users, GroupParams{s.depth, s.base, s.capacity}, 42);
  Simulator sim;
  TMesh tmesh(g.dir, sim);
  auto res = tmesh.MulticastRekey(RekeyMessage{}, TMesh::Options{});
  for (const UserId& id : g.ids) {
    const auto& rec = res.member[static_cast<std::size_t>(g.dir.HostOf(id))];
    EXPECT_EQ(rec.copies, 1) << "member " << id.ToString();
    EXPECT_GE(rec.delay_ms, 0.0);
    // RDP is ~>= 1; synthetic RTT matrices (like real ones) have mild
    // triangle-inequality violations, so slightly below 1 is legitimate.
    EXPECT_GT(rec.rdp, 0.5);
    EXPECT_GE(rec.forward_level, 1);
    EXPECT_LE(rec.forward_level, s.depth);
  }
}

TEST_P(TMeshDeliveryTest, DataMulticastReachesEveryoneButSender) {
  const Shape s = GetParam();
  Group g(s.users, GroupParams{s.depth, s.base, s.capacity}, 43);
  Simulator sim;
  TMesh tmesh(g.dir, sim);
  const UserId& sender = g.ids[g.ids.size() / 2];
  auto res = tmesh.MulticastData(sender);
  for (const UserId& id : g.ids) {
    const auto& rec = res.member[static_cast<std::size_t>(g.dir.HostOf(id))];
    if (id == sender) {
      EXPECT_EQ(rec.copies, 0);
      EXPECT_GT(rec.stress, 0);  // the sender forwards at level 0
    } else {
      EXPECT_EQ(rec.copies, 1) << "member " << id.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TMeshDeliveryTest,
    ::testing::Values(Shape{2, 4, 1, 10}, Shape{2, 4, 2, 15},
                      Shape{3, 4, 2, 40}, Shape{3, 8, 4, 80},
                      Shape{5, 256, 4, 60}, Shape{4, 16, 1, 100}));

// --- Property test: Theorem 1 + decryption closure over random shapes ---
//
// ~50 seeded random (depth, base, capacity, users) shapes. For each:
//  * Theorem 1 — the rekey multicast reaches every member exactly once;
//  * decryption closure — with Fig. 5 splitting on, every member receives
//    every encryption it needs to decrypt per the key-tree semantics
//    (UserNeedsEncryption), with no duplicates. Corollary 1 says members
//    may additionally receive encryptions needed only downstream; the
//    closure property is the user-visible guarantee rekeying correctness
//    rests on, so that is what we assert for arbitrary shapes.
TEST(TMeshProperty, ExactOnceDeliveryAndDecryptionClosureOnRandomShapes) {
  Rng shape_rng(20260806);
  for (int trial = 0; trial < 50; ++trial) {
    const int depth = static_cast<int>(shape_rng.UniformInt(2, 4));
    const int base = static_cast<int>(shape_rng.UniformInt(2, 8));
    const int capacity = static_cast<int>(shape_rng.UniformInt(1, 4));
    // Keep the population well below base^depth so RandomId in the Group
    // builder finds free IDs quickly.
    std::int64_t space = 1;
    for (int i = 0; i < depth; ++i) space *= base;
    const int users = static_cast<int>(
        shape_rng.UniformInt(2, std::min<std::int64_t>(60, space / 2 + 1)));
    SCOPED_TRACE("trial " + std::to_string(trial) + ": depth " +
                 std::to_string(depth) + " base " + std::to_string(base) +
                 " capacity " + std::to_string(capacity) + " users " +
                 std::to_string(users));

    Group g(users, GroupParams{depth, base, capacity},
            1000 + static_cast<std::uint64_t>(trial));
    // Churn a random slice of the membership to get a real rekey message.
    (void)g.tree.Rekey();
    const int leavers =
        static_cast<int>(shape_rng.UniformInt(1, (users - 1) / 2 + 1));
    for (int k = 0; k < leavers; ++k) {
      std::size_t pick = static_cast<std::size_t>(
          shape_rng.UniformInt(0, static_cast<int>(g.ids.size()) - 1));
      UserId victim = g.ids[pick];
      g.dir.RemoveMember(victim);
      g.tree.Leave(victim);
      g.clusters.Leave(victim);
      g.ids.erase(g.ids.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    RekeyMessage msg = g.tree.Rekey();

    Simulator sim;
    TMesh tmesh(g.dir, sim);
    TMesh::Options opts;
    opts.split = true;
    opts.record_encryptions = true;
    auto res = tmesh.MulticastRekey(msg, opts);

    for (const UserId& id : g.ids) {
      const std::size_t h = static_cast<std::size_t>(g.dir.HostOf(id));
      // Theorem 1: exactly one copy per member.
      ASSERT_EQ(res.member[h].copies, 1) << "member " << id.ToString();
      // No duplicate encryptions (Corollary 1: "a single copy").
      std::set<std::int32_t> got(res.member_encs[h].begin(),
                                 res.member_encs[h].end());
      ASSERT_EQ(got.size(), res.member_encs[h].size())
          << "duplicate encryptions at " << id.ToString();
      // Decryption closure: everything the member needs arrived.
      for (std::size_t e = 0; e < msg.encryptions.size(); ++e) {
        if (UserNeedsEncryption(id, msg.encryptions[e])) {
          ASSERT_TRUE(got.count(static_cast<std::int32_t>(e)) > 0)
              << "member " << id.ToString() << " missing encryption "
              << msg.encryptions[e].enc_key_id.ToString();
        }
      }
    }
  }
}

// --- Lemma 1 consequence: hop prefix structure -------------------------

TEST(TMesh, ForwardingHopsFollowPrefixStructure) {
  Group g(60, GroupParams{3, 4, 2}, 77);
  Simulator sim;
  TMesh tmesh(g.dir, sim);
  auto res = tmesh.MulticastRekey(RekeyMessage{}, TMesh::Options{});
  for (const UserId& id : g.ids) {
    const auto& rec = res.member[static_cast<std::size_t>(g.dir.HostOf(id))];
    ASSERT_EQ(rec.copies, 1);
    int i = rec.forward_level;
    if (rec.from == g.dir.server_host()) {
      EXPECT_EQ(i, 1);
      continue;
    }
    // w at level i was the (i-1, w.ID[i-1])-primary of its previous hop p:
    // they share exactly the first i-1 digits.
    const UserId* from_id = g.dir.IdOfHost(rec.from);
    ASSERT_NE(from_id, nullptr);
    EXPECT_EQ(from_id->CommonPrefixLen(id), i - 1);
  }
}

TEST(TMesh, SingleMemberGroupStillDelivered) {
  Group g(1, GroupParams{2, 4, 2}, 5);
  Simulator sim;
  TMesh tmesh(g.dir, sim);
  auto res = tmesh.MulticastRekey(RekeyMessage{}, TMesh::Options{});
  EXPECT_EQ(res.ReceivedCount(), 1);
}

// --- Corollary 1: splitting delivers exactly the needed encryptions ----

TEST(TMesh, SplittingSatisfiesCorollary1) {
  GroupParams gp{3, 4, 2};
  Group g(50, gp, 11);
  // Churn to get a real rekey message.
  (void)g.tree.Rekey();
  for (int k = 0; k < 8; ++k) {
    g.dir.RemoveMember(g.ids.back());
    g.tree.Leave(g.ids.back());
    g.clusters.Leave(g.ids.back());
    g.ids.pop_back();
  }
  RekeyMessage msg = g.tree.Rekey();
  ASSERT_GT(msg.RekeyCost(), 0u);

  Simulator sim;
  TMesh tmesh(g.dir, sim);
  TMesh::Options opts;
  opts.split = true;
  opts.record_encryptions = true;
  auto res = tmesh.MulticastRekey(msg, opts);

  // Downstream sets from the recorded delivery parents.
  std::map<HostId, std::vector<HostId>> children;
  for (const UserId& id : g.ids) {
    HostId h = g.dir.HostOf(id);
    children[res.member[static_cast<std::size_t>(h)].from].push_back(h);
  }
  // subtree(u) = u + descendants.
  std::map<HostId, std::set<HostId>> subtree;
  std::function<const std::set<HostId>&(HostId)> compute =
      [&](HostId h) -> const std::set<HostId>& {
    auto& s = subtree[h];
    if (!s.empty()) return s;
    s.insert(h);
    for (HostId c : children[h]) {
      const auto& cs = compute(c);
      s.insert(cs.begin(), cs.end());
    }
    return s;
  };

  for (const UserId& id : g.ids) {
    HostId h = g.dir.HostOf(id);
    std::set<std::int32_t> got(
        res.member_encs[static_cast<std::size_t>(h)].begin(),
        res.member_encs[static_cast<std::size_t>(h)].end());
    // No duplicates (Corollary 1: "a single copy").
    EXPECT_EQ(got.size(), res.member_encs[static_cast<std::size_t>(h)].size());
    // Expected: e iff needed by u or a downstream user of u.
    for (std::size_t e = 0; e < msg.encryptions.size(); ++e) {
      bool needed = false;
      for (HostId w : compute(h)) {
        const UserId* wid = g.dir.IdOfHost(w);
        ASSERT_NE(wid, nullptr);
        if (UserNeedsEncryption(*wid, msg.encryptions[e])) {
          needed = true;
          break;
        }
      }
      EXPECT_EQ(got.count(static_cast<std::int32_t>(e)) > 0, needed)
          << "member " << id.ToString() << " encryption "
          << msg.encryptions[e].enc_key_id.ToString();
    }
  }
}

TEST(TMesh, WithoutSplittingEveryoneGetsWholeMessage) {
  GroupParams gp{3, 4, 2};
  Group g(30, gp, 13);
  (void)g.tree.Rekey();
  g.dir.RemoveMember(g.ids.back());
  g.tree.Leave(g.ids.back());
  g.ids.pop_back();
  RekeyMessage msg = g.tree.Rekey();
  ASSERT_GT(msg.RekeyCost(), 0u);

  Simulator sim;
  TMesh tmesh(g.dir, sim);
  auto res = tmesh.MulticastRekey(msg, TMesh::Options{});
  for (const UserId& id : g.ids) {
    const auto& rec = res.member[static_cast<std::size_t>(g.dir.HostOf(id))];
    EXPECT_EQ(rec.encs_received,
              static_cast<std::int64_t>(msg.RekeyCost()));
  }
}

TEST(TMesh, SplittingNeverIncreasesBandwidth) {
  GroupParams gp{3, 8, 2};
  Group g(60, gp, 17);
  (void)g.tree.Rekey();
  for (int k = 0; k < 5; ++k) {
    g.dir.RemoveMember(g.ids.back());
    g.tree.Leave(g.ids.back());
    g.ids.pop_back();
  }
  RekeyMessage msg = g.tree.Rekey();

  Simulator sim1, sim2;
  TMesh t1(g.dir, sim1), t2(g.dir, sim2);
  TMesh::Options split;
  split.split = true;
  auto full = t1.MulticastRekey(msg, TMesh::Options{});
  auto sp = t2.MulticastRekey(msg, split);
  for (const UserId& id : g.ids) {
    std::size_t h = static_cast<std::size_t>(g.dir.HostOf(id));
    EXPECT_LE(sp.member[h].encs_received, full.member[h].encs_received);
    EXPECT_LE(sp.member[h].encs_forwarded, full.member[h].encs_forwarded);
    // Delivery itself is unaffected by splitting.
    EXPECT_EQ(sp.member[h].copies, 1);
    EXPECT_DOUBLE_EQ(sp.member[h].delay_ms, full.member[h].delay_ms);
  }
}

// --- Failure recovery ---------------------------------------------------

TEST(TMesh, SurvivesFailuresUsingBackupNeighbors) {
  GroupParams gp{3, 4, 4};  // K = 4 backups per entry
  Group g(40, gp, 23);
  // Fail three members; tables are NOT repaired yet.
  std::vector<UserId> failed{g.ids[3], g.ids[17], g.ids[29]};
  for (const UserId& f : failed) g.dir.MarkFailed(f);

  Simulator sim;
  TMesh tmesh(g.dir, sim);
  auto res = tmesh.MulticastRekey(RekeyMessage{}, TMesh::Options{});
  for (const UserId& id : g.ids) {
    const auto& rec = res.member[static_cast<std::size_t>(g.dir.HostOf(id))];
    bool is_failed =
        std::find(failed.begin(), failed.end(), id) != failed.end();
    if (is_failed) {
      EXPECT_EQ(rec.copies, 0) << "failed member received traffic";
    } else {
      EXPECT_EQ(rec.copies, 1) << "live member missed: " << id.ToString();
    }
  }
  // After repair, consistency is restored and delivery still works.
  for (const UserId& f : failed) g.dir.RepairFailure(f);
  g.dir.CheckKConsistency();
  Simulator sim2;
  TMesh tmesh2(g.dir, sim2);
  auto res2 = tmesh2.MulticastRekey(RekeyMessage{}, TMesh::Options{});
  EXPECT_EQ(res2.ReceivedCount(), static_cast<int>(g.ids.size()) - 3);
}

// --- Loss model seeding -------------------------------------------------

// Two runs with different loss seeds must observe different loss patterns
// (and equal seeds identical ones): replicas that left Options::loss_seed
// at its default of 1 would silently draw correlated losses, defeating
// cross-run averaging. Experiment code must derive the seed from the run's
// base seed whenever it enables loss.
TEST(TMesh, LossSeedSelectsTheLossPattern) {
  Group g(40, GroupParams{3, 8, 2}, 31);
  RekeyMessage msg = g.tree.Rekey();

  struct Outcome {
    std::vector<double> delays;
    int messages_lost;
    bool operator==(const Outcome&) const = default;
  };
  auto run = [&](std::uint64_t loss_seed) {
    Simulator sim;
    TMesh tmesh(g.dir, sim);
    TMesh::Options opts;
    opts.loss_prob = 0.3;
    opts.loss_seed = loss_seed;
    auto res = tmesh.MulticastRekey(msg, opts);
    Outcome out;
    out.messages_lost = res.messages_lost;
    for (const auto& rec : res.member) {
      if (rec.copies > 0) out.delays.push_back(rec.delay_ms);
    }
    return out;
  };

  const Outcome base = run(1);
  EXPECT_GT(base.messages_lost, 0) << "loss model inactive, test is vacuous";
  EXPECT_EQ(run(1), base) << "equal seeds must replay the same losses";
  EXPECT_NE(run(2), base) << "different seeds drew identical loss patterns";
}

// --- Cluster mode (Appendix B) ------------------------------------------

TEST(TMesh, ClusterModeDeliversGroupKeyToEveryMember) {
  GroupParams gp{3, 4, 2};
  Group g(50, gp, 31);
  (void)g.clusters.Rekey();
  (void)g.tree.Rekey();
  // A leader leave forces a real leader-tree rekey.
  UserId leader_victim;
  bool found = false;
  for (const UserId& id : g.ids) {
    if (g.clusters.IsLeader(id)) {
      leader_victim = id;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  g.dir.RemoveMember(leader_victim);
  g.clusters.Leave(leader_victim);
  g.tree.Leave(leader_victim);
  g.ids.erase(std::find(g.ids.begin(), g.ids.end(), leader_victim));
  RekeyMessage msg = g.clusters.Rekey();
  ASSERT_GT(msg.RekeyCost(), 0u);

  Simulator sim;
  TMesh tmesh(g.dir, sim);
  TMesh::Options opts;
  opts.split = true;
  opts.clusters = &g.clusters;
  auto res = tmesh.MulticastRekey(msg, opts);

  for (const UserId& id : g.ids) {
    const auto& rec = res.member[static_cast<std::size_t>(g.dir.HostOf(id))];
    // Every member learns the new group key: either it received the rekey
    // message (cluster entry point / leader) or a pairwise-encrypted group
    // key from its leader.
    EXPECT_GE(rec.copies, 1) << id.ToString();
    EXPECT_GE(rec.encs_received, 1) << id.ToString();
    // Bounded duplication: at most the multicast copy + the leader unicast.
    EXPECT_LE(rec.copies, 2) << id.ToString();
  }
}

TEST(TMesh, ClusterModeShrinksNonLeaderTraffic) {
  GroupParams gp{3, 4, 2};
  Group g(60, gp, 37);
  (void)g.clusters.Rekey();
  (void)g.tree.Rekey();
  // Some churn.
  for (int k = 0; k < 6; ++k) {
    UserId victim = g.ids.back();
    g.dir.RemoveMember(victim);
    g.clusters.Leave(victim);
    g.tree.Leave(victim);
    g.ids.pop_back();
  }
  RekeyMessage full_msg = g.tree.Rekey();
  RekeyMessage cluster_msg = g.clusters.Rekey();
  // Cluster heuristic's message covers leaders only: no larger than the
  // full modified-tree message.
  EXPECT_LE(cluster_msg.RekeyCost(), full_msg.RekeyCost());

  Simulator sim;
  TMesh tmesh(g.dir, sim);
  TMesh::Options opts;
  opts.split = true;
  opts.clusters = &g.clusters;
  auto res = tmesh.MulticastRekey(cluster_msg, opts);
  // Non-leader members that were not entry points receive exactly one
  // encryption (the pairwise group key).
  int tiny = 0;
  for (const UserId& id : g.ids) {
    const auto& rec = res.member[static_cast<std::size_t>(g.dir.HostOf(id))];
    if (!g.clusters.IsLeader(id) && rec.copies == 1 && rec.forward_level == gp.digits) {
      EXPECT_EQ(rec.encs_received, 1);
      ++tiny;
    }
  }
  EXPECT_GT(tiny, 0);
}

}  // namespace
}  // namespace tmesh
