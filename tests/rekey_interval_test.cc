// Long-horizon integration tests: the full system across many rekey
// intervals, with churn and failures, on both evaluation topologies. Each
// interval is checked against the paper's correctness properties:
// Definition 3 (K-consistency), Theorem 1 (exact-once), Corollary 1 via
// decryption closure (every member reconstructs its key path from only the
// encryptions it received), and the Appendix-B group-key completeness.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/tmesh.h"
#include "protocols/group_session.h"
#include "topology/gtitm.h"
#include "topology/planetlab.h"

namespace tmesh {
namespace {

std::unique_ptr<Network> MakeNet(bool gtitm, int hosts, std::uint64_t seed) {
  if (gtitm) {
    GtItmParams p;
    p.transit_domains = 3;
    p.transit_routers_per_domain = 4;
    p.stub_domains_per_transit_router = 2;
    p.stub_routers_min = 5;
    p.stub_routers_max = 8;
    p.seed = seed;
    return std::make_unique<GtItmNetwork>(p, hosts, seed + 1);
  }
  PlanetLabParams p;
  p.hosts = hosts;
  p.seed = seed;
  return std::make_unique<PlanetLabNetwork>(p);
}

struct IntervalShape {
  bool gtitm;
  int depth;
  int base;
  int capacity;
};

class MultiIntervalTest : public ::testing::TestWithParam<IntervalShape> {};

TEST_P(MultiIntervalTest, SystemStaysCorrectAcrossIntervals) {
  const IntervalShape shape = GetParam();
  const int max_hosts = 90;
  auto net = MakeNet(shape.gtitm, max_hosts + 1, 5);

  SessionConfig cfg;
  cfg.group = GroupParams{shape.depth, shape.base, shape.capacity};
  cfg.assign.collect_target = 5;
  cfg.assign.thresholds_ms.assign(static_cast<std::size_t>(shape.depth - 1),
                                  60.0);
  cfg.with_nice = false;
  cfg.seed = 17;
  GroupSession session(*net, 0, cfg);
  Rng rng(23);

  // Key state per member, as the decryption-closure oracle.
  std::map<UserId, std::map<KeyId, std::uint32_t>> held;
  ModifiedKeyTree& tree = session.key_tree();
  auto grant = [&](const UserId& u) {
    for (const KeyId& k : tree.KeysOf(u)) held[u][k] = tree.KeyVersion(k);
  };

  std::vector<HostId> free_hosts;
  for (HostId h = max_hosts; h >= 1; --h) free_hosts.push_back(h);

  // Bootstrap.
  for (int i = 0; i < 40; ++i) {
    HostId h = free_hosts.back();
    free_hosts.pop_back();
    auto id = session.Join(h, i);
    ASSERT_TRUE(id.has_value());
    grant(*id);
  }
  session.FlushRekeyState();
  held.clear();
  for (const auto& [id, info] : session.directory().members()) {
    (void)info;
    grant(id);
  }

  SimTime t = 1000;
  for (int interval = 0; interval < 12; ++interval) {
    // Churn: joins, leaves, and an occasional crash + repair.
    int joins = static_cast<int>(rng.UniformInt(0, 5));
    int leaves = static_cast<int>(rng.UniformInt(0, 5));
    for (int i = 0; i < joins && !free_hosts.empty(); ++i) {
      HostId h = free_hosts.back();
      auto id = session.Join(h, ++t);
      if (!id.has_value()) break;
      free_hosts.pop_back();
      grant(*id);
    }
    for (int i = 0; i < leaves; ++i) {
      if (session.directory().member_count() <= 5) break;
      auto victim = session.directory().RandomAliveMember(rng);
      ASSERT_TRUE(victim.has_value());
      free_hosts.push_back(session.directory().HostOf(*victim));
      held.erase(*victim);
      session.Leave(*victim);
    }
    if (interval % 4 == 3 && session.directory().member_count() > 8) {
      // A crash handled by failure recovery between intervals: the failed
      // member must also be evicted from the key tree (its keys leak).
      auto victim = session.directory().RandomAliveMember(rng);
      ASSERT_TRUE(victim.has_value());
      free_hosts.push_back(session.directory().HostOf(*victim));
      held.erase(*victim);
      session.directory().MarkFailed(*victim);
      session.directory().RepairFailure(*victim);
      session.key_tree().Leave(*victim);
      session.clusters().Leave(*victim);
    }

    session.directory().CheckKConsistency();
    session.key_tree().CheckInvariants();
    session.clusters().CheckInvariants();

    RekeyMessage msg = session.key_tree().Rekey();
    (void)session.clusters().Rekey();
    if (msg.RekeyCost() == 0) continue;  // quiet interval

    Simulator sim;
    TMesh tmesh(session.directory(), sim);
    TMesh::Options opts;
    opts.split = true;
    opts.record_encryptions = true;
    auto res = tmesh.MulticastRekey(msg, opts);

    for (const auto& [id, info] : session.directory().members()) {
      auto h = static_cast<std::size_t>(info.host);
      ASSERT_EQ(res.member[h].copies, 1) << "interval " << interval;
      // Closure from exactly the received encryptions.
      auto& keys = held[id];
      bool progress = true;
      while (progress) {
        progress = false;
        for (std::int32_t idx : res.member_encs[h]) {
          const Encryption& e =
              msg.encryptions[static_cast<std::size_t>(idx)];
          auto it = keys.find(e.enc_key_id);
          if (it == keys.end() || it->second != e.enc_key_version) continue;
          auto cur = keys.find(e.new_key_id);
          if (cur != keys.end() && cur->second >= e.new_key_version) continue;
          keys[e.new_key_id] = e.new_key_version;
          progress = true;
        }
      }
      for (const KeyId& k : tree.KeysOf(id)) {
        ASSERT_EQ(keys.at(k), tree.KeyVersion(k))
            << "interval " << interval << ", member " << id.ToString()
            << ", key " << k.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MultiIntervalTest,
    ::testing::Values(IntervalShape{false, 3, 8, 2},
                      IntervalShape{false, 4, 8, 4},
                      IntervalShape{true, 3, 8, 2},
                      IntervalShape{true, 5, 16, 4}));

// Appendix-B completeness: under the cluster heuristic every member ends
// the interval with the new group key — leaders by decrypting the (split)
// leader-tree message, everyone else via a pairwise group-key unicast.
TEST(ClusterInterval, EveryMemberObtainsTheNewGroupKey) {
  auto net = MakeNet(false, 81, 9);
  SessionConfig cfg;
  cfg.group = GroupParams{3, 8, 4};
  cfg.assign.collect_target = 5;
  cfg.assign.thresholds_ms = {60.0, 20.0};
  cfg.with_nice = false;
  cfg.seed = 29;
  GroupSession session(*net, 0, cfg);
  Rng rng(31);
  for (HostId h = 1; h <= 80; ++h) {
    ASSERT_TRUE(session.Join(h, h).has_value());
  }
  session.FlushRekeyState();

  // Force leader churn: remove a known leader plus random members.
  int removed = 0;
  for (const auto& [id, info] : session.directory().members()) {
    (void)info;
    if (session.clusters().IsLeader(id)) {
      UserId leader = id;
      session.Leave(leader);
      ++removed;
      break;
    }
  }
  for (int i = 0; i < 10; ++i) {
    auto victim = session.directory().RandomAliveMember(rng);
    session.Leave(*victim);
    ++removed;
  }
  ASSERT_EQ(removed, 11);

  // Snapshot every current leader's key state BEFORE the interval's rekey:
  // leaders hold their full leader-tree path (new leaders received it from
  // the departing leader during handover, Appendix B).
  const ModifiedKeyTree& ltree = session.clusters().leader_tree();
  std::map<UserId, std::map<KeyId, std::uint32_t>> leader_keys;
  for (const auto& [id, info] : session.directory().members()) {
    (void)info;
    if (!session.clusters().IsLeader(id)) continue;
    for (const KeyId& k : ltree.KeysOf(id)) {
      leader_keys[id][k] = ltree.KeyVersion(k);
    }
  }

  RekeyMessage msg = session.clusters().Rekey();
  (void)session.key_tree().Rekey();
  ASSERT_GT(msg.RekeyCost(), 0u);

  Simulator sim;
  TMesh tmesh(session.directory(), sim);
  TMesh::Options opts;
  opts.split = true;
  opts.clusters = &session.clusters();
  opts.record_encryptions = true;
  auto res = tmesh.MulticastRekey(msg, opts);

  for (const auto& [id, info] : session.directory().members()) {
    auto h = static_cast<std::size_t>(info.host);
    if (session.clusters().IsLeader(id)) {
      // The leader decrypts its whole new path — including the group key —
      // from only the encryptions it received.
      auto& keys = leader_keys[id];
      bool progress = true;
      while (progress) {
        progress = false;
        for (std::int32_t idx : res.member_encs[h]) {
          const Encryption& e =
              msg.encryptions[static_cast<std::size_t>(idx)];
          auto it = keys.find(e.enc_key_id);
          if (it == keys.end() || it->second != e.enc_key_version) continue;
          auto cur = keys.find(e.new_key_id);
          if (cur != keys.end() && cur->second >= e.new_key_version) continue;
          keys[e.new_key_id] = e.new_key_version;
          progress = true;
        }
      }
      for (const KeyId& k : ltree.KeysOf(id)) {
        ASSERT_EQ(keys.at(k), ltree.KeyVersion(k))
            << "leader " << id.ToString() << " stuck at " << k.ToString();
      }
    } else {
      // Non-leaders learn the group key from their leader's unicast.
      EXPECT_GE(res.member[h].group_key_copies, 1) << id.ToString();
    }
  }
}

}  // namespace
}  // namespace tmesh
