#include "nice/nice_overlay.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "topology/planetlab.h"

namespace tmesh {
namespace {

PlanetLabNetwork MakeNet(int hosts, std::uint64_t seed = 3) {
  PlanetLabParams p;
  p.hosts = hosts;
  p.seed = seed;
  return PlanetLabNetwork(p);
}

TEST(Nice, SingleMemberIsRoot) {
  auto net = MakeNet(3);
  NiceOverlay nice(net);
  nice.Join(1);
  EXPECT_EQ(nice.member_count(), 1);
  EXPECT_EQ(nice.root(), 1);
  nice.CheckInvariants();
}

TEST(Nice, SequentialJoinsKeepInvariants) {
  auto net = MakeNet(64);
  NiceOverlay nice(net);
  for (HostId h = 1; h < 64; ++h) {
    nice.Join(h);
    nice.CheckInvariants();
  }
  EXPECT_EQ(nice.member_count(), 63);
  // With k = 3 and 63 members there must be at least two layers.
  EXPECT_GE(nice.layer_count(), 2);
}

TEST(Nice, ClusterSizesStayWithinBounds) {
  // CheckInvariants enforces [k, 3k-1]; this test exercises enough joins to
  // force repeated splits.
  auto net = MakeNet(120, 9);
  NiceOverlay nice(net);
  for (HostId h = 0; h < 120; ++h) nice.Join(h);
  nice.CheckInvariants();
  EXPECT_EQ(nice.member_count(), 120);
}

TEST(Nice, LeavesShrinkAndMerge) {
  auto net = MakeNet(40, 5);
  NiceOverlay nice(net);
  for (HostId h = 0; h < 40; ++h) nice.Join(h);
  Rng rng(4);
  std::vector<HostId> present;
  for (HostId h = 0; h < 40; ++h) present.push_back(h);
  while (present.size() > 1) {
    std::size_t i = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(present.size()) - 1));
    nice.Leave(present[i]);
    present.erase(present.begin() + static_cast<std::ptrdiff_t>(i));
    nice.CheckInvariants();
    ASSERT_EQ(nice.member_count(), static_cast<int>(present.size()));
  }
  EXPECT_EQ(nice.root(), present[0]);
}

TEST(Nice, RejectsDuplicateJoinAndUnknownLeave) {
  auto net = MakeNet(5);
  NiceOverlay nice(net);
  nice.Join(1);
  EXPECT_THROW(nice.Join(1), std::logic_error);
  EXPECT_THROW(nice.Leave(2), std::logic_error);
}

class NiceChurnTest : public ::testing::TestWithParam<int> {};

TEST_P(NiceChurnTest, RandomChurnKeepsInvariantsAndDelivery) {
  const int hosts = GetParam();
  auto net = MakeNet(hosts, 11);
  NiceOverlay nice(net);
  Rng rng(static_cast<std::uint64_t>(hosts));
  std::vector<HostId> present, absent;
  for (HostId h = 1; h < hosts; ++h) absent.push_back(h);

  for (int step = 0; step < 300; ++step) {
    bool join = present.empty() || (!absent.empty() && rng.Bernoulli(0.55));
    if (join) {
      std::size_t i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(absent.size()) - 1));
      nice.Join(absent[i]);
      present.push_back(absent[i]);
      absent.erase(absent.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      std::size_t i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(present.size()) - 1));
      nice.Leave(present[i]);
      absent.push_back(present[i]);
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(i));
    }
    if (step % 20 == 0) nice.CheckInvariants();
    if (step % 60 == 0 && !present.empty()) {
      auto d = nice.RekeyFromServer(0);
      EXPECT_EQ(d.ReceivedCount(), static_cast<int>(present.size()));
      for (HostId h : present) {
        EXPECT_EQ(d.copies[static_cast<std::size_t>(h)], 1);
      }
    }
  }
  nice.CheckInvariants();
}

INSTANTIATE_TEST_SUITE_P(Sizes, NiceChurnTest,
                         ::testing::Values(12, 30, 60, 140));

TEST(Nice, RekeyDeliveryExactOnceWithSaneDelays) {
  auto net = MakeNet(80, 13);
  NiceOverlay nice(net);
  for (HostId h = 1; h < 80; ++h) nice.Join(h);
  auto d = nice.RekeyFromServer(0);
  EXPECT_EQ(d.origin, nice.root());
  for (HostId h = 1; h < 80; ++h) {
    ASSERT_EQ(d.copies[static_cast<std::size_t>(h)], 1);
    // Delay at least the server->root unicast leg.
    EXPECT_GE(d.delay_ms[static_cast<std::size_t>(h)],
              net.OneWayDelayMs(0, nice.root()) - 1e-9);
    // Parent chain terminates at the server.
    HostId cur = h;
    int hops = 0;
    while (cur != 0) {
      cur = d.parent[static_cast<std::size_t>(cur)];
      ASSERT_NE(cur, kNoHost);
      ASSERT_LT(++hops, 100);
    }
  }
}

TEST(Nice, DataDeliveryBottomUpTopDown) {
  auto net = MakeNet(50, 15);
  NiceOverlay nice(net);
  for (HostId h = 0; h < 50; ++h) nice.Join(h);
  HostId sender = 27;
  auto d = nice.DataFrom(sender);
  EXPECT_EQ(d.origin, sender);
  int received = 0;
  for (HostId h = 0; h < 50; ++h) {
    if (h == sender) continue;
    EXPECT_EQ(d.copies[static_cast<std::size_t>(h)], 1);
    ++received;
  }
  EXPECT_EQ(received, 49);
  // Leaders carry more stress than leaf members on average; at minimum the
  // total stress equals total deliveries.
  int total_stress = 0;
  for (HostId h = 0; h < 50; ++h) {
    total_stress += d.stress[static_cast<std::size_t>(h)];
  }
  EXPECT_EQ(total_stress, d.messages);
  EXPECT_GE(d.messages, 49);
}

TEST(Nice, RootIsTopologicallyCentralish) {
  // The root should not be a pessimal choice: its mean RTT to members must
  // not exceed twice the best member's mean RTT.
  auto net = MakeNet(60, 21);
  NiceOverlay nice(net);
  for (HostId h = 0; h < 60; ++h) nice.Join(h);
  auto mean_rtt = [&](HostId c) {
    double sum = 0;
    for (HostId h = 0; h < 60; ++h) sum += net.RttHosts(c, h);
    return sum / 59.0;
  };
  double best = 1e18;
  for (HostId h = 0; h < 60; ++h) best = std::min(best, mean_rtt(h));
  EXPECT_LE(mean_rtt(nice.root()), 2.5 * best);
}

TEST(Nice, DeliveryRespectsTreeCausality) {
  // A member's delivery time strictly exceeds its parent's (messages take
  // positive one-way latency per hop).
  auto net = MakeNet(70, 27);
  NiceOverlay nice(net);
  for (HostId h = 1; h < 70; ++h) nice.Join(h);
  auto d = nice.RekeyFromServer(0);
  for (HostId h = 1; h < 70; ++h) {
    HostId p = d.parent[static_cast<std::size_t>(h)];
    if (p == kNoHost || p == 0) continue;
    EXPECT_GT(d.delay_ms[static_cast<std::size_t>(h)],
              d.delay_ms[static_cast<std::size_t>(p)]);
  }
}

TEST(Nice, StressConcentratesOnLeaders) {
  // The root (top leader) belongs to every layer on its chain and must
  // forward at least as much as the median member.
  auto net = MakeNet(90, 33);
  NiceOverlay nice(net);
  for (HostId h = 1; h < 90; ++h) nice.Join(h);
  auto d = nice.RekeyFromServer(0);
  std::vector<int> stress;
  for (HostId h = 1; h < 90; ++h) {
    stress.push_back(d.stress[static_cast<std::size_t>(h)]);
  }
  std::sort(stress.begin(), stress.end());
  int median = stress[stress.size() / 2];
  EXPECT_GE(d.stress[static_cast<std::size_t>(nice.root())], median);
}

}  // namespace
}  // namespace tmesh
