// Tests for the transport-level extensions: per-hop loss with
// backup-neighbor retransmission (§2.3), the access-link
// serialization/queueing model, and concurrent rekey + data sessions
// (the paper's headline scenario).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/tmesh.h"
#include "protocols/group_session.h"
#include "topology/planetlab.h"

namespace tmesh {
namespace {

struct Env {
  PlanetLabNetwork net;
  GroupSession session;

  Env(int users, std::uint64_t seed, int capacity = 4)
      : net([&] {
          PlanetLabParams p;
          p.hosts = users + 1;
          p.seed = seed;
          return PlanetLabNetwork(p);
        }()),
        session(net, 0, [&] {
          SessionConfig s;
          s.group = GroupParams{3, 8, capacity};
          s.assign.collect_target = 4;
          s.assign.thresholds_ms = {60.0, 20.0};
          s.with_nice = false;
          s.seed = seed;
          return s;
        }()) {
    for (HostId h = 1; h <= users; ++h) {
      EXPECT_TRUE(session.Join(h, h).has_value());
    }
    session.FlushRekeyState();
  }

  RekeyMessage Churn(int leaves, std::uint64_t seed) {
    Rng rng(seed);
    for (int i = 0; i < leaves; ++i) {
      auto victim = session.directory().RandomAliveMember(rng);
      session.Leave(*victim);
    }
    return session.key_tree().Rekey();
  }
};

TEST(LossRecovery, BackupNeighborsMaskModerateLoss) {
  Env env(50, 3);
  Simulator sim;
  TMesh tmesh(env.session.directory(), sim);
  TMesh::Options opts;
  opts.loss_prob = 0.2;
  opts.loss_seed = 7;
  opts.max_send_attempts = 12;
  auto res = tmesh.MulticastRekey(RekeyMessage{}, opts);
  EXPECT_EQ(res.ReceivedCount(), 50);  // every member still reached
  EXPECT_GT(res.messages_lost, 0);     // the loss model did fire
  EXPECT_GT(res.messages_sent, 50);    // retransmissions happened
  EXPECT_EQ(res.deliveries_failed, 0);
}

TEST(LossRecovery, TotalLossDeliversNothing) {
  Env env(30, 5);
  Simulator sim;
  TMesh tmesh(env.session.directory(), sim);
  TMesh::Options opts;
  opts.loss_prob = 1.0;
  opts.max_send_attempts = 4;
  auto res = tmesh.MulticastRekey(RekeyMessage{}, opts);
  EXPECT_EQ(res.ReceivedCount(), 0);
  EXPECT_EQ(res.messages_lost, res.messages_sent);
  EXPECT_GT(res.deliveries_failed, 0);
}

TEST(LossRecovery, ZeroLossMatchesBaseline) {
  Env env(40, 9);
  Simulator sim1, sim2;
  TMesh t1(env.session.directory(), sim1), t2(env.session.directory(), sim2);
  TMesh::Options lossy;
  lossy.loss_prob = 0.0;
  auto a = t1.MulticastRekey(RekeyMessage{}, TMesh::Options{});
  auto b = t2.MulticastRekey(RekeyMessage{}, lossy);
  ASSERT_EQ(a.member.size(), b.member.size());
  for (std::size_t h = 0; h < a.member.size(); ++h) {
    EXPECT_EQ(a.member[h].copies, b.member[h].copies);
    EXPECT_DOUBLE_EQ(a.member[h].delay_ms, b.member[h].delay_ms);
  }
  EXPECT_EQ(b.messages_lost, 0);
}

TEST(LossRecovery, RetriesIncreaseDelayButPreserveExactOnce) {
  Env env(45, 11);
  Simulator sim1, sim2;
  TMesh t1(env.session.directory(), sim1), t2(env.session.directory(), sim2);
  auto clean = t1.MulticastRekey(RekeyMessage{}, TMesh::Options{});
  TMesh::Options lossy;
  lossy.loss_prob = 0.25;
  lossy.loss_seed = 13;
  lossy.max_send_attempts = 16;
  auto noisy = t2.MulticastRekey(RekeyMessage{}, lossy);
  double clean_sum = 0, noisy_sum = 0;
  for (std::size_t h = 1; h < clean.member.size(); ++h) {
    if (noisy.member[h].copies == 0) continue;
    EXPECT_EQ(noisy.member[h].copies, 1);  // retransmit != duplicate
    clean_sum += clean.member[h].delay_ms;
    noisy_sum += noisy.member[h].delay_ms;
  }
  EXPECT_GT(noisy_sum, clean_sum);
}

TEST(UplinkModel, SerializationDelaysScaleWithMessageSize) {
  Env env(40, 17);
  RekeyMessage msg = env.Churn(8, 3);
  ASSERT_GT(msg.RekeyCost(), 0u);

  auto mean_delay = [&](bool model, bool split) {
    Simulator sim;
    TMesh tmesh(env.session.directory(), sim);
    if (model) {
      TMesh::UplinkModel up;
      up.kbps = 128.0;  // slow uplinks: serialization dominates
      tmesh.SetUplinkModel(up);
    }
    TMesh::Options opts;
    opts.split = split;
    auto res = tmesh.MulticastRekey(msg, opts);
    double sum = 0;
    int n = 0;
    for (const auto& r : res.member) {
      if (r.copies > 0) {
        sum += r.delay_ms;
        ++n;
      }
    }
    return sum / n;
  };

  double base = mean_delay(false, false);
  double congested_full = mean_delay(true, false);
  double congested_split = mean_delay(true, true);
  // The model adds delay; splitting reclaims most of it (smaller messages
  // serialize faster) — §1's motivation.
  EXPECT_GT(congested_full, base);
  EXPECT_GT(congested_full, congested_split);
}

TEST(UplinkModel, DisabledModelAddsNothing) {
  Env env(25, 19);
  Simulator sim1, sim2;
  TMesh t1(env.session.directory(), sim1), t2(env.session.directory(), sim2);
  t2.SetUplinkModel(TMesh::UplinkModel{});  // kbps = 0 -> disabled
  auto a = t1.MulticastRekey(RekeyMessage{}, TMesh::Options{});
  auto b = t2.MulticastRekey(RekeyMessage{}, TMesh::Options{});
  for (std::size_t h = 0; h < a.member.size(); ++h) {
    EXPECT_DOUBLE_EQ(a.member[h].delay_ms, b.member[h].delay_ms);
  }
}

TEST(ConcurrentSessions, RekeyBurstDelaysDataUnlessSplit) {
  Env env(60, 23);
  RekeyMessage msg = env.Churn(12, 5);
  ASSERT_GT(msg.RekeyCost(), 20u);
  auto sender = env.session.directory().IdOfHost(1);
  ASSERT_NE(sender, nullptr);

  auto data_delay_during_rekey = [&](bool split,
                                     bool with_rekey) -> double {
    Simulator sim;
    TMesh tmesh(env.session.directory(), sim);
    TMesh::UplinkModel up;
    up.kbps = 256.0;
    tmesh.SetUplinkModel(up);
    TMesh::Options ropts;
    ropts.split = split;
    std::vector<TMesh::Handle> handles;
    if (with_rekey) handles.push_back(tmesh.BeginRekey(msg, ropts));
    // Launch the data stream while the burst is mid-flight through the
    // overlay (as the congestion ablation does) — launching both at t=0
    // turns the overlap into a knife-edge race between the data wavefront
    // and the server's slow first copies.
    sim.RunUntil(FromMillis(100.0));
    handles.push_back(tmesh.BeginData(*sender));
    sim.Run();
    const TMesh::Result& data = handles.back().result();
    double sum = 0;
    int n = 0;
    for (std::size_t h = 1; h < data.member.size(); ++h) {
      if (data.member[h].copies > 0) {
        sum += data.member[h].delay_ms;
        ++n;
      }
    }
    return sum / n;
  };

  double alone = data_delay_during_rekey(false, false);
  double with_full_rekey = data_delay_during_rekey(false, true);
  double with_split_rekey = data_delay_during_rekey(true, true);
  // A concurrent unsplit rekey burst hogs uplinks and delays data; the
  // split burst interferes far less — the paper's core motivation (§1).
  EXPECT_GT(with_full_rekey, alone);
  EXPECT_LT(with_split_rekey, with_full_rekey);
}

TEST(ConcurrentSessions, BothSessionsDeliverExactOnce) {
  Env env(50, 29);
  RekeyMessage msg = env.Churn(10, 7);
  auto sender = env.session.directory().IdOfHost(2);
  ASSERT_NE(sender, nullptr);

  Simulator sim;
  TMesh tmesh(env.session.directory(), sim);
  TMesh::Options ropts;
  ropts.split = true;
  auto rekey = tmesh.BeginRekey(msg, ropts);
  auto data = tmesh.BeginData(*sender);
  sim.Run();

  HostId sender_host = env.session.directory().HostOf(*sender);
  for (const auto& [id, info] : env.session.directory().members()) {
    auto h = static_cast<std::size_t>(info.host);
    EXPECT_EQ(rekey.result().member[h].copies, 1) << id.ToString();
    if (info.host != sender_host) {
      EXPECT_EQ(data.result().member[h].copies, 1) << id.ToString();
    }
  }
}

TEST(Handle, TakeResultMovesOutResult) {
  Env env(10, 31);
  Simulator sim;
  TMesh tmesh(env.session.directory(), sim);
  auto handle = tmesh.BeginRekey(RekeyMessage{}, TMesh::Options{});
  sim.Run();
  TMesh::Result res = handle.TakeResult();
  EXPECT_EQ(res.ReceivedCount(), 10);
}

class LossSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(LossSweepTest, DeliveryDegradesGracefully) {
  const double loss = GetParam();
  Env env(40, 37);
  Simulator sim;
  TMesh tmesh(env.session.directory(), sim);
  TMesh::Options opts;
  opts.loss_prob = loss;
  opts.loss_seed = 41;
  opts.max_send_attempts = 10;
  auto res = tmesh.MulticastRekey(RekeyMessage{}, opts);
  // With K = 4 backups and 10 attempts, moderate loss should still reach
  // (nearly) everyone; duplicates must never appear.
  for (const auto& r : res.member) {
    EXPECT_LE(r.copies, 1);
  }
  if (loss <= 0.3) {
    EXPECT_EQ(res.ReceivedCount(), 40);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweepTest,
                         ::testing::Values(0.05, 0.1, 0.2, 0.3, 0.5));

}  // namespace
}  // namespace tmesh
