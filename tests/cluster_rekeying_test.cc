#include "core/cluster_rekeying.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace tmesh {
namespace {

TEST(ClusterRekeying, FirstJoinerLeadsItsCluster) {
  ClusterRekeying cr(3);
  EXPECT_TRUE(cr.Join(UserId{0, 0, 0}, 10));   // leader join: rekeys
  EXPECT_FALSE(cr.Join(UserId{0, 0, 1}, 20));  // non-leader: free
  EXPECT_FALSE(cr.Join(UserId{0, 0, 2}, 30));
  EXPECT_TRUE(cr.IsLeader(UserId{0, 0, 0}));
  EXPECT_FALSE(cr.IsLeader(UserId{0, 0, 1}));
  EXPECT_EQ(cr.LeaderOf(UserId{0, 0, 2}), (UserId{0, 0, 0}));
  EXPECT_EQ(cr.cluster_count(), 1);
  cr.CheckInvariants();
}

TEST(ClusterRekeying, DistinctClustersPerLevelDMinus1Prefix) {
  ClusterRekeying cr(3);
  cr.Join(UserId{0, 0, 0}, 1);
  cr.Join(UserId{0, 1, 0}, 2);
  cr.Join(UserId{1, 0, 0}, 3);
  EXPECT_EQ(cr.cluster_count(), 3);
  EXPECT_TRUE(cr.IsLeader(UserId{0, 1, 0}));
  cr.CheckInvariants();
}

TEST(ClusterRekeying, NonLeaderChurnIsFree) {
  ClusterRekeying cr(2);
  cr.Join(UserId{5, 0}, 1);
  (void)cr.Rekey();
  cr.Join(UserId{5, 1}, 2);
  EXPECT_FALSE(cr.Leave(UserId{5, 1}));
  RekeyMessage msg = cr.Rekey();
  // "A non-leader user's join or leave does not incur group rekeying."
  EXPECT_EQ(msg.RekeyCost(), 0u);
  cr.CheckInvariants();
}

TEST(ClusterRekeying, LeaderLeaveHandsOverToEarliestJoiner) {
  ClusterRekeying cr(2);
  cr.Join(UserId{3, 0}, 10);
  cr.Join(UserId{3, 1}, 30);
  cr.Join(UserId{3, 2}, 20);
  EXPECT_TRUE(cr.Leave(UserId{3, 0}));
  // New leader: earliest remaining joining time ([3,2] at t=20).
  EXPECT_TRUE(cr.IsLeader(UserId{3, 2}));
  EXPECT_TRUE(cr.leader_tree().Contains(UserId{3, 2}));
  EXPECT_FALSE(cr.leader_tree().Contains(UserId{3, 0}));
  cr.CheckInvariants();
  RekeyMessage msg = cr.Rekey();
  EXPECT_GT(msg.RekeyCost(), 0u);
}

TEST(ClusterRekeying, LastMemberLeaveDissolvesCluster) {
  ClusterRekeying cr(2);
  cr.Join(UserId{7, 7}, 1);
  EXPECT_TRUE(cr.Leave(UserId{7, 7}));
  EXPECT_EQ(cr.cluster_count(), 0);
  EXPECT_EQ(cr.member_count(), 0);
  EXPECT_FALSE(cr.IsLeader(UserId{7, 7}));
  cr.CheckInvariants();
}

TEST(ClusterRekeying, PeersExcludeSelf) {
  ClusterRekeying cr(2);
  cr.Join(UserId{1, 0}, 1);
  cr.Join(UserId{1, 1}, 2);
  cr.Join(UserId{1, 2}, 3);
  auto peers = cr.PeersOf(UserId{1, 1});
  EXPECT_EQ(peers.size(), 2u);
  EXPECT_TRUE(std::find(peers.begin(), peers.end(), UserId{1, 1}) ==
              peers.end());
}

TEST(ClusterRekeying, LeaderTreeCostOnlyCountsLeaderPaths) {
  ClusterRekeying cr(2);
  // Two clusters, several members each.
  cr.Join(UserId{0, 0}, 1);
  cr.Join(UserId{0, 1}, 2);
  cr.Join(UserId{0, 2}, 3);
  cr.Join(UserId{1, 0}, 4);
  cr.Join(UserId{1, 1}, 5);
  (void)cr.Rekey();
  // A non-leader leaves, then a leader leaves: only the latter costs.
  cr.Leave(UserId{0, 2});
  EXPECT_EQ(cr.Rekey().RekeyCost(), 0u);
  cr.Leave(UserId{1, 0});
  RekeyMessage msg = cr.Rekey();
  // Leader tree: root + clusters [0],[1]; handover re-keys [1]'s path:
  // updated nodes root (2 children) and [1] (1 child) = 3 encryptions.
  EXPECT_EQ(msg.RekeyCost(), 3u);
}

TEST(ClusterRekeying, RandomChurnKeepsInvariants) {
  Rng rng(8);
  ClusterRekeying cr(3);
  std::vector<UserId> present;
  SimTime t = 0;
  for (int step = 0; step < 500; ++step) {
    ++t;
    if (present.empty() || rng.Bernoulli(0.55)) {
      UserId id;
      for (int i = 0; i < 3; ++i) {
        id.Append(static_cast<int>(rng.UniformInt(0, 3)));
      }
      if (std::find(present.begin(), present.end(), id) != present.end()) {
        continue;
      }
      cr.Join(id, t);
      present.push_back(id);
    } else {
      std::size_t i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(present.size()) - 1));
      cr.Leave(present[i]);
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(i));
    }
    if (step % 25 == 0) {
      cr.CheckInvariants();
      (void)cr.Rekey();
    }
  }
  cr.CheckInvariants();
  EXPECT_EQ(cr.member_count(), static_cast<int>(present.size()));
}

}  // namespace
}  // namespace tmesh
