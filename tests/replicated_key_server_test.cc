// Tests for the replicated key server (DESIGN.md §3g): the deterministic
// key-manager election, the failover timeline (stall, successor catch-up,
// resume), the mid-batch crash semantics (burned versions re-issued one
// up), and the determinism contract that a fixed fault trace produces
// byte-identical histories at every replica count that survives it.
#include "ha/replicated_key_server.h"

#include <gtest/gtest.h>

#include "transport/sim_transport.h"

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ha/km_election.h"
#include "topology/planetlab.h"

namespace tmesh {
namespace {

PlanetLabNetwork MakeNet(int hosts, std::uint64_t seed = 3) {
  PlanetLabParams p;
  p.hosts = hosts;
  p.seed = seed;
  return PlanetLabNetwork(p);
}

KeyServer::Config SmallConfig(const Network& net) {
  KeyServer::Config c;
  c.net = &net;
  c.group = GroupParams{3, 8, 2};
  c.assign.collect_target = 4;
  c.assign.thresholds_ms = {60.0, 20.0};
  c.rekey_interval = FromSeconds(10);
  c.seed = 5;
  return c;
}

ha::ReplicatedKeyServer::Config ReplicatedConfig(const Network& net,
                                                 int replicas) {
  ha::ReplicatedKeyServer::Config c;
  c.server = SmallConfig(net);
  c.replicas = replicas;
  return c;
}

// Serializes everything observable about a server's rekeying history:
// interval records, every distributed message's encryptions, every
// delivery's transport outcome, and the group-key version. Works for both
// the plain KeyServer and the replicated facade (identical accessors).
template <typename Server>
std::string Describe(const Server& s) {
  std::ostringstream out;
  for (const auto& rec : s.history()) {
    out << "rec t=" << rec.when << " j=" << rec.joins << " l=" << rec.leaves
        << " cost=" << rec.rekey_cost << " d=" << rec.delivery << "\n";
    if (rec.delivery < 0) continue;
    for (const auto& e : s.message(rec.delivery).encryptions) {
      out << "  enc " << e.enc_key_id.ToString() << "@" << e.enc_key_version
          << " -> " << e.new_key_id.ToString() << "@" << e.new_key_version
          << "\n";
    }
    const TMesh::Result& res = s.delivery(rec.delivery);
    out << "  sent=" << res.messages_sent << " lost=" << res.messages_lost
        << " failed=" << res.deliveries_failed << " copies";
    for (const auto& m : res.member) out << " " << m.copies;
    out << "\n";
  }
  out << "gkv=" << s.group_key_version() << "\n";
  return out.str();
}

std::string DescribeUnsent(const ha::ReplicatedKeyServer& s) {
  std::ostringstream out;
  for (int i = 0; i < s.unsent_count(); ++i) {
    out << "unsent " << i << "\n";
    for (const auto& e : s.unsent_message(i).encryptions) {
      out << "  enc " << e.enc_key_id.ToString() << "@" << e.enc_key_version
          << " -> " << e.new_key_id.ToString() << "@" << e.new_key_version
          << "\n";
    }
  }
  return out.str();
}

// --- KmElection ------------------------------------------------------------

TEST(KmElection, WinnerIsLowestEligibleReplica) {
  Simulator sim;
  SimTransport bus(sim);
  ha::KmElection e(bus, ha::KmElectionConfig{}, 4);
  EXPECT_EQ(e.eligible_count(), 4);
  EXPECT_EQ(e.Winner(), 0);
  e.MarkDead(0);
  EXPECT_EQ(e.Winner(), 1);
  e.MarkPartitioned(1);
  EXPECT_EQ(e.Winner(), 2);
  EXPECT_EQ(e.eligible_count(), 2);
  EXPECT_TRUE(e.HealOne());  // replica 1 rejoins as a follower...
  EXPECT_EQ(e.Winner(), 1);  // ...and is again the lowest eligible
  e.MarkDead(1);
  e.MarkDead(2);
  e.MarkDead(3);
  EXPECT_EQ(e.Winner(), -1);
  EXPECT_EQ(e.eligible_count(), 0);
  EXPECT_FALSE(e.HealOne());
}

TEST(KmElection, FailoverFiresAfterDetectionPlusElection) {
  Simulator sim;
  SimTransport bus(sim);
  ha::KmElectionConfig cfg;  // 2s detection + 1s election round
  ha::KmElection e(bus, cfg, 3);
  e.MarkDead(0);
  int elected = -1;
  SimTime at = 0;
  e.BeginFailover([&](int id) {
    elected = id;
    at = sim.Now();
  });
  EXPECT_TRUE(e.electing());
  sim.Run();
  EXPECT_EQ(elected, 1);
  EXPECT_EQ(at, cfg.heartbeat_timeout + cfg.election_delay);
  EXPECT_FALSE(e.electing());
}

TEST(KmElection, SupersededFailoverFiresExactlyOnce) {
  Simulator sim;
  SimTransport bus(sim);
  ha::KmElection e(bus, ha::KmElectionConfig{}, 3);
  int fired = 0;
  int last = -1;
  e.MarkDead(0);
  e.BeginFailover([&](int id) {
    ++fired;
    last = id;
  });
  sim.RunUntil(FromSeconds(1));  // inside the first detection window
  e.MarkDead(1);
  e.BeginFailover([&](int id) {
    ++fired;
    last = id;
  });
  sim.Run();
  // The first chain was abandoned; only the second election completed.
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(last, 2);
}

// The regression behind the fuzzer's partition+heal repro: the winner is
// fixed by the survivor set at the failure instant. A replica healed while
// the round is in flight joins as a follower — it must not depose the
// successor the quorum is converging on.
TEST(KmElection, HealDuringFailoverDoesNotDeposeSuccessor) {
  Simulator sim;
  SimTransport bus(sim);
  ha::KmElection e(bus, ha::KmElectionConfig{}, 3);
  e.MarkPartitioned(0);
  int elected = -1;
  e.BeginFailover([&](int id) { elected = id; });
  sim.RunUntil(FromSeconds(1));  // mid-round
  EXPECT_TRUE(e.HealOne());     // replica 0 is eligible again...
  sim.Run();
  EXPECT_EQ(elected, 1);  // ...but the in-flight election still seats 1
  EXPECT_EQ(e.Winner(), 0);  // and 0 would win a *later* election
}

// --- ReplicatedKeyServer ---------------------------------------------------

TEST(ReplicatedKeyServer, SingleReplicaMatchesPlainServerByteForByte) {
  auto net = MakeNet(20);
  auto drive = [&net](auto& server, Simulator& sim) {
    std::vector<UserId> members;
    for (HostId h = 1; h <= 10; ++h) {
      auto id = server.RequestJoin(h);
      ASSERT_TRUE(id.has_value());
      members.push_back(*id);
    }
    server.Start();
    sim.RunUntil(FromSeconds(12));
    server.RequestLeave(members[2]);
    server.MarkFailed(members[5]);
    sim.RunUntil(FromSeconds(15));
    server.RepairFailure(members[5]);
    server.RequestJoin(HostId{15});
    sim.RunUntil(FromSeconds(32));
  };

  Simulator plain_sim;
  SimTransport plain_bus(plain_sim);
  KeyServer plain(plain_bus, SmallConfig(net));
  drive(plain, plain_sim);
  plain.Stop();
  plain_sim.Run();

  Simulator repl_sim;
  SimTransport repl_bus(repl_sim);
  ha::ReplicatedKeyServer repl(repl_bus, ReplicatedConfig(net, 1));
  drive(repl, repl_sim);
  repl.active().Stop();
  repl_sim.Run();

  EXPECT_EQ(Describe(plain), Describe(repl));
  EXPECT_EQ(repl.incarnation_count(), 1);
  EXPECT_EQ(repl.unsent_count(), 0);
}

TEST(ReplicatedKeyServer, FailoverStallsThenResumesRekeying) {
  auto net = MakeNet(20);
  Simulator sim;
  SimTransport server_bus(sim);
  ha::ReplicatedKeyServer server(server_bus, ReplicatedConfig(net, 3));
  std::vector<UserId> members;
  for (HostId h = 1; h <= 8; ++h) {
    auto id = server.RequestJoin(h);
    ASSERT_TRUE(id.has_value());
    members.push_back(*id);
  }
  server.Start();
  sim.RunUntil(FromSeconds(12));
  ASSERT_EQ(server.history().size(), 1u);
  EXPECT_EQ(server.active_replica(), 0);

  // t=12: fail-stop the manager. The successor owns the state immediately
  // (synchronous replication) but does not rekey until elected at t=15.
  ASSERT_TRUE(server.KillActive());
  EXPECT_EQ(server.active_replica(), 1);
  EXPECT_EQ(server.incarnation_count(), 2);
  EXPECT_TRUE(server.failover_in_progress());
  for (const UserId& m : members) {
    EXPECT_TRUE(server.directory().Contains(m));  // membership carried over
  }

  // A join during the stall lands in the successor's first batch.
  sim.RunUntil(FromSeconds(13));
  ASSERT_TRUE(server.RequestJoin(HostId{12}).has_value());

  sim.RunUntil(FromSeconds(16));
  EXPECT_FALSE(server.failover_in_progress());

  // The old cadence would have ticked at t=20; the failover stalled it. The
  // successor's first interval ends at t=15+10.
  sim.RunUntil(FromSeconds(24));
  EXPECT_EQ(server.history().size(), 1u);
  const std::uint32_t before = server.group_key_version();
  sim.RunUntil(FromSeconds(26));
  ASSERT_EQ(server.history().size(), 2u);
  const auto& rec = server.history()[1];
  EXPECT_EQ(rec.when, FromSeconds(25));
  EXPECT_EQ(rec.joins, 1);
  EXPECT_GT(rec.rekey_cost, 0u);
  EXPECT_GE(rec.delivery, 0);
  EXPECT_GT(server.group_key_version(), before);
}

TEST(ReplicatedKeyServer, MidBatchCrashBurnsAndReissuesVersions) {
  auto net = MakeNet(20);
  Simulator sim;
  SimTransport server_bus(sim);
  ha::ReplicatedKeyServer server(server_bus, ReplicatedConfig(net, 3));
  std::vector<UserId> members;
  for (HostId h = 1; h <= 10; ++h) {
    auto id = server.RequestJoin(h);
    ASSERT_TRUE(id.has_value());
    members.push_back(*id);
  }
  server.Start();
  sim.RunUntil(FromSeconds(12));

  // Dirty the batch, then arm the crash: the t=20 tick rekeys, crashes
  // before distributing, and the successor is elected off the crash.
  server.RequestLeave(members[2]);
  ASSERT_TRUE(server.KillActive(/*mid_batch=*/true));
  EXPECT_TRUE(server.failover_in_progress());
  EXPECT_EQ(server.incarnation_count(), 1);  // not yet — the crash is armed

  sim.RunUntil(FromSeconds(21));
  EXPECT_EQ(server.incarnation_count(), 2);
  EXPECT_EQ(server.active_replica(), 1);
  ASSERT_EQ(server.unsent_count(), 1);
  const RekeyMessage& burned = server.unsent_message(0);
  ASSERT_GT(burned.RekeyCost(), 0u);
  // The crashed interval left no history record; the successor's first
  // interval (elected t=23, tick t=33) reports the restored batch.
  ASSERT_EQ(server.history().size(), 1u);

  sim.RunUntil(FromSeconds(34));
  ASSERT_EQ(server.history().size(), 2u);
  const auto& rec = server.history()[1];
  EXPECT_EQ(rec.when, FromSeconds(33));
  EXPECT_EQ(rec.leaves, 1);  // the batch the crashed manager never served
  ASSERT_GE(rec.delivery, 0);
  const RekeyMessage& reissued = server.message(rec.delivery);

  // Burned versions are never distributed: the successor re-stamped every
  // renewed path and issued each key exactly one version up.
  std::map<KeyId, std::uint32_t> burned_v;
  for (const Encryption& e : burned.encryptions) {
    burned_v[e.new_key_id] = e.new_key_version;
  }
  std::map<KeyId, std::uint32_t> reissued_v;
  for (const Encryption& e : reissued.encryptions) {
    reissued_v[e.new_key_id] = e.new_key_version;
  }
  ASSERT_EQ(burned_v.size(), reissued_v.size());
  for (const auto& [id, version] : burned_v) {
    auto it = reissued_v.find(id);
    ASSERT_NE(it, reissued_v.end()) << "burned key never re-issued";
    EXPECT_EQ(it->second, version + 1);
  }
  // The distributed root is the live group key.
  auto root = reissued_v.find(KeyId{});
  ASSERT_NE(root, reissued_v.end());
  EXPECT_EQ(server.group_key_version(), root->second);
}

TEST(ReplicatedKeyServer, FaultsRefusedWhenTheyWouldOrphanTheGroup) {
  auto net = MakeNet(10);
  {
    Simulator sim;
    SimTransport solo_bus(sim);
    ha::ReplicatedKeyServer solo(solo_bus, ReplicatedConfig(net, 1));
    solo.Start();
    EXPECT_FALSE(solo.KillActive());
    EXPECT_FALSE(solo.PartitionActive());
    EXPECT_FALSE(solo.HealPartition());
    EXPECT_EQ(solo.incarnation_count(), 1);
  }
  {
    Simulator sim;
    SimTransport pair_bus(sim);
    ha::ReplicatedKeyServer pair(pair_bus, ReplicatedConfig(net, 2));
    pair.Start();
    sim.RunUntil(FromSeconds(2));
    ASSERT_TRUE(pair.KillActive());
    // Mid-failover: a second fault against the manager is refused.
    EXPECT_FALSE(pair.KillActive());
    EXPECT_FALSE(pair.PartitionActive());
    sim.RunUntil(FromSeconds(6));  // election done at t=5
    EXPECT_FALSE(pair.failover_in_progress());
    // The last eligible replica can be neither killed nor partitioned.
    EXPECT_FALSE(pair.KillActive());
    EXPECT_FALSE(pair.PartitionActive());
    EXPECT_EQ(pair.eligible_replicas(), 1);
  }
  {
    Simulator sim;
    SimTransport trio_bus(sim);
    ha::ReplicatedKeyServer trio(trio_bus, ReplicatedConfig(net, 3));
    trio.Start();
    sim.RunUntil(FromSeconds(2));
    ASSERT_TRUE(trio.PartitionActive());
    sim.RunUntil(FromSeconds(6));
    EXPECT_EQ(trio.eligible_replicas(), 2);
    EXPECT_TRUE(trio.HealPartition());
    EXPECT_EQ(trio.eligible_replicas(), 3);
    EXPECT_FALSE(trio.HealPartition());  // nothing left to heal
  }
}

// The tentpole determinism pin: one fixed fault trace — a kill, a
// partition+heal, and a mid-batch crash — replayed at several replica
// counts. Nothing about an incarnation depends on N, so history, message
// bytes, delivery outcomes, and the burned message must all be identical.
TEST(ReplicatedKeyServer, HistoryByteIdenticalAcrossReplicaCounts) {
  auto net = MakeNet(24, 7);
  auto run = [&net](int replicas) {
    Simulator sim;
    SimTransport server_bus(sim);
    ha::ReplicatedKeyServer server(server_bus, ReplicatedConfig(net, replicas));
    std::vector<UserId> members;
    for (HostId h = 1; h <= 10; ++h) {
      auto id = server.RequestJoin(h);
      EXPECT_TRUE(id.has_value());
      members.push_back(*id);
    }
    server.Start();
    sim.RunUntil(FromSeconds(12));
    EXPECT_TRUE(server.KillActive());  // replica 0 dies; 1 takes over at 15
    server.RequestLeave(members[1]);
    sim.RunUntil(FromSeconds(26));     // successor interval at t=25
    EXPECT_TRUE(server.PartitionActive());  // replica 1 out; 2 seated at 29
    server.RequestJoin(HostId{15});
    sim.RunUntil(FromSeconds(31));
    EXPECT_TRUE(server.HealPartition());  // replica 1 back as a follower
    sim.RunUntil(FromSeconds(40));        // replica 2's interval at t=39
    server.RequestLeave(members[2]);
    EXPECT_TRUE(server.KillActive(/*mid_batch=*/true));  // crash at t=49
    sim.RunUntil(FromSeconds(63));        // healed replica 1 rekeys at t=62
    server.active().Stop();
    sim.Run();

    // The healed replica won the post-crash election — the lowest eligible
    // at the crash instant — at every N.
    EXPECT_EQ(server.active_replica(), 1);
    EXPECT_EQ(server.incarnation_count(), 4);
    EXPECT_EQ(server.unsent_count(), 1);
    return Describe(server) + DescribeUnsent(server);
  };

  const std::string at3 = run(3);
  const std::string at4 = run(4);
  const std::string at6 = run(6);
  EXPECT_EQ(at3, at4);
  EXPECT_EQ(at3, at6);
}

// --- Snapshot round trip ---------------------------------------------------

void ExpectTreeStateEq(const ModifiedKeyTreeState& a,
                       const ModifiedKeyTreeState& b) {
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.dirty, b.dirty);
  EXPECT_EQ(a.changed, b.changed);
  EXPECT_EQ(a.retired, b.retired);
}

TEST(KeyServerSnapshot, RoundTripIsExact) {
  auto net = MakeNet(20);
  Simulator sim;
  SimTransport a_bus(sim);
  KeyServer a(a_bus, SmallConfig(net));
  std::vector<UserId> members;
  for (HostId h = 1; h <= 8; ++h) {
    auto id = a.RequestJoin(h);
    ASSERT_TRUE(id.has_value());
    members.push_back(*id);
  }
  a.Start();
  sim.RunUntil(FromSeconds(12));
  // Mid-interval churn so the snapshot carries a pending batch and a
  // failed-but-unrepaired member.
  a.RequestLeave(members[1]);
  a.MarkFailed(members[4]);
  ASSERT_TRUE(a.RequestJoin(HostId{15}).has_value());

  const KeyServer::Snapshot snap = a.TakeSnapshot();
  SimTransport b_bus(sim);
  KeyServer b(b_bus, SmallConfig(net));
  b.InstallSnapshot(snap);
  const KeyServer::Snapshot snap2 = b.TakeSnapshot();

  ASSERT_EQ(snap.members.size(), snap2.members.size());
  for (std::size_t i = 0; i < snap.members.size(); ++i) {
    EXPECT_EQ(snap.members[i].id, snap2.members[i].id);
    EXPECT_EQ(snap.members[i].host, snap2.members[i].host);
    EXPECT_EQ(snap.members[i].join_time, snap2.members[i].join_time);
    EXPECT_EQ(snap.members[i].alive, snap2.members[i].alive);
  }
  ExpectTreeStateEq(snap.mtree, snap2.mtree);
  EXPECT_EQ(snap.clusters.members, snap2.clusters.members);
  ExpectTreeStateEq(snap.clusters.leader_tree, snap2.clusters.leader_tree);
  EXPECT_EQ(snap.interval_joins, snap2.interval_joins);
  EXPECT_EQ(snap.interval_leaves, snap2.interval_leaves);
  EXPECT_EQ(snap.unsent_renewed, snap2.unsent_renewed);

  // Behavioral equivalence, not just structural: the installed server
  // serves the same roster and key chain.
  EXPECT_EQ(b.group_key_version(), a.group_key_version());
  for (const UserId& m : members) {
    if (m == members[1]) continue;  // left before the snapshot
    EXPECT_TRUE(b.directory().Contains(m));
  }
}

}  // namespace
}  // namespace tmesh
