#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace tmesh {
namespace {

TEST(Percentile, NearestRankBasics) {
  std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 90), 9.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 91), 10.0);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 90), 7.0);
  EXPECT_DOUBLE_EQ(Percentile({7.0}, 0), 7.0);
}

TEST(Percentile, UnsortedInput) {
  EXPECT_DOUBLE_EQ(Percentile({3, 1, 2}, 100), 3.0);
}

TEST(Percentile, RejectsEmptyAndBadP) {
  EXPECT_THROW(Percentile({}, 50), std::logic_error);
  EXPECT_THROW(Percentile({1.0}, -1), std::logic_error);
  EXPECT_THROW(Percentile({1.0}, 101), std::logic_error);
}

TEST(Mean, Basics) {
  EXPECT_DOUBLE_EQ(Mean({2, 4}), 3.0);
  EXPECT_DOUBLE_EQ(Mean({7.0}), 7.0);
}

TEST(Mean, RejectsEmpty) {
  // Same contract as Percentile: an empty population is a caller bug.
  EXPECT_THROW(Mean({}), std::logic_error);
}

TEST(NearestRankIndex, KnownPopulation) {
  // The shared fraction→rank convention used by Percentile,
  // InverseCdf::ValueAtFraction, and PrintRankedTable.
  EXPECT_EQ(NearestRankIndex(0.0, 10), 0u);
  EXPECT_EQ(NearestRankIndex(0.05, 10), 0u);   // ceil(0.5) = 1
  EXPECT_EQ(NearestRankIndex(0.1, 10), 0u);    // ceil(1) = 1
  EXPECT_EQ(NearestRankIndex(0.11, 10), 1u);   // ceil(1.1) = 2
  EXPECT_EQ(NearestRankIndex(0.5, 10), 4u);    // ceil(5) = 5, NOT floor's 5
  EXPECT_EQ(NearestRankIndex(0.51, 10), 5u);
  EXPECT_EQ(NearestRankIndex(1.0, 10), 9u);
  EXPECT_EQ(NearestRankIndex(1.0, 1), 0u);
  EXPECT_THROW(NearestRankIndex(0.5, 0), std::logic_error);
  EXPECT_THROW(NearestRankIndex(-0.1, 10), std::logic_error);
  EXPECT_THROW(NearestRankIndex(1.1, 10), std::logic_error);
}

TEST(InverseCdf, ValueAtFraction) {
  InverseCdf cdf({5, 1, 3, 2, 4});
  EXPECT_DOUBLE_EQ(cdf.ValueAtFraction(0.2), 1.0);
  EXPECT_DOUBLE_EQ(cdf.ValueAtFraction(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cdf.ValueAtFraction(1.0), 5.0);
  // Between ranks: smallest value covering at least that fraction.
  EXPECT_DOUBLE_EQ(cdf.ValueAtFraction(0.41), 3.0);
}

TEST(InverseCdf, FractionAtOrBelow) {
  InverseCdf cdf({1, 2, 2, 3});
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.FractionAtOrBelow(3.0), 1.0);
}

TEST(RankedRunStats, MeanAndPercentileAcrossRuns) {
  RankedRunStats s;
  s.AddRun({3, 1, 2});  // sorted: 1 2 3
  s.AddRun({6, 4, 5});  // sorted: 4 5 6
  ASSERT_EQ(s.runs(), 2u);
  ASSERT_EQ(s.ranks(), 3u);
  EXPECT_DOUBLE_EQ(s.MeanAtRank(0), 2.5);
  EXPECT_DOUBLE_EQ(s.MeanAtRank(2), 4.5);
  EXPECT_DOUBLE_EQ(s.PercentileAtRank(0, 100), 4.0);
}

TEST(RankedRunStats, RejectsMismatchedRunSizes) {
  RankedRunStats s;
  s.AddRun({1, 2});
  EXPECT_THROW(s.AddRun({1, 2, 3}), std::logic_error);
}

TEST(InverseCdfProperty, MonotoneInFraction) {
  Rng rng(7);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) samples.push_back(rng.UniformReal(0, 100));
  InverseCdf cdf(samples);
  double prev = cdf.ValueAtFraction(0.01);
  for (double f = 0.05; f <= 1.0; f += 0.05) {
    double v = cdf.ValueAtFraction(f);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace tmesh
