#include "common/digit_string.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "common/rng.h"

namespace tmesh {
namespace {

TEST(DigitString, EmptyIsNullString) {
  DigitString s;
  EXPECT_EQ(s.size(), 0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.ToString(), "[]");
}

TEST(DigitString, ConstructionAndDigits) {
  DigitString s{0, 2, 255};
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.digit(0), 0);
  EXPECT_EQ(s.digit(1), 2);
  EXPECT_EQ(s.digit(2), 255);
  EXPECT_EQ(s.ToString(), "[0,2,255]");
}

TEST(DigitString, PrefixSemanticsMatchPaper) {
  // "an ID is a prefix of itself, and a null string is a prefix of any ID."
  DigitString id{2, 1};
  EXPECT_TRUE(id.IsPrefixOf(id));
  EXPECT_TRUE(DigitString{}.IsPrefixOf(id));
  EXPECT_TRUE((DigitString{2}).IsPrefixOf(id));
  EXPECT_FALSE((DigitString{1}).IsPrefixOf(id));
  EXPECT_FALSE((DigitString{2, 1, 0}).IsPrefixOf(id));
}

TEST(DigitString, PrefixExtractsLeadingDigits) {
  DigitString id{3, 1, 4, 1, 5};
  EXPECT_EQ(id.Prefix(0), DigitString{});
  EXPECT_EQ(id.Prefix(2), (DigitString{3, 1}));
  EXPECT_EQ(id.Prefix(5), id);
}

TEST(DigitString, ChildAndParentRoundTrip) {
  DigitString p{7};
  DigitString c = p.Child(9);
  EXPECT_EQ(c, (DigitString{7, 9}));
  EXPECT_EQ(c.Parent(), p);
  EXPECT_EQ(c.LastDigit(), 9);
}

TEST(DigitString, CommonPrefixLen) {
  DigitString a{1, 2, 3};
  DigitString b{1, 2, 4};
  EXPECT_EQ(a.CommonPrefixLen(b), 2);
  EXPECT_EQ(a.CommonPrefixLen(a), 3);
  EXPECT_EQ(a.CommonPrefixLen(DigitString{}), 0);
  EXPECT_EQ(a.CommonPrefixLen(DigitString{9}), 0);
}

TEST(DigitString, OrderingIsShorterPrefixFirst) {
  DigitString a{1};
  DigitString ab{1, 0};
  EXPECT_LT(a, ab);
  EXPECT_LT(ab, (DigitString{1, 1}));
  EXPECT_LT(DigitString{}, a);
}

TEST(DigitString, SetDigitMutates) {
  DigitString s{0, 0};
  s.SetDigit(1, 5);
  EXPECT_EQ(s, (DigitString{0, 5}));
}

TEST(DigitString, HashDistinguishesLengthAndContent) {
  std::unordered_set<DigitString> set;
  set.insert(DigitString{});
  set.insert(DigitString{0});
  set.insert(DigitString{0, 0});
  set.insert(DigitString{1});
  EXPECT_EQ(set.size(), 4u);
  EXPECT_TRUE(set.count(DigitString{0, 0}) > 0);
}

TEST(DigitString, AppendRejectsOutOfRangeDigit) {
  DigitString s;
  EXPECT_THROW(s.Append(-1), std::logic_error);
  EXPECT_THROW(s.Append(kMaxBase), std::logic_error);
}

TEST(DigitString, AppendRejectsOverflowLength) {
  DigitString s;
  for (int i = 0; i < kMaxDigits; ++i) s.Append(0);
  EXPECT_THROW(s.Append(0), std::logic_error);
}

class DigitStringPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DigitStringPropertyTest, PrefixRelationIsConsistentWithCommonPrefix) {
  const int base = GetParam();
  Rng rng(42 + static_cast<std::uint64_t>(base));
  for (int iter = 0; iter < 500; ++iter) {
    DigitString a, b;
    int la = static_cast<int>(rng.UniformInt(0, kMaxDigits));
    int lb = static_cast<int>(rng.UniformInt(0, kMaxDigits));
    for (int i = 0; i < la; ++i) a.Append(static_cast<int>(rng.UniformInt(0, base - 1)));
    for (int i = 0; i < lb; ++i) b.Append(static_cast<int>(rng.UniformInt(0, base - 1)));
    bool prefix = a.IsPrefixOf(b);
    EXPECT_EQ(prefix, a.CommonPrefixLen(b) == a.size());
    if (prefix) {
      EXPECT_EQ(b.Prefix(a.size()), a);
    }
    // Hash/equality agreement.
    if (a == b) {
      EXPECT_EQ(a.Hash(), b.Hash());
    }
    // Total order sanity: exactly one of <, >, == holds.
    int rel = (a < b ? 1 : 0) + (b < a ? 1 : 0) + (a == b ? 1 : 0);
    EXPECT_EQ(rel, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Bases, DigitStringPropertyTest,
                         ::testing::Values(2, 4, 16, 256));

}  // namespace
}  // namespace tmesh
