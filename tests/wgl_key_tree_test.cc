#include "keytree/wgl_key_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"

namespace tmesh {
namespace {

std::vector<MemberId> Iota(int n, int from = 0) {
  std::vector<MemberId> v(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = from + i;
  return v;
}

TEST(WglKeyTree, FullBalancedBuild) {
  WglKeyTree t(4);
  t.BuildFullBalanced(Iota(64));
  EXPECT_EQ(t.member_count(), 64);
  for (MemberId m = 0; m < 64; ++m) {
    EXPECT_TRUE(t.Contains(m));
    EXPECT_EQ(t.LeafDepth(m), 3);  // 4^3 = 64
    EXPECT_EQ(t.KeysHeld(m), 4);   // 3 k-node keys + individual
  }
  t.CheckInvariants();
}

TEST(WglKeyTree, FullBalancedRejectsNonPower) {
  WglKeyTree t(4);
  EXPECT_THROW(t.BuildFullBalanced(Iota(60)), std::logic_error);
}

TEST(WglKeyTree, SingleMemberTree) {
  WglKeyTree t(4);
  t.BuildFullBalanced(Iota(1));
  EXPECT_EQ(t.member_count(), 1);
  EXPECT_EQ(t.LeafDepth(0), 1);  // root k-node + u-node child
  t.CheckInvariants();
}

TEST(WglKeyTree, PureLeaveCostMatchesWGLFormula) {
  // Degree-4 full tree of 64; one leave updates 3 k-nodes; the leaf level
  // k-node has 3 remaining children, the others 4: cost = 3 + 4 + 4 = 11.
  WglKeyTree t(4);
  t.BuildFullBalanced(Iota(64));
  RekeyMessage msg = t.Rekey({}, {0});
  EXPECT_EQ(msg.RekeyCost(), 11u);
  EXPECT_EQ(t.member_count(), 63);
  t.CheckInvariants();
}

TEST(WglKeyTree, JoinReplacesDepartedPosition) {
  // Batch with J = L = 1: the joiner takes the leaver's leaf; cost =
  // 4 + 4 + 4 = 12 (all three path k-nodes keep 4 children).
  WglKeyTree t(4);
  t.BuildFullBalanced(Iota(64));
  RekeyMessage msg = t.Rekey({100}, {0});
  EXPECT_EQ(msg.RekeyCost(), 12u);
  EXPECT_TRUE(t.Contains(100));
  EXPECT_FALSE(t.Contains(0));
  EXPECT_EQ(t.member_count(), 64);
  EXPECT_EQ(t.LeafDepth(100), 3);
  t.CheckInvariants();
}

TEST(WglKeyTree, PureJoinGrowsTree) {
  WglKeyTree t(4);
  t.BuildFullBalanced(Iota(16));  // full: every k-node has 4 children
  RekeyMessage msg = t.Rekey({100}, {});
  EXPECT_TRUE(t.Contains(100));
  EXPECT_EQ(t.member_count(), 17);
  // A shallowest u-node was split into a k-node of two: updated k-nodes are
  // the 2 path nodes (4 children each) + the new k-node (2 children).
  EXPECT_EQ(msg.RekeyCost(), 10u);
  t.CheckInvariants();
}

TEST(WglKeyTree, IncrementalBuildKeepsDegreeBound) {
  WglKeyTree t(4);
  t.BuildIncremental(Iota(23));
  EXPECT_EQ(t.member_count(), 23);
  t.CheckInvariants();
  // Depth stays logarithmic-ish: every leaf within ceil(log4(23)) + 1.
  for (MemberId m = 0; m < 23; ++m) {
    EXPECT_LE(t.LeafDepth(m), 5);
  }
}

TEST(WglKeyTree, MembersNeedingIsSubtreeOfEncryptingNode) {
  WglKeyTree t(2);
  t.BuildFullBalanced(Iota(8));
  RekeyMessage msg = t.Rekey({}, {3});
  for (const Encryption& e : msg.encryptions) {
    auto needing = t.MembersNeeding(e);
    EXPECT_FALSE(needing.empty());
    for (MemberId m : needing) {
      EXPECT_TRUE(t.MemberUnder(m, e.wgl_enc_node));
    }
  }
}

TEST(WglKeyTree, EmptyBatchEmitsNothing) {
  WglKeyTree t(4);
  t.BuildFullBalanced(Iota(16));
  EXPECT_EQ(t.Rekey({}, {}).RekeyCost(), 0u);
}

TEST(WglKeyTree, RejectsBadBatch) {
  WglKeyTree t(4);
  t.BuildFullBalanced(Iota(16));
  EXPECT_THROW(t.Rekey({3}, {}), std::logic_error);    // join of present
  EXPECT_THROW(t.Rekey({}, {99}), std::logic_error);   // leave of absent
}

TEST(WglKeyTree, DrainToEmptyAndRegrow) {
  WglKeyTree t(3);
  t.BuildFullBalanced(Iota(9));
  (void)t.Rekey({}, Iota(9));
  EXPECT_EQ(t.member_count(), 0);
  t.CheckInvariants();
  (void)t.Rekey(Iota(5, 100), {});
  EXPECT_EQ(t.member_count(), 5);
  t.CheckInvariants();
}

// Closure: every current member can reach all its new path keys from the
// emitted encryptions, starting from the keys it held before the batch (or
// the keys the server unicast to it when it joined during the batch).
TEST(WglKeyTree, DecryptionClosureAcrossRandomBatches) {
  Rng rng(5);
  WglKeyTree t(3);
  t.BuildFullBalanced(Iota(27));
  std::vector<MemberId> present = Iota(27);
  int next_id = 100;

  // held[m]: (node id -> key version) known to member m.
  std::map<MemberId, std::map<std::int32_t, std::uint32_t>> held;
  for (MemberId m : present) {
    for (auto [node, version] : t.PathNodes(m)) held[m][node] = version;
  }

  for (int interval = 0; interval < 20; ++interval) {
    int nj = static_cast<int>(rng.UniformInt(0, 6));
    int nl = static_cast<int>(
        rng.UniformInt(0, std::min<std::int64_t>(6, present.size())));
    std::vector<MemberId> joins, leaves;
    for (int i = 0; i < nj; ++i) joins.push_back(next_id++);
    Rng r2 = rng.Fork();
    std::vector<MemberId> shuffled = present;
    r2.Shuffle(shuffled);
    leaves.assign(shuffled.begin(), shuffled.begin() + nl);

    RekeyMessage msg = t.Rekey(joins, leaves);
    t.CheckInvariants();

    for (MemberId m : leaves) {
      present.erase(std::find(present.begin(), present.end(), m));
      held.erase(m);
    }
    for (MemberId m : joins) {
      present.push_back(m);
      // The server unicasts the joiner its (already re-keyed) path.
      for (auto [node, version] : t.PathNodes(m)) held[m][node] = version;
    }
    ASSERT_EQ(static_cast<int>(present.size()), t.member_count());

    // No encryption is useless, and every member decrypts its new path.
    for (const Encryption& e : msg.encryptions) {
      EXPECT_FALSE(t.MembersNeeding(e).empty())
          << "encryption under node " << e.wgl_enc_node << " wasted";
    }
    for (MemberId m : present) {
      auto& keys = held[m];
      bool progress = true;
      while (progress) {
        progress = false;
        for (const Encryption& e : msg.encryptions) {
          auto it = keys.find(e.wgl_enc_node);
          if (it == keys.end() || it->second != e.enc_key_version) continue;
          auto cur = keys.find(e.wgl_new_node);
          if (cur != keys.end() && cur->second >= e.new_key_version) continue;
          keys[e.wgl_new_node] = e.new_key_version;
          progress = true;
        }
      }
      for (auto [node, version] : t.PathNodes(m)) {
        ASSERT_TRUE(keys.count(node) && keys[node] >= version)
            << "member " << m << " cannot decrypt node " << node;
      }
    }
  }
}

// --- tree-shape ablation: placement policies ---------------------------

// The root-child subtree a member's u-node lives under (its own leaf when
// the member sits directly below the root). PathNodes is leaf-first, so the
// root child is the second-to-last entry.
std::int32_t RootChildOf(const WglKeyTree& t, MemberId m) {
  auto path = t.PathNodes(m);
  EXPECT_GE(path.size(), 2u);
  return path[path.size() - 2].first;
}

TEST(WglKeyTree, VolatileTagLifecycle) {
  WglKeyTree t(4, WglPlacement::kChurnAffinity);
  EXPECT_EQ(t.placement(), WglPlacement::kChurnAffinity);
  t.TagVolatile(7, true);  // allowed before the member exists
  EXPECT_TRUE(t.IsVolatile(7));
  t.BuildIncremental(Iota(16));
  t.CheckInvariants();
  t.TagVolatile(7, false);
  t.TagVolatile(3, true);
  t.CheckInvariants();  // aggregates follow re-tagging
  EXPECT_FALSE(t.IsVolatile(7));
  EXPECT_TRUE(t.IsVolatile(3));
  // Leaving retires the tag; so does being replaced by a joiner in a batch.
  t.TagVolatile(5, true);
  (void)t.Rekey({100}, {3});
  EXPECT_FALSE(t.IsVolatile(3));
  (void)t.Rekey({}, {5});
  EXPECT_FALSE(t.IsVolatile(5));
  t.CheckInvariants();
}

TEST(WglKeyTree, ShallowestPlacementIgnoresVolatileTags) {
  // Under the default policy the tags must not perturb anything observable:
  // a tagged tree and an untagged twin emit identical rekey streams.
  WglKeyTree tagged(4), plain(4);
  tagged.TagVolatile(100, true);
  tagged.TagVolatile(3, true);
  tagged.BuildFullBalanced(Iota(16));
  plain.BuildFullBalanced(Iota(16));
  Rng rng(11);
  std::vector<MemberId> present = Iota(16);
  int next_id = 100;
  for (int interval = 0; interval < 12; ++interval) {
    int nj = static_cast<int>(rng.UniformInt(0, 5));
    int nl = static_cast<int>(
        rng.UniformInt(0, std::min<std::int64_t>(5, present.size())));
    std::vector<MemberId> joins, leaves;
    for (int i = 0; i < nj; ++i) joins.push_back(next_id++);
    std::vector<MemberId> shuffled = present;
    rng.Shuffle(shuffled);
    leaves.assign(shuffled.begin(), shuffled.begin() + nl);
    for (MemberId j : joins) tagged.TagVolatile(j, (j % 3) == 0);

    RekeyMessage a = tagged.Rekey(joins, leaves);
    RekeyMessage b = plain.Rekey(joins, leaves);
    ASSERT_EQ(a.encryptions.size(), b.encryptions.size());
    for (std::size_t i = 0; i < a.encryptions.size(); ++i) {
      EXPECT_EQ(a.encryptions[i].wgl_enc_node, b.encryptions[i].wgl_enc_node);
      EXPECT_EQ(a.encryptions[i].wgl_new_node, b.encryptions[i].wgl_new_node);
      EXPECT_EQ(a.encryptions[i].enc_key_version,
                b.encryptions[i].enc_key_version);
      EXPECT_EQ(a.encryptions[i].new_key_version,
                b.encryptions[i].new_key_version);
    }
    tagged.CheckInvariants();
    for (MemberId m : leaves) {
      present.erase(std::find(present.begin(), present.end(), m));
    }
    for (MemberId m : joins) present.push_back(m);
  }
}

TEST(WglKeyTree, ChurnAffinitySteersByVolatileMass) {
  // Degree-2 full tree of 8 stable members. The first volatile joiner seeds
  // some root-child subtree; the next volatile joiner must follow it (that
  // subtree now has the highest volatile fraction), while a stable joiner
  // must avoid it.
  WglKeyTree t(2, WglPlacement::kChurnAffinity);
  t.BuildIncremental(Iota(8));
  t.TagVolatile(100, true);
  (void)t.Rekey({100}, {});
  t.CheckInvariants();
  const std::int32_t hot = RootChildOf(t, 100);

  t.TagVolatile(101, true);
  (void)t.Rekey({101}, {});
  t.CheckInvariants();
  EXPECT_EQ(RootChildOf(t, 101), hot);

  (void)t.Rekey({200}, {});  // stable: steered away from the hot subtree
  t.CheckInvariants();
  EXPECT_NE(RootChildOf(t, 200), hot);
}

TEST(WglKeyTree, ChurnAffinityKeepsDepthLogarithmic) {
  // The eligibility rule (local placement depth <= global shallowest +
  // kAffinityDepthSlack) bounds the cost of clustering: even under sustained
  // skewed churn the tree stays balanced to within a small additive slack of
  // the degree-d optimum.
  WglKeyTree t(4, WglPlacement::kChurnAffinity);
  t.BuildIncremental(Iota(32));
  Rng rng(23);
  std::vector<MemberId> present = Iota(32);
  int next_id = 100;
  for (int interval = 0; interval < 25; ++interval) {
    int nj = static_cast<int>(rng.UniformInt(1, 6));
    int nl = static_cast<int>(
        rng.UniformInt(0, std::min<std::int64_t>(4, present.size())));
    std::vector<MemberId> joins, leaves;
    for (int i = 0; i < nj; ++i) joins.push_back(next_id++);
    std::vector<MemberId> shuffled = present;
    rng.Shuffle(shuffled);
    leaves.assign(shuffled.begin(), shuffled.begin() + nl);
    for (MemberId j : joins) t.TagVolatile(j, (j % 2) == 0);

    (void)t.Rekey(joins, leaves);
    t.CheckInvariants();
    for (MemberId m : leaves) {
      present.erase(std::find(present.begin(), present.end(), m));
    }
    for (MemberId m : joins) present.push_back(m);

    int optimal = 0;
    for (std::size_t n = 1; n < present.size(); n *= 4) ++optimal;
    for (MemberId m : present) {
      EXPECT_LE(t.LeafDepth(m), optimal + 2)
          << "member " << m << " too deep at n=" << present.size();
    }
  }
}

// Parameterized sweep: tree invariants and cost positivity across degrees.
class WglBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(WglBatchTest, RandomBatchesKeepInvariants) {
  const int degree = GetParam();
  Rng rng(degree);
  WglKeyTree t(degree);
  std::vector<MemberId> present;
  int next_id = 0;
  for (int interval = 0; interval < 30; ++interval) {
    int nj = static_cast<int>(rng.UniformInt(0, 8));
    int nl = static_cast<int>(
        rng.UniformInt(0, std::min<std::int64_t>(8, present.size())));
    std::vector<MemberId> joins;
    for (int i = 0; i < nj; ++i) joins.push_back(next_id++);
    std::vector<MemberId> shuffled = present;
    rng.Shuffle(shuffled);
    std::vector<MemberId> leaves(shuffled.begin(), shuffled.begin() + nl);

    RekeyMessage msg = t.Rekey(joins, leaves);
    t.CheckInvariants();
    if (nj + nl > 0 && t.member_count() > 0) {
      EXPECT_GT(msg.RekeyCost(), 0u);
    }
    for (MemberId m : leaves) {
      present.erase(std::find(present.begin(), present.end(), m));
    }
    for (MemberId m : joins) present.push_back(m);
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, WglBatchTest, ::testing::Values(2, 3, 4, 8));

}  // namespace
}  // namespace tmesh
