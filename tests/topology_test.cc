#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topology/gtitm.h"
#include "topology/planetlab.h"
#include "topology/synthetic_wan.h"

namespace tmesh {
namespace {

GtItmParams SmallGtItm() {
  GtItmParams p;
  p.transit_domains = 3;
  p.transit_routers_per_domain = 3;
  p.stub_domains_per_transit_router = 2;
  p.stub_routers_min = 3;
  p.stub_routers_max = 5;
  return p;
}

TEST(GtItm, PaperScaleSizes) {
  // "The topology consists of 5000 routers and 13000 network links."
  GtItmParams p;
  GtItmNetwork net(p, 10, 1);
  EXPECT_GE(net.router_count(), 4200);
  EXPECT_LE(net.router_count(), 5800);
  EXPECT_GE(net.link_count(), 10500);
  EXPECT_LE(net.link_count(), 15500);
  EXPECT_TRUE(net.graph().IsConnected());
}

TEST(GtItm, LinkDelaysRespectClassBands) {
  GtItmNetwork net(SmallGtItm(), 5, 1);
  const Graph& g = net.graph();
  for (int l = 0; l < g.link_count(); ++l) {
    double d = g.link(l).rtt_ms;
    bool in_band = (d >= 0.1 && d <= 1.0) || (d >= 2.0 && d <= 3.0) ||
                   (d >= 10.0 && d <= 15.0) || (d >= 75.0 && d <= 85.0);
    EXPECT_TRUE(in_band) << "link delay " << d << " outside all classes";
  }
}

TEST(GtItm, HostsAttachToDistinctRouters) {
  GtItmNetwork net(SmallGtItm(), 20, 7);
  std::set<RouterId> routers;
  for (HostId h = 0; h < net.host_count(); ++h) {
    routers.insert(net.attach_router(h));
  }
  EXPECT_EQ(routers.size(), 20u);
}

TEST(GtItm, RttSymmetricPositiveAndZeroOnSelf) {
  GtItmNetwork net(SmallGtItm(), 10, 3);
  for (HostId a = 0; a < 10; ++a) {
    EXPECT_DOUBLE_EQ(net.RttHosts(a, a), 0.0);
    for (HostId b = a + 1; b < 10; ++b) {
      double ab = net.RttHosts(a, b);
      double ba = net.RttHosts(b, a);
      EXPECT_GT(ab, 0.0);
      EXPECT_NEAR(ab, ba, 1e-3);
    }
  }
}

TEST(GtItm, GatewayRttEqualsHostRtt) {
  // GT-ITM members attach directly to routers: no access-link delay.
  GtItmNetwork net(SmallGtItm(), 6, 3);
  for (HostId a = 0; a < 6; ++a) {
    EXPECT_DOUBLE_EQ(net.RttHostGateway(a), 0.0);
    for (HostId b = 0; b < 6; ++b) {
      EXPECT_DOUBLE_EQ(net.RttHosts(a, b), net.RttGateways(a, b));
    }
  }
}

TEST(GtItm, PathLinksSumToRtt) {
  GtItmNetwork net(SmallGtItm(), 8, 5);
  ASSERT_TRUE(net.HasRouterPaths());
  for (HostId a = 0; a < 8; ++a) {
    for (HostId b = 0; b < 8; ++b) {
      if (a == b) continue;
      std::vector<LinkId> path;
      net.AppendPathLinks(a, b, path);
      double total = 0;
      for (LinkId l : path) total += net.graph().link(l).rtt_ms;
      EXPECT_NEAR(total, net.RttHosts(a, b), 1e-3);
    }
  }
}

TEST(GtItm, DeterministicForSeed) {
  GtItmNetwork n1(SmallGtItm(), 10, 9);
  GtItmNetwork n2(SmallGtItm(), 10, 9);
  ASSERT_EQ(n1.link_count(), n2.link_count());
  for (HostId a = 0; a < 10; ++a) {
    for (HostId b = 0; b < 10; ++b) {
      EXPECT_DOUBLE_EQ(n1.RttHosts(a, b), n2.RttHosts(a, b));
    }
  }
}

TEST(GtItm, RejectsMoreHostsThanRouters) {
  GtItmParams p = SmallGtItm();
  EXPECT_THROW(GtItmNetwork(p, 100000, 1), std::logic_error);
}

TEST(PlanetLab, SizeAndSymmetry) {
  PlanetLabParams p;
  p.hosts = 50;
  PlanetLabNetwork net(p);
  EXPECT_EQ(net.host_count(), 50);
  for (HostId a = 0; a < 50; ++a) {
    EXPECT_DOUBLE_EQ(net.RttHosts(a, a), 0.0);
    for (HostId b = a + 1; b < 50; ++b) {
      EXPECT_NEAR(net.RttHosts(a, b), net.RttHosts(b, a), 1e-9);
      EXPECT_GT(net.RttGateways(a, b), 0.0);
    }
  }
}

TEST(PlanetLab, HostRttIncludesAccessLinks) {
  PlanetLabParams p;
  p.hosts = 30;
  PlanetLabNetwork net(p);
  for (HostId a = 0; a < 30; ++a) {
    double acc_a = net.RttHostGateway(a);
    EXPECT_GE(acc_a, p.access_rtt_min);
    EXPECT_LE(acc_a, p.access_rtt_max);
    for (HostId b = 0; b < 30; ++b) {
      if (a == b) continue;
      EXPECT_NEAR(net.RttHosts(a, b),
                  net.RttGateways(a, b) + acc_a + net.RttHostGateway(b), 1e-9);
    }
  }
}

TEST(PlanetLab, RttBandsReflectGeography) {
  PlanetLabParams p;
  p.hosts = 227;
  p.seed = 11;
  PlanetLabNetwork net(p);
  for (HostId a = 0; a < net.host_count(); ++a) {
    for (HostId b = a + 1; b < net.host_count(); ++b) {
      double gw = net.RttGateways(a, b);
      if (net.site_of(a) == net.site_of(b)) {
        EXPECT_LE(gw, p.same_site_rtt_max + 1e-9);
      } else if (net.continent_of(a) == net.continent_of(b)) {
        EXPECT_GE(gw, p.intra_continent_rtt_min - 1e-9);
        EXPECT_LE(gw, p.intra_continent_rtt_max + p.pair_jitter_max + 1e-9);
      } else {
        // Cross-continent: at least the smallest base minus jitter.
        EXPECT_GE(gw, 95.0 - 15.0 - 1e-9);
      }
    }
  }
}

TEST(PlanetLab, AllContinentsPopulatedAtPaperScale) {
  PlanetLabParams p;  // 227 hosts
  PlanetLabNetwork net(p);
  std::set<int> continents;
  for (HostId h = 0; h < net.host_count(); ++h) {
    continents.insert(net.continent_of(h));
  }
  EXPECT_EQ(continents.size(), 4u);
  EXPECT_GT(net.site_count(), 10);
}

TEST(PlanetLab, DeterministicForSeed) {
  PlanetLabParams p;
  p.hosts = 40;
  p.seed = 77;
  PlanetLabNetwork n1(p), n2(p);
  for (HostId a = 0; a < 40; ++a) {
    for (HostId b = 0; b < 40; ++b) {
      EXPECT_DOUBLE_EQ(n1.RttHosts(a, b), n2.RttHosts(a, b));
    }
  }
}

TEST(SyntheticWan, SymmetricDeterministicAndZeroSelfRtt) {
  SyntheticWanParams p;
  p.hosts = 200;
  p.seed = 9;
  SyntheticWanNetwork n1(p), n2(p);
  for (HostId a = 0; a < 200; a += 7) {
    EXPECT_DOUBLE_EQ(n1.RttHosts(a, a), 0.0);
    for (HostId b = 0; b < 200; b += 11) {
      EXPECT_DOUBLE_EQ(n1.RttHosts(a, b), n1.RttHosts(b, a));
      EXPECT_DOUBLE_EQ(n1.RttHosts(a, b), n2.RttHosts(a, b));
    }
  }
}

TEST(SyntheticWan, RttsRespectPlanetLabBands) {
  SyntheticWanParams p;
  p.hosts = 300;
  p.seed = 3;
  SyntheticWanNetwork net(p);
  int same_site = 0, same_continent = 0, cross = 0;
  for (HostId a = 0; a < 300; ++a) {
    for (HostId b = a + 1; b < 300; b += 13) {
      const double gw = net.RttGateways(a, b);
      const double access =
          net.RttHostGateway(a) + net.RttHostGateway(b);
      EXPECT_NEAR(net.RttHosts(a, b), access + gw, 1e-9);
      EXPECT_GE(net.RttHostGateway(a), 0.2);
      EXPECT_LE(net.RttHostGateway(a), 5.0);
      if (net.site_of(a) == net.site_of(b)) {
        EXPECT_GE(gw, 0.5);
        EXPECT_LE(gw, 3.0);
        ++same_site;
      } else if (net.continent_of(a) == net.continent_of(b)) {
        EXPECT_GE(gw, 10.0);
        EXPECT_LE(gw, 64.0);  // site base up to 60 + pair jitter up to 4
        ++same_continent;
      } else {
        // Continent base 95..310 with U(-15, 45) spread + jitter.
        EXPECT_GE(gw, 80.0);
        EXPECT_LE(gw, 359.0);
        ++cross;
      }
    }
  }
  // The footprint weights must actually produce all three bands.
  EXPECT_GT(same_site, 0);
  EXPECT_GT(same_continent, 0);
  EXPECT_GT(cross, 0);
}

TEST(SyntheticWan, CoversAllContinentsAtScale) {
  SyntheticWanParams p;
  p.hosts = 5000;
  p.seed = 1;
  SyntheticWanNetwork net(p);
  std::set<int> continents;
  for (HostId h = 0; h < net.host_count(); h += 97) {
    continents.insert(net.continent_of(h));
  }
  EXPECT_EQ(continents.size(), 4u);
  EXPECT_GT(net.site_count(), 10);
}

TEST(SyntheticWan, MillionHostQueriesAreCheap) {
  // O(1) storage: construction must not materialize any per-pair state, and
  // spot queries at 10^6 hosts must behave like the small-network ones.
  SyntheticWanParams p;
  p.hosts = 1000000;
  p.seed = 5;
  SyntheticWanNetwork net(p);
  EXPECT_EQ(net.host_count(), 1000000);
  for (HostId a = 0; a < 1000000; a += 250007) {
    for (HostId b = 1; b < 1000000; b += 333013) {
      const double r = net.RttHosts(a, b);
      if (a == b) continue;
      EXPECT_GT(r, 0.0);
      EXPECT_LT(r, 400.0);
      EXPECT_DOUBLE_EQ(r, net.RttHosts(b, a));
    }
  }
}

}  // namespace
}  // namespace tmesh
