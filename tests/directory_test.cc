#include "core/directory.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "topology/planetlab.h"

namespace tmesh {
namespace {

PlanetLabNetwork MakeNet(int hosts, std::uint64_t seed = 5) {
  PlanetLabParams p;
  p.hosts = hosts;
  p.seed = seed;
  return PlanetLabNetwork(p);
}

UserId RandomId(Rng& rng, int d, int b) {
  UserId id;
  for (int i = 0; i < d; ++i) {
    id.Append(static_cast<int>(rng.UniformInt(0, b - 1)));
  }
  return id;
}

TEST(Directory, AddMemberBuildsMutualEntries) {
  auto net = MakeNet(4);
  Directory dir(net, GroupParams{2, 4, 2}, 0);
  dir.AddMember(UserId{0, 0}, 1, 10);
  dir.AddMember(UserId{0, 1}, 2, 20);
  dir.AddMember(UserId{2, 0}, 3, 30);

  // [0,0] sees [0,1] at row 1 digit 1, and [2,0] at row 0 digit 2.
  const NeighborTable& t = dir.TableOf(UserId{0, 0});
  EXPECT_TRUE(t.ContainsNeighbor(1, 1, UserId{0, 1}));
  EXPECT_TRUE(t.ContainsNeighbor(0, 2, UserId{2, 0}));
  // And vice versa.
  EXPECT_TRUE(dir.TableOf(UserId{2, 0}).ContainsNeighbor(0, 0, UserId{0, 0}));
  dir.CheckKConsistency();
}

TEST(Directory, ServerTableTracksClosestPerDigit) {
  auto net = MakeNet(6);
  Directory dir(net, GroupParams{2, 4, 1}, 0);
  dir.AddMember(UserId{1, 0}, 1, 1);
  dir.AddMember(UserId{1, 1}, 2, 2);
  dir.AddMember(UserId{1, 2}, 3, 3);
  const auto* e = dir.ServerTable().entry(0, 1);
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->size(), 1u);  // K = 1
  // The retained record is the closest of the three to the server.
  double best = std::min({net.RttHosts(0, 1), net.RttHosts(0, 2),
                          net.RttHosts(0, 3)});
  EXPECT_DOUBLE_EQ((*e)[0].rtt_ms, best);
}

TEST(Directory, RemoveMemberRefillsEntries) {
  auto net = MakeNet(8);
  // K = 1 so the single record's removal forces a refill.
  Directory dir(net, GroupParams{2, 4, 1}, 0);
  dir.AddMember(UserId{0, 0}, 1, 1);
  dir.AddMember(UserId{1, 0}, 2, 2);
  dir.AddMember(UserId{1, 1}, 3, 3);
  dir.AddMember(UserId{1, 2}, 4, 4);
  dir.CheckKConsistency();

  const NeighborTable& t = dir.TableOf(UserId{0, 0});
  const auto* e = t.entry(0, 1);
  ASSERT_NE(e, nullptr);
  UserId present = (*e)[0].id;
  dir.RemoveMember(present);
  // Entry refilled from the two remaining members of the [1]-subtree.
  const auto* e2 = dir.TableOf(UserId{0, 0}).entry(0, 1);
  ASSERT_NE(e2, nullptr);
  EXPECT_EQ(e2->size(), 1u);
  EXPECT_NE((*e2)[0].id, present);
  dir.CheckKConsistency();
}

TEST(Directory, QueryRecordsReturnsMatchingPrefixes) {
  auto net = MakeNet(5);
  Directory dir(net, GroupParams{2, 4, 4}, 0);
  dir.AddMember(UserId{0, 0}, 1, 1);
  dir.AddMember(UserId{0, 1}, 2, 2);
  dir.AddMember(UserId{1, 0}, 3, 3);

  auto recs = dir.QueryRecords(UserId{0, 0}, DigitString{0});
  // Its own record plus [0,1]; never [1,0].
  ASSERT_EQ(recs.size(), 2u);
  for (const auto& r : recs) {
    EXPECT_TRUE((DigitString{0}).IsPrefixOf(r.id));
  }
}

TEST(Directory, RejectsDuplicatesAndUnknowns) {
  auto net = MakeNet(4);
  Directory dir(net, GroupParams{2, 4, 2}, 0);
  dir.AddMember(UserId{0, 0}, 1, 1);
  EXPECT_THROW(dir.AddMember(UserId{0, 0}, 2, 2), std::logic_error);
  EXPECT_THROW(dir.AddMember(UserId{0, 1}, 1, 2), std::logic_error);  // host reuse
  EXPECT_THROW(dir.RemoveMember(UserId{3, 3}), std::logic_error);
  EXPECT_THROW(dir.AddMember(UserId{1, 1}, 0, 1), std::logic_error);  // server host
}

TEST(Directory, FailureThenRepairRestoresConsistency) {
  auto net = MakeNet(10);
  Directory dir(net, GroupParams{2, 4, 2}, 0);
  Rng rng(3);
  std::vector<UserId> ids;
  for (HostId h = 1; h < 10; ++h) {
    UserId id;
    do {
      id = RandomId(rng, 2, 4);
    } while (dir.Contains(id));
    dir.AddMember(id, h, h);
    ids.push_back(id);
  }
  dir.CheckKConsistency();

  UserId failed = ids[4];
  dir.MarkFailed(failed);
  EXPECT_FALSE(dir.IsAlive(failed));
  EXPECT_TRUE(dir.Contains(failed));
  EXPECT_EQ(dir.alive_count(), 8);

  dir.RepairFailure(failed);
  EXPECT_FALSE(dir.Contains(failed));
  dir.CheckKConsistency();
}

TEST(Directory, HostIndexRoundTrip) {
  auto net = MakeNet(4);
  Directory dir(net, GroupParams{2, 4, 2}, 0);
  dir.AddMember(UserId{1, 2}, 3, 5);
  ASSERT_NE(dir.IdOfHost(3), nullptr);
  EXPECT_EQ(*dir.IdOfHost(3), (UserId{1, 2}));
  EXPECT_EQ(dir.IdOfHost(2), nullptr);
  EXPECT_EQ(dir.HostOf(UserId{1, 2}), 3);
}

// Definition 3 (K-consistency) holds through arbitrary join/leave churn.
struct ChurnShape {
  int depth;
  int base;
  int capacity;
  int hosts;
};

class DirectoryChurnTest : public ::testing::TestWithParam<ChurnShape> {};

TEST_P(DirectoryChurnTest, KConsistencyUnderRandomChurn) {
  const ChurnShape shape = GetParam();
  auto net = MakeNet(shape.hosts, 17);
  Directory dir(net, GroupParams{shape.depth, shape.base, shape.capacity}, 0);
  Rng rng(shape.hosts * 31ull + static_cast<std::uint64_t>(shape.base));

  std::vector<UserId> present;
  std::vector<HostId> free_hosts;
  for (HostId h = 1; h < shape.hosts; ++h) free_hosts.push_back(h);

  for (int step = 0; step < 300; ++step) {
    bool join = present.empty() ||
                (!free_hosts.empty() && rng.Bernoulli(0.6));
    if (join) {
      UserId id = RandomId(rng, shape.depth, shape.base);
      if (dir.Contains(id)) continue;
      HostId h = free_hosts.back();
      free_hosts.pop_back();
      dir.AddMember(id, h, step);
      present.push_back(id);
    } else {
      std::size_t i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(present.size()) - 1));
      free_hosts.push_back(dir.HostOf(present[i]));
      dir.RemoveMember(present[i]);
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(i));
    }
    if (step % 10 == 0) {
      dir.CheckKConsistency();
      dir.CheckIndexIntegrity();
    }
  }
  dir.CheckKConsistency();
  dir.CheckIndexIntegrity();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DirectoryChurnTest,
    ::testing::Values(ChurnShape{2, 4, 1, 20}, ChurnShape{2, 4, 2, 30},
                      ChurnShape{3, 4, 2, 40}, ChurnShape{3, 8, 4, 50},
                      ChurnShape{5, 256, 4, 40}));

// ---------------------------------------------------------------------------
// Differential equivalence: the indexed admission path and the retained O(N)
// scan-reference path implement one discipline and must produce byte-identical
// neighbor tables (records, order, RTTs) through arbitrary churn, including
// failure windows. Style follows the PR-6 seed-tree differential suite.
// ---------------------------------------------------------------------------

void ExpectTablesEqual(const NeighborTable& a, const NeighborTable& b) {
  ASSERT_EQ(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const auto& ra = a.row(i);
    const auto& rb = b.row(i);
    ASSERT_EQ(ra.size(), rb.size()) << "row " << i;
    auto itb = rb.begin();
    for (const auto& [digit, ea] : ra) {
      ASSERT_EQ(digit, itb->first) << "row " << i;
      const NeighborTable::Entry& eb = itb->second;
      ASSERT_EQ(ea.size(), eb.size()) << "row " << i << " digit " << digit;
      for (std::size_t r = 0; r < ea.size(); ++r) {
        ASSERT_EQ(ea[r].id, eb[r].id) << "row " << i << " digit " << digit;
        ASSERT_EQ(ea[r].host, eb[r].host);
        ASSERT_EQ(ea[r].join_time, eb[r].join_time);
        ASSERT_EQ(ea[r].rtt_ms, eb[r].rtt_ms);  // bitwise: same probe source
      }
      ++itb;
    }
  }
}

void ExpectDirectoriesEqual(const Directory& a, const Directory& b) {
  ASSERT_EQ(a.member_count(), b.member_count());
  ASSERT_EQ(a.alive_count(), b.alive_count());
  auto itb = b.members().begin();
  for (const auto& [id, ma] : a.members()) {
    ASSERT_EQ(id, itb->first);
    ASSERT_EQ(ma.alive, itb->second.alive);
    ExpectTablesEqual(ma.table, itb->second.table);
    ++itb;
  }
  ExpectTablesEqual(a.ServerTable(), b.ServerTable());
}

struct DiffShape {
  int depth;
  int base;
  int capacity;
  int hosts;
  double fail_p;
};

class DirectoryDifferentialTest : public ::testing::TestWithParam<DiffShape> {};

TEST_P(DirectoryDifferentialTest, IndexedMatchesScanReferenceByteForByte) {
  const DiffShape shape = GetParam();
  auto net = MakeNet(shape.hosts, 23);
  GroupParams params{shape.depth, shape.base, shape.capacity};
  Directory indexed(net, params, 0,
                    AdmissionOptions{AdmissionPolicy::kIndexed});
  Directory scan(net, params, 0,
                 AdmissionOptions{AdmissionPolicy::kScanReference});
  Rng rng(shape.hosts * 131ull + static_cast<std::uint64_t>(shape.base));

  std::vector<UserId> alive;
  std::vector<UserId> failed;
  std::vector<HostId> free_hosts;
  for (HostId h = 1; h < shape.hosts; ++h) free_hosts.push_back(h);

  for (int step = 0; step < 400; ++step) {
    double roll = rng.UniformReal(0.0, 1.0);
    if (!free_hosts.empty() && (alive.empty() || roll < 0.55)) {
      UserId id = RandomId(rng, shape.depth, shape.base);
      if (indexed.Contains(id)) continue;
      HostId h = free_hosts.back();
      free_hosts.pop_back();
      indexed.AddMember(id, h, step);
      scan.AddMember(id, h, step);
      alive.push_back(id);
    } else if (roll < 0.55 + shape.fail_p && !alive.empty()) {
      std::size_t i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(alive.size()) - 1));
      indexed.MarkFailed(alive[i]);
      scan.MarkFailed(alive[i]);
      failed.push_back(alive[i]);
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (roll < 0.8 + shape.fail_p && !alive.empty()) {
      std::size_t i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(alive.size()) - 1));
      free_hosts.push_back(indexed.HostOf(alive[i]));
      indexed.RemoveMember(alive[i]);
      scan.RemoveMember(alive[i]);
      alive.erase(alive.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (!failed.empty()) {
      std::size_t i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(failed.size()) - 1));
      free_hosts.push_back(indexed.HostOf(failed[i]));
      indexed.RepairFailure(failed[i]);
      scan.RepairFailure(failed[i]);
      failed.erase(failed.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      continue;
    }

    ExpectDirectoriesEqual(indexed, scan);
    if (step % 20 == 0) {
      indexed.CheckIndexIntegrity();
      scan.CheckIndexIntegrity();
      if (failed.empty()) {
        indexed.CheckKConsistency();
        scan.CheckKConsistency();
      }
    }
  }
  ExpectDirectoriesEqual(indexed, scan);
  indexed.CheckIndexIntegrity();
  scan.CheckIndexIntegrity();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DirectoryDifferentialTest,
    ::testing::Values(DiffShape{2, 4, 2, 30, 0.15},
                      DiffShape{3, 8, 2, 40, 0.15},
                      DiffShape{4, 2, 1, 50, 0.2},   // deep binary: windows bind
                      DiffShape{3, 4, 4, 60, 0.15},  // K above default window/4
                      DiffShape{5, 256, 4, 40, 0.1}));

// ---------------------------------------------------------------------------
// Admission-complexity pins: on a warm directory, the indexed policy must
// touch O(base·digits·K) members per join/removal — not O(N) — while the
// scan reference walks essentially everyone. Counter-based, no wall clock.
// ---------------------------------------------------------------------------

TEST(DirectoryComplexity, IndexedAdmissionTouchesBoundedMembers) {
  constexpr int kDepth = 4, kBase = 8, kCap = 2;
  constexpr int kWarm = 1100, kProbe = 100;
  auto net = MakeNet(kWarm + kProbe + 2, 7);
  GroupParams params{kDepth, kBase, kCap};
  Directory indexed(net, params, 0,
                    AdmissionOptions{AdmissionPolicy::kIndexed});
  Directory scan(net, params, 0,
                 AdmissionOptions{AdmissionPolicy::kScanReference});

  Rng rng(41);
  std::vector<UserId> present;
  HostId next_host = 1;
  auto join_both = [&](int n) {
    for (int i = 0; i < n; ++i) {
      UserId id;
      do {
        id = RandomId(rng, kDepth, kBase);
      } while (indexed.Contains(id));
      indexed.AddMember(id, next_host, i);
      scan.AddMember(id, next_host, i);
      present.push_back(id);
      ++next_host;
    }
  };

  join_both(kWarm);
  const auto warm_idx = indexed.op_stats();
  const auto warm_scan = scan.op_stats();
  join_both(kProbe);
  const auto after_idx = indexed.op_stats();
  const auto after_scan = scan.op_stats();

  const double idx_touched =
      static_cast<double>(after_idx.holders_examined -
                          warm_idx.holders_examined) /
      kProbe;
  const double scan_touched =
      static_cast<double>(after_scan.holders_examined -
                          warm_scan.holders_examined) /
      kProbe;
  // The scan reference inspects every member per join...
  EXPECT_GT(scan_touched, kWarm * 0.9);
  // ...while the indexed path touches a population-independent set: the
  // underfull holders plus new-subtree broadcasts, O(base·digits·K) with
  // room for the broadcast constant.
  EXPECT_LE(idx_touched, 4.0 * kBase * kDepth * kCap);
  EXPECT_LT(idx_touched, kWarm / 8.0);
  EXPECT_LT(idx_touched * 8, scan_touched);
  // Windowed candidate probes are bounded by entries-per-table × window.
  const double idx_probes =
      static_cast<double>(after_idx.candidates_probed -
                          warm_idx.candidates_probed) /
      kProbe;
  EXPECT_LE(idx_probes, static_cast<double>(kDepth) * kBase * (4 * kCap));

  // Removal: the reverse holder index visits only actual holders.
  Rng pick(77);
  const int kDrop = 100;
  for (int i = 0; i < kDrop; ++i) {
    std::size_t j = static_cast<std::size_t>(
        pick.UniformInt(0, static_cast<std::int64_t>(present.size()) - 1));
    indexed.RemoveMember(present[j]);
    scan.RemoveMember(present[j]);
    present.erase(present.begin() + static_cast<std::ptrdiff_t>(j));
  }
  const auto rem_idx = indexed.op_stats();
  const auto rem_scan = scan.op_stats();
  const double idx_rm =
      static_cast<double>(rem_idx.holders_examined -
                          after_idx.holders_examined) /
      kDrop;
  const double scan_rm =
      static_cast<double>(rem_scan.holders_examined -
                          after_scan.holders_examined) /
      kDrop;
  EXPECT_GT(scan_rm, (kWarm + kProbe - kDrop) * 0.9);
  EXPECT_LE(idx_rm, 4.0 * kBase * kDepth * kCap);
  EXPECT_LT(idx_rm * 8, scan_rm);

  ExpectDirectoriesEqual(indexed, scan);
  indexed.CheckIndexIntegrity();
  indexed.CheckKConsistency();
}

TEST(Directory, AdmissionWindowBelowCapacityThrows) {
  auto net = MakeNet(4);
  AdmissionOptions narrow;
  narrow.window = 1;
  EXPECT_THROW(Directory(net, GroupParams{2, 4, 2}, 0, narrow),
               std::logic_error);
}

TEST(Directory, OpStatsCountJoinsAndRemovals) {
  auto net = MakeNet(6);
  Directory dir(net, GroupParams{2, 4, 2}, 0);
  dir.AddMember(UserId{0, 0}, 1, 1);
  dir.AddMember(UserId{1, 0}, 2, 2);
  dir.MarkFailed(UserId{1, 0});
  dir.RepairFailure(UserId{1, 0});
  dir.RemoveMember(UserId{0, 0});
  const auto& s = dir.op_stats();
  EXPECT_EQ(s.joins, 2);
  EXPECT_EQ(s.removals, 2);  // repair purge + graceful leave
}

}  // namespace
}  // namespace tmesh
