#include "core/directory.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "topology/planetlab.h"

namespace tmesh {
namespace {

PlanetLabNetwork MakeNet(int hosts, std::uint64_t seed = 5) {
  PlanetLabParams p;
  p.hosts = hosts;
  p.seed = seed;
  return PlanetLabNetwork(p);
}

UserId RandomId(Rng& rng, int d, int b) {
  UserId id;
  for (int i = 0; i < d; ++i) {
    id.Append(static_cast<int>(rng.UniformInt(0, b - 1)));
  }
  return id;
}

TEST(Directory, AddMemberBuildsMutualEntries) {
  auto net = MakeNet(4);
  Directory dir(net, GroupParams{2, 4, 2}, 0);
  dir.AddMember(UserId{0, 0}, 1, 10);
  dir.AddMember(UserId{0, 1}, 2, 20);
  dir.AddMember(UserId{2, 0}, 3, 30);

  // [0,0] sees [0,1] at row 1 digit 1, and [2,0] at row 0 digit 2.
  const NeighborTable& t = dir.TableOf(UserId{0, 0});
  EXPECT_TRUE(t.ContainsNeighbor(1, 1, UserId{0, 1}));
  EXPECT_TRUE(t.ContainsNeighbor(0, 2, UserId{2, 0}));
  // And vice versa.
  EXPECT_TRUE(dir.TableOf(UserId{2, 0}).ContainsNeighbor(0, 0, UserId{0, 0}));
  dir.CheckKConsistency();
}

TEST(Directory, ServerTableTracksClosestPerDigit) {
  auto net = MakeNet(6);
  Directory dir(net, GroupParams{2, 4, 1}, 0);
  dir.AddMember(UserId{1, 0}, 1, 1);
  dir.AddMember(UserId{1, 1}, 2, 2);
  dir.AddMember(UserId{1, 2}, 3, 3);
  const auto* e = dir.ServerTable().entry(0, 1);
  ASSERT_NE(e, nullptr);
  ASSERT_EQ(e->size(), 1u);  // K = 1
  // The retained record is the closest of the three to the server.
  double best = std::min({net.RttHosts(0, 1), net.RttHosts(0, 2),
                          net.RttHosts(0, 3)});
  EXPECT_DOUBLE_EQ((*e)[0].rtt_ms, best);
}

TEST(Directory, RemoveMemberRefillsEntries) {
  auto net = MakeNet(8);
  // K = 1 so the single record's removal forces a refill.
  Directory dir(net, GroupParams{2, 4, 1}, 0);
  dir.AddMember(UserId{0, 0}, 1, 1);
  dir.AddMember(UserId{1, 0}, 2, 2);
  dir.AddMember(UserId{1, 1}, 3, 3);
  dir.AddMember(UserId{1, 2}, 4, 4);
  dir.CheckKConsistency();

  const NeighborTable& t = dir.TableOf(UserId{0, 0});
  const auto* e = t.entry(0, 1);
  ASSERT_NE(e, nullptr);
  UserId present = (*e)[0].id;
  dir.RemoveMember(present);
  // Entry refilled from the two remaining members of the [1]-subtree.
  const auto* e2 = dir.TableOf(UserId{0, 0}).entry(0, 1);
  ASSERT_NE(e2, nullptr);
  EXPECT_EQ(e2->size(), 1u);
  EXPECT_NE((*e2)[0].id, present);
  dir.CheckKConsistency();
}

TEST(Directory, QueryRecordsReturnsMatchingPrefixes) {
  auto net = MakeNet(5);
  Directory dir(net, GroupParams{2, 4, 4}, 0);
  dir.AddMember(UserId{0, 0}, 1, 1);
  dir.AddMember(UserId{0, 1}, 2, 2);
  dir.AddMember(UserId{1, 0}, 3, 3);

  auto recs = dir.QueryRecords(UserId{0, 0}, DigitString{0});
  // Its own record plus [0,1]; never [1,0].
  ASSERT_EQ(recs.size(), 2u);
  for (const auto& r : recs) {
    EXPECT_TRUE((DigitString{0}).IsPrefixOf(r.id));
  }
}

TEST(Directory, RejectsDuplicatesAndUnknowns) {
  auto net = MakeNet(4);
  Directory dir(net, GroupParams{2, 4, 2}, 0);
  dir.AddMember(UserId{0, 0}, 1, 1);
  EXPECT_THROW(dir.AddMember(UserId{0, 0}, 2, 2), std::logic_error);
  EXPECT_THROW(dir.AddMember(UserId{0, 1}, 1, 2), std::logic_error);  // host reuse
  EXPECT_THROW(dir.RemoveMember(UserId{3, 3}), std::logic_error);
  EXPECT_THROW(dir.AddMember(UserId{1, 1}, 0, 1), std::logic_error);  // server host
}

TEST(Directory, FailureThenRepairRestoresConsistency) {
  auto net = MakeNet(10);
  Directory dir(net, GroupParams{2, 4, 2}, 0);
  Rng rng(3);
  std::vector<UserId> ids;
  for (HostId h = 1; h < 10; ++h) {
    UserId id;
    do {
      id = RandomId(rng, 2, 4);
    } while (dir.Contains(id));
    dir.AddMember(id, h, h);
    ids.push_back(id);
  }
  dir.CheckKConsistency();

  UserId failed = ids[4];
  dir.MarkFailed(failed);
  EXPECT_FALSE(dir.IsAlive(failed));
  EXPECT_TRUE(dir.Contains(failed));
  EXPECT_EQ(dir.alive_count(), 8);

  dir.RepairFailure(failed);
  EXPECT_FALSE(dir.Contains(failed));
  dir.CheckKConsistency();
}

TEST(Directory, HostIndexRoundTrip) {
  auto net = MakeNet(4);
  Directory dir(net, GroupParams{2, 4, 2}, 0);
  dir.AddMember(UserId{1, 2}, 3, 5);
  ASSERT_NE(dir.IdOfHost(3), nullptr);
  EXPECT_EQ(*dir.IdOfHost(3), (UserId{1, 2}));
  EXPECT_EQ(dir.IdOfHost(2), nullptr);
  EXPECT_EQ(dir.HostOf(UserId{1, 2}), 3);
}

// Definition 3 (K-consistency) holds through arbitrary join/leave churn.
struct ChurnShape {
  int depth;
  int base;
  int capacity;
  int hosts;
};

class DirectoryChurnTest : public ::testing::TestWithParam<ChurnShape> {};

TEST_P(DirectoryChurnTest, KConsistencyUnderRandomChurn) {
  const ChurnShape shape = GetParam();
  auto net = MakeNet(shape.hosts, 17);
  Directory dir(net, GroupParams{shape.depth, shape.base, shape.capacity}, 0);
  Rng rng(shape.hosts * 31ull + static_cast<std::uint64_t>(shape.base));

  std::vector<UserId> present;
  std::vector<HostId> free_hosts;
  for (HostId h = 1; h < shape.hosts; ++h) free_hosts.push_back(h);

  for (int step = 0; step < 300; ++step) {
    bool join = present.empty() ||
                (!free_hosts.empty() && rng.Bernoulli(0.6));
    if (join) {
      UserId id = RandomId(rng, shape.depth, shape.base);
      if (dir.Contains(id)) continue;
      HostId h = free_hosts.back();
      free_hosts.pop_back();
      dir.AddMember(id, h, step);
      present.push_back(id);
    } else {
      std::size_t i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(present.size()) - 1));
      free_hosts.push_back(dir.HostOf(present[i]));
      dir.RemoveMember(present[i]);
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(i));
    }
    if (step % 10 == 0) dir.CheckKConsistency();
  }
  dir.CheckKConsistency();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DirectoryChurnTest,
    ::testing::Values(ChurnShape{2, 4, 1, 20}, ChurnShape{2, 4, 2, 30},
                      ChurnShape{3, 4, 2, 40}, ChurnShape{3, 8, 4, 50},
                      ChurnShape{5, 256, 4, 40}));

}  // namespace
}  // namespace tmesh
