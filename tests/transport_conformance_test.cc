// Conformance suite for the Transport contract (transport/transport.h),
// run against BOTH implementations of the seam:
//
//   * SimTransport over a SimFabric (fixed-delay datagram plane) on the
//     discrete-event simulator, and
//   * UdpTransport endpoints exchanging real datagrams over 127.0.0.1.
//
// The typed tests pin the portable contract — deadline-then-FIFO timer
// ordering, clock monotonicity at fire time, self-send loopback, payload
// integrity for wire.cc frames, and CancelTimer semantics — so protocol
// code written against Transport behaves identically on the simulator and
// on the wall clock.
//
// The SimByteIdentity suite pins the stronger, simulator-only guarantee
// the whole repo leans on: SimTransport delegates scheduling 1:1 to
// Simulator::ScheduleAt, consuming the same (time, sequence) assignments,
// so code refactored from `Simulator&` onto `Transport&` reproduces its
// pre-refactor event history byte-for-byte. It reuses the scripted golden
// and the self-driving randomized workload of simulator_determinism_test.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/wire.h"
#include "sim/simulator.h"
#include "transport/sim_transport.h"
#include "transport/udp_transport.h"

namespace tmesh {
namespace {

// --- harnesses ------------------------------------------------------------
//
// Each harness owns two endpoints (hosts 1 and 2) that can reach each other
// and themselves, plus WaitUntil(pred): drive the runtime until pred() holds
// or the workload is exhausted. Predicates and callbacks must guard shared
// state with State::mu — under UDP they run on the loop threads.

struct State {
  std::mutex mu;
  std::vector<int> order;                  // timer firing tags
  std::vector<SimTime> fire_now;           // Now() observed inside callbacks
  std::vector<HostId> from;                // datagram sources
  std::vector<std::vector<std::uint8_t>> payloads;

  std::function<void()> Hit(int tag) {
    return [this, tag] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(tag);
    };
  }
  std::size_t OrderSize() {
    std::lock_guard<std::mutex> lock(mu);
    return order.size();
  }
};

class SimHarness {
 public:
  SimHarness() : fabric_(sim_, FromMillis(5)), a_(fabric_, 1), b_(fabric_, 2) {}

  Transport& a() { return a_; }
  Transport& b() { return b_; }

  bool WaitUntil(const std::function<bool()>& pred) {
    if (pred()) return true;
    while (sim_.Step()) {
      if (pred()) return true;
    }
    return pred();
  }

 private:
  Simulator sim_;
  SimFabric fabric_;
  SimTransport a_;
  SimTransport b_;
};

class UdpHarness {
 public:
  UdpHarness()
      : a_(UdpTransport::Options{.host = 1}),
        b_(UdpTransport::Options{.host = 2}) {
    a_.AddPeer(1, a_.port());
    a_.AddPeer(2, b_.port());
    b_.AddPeer(1, a_.port());
    b_.AddPeer(2, b_.port());
    a_.Start();
    b_.Start();
  }
  ~UdpHarness() {
    a_.Stop();
    b_.Stop();
  }

  Transport& a() { return a_; }
  Transport& b() { return b_; }

  // Polls for up to 30 s of wall time (CI machines stall; the workloads
  // themselves complete in tens of milliseconds).
  bool WaitUntil(const std::function<bool()>& pred) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return pred();
  }

 private:
  UdpTransport a_;
  UdpTransport b_;
};

template <class Harness>
class TransportConformanceTest : public ::testing::Test {
 protected:
  Harness h_;
  State st_;
};

using Harnesses = ::testing::Types<SimHarness, UdpHarness>;
TYPED_TEST_SUITE(TransportConformanceTest, Harnesses);

// --- timer ordering -------------------------------------------------------

TYPED_TEST(TransportConformanceTest, SameDeadlineTimersFireInScheduleOrder) {
  Transport& t = this->h_.a();
  State& st = this->st_;
  // One base deadline far enough out that every schedule call lands before
  // it even on a wall clock; two exact ties at base and two at base + 5 ms.
  const SimTime base = t.Now() + FromMillis(50);
  t.ScheduleAt(base + FromMillis(5), st.Hit(0));
  t.ScheduleAt(base, st.Hit(1));
  t.ScheduleAt(base + FromMillis(5), st.Hit(2));  // tie with 0
  t.ScheduleAt(base, st.Hit(3));                  // tie with 1
  t.ScheduleIn(0, st.Hit(4));                     // fires first
  ASSERT_TRUE(this->h_.WaitUntil([&] { return st.OrderSize() == 5; }));
  std::lock_guard<std::mutex> lock(st.mu);
  EXPECT_EQ(st.order, (std::vector<int>{4, 1, 3, 0, 2}));
}

TYPED_TEST(TransportConformanceTest, CallbacksObserveNowAtOrAfterDeadline) {
  Transport& t = this->h_.a();
  State& st = this->st_;
  const SimTime t0 = t.Now();
  const SimTime deadlines[] = {t0 + FromMillis(1), t0 + FromMillis(10),
                               t0 + FromMillis(20)};
  for (SimTime d : deadlines) {
    t.ScheduleAt(d, [&st, &t] {
      std::lock_guard<std::mutex> lock(st.mu);
      st.fire_now.push_back(t.Now());
      st.order.push_back(0);
    });
  }
  ASSERT_TRUE(this->h_.WaitUntil([&] { return st.OrderSize() == 3; }));
  std::lock_guard<std::mutex> lock(st.mu);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GE(st.fire_now[static_cast<std::size_t>(i)], deadlines[i])
        << "timer " << i << " fired before its deadline";
  }
  // The clock itself never runs backwards across callbacks.
  EXPECT_TRUE(std::is_sorted(st.fire_now.begin(), st.fire_now.end()));
}

// --- datagram plane -------------------------------------------------------

TYPED_TEST(TransportConformanceTest, SelfSendLoopsBackThroughReceivePath) {
  Transport& t = this->h_.a();
  State& st = this->st_;
  t.OnReceive([&st](HostId from, const std::uint8_t* data, std::size_t size) {
    std::lock_guard<std::mutex> lock(st.mu);
    st.from.push_back(from);
    st.payloads.emplace_back(data, data + size);
  });
  const std::vector<std::uint8_t> payload = {0x01, 0x7f, 0x80, 0xff, 0x00};
  t.Send(t.local_host(), payload);
  ASSERT_TRUE(this->h_.WaitUntil([&] {
    std::lock_guard<std::mutex> lock(st.mu);
    return !st.payloads.empty();
  }));
  std::lock_guard<std::mutex> lock(st.mu);
  EXPECT_EQ(st.from[0], t.local_host());
  EXPECT_EQ(st.payloads[0], payload);
}

TYPED_TEST(TransportConformanceTest, PeerSendDeliversWireFrameIntact) {
  Transport& a = this->h_.a();
  Transport& b = this->h_.b();
  State& st = this->st_;
  b.OnReceive([&st](HostId from, const std::uint8_t* data, std::size_t size) {
    std::lock_guard<std::mutex> lock(st.mu);
    st.from.push_back(from);
    st.payloads.emplace_back(data, data + size);
  });

  // A real protocol payload: a wire.cc rekey message, encoded by the
  // sender, decoded by the receiver, field-for-field identical.
  RekeyMessage msg;
  Encryption e1;
  e1.enc_key_id = KeyId{2, 0};
  e1.new_key_id = KeyId{2};
  e1.new_key_version = 7;
  e1.enc_key_version = 3;
  Encryption e2;
  e2.enc_key_id = KeyId{255, 0, 255, 1, 9};
  e2.new_key_id = KeyId{255, 0, 255, 1};
  e2.new_key_version = 42;
  e2.enc_key_version = 41;
  msg.encryptions = {e1, e2};
  a.Send(b.local_host(), EncodeRekeyMessage(msg));

  ASSERT_TRUE(this->h_.WaitUntil([&] {
    std::lock_guard<std::mutex> lock(st.mu);
    return !st.payloads.empty();
  }));
  std::lock_guard<std::mutex> lock(st.mu);
  EXPECT_EQ(st.from[0], a.local_host());
  auto decoded = DecodeRekeyMessage(st.payloads[0]);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->encryptions.size(), 2u);
  EXPECT_EQ(decoded->encryptions[0], e1);
  EXPECT_EQ(decoded->encryptions[1], e2);
}

// --- cancellable timers ---------------------------------------------------

TYPED_TEST(TransportConformanceTest, CancelTimerSemantics) {
  Transport& t = this->h_.a();
  State& st = this->st_;
  std::atomic<bool> victim_ran{false};
  const TimerId victim =
      t.ScheduleTimer(FromMillis(40), [&] { victim_ran = true; });
  const TimerId keeper = t.ScheduleTimer(FromMillis(5), st.Hit(1));
  EXPECT_NE(victim, kNoTimer);
  EXPECT_NE(keeper, victim);

  EXPECT_TRUE(t.CancelTimer(victim));    // live: cancel succeeds...
  EXPECT_FALSE(t.CancelTimer(victim));   // ...exactly once
  EXPECT_FALSE(t.CancelTimer(kNoTimer));  // never a real timer

  ASSERT_TRUE(this->h_.WaitUntil([&] { return st.OrderSize() == 1; }));
  EXPECT_FALSE(t.CancelTimer(keeper));  // already fired

  // A marker past the victim's deadline proves its closure never ran.
  t.ScheduleIn(FromMillis(80), st.Hit(2));
  ASSERT_TRUE(this->h_.WaitUntil([&] { return st.OrderSize() == 2; }));
  EXPECT_FALSE(victim_ran.load());
}

// Cancelling must *release* the closure, not just suppress it: protocol
// closures own resources (buffers, handles), and a transport that pins a
// cancelled closure to its original deadline — or to the transport's
// destructor — turns every retry-timer cancel into a slow leak. By the time
// a marker past the victim's deadline has fired, the resource must be gone.
// (The asan preset runs this suite, so a closure destroyed twice or never
// would also surface here.)
TYPED_TEST(TransportConformanceTest, CancelledClosureIsReleasedNotRetained) {
  Transport& t = this->h_.a();
  State& st = this->st_;
  std::atomic<bool> victim_ran{false};
  auto resource = std::make_shared<int>(42);
  std::weak_ptr<int> watch = resource;
  const TimerId victim = t.ScheduleTimer(
      FromMillis(30), [r = std::move(resource), &victim_ran] {
        victim_ran = *r == 42;
      });
  EXPECT_TRUE(t.CancelTimer(victim));

  t.ScheduleIn(FromMillis(60), st.Hit(1));
  ASSERT_TRUE(this->h_.WaitUntil([&] { return st.OrderSize() == 1; }));
  EXPECT_FALSE(victim_ran.load());
  EXPECT_TRUE(watch.expired()) << "cancelled closure still holds its capture";
}

// --- UDP timer lifecycle (wall-clock transport only) ----------------------
//
// These pin behavior the simulator transport cannot exhibit: the UDP loop
// sleeps on its heap front's deadline, and Stop()/Start() restart the loop
// thread. SimTransport has neither a wall-clock sleep nor a lifecycle, so
// the suite is not typed.

// Cancelling the timer at the heap front must release its closure right
// away — before the fix, the heap entry (and the epoll sleep computed from
// it) survived until the dead deadline, here a minute out.
TEST(UdpTimerLifecycle, CancelAtHeapFrontReleasesClosureImmediately) {
  UdpTransport t(UdpTransport::Options{.host = 1});
  t.Start();
  auto resource = std::make_shared<int>(7);
  std::weak_ptr<int> watch = resource;
  const TimerId far = t.ScheduleTimer(FromMillis(60'000),
                                      [r = std::move(resource)] { (void)*r; });
  EXPECT_TRUE(t.CancelTimer(far));
  // No waiting: the front purge happens inside CancelTimer itself.
  EXPECT_TRUE(watch.expired());

  // The loop is no longer armed against the dead deadline: a fresh short
  // timer fires promptly.
  std::atomic<bool> fresh_ran{false};
  t.ScheduleTimer(FromMillis(5), [&fresh_ran] { fresh_ran = true; });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!fresh_ran.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fresh_ran.load());
  t.Stop();
}

// The header's Stop() contract ("closures still queued at Stop() are
// destroyed without running") plus clean restart: a second Start() must not
// fire the previous life's timers, and their ids stay retired.
TEST(UdpTimerLifecycle, StopDestroysQueuedTimersAndRestartIsClean) {
  UdpTransport t(UdpTransport::Options{.host = 1});
  t.Start();
  std::atomic<bool> stale_ran{false};
  auto resource = std::make_shared<int>(1);
  std::weak_ptr<int> watch = resource;
  const TimerId stale = t.ScheduleTimer(
      FromMillis(200),
      [r = std::move(resource), &stale_ran] { stale_ran = *r == 1; });
  t.Stop();
  EXPECT_FALSE(stale_ran.load());
  EXPECT_TRUE(watch.expired()) << "Stop() retained a queued closure";

  t.Start();
  EXPECT_FALSE(t.CancelTimer(stale));  // retired with its closure
  std::atomic<bool> fresh_ran{false};
  t.ScheduleTimer(FromMillis(5), [&fresh_ran] { fresh_ran = true; });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!fresh_ran.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fresh_ran.load());
  // Sit past the stale deadline (200 ms from the first Start) to prove the
  // restarted loop has nothing left to fire from the first life.
  std::this_thread::sleep_for(std::chrono::milliseconds(220));
  EXPECT_FALSE(stale_ran.load());
  t.Stop();
}

// Loopback sends the kernel accepts are counted as sent; a rejected
// sendto() (short send, ENOBUFS) would land in datagrams_dropped(), which
// on loopback at this volume must stay 0 — the same invariant the
// multi-process soak asserts at scale.
TEST(UdpTimerLifecycle, LoopbackSendsCountAndNeverDrop) {
  UdpTransport a(UdpTransport::Options{.host = 1});
  UdpTransport b(UdpTransport::Options{.host = 2});
  a.AddPeer(2, b.port());
  a.Start();
  b.Start();
  std::atomic<int> received{0};
  b.OnReceive([&received](HostId, const std::uint8_t*, std::size_t) {
    ++received;
  });
  const std::vector<std::uint8_t> payload = {1, 2, 3};
  constexpr int kSends = 32;
  for (int i = 0; i < kSends; ++i) a.Send(2, payload);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (received.load() < kSends &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(received.load(), kSends);
  EXPECT_EQ(a.datagrams_sent(), static_cast<std::uint64_t>(kSends));
  EXPECT_EQ(a.datagrams_dropped(), 0u);
  b.Stop();
  a.Stop();
}

// --- byte identity through the seam (simulator only) ----------------------
//
// The workloads mirror simulator_determinism_test: if SimTransport consumed
// sequence numbers differently from raw Simulator::Schedule* (an extra
// wrapper event, a reordered assignment), these traces would diverge — and
// so would every golden in the repo.

using Trace = std::vector<std::pair<SimTime, int>>;

// The scripted workload of simulator_determinism_test, scheduled through a
// Transport instead of the simulator. Must match that test's hand-computed
// golden exactly.
Trace ScriptedTraceViaTransport() {
  Simulator sim;
  SimTransport t(sim);
  Trace trace;
  auto hit = [&](int tag) { trace.emplace_back(t.Now(), tag); };
  t.ScheduleIn(300, [&] { hit(0); });
  t.ScheduleIn(100, [&] {
    hit(1);
    t.ScheduleIn(0, [&] { hit(5); });
    t.ScheduleIn(50, [&] { hit(6); });
  });
  t.ScheduleIn(200, [&] {
    hit(2);
    t.ScheduleIn(SimTime{1} << 40, [&] { hit(7); });
  });
  t.ScheduleIn(100, [&] { hit(3); });  // tie with tag 1: schedule order
  t.ScheduleIn(0, [&] { hit(4); });
  sim.Run();
  return trace;
}

TEST(SimByteIdentity, TransportSeamReproducesScriptedGolden) {
  const Trace golden = {
      {0, 4},   {100, 1}, {100, 3}, {100, 5},
      {150, 6}, {200, 2}, {300, 0}, {(SimTime{1} << 40) + 200, 7},
  };
  EXPECT_EQ(ScriptedTraceViaTransport(), golden);
}

// Self-driving randomized workload (same regimes as the determinism
// test's RandomDriver): randomness is consumed *inside* events, so the
// direct and through-the-seam traces only agree if every (time, seq)
// assignment matches — any divergence derails the whole tail.
struct SeamDriver {
  Simulator sim;
  SimTransport transport{sim};
  const bool via_seam;
  Rng rng;
  Trace trace;
  int next_tag = 0;

  SeamDriver(std::uint64_t seed, bool seam) : via_seam(seam), rng(seed) {}

  template <class Fn>
  void Schedule(SimTime delay, Fn&& fn) {
    if (via_seam) {
      transport.ScheduleIn(delay, std::forward<Fn>(fn));
    } else {
      sim.ScheduleIn(delay, std::forward<Fn>(fn));
    }
  }

  void Spawn(SimTime delay, int depth) {
    const int tag = next_tag++;
    Schedule(delay, [this, tag, depth] {
      trace.emplace_back(sim.Now(), tag);
      if (depth <= 0) return;
      const int kids = static_cast<int>(rng.UniformInt(0, 2));
      for (int k = 0; k < kids; ++k) {
        const std::int64_t regime = rng.UniformInt(0, 9);
        SimTime d;
        if (regime < 3) {
          d = 0;
        } else if (regime < 7) {
          d = rng.UniformInt(1, 64);
        } else if (regime < 9) {
          d = rng.UniformInt(1000, 50000);
        } else {
          d = rng.UniformInt(1, 4) << 30;
        }
        Spawn(d, depth - 1);
      }
    });
  }
};

Trace RandomTraceVia(std::uint64_t seed, bool via_seam) {
  SeamDriver d(seed, via_seam);
  for (int i = 0; i < 32; ++i) d.Spawn(500, 3);
  for (int i = 0; i < 96; ++i) d.Spawn(d.rng.UniformInt(0, 20000), 3);
  for (int i = 0; i < 8; ++i) d.Spawn(d.rng.UniformInt(1, 8) << 28, 2);
  d.sim.Run();
  return d.trace;
}

TEST(SimByteIdentity, RandomWorkloadsAgreeDirectAndThroughSeam) {
  for (std::uint64_t seed : {1u, 7u, 42u}) {
    const Trace direct = RandomTraceVia(seed, /*via_seam=*/false);
    const Trace seam = RandomTraceVia(seed, /*via_seam=*/true);
    ASSERT_FALSE(direct.empty());
    EXPECT_EQ(direct, seam) << "seed " << seed;
  }
}

// Transport scheduling and direct simulator scheduling share one sequence
// space: interleaved same-deadline events fire in global schedule order,
// not grouped by which API queued them.
TEST(SimByteIdentity, MixedSchedulingSharesOneSequenceSpace) {
  Simulator sim;
  SimTransport t(sim);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    auto hit = [&order, i] { order.push_back(i); };
    if (i % 2 == 0) {
      sim.ScheduleIn(100, hit);
    } else {
      t.ScheduleIn(100, hit);
    }
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

}  // namespace
}  // namespace tmesh
