// Tests for the GNP coordinate embedding (§5) and its use inside the
// ID-assignment protocols.
#include "topology/gnp.h"

#include <gtest/gtest.h>

#include <map>

#include "core/id_assignment.h"
#include "topology/planetlab.h"

namespace tmesh {
namespace {

PlanetLabNetwork MakeNet(int hosts, std::uint64_t seed = 5) {
  PlanetLabParams p;
  p.hosts = hosts;
  p.seed = seed;
  return PlanetLabNetwork(p);
}

TEST(Gnp, EmbeddingHasBoundedRelativeError) {
  auto net = MakeNet(120, 9);
  GnpModel::Params params;
  params.seed = 3;
  GnpModel model(net, params);
  // GNP on clustered Internet-like RTTs typically lands well under 100%
  // mean relative error; require a sane bound.
  double err = model.MeanRelativeError(net, 2000, 7);
  EXPECT_LT(err, 0.6) << "embedding too inaccurate";
  EXPECT_GT(err, 0.0) << "estimates suspiciously perfect";
}

TEST(Gnp, PreservesNearVsFarOrdering) {
  auto net = MakeNet(100, 11);
  GnpModel::Params params;
  params.seed = 5;
  GnpModel model(net, params);
  // Same-site pairs must be estimated far closer than cross-continent
  // pairs, on average — that's all the threshold tests of §3.1.3 need.
  double near_sum = 0, far_sum = 0;
  int near_n = 0, far_n = 0;
  for (HostId a = 0; a < 100; ++a) {
    for (HostId b = a + 1; b < 100; ++b) {
      if (net.site_of(a) == net.site_of(b)) {
        near_sum += model.EstimatedRtt(a, b);
        ++near_n;
      } else if (net.continent_of(a) != net.continent_of(b)) {
        far_sum += model.EstimatedRtt(a, b);
        ++far_n;
      }
    }
  }
  ASSERT_GT(near_n, 0);
  ASSERT_GT(far_n, 0);
  EXPECT_LT(near_sum / near_n, 0.3 * (far_sum / far_n));
}

TEST(Gnp, SelfDistanceZeroAndSymmetric) {
  auto net = MakeNet(40);
  GnpModel model(net, GnpModel::Params{});
  for (HostId a = 0; a < 40; a += 7) {
    EXPECT_DOUBLE_EQ(model.EstimatedRtt(a, a), 0.0);
    for (HostId b = 0; b < 40; b += 5) {
      EXPECT_DOUBLE_EQ(model.EstimatedRtt(a, b), model.EstimatedRtt(b, a));
    }
  }
}

TEST(Gnp, DeterministicPerSeed) {
  auto net = MakeNet(50);
  GnpModel::Params params;
  params.seed = 21;
  GnpModel m1(net, params), m2(net, params);
  for (HostId a = 0; a < 50; a += 3) {
    for (HostId b = 0; b < 50; b += 11) {
      EXPECT_DOUBLE_EQ(m1.EstimatedRtt(a, b), m2.EstimatedRtt(a, b));
    }
  }
}

TEST(Gnp, RejectsDegenerateParams) {
  auto net = MakeNet(10);
  GnpModel::Params p;
  p.landmarks = 3;
  p.dimensions = 5;  // needs dims+1 landmarks
  EXPECT_THROW(GnpModel(net, p), std::logic_error);
  p.landmarks = 100;  // more landmarks than hosts
  EXPECT_THROW(GnpModel(net, p), std::logic_error);
}

TEST(Gnp, CentralizedAssignmentOverCoordinatesStillGroups) {
  // §5's punchline: the key server assigns IDs from coordinates alone —
  // zero probes — and proximity grouping survives the estimation error.
  auto net = MakeNet(100, 31);
  GnpModel::Params gparams;
  gparams.seed = 13;
  GnpModel model(net, gparams);

  Directory dir(net, GroupParams{5, 256, 4}, 0);
  IdAssignParams ap;
  ap.thresholds_ms = {150.0, 30.0, 9.0, 3.0};
  ap.gnp = &model;
  IdAssigner assigner(dir, ap, 17);

  std::map<HostId, UserId> ids;
  for (HostId h = 1; h < 100; ++h) {
    IdAssignStats stats;
    auto id = assigner.AssignIdCentralized(h, &stats);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(stats.queries, 0);
    EXPECT_EQ(stats.rtt_probes, 0);  // estimates, not probes
    dir.AddMember(*id, h, h);
    ids[h] = *id;
  }

  double same_site_cpl = 0, cross_cpl = 0;
  int same_n = 0, cross_n = 0;
  for (HostId a = 1; a < 100; ++a) {
    for (HostId b = a + 1; b < 100; ++b) {
      int cpl = ids[a].CommonPrefixLen(ids[b]);
      if (net.site_of(a) == net.site_of(b)) {
        same_site_cpl += cpl;
        ++same_n;
      } else if (net.continent_of(a) != net.continent_of(b)) {
        cross_cpl += cpl;
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_GT(same_site_cpl / same_n, 1.5);
  EXPECT_LT(cross_cpl / cross_n, 1.0);
}

class GnpDimsTest : public ::testing::TestWithParam<int> {};

TEST_P(GnpDimsTest, HigherDimensionsDoNotBlowUpError) {
  auto net = MakeNet(80, 41);
  GnpModel::Params p;
  p.dimensions = GetParam();
  p.landmarks = std::max(12, GetParam() + 2);
  p.seed = 2;
  GnpModel model(net, p);
  EXPECT_LT(model.MeanRelativeError(net, 1000, 3), 0.8);
}

INSTANTIATE_TEST_SUITE_P(Dims, GnpDimsTest, ::testing::Values(2, 3, 5, 7));

}  // namespace
}  // namespace tmesh
