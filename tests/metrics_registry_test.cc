// Tests for the metrics registry (handle resolution, merge semantics, JSON
// round-trip, cross-replica merge determinism) and the message tracer (ring
// retention, chrome-tracing JSON shape).
#include "metrics/registry.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "metrics/trace.h"
#include "sim/replica_runner.h"

namespace tmesh {
namespace {

TEST(Registry, CountersGaugesHistogramsBasics) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  c->Increment();
  c->Add(4);
  EXPECT_EQ(c->value(), 5);

  Gauge* g = reg.GetGauge("g");
  EXPECT_FALSE(g->set());
  g->Set(2.5);
  EXPECT_TRUE(g->set());
  EXPECT_DOUBLE_EQ(g->value(), 2.5);

  Histogram* h = reg.GetHistogram("h");
  h->Observe(1.0);
  h->Observe(3.0);
  h->Observe(100.0);
  EXPECT_EQ(h->count(), 3);
  EXPECT_DOUBLE_EQ(h->sum(), 104.0);
  EXPECT_DOUBLE_EQ(h->min(), 1.0);
  EXPECT_DOUBLE_EQ(h->max(), 100.0);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(Registry, HandlesAreStableAcrossResolvesAndMoves) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("stable");
  c->Add(7);
  EXPECT_EQ(reg.GetCounter("stable"), c);
  // Force rebalancing around the entry.
  for (int i = 0; i < 100; ++i) {
    reg.GetCounter("pad" + std::to_string(i));
  }
  EXPECT_EQ(reg.GetCounter("stable"), c);
  MetricsRegistry moved = std::move(reg);
  EXPECT_EQ(moved.GetCounter("stable"), c);
  EXPECT_EQ(c->value(), 7);
}

TEST(Registry, KindMismatchIsACheckFailure) {
  MetricsRegistry reg;
  reg.GetCounter("x");
  EXPECT_THROW(reg.GetGauge("x"), std::logic_error);
  EXPECT_THROW(reg.GetHistogram("x"), std::logic_error);
  EXPECT_EQ(reg.FindGauge("x"), nullptr);
  EXPECT_NE(reg.FindCounter("x"), nullptr);
}

TEST(Registry, BucketGeometryIsPowersOfTwo) {
  EXPECT_EQ(Histogram::BucketOf(0.0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1.0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1.5), 1u);
  EXPECT_EQ(Histogram::BucketOf(2.0), 1u);
  EXPECT_EQ(Histogram::BucketOf(1024.0), 10u);
  // Values past the last bound land in the final bucket.
  EXPECT_EQ(Histogram::BucketOf(1e30), Histogram::kBuckets - 1);
}

TEST(Registry, MergeAddsCountersAndCombinesHistograms) {
  MetricsRegistry a, b;
  a.GetCounter("c")->Add(3);
  b.GetCounter("c")->Add(4);
  b.GetCounter("only_b")->Add(1);
  a.GetHistogram("h")->Observe(8.0);
  b.GetHistogram("h")->Observe(2.0);
  b.GetHistogram("h")->Observe(32.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.FindCounter("c")->value(), 7);
  EXPECT_EQ(a.FindCounter("only_b")->value(), 1);
  const Histogram* h = a.FindHistogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 3);
  EXPECT_DOUBLE_EQ(h->sum(), 42.0);
  EXPECT_DOUBLE_EQ(h->min(), 2.0);
  EXPECT_DOUBLE_EQ(h->max(), 32.0);
}

TEST(Registry, MergeGaugeTakesDonorOnlyWhenSet) {
  MetricsRegistry a, b;
  a.GetGauge("g")->Set(1.0);
  b.GetGauge("g");  // resolved but never Set(): donor must not clobber
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.FindGauge("g")->value(), 1.0);
  b.GetGauge("g")->Set(9.0);
  a.MergeFrom(b);
  EXPECT_DOUBLE_EQ(a.FindGauge("g")->value(), 9.0);
}

TEST(Registry, MergeEmptyHistogramLeavesMinMaxAlone) {
  MetricsRegistry a, b;
  a.GetHistogram("h")->Observe(5.0);
  b.GetHistogram("h");  // zero observations
  a.MergeFrom(b);
  const Histogram* h = a.FindHistogram("h");
  EXPECT_EQ(h->count(), 1);
  EXPECT_DOUBLE_EQ(h->min(), 5.0);
  EXPECT_DOUBLE_EQ(h->max(), 5.0);
}

TEST(Registry, MergeKindMismatchThrows) {
  MetricsRegistry a, b;
  a.GetCounter("x");
  b.GetGauge("x");
  EXPECT_THROW(a.MergeFrom(b), std::logic_error);
}

TEST(Registry, JsonRoundTripIsByteStable) {
  MetricsRegistry reg;
  reg.GetCounter("sim.events_run")->Add(12345);
  reg.GetGauge("headline.fraction")->Set(0.78125);
  reg.GetGauge("negative")->Set(-3.5);
  Histogram* h = reg.GetHistogram("tmesh.uplink_bytes_per_host");
  h->Observe(48.0);
  h->Observe(960.0);
  h->Observe(0.125);
  const std::string json = reg.ToJson();

  MetricsRegistry back;
  ASSERT_TRUE(back.ParseJson(json));
  EXPECT_EQ(back.ToJson(), json);
  EXPECT_EQ(back.FindCounter("sim.events_run")->value(), 12345);
  EXPECT_DOUBLE_EQ(back.FindGauge("headline.fraction")->value(), 0.78125);
  const Histogram* hb = back.FindHistogram("tmesh.uplink_bytes_per_host");
  ASSERT_NE(hb, nullptr);
  EXPECT_EQ(hb->count(), 3);
  EXPECT_DOUBLE_EQ(hb->min(), 0.125);
  EXPECT_DOUBLE_EQ(hb->max(), 960.0);
}

TEST(Registry, ParseJsonRejectsGarbageAndLeavesRegistryUnchanged) {
  MetricsRegistry reg;
  reg.GetCounter("keep")->Add(1);
  const std::string before = reg.ToJson();
  EXPECT_FALSE(reg.ParseJson("not json"));
  EXPECT_FALSE(reg.ParseJson("{\"counters\":{\"a\":}}"));
  EXPECT_FALSE(reg.ParseJson("{\"counters\":{\"a\":1}"));  // truncated
  EXPECT_EQ(reg.ToJson(), before);
}

TEST(Registry, EmptyRegistryJson) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.ToJson(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
  MetricsRegistry back;
  EXPECT_TRUE(back.ParseJson(reg.ToJson()));
  EXPECT_TRUE(back.empty());
}

// The ReplicaRunner contract: replica-local registries merged in strictly
// increasing run index produce a byte-identical aggregate for every thread
// count. This is the exact shape the figure pipeline uses (the tsan preset
// runs this test to race-check the merge under real worker threads).
TEST(Registry, CrossReplicaMergeIsThreadCountInvariant) {
  constexpr int kRuns = 12;
  auto run_with = [&](int threads) {
    MetricsRegistry agg;
    ReplicaRunner runner(threads, {});
    runner.Run(
        kRuns,
        [](ReplicaRunner::Replica& rep) {
          MetricsRegistry local;
          local.GetCounter("runs")->Increment();
          local.GetCounter("weighted")->Add(rep.index + 1);
          local.GetGauge("last_index")
              ->Set(static_cast<double>(rep.index));
          Histogram* h = local.GetHistogram("index_dist");
          for (int i = 0; i <= rep.index; ++i) {
            h->Observe(static_cast<double>(i * 3 + 1));
          }
          return local;
        },
        [&](int, MetricsRegistry&& local) { agg.MergeFrom(local); });
    return agg.ToJson();
  };
  const std::string base = run_with(1);
  EXPECT_EQ(run_with(2), base);
  EXPECT_EQ(run_with(7), base);
  // Gauge convention: the last run in index order wins.
  MetricsRegistry probe;
  ASSERT_TRUE(probe.ParseJson(base));
  EXPECT_DOUBLE_EQ(probe.FindGauge("last_index")->value(), kRuns - 1);
  EXPECT_EQ(probe.FindCounter("runs")->value(), kRuns);
  EXPECT_EQ(probe.FindCounter("weighted")->value(), kRuns * (kRuns + 1) / 2);
}

// --- tracer --------------------------------------------------------------

TEST(Tracer, RetainsMostRecentSpansWhenRingWraps) {
  MessageTracer tr(4);
  for (int i = 0; i < 6; ++i) {
    tr.Record("span", i, i * 10, static_cast<double>(i), 1.0);
  }
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.capacity(), 4u);
  EXPECT_EQ(tr.dropped(), 2u);
  // Oldest-first iteration: spans 2..5 survive.
  for (std::size_t i = 0; i < tr.size(); ++i) {
    EXPECT_EQ(tr.span(i).message, static_cast<std::int64_t>(i + 2));
  }
  tr.Clear();
  EXPECT_EQ(tr.size(), 0u);
  EXPECT_EQ(tr.dropped(), 0u);
}

TEST(Tracer, ChromeTraceJsonShape) {
  MessageTracer tr(8);
  tr.Record("birth", 7, 3, 1.5, 0.0);
  tr.Record("forward", 7, 3, 1.5, 2.25);
  std::ostringstream os;
  tr.WriteChromeTrace(os);
  const std::string out = os.str();
  // Times are exported in microseconds (sim ms x 1000).
  EXPECT_EQ(out,
            "{\"traceEvents\":["
            "{\"name\":\"birth\",\"ph\":\"X\",\"ts\":1500,\"dur\":0,"
            "\"pid\":7,\"tid\":3},"
            "{\"name\":\"forward\",\"ph\":\"X\",\"ts\":1500,\"dur\":2250,"
            "\"pid\":7,\"tid\":3}"
            "]}");
}

TEST(Tracer, EmptyTraceIsValidJson) {
  MessageTracer tr(2);
  std::ostringstream os;
  tr.WriteChromeTrace(os);
  EXPECT_EQ(os.str(), "{\"traceEvents\":[]}");
}

}  // namespace
}  // namespace tmesh
