// Tests for SilkGroup — the message-driven join/leave protocol (§3.2).
//
// The central claims mirror what the Silk papers prove and what Theorem 1
// needs: joins alone yield K-consistent tables; interleaved leaves keep
// 1-consistency (with K > 1); and T-mesh multicast over the
// protocol-maintained tables still delivers exactly once.
#include "core/silk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/directory.h"
#include "core/tmesh.h"
#include "topology/planetlab.h"
#include "transport/sim_transport.h"

namespace tmesh {
namespace {

PlanetLabNetwork MakeNet(int hosts, std::uint64_t seed = 7) {
  PlanetLabParams p;
  p.hosts = hosts;
  p.seed = seed;
  return PlanetLabNetwork(p);
}

UserId RandomId(Rng& rng, int d, int b) {
  UserId id;
  for (int i = 0; i < d; ++i) {
    id.Append(static_cast<int>(rng.UniformInt(0, b - 1)));
  }
  return id;
}

TEST(Silk, FirstJoinInstallsEmptyTableAndServerEntry) {
  auto net = MakeNet(4);
  Simulator sim;
  SimTransport group_bus(sim);
  SilkGroup group(group_bus, {&net, GroupParams{3, 4, 2}, 0});
  group.Join(UserId{1, 2, 3}, 1, 10);
  sim.Run();
  EXPECT_EQ(group.member_count(), 1);
  EXPECT_TRUE(group.Contains(UserId{1, 2, 3}));
  EXPECT_EQ(group.HostOf(UserId{1, 2, 3}), 1);
  ASSERT_NE(group.ServerTable().entry(0, 1), nullptr);
  group.CheckConsistency(2);
}

TEST(Silk, SequentialJoinsBuildKConsistentTables) {
  auto net = MakeNet(40);
  Simulator sim;
  SimTransport group_bus(sim);
  SilkGroup group(group_bus, {&net, GroupParams{3, 4, 2}, 0});
  Rng rng(5);
  for (HostId h = 1; h < 40; ++h) {
    UserId id;
    do {
      id = RandomId(rng, 3, 4);
    } while (group.Contains(id));
    group.Join(id, h, h);
    sim.Run();  // drain the protocol before the next join
    group.CheckConsistency(group.params().capacity);
  }
  EXPECT_EQ(group.member_count(), 39);
  EXPECT_GT(group.stats().messages, 0);
  EXPECT_GT(group.stats().rtt_probes, 0);
}

TEST(Silk, JoinerTablesMatchOracleSemantics) {
  // Run the identical join sequence through SilkGroup and the Directory
  // oracle; both must satisfy the same Definition-3 predicate (entry
  // contents may differ when RTT ties or eviction order differ, but counts
  // and membership per subtree must match exactly).
  auto net = MakeNet(30, 9);
  Simulator sim;
  GroupParams gp{3, 8, 2};
  SimTransport group_bus(sim);
  SilkGroup group(group_bus, {&net, gp, 0});
  Directory oracle(net, gp, 0);
  Rng rng(11);
  for (HostId h = 1; h < 30; ++h) {
    UserId id;
    do {
      id = RandomId(rng, 3, 8);
    } while (group.Contains(id));
    group.Join(id, h, h);
    sim.Run();
    oracle.AddMember(id, h, h);
  }
  group.CheckConsistency(gp.capacity);
  oracle.CheckKConsistency();
  // Spot-check: per member and row, the same set of non-empty entries with
  // the same sizes.
  for (const auto& [id, info] : oracle.members()) {
    (void)info;
    const NeighborTable& st = group.TableOf(id);
    const NeighborTable& ot = oracle.TableOf(id);
    for (int i = 0; i < gp.digits; ++i) {
      ASSERT_EQ(st.row(i).size(), ot.row(i).size()) << id.ToString();
      for (const auto& [digit, entry] : ot.row(i)) {
        const auto* se = st.entry(i, digit);
        ASSERT_NE(se, nullptr);
        EXPECT_EQ(se->size(), entry.size());
      }
    }
  }
}

TEST(Silk, LeaveKeepsOneConsistencyAndRefills) {
  auto net = MakeNet(50, 13);
  Simulator sim;
  SimTransport group_bus(sim);
  SilkGroup group(group_bus, {&net, GroupParams{3, 4, 3}, 0});
  Rng rng(17);
  std::vector<UserId> present;
  for (HostId h = 1; h < 50; ++h) {
    UserId id;
    do {
      id = RandomId(rng, 3, 4);
    } while (group.Contains(id));
    group.Join(id, h, h);
    sim.Run();
    present.push_back(id);
  }
  // Remove half, checking 1-consistency after each leave.
  for (int i = 0; i < 24; ++i) {
    std::size_t pick = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(present.size()) - 1));
    group.Leave(present[pick]);
    present.erase(present.begin() + static_cast<std::ptrdiff_t>(pick));
    sim.Run();
    group.CheckConsistency(1);
  }
  EXPECT_EQ(group.member_count(), 25);
}

TEST(Silk, InterleavedChurnKeepsDeliveryWorking) {
  auto net = MakeNet(60, 19);
  Simulator sim;
  GroupParams gp{3, 8, 3};
  SimTransport group_bus(sim);
  SilkGroup group(group_bus, {&net, gp, 0});
  Rng rng(23);
  std::vector<std::pair<UserId, HostId>> present;
  std::vector<HostId> free_hosts;
  for (HostId h = 1; h < 60; ++h) free_hosts.push_back(h);

  for (int step = 0; step < 120; ++step) {
    bool join = present.empty() ||
                (!free_hosts.empty() && rng.Bernoulli(0.6));
    if (join) {
      UserId id;
      do {
        id = RandomId(rng, 3, 8);
      } while (group.Contains(id));
      HostId h = free_hosts.back();
      free_hosts.pop_back();
      group.Join(id, h, step);
      present.push_back({id, h});
    } else {
      std::size_t pick = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(present.size()) - 1));
      group.Leave(present[pick].first);
      free_hosts.push_back(present[pick].second);
      present.erase(present.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    sim.Run();
    if (step % 10 == 0) group.CheckConsistency(1);

    // Periodically: T-mesh multicast over the protocol-built tables
    // reaches every member exactly once.
    if (step % 30 == 29 && !present.empty()) {
      Simulator msim;
      TMesh tmesh(group, msim);
      auto res = tmesh.MulticastRekey(RekeyMessage{}, TMesh::Options{});
      EXPECT_EQ(res.ReceivedCount(), static_cast<int>(present.size()));
      for (const auto& [id, host] : present) {
        (void)id;
        EXPECT_EQ(res.member[static_cast<std::size_t>(host)].copies, 1);
      }
    }
  }
}

TEST(Silk, RejectsDuplicatesAndUnknowns) {
  auto net = MakeNet(5);
  Simulator sim;
  SimTransport group_bus(sim);
  SilkGroup group(group_bus, {&net, GroupParams{2, 4, 2}, 0});
  group.Join(UserId{0, 0}, 1, 1);
  sim.Run();
  EXPECT_THROW(group.Join(UserId{0, 0}, 2, 2), std::logic_error);
  EXPECT_THROW(group.Join(UserId{0, 1}, 1, 2), std::logic_error);  // host dup
  EXPECT_THROW(group.Join(UserId{0, 1}, 0, 2), std::logic_error);  // server
  EXPECT_THROW(group.Leave(UserId{3, 3}), std::logic_error);
}

TEST(Silk, JoinCostGrowsSublinearly) {
  // Each join queries at most D gateways: message cost per join stays far
  // below group size.
  auto net = MakeNet(80, 29);
  Simulator sim;
  SimTransport group_bus(sim);
  SilkGroup group(group_bus, {&net, GroupParams{4, 4, 2}, 0});
  Rng rng(31);
  std::int64_t prev = 0;
  std::int64_t last_join_cost = 0;
  for (HostId h = 1; h < 80; ++h) {
    UserId id;
    do {
      id = RandomId(rng, 4, 4);
    } while (group.Contains(id));
    group.Join(id, h, h);
    sim.Run();
    last_join_cost = group.stats().messages - prev;
    prev = group.stats().messages;
  }
  // A join's cost: <= D request/response pairs + server notice + one
  // announcement flood (N messages). The flood dominates; the gateway walk
  // stays bounded.
  EXPECT_LT(last_join_cost, 3 * group.member_count());
}

class SilkShapeTest : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SilkShapeTest, JoinOnlySequencesAreKConsistent) {
  auto [depth, base, capacity] = GetParam();
  auto net = MakeNet(35, 41);
  Simulator sim;
  SimTransport group_bus(sim);
  SilkGroup group(group_bus, {&net, GroupParams{depth, base, capacity}, 0});
  Rng rng(static_cast<std::uint64_t>(depth * 100 + base));
  for (HostId h = 1; h < 35; ++h) {
    UserId id;
    int guard = 0;
    do {
      id = RandomId(rng, depth, base);
      if (++guard > 500) return;  // tiny ID space exhausted: done
    } while (group.Contains(id));
    group.Join(id, h, h);
    sim.Run();
  }
  group.CheckConsistency(capacity);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SilkShapeTest,
    ::testing::Values(std::make_tuple(2, 8, 1), std::make_tuple(3, 4, 2),
                      std::make_tuple(4, 8, 4), std::make_tuple(5, 16, 3)));

}  // namespace
}  // namespace tmesh
