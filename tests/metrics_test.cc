// Tests for the report printers and cross-cutting accounting invariants
// (message conservation, link-load consistency) that the figure harness
// relies on.
#include "metrics/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/directory.h"
#include "core/tmesh.h"
#include "topology/gtitm.h"
#include "topology/planetlab.h"

namespace tmesh {
namespace {

TEST(Fractions, DefaultAxisCoversUnitInterval) {
  auto f = DefaultFractions();
  ASSERT_EQ(f.size(), 20u);
  EXPECT_DOUBLE_EQ(f.front(), 0.05);
  EXPECT_DOUBLE_EQ(f.back(), 1.0);
  for (std::size_t i = 1; i < f.size(); ++i) EXPECT_GT(f[i], f[i - 1]);
}

TEST(Fractions, TailAxisStartsPastFrom) {
  auto f = TailFractions(0.9, 5);
  ASSERT_EQ(f.size(), 5u);
  EXPECT_GT(f.front(), 0.9);
  EXPECT_DOUBLE_EQ(f.back(), 1.0);
  EXPECT_THROW(TailFractions(0.0, 5), std::logic_error);
  EXPECT_THROW(TailFractions(1.0, 5), std::logic_error);
}

TEST(Printers, InverseCdfTableHasHeaderAndRows) {
  InverseCdf a({1, 2, 3, 4}), b({10, 20, 30, 40});
  std::ostringstream os;
  PrintInverseCdfTable(os, "demo", {0.25, 0.5, 1.0},
                       {{"alpha", &a}, {"beta", &b}});
  std::string out = os.str();
  EXPECT_NE(out.find("# demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  // 1 title + 1 header + 3 data rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(Printers, RankedTablePrintsMeanAndPercentile) {
  RankedRunStats s;
  s.AddRun({1, 2, 3});
  s.AddRun({3, 4, 5});
  std::ostringstream os;
  PrintRankedTable(os, "demo", {0.5, 1.0}, {{"x", &s}});
  std::string out = os.str();
  EXPECT_NE(out.find("x_avg"), std::string::npos);
  EXPECT_NE(out.find("x_p95"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Printers, RankedTableHeaderFollowsPercentileParam) {
  // Regression: the header used to hardcode "_p95" whatever percentile the
  // caller asked for.
  RankedRunStats s;
  s.AddRun({1, 2});
  std::ostringstream os;
  PrintRankedTable(os, "demo", {1.0}, {{"x", &s}}, 90.0);
  std::string out = os.str();
  EXPECT_NE(out.find("x_p90"), std::string::npos);
  EXPECT_EQ(out.find("x_p95"), std::string::npos);
  EXPECT_NE(out.find("(mean and p90 across runs)"), std::string::npos);
}

TEST(Printers, RankedTableGoldenOutput) {
  // Exact-bytes golden: covers the nearest-rank row selection (0.5 over 4
  // ranks reads rank index 1, not floor's 2) and both FormatCell regimes —
  // three decimals under 1000 and integer formatting at >= 1000 magnitude,
  // for negative values too.
  RankedRunStats s;
  s.AddRun({-2000, -2, 4, 1000});
  s.AddRun({-1000, 0, 6, 3000});
  std::ostringstream os;
  PrintRankedTable(os, "g", {0.25, 0.5, 0.75, 1.0}, {{"x", &s}}, 90.0);
  EXPECT_EQ(os.str(),
            "# g (mean and p90 across runs)\n"
            "  frac_of_population       x_avg       x_p90\n"
            "               0.250       -1500       -1000\n"
            "               0.500      -1.000       0.000\n"
            "               0.750       5.000       6.000\n"
            "               1.000        2000        3000\n");
}

TEST(Printers, RankedTableRankMatchesInverseCdf) {
  // A ranked table with one run and an inverse-CDF table over the same
  // population must read the same value at every fraction (the shared
  // NearestRankIndex convention).
  std::vector<double> pop = {5, 1, 9, 3, 7, 2, 8, 4, 6, 10};
  RankedRunStats s;
  s.AddRun(pop);
  InverseCdf cdf(pop);
  for (double f : DefaultFractions()) {
    EXPECT_DOUBLE_EQ(s.MeanAtRank(NearestRankIndex(f, pop.size())),
                     cdf.ValueAtFraction(f))
        << "fraction " << f;
  }
}

// --- accounting invariants over a real multicast -------------------------

GtItmParams SmallGtItm() {
  GtItmParams p;
  p.transit_domains = 3;
  p.transit_routers_per_domain = 3;
  p.stub_domains_per_transit_router = 2;
  p.stub_routers_min = 4;
  p.stub_routers_max = 6;
  return p;
}

UserId RandomId(Rng& rng, int d, int b) {
  UserId id;
  for (int i = 0; i < d; ++i) {
    id.Append(static_cast<int>(rng.UniformInt(0, b - 1)));
  }
  return id;
}

TEST(Accounting, MessageAndEncryptionConservation) {
  GtItmNetwork net(SmallGtItm(), 41, 3);
  Directory dir(net, GroupParams{3, 8, 2}, 0);
  ModifiedKeyTree tree(3);
  Rng rng(5);
  for (HostId h = 1; h <= 40; ++h) {
    UserId id;
    do {
      id = RandomId(rng, 3, 8);
    } while (dir.Contains(id));
    dir.AddMember(id, h, h);
    tree.Join(id);
  }
  (void)tree.Rekey();
  for (int i = 0; i < 8; ++i) {
    auto victim = dir.RandomAliveMember(rng);
    tree.Leave(*victim);
    dir.RemoveMember(*victim);
  }
  RekeyMessage msg = tree.Rekey();

  Simulator sim;
  TMesh tmesh(dir, sim);
  TMesh::Options opts;
  opts.split = true;
  opts.track_links = true;
  auto res = tmesh.MulticastRekey(msg, opts);

  // Conservation 1: total transmissions = server sends + member forwards.
  int member_sends = 0;
  int server_sends = 0;
  for (const auto& [id, info] : dir.members()) {
    (void)id;
    member_sends += res.member[static_cast<std::size_t>(info.host)].stress;
  }
  // Server sends = deliveries at forwarding level 1.
  for (const auto& [id, info] : dir.members()) {
    (void)id;
    if (res.member[static_cast<std::size_t>(info.host)].forward_level == 1) {
      ++server_sends;
    }
  }
  EXPECT_EQ(res.messages_sent, member_sends + server_sends);

  // Conservation 2: everyone's received encryptions equal what their
  // parents forwarded plus what the server emitted.
  std::int64_t total_received = 0, total_forwarded = 0, server_encs = 0;
  for (const auto& [id, info] : dir.members()) {
    auto h = static_cast<std::size_t>(info.host);
    total_received += res.member[h].encs_received;
    total_forwarded += res.member[h].encs_forwarded;
    if (res.member[h].forward_level == 1) {
      // This member's incoming encryptions came from the server.
      server_encs += res.member[h].encs_received;
    }
    (void)id;
  }
  EXPECT_EQ(total_received, total_forwarded + server_encs);

  // Conservation 3: per-link message counts at least cover every overlay
  // hop that crossed a link, and no link carries more encryptions than
  // total transmissions could put on it.
  std::int64_t max_link = 0;
  for (std::size_t l = 0; l < res.links.encryptions.size(); ++l) {
    max_link = std::max(max_link, res.links.encryptions[l]);
    if (res.links.messages[l] == 0) {
      EXPECT_EQ(res.links.encryptions[l], 0);
    }
  }
  EXPECT_LE(max_link, total_received);
}

TEST(Accounting, LinkLoadMatchesPathRecomputation) {
  // For a tiny group, recompute the expected per-link encryption load from
  // the delivery tree and compare with TMesh's accounting.
  GtItmNetwork net(SmallGtItm(), 9, 7);
  Directory dir(net, GroupParams{2, 4, 2}, 0);
  ModifiedKeyTree tree(2);
  Rng rng(9);
  for (HostId h = 1; h <= 8; ++h) {
    UserId id;
    do {
      id = RandomId(rng, 2, 4);
    } while (dir.Contains(id));
    dir.AddMember(id, h, h);
    tree.Join(id);
  }
  RekeyMessage msg = tree.Rekey();

  Simulator sim;
  TMesh tmesh(dir, sim);
  TMesh::Options opts;
  opts.split = true;
  opts.track_links = true;
  opts.record_encryptions = true;
  auto res = tmesh.MulticastRekey(msg, opts);

  std::vector<std::int64_t> expected(
      static_cast<std::size_t>(net.link_count()), 0);
  for (const auto& [id, info] : dir.members()) {
    (void)id;
    auto h = static_cast<std::size_t>(info.host);
    ASSERT_EQ(res.member[h].copies, 1);
    std::vector<LinkId> path;
    net.AppendPathLinks(res.member[h].from, info.host, path);
    for (LinkId l : path) {
      expected[static_cast<std::size_t>(l)] +=
          static_cast<std::int64_t>(res.member_encs[h].size());
    }
  }
  for (std::size_t l = 0; l < expected.size(); ++l) {
    EXPECT_EQ(res.links.encryptions[l], expected[l]) << "link " << l;
  }
}

}  // namespace
}  // namespace tmesh
