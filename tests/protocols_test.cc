#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/tmesh.h"
#include "protocols/latency_experiment.h"
#include "protocols/rekey_cost_experiment.h"
#include "protocols/rekey_protocols.h"
#include "topology/planetlab.h"

namespace tmesh {
namespace {

GtItmParams TestGtItm() {
  GtItmParams p;
  p.transit_domains = 3;
  p.transit_routers_per_domain = 4;
  p.stub_domains_per_transit_router = 2;
  p.stub_routers_min = 4;
  p.stub_routers_max = 7;
  return p;
}

SessionConfig TestSession(int depth = 3, int base = 8) {
  SessionConfig s;
  s.group = GroupParams{depth, base, 2};
  s.assign.collect_target = 4;
  s.assign.thresholds_ms.assign(static_cast<std::size_t>(depth - 1), 40.0);
  return s;
}

TEST(LatencyExperiment, RekeyPathProducesFullSeries) {
  PlanetLabParams np;
  np.hosts = 41;
  PlanetLabNetwork net(np);
  LatencyRunConfig cfg;
  cfg.users = 40;
  cfg.session = TestSession();
  auto res = RunLatencyExperiment(net, cfg, 7);
  EXPECT_EQ(res.tmesh.delay_ms.size(), 40u);
  EXPECT_EQ(res.tmesh.stress.size(), 40u);
  EXPECT_EQ(res.nice.delay_ms.size(), 40u);
  // Synthetic RTT matrices carry mild triangle-inequality violations, so
  // RDP can dip slightly below 1 (as with real measured RTTs).
  for (double r : res.tmesh.rdp) EXPECT_GT(r, 0.5);
  for (double r : res.nice.rdp) EXPECT_GT(r, 0.5);
  for (double d : res.tmesh.delay_ms) EXPECT_GT(d, 0.0);
}

TEST(LatencyExperiment, DataPathExcludesSender) {
  PlanetLabParams np;
  np.hosts = 31;
  PlanetLabNetwork net(np);
  LatencyRunConfig cfg;
  cfg.users = 30;
  cfg.data_path = true;
  cfg.session = TestSession();
  auto res = RunLatencyExperiment(net, cfg, 11);
  EXPECT_EQ(res.tmesh.delay_ms.size(), 29u);  // sender excluded
  EXPECT_EQ(res.nice.delay_ms.size(), 29u);
  EXPECT_EQ(res.tmesh.stress.size(), 30u);
}

TEST(LatencyExperiment, DeterministicForSameSeed) {
  PlanetLabParams np;
  np.hosts = 25;
  PlanetLabNetwork net(np);
  LatencyRunConfig cfg;
  cfg.users = 24;
  cfg.session = TestSession();
  auto a = RunLatencyExperiment(net, cfg, 99);
  auto b = RunLatencyExperiment(net, cfg, 99);
  EXPECT_EQ(a.tmesh.delay_ms, b.tmesh.delay_ms);
  EXPECT_EQ(a.nice.delay_ms, b.nice.delay_ms);
}

TEST(BandwidthExperiment, SevenProtocolsWithExpectedOrdering) {
  BandwidthConfig cfg;
  cfg.seed = 5;
  cfg.initial_users = 48;
  cfg.batch_joins = 12;
  cfg.batch_leaves = 12;
  cfg.session = TestSession();
  cfg.topology = TestGtItm();
  RekeyBandwidthExperiment exp(cfg);
  auto reports = exp.Run();
  ASSERT_EQ(reports.size(), 7u);
  std::vector<std::string> names;
  for (const auto& r : reports) names.push_back(r.protocol);
  EXPECT_EQ(names, (std::vector<std::string>{"P0", "P0'", "P1", "P1'", "P2",
                                             "P2'", "Pip"}));

  std::map<std::string, const BandwidthReport*> by_name;
  for (const auto& r : reports) by_name[r.protocol] = &r;

  const std::size_t users = by_name["P0"]->encs_received_per_user.size();
  EXPECT_EQ(users, 48u);
  for (const auto& r : reports) {
    EXPECT_EQ(r.encs_received_per_user.size(), users) << r.protocol;
    // P2/P2' may legitimately have an empty rekey message: if no cluster
    // *leader* joined or left, the heuristic re-keys nothing (Appendix B).
    if (r.protocol != "P2" && r.protocol != "P2'") {
      EXPECT_GT(r.rekey_cost, 0u) << r.protocol;
    }
    EXPECT_FALSE(r.encs_per_link.empty()) << r.protocol;
  }

  auto sum = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return s;
  };
  // Splitting reduces aggregate bandwidth.
  EXPECT_LT(sum(by_name["P0'"]->encs_received_per_user),
            sum(by_name["P0"]->encs_received_per_user));
  EXPECT_LT(sum(by_name["P1'"]->encs_received_per_user),
            sum(by_name["P1"]->encs_received_per_user));
  EXPECT_LE(sum(by_name["P2'"]->encs_received_per_user),
            sum(by_name["P2"]->encs_received_per_user));
  // Without splitting every user receives the whole message.
  for (double v : by_name["P1"]->encs_received_per_user) {
    EXPECT_DOUBLE_EQ(v, static_cast<double>(by_name["P1"]->rekey_cost));
  }
  for (double v : by_name["Pip"]->encs_received_per_user) {
    EXPECT_DOUBLE_EQ(v, static_cast<double>(by_name["Pip"]->rekey_cost));
  }
  // IP multicast users forward nothing.
  EXPECT_DOUBLE_EQ(sum(by_name["Pip"]->encs_forwarded_per_user), 0.0);
  // Every user still learns the new group key under splitting (for P2'
  // only when the heuristic actually re-keyed, i.e. a leader churned).
  for (double v : by_name["P1'"]->encs_received_per_user) {
    EXPECT_GE(v, 1.0);
  }
  if (by_name["P2'"]->rekey_cost > 0) {
    for (double v : by_name["P2'"]->encs_received_per_user) {
      EXPECT_GE(v, 1.0);
    }
  }
}

TEST(RekeyCostExperiment, GridShapesAndZeroCell) {
  RekeyCostConfig cfg;
  cfg.seed = 3;
  cfg.initial_users = 32;
  cfg.grid = {0, 8, 16};
  cfg.runs = 1;
  cfg.session = TestSession();
  cfg.topology = TestGtItm();
  auto cells = RunRekeyCostExperiment(cfg);
  ASSERT_EQ(cells.size(), 9u);
  for (const auto& c : cells) {
    if (c.joins == 0 && c.leaves == 0) {
      EXPECT_DOUBLE_EQ(c.modified, 0.0);
      EXPECT_DOUBLE_EQ(c.original, 0.0);
      EXPECT_DOUBLE_EQ(c.cluster, 0.0);
    } else {
      EXPECT_GT(c.modified, 0.0);
      EXPECT_GT(c.original, 0.0);
      // The cluster heuristic never costs more than the full modified tree.
      EXPECT_LE(c.cluster, c.modified);
    }
  }
  // More churn, more cost (coarse monotonicity along the diagonal).
  auto cell = [&](int j, int l) {
    for (const auto& c : cells) {
      if (c.joins == j && c.leaves == l) return c;
    }
    throw std::logic_error("missing cell");
  };
  EXPECT_LT(cell(0, 8).modified, cell(16, 16).modified + 1e-9);
}

// End-to-end: after a batch of joins/leaves, distribute the split rekey
// message over T-mesh and verify every member can decrypt its entire new
// key path from ONLY the encryptions it received (Lemma 3 + Theorem 2 +
// decryption closure, across the whole stack).
TEST(Integration, SplitDeliveryIsDecryptionComplete) {
  PlanetLabParams np;
  np.hosts = 61;
  np.seed = 31;
  PlanetLabNetwork net(np);
  SessionConfig scfg = TestSession(4, 8);
  scfg.with_nice = false;
  scfg.seed = 17;
  GroupSession session(net, 0, scfg);
  Rng rng(23);

  // Initial population.
  for (HostId h = 1; h <= 40; ++h) {
    ASSERT_TRUE(session.Join(h, h).has_value());
  }
  session.FlushRekeyState();

  // Members' key state before the batch.
  std::map<UserId, std::map<KeyId, std::uint32_t>> held;
  ModifiedKeyTree& tree = session.key_tree();
  for (const auto& [id, info] : session.directory().members()) {
    (void)info;
    for (const KeyId& k : tree.KeysOf(id)) held[id][k] = tree.KeyVersion(k);
  }

  // Batch: 10 joins, 10 leaves.
  for (HostId h = 41; h <= 50; ++h) {
    auto id = session.Join(h, 1000 + h);
    ASSERT_TRUE(id.has_value());
    for (const KeyId& k : tree.KeysOf(*id)) {
      held[*id][k] = tree.KeyVersion(k);  // server unicast at join
    }
  }
  for (int i = 0; i < 10; ++i) {
    auto victim = session.directory().RandomAliveMember(rng);
    ASSERT_TRUE(victim.has_value());
    held.erase(*victim);
    session.Leave(*victim);
  }

  RekeyMessage msg = tree.Rekey();
  ASSERT_GT(msg.RekeyCost(), 0u);

  Simulator sim;
  TMesh tmesh(session.directory(), sim);
  TMesh::Options opts;
  opts.split = true;
  opts.record_encryptions = true;
  auto res = tmesh.MulticastRekey(msg, opts);

  for (const auto& [id, info] : session.directory().members()) {
    ASSERT_EQ(res.member[static_cast<std::size_t>(info.host)].copies, 1);
    auto& keys = held[id];
    const auto& got = res.member_encs[static_cast<std::size_t>(info.host)];
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::int32_t idx : got) {
        const Encryption& e = msg.encryptions[static_cast<std::size_t>(idx)];
        auto it = keys.find(e.enc_key_id);
        if (it == keys.end() || it->second != e.enc_key_version) continue;
        auto cur = keys.find(e.new_key_id);
        if (cur != keys.end() && cur->second >= e.new_key_version) continue;
        keys[e.new_key_id] = e.new_key_version;
        progress = true;
      }
    }
    for (const KeyId& k : tree.KeysOf(id)) {
      ASSERT_EQ(keys.at(k), tree.KeyVersion(k))
          << "member " << id.ToString() << " cannot decrypt "
          << k.ToString();
    }
  }
}

}  // namespace
}  // namespace tmesh
