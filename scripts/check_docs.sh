#!/usr/bin/env bash
# Docs checker: validates the four handbook documents against the tree so
# renames and section shuffles can't silently strand references.
#
#   1. Markdown links  [text](target[#anchor]) — target file must exist;
#      an #anchor (same-file or cross-file) must slugify from a heading.
#   2. Section refs    `FILE.md §3f` — FILE.md must contain a heading
#      numbered 3f (the docs' cross-reference idiom).
#   3. file:line refs  `src/core/directory.cc:123` — the file must exist
#      and be at least that long.
#   4. Backticked repo paths — `src/core/directory.*`, `tests/foo_test.cc`,
#      `scripts/presubmit.sh`, `src/ipmc/*`, trailing-slash directories —
#      must resolve in the tree. Doc shorthand is honored: `sim/x.h` may
#      live under src/, and extensionless `bench/name` / `examples/name`
#      refer to their .cc source. Build outputs (build*/, fuzz-out/,
#      bench_artifacts/), absolute paths, flags, and external-repo
#      citations (.hpp/.cpp, "...") are out of scope.
#
# Usage: scripts/check_docs.sh   (exit 0 iff every reference resolves)
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - <<'EOF'
import glob, os, re, sys

DOCS = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"]
errors = []

def slugify(heading):
    # GitHub anchor rule: lowercase, drop everything but word chars,
    # spaces and hyphens, then spaces -> hyphens.
    s = heading.strip().lower()
    s = re.sub(r"[^\w\- ]", "", s)
    return s.replace(" ", "-")

def headings(path):
    out = []
    for line in open(path, encoding="utf-8"):
        m = re.match(r"#{1,6}\s+(.*)", line)
        if m:
            out.append(m.group(1).strip())
    return out

anchors = {d: {slugify(h) for h in headings(d)} for d in DOCS}
# Section numbers like "3f" from headings "## 3f. Indexed directory ..."
secnums = {
    d: {m.group(1) for h in headings(d)
        if (m := re.match(r"(\d+[a-z]?)[.\s]", h))}
    for d in DOCS
}

def err(doc, lineno, msg):
    errors.append(f"{doc}:{lineno}: {msg}")

def check_path_token(doc, lineno, tok):
    if tok.startswith(("-", "/", "#", ".")):
        return
    first = tok.split("/", 1)[0]
    if first.startswith("build") or first in ("fuzz-out", "bench_artifacts"):
        return
    if "..." in tok:
        return  # external-repo citation, not a tree path
    candidates = [tok]
    if not os.path.exists(first):
        candidates.append("src/" + tok)  # `sim/event_queue.h` shorthand
    if not re.search(r"\.[A-Za-z]+$|[*/]$", tok):
        # binary names refer to their source: bench/*.cc, examples/*.cpp
        candidates += [c + ext for c in list(candidates)
                       for ext in (".cc", ".cpp")]
    for c in candidates:
        if "*" in c:
            if glob.glob(c):
                return
        elif os.path.exists(c):
            return
    if tok.endswith((".hpp", ".cpp")):
        return  # unresolved C++ path = external-repo citation
    err(doc, lineno, f"dangling path reference `{tok}`")

for doc in DOCS:
    lines = open(doc, encoding="utf-8").read().splitlines()
    for lineno, line in enumerate(lines, 1):
        # 1. markdown links
        for m in re.finditer(r"\[[^\]]+\]\(([^)\s]+)\)", line):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path, _, anchor = target.partition("#")
            if path and not os.path.exists(path):
                err(doc, lineno, f"broken link target ({target})")
                continue
            if anchor:
                where = path if path else doc
                known = anchors.get(where)
                if known is None:
                    known = {slugify(h) for h in headings(where)}
                if anchor not in known:
                    err(doc, lineno, f"unknown anchor #{anchor} in {where}")
        # 2. cross-doc section references: "DESIGN.md §3f"
        for m in re.finditer(r"([A-Z]+\.md)\s+§(\d+[a-z]?)", line):
            ref_doc, sec = m.groups()
            if ref_doc not in secnums:
                continue  # PAPERS.md §x etc. — not a handbook doc
            if sec not in secnums[ref_doc]:
                err(doc, lineno, f"missing section §{sec} in {ref_doc}")
        # 3. file:line references
        for m in re.finditer(
                r"([A-Za-z0-9_./-]+\.(?:cc|h|sh|py|md|json|txt)):(\d+)",
                line):
            path, n = m.group(1), int(m.group(2))
            if not os.path.exists(path):
                err(doc, lineno, f"file:line ref to missing file {path}")
            elif sum(1 for _ in open(path, "rb")) < n:
                err(doc, lineno, f"{path} has fewer than {n} lines")
        # 4. backticked repo paths
        for m in re.finditer(r"`([A-Za-z0-9_./*-]+)`", line):
            tok = m.group(1)
            if "/" in tok:
                check_path_token(doc, lineno, tok)

if errors:
    print(f"check_docs: {len(errors)} dangling reference(s):")
    for e in errors:
        print("  " + e)
    sys.exit(1)
print(f"check_docs: OK ({', '.join(DOCS)})")
EOF
