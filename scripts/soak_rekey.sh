#!/usr/bin/env bash
# Wall-clock rekeying soak over real UDP sockets (DESIGN.md §3h).
#
# Loops examples/multiproc_rekey — a forked key-server process plus N
# member processes exchanging join/leave/rekey datagrams over 127.0.0.1 —
# across a grid of group sizes, interval lengths, and seeds. Every run
# asserts, inside the member processes and from captured wire bytes only:
#
#   * decryption closure: every alive member's key holdings, closed over
#     the rekey frames it received, reach each interval's new group key;
#   * forward secrecy: the departed member, still receiving every frame,
#     can never close to a post-leave group key.
#
# Usage: scripts/soak_rekey.sh [build-dir] [rounds]
#   build-dir  tree containing examples/multiproc_rekey (default: build)
#   rounds     grid repetitions with fresh seeds (default: 1; the CI smoke
#              uses the default, nightly runs pass more)
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir="${1:-build}"
rounds="${2:-1}"
bin="$build_dir/examples/multiproc_rekey"

if [[ ! -x "$bin" ]]; then
  echo "soak_rekey: $bin not built (cmake --build $build_dir)" >&2
  exit 2
fi

runs=0
start=$SECONDS
for ((round = 0; round < rounds; ++round)); do
  for members in 3 6 10; do
    for interval_ms in 80 200; do
      seed=$((round * 1000 + members * 10 + interval_ms))
      echo "---- soak: members=$members interval_ms=$interval_ms seed=$seed"
      "$bin" --members="$members" --intervals=4 \
             --interval-ms="$interval_ms" --seed="$seed"
      runs=$((runs + 1))
    done
  done
done

echo "soak_rekey OK: $runs runs, $((SECONDS - start))s wall"
