#!/usr/bin/env bash
# Presubmit: the three ROADMAP invocations plus the docs check in one
# command.
#
#   0. check_docs — markdown links, §-section refs, file:line refs, and
#                   backticked paths across README/DESIGN/EXPERIMENTS/
#                   ROADMAP must all resolve (scripts/check_docs.sh)
#   1. default   — RelWithDebInfo build + the full tier-1 ctest suite
#   2. asan-ubsan — every tier-1 test under ASan+UBSan
#                   (-fno-sanitize-recover=all)
#   3. tsan      — the parallel-driver, replica-runner, replicated-key-
#                   server, simulator, metrics-registry, and transport
#                   suites under ThreadSanitizer (the registry suite
#                   exercises the cross-replica merge at --threads>1; the
#                   transport conformance suite and the multi-process smoke
#                   exercise UdpTransport's event-loop thread)
#   4. psim      — parallel-driver byte identity at figure level: fig08 and
#                   fig11 stdout diffed across the sequential drain and
#                   --psim-threads in {1, 2, 7} (DESIGN.md §3i)
#   5. soak      — one scripts/soak_rekey.sh round: the multi-process
#                   join/leave/rekey demo over real loopback UDP, asserting
#                   decryption closure + forward secrecy from wire bytes
#
# Usage: scripts/presubmit.sh [-j N]
#   -j N   build parallelism (default: nproc)
#
# Each pass uses the CMake presets from CMakePresets.json, so the build
# trees (build/, build-asan-ubsan/, build-tsan/) are the same ones the
# README documents and stay warm across presubmit runs. The script stops
# at the first failing configure/build/test.
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
while getopts "j:" opt; do
  case "$opt" in
    j) jobs="$OPTARG" ;;
    *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
  esac
done

run_preset() {
  local preset="$1"
  echo "==== [$preset] configure"
  cmake --preset "$preset"
  echo "==== [$preset] build (-j $jobs)"
  cmake --build --preset "$preset" -j "$jobs"
  echo "==== [$preset] ctest"
  ctest --preset "$preset"
}

echo "==== [docs] check_docs"
scripts/check_docs.sh

run_preset default
run_preset asan-ubsan
run_preset tsan

echo "==== [psim] figure-level byte identity across --psim-threads"
psim_tmp="$(mktemp -d)"
trap 'rm -rf "$psim_tmp"' EXIT
for fig in fig08_rekey_latency_gtitm1024 fig11_data_latency_gtitm1024; do
  "build/bench/$fig" --users=96 --runs=1 --threads=1 \
    > "$psim_tmp/$fig.seq" 2>/dev/null
  for w in 1 2 7; do
    "build/bench/$fig" --users=96 --runs=1 --threads=1 --psim-threads="$w" \
      > "$psim_tmp/$fig.w$w" 2>/dev/null
    if ! cmp -s "$psim_tmp/$fig.seq" "$psim_tmp/$fig.w$w"; then
      echo "FAIL: $fig --psim-threads=$w diverged from the sequential drain" >&2
      diff "$psim_tmp/$fig.seq" "$psim_tmp/$fig.w$w" >&2 || true
      exit 1
    fi
    echo "  $fig --psim-threads=$w: identical"
  done
done

echo "==== [soak] loopback UDP rekeying (scripts/soak_rekey.sh)"
scripts/soak_rekey.sh build 1

echo "==== presubmit OK: docs + default + asan-ubsan + tsan + psim + soak all green"
