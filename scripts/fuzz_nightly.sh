#!/usr/bin/env bash
# Nightly churn-fuzzing campaign: long randomized interleavings over both
# substrates, both silk regimes, and the K/loss grid the acceptance matrix
# calls for. Any violation is delta-debugged by fuzz_churn itself; the
# 1-minimal repro lands in $OUT_DIR, ready to be fixed and then checked in
# under tests/fuzz_repros/.
#
# Usage:
#   scripts/fuzz_nightly.sh                 # default: 10k ops x 3 seeds/config
#   FUZZ_OPS=50000 scripts/fuzz_nightly.sh  # longer traces
#   FUZZ_SEEDS=10 scripts/fuzz_nightly.sh   # more seeds per config
#   FUZZ_SEED0=$(date +%j) scripts/fuzz_nightly.sh   # rotate the seed base
#   FUZZ_SCALE_USERS=100000 scripts/fuzz_nightly.sh  # smaller big-N campaign
#   FUZZ_SCALE_RSS_KB=4194304 scripts/fuzz_nightly.sh  # looser RSS bound
#
# Exit status: 0 iff every campaign ran clean.

set -uo pipefail
cd "$(dirname "$0")/.."

OPS="${FUZZ_OPS:-10000}"
SEEDS="${FUZZ_SEEDS:-3}"
SEED0="${FUZZ_SEED0:-1}"
OUT_DIR="${FUZZ_OUT:-fuzz-out}"

cmake --preset default >/dev/null
cmake --build --preset default --target fuzz_churn -j "$(nproc)" >/dev/null
mkdir -p "$OUT_DIR"

FUZZ=build/src/fuzz/fuzz_churn
failures=0

run() {
  echo "== fuzz_churn $* --ops=$OPS --seed=$SEED0 --seeds=$SEEDS --out=$OUT_DIR"
  if ! "$FUZZ" "$@" --ops="$OPS" --seed="$SEED0" --seeds="$SEEDS" \
      --out="$OUT_DIR"; then
    failures=$((failures + 1))
  fi
}

# Directory substrate: K x loss grid, plus the Appendix-B cluster mode.
for k in 2 4; do
  for loss in 0 0.05; do
    run --substrate=directory --k="$k" --loss="$loss"
  done
done
run --substrate=directory --k=2 --cluster

# Replicated key manager (DESIGN.md §3g): fault-injection campaigns against
# the HA facade — fail-stop and mid-batch kills, partitions and heals —
# with the failover invariants (Theorem-1 exactly-once across failover,
# forward secrecy through burned batches, version uniqueness) armed.
run --substrate=directory --k=2 --kill-server
run --substrate=directory --k=2 --partition
run --substrate=directory --k=2 --kill-server --partition
run --substrate=directory --k=2 --kill-server --partition --loss=0.05
run --substrate=directory --k=2 --kill-server --partition --replicas=5
run --substrate=directory --k=2 --cluster --kill-server --partition

# Silk substrate: dense ID spaces so subtrees have depth. The default
# (capped) regime holds leave concurrency within Definition 3's K-1
# tolerance and asserts sharply; the uncapped regime pushes bursts past it
# and relies on the soft-state maintenance sweep.
for k in 2 4; do
  run --substrate=silk --digits=3 --base=4 --hosts=48 --k="$k"
  run --substrate=silk --digits=3 --base=4 --hosts=48 --k="$k" --uncapped
done
run --substrate=silk --digits=2 --base=4 --hosts=24 --k=2 --uncapped

# Alternate queue discipline: same seeds must land on the same verdicts.
run --substrate=directory --k=2 --discipline=heap
run --substrate=silk --digits=3 --base=4 --hosts=48 --k=2 --discipline=heap

# Big-N scale mode: the flat key trees must complete a full 10^6-user rekey
# interval plus churn epochs with streamed (O(affected-subtree)) per-epoch
# work and bounded memory. The RSS limit and the built-in marked-node
# allowance are the invariant hooks that catch accidental O(N)-per-epoch
# regressions. Measured headroom: ~1.05 GiB peak at 10^6 (RelWithDebInfo).
SCALE_USERS="${FUZZ_SCALE_USERS:-1000000}"
SCALE_RSS_KB="${FUZZ_SCALE_RSS_KB:-2621440}"
run_scale() {
  echo "== fuzz_churn --scale $*"
  if ! "$FUZZ" --scale "$@"; then
    failures=$((failures + 1))
  fi
}
run_scale --users="$SCALE_USERS" --epochs=5 --batch=2000 --shards=4 \
  --rss-limit-kb="$SCALE_RSS_KB" --seed="$SEED0"
run_scale --users=100000 --epochs=5 --batch=1000 --shards=1 \
  --rss-limit-kb=524288 --seed="$SEED0"

# Through-directory admission at 10^5: every join/leave/fail/repair runs
# through Directory::AddMember/RemoveMember (indexed policy) under the
# N-independent per-op admission-work allowance — the acceptance point for
# the sublinear-admission pin. A smaller cross-checked campaign replays
# every op on a kScanReference twin and demands byte-identical tables.
run_scale --users=100000 --epochs=3 --batch=1000 --dir \
  --rss-limit-kb=2621440 --seed="$SEED0"
run_scale --users=3000 --epochs=3 --batch=300 --dir-cross-check \
  --seed="$SEED0"

# Placement ablation arms under skewed churn (30% volatile, biased leaves):
# both placements must run their campaigns clean.
run_scale --users=100000 --epochs=3 --batch=2000 --volatile=0.3 \
  --placement=shallowest --seed="$SEED0"
run_scale --users=100000 --epochs=3 --batch=2000 --volatile=0.3 \
  --placement=churn-affinity --seed="$SEED0"

if [ "$failures" -ne 0 ]; then
  echo "FUZZ NIGHTLY: $failures campaign(s) found violations; repros in $OUT_DIR/"
  exit 1
fi
echo "FUZZ NIGHTLY: all campaigns clean"
