#!/usr/bin/env bash
# Regenerate bench_output.txt: rebuild the default preset and rerun every
# bench binary with its default (EXPERIMENTS.md) settings.
#
# Usage:
#   scripts/regen_experiments.sh              # rebuild + all benches
#   scripts/regen_experiments.sh --tsan       # also run the ThreadSanitizer
#                                             # pass over the replica-runner
#                                             # and simulator tests first
#   BENCH_THREADS=4 scripts/regen_experiments.sh   # pin --threads for the
#                                             # replica-parallel figure runs
#                                             # (default: all hardware threads)
#
# Output is deterministic per seed and per --threads-invariant by
# construction (see DESIGN.md "Parallel replica runs"), so a diff of
# bench_output.txt against a committed copy is a meaningful regression
# signal regardless of the machine's core count. Wall-clock notes in
# EXPERIMENTS.md do depend on the machine.

set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=0
for arg in "$@"; do
  case "$arg" in
    --tsan) run_tsan=1 ;;
    *) echo "usage: $0 [--tsan]" >&2; exit 2 ;;
  esac
done

if [[ "$run_tsan" == 1 ]]; then
  echo "== ThreadSanitizer pass (replica runner + simulator tests) =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  ctest --preset tsan
fi

echo "== Rebuild (default preset) =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"

threads_flag=""
if [[ -n "${BENCH_THREADS:-}" ]]; then
  threads_flag="--threads=${BENCH_THREADS}"
fi

# Discover the suite: every build/bench executable that answers the --spec
# handshake (bench_common.h) prints "order<TAB>recorded<TAB>name<TAB>title"
# and is run in order. Binaries that don't speak --spec (the
# google-benchmark micro benches) fall out of the probe; they report
# non-deterministic wall times and are smoke-run separately below.
specs=$(for b in ./build/bench/*; do
  [[ -x "$b" && -f "$b" ]] || continue
  "$b" --spec 2>/dev/null || true
done | grep -E $'^[0-9]+\t[01]\t' | sort -n)

out=bench_output.txt
artifacts=bench_artifacts
: > "$out"
mkdir -p "$artifacts"
while IFS=$'\t' read -r order recorded name title; do
  if [[ "$recorded" != 1 ]]; then
    echo "== $name: skipped (not recorded: $title) =="
    continue
  fi
  start=$SECONDS
  {
    echo "===== $name ${threads_flag} ====="
    # The JSON snapshot is the machine-readable twin of the text table;
    # stdout is byte-identical with or without --metrics-json (asserted by
    # the acceptance sweep), so the artifacts ride along for free.
    ./build/bench/"$name" ${threads_flag} \
      --metrics-json="$artifacts/$name.metrics.json"
    echo
  } >> "$out"
  echo "== $name: $((SECONDS - start))s =="
done <<< "$specs"

# The google-benchmark binaries report wall times, which are not
# deterministic; keep them out of bench_output.txt but still smoke-run the
# core-ops suite.
echo "== micro_core_ops (smoke, not recorded) =="
# Plain double: the pinned google-benchmark predates the "0.01s" suffix
# syntax and rejects it.
./build/bench/micro_core_ops --benchmark_min_time=0.01 > /dev/null

# The key-tree scale sweep + tree-shape ablations (WGL degree sweep,
# placement ablation, through-directory admission) report wall-clock (not
# recorded); smoke-run a small point with the O(N) invariant passes on.
# BENCH_scale.json records the measured curves (regenerate the 10^4/10^5
# points with ./build/bench/micro_scale, the 10^6/10^5 decade points with
# ./build/bench/micro_scale --full; see EXPERIMENTS.md "Tree-shape
# ablations").
echo "== micro_scale (smoke, not recorded) =="
./build/bench/micro_scale --users=10000 --runs=2 --full \
  --metrics-json="$artifacts/micro_scale.metrics.json" > /dev/null

# Parallel-driver scaling (wall-clock, not recorded): the smoke point still
# FATALs if any worker count diverges from the sequential event history, so
# this run is a byte-identity check even on one core. BENCH_psim.json
# records a measured table (regenerate with ./build/bench/micro_psim; the
# fig08/fig11 psim arms come from --psim-threads, see EXPERIMENTS.md).
echo "== micro_psim (smoke, not recorded) =="
./build/bench/micro_psim --users=64 --runs=120 > /dev/null

echo "Wrote $out and $artifacts/*.metrics.json"
