#!/usr/bin/env bash
# Regenerate bench_output.txt: rebuild the default preset and rerun every
# bench binary with its default (EXPERIMENTS.md) settings.
#
# Usage:
#   scripts/regen_experiments.sh              # rebuild + all benches
#   scripts/regen_experiments.sh --tsan       # also run the ThreadSanitizer
#                                             # pass over the replica-runner
#                                             # and simulator tests first
#   BENCH_THREADS=4 scripts/regen_experiments.sh   # pin --threads for the
#                                             # replica-parallel figure runs
#                                             # (default: all hardware threads)
#
# Output is deterministic per seed and per --threads-invariant by
# construction (see DESIGN.md "Parallel replica runs"), so a diff of
# bench_output.txt against a committed copy is a meaningful regression
# signal regardless of the machine's core count. Wall-clock notes in
# EXPERIMENTS.md do depend on the machine.

set -euo pipefail
cd "$(dirname "$0")/.."

run_tsan=0
for arg in "$@"; do
  case "$arg" in
    --tsan) run_tsan=1 ;;
    *) echo "usage: $0 [--tsan]" >&2; exit 2 ;;
  esac
done

if [[ "$run_tsan" == 1 ]]; then
  echo "== ThreadSanitizer pass (replica runner + simulator tests) =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$(nproc)"
  ctest --preset tsan
fi

echo "== Rebuild (default preset) =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"

# Benches in EXPERIMENTS.md order. Flags beyond the defaults are listed
# explicitly so the file documents exactly how it was produced.
threads_flag=""
if [[ -n "${BENCH_THREADS:-}" ]]; then
  threads_flag="--threads=${BENCH_THREADS}"
fi

benches=(
  fig06_rekey_latency_planetlab
  fig07_rekey_latency_gtitm256
  fig08_rekey_latency_gtitm1024
  fig09_data_latency_planetlab
  fig10_data_latency_gtitm256
  fig11_data_latency_gtitm1024
  fig12_rekey_cost
  fig13_rekey_bandwidth
  fig14_delay_thresholds
  micro_join_cost
  ablation_id_assignment
  ablation_split_granularity
  ablation_congestion
)

out=bench_output.txt
: > "$out"
for b in "${benches[@]}"; do
  start=$SECONDS
  {
    echo "===== $b ${threads_flag} ====="
    ./build/bench/"$b" ${threads_flag}
    echo
  } >> "$out"
  echo "== $b: $((SECONDS - start))s =="
done

# micro_core_ops (google-benchmark) reports wall times, which are not
# deterministic; keep it out of bench_output.txt but still smoke-run it.
echo "== micro_core_ops (smoke, not recorded) =="
./build/bench/micro_core_ops --benchmark_min_time=0.01s > /dev/null

echo "Wrote $out"
