// Ablation (§1): concurrent rekey and data transport on bandwidth-limited
// access links — the paper's motivation for minimizing rekey bandwidth.
//
// "Bursty rekey traffic competes for available bandwidth with data traffic,
// and thus considerably increases the load of bandwidth-limited links ...
// Congestion at such an access link causes data losses for many downstream
// users." We model each user's uplink as a serializing queue and multicast
// a data message while a rekey burst is in flight, measuring how much the
// burst inflates data latency — with and without rekey-message splitting,
// across uplink speeds.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/tmesh.h"
#include "core/wire.h"
#include "sim/sim_metrics.h"

int main(int argc, char** argv) {
  using namespace tmesh;
  using namespace tmesh::bench;
  constexpr FigureSpec kSpec{
      "ablation_congestion",
      "Ablation: rekey/data interference on limited uplinks", 130};
  Flags f = Flags::Parse(kSpec, argc, argv);
  Artifacts art(f);
  const int users = f.users > 0 ? f.users : 226;

  auto net = MakeNetwork(Topo::kPlanetLab, users + 1, f.seed);
  SessionConfig cfg = PaperSession();
  cfg.with_nice = false;
  cfg.seed = f.seed + 3;
  GroupSession session(*net, 0, cfg);
  Rng rng(f.seed + 11);
  for (HostId h = 1; h <= users; ++h) {
    if (!session.Join(h, h).has_value()) return 1;
  }
  session.FlushRekeyState();
  for (int i = 0; i < users / 2; ++i) {
    auto victim = session.directory().RandomAliveMember(rng);
    session.Leave(*victim);
  }
  RekeyMessage msg = session.key_tree().Rekey();
  auto sender = session.directory().RandomAliveMember(rng);

  std::printf("# Ablation: rekey/data interference on limited uplinks "
              "(PlanetLab, %d users,\n# rekey message = %zu encryptions, "
              "data message = 256 B)\n",
              users, msg.RekeyCost());
  std::printf("%12s%18s%22s%22s%14s\n", "uplink_kbps", "data_alone_ms",
              "data_w_full_rekey_ms", "data_w_split_rekey_ms",
              "split_gain");

  // One replica per uplink speed (the rows share only the immutable
  // session and rekey message); each row runs its three modes back-to-back
  // on the worker's simulator, Reset() between modes standing in for the
  // per-mode `Simulator sim;` the sequential loop constructed. Rows print
  // in speed order regardless of --threads.
  // Each row's metrics accumulate in a replica-local registry (all three
  // modes of the row) and merge in speed order — thread-count-independent.
  struct RowOut {
    std::string row;
    MetricsRegistry reg;
  };
  const std::vector<double> speeds = {64.0, 256.0, 1024.0, 10240.0};
  ReplicaRunner runner(f.Threads(), f.SimOptions());
  runner.Run(
      static_cast<int>(speeds.size()),
      [&](ReplicaRunner::Replica& rep) {
        const double kbps = speeds[static_cast<std::size_t>(rep.index)];
        RowOut out;
        auto run = [&](int mode) {  // 0: data alone, 1: +full rekey, 2: +split
          rep.sim.Reset();
          TMesh tmesh(session.directory(), rep.sim);
          if (art.metrics() != nullptr) tmesh.SetMetrics(&out.reg);
          TMesh::UplinkModel up;
          up.kbps = kbps;
          up.data_bytes = 256;  // a small audio/control packet
          tmesh.SetUplinkModel(up);
          std::vector<TMesh::Handle> handles;
          if (mode > 0) {
            TMesh::Options ropts;
            ropts.split = mode == 2;
            handles.push_back(tmesh.BeginRekey(msg, ropts));
          }
          // Launch the data stream while the rekey burst is mid-flight
          // through the overlay. The burst's life is several times the
          // full message's serialization time (the server re-serializes
          // one copy per row-0 entry, and every forwarder re-serializes
          // downstream), so aim for the middle of that span; launching
          // right after the server's first copies instead makes the
          // overlap a knife-edge race against the much faster data wave.
          // msg_ms uses the exact wire sizes — the same accounting the
          // uplink model charges per packet.
          double msg_bytes = static_cast<double>(up.header_bytes);
          for (const Encryption& e : msg.encryptions) {
            msg_bytes += static_cast<double>(WireSize(e));
          }
          double msg_ms = msg_bytes * 8.0 / kbps;
          RunUntilSliced(rep.sim, rep.sim.Now() + FromMillis(3.0 * msg_ms + 50.0),
                         f.step);
          handles.push_back(tmesh.BeginData(*sender));
          DrainSliced(rep.sim, f.step);
          if (art.metrics() != nullptr) {
            tmesh.FlushMetrics();
            ExportSimMetrics(rep.sim, out.reg);
          }
          const TMesh::Result& data = handles.back().result();
          std::vector<double> delays;
          for (const auto& r : data.member) {
            if (r.copies > 0) delays.push_back(r.delay_ms);
          }
          return Percentile(delays, 95);
        };
        double alone = run(0);
        double full = run(1);
        double split = run(2);
        char row[160];
        std::snprintf(row, sizeof(row), "%12.0f%18.1f%22.1f%22.1f%13.1fx\n",
                      kbps, alone, full, split, full / split);
        out.row = row;
        return out;
      },
      [&](int, RowOut&& out) {
        std::fputs(out.row.c_str(), stdout);
        if (art.metrics() != nullptr) art.metrics()->MergeFrom(out.reg);
      });
  std::printf(
      "\n# expected: on congested uplinks (all but the fastest row) data "
      "forwarders are still\n# serializing the unsplit burst when the data "
      "wave passes, so data latency multiplies;\n# the split burst never "
      "interferes measurably — splitting shrinks each user's share to\n# a "
      "few encryptions, and per-source trees separate most remaining "
      "rekey/data\n# forwarders ('rekey transport and data transport choose "
      "different multicast trees\n# in T-mesh', §4.3).\n");
  art.Write();
  return 0;
}
