// Scheduler-core microbench: events/sec through the three event queues.
//
//   LegacySim — the seed implementation (binary heap of std::function; one
//               heap allocation per scheduled event).
//   HeapSim   — pooled event records + small-buffer closures, binary-heap
//               discipline (isolates the allocation win from the queue win).
//   CalSim    — pooled records + calendar queue (the default Simulator).
//
// Three workload shapes cover the simulator's real usage:
//   FloodDrain    — pre-schedule a big batch at mixed times, then drain
//                   (BeginRekey's initial fan-out).
//   Ripple        — the classic hold model: a steady population of events,
//                   each execution schedules a successor at a random offset
//                   (message forwarding through the mesh).
//   SameTimeBurst — many events at identical instants (synchronized rekey
//                   rounds; exercises the calendar queue's FIFO appends and
//                   the (time, seq) tie-breaking).
//
// BENCH_sim_core.json records the resulting events/sec; the determinism
// suite (tests/simulator_determinism_test.cc) proves all three queues run
// identical workloads in an identical order, so this is a fair race.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "common/rng.h"
#include "sim/legacy_simulator.h"
#include "sim/simulator.h"

namespace tmesh {
namespace {

using LegacySim = LegacySimulator;

struct CalSim : Simulator {
  CalSim() : Simulator(Options{.discipline = QueueDiscipline::kCalendar}) {}
};

struct StaticCalSim : Simulator {
  StaticCalSim()
      : Simulator(Options{.discipline = QueueDiscipline::kCalendar,
                          .adaptive_retune = false}) {}
};

struct HeapSim : Simulator {
  HeapSim() : Simulator(Options{.discipline = QueueDiscipline::kBinaryHeap}) {}
};

template <class Sim>
void BM_FloodDrain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng times(42);
  std::int64_t events = 0;
  for (auto _ : state) {
    Sim sim;
    Rng rng = times;  // identical schedule every iteration and every queue
    std::int64_t ran = 0;
    for (int i = 0; i < n; ++i) {
      sim.ScheduleAt(rng.UniformInt(0, 1'000'000), [&ran] { ++ran; });
    }
    sim.Run();
    benchmark::DoNotOptimize(ran);
    events += ran;
  }
  state.SetItemsProcessed(events);
}
BENCHMARK_TEMPLATE(BM_FloodDrain, LegacySim)->Arg(8192)->Arg(131072);
BENCHMARK_TEMPLATE(BM_FloodDrain, HeapSim)->Arg(8192)->Arg(131072);
BENCHMARK_TEMPLATE(BM_FloodDrain, CalSim)->Arg(8192)->Arg(131072);

// Self-rescheduling event: the hold model's unit of work. Copyable so it
// fits both std::function (legacy) and the pooled inline closures.
template <class Sim>
struct Rippler {
  Sim* sim;
  Rng* rng;
  std::int64_t* budget;
  void operator()() const {
    if (*budget <= 0) return;
    --*budget;
    sim->ScheduleIn(rng->UniformInt(1, 10'000), *this);
  }
};

template <class Sim>
void BM_Ripple(benchmark::State& state) {
  const int population = static_cast<int>(state.range(0));
  const std::int64_t holds = 1 << 16;
  std::int64_t events = 0;
  for (auto _ : state) {
    Sim sim;
    Rng rng(7);
    std::int64_t budget = holds;
    for (int i = 0; i < population; ++i) {
      sim.ScheduleIn(rng.UniformInt(1, 10'000),
                     Rippler<Sim>{&sim, &rng, &budget});
    }
    events += static_cast<std::int64_t>(sim.Run());
  }
  state.SetItemsProcessed(events);
}
BENCHMARK_TEMPLATE(BM_Ripple, LegacySim)->Arg(64)->Arg(4096)->Arg(65536);
BENCHMARK_TEMPLATE(BM_Ripple, HeapSim)->Arg(64)->Arg(4096)->Arg(65536);
BENCHMARK_TEMPLATE(BM_Ripple, CalSim)->Arg(64)->Arg(4096)->Arg(65536);

template <class Sim>
void BM_SameTimeBurst(benchmark::State& state) {
  const int bursts = 64;
  const int per_burst = static_cast<int>(state.range(0));
  std::int64_t events = 0;
  for (auto _ : state) {
    Sim sim;
    std::int64_t ran = 0;
    for (int b = 0; b < bursts; ++b) {
      const SimTime when = static_cast<SimTime>(b) * 1000;
      for (int i = 0; i < per_burst; ++i) {
        sim.ScheduleAt(when, [&ran] { ++ran; });
      }
    }
    sim.Run();
    benchmark::DoNotOptimize(ran);
    events += ran;
  }
  state.SetItemsProcessed(events);
}
BENCHMARK_TEMPLATE(BM_SameTimeBurst, LegacySim)->Arg(256);
BENCHMARK_TEMPLATE(BM_SameTimeBurst, HeapSim)->Arg(256);
BENCHMARK_TEMPLATE(BM_SameTimeBurst, CalSim)->Arg(256);

// The batch-rekey shape the paper's workload actually produces: a flash
// crowd assembles first — every member arms a session timer across a 48ms
// join window — and then the key server's rekey multicast turns the
// simulation into a sustained storm of deliveries, forwards, and retries:
// a constant 128k-event population rippling through a rolling ~82ms retry
// horizon, several events per microsecond tick.
//
// That density regime shift is what separates the three queues:
//
//  * StaticCalSim tunes its day width only at occupancy-triggered
//    retunes. The last one fires mid-assembly (the fill doubles the ring
//    until it matches the population), deriving width 2 from a snapshot
//    of the join spread — and then the storm holds the population
//    *constant* (each delivery schedules its successor), occupancy never
//    leaves the efficient band, and that width is frozen: every day holds
//    two distinct instants, so roughly half of all storm inserts walk the
//    earlier instant's whole sorted chain to reach their slot. A cache
//    miss per walked node, forever.
//
//  * CalSim samples the inter-pop gap histogram, sees a sub-microsecond
//    quartile gap, and collapses the days to width 1: single-instant
//    buckets, where every insert is a pure FIFO tail append (same when,
//    rising seq) and the chain walk disappears.
//
//  * LegacySim pays the population, not the geometry: a 128k-deep binary
//    heap of std::function, with every closure boxed on the heap because
//    it carries a 64-byte delivery record (packet header, key snapshot,
//    candidate list stand-in). The record fits the pooled simulators'
//    inline closure storage — the allocation the event pool exists to
//    avoid is the one std::function cannot.
struct DeliveryRecord {
  std::uint64_t words[8];
};

template <class Sim>
struct StormEvent {
  Sim* sim;
  Rng* rng;
  std::int64_t* budget;
  DeliveryRecord rec;
  void operator()() const {
    if (*budget <= 0) return;
    --*budget;
    // Forward/retry continuation: rekey traffic keeps the whole event
    // population inside a rolling ~82ms window, ~3 events per tick.
    sim->ScheduleIn(rng->UniformInt(1, 81'920), *this);
  }
};

template <class Sim>
void BM_BurstyRekey(benchmark::State& state) {
  const int members = static_cast<int>(state.range(0));
  const std::int64_t storm_events = std::int64_t{1} << 20;
  std::int64_t events = 0;
  for (auto _ : state) {
    Sim sim;
    Rng rng(13);
    std::int64_t budget = storm_events;
    // Flash-crowd assembly: one session timer per member across the join
    // window. The 48ms spread is what the static queue's last growth
    // retune snapshots its day width from.
    for (int i = 0; i < members; ++i) {
      DeliveryRecord rec{};
      rec.words[0] = static_cast<std::uint64_t>(i);
      sim.ScheduleIn(rng.UniformInt(1, 48'000),
                     StormEvent<Sim>{&sim, &rng, &budget, rec});
    }
    events += static_cast<std::int64_t>(sim.Run());
  }
  state.SetItemsProcessed(events);
}
BENCHMARK_TEMPLATE(BM_BurstyRekey, LegacySim)->Arg(131072);
BENCHMARK_TEMPLATE(BM_BurstyRekey, HeapSim)->Arg(131072);
BENCHMARK_TEMPLATE(BM_BurstyRekey, StaticCalSim)->Arg(131072);
BENCHMARK_TEMPLATE(BM_BurstyRekey, CalSim)->Arg(131072);

}  // namespace
}  // namespace tmesh

BENCHMARK_MAIN();
