// Replica-throughput scaling of the ReplicaRunner on the Fig. 8 workload
// (rekey-path latency, GT-ITM, 1024 users). For each thread count in the
// sweep the driver runs the same `--runs` replicas through the figure
// pipeline into a string sink, reports wall-clock, replicas/sec, and the
// speedup over the sequential (--threads=1) pass, and verifies that the
// figure bytes are identical to the sequential output — the determinism
// contract the tier1 replica_runner_test pins on a smaller workload.
//
// Defaults keep the sweep tractable on small machines (--users=1024
// --runs=4, threads 1/2/4/8 capped at 2 x hardware concurrency; --full
// lifts the cap and uses 8 runs). BENCH_replica_runs.json records a
// measured curve.
#include <chrono>
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tmesh;
  using namespace tmesh::bench;
  constexpr FigureSpec kSpec{
      "micro_replica_scaling",
      "ReplicaRunner throughput scaling (wall-clock; not recorded)", 140,
      /*recorded=*/false};
  Flags f = Flags::Parse(kSpec, argc, argv);
  const int users = f.users > 0 ? f.users : 1024;
  const int runs = f.runs > 0 ? f.runs : (f.full ? 8 : 4);

  std::vector<int> sweep;
  const int hw = ReplicaRunner::HardwareThreads();
  for (int t : {1, 2, 4, 8}) {
    if (f.full || t <= 2 * hw) sweep.push_back(t);
  }
  if (f.threads > 0) sweep = {1, f.threads};

  std::printf("# replica scaling: Fig 8 workload (GT-ITM, %d users), %d "
              "replicas per point\n"
              "# hardware concurrency: %d\n",
              users, runs, hw);
  std::printf("%10s%14s%16s%12s%12s\n", "threads", "wall_sec",
              "replicas_per_s", "speedup", "identical");

  std::string baseline;
  double base_sec = 0.0;
  for (int t : sweep) {
    LatencyFigureConfig cfg;
    cfg.title = "Fig 8: rekey path latency, GT-ITM, " +
                std::to_string(users) + " joins";
    cfg.topo = Topo::kGtItm;
    cfg.users = users;
    cfg.data_path = false;
    cfg.runs = runs;
    cfg.seed = f.seed;
    cfg.threads = t;
    cfg.session = PaperSession();

    std::ostringstream sink;
    const auto t0 = std::chrono::steady_clock::now();
    PrintLatencyFigure(sink, cfg);
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();

    bool identical = true;
    if (t == sweep.front()) {
      baseline = sink.str();
      base_sec = sec;
    } else {
      identical = sink.str() == baseline;
    }
    std::printf("%10d%14.2f%16.2f%11.2fx%12s\n", t, sec, runs / sec,
                base_sec / sec, identical ? "yes" : "NO");
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: --threads=%d output diverged from --threads=%d\n",
                   t, sweep.front());
      return 1;
    }
  }
  std::printf("\n# expected: near-linear speedup up to the number of "
              "physical cores (replicas\n# share nothing but the config); "
              "identical must read 'yes' on every row.\n");
  return 0;
}
