// Fig. 7: rekey path latency on the GT-ITM topology, 256 user joins.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tmesh::bench;
  constexpr FigureSpec kSpec{"fig07_rekey_latency_gtitm256",
                             "Fig. 7: rekey path latency, GT-ITM 256", 20};
  Flags f = Flags::Parse(kSpec, argc, argv);
  Artifacts art(f);
  int runs = f.runs > 0 ? f.runs : (f.full ? 20 : 5);
  int users = f.users > 0 ? f.users : 256;
  RunLatencyFigure("Fig 7: rekey path latency, GT-ITM, " +
                       std::to_string(users) + " joins",
                   Topo::kGtItm, users, /*data_path=*/false, runs, f.seed,
                   f.Threads(), f.step, f.SimOptions(), &art, f.psim);
  return 0;
}
