// Fig. 11: data path latency on the GT-ITM topology, 1024 user joins.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tmesh::bench;
  constexpr FigureSpec kSpec{"fig11_data_latency_gtitm1024",
                             "Fig. 11: data path latency, GT-ITM 1024", 60};
  Flags f = Flags::Parse(kSpec, argc, argv);
  Artifacts art(f);
  int runs = f.runs > 0 ? f.runs : (f.full ? 10 : 2);
  int users = f.users > 0 ? f.users : 1024;
  RunLatencyFigure("Fig 11: data path latency, GT-ITM, " +
                       std::to_string(users) + " joins",
                   Topo::kGtItm, users, /*data_path=*/true, runs, f.seed,
                   f.Threads(), f.step, f.SimOptions(), &art, f.psim);
  return 0;
}
