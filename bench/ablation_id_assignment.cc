// Ablation (§2.6): how much of the splitting scheme's efficiency comes from
// the proximity-aware user-ID assignment?
//
// "If each user randomly chooses its ID, then each user has a random
// position in the ID tree ... their shared encryptions have to be
// duplicated once the multicast starts." We compare three ID assignment
// policies over the same workload:
//   distributed  — the paper's 4-step protocol (§3.1)
//   centralized  — the §5 GNP-style server-side variant (no probe traffic)
//   random       — location-independent IDs (PRR/Pastry/Tapestry style)
// and report rekey latency (RDP), split-rekey bandwidth, and join cost.
#include <cstdio>
#include <iterator>
#include <string>

#include "bench_common.h"
#include "core/tmesh.h"
#include "sim/sim_metrics.h"
#include "topology/gnp.h"

int main(int argc, char** argv) {
  using namespace tmesh;
  using namespace tmesh::bench;
  constexpr FigureSpec kSpec{"ablation_id_assignment",
                             "Ablation: proximity-aware vs random user IDs",
                             110};
  Flags f = Flags::Parse(kSpec, argc, argv);
  Artifacts art(f);
  const int users = f.users > 0 ? f.users : 226;
  const int churn = users / 8;

  struct Mode {
    const char* name;
    bool centralized;
    bool random;
    bool gnp;
  };
  const Mode modes[] = {{"distributed", false, false, false},
                        {"centralized", true, false, false},
                        {"gnp-coords", true, false, true},
                        {"random-ids", false, true, false}};

  std::printf("# Ablation: ID assignment policy (PlanetLab, %d users, %d "
              "leaves in the measured interval)\n",
              users, churn);
  std::printf("%-14s%10s%10s%12s%12s%12s%12s%12s%12s\n", "policy", "rdp_p50",
              "rdp_p95", "rekey_cost", "encs_avg", "encs_max", "srv_fanout",
              "stress_max", "quer/join");

  // One replica per policy; every replica builds its own network, session,
  // and (via the worker) simulator, so the four policies run concurrently.
  // Each returns its formatted table row; rows print in policy order, and
  // per-policy metrics merge in the same order.
  struct RowOut {
    std::string row;
    MetricsRegistry reg;
  };
  ReplicaRunner runner(f.Threads(), f.SimOptions());
  runner.Run(
      static_cast<int>(std::size(modes)),
      [&](ReplicaRunner::Replica& rep) {
        const Mode& mode = modes[rep.index];
        auto net = MakeNetwork(Topo::kPlanetLab, users + 1, f.seed);
        std::unique_ptr<GnpModel> gnp;
        if (mode.gnp) {
          GnpModel::Params gp;
          gp.seed = f.seed + 7;
          gnp = std::make_unique<GnpModel>(*net, gp);
        }
        SessionConfig cfg = PaperSession();
        cfg.with_nice = false;
        cfg.centralized_assignment = mode.centralized;
        cfg.random_ids = mode.random;
        cfg.assign.gnp = gnp.get();
        cfg.seed = f.seed * 5 + 1;
        GroupSession session(*net, 0, cfg);
        Rng rng(f.seed * 11 + 2);

        double queries = 0;
        for (HostId h = 1; h <= users; ++h) {
          IdAssignStats stats;
          TMESH_CHECK_MSG(session.Join(h, h, &stats).has_value(),
                          "ID space exhausted");
          queries += stats.queries;
        }
        session.FlushRekeyState();
        for (int i = 0; i < churn; ++i) {
          auto victim = session.directory().RandomAliveMember(rng);
          session.Leave(*victim);
        }
        RekeyMessage msg = session.key_tree().Rekey();

        RowOut out;
        TMesh tmesh(session.directory(), rep.sim);
        if (art.metrics() != nullptr) tmesh.SetMetrics(&out.reg);
        TMesh::Options opts;
        opts.split = true;
        auto res = tmesh.MulticastRekey(msg, opts);
        if (art.metrics() != nullptr) {
          tmesh.FlushMetrics();
          ExportSimMetrics(rep.sim, out.reg);
        }

        std::vector<double> rdp, encs, stress;
        int srv_fanout = 0;
        for (const auto& [id, info] : session.directory().members()) {
          (void)id;
          auto h = static_cast<std::size_t>(info.host);
          rdp.push_back(res.member[h].rdp);
          encs.push_back(static_cast<double>(res.member[h].encs_received));
          stress.push_back(static_cast<double>(res.member[h].stress));
          if (res.member[h].forward_level == 1) ++srv_fanout;
        }
        char row[256];
        std::snprintf(row, sizeof(row),
                      "%-14s%10.2f%10.2f%12zu%12.1f%12.0f%12d%12.0f%12.1f\n",
                      mode.name, Percentile(rdp, 50), Percentile(rdp, 95),
                      msg.RekeyCost(), Mean(encs), Percentile(encs, 100),
                      srv_fanout, Percentile(stress, 100), queries / users);
        out.row = row;
        return out;
      },
      [&](int, RowOut&& out) {
        std::fputs(out.row.c_str(), stdout);
        if (art.metrics() != nullptr) art.metrics()->MergeFrom(out.reg);
      });
  std::printf(
      "\n# expected (§2.6): random IDs flatten the ID tree — the rekey "
      "message balloons and the\n# key server must unicast to hundreds of "
      "direct children (srv_fanout), the congestion\n# problem the "
      "proximity scheme exists to avoid; centralized matches distributed "
      "at zero\n# query cost; GNP coordinates (§5) keep grouping quality with zero probes AND zero\n# server-side measurements.\n");
  art.Write();
  return 0;
}
