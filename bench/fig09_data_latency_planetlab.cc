// Fig. 9: data path latency on the PlanetLab topology (random user sends).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tmesh::bench;
  constexpr FigureSpec kSpec{"fig09_data_latency_planetlab",
                             "Fig. 9: data path latency, PlanetLab", 40};
  Flags f = Flags::Parse(kSpec, argc, argv);
  Artifacts art(f);
  int runs = f.runs > 0 ? f.runs : (f.full ? 100 : 10);
  int users = f.users > 0 ? f.users : 226;
  RunLatencyFigure("Fig 9: data path latency, PlanetLab, " +
                       std::to_string(users) + " joins",
                   Topo::kPlanetLab, users, /*data_path=*/true, runs, f.seed,
                   f.Threads(), f.step, f.SimOptions(), &art, f.psim);
  return 0;
}
