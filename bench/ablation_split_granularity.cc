// Ablation (§2.5): splitting granularity.
//
// "An alternative way is to split and re-compose the rekey message at
// packet level, instead of encryption level. In this case, the rekey
// bandwidth overhead would be larger." This bench quantifies the gap:
// encryption-level splitting vs packet-level at several packet sizes vs no
// splitting, for one heavy rekey interval.
#include <cstdio>
#include <iterator>
#include <string>

#include "bench_common.h"
#include "core/tmesh.h"
#include "sim/sim_metrics.h"

int main(int argc, char** argv) {
  using namespace tmesh;
  using namespace tmesh::bench;
  constexpr FigureSpec kSpec{
      "ablation_split_granularity",
      "Ablation: encryption-level vs packet-level splitting", 120};
  Flags f = Flags::Parse(kSpec, argc, argv);
  Artifacts art(f);
  const int users = f.users > 0 ? f.users : 256;

  auto net = MakeNetwork(Topo::kGtItm, users + 1, f.seed);
  SessionConfig cfg = PaperSession();
  cfg.with_nice = false;
  cfg.seed = f.seed * 3 + 1;
  GroupSession session(*net, 0, cfg);
  Rng rng(f.seed * 7 + 5);
  for (HostId h = 1; h <= users; ++h) {
    if (!session.Join(h, h).has_value()) return 1;
  }
  session.FlushRekeyState();
  for (int i = 0; i < users / 4; ++i) {
    auto victim = session.directory().RandomAliveMember(rng);
    session.Leave(*victim);
  }
  RekeyMessage msg = session.key_tree().Rekey();

  std::printf("# Ablation: splitting granularity (GT-ITM, %d users, %d "
              "leaves, rekey message = %zu encryptions)\n",
              users, users / 4, msg.RekeyCost());
  std::printf("%-22s%14s%14s%14s%16s\n", "granularity", "encs_avg",
              "encs_p99", "encs_max", "total_enc_hops");

  struct Variant {
    const char* name;
    bool split;
    int packet;
  };
  const Variant variants[] = {
      {"per-encryption", true, 0},   {"packet=4", true, 4},
      {"packet=16", true, 16},       {"packet=64", true, 64},
      {"no splitting", false, 0},
  };
  // The five variants share the (now immutable) session, directory, and
  // rekey message; each replica reads them and multicasts on its own
  // worker-owned simulator. Concurrent RTT queries against the shared
  // GT-ITM network are safe (its SPT cache is lock-guarded). Rows print in
  // variant order regardless of --threads, and per-variant metrics merge in
  // the same order.
  struct RowOut {
    std::string row;
    MetricsRegistry reg;
  };
  ReplicaRunner runner(f.Threads(), f.SimOptions());
  runner.Run(
      static_cast<int>(std::size(variants)),
      [&](ReplicaRunner::Replica& rep) {
        const Variant& v = variants[rep.index];
        RowOut out;
        TMesh tmesh(session.directory(), rep.sim);
        if (art.metrics() != nullptr) tmesh.SetMetrics(&out.reg);
        TMesh::Options opts;
        opts.split = v.split;
        opts.split_packet_encs = v.packet;
        auto res = tmesh.MulticastRekey(msg, opts);
        if (art.metrics() != nullptr) {
          tmesh.FlushMetrics();
          ExportSimMetrics(rep.sim, out.reg);
        }
        std::vector<double> encs;
        long long hops = 0;
        for (const auto& [id, info] : session.directory().members()) {
          (void)id;
          auto h = static_cast<std::size_t>(info.host);
          encs.push_back(static_cast<double>(res.member[h].encs_received));
          hops += res.member[h].encs_received;
        }
        char row[160];
        std::snprintf(row, sizeof(row), "%-22s%14.1f%14.0f%14.0f%16lld\n",
                      v.name, Mean(encs), Percentile(encs, 99),
                      Percentile(encs, 100), hops);
        out.row = row;
        return out;
      },
      [&](int, RowOut&& out) {
        std::fputs(out.row.c_str(), stdout);
        if (art.metrics() != nullptr) art.metrics()->MergeFrom(out.reg);
      });
  std::printf("\n# expected: bandwidth grows monotonically with packet size, "
              "from the per-encryption\n# optimum toward the no-splitting "
              "ceiling (§2.5).\n");
  art.Write();
  return 0;
}
