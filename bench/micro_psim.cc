// Intra-run scaling of the conservative parallel driver (DESIGN.md §3i) on
// a synthetic host-affine cascade workload. Each arm runs the identical
// workload — per-host event chains with hash-driven local hops and
// cross-host hops whose delay respects the lookahead — once on the
// SequentialHostReference and once on ParallelDriver at each worker count,
// then verifies the (when, seq, host) event history AND the per-host
// accumulators are byte-identical to the sequential pass. The wall-clock
// and events/sec columns are machine-dependent (not recorded);
// BENCH_psim.json records a measured table with the machine caveat.
//
// The workload keeps all mutable state host-partitioned (one accumulator
// and one event counter per host), which is exactly the discipline the
// driver requires of protocol code: a worker only touches state owned by
// hosts of its own partition.
//
// Defaults: 256 hosts x 4 chains x depth 400 (~410k events per arm),
// workers 1/2/4; --users overrides the host count, --runs the chain depth,
// --threads=N narrows the sweep to {N}, --full deepens the chains.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "sim/parallel_driver.h"

namespace {

using tmesh::HostId;
using tmesh::ParallelDriver;
using tmesh::SequentialHostReference;
using tmesh::SimTime;

// splitmix64: the workload's only randomness. Pure function of its input,
// so every arm draws the same hops regardless of execution interleaving.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

constexpr SimTime kLookahead = 1000;  // every cross-host hop delays >= this

// One arm's workload state. Engine is SequentialHostReference or
// ParallelDriver — both expose Now()/ScheduleOnHost()/Run()/history().
template <class Engine>
struct Cascade {
  Engine& eng;
  int hosts;
  int depth_limit;
  std::vector<std::uint64_t> acc;    // per-host: partition-local by design
  std::vector<std::uint64_t> count;  // per-host event counts (no shared sum)

  Cascade(Engine& e, int h, int d)
      : eng(e), hosts(h), depth_limit(d), acc(h, 0), count(h, 0) {}

  void Step(HostId host, std::uint64_t state, int depth) {
    const std::size_t hs = static_cast<std::size_t>(host);
    ++count[hs];
    acc[hs] ^= Mix(state + static_cast<std::uint64_t>(depth));
    if (depth >= depth_limit) return;
    const std::uint64_t r = Mix(state ^ (0xabcdull + depth));
    HostId to = host;
    SimTime delay;
    if (r % 4 == 0) {
      // Cross-host hop: any target, delay >= lookahead (the bound protocol
      // traffic gets from Network::MinCrossHostDelayMs).
      to = static_cast<HostId>((r >> 8) % static_cast<std::uint64_t>(hosts));
      delay = kLookahead + static_cast<SimTime>((r >> 40) % 997);
    } else {
      // Local hop: same host, any delay (zero included) is safe.
      delay = static_cast<SimTime>((r >> 16) % 50);
    }
    eng.ScheduleOnHost(to, eng.Now() + delay,
                       [this, to, r, depth] { Step(to, r, depth + 1); });
  }

  void Seed(int chains) {
    for (HostId h = 0; h < hosts; ++h) {
      for (int c = 0; c < chains; ++c) {
        const std::uint64_t s0 =
            Mix(static_cast<std::uint64_t>(h) * 131 + c);
        const SimTime t0 = static_cast<SimTime>(s0 % 977);
        eng.ScheduleOnHost(h, t0, [this, h, s0] { Step(h, s0, 0); });
      }
    }
  }

  std::uint64_t Total() const {
    std::uint64_t n = 0;
    for (std::uint64_t c : count) n += c;
    return n;
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace tmesh;
  using namespace tmesh::bench;
  constexpr FigureSpec kSpec{
      "micro_psim",
      "Parallel-driver intra-run scaling (wall-clock; not recorded)", 150,
      /*recorded=*/false};
  Flags f = Flags::Parse(kSpec, argc, argv);
  const int hosts = f.users > 0 ? f.users : 256;
  const int depth = f.runs > 0 ? f.runs : (f.full ? 2000 : 400);
  const int chains = 4;

  std::vector<int> sweep{1, 2, 4};
  if (f.threads > 0) sweep = {f.threads};

  std::printf("# parallel-driver scaling: %d hosts x %d chains x depth %d, "
              "lookahead=%lld ticks\n"
              "# hardware concurrency: %u\n",
              hosts, chains, depth,
              static_cast<long long>(kLookahead),
              std::thread::hardware_concurrency());
  std::printf("%10s%14s%16s%12s%12s\n", "arm", "wall_sec", "events_per_s",
              "speedup", "identical");

  // Sequential reference arm.
  SequentialHostReference ref;
  Cascade<SequentialHostReference> ref_load(ref, hosts, depth);
  ref_load.Seed(chains);
  const auto r0 = std::chrono::steady_clock::now();
  ref.Run();
  const auto r1 = std::chrono::steady_clock::now();
  const double ref_sec = std::chrono::duration<double>(r1 - r0).count();
  const double total = static_cast<double>(ref_load.Total());
  std::printf("%10s%14.3f%16.0f%11.2fx%12s\n", "seq", ref_sec,
              total / ref_sec, 1.0, "ref");

  for (int w : sweep) {
    ParallelDriver::Options opts;
    opts.workers = w;
    opts.hosts = hosts;
    opts.lookahead = kLookahead;
    ParallelDriver driver(opts);
    driver.EnableHistory(true);
    Cascade<ParallelDriver> load(driver, hosts, depth);
    load.Seed(chains);
    const auto t0 = std::chrono::steady_clock::now();
    driver.Run();
    const auto t1 = std::chrono::steady_clock::now();
    const double sec = std::chrono::duration<double>(t1 - t0).count();

    const bool identical = driver.history() == ref.history() &&
                           load.acc == ref_load.acc &&
                           load.count == ref_load.count;
    char arm[16];
    std::snprintf(arm, sizeof(arm), "W=%d", w);
    std::printf("%10s%14.3f%16.0f%11.2fx%12s\n", arm, sec, total / sec,
                ref_sec / sec, identical ? "yes" : "NO");
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: W=%d event history or per-host state diverged "
                   "from the sequential reference\n",
                   w);
      return 1;
    }
    const ParallelDriver::Stats st = driver.stats();
    std::printf("#           windows=%llu cross_partition_sends=%llu\n",
                static_cast<unsigned long long>(st.windows),
                static_cast<unsigned long long>(st.cross_partition_sends));
  }
  std::printf("\n# identical must read 'yes' on every row at every W — the "
              "driver trades\n# wall-clock for cores, never event order. "
              "Speedup needs real cores; on a\n# single-core container "
              "expect <= 1.00x with identity intact.\n");
  return 0;
}
