// Shared machinery for the figure-reproduction drivers.
//
// Every fig* binary reproduces one figure of the paper's evaluation as a
// text table (see EXPERIMENTS.md for the mapping and the expected shapes).
// Common flags:
//   --runs=N     number of simulation runs to aggregate (paper run counts
//                are larger; defaults here keep the full bench suite fast)
//   --seed=N     master seed
//   --users=N    override the population where applicable
//   --threads=N  replica worker threads (default: hardware concurrency;
//                1 runs the old sequential loop). Stdout is byte-identical
//                for every N — only wall-clock and the ordering of stderr
//                progress notes change.
//   --full       paper-scale settings
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <limits>
#include <memory>
#include <string>

#include "metrics/report.h"
#include "protocols/latency_figure.h"
#include "sim/replica_runner.h"
#include "topology/gtitm.h"
#include "topology/planetlab.h"

namespace tmesh::bench {

struct Flags {
  int runs = -1;          // -1: driver default
  int users = -1;
  int threads = 0;        // 0: hardware concurrency
  std::uint64_t seed = 1;
  bool full = false;      // paper-scale settings

  // Replica pool width after defaulting.
  int Threads() const {
    return threads > 0 ? threads : ReplicaRunner::HardwareThreads();
  }

  static void Usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--runs=N] [--users=N] [--seed=N] [--threads=N] "
                 "[--full]\n"
                 "  --threads=N  replica worker threads (default: hardware "
                 "concurrency;\n"
                 "               1 = sequential; stdout is identical for "
                 "every N)\n",
                 argv0);
    std::exit(2);
  }

  // Strict numeric parse: the whole token must be a decimal number in
  // [min_v, max_v]. (std::atoi silently yielded 0 for malformed input,
  // which turned e.g. --runs=1O into a zero-run bench.)
  static long long ParseNum(const char* argv0, const char* flag,
                            const char* text, long long min_v,
                            long long max_v) {
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || v < min_v ||
        v > max_v) {
      std::fprintf(stderr, "%s: invalid value for %s: '%s'\n", argv0, flag,
                   text);
      Usage(argv0);
    }
    return v;
  }

  static Flags Parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--runs=", 7) == 0) {
        f.runs = static_cast<int>(
            ParseNum(argv[0], "--runs", a + 7, 1, 1 << 20));
      } else if (std::strncmp(a, "--users=", 8) == 0) {
        f.users = static_cast<int>(
            ParseNum(argv[0], "--users", a + 8, 2, 1 << 20));
      } else if (std::strncmp(a, "--threads=", 10) == 0) {
        f.threads = static_cast<int>(
            ParseNum(argv[0], "--threads", a + 10, 1, 4096));
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        f.seed = static_cast<std::uint64_t>(ParseNum(
            argv[0], "--seed", a + 7, 0,
            std::numeric_limits<long long>::max()));
      } else if (std::strcmp(a, "--full") == 0) {
        f.full = true;
      } else {
        Usage(argv[0]);
      }
    }
    return f;
  }
};

using Topo = FigureTopology;

// The paper's T-mesh defaults: D=5, B=256, K=4, P=10, F=90,
// R=(150,30,9,3) ms, NICE k=3.
inline SessionConfig PaperSession() {
  SessionConfig s;
  s.group = GroupParams{5, 256, 4};
  s.assign.collect_target = 10;
  s.assign.percentile = 90.0;
  s.assign.thresholds_ms = {150.0, 30.0, 9.0, 3.0};
  s.nice.k = 3;
  return s;
}

inline std::unique_ptr<Network> MakeNetwork(Topo topo, int hosts,
                                            std::uint64_t seed) {
  return MakeFigureNetwork(topo, hosts, seed);
}

// Runs a Figs. 6-11 style latency figure on the replica pool; see
// protocols/latency_figure.h for the workload and the determinism contract.
inline void RunLatencyFigure(const std::string& title, Topo topo, int users,
                             bool data_path, int runs, std::uint64_t seed,
                             int threads) {
  LatencyFigureConfig cfg;
  cfg.title = title;
  cfg.topo = topo;
  cfg.users = users;
  cfg.data_path = data_path;
  cfg.runs = runs;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.session = PaperSession();
  cfg.progress = true;
  PrintLatencyFigure(std::cout, cfg);
}

}  // namespace tmesh::bench
