// Shared machinery for the figure-reproduction drivers.
//
// Every fig* binary reproduces one figure of the paper's evaluation as a
// text table (see EXPERIMENTS.md for the mapping and the expected shapes).
// Each binary registers a FigureSpec {name, title, order, recorded} and
// parses the one shared flag surface, so usage text, validation, and the
// machine-readable --spec handshake are identical across the suite.
// scripts/regen_experiments.sh discovers the benches by probing every
// build/bench executable with --spec — no hard-coded list to drift.
//
// Common flags:
//   --runs=N     number of simulation runs to aggregate (paper run counts
//                are larger; defaults here keep the full bench suite fast)
//   --seed=N     master seed
//   --users=N    override the population where applicable
//   --threads=N  replica worker threads (default: hardware concurrency;
//                1 runs the old sequential loop). Stdout is byte-identical
//                for every N — only wall-clock and the ordering of stderr
//                progress notes change.
//   --step=N     drive simulator drains in RunFor slices of N events
//                (0 = monolithic). Stdout is byte-identical for every N.
//   --psim-threads=N
//                drain each replica's multicast on the conservative
//                parallel driver with N workers (latency figures only;
//                0 = the sequential simulator). Stdout is byte-identical
//                for every N — the knob trades wall-clock for cores, never
//                numbers. See DESIGN.md §3i.
//   --discipline=calendar|heap
//                event-queue discipline for every simulator the bench
//                constructs. Stdout is byte-identical for either.
//   --static-calendar
//                disable the calendar queue's adaptive epoch retuning
//                (geometry only; stdout is byte-identical). The
//                chunked-execution acceptance sweep drives every bench
//                across step x discipline x retuning and diffs the output.
//   --metrics-json=PATH
//                write the bench's metrics-registry snapshot (counters,
//                gauges, histograms — see src/metrics/registry.h) to PATH
//                as JSON. Stdout is byte-identical with or without it.
//   --trace-json=PATH
//                write a chrome://tracing span dump of replica 0's message
//                flow to PATH (latency figures only; others write an empty
//                trace). Stdout is byte-identical with or without it.
//   --full       paper-scale settings
//   --spec       print "order<TAB>recorded<TAB>name<TAB>title" and exit 0
//                (the regen-script discovery handshake)
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <string>

#include "metrics/registry.h"
#include "metrics/report.h"
#include "metrics/trace.h"
#include "protocols/latency_figure.h"
#include "sim/replica_runner.h"
#include "topology/gtitm.h"
#include "topology/planetlab.h"

namespace tmesh::bench {

// One entry in the bench registry. `order` fixes the position in
// bench_output.txt (EXPERIMENTS.md order); `recorded` is false for benches
// whose output is wall-clock-dependent (they are smoke-run, not recorded).
struct FigureSpec {
  const char* name;   // binary name, as built under build/bench/
  const char* title;  // one-line description, shown in usage and --spec
  int order = 0;
  bool recorded = true;
};

struct Flags {
  int runs = -1;          // -1: driver default
  int users = -1;
  int threads = 0;        // 0: hardware concurrency
  int psim = 0;           // parallel-driver workers; 0: sequential drains
  std::size_t step = 0;   // RunFor slice size; 0: monolithic drains
  std::uint64_t seed = 1;
  bool full = false;      // paper-scale settings
  QueueDiscipline discipline = QueueDiscipline::kCalendar;
  bool adaptive_retune = true;
  std::string metrics_json;  // empty: no metrics artifact
  std::string trace_json;    // empty: no trace artifact

  // Replica pool width after defaulting.
  int Threads() const {
    return threads > 0 ? threads : ReplicaRunner::HardwareThreads();
  }

  // Construction options for every Simulator the bench builds (directly or
  // through ReplicaRunner workers). Queue geometry cannot reorder events,
  // so output is byte-identical for every combination.
  Simulator::Options SimOptions() const {
    return Simulator::Options{.discipline = discipline,
                              .adaptive_retune = adaptive_retune};
  }

  static void Usage(const FigureSpec& spec, const char* argv0) {
    std::fprintf(stderr,
                 "%s — %s\n"
                 "usage: %s [--runs=N] [--users=N] [--seed=N] [--threads=N] "
                 "[--step=N] [--full]\n"
                 "  --threads=N  replica worker threads (default: hardware "
                 "concurrency;\n"
                 "               1 = sequential; stdout is identical for "
                 "every N)\n"
                 "  --step=N     drive simulator drains in RunFor slices of "
                 "N events\n"
                 "               (0 = monolithic; stdout is identical for "
                 "every N)\n"
                 "  --psim-threads=N  drain each replica on the parallel "
                 "driver with N\n"
                 "               workers (0 = sequential; stdout is "
                 "identical for every N)\n"
                 "  --discipline=calendar|heap  event-queue discipline "
                 "(identical stdout)\n"
                 "  --static-calendar  disable adaptive calendar retuning "
                 "(identical stdout)\n"
                 "  --metrics-json=PATH  write the metrics-registry JSON "
                 "snapshot to PATH\n"
                 "  --trace-json=PATH    write a chrome://tracing span dump "
                 "to PATH\n"
                 "  --spec       print the registry line and exit\n",
                 spec.name, spec.title, argv0);
    std::exit(2);
  }

  // Strict numeric parse: the whole token must be a decimal number in
  // [min_v, max_v]. (std::atoi silently yielded 0 for malformed input,
  // which turned e.g. --runs=1O into a zero-run bench.)
  static long long ParseNum(const char* argv0, const char* flag,
                            const char* text, long long min_v,
                            long long max_v) {
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || v < min_v ||
        v > max_v) {
      std::fprintf(stderr, "%s: invalid value for %s: '%s'\n", argv0, flag,
                   text);
      std::exit(2);
    }
    return v;
  }

  static Flags Parse(const FigureSpec& spec, int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--spec") == 0) {
        // Machine-readable registry line; regen_experiments.sh probes every
        // bench executable with this to discover name/order/recorded.
        std::printf("%d\t%d\t%s\t%s\n", spec.order, spec.recorded ? 1 : 0,
                    spec.name, spec.title);
        std::exit(0);
      } else if (std::strncmp(a, "--runs=", 7) == 0) {
        f.runs = static_cast<int>(
            ParseNum(argv[0], "--runs", a + 7, 1, 1 << 20));
      } else if (std::strncmp(a, "--users=", 8) == 0) {
        f.users = static_cast<int>(
            ParseNum(argv[0], "--users", a + 8, 2, 1 << 20));
      } else if (std::strncmp(a, "--threads=", 10) == 0) {
        f.threads = static_cast<int>(
            ParseNum(argv[0], "--threads", a + 10, 1, 4096));
      } else if (std::strncmp(a, "--psim-threads=", 15) == 0) {
        f.psim = static_cast<int>(
            ParseNum(argv[0], "--psim-threads", a + 15, 0, 256));
      } else if (std::strncmp(a, "--step=", 7) == 0) {
        f.step = static_cast<std::size_t>(
            ParseNum(argv[0], "--step", a + 7, 0, 1 << 30));
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        f.seed = static_cast<std::uint64_t>(ParseNum(
            argv[0], "--seed", a + 7, 0,
            std::numeric_limits<long long>::max()));
      } else if (std::strncmp(a, "--discipline=", 13) == 0) {
        if (std::strcmp(a + 13, "calendar") == 0) {
          f.discipline = QueueDiscipline::kCalendar;
        } else if (std::strcmp(a + 13, "heap") == 0) {
          f.discipline = QueueDiscipline::kBinaryHeap;
        } else {
          Usage(spec, argv[0]);
        }
      } else if (std::strcmp(a, "--static-calendar") == 0) {
        f.adaptive_retune = false;
      } else if (std::strncmp(a, "--metrics-json=", 15) == 0) {
        f.metrics_json = a + 15;
        if (f.metrics_json.empty()) Usage(spec, argv[0]);
      } else if (std::strncmp(a, "--trace-json=", 13) == 0) {
        f.trace_json = a + 13;
        if (f.trace_json.empty()) Usage(spec, argv[0]);
      } else if (std::strcmp(a, "--full") == 0) {
        f.full = true;
      } else {
        Usage(spec, argv[0]);
      }
    }
    return f;
  }
};

// Owns the registry and tracer a bench threads through its experiment
// configs when --metrics-json / --trace-json are set. The accessors return
// null when the corresponding flag is absent, which keeps the experiment
// hot paths untouched and the text output byte-identical either way.
// Call Write() after the tables are printed to emit the artifacts.
class Artifacts {
 public:
  explicit Artifacts(const Flags& f)
      : metrics_path_(f.metrics_json), trace_path_(f.trace_json) {}

  MetricsRegistry* metrics() {
    return metrics_path_.empty() ? nullptr : &registry_;
  }
  MessageTracer* tracer() { return trace_path_.empty() ? nullptr : &tracer_; }

  void Write() {
    if (!metrics_path_.empty()) {
      std::ofstream os(metrics_path_);
      TMESH_CHECK_MSG(os.good(), "cannot open --metrics-json path");
      registry_.WriteJson(os);
      os << "\n";
      TMESH_CHECK_MSG(os.good(), "write to --metrics-json path failed");
    }
    if (!trace_path_.empty()) {
      std::ofstream os(trace_path_);
      TMESH_CHECK_MSG(os.good(), "cannot open --trace-json path");
      tracer_.WriteChromeTrace(os);
      os << "\n";
      TMESH_CHECK_MSG(os.good(), "write to --trace-json path failed");
    }
  }

 private:
  std::string metrics_path_, trace_path_;
  MetricsRegistry registry_;
  MessageTracer tracer_;
};

using Topo = FigureTopology;

// The paper's T-mesh defaults: D=5, B=256, K=4, P=10, F=90,
// R=(150,30,9,3) ms, NICE k=3.
inline SessionConfig PaperSession() {
  SessionConfig s;
  s.group = GroupParams{5, 256, 4};
  s.assign.collect_target = 10;
  s.assign.percentile = 90.0;
  s.assign.thresholds_ms = {150.0, 30.0, 9.0, 3.0};
  s.nice.k = 3;
  return s;
}

inline std::unique_ptr<Network> MakeNetwork(Topo topo, int hosts,
                                            std::uint64_t seed) {
  return MakeFigureNetwork(topo, hosts, seed);
}

// Runs a Figs. 6-11 style latency figure on the replica pool; see
// protocols/latency_figure.h for the workload and the determinism contract.
inline void RunLatencyFigure(const std::string& title, Topo topo, int users,
                             bool data_path, int runs, std::uint64_t seed,
                             int threads, std::size_t step = 0,
                             const Simulator::Options& sim_options = {},
                             Artifacts* artifacts = nullptr,
                             int psim_threads = 0) {
  LatencyFigureConfig cfg;
  cfg.title = title;
  cfg.topo = topo;
  cfg.users = users;
  cfg.data_path = data_path;
  cfg.runs = runs;
  cfg.seed = seed;
  cfg.threads = threads;
  cfg.session = PaperSession();
  cfg.progress = true;
  cfg.step_events = step;
  cfg.sim_options = sim_options;
  cfg.psim_workers = psim_threads;
  if (artifacts != nullptr) {
    cfg.metrics = artifacts->metrics();
    cfg.tracer = artifacts->tracer();
  }
  PrintLatencyFigure(std::cout, cfg);
  if (artifacts != nullptr) artifacts->Write();
}

}  // namespace tmesh::bench
