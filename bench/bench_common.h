// Shared machinery for the figure-reproduction drivers.
//
// Every fig* binary reproduces one figure of the paper's evaluation as a
// text table (see EXPERIMENTS.md for the mapping and the expected shapes).
// Common flags:
//   --runs=N   number of simulation runs to aggregate (paper run counts are
//              larger; defaults here keep the full bench suite fast)
//   --seed=N   master seed
//   --users=N  override the population where applicable
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "metrics/report.h"
#include "protocols/latency_experiment.h"
#include "topology/gtitm.h"
#include "topology/planetlab.h"

namespace tmesh::bench {

struct Flags {
  int runs = -1;          // -1: driver default
  int users = -1;
  std::uint64_t seed = 1;
  bool full = false;      // paper-scale settings

  static Flags Parse(int argc, char** argv) {
    Flags f;
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strncmp(a, "--runs=", 7) == 0) {
        f.runs = std::atoi(a + 7);
      } else if (std::strncmp(a, "--users=", 8) == 0) {
        f.users = std::atoi(a + 8);
      } else if (std::strncmp(a, "--seed=", 7) == 0) {
        f.seed = static_cast<std::uint64_t>(std::atoll(a + 7));
      } else if (std::strcmp(a, "--full") == 0) {
        f.full = true;
      } else {
        std::fprintf(stderr,
                     "usage: %s [--runs=N] [--users=N] [--seed=N] [--full]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return f;
  }
};

enum class Topo { kPlanetLab, kGtItm };

// The paper's T-mesh defaults: D=5, B=256, K=4, P=10, F=90,
// R=(150,30,9,3) ms, NICE k=3.
inline SessionConfig PaperSession() {
  SessionConfig s;
  s.group = GroupParams{5, 256, 4};
  s.assign.collect_target = 10;
  s.assign.percentile = 90.0;
  s.assign.thresholds_ms = {150.0, 30.0, 9.0, 3.0};
  s.nice.k = 3;
  return s;
}

inline std::unique_ptr<Network> MakeNetwork(Topo topo, int hosts,
                                            std::uint64_t seed) {
  if (topo == Topo::kPlanetLab) {
    PlanetLabParams p;
    p.hosts = hosts;
    p.seed = seed;
    return std::make_unique<PlanetLabNetwork>(p);
  }
  GtItmParams p;
  p.seed = seed;
  return std::make_unique<GtItmNetwork>(p, hosts, seed * 31 + 1);
}

// Runs a Figs. 6-11 style latency figure: `runs` simulations, then three
// inverse-CDF tables (user stress / application-layer delay / RDP) with
// cross-run mean and 95th percentile, T-mesh vs NICE (Fig. 6
// presentation), plus the headline RDP fractions the paper quotes.
inline void RunLatencyFigure(const std::string& title, Topo topo, int users,
                             bool data_path, int runs, std::uint64_t seed) {
  RankedRunStats t_stress, t_delay, t_rdp, n_stress, n_delay, n_rdp;
  std::vector<double> t_rdp_all, n_rdp_all;

  for (int run = 0; run < runs; ++run) {
    std::uint64_t run_seed = seed + static_cast<std::uint64_t>(run) * 1000003;
    auto net = MakeNetwork(topo, users + 1, run_seed);
    LatencyRunConfig cfg;
    cfg.users = users;
    cfg.data_path = data_path;
    cfg.join_window_s = topo == Topo::kPlanetLab ? 452.0 : 2048.0;
    cfg.session = PaperSession();
    auto res = RunLatencyExperiment(*net, cfg, run_seed * 7 + 13);
    t_stress.AddRun(res.tmesh.stress);
    t_delay.AddRun(res.tmesh.delay_ms);
    t_rdp.AddRun(res.tmesh.rdp);
    n_stress.AddRun(res.nice.stress);
    n_delay.AddRun(res.nice.delay_ms);
    n_rdp.AddRun(res.nice.rdp);
    t_rdp_all.insert(t_rdp_all.end(), res.tmesh.rdp.begin(),
                     res.tmesh.rdp.end());
    n_rdp_all.insert(n_rdp_all.end(), res.nice.rdp.begin(),
                     res.nice.rdp.end());
    std::fprintf(stderr, "  run %d/%d done\n", run + 1, runs);
  }

  auto fr = DefaultFractions();
  PrintRankedTable(std::cout, title + " (a): user stress", fr,
                   {{"T-mesh", &t_stress}, {"NICE", &n_stress}});
  std::cout << "\n";
  PrintRankedTable(std::cout, title + " (b): application-layer delay [ms]",
                   fr, {{"T-mesh", &t_delay}, {"NICE", &n_delay}});
  std::cout << "\n";
  PrintRankedTable(std::cout, title + " (c): relative delay penalty (RDP)",
                   fr, {{"T-mesh", &t_rdp}, {"NICE", &n_rdp}});

  InverseCdf tc(t_rdp_all), nc(n_rdp_all);
  std::printf(
      "\n# headline: T-mesh RDP<2: %.0f%%, RDP<3: %.0f%%  |  NICE RDP<2: "
      "%.0f%%, RDP<3: %.0f%%\n"
      "#   (paper, Fig. 6: T-mesh 78%% / 95%%; NICE 23%% / 47%%)\n",
      100 * tc.FractionAtOrBelow(2.0), 100 * tc.FractionAtOrBelow(3.0),
      100 * nc.FractionAtOrBelow(2.0), 100 * nc.FractionAtOrBelow(3.0));
}

}  // namespace tmesh::bench
