// Fig. 13: rekey bandwidth overhead under the seven protocols of Table 2.
// Inverse CDFs (tail) of encryptions received per user, forwarded per user,
// and carried per network link, after a rekey interval with 256 joins and
// 256 leaves in a 1024-user group on GT-ITM.
#include <cstdio>

#include "bench_common.h"
#include "protocols/rekey_protocols.h"

int main(int argc, char** argv) {
  using namespace tmesh;
  using namespace tmesh::bench;
  constexpr FigureSpec kSpec{
      "fig13_rekey_bandwidth",
      "Fig. 13: rekey bandwidth under the Table-2 protocols", 80};
  Flags f = Flags::Parse(kSpec, argc, argv);
  Artifacts art(f);

  BandwidthConfig cfg;
  cfg.metrics = art.metrics();
  cfg.seed = f.seed;
  cfg.initial_users = f.users > 0 ? f.users : 1024;
  cfg.batch_joins = cfg.initial_users / 4;
  cfg.batch_leaves = cfg.initial_users / 4;
  cfg.session = PaperSession();
  cfg.step_events = f.step;
  cfg.sim_options = f.SimOptions();

  std::fprintf(stderr, "building %d-user group + %d joins/%d leaves...\n",
               cfg.initial_users, cfg.batch_joins, cfg.batch_leaves);
  RekeyBandwidthExperiment exp(cfg);
  auto reports = exp.Run();

  std::printf("# Fig 13: rekey bandwidth overhead; %d users, %d joins + %d "
              "leaves in one interval\n",
              cfg.initial_users, cfg.batch_joins, cfg.batch_leaves);
  for (const auto& r : reports) {
    std::printf("#   %-4s rekey message: %zu encryptions\n",
                r.protocol.c_str(), r.rekey_cost);
  }

  std::vector<std::pair<std::string, const InverseCdf*>> recv, fwd, link;
  std::vector<std::unique_ptr<InverseCdf>> keep;
  for (const auto& r : reports) {
    keep.push_back(std::make_unique<InverseCdf>(r.encs_received_per_user));
    recv.push_back({r.protocol, keep.back().get()});
    keep.push_back(std::make_unique<InverseCdf>(r.encs_forwarded_per_user));
    fwd.push_back({r.protocol, keep.back().get()});
    keep.push_back(std::make_unique<InverseCdf>(r.encs_per_link));
    link.push_back({r.protocol, keep.back().get()});
  }

  auto user_tail = TailFractions(0.90, 10);
  auto link_tail = TailFractions(0.96, 10);
  std::printf("\n");
  PrintInverseCdfTable(std::cout,
                       "Fig 13 (a): encryptions received per user (tail)",
                       user_tail, recv);
  std::printf("\n");
  PrintInverseCdfTable(std::cout,
                       "Fig 13 (b): encryptions forwarded per user (tail)",
                       user_tail, fwd);
  std::printf("\n");
  PrintInverseCdfTable(std::cout,
                       "Fig 13 (c): encryptions per network link (tail)",
                       link_tail, link);

  // The paper's headline: with splitting (P1'), >90% of users drop from
  // thousands of encryptions to fewer than ten.
  for (const auto& r : reports) {
    InverseCdf cdf(r.encs_received_per_user);
    std::printf("# %-4s users receiving <10 encs: %5.1f%%   p90: %8.0f   "
                "max: %8.0f\n",
                r.protocol.c_str(), 100 * cdf.FractionAtOrBelow(9.99),
                cdf.ValueAtFraction(0.90), cdf.ValueAtFraction(1.0));
  }
  art.Write();
  return 0;
}
