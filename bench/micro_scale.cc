// Key-tree scale sweep: one full batch-rekey build interval plus churn
// epochs at 10^4 / 10^5 / 10^6 users over the flat key trees (WGL and
// modified), reporting build time, churn events/sec, rekey-message sizes,
// and process peak RSS per population. Wall-clock-dependent, so not
// recorded in bench_output.txt; BENCH_scale.json records a measured curve.
//
// The campaign driver is the fuzzer's big-N scale mode
// (ChurnFuzzer::RunScaleCampaign) with the O(N) structural invariant
// passes off by default (--full turns them and the sharded-vs-serial
// cross-check back on — the tier1/nightly fuzz entry points always keep
// them on).
//
//   --users=N    run a single population instead of the 10^4/10^5/10^6 sweep
//   --runs=N     churn epochs per point (default 5)
//   --threads=N  ModifiedKeyTree rekey shards (default: hardware concurrency)
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fuzz/churn_fuzzer.h"

int main(int argc, char** argv) {
  using namespace tmesh;
  using namespace tmesh::bench;
  constexpr FigureSpec kSpec{
      "micro_scale",
      "Flat key-tree batch-rekey scale sweep (wall-clock; not recorded)", 150,
      /*recorded=*/false};
  Flags f = Flags::Parse(kSpec, argc, argv);
  Artifacts artifacts(f);

  std::vector<int> sweep{10000, 100000, 1000000};
  if (f.users > 0) sweep = {f.users};
  const int epochs = f.runs > 0 ? f.runs : 5;
  const int shards = f.Threads();

  std::printf(
      "# flat key trees: one N-user build interval + %d churn epochs "
      "(batch 2000+2000, %d shards)\n"
      "# peak RSS is process-wide and monotonic; points run ascending\n",
      epochs, shards);
  std::printf("%10s%12s%14s%16s%14s%14s\n", "users", "build_sec",
              "events_per_s", "interval_encs", "epoch_encs", "peak_rss_kb");

  for (int users : sweep) {
    fuzz::ScaleConfig cfg;
    cfg.users = users;
    cfg.epochs = epochs;
    cfg.batch_joins = 2000;
    cfg.batch_leaves = 2000;
    cfg.shards = shards;
    cfg.seed = f.seed;
    cfg.check_invariants = f.full;
    cfg.cross_check_shards = f.full;
    fuzz::ScaleReport rep = fuzz::ChurnFuzzer::RunScaleCampaign(cfg);
    if (!rep.ok) {
      std::fprintf(stderr, "FATAL: scale campaign at %d users: %s\n", users,
                   rep.error.c_str());
      return 1;
    }

    std::size_t epoch_encs = 0;
    for (const auto& es : rep.epochs) {
      epoch_encs += es.wgl_encryptions + es.mtree_encryptions;
    }
    std::printf("%10d%12.2f%14.0f%16zu%14zu%14zu\n", users, rep.build_seconds,
                rep.events_per_sec, rep.build_encryptions, epoch_encs,
                rep.peak_rss_kb);

    if (MetricsRegistry* m = artifacts.metrics()) {
      const std::string p = "scale." + std::to_string(users) + ".";
      m->GetGauge(p + "build_seconds")->Set(rep.build_seconds);
      m->GetGauge(p + "events_per_sec")->Set(rep.events_per_sec);
      m->GetGauge(p + "peak_rss_kb")
          ->Set(static_cast<double>(rep.peak_rss_kb));
      m->GetCounter(p + "build_encryptions")
          ->Add(static_cast<std::int64_t>(rep.build_encryptions));
      m->GetCounter(p + "churn_encryptions")
          ->Add(static_cast<std::int64_t>(epoch_encs));
    }
  }
  artifacts.Write();

  std::printf(
      "\n# expected: peak RSS linear in N; events/sec declines gently with "
      "N because the\n"
      "# rekey message itself is O(affected subtree) and a fixed batch "
      "touches more of the\n"
      "# upper tree's fan-out as N grows — NOT because any per-epoch scan "
      "is O(N) (that\n"
      "# would trip the campaign's marked-node allowance and fail the "
      "run).\n");
  return 0;
}
