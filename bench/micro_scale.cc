// Key-tree scale sweep: one full batch-rekey build interval plus churn
// epochs at 10^4 / 10^5 / 10^6 users over the flat key trees (WGL and
// modified), reporting build time, churn events/sec, rekey-message sizes,
// and process peak RSS per population. Wall-clock-dependent, so not
// recorded in bench_output.txt; BENCH_scale.json records a measured curve.
//
// After the base sweep, three tree-shape ablation sections (BENCH_scale.json
// "tree-shape ablations" family; DESIGN.md §3e):
//   1. WGL degree sweep d in {2,4,8,16}: encryptions/interval and build
//      time vs degree (the paper fixes d=4 as optimal; the sweep shows the
//      curve it is the argmin of). The modified tree's shape is pinned to
//      the ID tree, so it rides along unchanged as the reference line; a
//      B=16 alternate ID shape gives the mtree's own shape point.
//   2. Placement ablation: kShallowest vs kChurnAffinity under the skewed
//      churn workload (30% volatile members, biased leave picks).
//   3. Through-directory admission: the same campaign driving every join/
//      leave through Directory::AddMember/RemoveMember (indexed policy),
//      reporting admission work per op against the N-independent allowance.
//
// The campaign driver is the fuzzer's big-N scale mode
// (ChurnFuzzer::RunScaleCampaign) with the O(N) structural invariant
// passes off by default (--full turns them and the sharded-vs-serial
// cross-check back on — the tier1/nightly fuzz entry points always keep
// them on). --full also extends the ablations one decade: degree sweep to
// 10^6 and the directory point to 10^5.
//
//   --users=N    run a single population instead of the 10^4/10^5/10^6 sweep
//                (ablation sections then run at min(N, their default))
//   --runs=N     churn epochs per point (default 5; ablations use 2-3)
//   --threads=N  ModifiedKeyTree rekey shards (default: hardware concurrency)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "fuzz/churn_fuzzer.h"

namespace {

using tmesh::bench::Artifacts;

std::size_t SumWglEncs(const tmesh::fuzz::ScaleReport& rep) {
  std::size_t n = 0;
  for (const auto& es : rep.epochs) n += es.wgl_encryptions;
  return n;
}

std::size_t SumMtreeEncs(const tmesh::fuzz::ScaleReport& rep) {
  std::size_t n = 0;
  for (const auto& es : rep.epochs) n += es.mtree_encryptions;
  return n;
}

bool Fatal(const char* what, int users, const tmesh::fuzz::ScaleReport& rep) {
  if (rep.ok) return false;
  std::fprintf(stderr, "FATAL: %s campaign at %d users: %s\n", what, users,
               rep.error.c_str());
  return true;
}

void SetGauge(Artifacts& art, const std::string& name, double v) {
  if (tmesh::MetricsRegistry* m = art.metrics()) m->GetGauge(name)->Set(v);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tmesh;
  using namespace tmesh::bench;
  constexpr FigureSpec kSpec{
      "micro_scale",
      "Flat key-tree scale sweep + tree-shape ablations (wall-clock; "
      "not recorded)",
      150,
      /*recorded=*/false};
  Flags f = Flags::Parse(kSpec, argc, argv);
  Artifacts artifacts(f);

  std::vector<int> sweep{10000, 100000, 1000000};
  if (f.users > 0) sweep = {f.users};
  const int epochs = f.runs > 0 ? f.runs : 5;
  const int shards = f.Threads();

  std::printf(
      "# flat key trees: one N-user build interval + %d churn epochs "
      "(batch 2000+2000, %d shards)\n"
      "# peak RSS is process-wide and monotonic; points run ascending\n",
      epochs, shards);
  std::printf("%10s%12s%14s%16s%14s%14s\n", "users", "build_sec",
              "events_per_s", "interval_encs", "epoch_encs", "peak_rss_kb");

  for (int users : sweep) {
    fuzz::ScaleConfig cfg;
    cfg.users = users;
    cfg.epochs = epochs;
    cfg.batch_joins = 2000;
    cfg.batch_leaves = 2000;
    cfg.shards = shards;
    cfg.seed = f.seed;
    cfg.check_invariants = f.full;
    cfg.cross_check_shards = f.full;
    fuzz::ScaleReport rep = fuzz::ChurnFuzzer::RunScaleCampaign(cfg);
    if (Fatal("scale", users, rep)) return 1;

    std::size_t epoch_encs = 0;
    for (const auto& es : rep.epochs) {
      epoch_encs += es.wgl_encryptions + es.mtree_encryptions;
    }
    std::printf("%10d%12.2f%14.0f%16zu%14zu%14zu\n", users, rep.build_seconds,
                rep.events_per_sec, rep.build_encryptions, epoch_encs,
                rep.peak_rss_kb);

    if (MetricsRegistry* m = artifacts.metrics()) {
      const std::string p = "scale." + std::to_string(users) + ".";
      m->GetGauge(p + "build_seconds")->Set(rep.build_seconds);
      m->GetGauge(p + "events_per_sec")->Set(rep.events_per_sec);
      m->GetGauge(p + "peak_rss_kb")
          ->Set(static_cast<double>(rep.peak_rss_kb));
      m->GetCounter(p + "build_encryptions")
          ->Add(static_cast<std::int64_t>(rep.build_encryptions));
      m->GetCounter(p + "churn_encryptions")
          ->Add(static_cast<std::int64_t>(epoch_encs));
    }
  }

  // --- ablation 1: WGL degree sweep -------------------------------------
  // Build + 2 churn epochs per (users, degree) point. The WGL columns are
  // what varies; mtree columns repeat as the shape-pinned reference. The
  // last row per population re-runs d=4 with the alternate B=16 ID shape
  // (digits chosen to keep the 4x sparsity guard) — the modified tree's own
  // shape point.
  std::vector<int> ab_users{10000, 100000};
  if (f.full) ab_users.push_back(1000000);
  if (f.users > 0) {
    ab_users = {f.users};
  }
  std::printf(
      "\n# ablation: WGL degree sweep (2 churn epochs, batch 2000+2000)\n");
  std::printf("%10s%8s%12s%12s%16s%14s%14s\n", "users", "shape", "build_sec",
              "wgl_depth", "wgl_build_encs", "wgl_epoch_encs",
              "mtree_epoch_encs");
  for (int users : ab_users) {
    struct Shape {
      const char* label;
      const char* slug;  // metric-name-safe form of label
      int degree;
      GroupParams group;
    };
    // B=16 mtree shape: 16^6 ≈ 16.8M IDs clears the sparsity guard at every
    // population this sweep reaches.
    const Shape shapes[] = {
        {"d=2", "d2", 2, GroupParams{5, 256, 4}},
        {"d=4", "d4", 4, GroupParams{5, 256, 4}},
        {"d=8", "d8", 8, GroupParams{5, 256, 4}},
        {"d=16", "d16", 16, GroupParams{5, 256, 4}},
        {"B=16", "b16", 4, GroupParams{6, 16, 4}},
    };
    for (const Shape& s : shapes) {
      fuzz::ScaleConfig cfg;
      cfg.users = users;
      cfg.epochs = 2;
      cfg.batch_joins = 2000;
      cfg.batch_leaves = 2000;
      cfg.wgl_degree = s.degree;
      cfg.group = s.group;
      cfg.shards = shards;
      cfg.seed = f.seed;
      cfg.check_invariants = false;
      cfg.cross_check_shards = false;
      fuzz::ScaleReport rep = fuzz::ChurnFuzzer::RunScaleCampaign(cfg);
      if (Fatal("degree-sweep", users, rep)) return 1;
      // Depth of a full degree-d tree over N users: ceil(log_d N).
      int depth = 0;
      for (long long n = 1; n < users; n *= s.degree) ++depth;
      std::printf("%10d%8s%12.2f%12d%16zu%14zu%14zu\n", users, s.label,
                  rep.build_seconds, depth, rep.build_encryptions,
                  SumWglEncs(rep), SumMtreeEncs(rep));
      const std::string p = "scale." + std::to_string(users) + ".shape_" +
                            s.slug + ".";
      SetGauge(artifacts, p + "build_seconds", rep.build_seconds);
      SetGauge(artifacts, p + "wgl_epoch_encryptions",
            static_cast<double>(SumWglEncs(rep)));
      SetGauge(artifacts, p + "mtree_epoch_encryptions",
            static_cast<double>(SumMtreeEncs(rep)));
    }
  }

  // --- ablation 2: placement under skewed churn -------------------------
  {
    const int users =
        f.users > 0 ? std::min(f.users, 10000) : (f.full ? 100000 : 10000);
    std::printf(
        "\n# ablation: WGL placement under skewed churn (%d users, 30%% "
        "volatile,\n# leave bias 0.75, 3 churn epochs, batch 2000+2000)\n",
        users);
    std::printf("%18s%16s%18s\n", "placement", "wgl_epoch_encs",
                "encs_per_event");
    std::size_t base_encs = 0;
    for (WglPlacement placement :
         {WglPlacement::kShallowest, WglPlacement::kChurnAffinity}) {
      fuzz::ScaleConfig cfg;
      cfg.users = users;
      cfg.epochs = 3;
      cfg.batch_joins = 2000;
      cfg.batch_leaves = 2000;
      cfg.wgl_placement = placement;
      cfg.volatile_fraction = 0.3;
      cfg.shards = shards;
      cfg.seed = f.seed;
      cfg.check_invariants = false;
      cfg.cross_check_shards = false;
      fuzz::ScaleReport rep = fuzz::ChurnFuzzer::RunScaleCampaign(cfg);
      if (Fatal("placement", users, rep)) return 1;
      const bool affinity = placement == WglPlacement::kChurnAffinity;
      const std::size_t encs = SumWglEncs(rep);
      if (!affinity) base_encs = encs;
      std::printf("%18s%16zu%18.2f\n",
                  affinity ? "churn-affinity" : "shallowest", encs,
                  static_cast<double>(encs) / (3.0 * 4000.0));
      const std::string p = std::string("scale.placement.") +
                            (affinity ? "churn_affinity" : "shallowest") + ".";
      SetGauge(artifacts, p + "wgl_epoch_encryptions",
            static_cast<double>(encs));
      if (affinity && base_encs > 0) {
        std::printf("# churn-affinity / shallowest = %.3f\n",
                    static_cast<double>(encs) /
                        static_cast<double>(base_encs));
      }
    }
  }

  // --- ablation 3: through-directory admission --------------------------
  {
    const int users =
        f.users > 0 ? std::min(f.users, 10000) : (f.full ? 100000 : 10000);
    fuzz::ScaleConfig cfg;
    cfg.users = users;
    cfg.epochs = 2;
    cfg.batch_joins = 1000;
    cfg.batch_leaves = 1000;
    cfg.shards = shards;
    cfg.seed = f.seed;
    cfg.through_directory = true;
    cfg.check_invariants = false;
    cfg.cross_check_shards = false;
    fuzz::ScaleReport rep = fuzz::ChurnFuzzer::RunScaleCampaign(cfg);
    if (Fatal("through-directory", users, rep)) return 1;
    std::printf(
        "\n# through-directory admission (%d users, indexed policy, 8^7 ID "
        "space, K=2)\n",
        users);
    std::printf("%24s%16s%18s\n", "phase", "seconds", "admission_work/op");
    std::printf("%24s%16.2f%18.1f\n", "build (N joins)", rep.dir_build_seconds,
                rep.dir_build_touched_per_op);
    for (std::size_t i = 0; i < rep.epochs.size(); ++i) {
      char label[32];
      std::snprintf(label, sizeof(label), "epoch %zu", i + 1);
      std::printf("%24s%16.2f%18.1f\n", label, rep.epochs[i].dir_seconds,
                  rep.epochs[i].dir_touched_per_op);
    }
    std::printf("# allowance %.0f work units/op (N-independent; a scan "
                "costs N=%d)\n",
                rep.dir_allowance_per_op, users);
    const std::string p = "scale." + std::to_string(users) + ".dir.";
    SetGauge(artifacts, p + "build_seconds", rep.dir_build_seconds);
    SetGauge(artifacts, p + "build_touched_per_op", rep.dir_build_touched_per_op);
    SetGauge(artifacts, p + "allowance_per_op", rep.dir_allowance_per_op);
  }

  artifacts.Write();

  std::printf(
      "\n# expected: peak RSS linear in N; events/sec declines gently with "
      "N because the\n"
      "# rekey message itself is O(affected subtree) and a fixed batch "
      "touches more of the\n"
      "# upper tree's fan-out as N grows — NOT because any per-epoch scan "
      "is O(N) (that\n"
      "# would trip the campaign's marked-node allowance and fail the "
      "run).\n"
      "# ablations: WGL epoch encryptions are minimized near d=4 (the "
      "paper's choice);\n"
      "# churn-affinity placement cuts WGL encryptions under skewed churn; "
      "directory\n"
      "# admission work per op is flat in N and far below the allowance.\n");
  return 0;
}
