// Fig. 12: rekey cost as a function of the number of joins J and leaves L
// in one rekey interval, for 1024 initial users on GT-ITM.
//   (a) average rekey cost of the modified key tree;
//   (b) modified minus original (WGL degree-4, batch) key tree;
//   (c) modified with the cluster rekeying heuristic minus original.
//
// Paper: 20 runs, J,L in 0..1024. Default: 2 runs on a 0..1024 step-256
// grid (--full for the step-128 grid with 5 runs).
#include <cstdio>

#include "bench_common.h"
#include "protocols/rekey_cost_experiment.h"

int main(int argc, char** argv) {
  using namespace tmesh;
  using namespace tmesh::bench;
  constexpr FigureSpec kSpec{"fig12_rekey_cost",
                             "Fig. 12: rekey cost vs (J, L) batch shape", 70};
  Flags f = Flags::Parse(kSpec, argc, argv);
  Artifacts art(f);

  RekeyCostConfig cfg;
  cfg.metrics = art.metrics();
  cfg.seed = f.seed;
  cfg.initial_users = f.users > 0 ? f.users : 1024;
  cfg.threads = f.Threads();
  cfg.sim_options = f.SimOptions();
  cfg.session = PaperSession();
  if (f.full) {
    cfg.grid = {0, 128, 256, 384, 512, 640, 768, 896, 1024};
    cfg.runs = f.runs > 0 ? f.runs : 5;
  } else {
    cfg.grid = {0, 256, 512, 768, 1024};
    cfg.runs = f.runs > 0 ? f.runs : 2;
  }
  // Keep the grid within the population.
  for (int& g : cfg.grid) {
    if (g > cfg.initial_users) g = cfg.initial_users;
  }

  auto cells = RunRekeyCostExperiment(cfg);

  std::printf("# Fig 12: rekey cost vs (J, L); %d initial users, %d runs\n",
              cfg.initial_users, cfg.runs);
  std::printf("# (a) modified key tree  (b) modified - original  (c) "
              "modified+cluster - original\n");
  std::printf("%8s%8s%14s%14s%14s%16s%16s\n", "J", "L", "modified",
              "original", "cluster", "mod-orig", "cluster-orig");
  for (const auto& c : cells) {
    std::printf("%8d%8d%14.1f%14.1f%14.1f%16.1f%16.1f\n", c.joins, c.leaves,
                c.modified, c.original, c.cluster, c.modified - c.original,
                c.cluster - c.original);
  }
  std::printf(
      "\n# paper shape: (b) >= 0 everywhere (modified tree re-keys more); "
      "(c) < 0 when the\n# fraction of leaving users is small (non-leader "
      "churn is free under the heuristic).\n");
  art.Write();
  return 0;
}
