// google-benchmark microbenchmarks for the core operations: key-tree batch
// rekeying (both trees), neighbor-table maintenance, T-mesh multicast, and
// router-graph shortest paths.
#include <benchmark/benchmark.h>

#include "core/tmesh.h"
#include "keytree/wgl_key_tree.h"
#include "protocols/group_session.h"
#include "topology/gtitm.h"
#include "topology/planetlab.h"

namespace tmesh {
namespace {

UserId RandomId(Rng& rng, int d, int b) {
  UserId id;
  for (int i = 0; i < d; ++i) {
    id.Append(static_cast<int>(rng.UniformInt(0, b - 1)));
  }
  return id;
}

void BM_ModifiedKeyTreeBatchRekey(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  ModifiedKeyTree base(5);
  std::vector<UserId> ids;
  while (static_cast<int>(ids.size()) < n) {
    UserId id = RandomId(rng, 5, 64);
    if (base.Contains(id)) continue;
    base.Join(id);
    ids.push_back(id);
  }
  (void)base.Rekey();
  for (auto _ : state) {
    state.PauseTiming();
    ModifiedKeyTree tree = base;
    state.ResumeTiming();
    for (int i = 0; i < n / 8; ++i) tree.Leave(ids[static_cast<std::size_t>(i)]);
    benchmark::DoNotOptimize(tree.Rekey());
  }
}
BENCHMARK(BM_ModifiedKeyTreeBatchRekey)->Arg(256)->Arg(1024);

void BM_WglKeyTreeBatchRekey(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<MemberId> members;
  for (int i = 0; i < n; ++i) members.push_back(i);
  for (auto _ : state) {
    state.PauseTiming();
    WglKeyTree tree(4);
    tree.BuildFullBalanced(members);
    std::vector<MemberId> leaves(members.begin(), members.begin() + n / 8);
    state.ResumeTiming();
    benchmark::DoNotOptimize(tree.Rekey({}, leaves));
  }
}
BENCHMARK(BM_WglKeyTreeBatchRekey)->Arg(256)->Arg(1024);

void BM_DirectoryAddMember(benchmark::State& state) {
  PlanetLabParams p;
  p.hosts = 600;
  PlanetLabNetwork net(p);
  Rng rng(3);
  for (auto _ : state) {
    state.PauseTiming();
    Directory dir(net, GroupParams{5, 256, 4}, 0);
    Rng r2 = rng.Fork();
    state.ResumeTiming();
    for (HostId h = 1; h < 512; ++h) {
      UserId id;
      do {
        id = RandomId(r2, 5, 256);
      } while (dir.Contains(id));
      dir.AddMember(id, h, h);
    }
  }
  state.SetItemsProcessed(state.iterations() * 511);
}
BENCHMARK(BM_DirectoryAddMember);

void BM_TMeshRekeyMulticast(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PlanetLabParams p;
  p.hosts = n + 1;
  PlanetLabNetwork net(p);
  Directory dir(net, GroupParams{5, 256, 4}, 0);
  ModifiedKeyTree tree(5);
  Rng rng(7);
  for (HostId h = 1; h <= n; ++h) {
    UserId id;
    do {
      id = RandomId(rng, 5, 256);
    } while (dir.Contains(id));
    dir.AddMember(id, h, h);
    tree.Join(id);
  }
  RekeyMessage msg = tree.Rekey();
  for (auto _ : state) {
    Simulator sim;
    TMesh tmesh(dir, sim);
    TMesh::Options opts;
    opts.split = true;
    benchmark::DoNotOptimize(tmesh.MulticastRekey(msg, opts));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TMeshRekeyMulticast)->Arg(128)->Arg(512);

// The forwarding hot path in isolation: data multicast has no splitting and
// no key-tree work, so nearly all time is Forward/SendFirst/Deliver plus the
// scheduler — the paths the scratch buffers and payload snapshots target.
void BM_TMeshDataMulticast(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  PlanetLabParams p;
  p.hosts = n + 1;
  PlanetLabNetwork net(p);
  Directory dir(net, GroupParams{5, 256, 4}, 0);
  Rng rng(11);
  std::vector<UserId> ids;
  for (HostId h = 1; h <= n; ++h) {
    UserId id;
    do {
      id = RandomId(rng, 5, 256);
    } while (dir.Contains(id));
    dir.AddMember(id, h, h);
    ids.push_back(id);
  }
  for (auto _ : state) {
    Simulator sim;
    TMesh tmesh(dir, sim);
    benchmark::DoNotOptimize(tmesh.MulticastData(ids[ids.size() / 2]));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TMeshDataMulticast)->Arg(128)->Arg(512);

void BM_GtItmDijkstra(benchmark::State& state) {
  GtItmParams p;
  GtItmNetwork net(p, 10, 1);
  RouterId r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.graph().Dijkstra(r));
    r = (r + 17) % net.router_count();
  }
}
BENCHMARK(BM_GtItmDijkstra);

void BM_SplitPrefixTest(benchmark::State& state) {
  Rng rng(9);
  std::vector<DigitString> encs, prefixes;
  for (int i = 0; i < 1000; ++i) {
    encs.push_back(RandomId(rng, static_cast<int>(rng.UniformInt(1, 5)), 256));
    prefixes.push_back(RandomId(rng, 2, 256));
  }
  for (auto _ : state) {
    int kept = 0;
    for (const auto& e : encs) {
      for (const auto& w : prefixes) {
        if (e.IsPrefixOf(w) || w.IsPrefixOf(e)) ++kept;
      }
    }
    benchmark::DoNotOptimize(kept);
  }
  state.SetItemsProcessed(state.iterations() * 1000 * 1000);
}
BENCHMARK(BM_SplitPrefixTest);

}  // namespace
}  // namespace tmesh

BENCHMARK_MAIN();
