// Fig. 6: rekey path latency on the PlanetLab topology, 226 user joins.
// Inverse CDFs (avg + 95th pct across runs) of user stress,
// application-layer delay, and RDP; T-mesh vs NICE.
//
// Paper: 100 runs. Default here: 10 (use --runs=100 / --full to match).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tmesh::bench;
  constexpr FigureSpec kSpec{"fig06_rekey_latency_planetlab",
                             "Fig. 6: rekey path latency, PlanetLab", 10};
  Flags f = Flags::Parse(kSpec, argc, argv);
  Artifacts art(f);
  int runs = f.runs > 0 ? f.runs : (f.full ? 100 : 10);
  int users = f.users > 0 ? f.users : 226;
  RunLatencyFigure("Fig 6: rekey path latency, PlanetLab, " +
                       std::to_string(users) + " joins",
                   Topo::kPlanetLab, users, /*data_path=*/false, runs, f.seed,
                   f.Threads(), f.step, f.SimOptions(), &art, f.psim);
  return 0;
}
