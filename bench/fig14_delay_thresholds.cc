// Fig. 14: sensitivity of T-mesh rekey latency to the number of ID digits D
// and the delay thresholds (R_1, ..., R_{D-1}); PlanetLab, 226 joins.
// One run per configuration (the paper plots "a typical simulation run").
#include <cstdio>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tmesh;
  using namespace tmesh::bench;
  constexpr FigureSpec kSpec{
      "fig14_delay_thresholds",
      "Fig. 14: sensitivity to ID digits and delay thresholds", 90};
  Flags f = Flags::Parse(kSpec, argc, argv);
  Artifacts art(f);
  int users = f.users > 0 ? f.users : 226;

  struct Variant {
    std::string name;
    int digits;
    std::vector<double> thresholds;
  };
  std::vector<Variant> variants = {
      {"D=5 (150,30,9,3)", 5, {150, 30, 9, 3}},
      {"D=6 (150,80,30,9,3)", 6, {150, 80, 30, 9, 3}},
      {"D=6 (150,50,30,9,3)", 6, {150, 50, 30, 9, 3}},
      {"D=4 (150,30,9)", 4, {150, 30, 9}},
  };

  std::vector<std::unique_ptr<InverseCdf>> keep;
  std::vector<std::pair<std::string, const InverseCdf*>> delays, rdps;

  // One replica per variant; each builds its own network and session, so
  // the pool may run them concurrently. Merging in variant order keeps the
  // tables' series order (and the output bytes) fixed for any --threads.
  // Each variant's metrics ride in a replica-local registry merged in the
  // same order, so the artifact is thread-count-independent too.
  struct VariantOut {
    LatencyRunResult res;
    MetricsRegistry reg;
  };
  ReplicaRunner runner(f.Threads(), f.SimOptions());
  runner.Run(
      static_cast<int>(variants.size()),
      [&](ReplicaRunner::Replica& rep) {
        const Variant& v = variants[static_cast<std::size_t>(rep.index)];
        auto net = MakeNetwork(Topo::kPlanetLab, users + 1, f.seed);
        LatencyRunConfig cfg;
        cfg.users = users;
        cfg.join_window_s = 452.0;
        cfg.session = PaperSession();
        cfg.session.with_nice = false;
        cfg.session.group.digits = v.digits;
        cfg.session.assign.thresholds_ms = v.thresholds;
        cfg.step_events = f.step;
        VariantOut out;
        if (art.metrics() != nullptr) cfg.metrics = &out.reg;
        out.res = RunLatencyExperiment(*net, cfg, f.seed * 7 + 13, &rep.sim);
        std::fprintf(stderr, "  variant %s done\n", v.name.c_str());
        return out;
      },
      [&](int i, VariantOut&& out) {
        LatencyRunResult& res = out.res;
        const Variant& v = variants[static_cast<std::size_t>(i)];
        keep.push_back(std::make_unique<InverseCdf>(res.tmesh.delay_ms));
        delays.push_back({v.name, keep.back().get()});
        keep.push_back(std::make_unique<InverseCdf>(res.tmesh.rdp));
        rdps.push_back({v.name, keep.back().get()});
        if (art.metrics() != nullptr) art.metrics()->MergeFrom(out.reg);
      });

  auto fr = DefaultFractions();
  PrintInverseCdfTable(
      std::cout,
      "Fig 14 (a): application-layer delay [ms], T-mesh rekey, PlanetLab",
      fr, delays);
  std::printf("\n");
  PrintInverseCdfTable(std::cout, "Fig 14 (b): RDP, T-mesh rekey, PlanetLab",
                       fr, rdps);
  std::printf("\n# paper shape: latency is not sensitive to the chosen D / "
              "threshold variants.\n");
  art.Write();
  return 0;
}
