// Fig. 8: rekey path latency on the GT-ITM topology, 1024 user joins.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace tmesh::bench;
  constexpr FigureSpec kSpec{"fig08_rekey_latency_gtitm1024",
                             "Fig. 8: rekey path latency, GT-ITM 1024", 30};
  Flags f = Flags::Parse(kSpec, argc, argv);
  Artifacts art(f);
  int runs = f.runs > 0 ? f.runs : (f.full ? 10 : 2);
  int users = f.users > 0 ? f.users : 1024;
  RunLatencyFigure("Fig 8: rekey path latency, GT-ITM, " +
                       std::to_string(users) + " joins",
                   Topo::kGtItm, users, /*data_path=*/false, runs, f.seed,
                   f.Threads(), f.step, f.SimOptions(), &art, f.psim);
  return 0;
}
