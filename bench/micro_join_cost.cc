// §3.1.4: the communication cost for a joining user to determine its ID is
// O(P·D·N^{1/D}) messages on average. This driver measures the observed
// per-join query counts across group sizes and prints them next to the
// asymptotic prediction (scaled to match at the smallest N).
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "protocols/group_session.h"

int main(int argc, char** argv) {
  using namespace tmesh;
  using namespace tmesh::bench;
  constexpr FigureSpec kSpec{"micro_join_cost",
                             "§3.1.4: probing cost per join vs group size",
                             100};
  Flags f = Flags::Parse(kSpec, argc, argv);
  Artifacts art(f);

  std::vector<int> sizes = f.full ? std::vector<int>{64, 128, 256, 512, 1024}
                                  : std::vector<int>{64, 128, 256, 512};
  SessionConfig scfg = PaperSession();
  const int d = scfg.group.digits;
  const int p = scfg.assign.collect_target;

  std::printf("# §3.1.4: probing cost per join vs group size (D=%d, P=%d)\n",
              d, p);
  std::printf("%8s%16s%16s%18s\n", "N", "avg_queries", "avg_rtt_probes",
              "P*D*N^(1/D)");
  for (int n : sizes) {
    auto net = MakeNetwork(Topo::kGtItm, n + 1, f.seed + static_cast<std::uint64_t>(n));
    SessionConfig cfg = scfg;
    cfg.with_nice = false;
    cfg.seed = f.seed;
    GroupSession session(*net, 0, cfg);
    // Measure the last quarter of joins (the group is near size N).
    double queries = 0, probes = 0;
    int measured = 0;
    for (HostId h = 1; h <= n; ++h) {
      IdAssignStats stats;
      auto id = session.Join(h, h, &stats);
      if (!id.has_value()) break;
      if (h > 3 * n / 4) {
        queries += stats.queries;
        probes += stats.rtt_probes;
        ++measured;
      }
    }
    double predicted =
        p * d * std::pow(static_cast<double>(n), 1.0 / static_cast<double>(d));
    std::printf("%8d%16.1f%16.1f%18.1f\n", n, queries / measured,
                probes / measured, predicted);
    // No simulator runs here; the artifact carries the table itself as
    // per-group-size gauges.
    if (MetricsRegistry* reg = art.metrics(); reg != nullptr) {
      const std::string suffix = ".n" + std::to_string(n);
      reg->GetGauge("joincost.avg_queries" + suffix)->Set(queries / measured);
      reg->GetGauge("joincost.avg_rtt_probes" + suffix)
          ->Set(probes / measured);
      reg->GetGauge("joincost.predicted" + suffix)->Set(predicted);
    }
  }
  art.Write();
  return 0;
}
