#include "fuzz/churn_fuzzer.h"

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "core/key_server.h"
#include "core/modified_key_tree.h"
#include "ha/replicated_key_server.h"
#include "core/silk.h"
#include "transport/sim_transport.h"
#include "core/tmesh.h"
#include "keytree/wgl_key_tree.h"
#include "topology/planetlab.h"
#include "topology/synthetic_wan.h"

namespace tmesh {
namespace fuzz {
namespace {

// A violation that already carries its invariant label. Guard() tags the
// TMESH_CHECK throws of whichever check region was running; op execution
// itself is a region too (a CHECK tripping inside e.g. SilkGroup::Leave is
// as much a finding as a failed consistency assertion).
struct TaggedViolation {
  std::string invariant;
  std::string message;
};

template <class Fn>
void Guard(const char* label, Fn&& fn) {
  try {
    fn();
  } catch (const TaggedViolation&) {
    throw;
  } catch (const std::logic_error& e) {
    throw TaggedViolation{label, e.what()};
  }
}

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Fixed-point decryption closure (Lemma 3 / Corollary 1 semantics): grows
// `held` (key ID -> version) with every key reachable from the given
// encryptions. An encryption is decryptable iff the holder has the
// encrypting key at exactly the emitted version. `indices` restricts the
// usable encryptions (a member's actual receipts); nullptr means all of
// them (the perfect-reception entitlement).
void Close(std::map<KeyId, std::uint32_t>& held,
           const std::vector<Encryption>& encs,
           const std::vector<std::int32_t>* indices) {
  bool progress = true;
  while (progress) {
    progress = false;
    auto usable = [&](const Encryption& e) {
      auto it = held.find(e.enc_key_id);
      if (it == held.end() || it->second != e.enc_key_version) return false;
      auto have = held.find(e.new_key_id);
      return have == held.end() || have->second < e.new_key_version;
    };
    if (indices == nullptr) {
      for (const Encryption& e : encs) {
        if (usable(e)) {
          held[e.new_key_id] = e.new_key_version;
          progress = true;
        }
      }
    } else {
      for (std::int32_t i : *indices) {
        const Encryption& e = encs[static_cast<std::size_t>(i)];
        if (usable(e)) {
          held[e.new_key_id] = e.new_key_version;
          progress = true;
        }
      }
    }
  }
}

// Version the message distributes for key `k`; 0 if `k` is not renewed.
std::uint32_t VersionInMessage(const RekeyMessage& msg, const KeyId& k) {
  for (const Encryption& e : msg.encryptions) {
    if (e.new_key_id == k) return e.new_key_version;
  }
  return 0;
}

PlanetLabParams NetParams(const FuzzConfig& cfg) {
  PlanetLabParams p;
  p.hosts = cfg.hosts;
  p.seed = cfg.seed * 2654435761ull + 17;
  return p;
}

// Delay thresholds scaled to the configured depth (the paper's R vector is
// for D=5; shallower fuzz groups take its prefix).
std::vector<double> ThresholdsFor(int digits) {
  static const double kDefaults[] = {150.0, 30.0, 9.0, 3.0, 1.5, 0.8, 0.4};
  TMESH_CHECK(digits >= 2 && digits <= 8);
  return std::vector<double>(kDefaults, kDefaults + (digits - 1));
}

void Line(std::string& log, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  log += buf;
  log += '\n';
}

// ---------------------------------------------------------------------------
// kDirectory substrate: the online KeyServer (periodic batch rekeys over the
// Directory oracle) under joins, leaves, crash/repair, concurrent data
// sessions and per-transmission loss.
//
// Op semantics: membership ops are instant (the Directory is the paper's
// centralized controller); only kAdvance moves simulated time, so in-flight
// rekey/data packets race every membership change issued between advances.
// A point is *quiescent* when only the server's interval timer remains
// queued; all delivery/consistency invariants are asserted there.
//
// Strictness bookkeeping: a session's results are checked in full only if
// no membership op happened between its start and the quiescent point
// (churn_epoch_ unchanged) and no crash is outstanding — exactly the
// hypotheses of Theorem 1 / Corollary 1. Sessions overlapping churn still
// must execute without tripping any internal CHECK, and their encryption
// payloads still feed the entitlement model and the forward-secrecy check.
// ---------------------------------------------------------------------------
class DirectoryHarness {
 public:
  explicit DirectoryHarness(const FuzzConfig& cfg)
      : cfg_(cfg),
        net_(NetParams(cfg)),
        sim_(Simulator::Options{.discipline = cfg.discipline,
                                .adaptive_retune = cfg.adaptive_retune}),
        bus_(sim_),
        server_(bus_, ReplicaConfig(cfg, net_)) {
    for (HostId h = 1; h < cfg.hosts; ++h) free_hosts_.push_back(h);
    server_.Start();
  }

  static ha::ReplicatedKeyServer::Config ReplicaConfig(const FuzzConfig& cfg,
                                                       const Network& net) {
    ha::ReplicatedKeyServer::Config c;
    c.server = ServerConfig(cfg);
    c.server.net = &net;
    c.replicas = cfg.replicas;
    return c;
  }

  static KeyServer::Config ServerConfig(const FuzzConfig& cfg) {
    KeyServer::Config c;
    c.group = cfg.group;
    c.assign.collect_target = 4;
    c.assign.thresholds_ms = ThresholdsFor(cfg.group.digits);
    c.rekey_interval = cfg.rekey_interval;
    c.split = cfg.split;
    c.cluster_heuristic = cfg.cluster_heuristic;
    c.record_encryptions = true;
    c.loss_prob = cfg.loss_prob;
    c.seed = cfg.seed;
    return c;
  }

  void Apply(int index, const Op& op, std::string& log) {
    const Directory& dir = server_.directory();
    switch (op.kind) {
      case OpKind::kJoin: {
        if (free_hosts_.empty()) break;
        std::size_t pick = op.arg % free_hosts_.size();
        HostId host = free_hosts_[pick];
        std::optional<UserId> id;
        Guard("op", [&] { id = server_.RequestJoin(host); });
        if (!id.has_value()) break;
        free_hosts_.erase(free_hosts_.begin() +
                          static_cast<std::ptrdiff_t>(pick));
        ++epoch_;
        if (!cfg_.cluster_heuristic) GrantKeys(*id);
        break;
      }
      case OpKind::kLeave: {
        if (op.arg2 % 2 == 1 && !failed_.empty()) {
          // §2.3 failure-window interleaving: the victim was MarkFailed and
          // this "leave" is its failure detection completing. The server
          // must route it through RepairFailure (a crashed member cannot
          // send a voluntary-leave notice); the harness books the eviction
          // either way, so the silent-voluntary-leave regression trips the
          // forward-secrecy or k-consistency invariant.
          std::size_t pick = op.arg % failed_.size();
          UserId victim = failed_[pick];
          failed_.erase(failed_.begin() + static_cast<std::ptrdiff_t>(pick));
          HostId host = dir.HostOf(victim);
          SnapshotDeparture(victim);
          Guard("op", [&] { server_.RequestLeave(victim); });
          free_hosts_.push_back(host);
          ++epoch_;
          break;
        }
        std::vector<UserId> alive = dir.AliveMembers();
        if (alive.empty()) break;
        UserId victim = alive[op.arg % alive.size()];
        HostId host = dir.HostOf(victim);
        SnapshotDeparture(victim);
        Guard("op", [&] { server_.RequestLeave(victim); });
        free_hosts_.push_back(host);
        ++epoch_;
        break;
      }
      case OpKind::kFail: {
        std::vector<UserId> alive = dir.AliveMembers();
        if (alive.empty()) break;
        UserId victim = alive[op.arg % alive.size()];
        Guard("op", [&] { server_.MarkFailed(victim); });
        failed_.push_back(victim);
        ++epoch_;
        break;
      }
      case OpKind::kRepair: {
        if (failed_.empty()) break;
        std::size_t pick = op.arg % failed_.size();
        UserId victim = failed_[pick];
        failed_.erase(failed_.begin() + static_cast<std::ptrdiff_t>(pick));
        HostId host = dir.HostOf(victim);
        SnapshotDeparture(victim);
        Guard("op", [&] { server_.RepairFailure(victim); });
        free_hosts_.push_back(host);
        ++epoch_;
        break;
      }
      case OpKind::kData: {
        std::vector<UserId> alive = dir.AliveMembers();
        if (alive.empty()) break;
        UserId sender = alive[op.arg % alive.size()];
        TMesh::Options opts;
        opts.loss_prob = cfg_.loss_prob;
        opts.loss_seed = cfg_.seed * 0xD1B54A32D192ED03ull +
                         static_cast<std::uint64_t>(++data_count_);
        DataSession s;
        s.sender = sender;
        s.sender_host = dir.HostOf(sender);
        s.epoch = epoch_;
        Guard("op", [&] {
          open_data_.push_back(server_.mesh().BeginData(sender, opts));
        });
        data_meta_.push_back(s);
        break;
      }
      case OpKind::kAdvance: {
        SimTime iv = cfg_.rekey_interval;
        SimTime dt = iv;
        switch (op.arg % 4) {
          case 0: dt = iv / 3; break;
          case 1: dt = iv / 2; break;
          case 2: dt = iv; break;
          case 3: dt = 2 * iv + 1709; break;
        }
        Guard("op",
              [&] { RunUntilSliced(sim_, sim_.Now() + dt, cfg_.step_events); });
        ScanHistory();
        ScanUnsent();
        if (sim_.Pending() <= 1) CheckQuiescent();
        break;
      }
      // Fault injection against the replicated manager. The facade refuses
      // (returns false) any fault that would orphan the group or overlap a
      // pending failover, so these are safe at any trace position — and
      // plain no-ops at replicas == 1.
      case OpKind::kKillServer: {
        Guard("op", [&] { server_.KillActive(op.arg2 % 2 == 1); });
        break;
      }
      case OpKind::kPartitionServer: {
        Guard("op", [&] { server_.PartitionActive(); });
        break;
      }
      case OpKind::kHealPartition: {
        Guard("op", [&] { server_.HealPartition(); });
        break;
      }
    }
    // Query the facade afresh: a fault op above may have switched the
    // active incarnation out from under the `dir` reference.
    const Directory& now = server_.directory();
    Line(log, "#%d %s(%u) n=%d alive=%d failed=%d t_us=%" PRId64 " pend=%zu",
         index, ToString(op.kind), op.arg, now.member_count(),
         now.alive_count(), static_cast<int>(failed_.size()),
         static_cast<std::int64_t>(sim_.Now()), sim_.Pending());
    CheckPlant();
  }

  void Finish(std::string& log) {
    for (int round = 0; round < 4; ++round) {
      Guard("op", [&] {
        RunUntilSliced(sim_, sim_.Now() + cfg_.rekey_interval + 1709,
                       cfg_.step_events);
      });
      ScanHistory();
      ScanUnsent();
      if (sim_.Pending() <= 1) {
        CheckQuiescent();
        break;
      }
    }
    Line(log, "final n=%d alive=%d t_us=%" PRId64,
         server_.directory().member_count(), server_.directory().alive_count(),
         static_cast<std::int64_t>(sim_.Now()));
  }

 private:
  struct DataSession {
    UserId sender;
    HostId sender_host = kNoHost;
    int epoch = 0;
  };
  struct DeliveryMeta {
    int epoch = 0;
  };
  struct Departed {
    UserId id;
    // Deliveries already emitted when the member departed; later messages
    // must not let it recover the group key.
    int deliveries_seen = 0;
    std::map<KeyId, std::uint32_t> keys;
  };

  void CheckPlant() {
    if (cfg_.plant_max_members <= 0) return;
    Guard("planted", [&] {
      TMESH_CHECK_MSG(server_.directory().member_count() <
                          cfg_.plant_max_members,
                      "planted membership bound exceeded");
    });
  }

  void GrantKeys(const UserId& id) {
    auto& held = held_[id];
    for (const KeyId& k : server_.key_tree().KeysOf(id)) {
      held[k] = server_.key_tree().KeyVersion(k);
    }
  }

  // Records what a departing/evicted member knows: its tracked keys, closed
  // over every message already emitted but not yet folded into held_.
  void SnapshotDeparture(const UserId& id) {
    if (cfg_.cluster_heuristic) return;
    Departed d;
    d.id = id;
    d.deliveries_seen = static_cast<int>(delivery_meta_.size());
    auto it = held_.find(id);
    if (it == held_.end()) return;
    d.keys = it->second;
    held_.erase(it);
    for (int m = next_validate_; m < d.deliveries_seen; ++m) {
      Close(d.keys, server_.message(m).encryptions, nullptr);
    }
    // Burned mid-batch-crash messages were never delivered, but the dead
    // manager held them — conservatively assume the departing member saw
    // every one of them too.
    for (const auto& encs : leaked_) Close(d.keys, encs, nullptr);
    departed_.push_back(std::move(d));
    if (departed_.size() > 12) departed_.pop_front();
  }

  void ScanHistory() {
    const auto& hist = server_.history();
    for (; scanned_history_ < hist.size(); ++scanned_history_) {
      if (hist[scanned_history_].delivery >= 0) {
        delivery_meta_.push_back(DeliveryMeta{epoch_});
      }
    }
  }

  // Version uniqueness: every rekey message — distributed or burned by a
  // mid-batch crash — introduces each (key ID, version) pair at most once
  // across the whole run. Within one message a renewed key legitimately
  // appears under several encrypting keys, so dedupe per message first.
  void AuditMessage(const std::vector<Encryption>& encs) {
    Guard("version-uniqueness", [&] {
      std::set<std::pair<KeyId, std::uint32_t>> in_msg;
      for (const Encryption& e : encs) {
        in_msg.emplace(e.new_key_id, e.new_key_version);
      }
      for (const auto& kv : in_msg) {
        TMESH_CHECK_MSG(issued_.insert(kv).second,
                        "key version issued by two rekey messages: " +
                            kv.first.ToString() + " v" +
                            std::to_string(kv.second));
      }
    });
  }

  // Folds newly burned (generated-but-undistributed) messages from
  // mid-batch manager crashes into the audit state. They enter the
  // departed-members' knowledge — the dead manager held the payload, so
  // forward secrecy must not depend on it staying secret — but never
  // held_: no live member received them, and the decryption-closure check
  // must prove liveness from the re-issued messages alone.
  void ScanUnsent() {
    for (; audited_unsent_ < server_.unsent_count(); ++audited_unsent_) {
      const RekeyMessage& msg = server_.unsent_message(audited_unsent_);
      AuditMessage(msg.encryptions);
      if (cfg_.cluster_heuristic) continue;
      for (Departed& dep : departed_) {
        Close(dep.keys, msg.encryptions, nullptr);
      }
      leaked_.push_back(msg.encryptions);
    }
  }

  void CheckQuiescent() {
    const Directory& dir = server_.directory();
    // Data sessions are complete (nothing is in flight at a quiescent
    // point); check Theorem 1 for the clean ones.
    for (std::size_t i = 0; i < open_data_.size(); ++i) {
      const DataSession& meta = data_meta_[i];
      const TMesh::Result& res = open_data_[i].result();
      bool strict = meta.epoch == epoch_ && failed_.empty();
      if (!strict) continue;
      Guard("theorem1-data", [&] {
        for (const auto& [id, info] : dir.members()) {
          const MemberDeliveryRecord& r =
              res.member[static_cast<std::size_t>(info.host)];
          TMESH_CHECK_MSG(r.copies <= 1, "duplicate data delivery");
          if (res.deliveries_failed > 0) continue;
          if (id == meta.sender) {
            TMESH_CHECK_MSG(r.copies == 0, "sender received its own message");
          } else {
            TMESH_CHECK_MSG(r.copies == 1, "member missed a data message");
          }
        }
      });
    }
    open_data_.clear();
    data_meta_.clear();

    // Rekey deliveries, in emission order.
    for (; next_validate_ < static_cast<int>(delivery_meta_.size());
         ++next_validate_) {
      ValidateRekey(next_validate_);
    }

    if (failed_.empty()) {
      Guard("k-consistency", [&] { dir.CheckKConsistency(); });
    }
    Guard("structure", [&] { CheckStructure(); });
  }

  void ValidateRekey(int d) {
    const Directory& dir = server_.directory();
    const TMesh::Result& res = server_.delivery(d);
    const RekeyMessage& msg = server_.message(d);
    AuditMessage(msg.encryptions);
    bool strict = delivery_meta_[static_cast<std::size_t>(d)].epoch == epoch_ &&
                  failed_.empty();

    if (strict) {
      Guard("theorem1-rekey", [&] {
        for (const auto& [id, info] : dir.members()) {
          const MemberDeliveryRecord& r =
              res.member[static_cast<std::size_t>(info.host)];
          if (cfg_.cluster_heuristic) {
            // Appendix B: every member gets the split leader message or a
            // pairwise group-key unicast; non-leaders always get the latter.
            if (res.deliveries_failed > 0) continue;
            TMESH_CHECK_MSG(r.copies >= 1, "member missed the rekey message");
            if (!server_.clusters().IsLeader(id)) {
              TMESH_CHECK_MSG(r.group_key_copies >= 1,
                              "non-leader missed the group-key unicast");
            }
          } else {
            TMESH_CHECK_MSG(r.copies <= 1, "duplicate rekey delivery");
            if (res.deliveries_failed == 0) {
              TMESH_CHECK_MSG(r.copies == 1, "member missed a rekey message");
            }
          }
        }
      });
    }

    if (cfg_.cluster_heuristic) return;

    if (strict && res.deliveries_failed == 0) {
      Guard("decryption-closure", [&] {
        for (const auto& [id, info] : dir.members()) {
          auto held_it = held_.find(id);
          TMESH_CHECK_MSG(held_it != held_.end(), "member has no key state");
          std::map<KeyId, std::uint32_t> actual = held_it->second;
          Close(actual, msg.encryptions,
                &res.member_encs[static_cast<std::size_t>(info.host)]);
          for (const KeyId& k : server_.key_tree().KeysOf(id)) {
            std::uint32_t renewed = VersionInMessage(msg, k);
            std::uint32_t expect =
                renewed != 0 ? renewed : held_it->second.at(k);
            TMESH_CHECK_MSG(actual.count(k) > 0 && actual.at(k) == expect,
                            "member cannot decrypt a path key: " +
                                k.ToString() + " of " + id.ToString());
          }
        }
      });
    }

    // Entitlement model update: every current member is entitled to the full
    // message (failed-but-unevicted members included — they are still group
    // members); fold it regardless of delivery quality.
    for (auto& [id, held] : held_) {
      (void)id;
      Close(held, msg.encryptions, nullptr);
    }

    // Forward secrecy: no departed member — even one that received every
    // message sent while it was a member — can reach the new group key.
    std::uint32_t root_version = VersionInMessage(msg, KeyId{});
    Guard("forward-secrecy", [&] {
      for (Departed& dep : departed_) {
        if (dep.deliveries_seen > d) continue;
        Close(dep.keys, msg.encryptions, nullptr);
        if (root_version == 0) continue;
        auto it = dep.keys.find(KeyId{});
        TMESH_CHECK_MSG(it == dep.keys.end() || it->second < root_version,
                        "departed member " + dep.id.ToString() +
                            " can decrypt the current group key");
      }
    });
  }

  void CheckStructure() {
    const Directory& dir = server_.directory();
    server_.key_tree().CheckInvariants();
    server_.clusters().CheckInvariants();
    const IdTree& idt = dir.id_tree();
    TMESH_CHECK_MSG(idt.user_count() == dir.member_count(),
                    "ID tree / directory user count mismatch");
    TMESH_CHECK_MSG(server_.key_tree().user_count() == dir.member_count(),
                    "key tree / directory user count mismatch");
    TMESH_CHECK_MSG(server_.clusters().member_count() == dir.member_count(),
                    "cluster map / directory user count mismatch");
    TMESH_CHECK_MSG(
        server_.key_tree().knode_count() == idt.node_count() - idt.user_count(),
        "key tree / ID tree internal node count mismatch");
    for (const auto& [id, info] : dir.members()) {
      (void)info;
      TMESH_CHECK_MSG(server_.key_tree().Contains(id),
                      "member missing from the key tree: " + id.ToString());
      TMESH_CHECK_MSG(idt.ContainsUser(id),
                      "member missing from the ID tree: " + id.ToString());
    }
  }

  FuzzConfig cfg_;
  PlanetLabNetwork net_;
  Simulator sim_;
  SimTransport bus_;
  ha::ReplicatedKeyServer server_;
  std::vector<HostId> free_hosts_;
  std::vector<UserId> failed_;
  int epoch_ = 0;  // bumped by every membership op
  std::uint64_t data_count_ = 0;

  std::vector<TMesh::Handle> open_data_;
  std::vector<DataSession> data_meta_;

  std::size_t scanned_history_ = 0;
  std::vector<DeliveryMeta> delivery_meta_;  // one per emitted rekey delivery
  int next_validate_ = 0;

  // Version-uniqueness ledger over every message the run has seen, and the
  // payloads of burned (crash-undistributed) messages for the conservative
  // forward-secrecy leak model.
  std::set<std::pair<KeyId, std::uint32_t>> issued_;
  int audited_unsent_ = 0;
  std::vector<std::vector<Encryption>> leaked_;

  // Decryption-closure tracking (non-cluster mode): per-member held keys and
  // the knowledge snapshots of recently departed members.
  std::map<UserId, std::map<KeyId, std::uint32_t>> held_;
  std::deque<Departed> departed_;
};

// ---------------------------------------------------------------------------
// kSilk substrate: the message-driven join/leave protocol. Joins are
// serialized (the protocol's contract); leaves deliberately are NOT — a run
// of kLeave ops without an intervening drain puts several leave floods in
// flight at once, which is where 1-consistency earns its keep. Concurrency
// is capped at K-1 in-flight departures, the tolerance Definition 3
// actually promises; beyond that a flood can lose its only route into a
// subtree and no local repair can recover. kData and kAdvance drain first,
// so every delivery/consistency assertion runs at a quiescent point.
// ---------------------------------------------------------------------------
class SilkHarness {
 public:
  explicit SilkHarness(const FuzzConfig& cfg)
      : cfg_(cfg),
        net_(NetParams(cfg)),
        sim_(Simulator::Options{.discipline = cfg.discipline,
                                .adaptive_retune = cfg.adaptive_retune}),
        bus_(sim_),
        group_(bus_, {&net_, cfg.group, 0}) {
    for (HostId h = 1; h < cfg.hosts; ++h) free_hosts_.push_back(h);
  }

  void Apply(int index, const Op& op, std::string& log) {
    switch (op.kind) {
      case OpKind::kJoin: {
        Guard("op", [&] { DrainSliced(sim_, cfg_.step_events); });
        in_flight_leaves_ = 0;
        if (free_hosts_.empty() || IdSpaceFull()) break;
        std::size_t pick = op.arg % free_hosts_.size();
        HostId host = free_hosts_[pick];
        UserId id = FreshId(op.arg2);
        Guard("op", [&] {
          group_.Join(id, host, sim_.Now());
          DrainSliced(sim_, cfg_.step_events);
        });
        free_hosts_.erase(free_hosts_.begin() +
                          static_cast<std::ptrdiff_t>(pick));
        present_.insert(std::lower_bound(present_.begin(), present_.end(), id),
                        id);
        CheckConsistency();
        break;
      }
      case OpKind::kLeave: {
        if (present_.empty()) break;
        // Definition 3's tolerance: a K-consistent table stays routable
        // through at most K-1 concurrent departures. Batches beyond that
        // can orphan whole subtrees mid-flood — outside the protocol's
        // contract — so drain before the burst would exceed it, unless the
        // script opted into the uncapped regime (checked with maintenance).
        if (!cfg_.uncapped_leaves &&
            in_flight_leaves_ >= cfg_.group.capacity - 1) {
          Guard("op", [&] { DrainSliced(sim_, cfg_.step_events); });
          in_flight_leaves_ = 0;
        }
        std::size_t pick;
        if (op.arg2 != 0 && have_last_left_) {
          // Correlated leave: pick among the live members sharing the
          // longest ID prefix with the previous leaver. Batches of these are
          // the adversarial case for AcceptLeave's refill — the departing
          // members carry each other as replacement candidates, so a
          // same-subtree burst can leave nothing live to refill from.
          int best = -1;
          std::vector<std::size_t> ties;
          for (std::size_t j = 0; j < present_.size(); ++j) {
            int cpl = present_[j].CommonPrefixLen(last_left_);
            if (cpl > best) {
              best = cpl;
              ties.clear();
            }
            if (cpl == best) ties.push_back(j);
          }
          pick = ties[op.arg % ties.size()];
        } else {
          pick = op.arg % present_.size();
        }
        UserId victim = present_[pick];
        last_left_ = victim;
        have_last_left_ = true;
        HostId host = group_.HostOf(victim);
        // No drain (within the K-1 cap): consecutive kLeave ops put
        // concurrent floods in flight.
        Guard("op", [&] { group_.Leave(victim); });
        present_.erase(present_.begin() + static_cast<std::ptrdiff_t>(pick));
        free_hosts_.push_back(host);
        any_leave_ = true;
        ++in_flight_leaves_;
        break;
      }
      case OpKind::kFail:
      case OpKind::kRepair:
      case OpKind::kKillServer:
      case OpKind::kPartitionServer:
      case OpKind::kHealPartition:
        break;  // no failure/replication model in the Silk substrate
      case OpKind::kData: {
        Guard("op", [&] { DrainSliced(sim_, cfg_.step_events); });
        in_flight_leaves_ = 0;
        if (present_.size() < 2) break;
        UserId sender = present_[op.arg % present_.size()];
        TMesh::Options opts;
        opts.loss_prob = cfg_.loss_prob;
        opts.loss_seed = cfg_.seed * 0xD1B54A32D192ED03ull +
                         static_cast<std::uint64_t>(++data_count_);
        TMesh mesh(group_, sim_);
        TMesh::Handle h = mesh.BeginData(sender, opts);
        Guard("op", [&] { DrainSliced(sim_, cfg_.step_events); });
        in_flight_leaves_ = 0;
        const TMesh::Result& res = h.result();
        Guard("theorem1-data", [&] {
          for (const UserId& u : present_) {
            const MemberDeliveryRecord& r =
                res.member[static_cast<std::size_t>(group_.HostOf(u))];
            TMESH_CHECK_MSG(r.copies <= 1, "duplicate data delivery");
            if (res.deliveries_failed > 0) continue;
            if (u == sender) {
              TMESH_CHECK_MSG(r.copies == 0,
                              "sender received its own message");
            } else {
              TMESH_CHECK_MSG(r.copies == 1, "member missed a data message");
            }
          }
        });
        break;
      }
      case OpKind::kAdvance: {
        Guard("op", [&] { DrainSliced(sim_, cfg_.step_events); });
        in_flight_leaves_ = 0;
        CheckConsistency();
        break;
      }
    }
    Line(log, "#%d %s(%u) n=%d msgs=%" PRId64 " t_us=%" PRId64, index,
         ToString(op.kind), op.arg, group_.member_count(),
         group_.stats().messages, static_cast<std::int64_t>(sim_.Now()));
    if (cfg_.plant_max_members > 0) {
      Guard("planted", [&] {
        TMESH_CHECK_MSG(group_.member_count() < cfg_.plant_max_members,
                        "planted membership bound exceeded");
      });
    }
  }

  void Finish(std::string& log) {
    Guard("op", [&] { DrainSliced(sim_, cfg_.step_events); });
    CheckConsistency();
    Line(log, "final n=%d msgs=%" PRId64 " t_us=%" PRId64,
         group_.member_count(), group_.stats().messages,
         static_cast<std::int64_t>(sim_.Now()));
  }

 private:
  void CheckConsistency() {
    Guard("structure", [&] {
      TMESH_CHECK_MSG(
          group_.member_count() == static_cast<int>(present_.size()),
          "membership drifted from the issued join/leave sequence");
    });
    if (any_leave_) {
      if (cfg_.uncapped_leaves) {
        // Beyond-contract churn: 1-consistency is only promised after the
        // soft-state heartbeats repair the tables. Sweep to a fixpoint
        // (monotone, so it terminates) before asserting.
        Guard("op", [&] {
          for (int round = 0; round < 64 && group_.RunMaintenance(); ++round) {
          }
        });
      }
      Guard("1-consistency", [&] { group_.CheckConsistency(1); });
    } else {
      Guard("k-consistency",
            [&] { group_.CheckConsistency(cfg_.group.capacity); });
    }
  }

  bool IdSpaceFull() const {
    double space = 1.0;
    for (int i = 0; i < cfg_.group.digits; ++i) space *= cfg_.group.base;
    return static_cast<double>(present_.size()) >= space;
  }

  // Deterministic ID derivation: a pure function of (seed, arg2) modulo the
  // current membership (uniqueness retries), so a trace subsequence replays
  // to the same IDs wherever the membership prefix matches.
  UserId FreshId(std::uint32_t arg2) {
    for (std::uint64_t t = 0;; ++t) {
      std::uint64_t h =
          SplitMix64(cfg_.seed ^ (0x9E3779B97F4A7C15ull * (arg2 + 1) + t));
      UserId cand;
      for (int i = 0; i < cfg_.group.digits; ++i) {
        cand.Append(static_cast<int>((h >> (8 * i)) %
                                     static_cast<std::uint64_t>(
                                         cfg_.group.base)));
      }
      if (!group_.Contains(cand)) return cand;
    }
  }

  FuzzConfig cfg_;
  PlanetLabNetwork net_;
  Simulator sim_;
  SimTransport bus_;
  SilkGroup group_;
  std::vector<HostId> free_hosts_;
  std::vector<UserId> present_;  // sorted
  UserId last_left_;
  bool have_last_left_ = false;
  int in_flight_leaves_ = 0;
  bool any_leave_ = false;
  std::uint64_t data_count_ = 0;
};

template <class Harness>
RunResult RunWith(const FuzzConfig& cfg, const std::vector<Op>& trace) {
  RunResult out;
  Harness h(cfg);
  int i = 0;
  try {
    for (; i < static_cast<int>(trace.size()); ++i) {
      h.Apply(i, trace[static_cast<std::size_t>(i)], out.log);
      ++out.ops_executed;
    }
    h.Finish(out.log);
  } catch (const TaggedViolation& v) {
    out.violation = Violation{i, v.invariant, v.message};
  } catch (const std::logic_error& e) {
    out.violation = Violation{i, "op", e.what()};
  }
  return out;
}

const char* SubstrateName(Substrate s) {
  return s == Substrate::kDirectory ? "directory" : "silk";
}

}  // namespace

const char* ToString(OpKind k) {
  switch (k) {
    case OpKind::kJoin: return "join";
    case OpKind::kLeave: return "leave";
    case OpKind::kFail: return "fail";
    case OpKind::kRepair: return "repair";
    case OpKind::kData: return "data";
    case OpKind::kAdvance: return "advance";
    case OpKind::kKillServer: return "kill";
    case OpKind::kPartitionServer: return "partition";
    case OpKind::kHealPartition: return "heal";
  }
  return "?";
}

std::vector<Op> ChurnFuzzer::GenerateTrace(const FuzzConfig& cfg) {
  Rng rng(cfg.seed * 0x2545F4914F6CDD1Dull + 1);
  std::vector<Op> trace;
  trace.reserve(static_cast<std::size_t>(cfg.ops));
  const bool dir = cfg.substrate == Substrate::kDirectory;
  while (static_cast<int>(trace.size()) < cfg.ops) {
    Op op;
    // Front-load joins so the group has substance before churn sets in.
    int w = static_cast<int>(rng.UniformInt(0, 99));
    bool ramp = static_cast<int>(trace.size()) < std::min(cfg.ops / 8, 24);
    if (ramp && w < 70) {
      op.kind = OpKind::kJoin;
    } else if (dir) {
      // With replication on, the fault ops are carved out of the advance
      // band; at replicas == 1 the op-kind mapping is unchanged.
      const bool kills = cfg.replicas > 1 && cfg.gen_kills;
      const bool parts = cfg.replicas > 1 && cfg.gen_partitions;
      op.kind = w < 26             ? OpKind::kJoin
                : w < 40           ? OpKind::kLeave
                : w < 46           ? OpKind::kFail
                : w < 54           ? OpKind::kRepair
                : w < 66           ? OpKind::kData
                : kills && w < 70  ? OpKind::kKillServer
                : parts && w < 74  ? OpKind::kPartitionServer
                : parts && w < 78  ? OpKind::kHealPartition
                                   : OpKind::kAdvance;
    } else {
      op.kind = w < 32   ? OpKind::kJoin
                : w < 52 ? OpKind::kLeave
                : w < 66 ? OpKind::kData
                         : OpKind::kAdvance;
    }
    op.arg = static_cast<std::uint32_t>(rng.UniformInt(0, 1 << 30));
    if (op.kind == OpKind::kJoin) {
      op.arg2 = static_cast<std::uint32_t>(rng.UniformInt(0, 1 << 30));
    }
    if (dir && (op.kind == OpKind::kLeave || op.kind == OpKind::kKillServer)) {
      // Leave: odd arg2 targets a failed-but-unrepaired victim — the §2.3
      // MarkFailed → RequestLeave interleaving. Kill: odd arg2 crashes the
      // manager mid-batch instead of fail-stopping it cleanly.
      op.arg2 = static_cast<std::uint32_t>(rng.UniformInt(0, 1));
    }
    trace.push_back(op);
    // Silk leaves come in same-subtree bursts half the time: correlated
    // concurrent floods are the case AcceptLeave's refill has to survive.
    if (!dir && op.kind == OpKind::kLeave) {
      int burst = static_cast<int>(rng.UniformInt(0, 3));
      for (int b = 0;
           b < burst && static_cast<int>(trace.size()) < cfg.ops; ++b) {
        Op extra;
        extra.kind = OpKind::kLeave;
        extra.arg = static_cast<std::uint32_t>(rng.UniformInt(0, 1 << 30));
        extra.arg2 = 1;
        trace.push_back(extra);
      }
    }
  }
  return trace;
}

RunResult ChurnFuzzer::RunTrace(const FuzzConfig& cfg,
                                const std::vector<Op>& trace) {
  if (cfg.substrate == Substrate::kDirectory) {
    return RunWith<DirectoryHarness>(cfg, trace);
  }
  return RunWith<SilkHarness>(cfg, trace);
}

std::vector<Op> ChurnFuzzer::Minimize(const FuzzConfig& cfg,
                                      std::vector<Op> trace,
                                      const Violation& violation) {
  auto fails = [&](const std::vector<Op>& t) {
    RunResult r = RunTrace(cfg, t);
    return r.violation.has_value() &&
           r.violation->invariant == violation.invariant;
  };
  if (!fails(trace)) return trace;  // not reproducible as claimed; keep as-is

  // Ops after the faulting one never executed.
  if (violation.op_index >= 0 &&
      violation.op_index + 1 < static_cast<int>(trace.size())) {
    std::vector<Op> cut(trace.begin(),
                        trace.begin() + violation.op_index + 1);
    if (fails(cut)) trace = std::move(cut);
  }

  // ddmin: remove ever finer chunks while the violation survives.
  std::size_t n = 2;
  while (trace.size() >= 2) {
    std::size_t chunk = (trace.size() + n - 1) / n;
    bool reduced = false;
    for (std::size_t start = 0; start < trace.size(); start += chunk) {
      std::vector<Op> complement;
      complement.reserve(trace.size());
      complement.insert(complement.end(), trace.begin(),
                        trace.begin() + static_cast<std::ptrdiff_t>(start));
      std::size_t stop = std::min(start + chunk, trace.size());
      complement.insert(complement.end(),
                        trace.begin() + static_cast<std::ptrdiff_t>(stop),
                        trace.end());
      if (complement.size() < trace.size() && fails(complement)) {
        trace = std::move(complement);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= trace.size()) break;
      n = std::min(n * 2, trace.size());
    }
  }

  // Final one-at-a-time pass: the result is 1-minimal.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      std::vector<Op> t2 = trace;
      t2.erase(t2.begin() + static_cast<std::ptrdiff_t>(i));
      if (fails(t2)) {
        trace = std::move(t2);
        changed = true;
        break;
      }
    }
  }
  return trace;
}

std::string ChurnFuzzer::FormatScript(const FuzzConfig& cfg,
                                      const std::vector<Op>& trace,
                                      const std::string& comment) {
  std::string out = "# tmesh churn-fuzz repro\n";
  if (!comment.empty()) {
    std::istringstream lines(comment);
    std::string line;
    while (std::getline(lines, line)) out += "# " + line + "\n";
  }
  char buf[224];
  std::snprintf(buf, sizeof buf,
                "substrate %s\ndigits %d\nbase %d\ncapacity %d\nhosts %d\n"
                "loss %.12g\nseed %" PRIu64 "\ninterval_us %" PRId64
                "\nsplit %d\ncluster %d\nuncapped %d\nstep %zu"
                "\nadaptive %d\nreplicas %d\n",
                SubstrateName(cfg.substrate), cfg.group.digits, cfg.group.base,
                cfg.group.capacity, cfg.hosts, cfg.loss_prob, cfg.seed,
                static_cast<std::int64_t>(cfg.rekey_interval),
                cfg.split ? 1 : 0, cfg.cluster_heuristic ? 1 : 0,
                cfg.uncapped_leaves ? 1 : 0, cfg.step_events,
                cfg.adaptive_retune ? 1 : 0, cfg.replicas);
  out += buf;
  for (const Op& op : trace) {
    std::snprintf(buf, sizeof buf, "op %s %u %u\n", ToString(op.kind), op.arg,
                  op.arg2);
    out += buf;
  }
  return out;
}

bool ChurnFuzzer::ParseScript(const std::string& text, FuzzConfig* cfg,
                              std::vector<Op>* trace, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  *cfg = FuzzConfig{};
  trace->clear();
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    auto bad = [&] {
      return fail("line " + std::to_string(lineno) + ": cannot parse '" +
                  line + "'");
    };
    if (key == "op") {
      std::string kind;
      Op op;
      if (!(ls >> kind >> op.arg >> op.arg2)) return bad();
      if (kind == "join") op.kind = OpKind::kJoin;
      else if (kind == "leave") op.kind = OpKind::kLeave;
      else if (kind == "fail") op.kind = OpKind::kFail;
      else if (kind == "repair") op.kind = OpKind::kRepair;
      else if (kind == "data") op.kind = OpKind::kData;
      else if (kind == "advance") op.kind = OpKind::kAdvance;
      else if (kind == "kill") op.kind = OpKind::kKillServer;
      else if (kind == "partition") op.kind = OpKind::kPartitionServer;
      else if (kind == "heal") op.kind = OpKind::kHealPartition;
      else return bad();
      trace->push_back(op);
    } else if (key == "substrate") {
      std::string s;
      if (!(ls >> s)) return bad();
      if (s == "directory") cfg->substrate = Substrate::kDirectory;
      else if (s == "silk") cfg->substrate = Substrate::kSilk;
      else return bad();
    } else if (key == "digits") {
      if (!(ls >> cfg->group.digits)) return bad();
    } else if (key == "base") {
      if (!(ls >> cfg->group.base)) return bad();
    } else if (key == "capacity") {
      if (!(ls >> cfg->group.capacity)) return bad();
    } else if (key == "hosts") {
      if (!(ls >> cfg->hosts)) return bad();
    } else if (key == "loss") {
      if (!(ls >> cfg->loss_prob)) return bad();
    } else if (key == "seed") {
      if (!(ls >> cfg->seed)) return bad();
    } else if (key == "interval_us") {
      if (!(ls >> cfg->rekey_interval)) return bad();
    } else if (key == "split") {
      int v;
      if (!(ls >> v)) return bad();
      cfg->split = v != 0;
    } else if (key == "cluster") {
      int v;
      if (!(ls >> v)) return bad();
      cfg->cluster_heuristic = v != 0;
    } else if (key == "uncapped") {
      int v;
      if (!(ls >> v)) return bad();
      cfg->uncapped_leaves = v != 0;
    } else if (key == "step") {
      if (!(ls >> cfg->step_events)) return bad();
    } else if (key == "adaptive") {
      int v;
      if (!(ls >> v)) return bad();
      cfg->adaptive_retune = v != 0;
    } else if (key == "replicas") {
      if (!(ls >> cfg->replicas)) return bad();
    } else {
      return fail("line " + std::to_string(lineno) + ": unknown key '" + key +
                  "'");
    }
  }
  return true;
}

std::optional<ChurnFuzzer::Report> ChurnFuzzer::RunCampaign(
    const FuzzConfig& cfg) {
  std::vector<Op> trace = GenerateTrace(cfg);
  RunResult r = RunTrace(cfg, trace);
  if (!r.violation.has_value()) return std::nullopt;
  Report rep;
  rep.violation = *r.violation;
  rep.minimized = Minimize(cfg, std::move(trace), rep.violation);
  rep.script = FormatScript(
      cfg, rep.minimized,
      "invariant: " + rep.violation.invariant + "\n" + rep.violation.message);
  return rep;
}

// ---------------------------------------------------------------------------
// Big-N scale mode.

namespace {

std::size_t PeakRssKb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::size_t>(ru.ru_maxrss);  // KiB on Linux
}

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Derives a fresh user ID from the hash stream; rehashes while `taken`
// rejects, so the sequence is deterministic for a fixed seed.
template <class TakenFn>
UserId FreshId(const GroupParams& g, std::uint64_t* state, TakenFn&& taken) {
  for (;;) {
    std::uint64_t h = SplitMix64((*state)++);
    UserId id;
    for (int d = 0; d < g.digits; ++d) {
      id = id.Child(static_cast<int>(h % static_cast<std::uint64_t>(g.base)));
      h = SplitMix64(h);
    }
    if (!taken(id)) return id;
  }
}

UserId FreshUserId(const ModifiedKeyTree& mtree, const GroupParams& g,
                   std::uint64_t* state) {
  return FreshId(g, state,
                 [&](const UserId& id) { return mtree.Contains(id); });
}

// The admission-work meter the through-directory complexity pin reads:
// members inspected or written plus windowed RTT probes plus server refill
// scans. On the indexed policy this is O(D·B·(K+W)) per operation; on the
// scan policy it grows with N.
std::int64_t AdmissionWork(const Directory::OpStats& s) {
  return s.holders_examined + s.holders_updated + s.candidates_probed +
         s.server_candidates;
}

bool TablesEqual(const NeighborTable& x, const NeighborTable& y) {
  if (x.rows() != y.rows()) return false;
  for (int i = 0; i < x.rows(); ++i) {
    const auto& rx = x.row(i);
    const auto& ry = y.row(i);
    if (rx.size() != ry.size()) return false;
    auto jt = ry.begin();
    for (const auto& [digit, ex] : rx) {
      if (jt->first != digit) return false;
      const auto& ey = jt->second;
      if (ex.size() != ey.size()) return false;
      for (std::size_t k = 0; k < ex.size(); ++k) {
        if (!(ex[k].id == ey[k].id) || ex[k].host != ey[k].host ||
            ex[k].rtt_ms != ey[k].rtt_ms ||  // bitwise: same Network draws
            ex[k].join_time != ey[k].join_time) {
          return false;
        }
      }
      ++jt;
    }
  }
  return true;
}

// Empty string when the two directories hold byte-identical state; else a
// description of the first divergence (the indexed-vs-scan differential).
std::string DirectoriesDiffer(const Directory& a, const Directory& b) {
  if (a.member_count() != b.member_count()) {
    return "member counts " + std::to_string(a.member_count()) + " vs " +
           std::to_string(b.member_count());
  }
  for (const auto& [id, info] : a.members()) {
    if (!b.Contains(id)) return "member " + id.ToString() + " missing";
    const MemberInfo& other = b.Info(id);
    if (info.host != other.host || info.alive != other.alive) {
      return "member " + id.ToString() + " host/alive mismatch";
    }
    if (!TablesEqual(info.table, other.table)) {
      return "member " + id.ToString() + " table mismatch";
    }
  }
  if (!TablesEqual(a.ServerTable(), b.ServerTable())) {
    return std::string("server table mismatch");
  }
  return std::string();
}

}  // namespace

ScaleReport ChurnFuzzer::RunScaleCampaign(const ScaleConfig& cfg) {
  using Clock = std::chrono::steady_clock;
  ScaleReport rep;
  rep.users = cfg.users;
  auto fail = [&](std::string msg) {
    rep.ok = false;
    rep.error = std::move(msg);
    rep.peak_rss_kb = PeakRssKb();
    return rep;
  };

  if (cfg.users < 0 || cfg.epochs < 0 || cfg.batch_joins < 0 ||
      cfg.batch_leaves < 0 || cfg.wgl_degree < 2 || cfg.shards < 1 ||
      cfg.group.digits < 1 || cfg.group.digits > kMaxDigits ||
      cfg.group.base < 2 || cfg.group.base > kMaxBase) {
    return fail("invalid scale config");
  }
  const long long peak_pop =
      cfg.users + static_cast<long long>(cfg.epochs) * cfg.batch_joins;
  // The hash-derived ID space must stay sparse or FreshUserId degenerates
  // into collision rehashing (break early: base^digits overflows at B=256,
  // D=8).
  long long space = 1;
  for (int d = 0; d < cfg.group.digits && space < 4 * peak_pop; ++d) {
    space *= cfg.group.base;
  }
  if (space < 4 * peak_pop) {
    return fail("ID space base^digits too small for the peak population");
  }
  if (cfg.through_directory) {
    const GroupParams& dg = cfg.directory_group;
    if (dg.digits < 1 || dg.digits > kMaxDigits || dg.base < 2 ||
        dg.base > kMaxBase || dg.capacity < 1) {
      return fail("invalid directory group shape");
    }
    long long dspace = 1;
    for (int d = 0; d < dg.digits && dspace < 4 * peak_pop; ++d) {
      dspace *= dg.base;
    }
    if (dspace < 4 * peak_pop) {
      return fail("directory ID space too small for the peak population");
    }
  }

  try {
    WglKeyTree wgl(cfg.wgl_degree, cfg.wgl_placement);
    ModifiedKeyTree mtree(cfg.group.digits);
    std::uint64_t id_state = SplitMix64(cfg.seed ^ 0x5ca1ab1eull);
    std::uint64_t pick_state = SplitMix64(cfg.seed + 0x9e3779b9ull);
    auto pick = [&](std::size_t n) {
      return static_cast<std::size_t>(SplitMix64(pick_state++) % n);
    };
    // Volatile tagging is a pure hash of the member id, so every placement
    // arm of an ablation sweep sees the same assignment.
    auto is_volatile = [&](MemberId m) {
      return static_cast<double>(
                 SplitMix64(cfg.seed ^ 0x70a717e5ull ^
                            static_cast<std::uint64_t>(m)) >>
                 11) *
                 0x1.0p-53 <
             cfg.volatile_fraction;
    };
    // Picks a WGL leave victim; with probability volatile_leave_bias the
    // pick is re-drawn (bounded times) until it lands on a volatile member.
    auto pick_wgl_leave = [&](const std::vector<MemberId>& present) {
      std::size_t i = pick(present.size());
      if (cfg.volatile_fraction > 0.0) {
        const bool biased =
            static_cast<double>(SplitMix64(pick_state++) >> 11) * 0x1.0p-53 <
            cfg.volatile_leave_bias;
        if (biased) {
          for (int t = 0; t < 8 && !is_volatile(present[i]); ++t) {
            i = pick(present.size());
          }
        }
      }
      return i;
    };

    // Through-directory state (ISSUE 7 acceptance: the admission-complexity
    // pin must run with the campaign going *through* the Directory, not
    // around it).
    std::optional<SyntheticWanNetwork> net;
    std::optional<Directory> dir;
    std::optional<Directory> dir_ref;  // kScanReference differential twin
    std::vector<UserId> dir_present;
    std::uint64_t dir_id_state = SplitMix64(cfg.seed ^ 0xd17ec702ull);
    HostId next_host = 1;  // host 0 is the key server
    SimTime dir_clock = 0;
    std::int64_t dir_work_before = 0;
    auto fresh_dir_ids = [&](int count) {
      // Pre-drawn so the timed application loop is pure directory work and
      // the twin replays the identical sequence.
      std::vector<UserId> ids;
      ids.reserve(static_cast<std::size_t>(count));
      std::unordered_set<UserId> pending;
      for (int i = 0; i < count; ++i) {
        UserId id = FreshId(cfg.directory_group, &dir_id_state,
                            [&](const UserId& u) {
                              return pending.count(u) > 0 || dir->Contains(u);
                            });
        pending.insert(id);
        ids.push_back(id);
      }
      return ids;
    };
    if (cfg.through_directory) {
      SyntheticWanParams np;
      np.seed = cfg.seed;
      np.hosts = static_cast<int>(peak_pop) + 1;
      net.emplace(np);
      dir.emplace(*net, cfg.directory_group, /*server_host=*/0,
                  AdmissionOptions{cfg.directory_policy, 0});
      if (cfg.directory_cross_check) {
        dir_ref.emplace(*net, cfg.directory_group, /*server_host=*/0,
                        AdmissionOptions{AdmissionPolicy::kScanReference, 0});
      }
      dir_present.reserve(static_cast<std::size_t>(peak_pop));
      // N-independent admission-work unit: a join builds or tops up at most
      // D·B entries, each at `window` RTT probes; the K+W term leaves room
      // for the holder-touch counters, the amortized node-creation
      // broadcasts, and the amortized-O(K) server refills. A scan-shaped
      // regression costs Θ(N) per op and trips this as soon as N exceeds
      // the allowance.
      const int window = 4 * cfg.directory_group.capacity;  // ctor default
      rep.dir_allowance_per_op =
          cfg.directory_slack * cfg.directory_group.digits *
          cfg.directory_group.base *
          (cfg.directory_group.capacity + window);
    }

    std::vector<MemberId> wgl_present;
    std::vector<UserId> mtree_present;
    wgl_present.reserve(static_cast<std::size_t>(peak_pop));
    mtree_present.reserve(static_cast<std::size_t>(peak_pop));
    MemberId next_member = 0;

    // Build: the whole initial population joins in ONE batch interval —
    // this is the paper-scale rekey the flat layout exists for.
    auto t0 = Clock::now();
    {
      std::vector<MemberId> joins(static_cast<std::size_t>(cfg.users));
      for (auto& m : joins) m = next_member++;
      if (cfg.volatile_fraction > 0.0) {
        for (MemberId m : joins) wgl.TagVolatile(m, is_volatile(m));
      }
      rep.build_encryptions += wgl.Rekey(joins, {}).RekeyCost();
      wgl_present = std::move(joins);
      for (int i = 0; i < cfg.users; ++i) {
        UserId id = FreshUserId(mtree, cfg.group, &id_state);
        mtree.Join(id);
        mtree_present.push_back(id);
      }
      rep.build_encryptions += mtree.Rekey(cfg.shards).RekeyCost();
    }
    rep.build_seconds = SecondsSince(t0);
    wgl.ResetOpStats();

    if (dir) {
      std::vector<UserId> ids = fresh_dir_ids(cfg.users);
      auto d0 = Clock::now();
      for (int i = 0; i < cfg.users; ++i) {
        dir->AddMember(ids[static_cast<std::size_t>(i)], next_host + i,
                       dir_clock + i);
      }
      rep.dir_build_seconds = SecondsSince(d0);
      if (dir_ref) {
        for (int i = 0; i < cfg.users; ++i) {
          dir_ref->AddMember(ids[static_cast<std::size_t>(i)], next_host + i,
                             dir_clock + i);
        }
      }
      next_host += cfg.users;
      dir_clock += cfg.users;
      dir_present.insert(dir_present.end(), ids.begin(), ids.end());

      const std::int64_t work = AdmissionWork(dir->op_stats());
      rep.dir_build_touched_per_op =
          cfg.users > 0 ? static_cast<double>(work) / cfg.users : 0.0;
      dir_work_before = work;
      // The pin only binds the indexed policy; kScanReference is Θ(N) per
      // op by construction and runs unpinned for cost comparison.
      if (cfg.directory_policy == AdmissionPolicy::kIndexed &&
          rep.dir_build_touched_per_op > rep.dir_allowance_per_op) {
        return fail("directory build: " +
                    std::to_string(rep.dir_build_touched_per_op) +
                    " admission-work units per join, allowance " +
                    std::to_string(rep.dir_allowance_per_op) +
                    " (O(N) scan regression?)");
      }
      if (cfg.check_invariants) {
        dir->CheckIndexIntegrity();
        dir->CheckKConsistency();
      }
      if (dir_ref) {
        std::string diff = DirectoriesDiffer(*dir, *dir_ref);
        if (!diff.empty()) {
          return fail("directory build: indexed vs scan diverged: " + diff);
        }
      }
    }

    // Streamed-work allowance: a churn epoch may stamp at most
    // slack * batch * O(log_degree N) nodes. An O(N) sweep regression
    // blows through this as soon as N >> batch.
    int log_bound = 1;
    for (long long cap = 1; cap < peak_pop; cap *= cfg.wgl_degree) {
      ++log_bound;
    }
    const double allowance = cfg.work_slack *
                             (cfg.batch_joins + cfg.batch_leaves) *
                             (log_bound + 2);

    std::uint64_t marked_before = 0;
    for (int e = 0; e < cfg.epochs; ++e) {
      ScaleEpochStats es;

      // Batch selection is untimed harness work.
      std::vector<MemberId> joins;
      std::vector<MemberId> leaves;
      for (int j = 0; j < cfg.batch_joins; ++j) joins.push_back(next_member++);
      const int want =
          std::min<int>(cfg.batch_leaves,
                        static_cast<int>(wgl_present.size()));
      for (int l = 0; l < want; ++l) {
        std::size_t i = pick_wgl_leave(wgl_present);
        leaves.push_back(wgl_present[i]);
        wgl_present[i] = wgl_present.back();
        wgl_present.pop_back();
      }
      es.joins = static_cast<int>(joins.size());
      es.leaves = static_cast<int>(leaves.size());
      if (cfg.volatile_fraction > 0.0) {
        for (MemberId m : joins) wgl.TagVolatile(m, is_volatile(m));
      }

      auto e0 = Clock::now();
      es.wgl_encryptions = wgl.Rekey(joins, leaves).RekeyCost();
      wgl_present.insert(wgl_present.end(), joins.begin(), joins.end());
      for (int j = 0; j < cfg.batch_joins; ++j) {
        UserId id = FreshUserId(mtree, cfg.group, &id_state);
        mtree.Join(id);
        mtree_present.push_back(id);
      }
      for (int l = 0; l < want; ++l) {
        std::size_t i = pick(mtree_present.size());
        mtree.Leave(mtree_present[i]);
        mtree_present[i] = mtree_present.back();
        mtree_present.pop_back();
      }
      es.seconds = SecondsSince(e0);

      // Sharded-vs-serial cross-check: rekey a copy serially, untimed, and
      // demand the identical message from the sharded run.
      std::optional<ModifiedKeyTree> serial_ref;
      if (cfg.shards > 1 && cfg.cross_check_shards) serial_ref = mtree;
      auto e1 = Clock::now();
      RekeyMessage mm = mtree.Rekey(cfg.shards);
      es.seconds += SecondsSince(e1);
      es.mtree_encryptions = mm.RekeyCost();
      if (serial_ref.has_value()) {
        RekeyMessage sm = serial_ref->Rekey(1);
        if (!(sm.encryptions == mm.encryptions)) {
          return fail("epoch " + std::to_string(e) +
                      ": sharded rekey message differs from serial");
        }
      }

      const std::uint64_t marked_now = wgl.op_stats().rekey_marked_nodes;
      es.wgl_marked_nodes = marked_now - marked_before;
      marked_before = marked_now;
      if (static_cast<double>(es.wgl_marked_nodes) > allowance) {
        return fail("epoch " + std::to_string(e) + ": streamed rekey marked " +
                    std::to_string(es.wgl_marked_nodes) +
                    " nodes, allowance " +
                    std::to_string(static_cast<std::uint64_t>(allowance)) +
                    " (O(N) sweep regression?)");
      }

      if (cfg.check_invariants) {
        wgl.CheckInvariants();
        mtree.CheckInvariants();
        if (wgl.member_count() != static_cast<int>(wgl_present.size()) ||
            mtree.user_count() != static_cast<int>(mtree_present.size())) {
          return fail("epoch " + std::to_string(e) +
                      ": population count drifted from the harness view");
        }
      }

      if (dir) {
        // Select ops untimed: fresh joins, uniform leave picks, and a small
        // MarkFailed + RepairFailure cycle (exercising the lazy underfull
        // cleanup at scale). Fail victims quiesce before the epoch's checks.
        std::vector<UserId> djoins = fresh_dir_ids(cfg.batch_joins);
        const int dwant = std::min<int>(
            cfg.batch_leaves, static_cast<int>(dir_present.size()));
        std::vector<UserId> dleaves;
        dleaves.reserve(static_cast<std::size_t>(dwant));
        for (int l = 0; l < dwant; ++l) {
          std::size_t i = pick(dir_present.size());
          dleaves.push_back(dir_present[i]);
          dir_present[i] = dir_present.back();
          dir_present.pop_back();
        }
        const int dfails =
            std::min<int>(32, static_cast<int>(dir_present.size()) / 8);
        std::vector<UserId> dfail_ids;
        dfail_ids.reserve(static_cast<std::size_t>(dfails));
        for (int f = 0; f < dfails; ++f) {
          std::size_t i = pick(dir_present.size());
          dfail_ids.push_back(dir_present[i]);
          dir_present[i] = dir_present.back();
          dir_present.pop_back();
        }
        es.dir_fails = dfails;

        auto d0 = Clock::now();
        for (std::size_t j = 0; j < djoins.size(); ++j) {
          dir->AddMember(djoins[j], next_host + static_cast<HostId>(j),
                         dir_clock + static_cast<SimTime>(j));
        }
        for (const UserId& id : dleaves) dir->RemoveMember(id);
        for (const UserId& id : dfail_ids) dir->MarkFailed(id);
        for (const UserId& id : dfail_ids) dir->RepairFailure(id);
        es.dir_seconds = SecondsSince(d0);
        if (dir_ref) {
          for (std::size_t j = 0; j < djoins.size(); ++j) {
            dir_ref->AddMember(djoins[j], next_host + static_cast<HostId>(j),
                               dir_clock + static_cast<SimTime>(j));
          }
          for (const UserId& id : dleaves) dir_ref->RemoveMember(id);
          for (const UserId& id : dfail_ids) dir_ref->MarkFailed(id);
          for (const UserId& id : dfail_ids) dir_ref->RepairFailure(id);
        }
        next_host += static_cast<HostId>(djoins.size());
        dir_clock += static_cast<SimTime>(djoins.size());
        dir_present.insert(dir_present.end(), djoins.begin(), djoins.end());

        const std::int64_t work_now = AdmissionWork(dir->op_stats());
        const int dops = static_cast<int>(djoins.size()) + dwant + dfails;
        es.dir_touched_per_op =
            dops > 0
                ? static_cast<double>(work_now - dir_work_before) / dops
                : 0.0;
        dir_work_before = work_now;
        if (cfg.directory_policy == AdmissionPolicy::kIndexed &&
            es.dir_touched_per_op > rep.dir_allowance_per_op) {
          return fail("epoch " + std::to_string(e) + ": directory " +
                      std::to_string(es.dir_touched_per_op) +
                      " admission-work units per op, allowance " +
                      std::to_string(rep.dir_allowance_per_op) +
                      " (O(N) scan regression?)");
        }
        if (cfg.check_invariants) {
          dir->CheckIndexIntegrity();
          dir->CheckKConsistency();
          if (dir->member_count() != static_cast<int>(dir_present.size())) {
            return fail("epoch " + std::to_string(e) +
                        ": directory population drifted from the harness "
                        "view");
          }
        }
        if (dir_ref) {
          std::string diff = DirectoriesDiffer(*dir, *dir_ref);
          if (!diff.empty()) {
            return fail("epoch " + std::to_string(e) +
                        ": indexed vs scan directory diverged: " + diff);
          }
        }
      }

      rep.churn_seconds += es.seconds;
      rep.epochs.push_back(es);

      if (cfg.max_peak_rss_kb != 0 && PeakRssKb() > cfg.max_peak_rss_kb) {
        return fail("epoch " + std::to_string(e) + ": peak RSS " +
                    std::to_string(PeakRssKb()) + " KiB exceeds bound " +
                    std::to_string(cfg.max_peak_rss_kb) + " KiB");
      }
    }

    const double events = static_cast<double>(cfg.epochs) *
                          (cfg.batch_joins + cfg.batch_leaves);
    rep.events_per_sec =
        rep.churn_seconds > 0.0 ? events / rep.churn_seconds : 0.0;
  } catch (const std::logic_error& e) {
    return fail(std::string("invariant: ") + e.what());
  }

  rep.peak_rss_kb = PeakRssKb();
  rep.ok = true;
  return rep;
}

}  // namespace fuzz
}  // namespace tmesh
