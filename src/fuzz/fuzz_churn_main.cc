// fuzz_churn: churn-fuzzing campaign driver.
//
//   fuzz_churn [--substrate=directory|silk] [--seed=N] [--seeds=M]
//              [--ops=N] [--hosts=N] [--digits=D] [--base=B] [--k=K]
//              [--loss=P] [--interval-ms=N] [--cluster] [--no-split]
//              [--uncapped] [--replicas=N] [--kill-server] [--partition]
//              [--discipline=calendar|heap] [--step=N]
//              [--static-calendar] [--out=DIR]
//   fuzz_churn --replay=FILE [--discipline=calendar|heap] [--step=N]
//   fuzz_churn --scale [--users=N] [--epochs=N] [--batch=N] [--shards=N]
//              [--degree=D] [--digits=D] [--base=B] [--seed=N]
//              [--rss-limit-kb=N] [--slack=X] [--no-check]
//              [--placement=shallowest|churn-affinity] [--volatile=P]
//              [--volatile-bias=P] [--dir] [--dir-scan] [--dir-cross-check]
//              [--dir-slack=X]
//
// --step=N drives every simulator drain in RunFor slices of N events
// (0: monolithic); output is byte-identical for every value.
//
// --replicas=N runs the directory substrate behind the replicated key
// manager (N replicas). --kill-server / --partition additionally weight the
// generator toward that fault family (and default replicas to 3): the
// nightly failover campaigns.
//
// --scale runs the big-N smoke campaign over the flat key trees (one N-user
// build interval plus --epochs churn batches, asserting the streamed-work,
// sharding, and peak-RSS invariants) and exits 1 on any violation.
// --placement selects the WGL join-placement ablation arm; --volatile=P
// tags members volatile with probability P and biases WGL leave picks
// toward them (--volatile-bias, default 0.75) — the skewed-churn workload
// the churn-affinity placement is built for.
// --dir additionally drives an online Directory (over the hash-derived
// synthetic WAN) with same-sized admission/removal batches and asserts the
// admission-complexity pin: per-operation admission work must stay within
// an N-independent allowance (--dir-slack). --dir-scan forces the O(N)
// scan-reference policy (for cost comparison); --dir-cross-check replays
// every operation on a scan-reference twin and demands byte-identical
// tables (O(N) per op — small N only).
//
// Campaign mode runs `--seeds` consecutive seeds starting at `--seed`; on
// the first violation it delta-debugs the trace and writes the 1-minimal
// repro script to --out (default: the working directory), then exits 1.
// Replay mode re-executes a repro script and exits 1 iff it still violates.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/churn_fuzzer.h"

namespace {

using tmesh::fuzz::ChurnFuzzer;
using tmesh::fuzz::FuzzConfig;
using tmesh::fuzz::Substrate;

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--substrate=directory|silk] [--seed=N] [--seeds=M] "
      "[--ops=N]\n"
      "          [--hosts=N] [--digits=D] [--base=B] [--k=K] [--loss=P]\n"
      "          [--interval-ms=N] [--cluster] [--no-split] [--uncapped]\n"
      "          [--replicas=N] [--kill-server] [--partition]\n"
      "          [--discipline=calendar|heap] [--step=N] [--out=DIR]\n"
      "       %s --replay=FILE [--discipline=calendar|heap] [--step=N]\n"
      "       %s --scale [--users=N] [--epochs=N] [--batch=N] [--shards=N]\n"
      "          [--degree=D] [--digits=D] [--base=B] [--seed=N]\n"
      "          [--rss-limit-kb=N] [--slack=X] [--no-check]\n"
      "          [--placement=shallowest|churn-affinity] [--volatile=P]\n"
      "          [--volatile-bias=P] [--dir] [--dir-scan]\n"
      "          [--dir-cross-check] [--dir-slack=X]\n",
      argv0, argv0, argv0);
  std::exit(2);
}

long long ParseInt(const char* argv0, const char* value) {
  char* end = nullptr;
  long long v = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0') Usage(argv0);
  return v;
}

double ParseDouble(const char* argv0, const char* value) {
  char* end = nullptr;
  double v = std::strtod(value, &end);
  if (end == value || *end != '\0') Usage(argv0);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  FuzzConfig cfg;
  cfg.group = tmesh::GroupParams{3, 8, 2};
  long long seeds = 1;
  std::string out_dir = ".";
  std::string replay;
  bool scale = false;
  bool id_shape_set = false;  // --digits/--base given explicitly
  bool replicas_set = false;
  bool kill_server = false;
  bool partition = false;
  tmesh::fuzz::ScaleConfig scfg;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto val = [&](const char* prefix) -> const char* {
      std::size_t n = std::strlen(prefix);
      return std::strncmp(a, prefix, n) == 0 ? a + n : nullptr;
    };
    if (const char* v = val("--substrate=")) {
      if (std::strcmp(v, "directory") == 0) {
        cfg.substrate = Substrate::kDirectory;
      } else if (std::strcmp(v, "silk") == 0) {
        cfg.substrate = Substrate::kSilk;
      } else {
        Usage(argv[0]);
      }
    } else if (const char* v = val("--seed=")) {
      cfg.seed = static_cast<std::uint64_t>(ParseInt(argv[0], v));
    } else if (const char* v = val("--seeds=")) {
      seeds = ParseInt(argv[0], v);
    } else if (const char* v = val("--ops=")) {
      cfg.ops = static_cast<int>(ParseInt(argv[0], v));
    } else if (const char* v = val("--hosts=")) {
      cfg.hosts = static_cast<int>(ParseInt(argv[0], v));
    } else if (const char* v = val("--digits=")) {
      cfg.group.digits = static_cast<int>(ParseInt(argv[0], v));
      id_shape_set = true;
    } else if (const char* v = val("--base=")) {
      cfg.group.base = static_cast<int>(ParseInt(argv[0], v));
      id_shape_set = true;
    } else if (const char* v = val("--k=")) {
      cfg.group.capacity = static_cast<int>(ParseInt(argv[0], v));
    } else if (const char* v = val("--loss=")) {
      cfg.loss_prob = ParseDouble(argv[0], v);
    } else if (const char* v = val("--interval-ms=")) {
      cfg.rekey_interval = tmesh::FromMillis(
          static_cast<double>(ParseInt(argv[0], v)));
    } else if (std::strcmp(a, "--cluster") == 0) {
      cfg.cluster_heuristic = true;
    } else if (std::strcmp(a, "--uncapped") == 0) {
      cfg.uncapped_leaves = true;
    } else if (const char* v = val("--replicas=")) {
      cfg.replicas = static_cast<int>(ParseInt(argv[0], v));
      replicas_set = true;
    } else if (std::strcmp(a, "--kill-server") == 0) {
      kill_server = true;
    } else if (std::strcmp(a, "--partition") == 0) {
      partition = true;
    } else if (std::strcmp(a, "--no-split") == 0) {
      cfg.split = false;
    } else if (const char* v = val("--discipline=")) {
      if (std::strcmp(v, "calendar") == 0) {
        cfg.discipline = tmesh::QueueDiscipline::kCalendar;
      } else if (std::strcmp(v, "heap") == 0) {
        cfg.discipline = tmesh::QueueDiscipline::kBinaryHeap;
      } else {
        Usage(argv[0]);
      }
    } else if (const char* v = val("--step=")) {
      cfg.step_events = static_cast<std::size_t>(ParseInt(argv[0], v));
    } else if (std::strcmp(a, "--static-calendar") == 0) {
      cfg.adaptive_retune = false;
    } else if (const char* v = val("--out=")) {
      out_dir = v;
    } else if (const char* v = val("--replay=")) {
      replay = v;
    } else if (std::strcmp(a, "--scale") == 0) {
      scale = true;
    } else if (const char* v = val("--users=")) {
      scfg.users = static_cast<int>(ParseInt(argv[0], v));
    } else if (const char* v = val("--epochs=")) {
      scfg.epochs = static_cast<int>(ParseInt(argv[0], v));
    } else if (const char* v = val("--batch=")) {
      scfg.batch_joins = static_cast<int>(ParseInt(argv[0], v));
      scfg.batch_leaves = scfg.batch_joins;
    } else if (const char* v = val("--shards=")) {
      scfg.shards = static_cast<int>(ParseInt(argv[0], v));
    } else if (const char* v = val("--degree=")) {
      scfg.wgl_degree = static_cast<int>(ParseInt(argv[0], v));
    } else if (const char* v = val("--rss-limit-kb=")) {
      scfg.max_peak_rss_kb = static_cast<std::size_t>(ParseInt(argv[0], v));
    } else if (const char* v = val("--slack=")) {
      scfg.work_slack = ParseDouble(argv[0], v);
    } else if (const char* v = val("--placement=")) {
      if (std::strcmp(v, "shallowest") == 0) {
        scfg.wgl_placement = tmesh::WglPlacement::kShallowest;
      } else if (std::strcmp(v, "churn-affinity") == 0) {
        scfg.wgl_placement = tmesh::WglPlacement::kChurnAffinity;
      } else {
        Usage(argv[0]);
      }
    } else if (const char* v = val("--volatile=")) {
      scfg.volatile_fraction = ParseDouble(argv[0], v);
    } else if (const char* v = val("--volatile-bias=")) {
      scfg.volatile_leave_bias = ParseDouble(argv[0], v);
    } else if (std::strcmp(a, "--dir") == 0) {
      scfg.through_directory = true;
    } else if (std::strcmp(a, "--dir-scan") == 0) {
      scfg.through_directory = true;
      scfg.directory_policy = tmesh::AdmissionPolicy::kScanReference;
    } else if (std::strcmp(a, "--dir-cross-check") == 0) {
      scfg.through_directory = true;
      scfg.directory_cross_check = true;
    } else if (const char* v = val("--dir-slack=")) {
      scfg.directory_slack = ParseDouble(argv[0], v);
    } else if (std::strcmp(a, "--no-check") == 0) {
      scfg.check_invariants = false;
      scfg.cross_check_shards = false;
    } else {
      Usage(argv[0]);
    }
  }

  // Fault-injection campaigns (ISSUE 8 / S6): either flag implies a
  // replicated manager; each narrows the generator to its fault family so
  // nightly kill and partition arms shake different interleavings.
  if (kill_server || partition) {
    if (!replicas_set) cfg.replicas = 3;
    cfg.gen_kills = kill_server;
    cfg.gen_partitions = partition;
  }

  if (scale) {
    scfg.seed = cfg.seed;
    // --digits/--base carry over; otherwise scale mode defaults to the
    // paper-scale ID space (D=5, B=256) rather than the tiny fuzzing one.
    if (id_shape_set) scfg.group = cfg.group;
    std::printf(
        "scale users=%d epochs=%d batch=%d+%d shards=%d degree=%d "
        "placement=%s id-space=%d^%d seed=%llu\n",
        scfg.users, scfg.epochs, scfg.batch_joins, scfg.batch_leaves,
        scfg.shards, scfg.wgl_degree,
        scfg.wgl_placement == tmesh::WglPlacement::kChurnAffinity
            ? "churn-affinity"
            : "shallowest",
        scfg.group.base, scfg.group.digits,
        static_cast<unsigned long long>(scfg.seed));
    if (scfg.through_directory) {
      std::printf(
          "  directory: policy=%s id-space=%d^%d k=%d%s\n",
          scfg.directory_policy == tmesh::AdmissionPolicy::kIndexed
              ? "indexed"
              : "scan-reference",
          scfg.directory_group.base, scfg.directory_group.digits,
          scfg.directory_group.capacity,
          scfg.directory_cross_check ? " cross-check" : "");
    }
    std::fflush(stdout);
    tmesh::fuzz::ScaleReport rep =
        ChurnFuzzer::RunScaleCampaign(scfg);
    std::printf("  build: %.3fs (%zu encryptions)\n", rep.build_seconds,
                rep.build_encryptions);
    if (scfg.through_directory) {
      std::printf(
          "  directory build: %.3fs, %.1f admission-work/join "
          "(allowance %.0f)\n",
          rep.dir_build_seconds, rep.dir_build_touched_per_op,
          rep.dir_allowance_per_op);
    }
    for (std::size_t e = 0; e < rep.epochs.size(); ++e) {
      const auto& es = rep.epochs[e];
      std::printf(
          "  epoch %zu: %d joins + %d leaves, %zu + %zu encryptions, "
          "%llu marked, %.3fs\n",
          e + 1, es.joins, es.leaves, es.wgl_encryptions,
          es.mtree_encryptions,
          static_cast<unsigned long long>(es.wgl_marked_nodes), es.seconds);
      if (scfg.through_directory) {
        std::printf(
            "    directory: +%d -%d (%d fail/repair), "
            "%.1f admission-work/op, %.3fs\n",
            es.joins, es.leaves + es.dir_fails, es.dir_fails,
            es.dir_touched_per_op, es.dir_seconds);
      }
    }
    std::printf("  events/sec: %.0f  peak RSS: %zu KiB\n", rep.events_per_sec,
                rep.peak_rss_kb);
    if (!rep.ok) {
      std::printf("  SCALE VIOLATION: %s\n", rep.error.c_str());
      return 1;
    }
    std::printf("  clean\n");
    return 0;
  }

  if (!replay.empty()) {
    std::ifstream in(replay);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", replay.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    FuzzConfig rcfg;
    std::vector<tmesh::fuzz::Op> trace;
    std::string error;
    if (!ChurnFuzzer::ParseScript(text.str(), &rcfg, &trace, &error)) {
      std::fprintf(stderr, "parse error: %s\n", error.c_str());
      return 2;
    }
    rcfg.discipline = cfg.discipline;
    rcfg.step_events = cfg.step_events;
    tmesh::fuzz::RunResult r = ChurnFuzzer::RunTrace(rcfg, trace);
    if (r.violation.has_value()) {
      std::printf("VIOLATION [%s] at op %d after %d ops:\n  %s\n",
                  r.violation->invariant.c_str(), r.violation->op_index,
                  r.ops_executed, r.violation->message.c_str());
      return 1;
    }
    std::printf("clean: %d ops replayed\n", r.ops_executed);
    return 0;
  }

  for (long long s = 0; s < seeds; ++s) {
    FuzzConfig run = cfg;
    run.seed = cfg.seed + static_cast<std::uint64_t>(s);
    std::printf(
        "campaign substrate=%s seed=%llu ops=%d k=%d loss=%g%s replicas=%d"
        "%s%s...\n",
        run.substrate == Substrate::kDirectory ? "directory" : "silk",
        static_cast<unsigned long long>(run.seed), run.ops,
        run.group.capacity, run.loss_prob,
        run.cluster_heuristic ? " cluster" : "", run.replicas,
        run.replicas > 1 && run.gen_kills ? " +kills" : "",
        run.replicas > 1 && run.gen_partitions ? " +partitions" : "");
    std::fflush(stdout);
    auto report = ChurnFuzzer::RunCampaign(run);
    if (!report.has_value()) {
      std::printf("  clean\n");
      continue;
    }
    std::printf("  VIOLATION [%s] at op %d: %s\n",
                report->violation.invariant.c_str(),
                report->violation.op_index,
                report->violation.message.c_str());
    std::printf("  minimized to %zu ops\n", report->minimized.size());
    std::string path = out_dir + "/fuzz_" +
                       (run.substrate == Substrate::kDirectory ? "directory"
                                                               : "silk") +
                       "_seed" + std::to_string(run.seed) + ".repro";
    std::ofstream out(path);
    out << report->script;
    out.close();
    std::printf("  repro written to %s\n", path.c_str());
    return 1;
  }
  return 0;
}
