// Churn fuzzing harness with a seed-minimizing reducer.
//
// The paper's guarantees — K-consistency after join-only sequences and
// 1-consistency under churn (Definition 3, §3.2), Theorem 1 exactly-once
// delivery, and decryption closure after REKEY-MESSAGE-SPLIT (Theorem 2 /
// Corollary 1) — are only as good as the interleavings they survive. This
// module drives long randomized interleavings of membership churn, failures,
// rekey intervals and data sessions against the event simulator and asserts
// the full invariant set at every quiescent point.
//
// Design:
//   - An operation trace is a flat list of `Op`s whose arguments are
//     *selectors*, not absolute identities: "leave op" carries an index that
//     the executor reduces modulo the current membership. Any subsequence of
//     a valid trace is therefore itself a valid trace — exactly the property
//     delta debugging needs.
//   - Execution is a pure function of (config, trace): the simulator's
//     (time, seq) ordering contract plus selector semantics make every
//     replay — including replays of a ddmin-reduced subsequence — land on
//     the identical violation. The execution log is byte-identical across
//     QueueDiscipline::{kCalendar, kBinaryHeap}.
//   - Invariant violations surface as TMESH_CHECK throws; RunTrace catches
//     them and reports the op index. Minimize() then applies ddmin over the
//     trace (subsequence removal at shrinking granularity, then a final
//     one-at-a-time pass) and FormatScript() serializes the 1-minimal repro
//     as a text script, which fuzz_churn writes for check-in under
//     tests/fuzz_repros/.
//
// Two substrates are fuzzed:
//   - kDirectory: the online KeyServer over the Directory oracle — joins,
//     leaves, MarkFailed/RepairFailure, periodic batch rekeys (with
//     splitting and optionally the cluster heuristic), concurrent data
//     sessions, per-transmission loss. Invariants: Definition-3
//     K-consistency whenever no failure is outstanding, Theorem-1 delivery
//     per session, decryption closure for every live member after each
//     interval, no decryption closure for departed members (forward
//     secrecy), ID-tree/key-tree structural agreement, cluster invariants.
//     With replicas > 1 the server runs behind the §3g replication facade
//     and the trace may kill/partition/heal the elected manager; the same
//     invariant set must hold across failovers, plus version uniqueness:
//     no (key ID, version) pair is ever introduced by two rekey messages —
//     a mid-batch crash must burn, not reuse, its undistributed versions.
//   - kSilk: the message-driven SilkGroup protocol — joins (serialized, as
//     the protocol requires), leave *batches* (concurrent leave notices in
//     flight), data sessions over the protocol-built tables. Invariants:
//     K-consistency in the no-leave prefix, 1-consistency at every
//     quiescent point afterwards, Theorem-1 delivery.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/directory.h"
#include "core/group_view.h"
#include "keytree/wgl_key_tree.h"
#include "sim/simulator.h"

namespace tmesh {
namespace fuzz {

enum class Substrate { kDirectory, kSilk };

enum class OpKind {
  kJoin,     // admit a member (arg selects the host; arg2 seeds the Silk ID)
  kLeave,    // graceful leave (arg selects among current members; kDirectory:
             // arg2 odd prefers a failed-but-unrepaired victim — the §2.3
             // MarkFailed → RequestLeave interleaving the server must route
             // to RepairFailure)
  kFail,     // MarkFailed (kDirectory only; arg selects among alive members)
  kRepair,   // RepairFailure (kDirectory only; arg selects among failed)
  kData,     // quiesce, then run one data multicast and assert Theorem 1
  kAdvance,  // drain / advance past rekey ticks, then assert all invariants
  // Fault injection against the replicated key manager (kDirectory with
  // replicas > 1; no-ops otherwise — the facade refuses any fault that
  // would leave no eligible replica, so any trace subsequence stays valid).
  kKillServer,       // fail-stop the manager (arg2 odd: crash mid-batch,
                     // after the rekey but before distribution)
  kPartitionServer,  // partition the manager away from the quorum
  kHealPartition,    // heal the lowest-numbered partitioned replica
};

struct Op {
  OpKind kind = OpKind::kAdvance;
  std::uint32_t arg = 0;   // selector, reduced modulo the eligible set
  std::uint32_t arg2 = 0;  // kJoin: ID-derivation seed (Silk substrate)
};

struct FuzzConfig {
  Substrate substrate = Substrate::kDirectory;
  GroupParams group{3, 8, 2};
  int hosts = 64;                // host pool (host 0 is the key server)
  double loss_prob = 0.0;        // per-transmission loss for data sessions
  std::uint64_t seed = 1;        // trace generation + loss seeds
  int ops = 1000;                // trace length for GenerateTrace
  SimTime rekey_interval = FromSeconds(10);  // kDirectory batch interval
  bool split = true;             // REKEY-MESSAGE-SPLIT on interval messages
  // Silk only: allow leave bursts beyond the K-1 concurrent departures
  // Definition 3 tolerates. In this regime flood coverage can tear, so the
  // harness runs SilkGroup::RunMaintenance() to a fixpoint (the soft-state
  // heartbeat model) before asserting 1-consistency.
  bool uncapped_leaves = false;
  bool cluster_heuristic = false;  // Appendix-B mode (kDirectory only)
  // Key-manager replication (kDirectory only): the group runs behind
  // `replicas` key-server replicas (DESIGN.md §3g). 1 is the plain single
  // server — byte-identical logs to the pre-replication harness; > 1
  // enables the kKillServer/kPartitionServer/kHealPartition fault ops and
  // the failover invariants (exactly-once across failover, no version ever
  // issued twice, forward secrecy across a mid-batch crash).
  int replicas = 1;
  // Trace-generation toggles for the fault ops (GenerateTrace only — a
  // script replay executes whatever ops it carries). Ignored at replicas=1.
  bool gen_kills = true;
  bool gen_partitions = true;
  QueueDiscipline discipline = QueueDiscipline::kCalendar;
  // Calendar-queue epoch width adaptation (ignored by kBinaryHeap). Queue
  // geometry can never change event order, so logs are byte-identical for
  // either value — the chunked-execution acceptance test replays traces
  // with it both on and off to prove that too.
  bool adaptive_retune = true;
  // RunFor slice size for every simulator drain/advance the harness issues
  // (0: monolithic Run()/RunUntil()). Logs and violations are byte-identical
  // for every value — the chunked-execution acceptance test replays traces
  // across several step shapes to prove it.
  std::size_t step_events = 0;
  // Test hook: when > 0, a deliberately bogus invariant "membership stays
  // below this size" is asserted after every op. The reducer self-test
  // plants a violation this way, because its 1-minimal repro has a known
  // size (plant_max_members join operations, and nothing else).
  int plant_max_members = 0;
};

struct Violation {
  int op_index = -1;        // index into the trace whose execution threw
  std::string invariant;    // which check tripped (best-effort label)
  std::string message;      // the TMESH_CHECK diagnostic
};

// ---------------------------------------------------------------------------
// Big-N scale mode.
//
// Drives the flat key trees directly (no simulator), and — when
// `through_directory` is set — an online Directory alongside them, over a
// hash-derived SyntheticWanNetwork. The key-tree half builds an N-member
// population in one batch rekey interval, then applies `epochs` randomized
// join/leave batches, rekeying both trees after each, and asserts the scale
// invariants:
//   - streamed work: the WGL tree's rekey_marked_nodes counter per epoch
//     must stay within work_slack * batch * O(log N). An accidental
//     O(N)-per-epoch sweep trips this immediately at large N.
//   - peak RSS: getrusage(RUSAGE_SELF).ru_maxrss must stay under
//     max_peak_rss_kb (0: unbounded) — the nightly hook against
//     materializing O(N) per-epoch state.
//   - sharding: when shards > 1, the modified tree's sharded rekey message
//     is compared element-wise against a serial rekey of a copied tree.
//   - structure: optional full CheckInvariants() pass per epoch (O(N),
//     untimed).
// The through-directory half admits/removes the same-sized batches via
// Directory::AddMember / RemoveMember (plus a small MarkFailed+RepairFailure
// cycle per epoch) and asserts the admission-complexity pin: the per-
// operation admission work — holders examined + updated + candidates
// RTT-probed + server refill scans, read from Directory::op_stats() deltas —
// must stay within directory_slack * D * B * (K + W), an N-independent unit.
// A scan-shaped regression (touching Θ(N) members per admission) trips this
// as soon as N exceeds the allowance. Historically scale mode bypassed the
// directory precisely because admission cost O(N); the indexed admission
// path (DESIGN.md "Indexed directory admission") is what makes running
// *through* the directory at 10^5+ users affordable.
struct ScaleConfig {
  int users = 100000;            // initial population (one batch interval)
  int epochs = 5;                // churn intervals after the build
  int batch_joins = 1000;        // joins per churn epoch
  int batch_leaves = 1000;       // leaves per churn epoch
  int wgl_degree = 4;            // WGL key-tree degree (paper: 4)
  WglPlacement wgl_placement = WglPlacement::kShallowest;
  // Skewed-churn workload for the placement ablation: joining members are
  // tagged volatile with probability volatile_fraction (hash-derived from
  // the seed, so both placement arms see the identical tag assignment), and
  // each WGL leave pick prefers a volatile member with probability
  // volatile_leave_bias. Zero keeps the legacy uniform-churn workload and
  // its exact pick sequence.
  double volatile_fraction = 0.0;
  double volatile_leave_bias = 0.75;
  GroupParams group{5, 256, 4};  // modified-tree ID space (paper: D=5, B=256)
  int shards = 1;                // ModifiedKeyTree::Rekey worker threads
  std::uint64_t seed = 1;        // drives ID derivation and leave selection
  double work_slack = 4.0;       // slack factor on the streamed-work bound
  std::size_t max_peak_rss_kb = 0;  // 0: no RSS bound
  bool check_invariants = true;  // O(N) structural check after each epoch
  bool cross_check_shards = true;  // sharded-vs-serial message equality

  // Through-directory admission. The directory gets its own, sparser ID
  // shape: at B=256 every level-0 row would hold up to 255 K-record entries
  // per member, which is prohibitive at 10^5 members; 8^7 keeps the per-
  // member table small while satisfying the 4x sparsity guard up to ~500k
  // users. Cross-checking replays every operation on a second
  // kScanReference directory and demands table equality — O(N) per op, so
  // only enable it at small N (the tier-1 smoke does).
  bool through_directory = false;
  GroupParams directory_group{7, 8, 2};
  AdmissionPolicy directory_policy = AdmissionPolicy::kIndexed;
  double directory_slack = 4.0;  // slack on the per-op admission-work unit
  bool directory_cross_check = false;
};

struct ScaleEpochStats {
  int joins = 0;
  int leaves = 0;
  std::size_t wgl_encryptions = 0;
  std::size_t mtree_encryptions = 0;
  std::uint64_t wgl_marked_nodes = 0;  // streaming-walk stamps this epoch
  double seconds = 0.0;                // batch application + both rekeys
  // Through-directory mode only.
  int dir_fails = 0;                // MarkFailed+RepairFailure cycles
  double dir_seconds = 0.0;         // directory ops, timed separately
  double dir_touched_per_op = 0.0;  // admission work per operation
};

struct ScaleReport {
  bool ok = false;
  std::string error;            // first violated invariant when !ok
  int users = 0;                // initial population actually built
  double build_seconds = 0.0;   // the N-join build interval (both trees)
  double churn_seconds = 0.0;   // sum of epoch seconds
  double events_per_sec = 0.0;  // churn events / churn_seconds
  std::size_t build_encryptions = 0;  // WGL + mtree build-interval message
  std::size_t peak_rss_kb = 0;  // process peak RSS at campaign end
  // Through-directory mode only.
  double dir_build_seconds = 0.0;
  double dir_build_touched_per_op = 0.0;
  double dir_allowance_per_op = 0.0;  // the admission-work bound applied
  std::vector<ScaleEpochStats> epochs;
};

struct RunResult {
  std::optional<Violation> violation;  // nullopt: trace ran clean
  std::string log;  // one line per executed op; byte-identical across
                    // queue disciplines and across replays
  int ops_executed = 0;
};

class ChurnFuzzer {
 public:
  // Deterministically generates a trace of cfg.ops operations from cfg.seed.
  static std::vector<Op> GenerateTrace(const FuzzConfig& cfg);

  // Executes a trace; stops at the first invariant violation. Deterministic:
  // identical (cfg, trace) inputs produce identical RunResults, for either
  // queue discipline.
  static RunResult RunTrace(const FuzzConfig& cfg, const std::vector<Op>& trace);

  // ddmin: reduces `trace` to a 1-minimal subsequence that still violates
  // (same invariant label; the op index may shift as ops are removed).
  static std::vector<Op> Minimize(const FuzzConfig& cfg,
                                  std::vector<Op> trace,
                                  const Violation& violation);

  // Repro-script serialization (the tests/fuzz_repros/ format).
  static std::string FormatScript(const FuzzConfig& cfg,
                                  const std::vector<Op>& trace,
                                  const std::string& comment = "");
  static bool ParseScript(const std::string& text, FuzzConfig* cfg,
                          std::vector<Op>* trace, std::string* error = nullptr);

  // Convenience: generate, run, and on violation minimize. Returns nullopt
  // if the campaign ran clean.
  struct Report {
    Violation violation;           // from the full trace
    std::vector<Op> minimized;     // 1-minimal repro
    std::string script;            // FormatScript(cfg, minimized)
  };
  static std::optional<Report> RunCampaign(const FuzzConfig& cfg);

  // Big-N smoke: builds an N-member population and churns it for
  // cfg.epochs batch intervals, asserting the scale invariants described
  // at ScaleConfig. Deterministic for a fixed config (timings aside).
  static ScaleReport RunScaleCampaign(const ScaleConfig& cfg);
};

const char* ToString(OpKind k);

}  // namespace fuzz
}  // namespace tmesh
