// Replicated key server (DESIGN.md §3g): N replicas behind one facade, one
// of which — the elected *key manager* — serves the group at a time.
//
// Replication model. The manager's logical state (directory roster, both
// key trees, interval bookkeeping) is synchronously replicated: at every
// client-op boundary the followers hold a state snapshot equivalent to the
// manager's. In-process this is modeled by reading KeyServer::TakeSnapshot()
// off the failed instance at the failure instant — byte-equivalent to a
// follower applying a quorum-acknowledged op log, without simulating the
// log itself. Each activation materializes a fresh KeyServer *incarnation*
// via InstallSnapshot; dead incarnations are retained so their in-flight
// multicasts drain and their delivery history stays queryable.
//
// Failover timeline (driven by KmElection on the simulator):
//   t0 kill/partition: the old manager halts (fail-stop); the successor
//      incarnation is materialized immediately and becomes the state owner,
//      so client joins/leaves keep landing (they accumulate in its first
//      batch) — but it does NOT rekey yet.
//   t0 + heartbeat_timeout: survivors detect the silence.
//   ... + election_delay: the lowest eligible replica wins; the successor
//      Start()s and periodic rekeying resumes. The rekey stall between t0
//      and here is the observable cost of a failover.
//
// Mid-batch crash (KillActive(mid_batch=true)): the manager crashes inside
// its next interval tick *after* the batch rekey but *before* multicasting
// the message. The renewed versions are burned — the successor re-stamps
// those paths and issues fresh versions one up, so no (key ID, version)
// pair is ever distributed twice and no member is locked out behind a
// version nobody received (the churn fuzzer's version-uniqueness and
// decryption-closure invariants pin both).
//
// Partitions are fail-stop: a partitioned manager stops serving at the
// partition instant (in a real deployment, lease/fencing enforces this; we
// model the post-fencing state, so split-brain is out of scope by
// construction) and may be healed back into eligibility as a follower.
//
// Determinism: with replicas == 1 the facade schedules nothing and
// delegates straight to the single KeyServer — byte-identical to using it
// directly. With replicas > 1, every incarnation serves the same logical
// server host (the virtual-IP model) and nothing about an incarnation
// depends on the replica count, so a fixed trace+seed yields byte-identical
// history/messages/deliveries at every replica count that survives it.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/key_server.h"
#include "ha/km_election.h"

namespace tmesh {
namespace ha {

class ReplicatedKeyServer {
 public:
  struct Config {
    KeyServer::Config server;
    int replicas = 1;
    KmElectionConfig election;
  };

  // The facade and every incarnation it materializes speak only to the
  // Transport seam (DESIGN.md §3h); cfg.server carries the environment
  // (topology + server host) like the underlying KeyServer::Config.
  ReplicatedKeyServer(Transport& transport, const Config& cfg);

  // Attaches a registry to the current and every future incarnation.
  void SetMetrics(MetricsRegistry* metrics);
  void Start() { active().Start(); }

  // --- client-facing operations (routed to the current state owner) -------
  std::optional<UserId> RequestJoin(HostId host) {
    return active().RequestJoin(host);
  }
  void RequestLeave(UserId id) { active().RequestLeave(id); }
  void MarkFailed(const UserId& id) { active().MarkFailed(id); }
  void RepairFailure(UserId id) { active().RepairFailure(id); }
  TMesh::Handle MulticastData(const UserId& sender) {
    return active().MulticastData(sender);
  }
  // The current manager's multicast mesh. Sessions begun on a previous
  // incarnation keep their own (retained) mesh and drain normally.
  TMesh& mesh() { return active().mesh(); }

  // --- fault injection -----------------------------------------------------
  // Kills the current manager. mid_batch crashes it inside its next
  // non-quiet interval tick, after the rekey but before distribution;
  // otherwise it fail-stops immediately. Refused (returns false) when it
  // would leave no eligible replica or while a crash/failover of the
  // manager is already pending.
  bool KillActive(bool mid_batch = false);
  // Partitions the current manager away from the quorum (fail-stop at the
  // partition instant; state preserved). Same refusal rules as KillActive.
  bool PartitionActive();
  // Heals the lowest-numbered partitioned replica back into eligibility.
  bool HealPartition() { return election_.HealOne(); }

  // --- replica/view state --------------------------------------------------
  int replica_count() const { return cfg_.replicas; }
  int active_replica() const {
    return incarnation_replica_[static_cast<std::size_t>(current_)];
  }
  int eligible_replicas() const { return election_.eligible_count(); }
  bool failover_in_progress() const {
    return election_.electing() || crash_armed_;
  }
  int incarnation_count() const {
    return static_cast<int>(incarnations_.size());
  }

  KeyServer& active() { return *incarnations_[static_cast<std::size_t>(current_)]; }
  const KeyServer& active() const {
    return *incarnations_[static_cast<std::size_t>(current_)];
  }
  const Directory& directory() const { return active().directory(); }
  const ModifiedKeyTree& key_tree() const { return active().key_tree(); }
  const ClusterRekeying& clusters() const { return active().clusters(); }
  std::uint32_t group_key_version() const {
    return active().group_key_version();
  }

  // --- aggregated history across incarnations ------------------------------
  // Incarnations only ever append, and a halted incarnation appends no
  // more, so the aggregate is the in-order concatenation with delivery
  // indices remapped to the global sequence.
  const std::vector<KeyServer::IntervalRecord>& history() const;
  const TMesh::Result& delivery(int index) const;
  const RekeyMessage& message(int index) const;

  // Messages generated but never distributed (one per mid-batch crash).
  int unsent_count() const { return static_cast<int>(unsent_.size()); }
  const RekeyMessage& unsent_message(int index) const {
    return *unsent_[static_cast<std::size_t>(index)];
  }

 private:
  void OnActiveCrashed();
  // Halts nothing itself: callers have already halted/doomed the current
  // incarnation. Materializes the successor from `snap`, routes ops to it,
  // and schedules the election chain that eventually Start()s it.
  void ActivateSuccessor(KeyServer::Snapshot snap);
  void Refresh() const;

  Transport& transport_;
  Config cfg_;
  KmElection election_;
  std::vector<std::unique_ptr<KeyServer>> incarnations_;  // oldest first
  std::vector<int> incarnation_replica_;  // replica id per incarnation
  int current_ = 0;
  bool crash_armed_ = false;
  MetricsRegistry* metrics_ = nullptr;
  std::vector<const RekeyMessage*> unsent_;

  // Lazily maintained aggregate views (append-only).
  mutable std::vector<KeyServer::IntervalRecord> agg_history_;
  mutable std::vector<std::pair<const KeyServer*, int>> agg_deliveries_;
  mutable std::vector<std::size_t> consumed_;  // history records folded, per
                                               // incarnation
};

}  // namespace ha
}  // namespace tmesh
