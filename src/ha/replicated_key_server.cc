#include "ha/replicated_key_server.h"

#include <utility>

namespace tmesh {
namespace ha {

ReplicatedKeyServer::ReplicatedKeyServer(Transport& transport,
                                         const Config& cfg)
    : transport_(transport),
      cfg_(cfg),
      election_(transport, cfg.election, cfg.replicas) {
  TMESH_CHECK(cfg.replicas >= 1);
  incarnations_.push_back(std::make_unique<KeyServer>(transport, cfg.server));
  incarnation_replica_.push_back(0);
  consumed_.push_back(0);
}

void ReplicatedKeyServer::SetMetrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  active().SetMetrics(metrics);
}

bool ReplicatedKeyServer::KillActive(bool mid_batch) {
  if (election_.eligible_count() <= 1) return false;  // never orphan the group
  if (failover_in_progress()) return false;
  if (mid_batch) {
    // The crash fires inside the manager's next non-quiet interval tick;
    // until then it keeps serving.
    crash_armed_ = true;
    active().InjectCrashBeforeDistribute();
    active().SetCrashHandler([this] {
      crash_armed_ = false;
      OnActiveCrashed();
    });
    return true;
  }
  KeyServer::Snapshot snap = active().TakeSnapshot();
  active().Halt();
  election_.MarkDead(active_replica());
  ActivateSuccessor(std::move(snap));
  return true;
}

bool ReplicatedKeyServer::PartitionActive() {
  if (election_.eligible_count() <= 1) return false;
  if (failover_in_progress()) return false;
  // Fail-stop at the partition instant: the manager's lease with the quorum
  // lapses and it stops serving (we model the post-fencing state, so the
  // partitioned side cannot keep distributing keys — no split brain). Its
  // replica stays alive and may be healed back in as a follower.
  KeyServer::Snapshot snap = active().TakeSnapshot();
  active().Halt();
  election_.MarkPartitioned(active_replica());
  ActivateSuccessor(std::move(snap));
  return true;
}

void ReplicatedKeyServer::OnActiveCrashed() {
  // Called from inside the dying manager's interval tick: the rekey ran,
  // the message never left. Record the burned message for the
  // version-uniqueness audit; the snapshot carries the re-issue list.
  TMESH_CHECK(active().unsent_message() != nullptr);
  unsent_.push_back(active().unsent_message());
  KeyServer::Snapshot snap = active().TakeSnapshot();
  election_.MarkDead(active_replica());
  ActivateSuccessor(std::move(snap));
}

void ReplicatedKeyServer::ActivateSuccessor(KeyServer::Snapshot snap) {
  int winner = election_.Winner();
  TMESH_CHECK_MSG(winner >= 0, "failover with no eligible replica");
  auto next = std::make_unique<KeyServer>(transport_, cfg_.server);
  if (metrics_ != nullptr) next->SetMetrics(metrics_);
  next->InstallSnapshot(snap);
  incarnations_.push_back(std::move(next));
  incarnation_replica_.push_back(winner);
  consumed_.push_back(0);
  current_ = static_cast<int>(incarnations_.size()) - 1;
  // The successor owns the state immediately (client ops keep landing and
  // accumulate in its first batch), but rekeying only resumes once the
  // election completes — the observable failover stall.
  election_.BeginFailover([this](int elected) {
    TMESH_CHECK(elected == active_replica());
    TMESH_CHECK(!active().halted());
    active().Start();
  });
}

void ReplicatedKeyServer::Refresh() const {
  for (std::size_t k = 0; k < incarnations_.size(); ++k) {
    const KeyServer& s = *incarnations_[k];
    const auto& hist = s.history();
    for (std::size_t i = consumed_[k]; i < hist.size(); ++i) {
      KeyServer::IntervalRecord rec = hist[i];
      if (rec.delivery >= 0) {
        agg_deliveries_.emplace_back(&s, rec.delivery);
        rec.delivery = static_cast<int>(agg_deliveries_.size()) - 1;
      }
      agg_history_.push_back(rec);
    }
    consumed_[k] = hist.size();
  }
}

const std::vector<KeyServer::IntervalRecord>& ReplicatedKeyServer::history()
    const {
  Refresh();
  return agg_history_;
}

const TMesh::Result& ReplicatedKeyServer::delivery(int index) const {
  Refresh();
  const auto& [server, local] =
      agg_deliveries_[static_cast<std::size_t>(index)];
  return server->delivery(local);
}

const RekeyMessage& ReplicatedKeyServer::message(int index) const {
  Refresh();
  const auto& [server, local] =
      agg_deliveries_[static_cast<std::size_t>(index)];
  return server->message(local);
}

}  // namespace ha
}  // namespace tmesh
