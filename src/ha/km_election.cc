#include "ha/km_election.h"

namespace tmesh {
namespace ha {

KmElection::KmElection(Transport& transport, const KmElectionConfig& cfg,
                       int replicas)
    : transport_(transport), cfg_(cfg) {
  TMESH_CHECK(replicas >= 1);
  replicas_.resize(static_cast<std::size_t>(replicas));
}

int KmElection::eligible_count() const {
  int n = 0;
  for (const Replica& r : replicas_) {
    if (r.alive && !r.partitioned) ++n;
  }
  return n;
}

int KmElection::Winner() const {
  for (int id = 0; id < replica_count(); ++id) {
    const Replica& r = replicas_[static_cast<std::size_t>(id)];
    if (r.alive && !r.partitioned) return id;
  }
  return -1;
}

void KmElection::MarkDead(int id) {
  At(id).alive = false;
  At(id).partitioned = false;
}

void KmElection::MarkPartitioned(int id) {
  TMESH_CHECK_MSG(At(id).alive, "partition of a dead replica");
  At(id).partitioned = true;
}

bool KmElection::HealOne() {
  for (Replica& r : replicas_) {
    if (r.alive && r.partitioned) {
      r.partitioned = false;
      return true;
    }
  }
  return false;
}

void KmElection::BeginFailover(std::function<void(int)> on_elected) {
  // The outcome is fixed by the survivor set at the failure instant: the
  // lowest eligible replica. A replica healed back in *during* the round
  // joins as a follower — it must not depose the successor the quorum is
  // already converging on (that would be a second failover nobody asked
  // for).
  const int winner = Winner();
  TMESH_CHECK_MSG(winner >= 0, "failover with no eligible replica");
  const std::uint64_t gen = ++generation_;
  electing_ = true;
  // Detection: the survivors notice the manager's silence one heartbeat
  // window after the failure, then run one election round.
  transport_.ScheduleIn(cfg_.heartbeat_timeout, [this, gen, winner,
                                                 on_elected] {
    if (gen != generation_) return;  // superseded by a newer failover
    transport_.ScheduleIn(cfg_.election_delay, [this, gen, winner,
                                                on_elected] {
      if (gen != generation_) return;
      TMESH_CHECK_MSG(At(winner).alive && !At(winner).partitioned,
                      "elected replica lost during the round");
      electing_ = false;
      on_elected(winner);
    });
  });
}

}  // namespace ha
}  // namespace tmesh
