// Deterministic key-manager election for the replicated key server
// (DESIGN.md §3g).
//
// The pattern follows the DCT key-distributor design (km_election.hpp, used
// by dist_sgkey.hpp): a fixed set of eligible peers elects one *key
// manager*; when the manager fails, the survivors detect the silence and
// re-elect. This module keeps the replica roster (alive / partitioned) and
// drives the failover timeline on the simulator:
//
//   failure  --heartbeat_timeout-->  detection  --election_delay-->  elected
//
// The winner is the deterministic minimum: the lowest-numbered replica that
// is alive and not partitioned. Determinism contract: the whole failover —
// winner identity, timing, and event count — is independent of the replica
// count N, so a fixed fault trace produces byte-identical histories at
// every N large enough to survive it (pinned by replicated_key_server_test
// and the churn fuzzer's replica-count sweep). To that end the module
// schedules *no* steady-state events: heartbeats are abstracted into the
// fixed detection bound (per-replica heartbeat timers would make the
// pending-event count — and thus fuzzer logs — depend on N), and a
// failover is one two-event chain regardless of N.
//
// Partitions are fail-stop (see ReplicatedKeyServer): a partitioned replica
// is ineligible until healed, after which it may win a *later* election; an
// election never deposes a live manager.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "transport/transport.h"

namespace tmesh {
namespace ha {

struct KmElectionConfig {
  // Worst-case failure-detection bound: the time from a manager's failure
  // to the survivors declaring it dead (the missed-heartbeat window).
  SimTime heartbeat_timeout = FromSeconds(2);
  // One election round among the survivors (fixed, not RTT-derived, so the
  // timeline is topology- and N-independent).
  SimTime election_delay = FromSeconds(1);
};

class KmElection {
 public:
  KmElection(Transport& transport, const KmElectionConfig& cfg, int replicas);

  int replica_count() const { return static_cast<int>(replicas_.size()); }
  bool alive(int id) const { return At(id).alive; }
  bool partitioned(int id) const { return At(id).partitioned; }
  // Replicas that could serve as key manager right now.
  int eligible_count() const;
  // The deterministic election result: lowest eligible replica id, -1 if
  // none remains.
  int Winner() const;

  void MarkDead(int id);
  void MarkPartitioned(int id);
  // Heals the lowest-numbered partitioned replica (it rejoins as an
  // eligible follower); false if none is partitioned.
  bool HealOne();

  // Runs one failover on the simulator: after heartbeat_timeout +
  // election_delay, `on_elected(winner)` fires with the Winner() fixed at
  // the failure instant — a replica healed during the round joins as a
  // follower rather than deposing the successor the quorum is converging
  // on. A newer BeginFailover supersedes an in-flight one (its chain is
  // abandoned) — exactly one on_elected fires per completed failover. The
  // caller must guarantee at least one eligible replica.
  void BeginFailover(std::function<void(int)> on_elected);
  bool electing() const { return electing_; }

 private:
  struct Replica {
    bool alive = true;
    bool partitioned = false;
  };

  const Replica& At(int id) const {
    TMESH_CHECK(id >= 0 && id < replica_count());
    return replicas_[static_cast<std::size_t>(id)];
  }
  Replica& At(int id) {
    TMESH_CHECK(id >= 0 && id < replica_count());
    return replicas_[static_cast<std::size_t>(id)];
  }

  Transport& transport_;
  KmElectionConfig cfg_;
  std::vector<Replica> replicas_;
  bool electing_ = false;
  // Stale-chain guard: each BeginFailover bumps the generation; an event
  // chain only proceeds while its generation is current.
  std::uint64_t generation_ = 0;
};

}  // namespace ha
}  // namespace tmesh
