#include "metrics/registry.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <ostream>
#include <sstream>
#include <utility>

namespace tmesh {
namespace {

// Shortest round-trip formatting (std::to_chars), so a written snapshot
// parses back to the same bits and re-serializes byte-identically.
void AppendDouble(std::string& out, double v) {
  char buf[64];
  auto res = std::to_chars(buf, buf + sizeof buf, v);
  TMESH_CHECK(res.ec == std::errc());
  out.append(buf, res.ptr);
}

void AppendInt(std::string& out, std::int64_t v) {
  char buf[32];
  auto res = std::to_chars(buf, buf + sizeof buf, v);
  TMESH_CHECK(res.ec == std::errc());
  out.append(buf, res.ptr);
}

void AppendQuoted(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
}

std::string BucketLabel(std::size_t b) {
  return "<=" + std::to_string(std::uint64_t{1} << b);
}

// Minimal cursor over the WriteJson() schema: objects, strings, numbers.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& s) : s_(s) {}

  bool Consume(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= s_.size()) return false;
        c = s_[pos_++];
        if (c != '"' && c != '\\') return false;
      }
      out->push_back(c);
    }
    return false;
  }

  bool ParseInt(std::int64_t* out) {
    SkipWs();
    auto res = std::from_chars(s_.data() + pos_, s_.data() + s_.size(), *out);
    if (res.ec != std::errc()) return false;
    pos_ = static_cast<std::size_t>(res.ptr - s_.data());
    return true;
  }

  bool ParseDouble(double* out) {
    SkipWs();
    auto res = std::from_chars(s_.data() + pos_, s_.data() + s_.size(), *out);
    if (res.ec != std::errc()) return false;
    pos_ = static_cast<std::size_t>(res.ptr - s_.data());
    return true;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

MetricsRegistry::Metric* MetricsRegistry::Resolve(const std::string& name,
                                                 Kind kind) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    auto m = std::make_unique<Metric>();
    m->kind = kind;
    it = metrics_.emplace(name, std::move(m)).first;
  }
  TMESH_CHECK_MSG(it->second->kind == kind,
                  "metric re-resolved as a different kind");
  return it->second.get();
}

const MetricsRegistry::Metric* MetricsRegistry::Find(const std::string& name,
                                                     Kind kind) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second->kind != kind) return nullptr;
  return it->second.get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  return &Resolve(name, Kind::kCounter)->counter;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  return &Resolve(name, Kind::kGauge)->gauge;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  return &Resolve(name, Kind::kHistogram)->histogram;
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  const Metric* m = Find(name, Kind::kCounter);
  return m ? &m->counter : nullptr;
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  const Metric* m = Find(name, Kind::kGauge);
  return m ? &m->gauge : nullptr;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  const Metric* m = Find(name, Kind::kHistogram);
  return m ? &m->histogram : nullptr;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, src] : other.metrics_) {
    Metric* dst = Resolve(name, src->kind);
    switch (src->kind) {
      case Kind::kCounter:
        dst->counter.value_ += src->counter.value_;
        break;
      case Kind::kGauge:
        if (src->gauge.set_) dst->gauge.Set(src->gauge.value_);
        break;
      case Kind::kHistogram: {
        Histogram& d = dst->histogram;
        const Histogram& s = src->histogram;
        if (s.count_ == 0) break;
        if (d.count_ == 0) {
          d.min_ = s.min_;
          d.max_ = s.max_;
        } else {
          d.min_ = std::min(d.min_, s.min_);
          d.max_ = std::max(d.max_, s.max_);
        }
        d.count_ += s.count_;
        d.sum_ += s.sum_;
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
          d.buckets_[b] += s.buckets_[b];
        }
        break;
      }
    }
  }
}

std::string MetricsRegistry::ToJson() const {
  std::string out;
  out.push_back('{');

  out += "\"counters\":{";
  bool first = true;
  for (const auto& [name, m] : metrics_) {
    if (m->kind != Kind::kCounter) continue;
    if (!first) out.push_back(',');
    first = false;
    AppendQuoted(out, name);
    out.push_back(':');
    AppendInt(out, m->counter.value_);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, m] : metrics_) {
    if (m->kind != Kind::kGauge) continue;
    if (!first) out.push_back(',');
    first = false;
    AppendQuoted(out, name);
    out.push_back(':');
    AppendDouble(out, m->gauge.value_);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, m] : metrics_) {
    if (m->kind != Kind::kHistogram) continue;
    if (!first) out.push_back(',');
    first = false;
    const Histogram& h = m->histogram;
    AppendQuoted(out, name);
    out += ":{\"count\":";
    AppendInt(out, h.count_);
    out += ",\"sum\":";
    AppendDouble(out, h.sum_);
    out += ",\"min\":";
    AppendDouble(out, h.min());
    out += ",\"max\":";
    AppendDouble(out, h.max());
    out += ",\"buckets\":{";
    bool first_b = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets_[b] == 0) continue;
      if (!first_b) out.push_back(',');
      first_b = false;
      AppendQuoted(out, BucketLabel(b));
      out.push_back(':');
      AppendInt(out, h.buckets_[b]);
    }
    out += "}}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::WriteJson(std::ostream& os) const { os << ToJson(); }

bool MetricsRegistry::ParseJson(const std::string& json) {
  MetricsRegistry parsed;
  JsonCursor c(json);
  if (!c.Consume('{')) return false;
  bool first_section = true;
  for (;;) {
    if (c.Consume('}')) break;
    if (!first_section && !c.Consume(',')) return false;
    first_section = false;
    std::string section;
    if (!c.ParseString(&section) || !c.Consume(':') || !c.Consume('{')) {
      return false;
    }
    bool first_entry = true;
    for (;;) {
      if (c.Consume('}')) break;
      if (!first_entry && !c.Consume(',')) return false;
      first_entry = false;
      std::string name;
      if (!c.ParseString(&name) || !c.Consume(':')) return false;
      if (section == "counters") {
        std::int64_t v = 0;
        if (!c.ParseInt(&v)) return false;
        parsed.GetCounter(name)->Add(v);
      } else if (section == "gauges") {
        double v = 0.0;
        if (!c.ParseDouble(&v)) return false;
        parsed.GetGauge(name)->Set(v);
      } else if (section == "histograms") {
        Histogram* h = parsed.GetHistogram(name);
        if (!c.Consume('{')) return false;
        bool first_field = true;
        for (;;) {
          if (c.Consume('}')) break;
          if (!first_field && !c.Consume(',')) return false;
          first_field = false;
          std::string field;
          if (!c.ParseString(&field) || !c.Consume(':')) return false;
          if (field == "count") {
            if (!c.ParseInt(&h->count_)) return false;
          } else if (field == "sum") {
            if (!c.ParseDouble(&h->sum_)) return false;
          } else if (field == "min") {
            if (!c.ParseDouble(&h->min_)) return false;
          } else if (field == "max") {
            if (!c.ParseDouble(&h->max_)) return false;
          } else if (field == "buckets") {
            if (!c.Consume('{')) return false;
            bool first_bucket = true;
            for (;;) {
              if (c.Consume('}')) break;
              if (!first_bucket && !c.Consume(',')) return false;
              first_bucket = false;
              std::string label;
              std::int64_t n = 0;
              if (!c.ParseString(&label) || !c.Consume(':') ||
                  !c.ParseInt(&n)) {
                return false;
              }
              bool found = false;
              for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
                if (label == BucketLabel(b)) {
                  h->buckets_[b] += n;
                  found = true;
                  break;
                }
              }
              if (!found) return false;
            }
          } else {
            return false;
          }
        }
      } else {
        return false;
      }
    }
  }
  if (!c.AtEnd()) return false;
  MergeFrom(parsed);
  return true;
}

}  // namespace tmesh
