// Table printers for the benchmark harness.
//
// Every evaluation figure in the paper is an inverse cumulative
// distribution ("x fraction of users have ... less than or equal to y"),
// sometimes with cross-run mean + 95th-percentile bars (Fig. 6). These
// helpers print such figures as aligned text tables that the bench binaries
// emit, one per paper figure.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace tmesh {

// Default fraction axis used by the latency figures.
std::vector<double> DefaultFractions();
// Fraction axis zoomed on the loaded tail (Fig. 13 starts at 0.9 / 0.96).
std::vector<double> TailFractions(double from, int steps = 10);

// Prints: header, then one row per fraction with each series' inverse-CDF
// value at that fraction.
void PrintInverseCdfTable(
    std::ostream& os, const std::string& title,
    const std::vector<double>& fractions,
    const std::vector<std::pair<std::string, const InverseCdf*>>& series);

// Fig. 6 presentation: per population-rank fraction, the cross-run mean and
// the cross-run 95th percentile of each series.
void PrintRankedTable(
    std::ostream& os, const std::string& title,
    const std::vector<double>& fractions,
    const std::vector<std::pair<std::string, const RankedRunStats*>>& series,
    double percentile = 95.0);

}  // namespace tmesh
