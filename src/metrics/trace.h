// Optional per-message trace: birth → per-hop forward → delivery spans,
// ring-buffered and dumpable as chrome-tracing JSON (load the file at
// chrome://tracing or https://ui.perfetto.dev to see a per-host timeline of
// one rekey interval).
//
// The tracer is off the hot path unless attached: TMesh records spans only
// when a MessageTracer pointer is set, and Record() itself is a handful of
// stores into a fixed ring (static-string names, no allocation). When the
// ring wraps, the oldest spans are dropped and counted — the trace is a
// recent-history window, not an unbounded log.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

namespace tmesh {

// One complete span ("ph":"X" in the chrome trace format). `name` must be a
// string with static storage duration (call sites pass literals). Grouping
// follows chrome-tracing semantics: pid groups spans per message, tid is the
// host the span ran on. Times are simulator milliseconds.
struct TraceSpan {
  const char* name = "";
  std::int64_t message = 0;  // exported as pid
  std::int64_t host = 0;     // exported as tid
  double start_ms = 0.0;
  double duration_ms = 0.0;
};

class MessageTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 14;

  explicit MessageTracer(std::size_t capacity = kDefaultCapacity)
      : spans_(capacity == 0 ? 1 : capacity) {}

  void Record(const char* name, std::int64_t message, std::int64_t host,
              double start_ms, double duration_ms) {
    TraceSpan& s = spans_[head_];
    s.name = name;
    s.message = message;
    s.host = host;
    s.start_ms = start_ms;
    s.duration_ms = duration_ms;
    head_ = head_ + 1 == spans_.size() ? 0 : head_ + 1;
    if (size_ < spans_.size()) {
      ++size_;
    } else {
      ++dropped_;
    }
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return spans_.size(); }
  // Spans overwritten after the ring filled.
  std::uint64_t dropped() const { return dropped_; }

  // i-th retained span, oldest first (i < size()).
  const TraceSpan& span(std::size_t i) const;

  void Clear() {
    head_ = 0;
    size_ = 0;
    dropped_ = 0;
  }

  // Chrome-tracing JSON: {"traceEvents":[{"name":...,"ph":"X","ts":...,
  // "dur":...,"pid":...,"tid":...},...]}, ts/dur in microseconds, spans
  // oldest first.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  std::vector<TraceSpan> spans_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace tmesh
