#include "metrics/trace.h"

#include <charconv>
#include <ostream>
#include <string>

#include "common/check.h"

namespace tmesh {
namespace {

void AppendDouble(std::string& out, double v) {
  char buf[64];
  auto res = std::to_chars(buf, buf + sizeof buf, v);
  TMESH_CHECK(res.ec == std::errc());
  out.append(buf, res.ptr);
}

}  // namespace

const TraceSpan& MessageTracer::span(std::size_t i) const {
  TMESH_CHECK(i < size_);
  // Oldest span sits at head_ once the ring has wrapped, at 0 before.
  std::size_t start = size_ == spans_.size() ? head_ : 0;
  std::size_t idx = start + i;
  if (idx >= spans_.size()) idx -= spans_.size();
  return spans_[idx];
}

void MessageTracer::WriteChromeTrace(std::ostream& os) const {
  std::string out;
  out += "{\"traceEvents\":[";
  for (std::size_t i = 0; i < size_; ++i) {
    const TraceSpan& s = span(i);
    if (i > 0) out.push_back(',');
    out += "{\"name\":\"";
    out += s.name;
    out += "\",\"ph\":\"X\",\"ts\":";
    AppendDouble(out, s.start_ms * 1000.0);
    out += ",\"dur\":";
    AppendDouble(out, s.duration_ms * 1000.0);
    out += ",\"pid\":";
    out += std::to_string(s.message);
    out += ",\"tid\":";
    out += std::to_string(s.host);
    out += "}";
  }
  out += "]}";
  os << out;
}

}  // namespace tmesh
