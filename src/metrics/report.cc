#include "metrics/report.h"

#include <cmath>
#include <cstdio>

namespace tmesh {

std::vector<double> DefaultFractions() {
  std::vector<double> f;
  for (int i = 1; i <= 20; ++i) f.push_back(0.05 * i);
  return f;
}

std::vector<double> TailFractions(double from, int steps) {
  TMESH_CHECK(from > 0.0 && from < 1.0 && steps >= 1);
  std::vector<double> f;
  for (int i = 1; i <= steps; ++i) {
    f.push_back(from + (1.0 - from) * static_cast<double>(i) /
                           static_cast<double>(steps));
  }
  return f;
}

namespace {
std::string FormatCell(double v) {
  char buf[32];
  // Magnitude decides the precision, so -1234.5 drops decimals exactly
  // like 1234.5 does and still fits the 12-character column.
  if (std::fabs(v) >= 1000.0) {
    std::snprintf(buf, sizeof buf, "%12.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%12.3f", v);
  }
  return buf;
}
}  // namespace

void PrintInverseCdfTable(
    std::ostream& os, const std::string& title,
    const std::vector<double>& fractions,
    const std::vector<std::pair<std::string, const InverseCdf*>>& series) {
  os << "# " << title << "\n";
  os << "  frac_of_population";
  for (const auto& [name, cdf] : series) {
    (void)cdf;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%12s", name.c_str());
    os << buf;
  }
  os << "\n";
  for (double f : fractions) {
    char fb[32];
    std::snprintf(fb, sizeof fb, "  %18.3f", f);
    os << fb;
    for (const auto& [name, cdf] : series) {
      (void)name;
      os << FormatCell(cdf->ValueAtFraction(f));
    }
    os << "\n";
  }
}

void PrintRankedTable(
    std::ostream& os, const std::string& title,
    const std::vector<double>& fractions,
    const std::vector<std::pair<std::string, const RankedRunStats*>>& series,
    double percentile) {
  os << "# " << title << " (mean and p" << percentile << " across runs)\n";
  os << "  frac_of_population";
  char pbuf[32];
  std::snprintf(pbuf, sizeof pbuf, "%g", percentile);
  for (const auto& [name, s] : series) {
    (void)s;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%12s%12s", (name + "_avg").c_str(),
                  (name + "_p" + pbuf).c_str());
    os << buf;
  }
  os << "\n";
  for (double f : fractions) {
    char fb[32];
    std::snprintf(fb, sizeof fb, "  %18.3f", f);
    os << fb;
    for (const auto& [name, s] : series) {
      (void)name;
      std::size_t n = s->ranks();
      TMESH_CHECK(n > 0);
      // Same nearest-rank convention as InverseCdf::ValueAtFraction, so a
      // ranked table and an inverse-CDF table at the same fraction read
      // the same population rank.
      std::size_t rank = NearestRankIndex(f, n);
      os << FormatCell(s->MeanAtRank(rank))
         << FormatCell(s->PercentileAtRank(rank, percentile));
    }
    os << "\n";
  }
}

}  // namespace tmesh
