// Counter / gauge / histogram registry: the observability layer behind
// every evaluation figure.
//
// Every figure in the paper (§4, Figs. 6-14) is derived from counters and
// latency samples; this registry gives them one first-class home with three
// properties the simulation stack needs:
//
//  * Cheap hot-path updates. GetCounter()/GetGauge()/GetHistogram() resolve
//    a name to a stable handle ONCE (a map lookup at wiring time); from then
//    on the owner updates through the handle with plain member arithmetic —
//    no locks, no lookups, no atomics on the event path. A registry is
//    single-threaded by construction: each ReplicaRunner worker populates
//    its own replica-local registry, exactly like the result vectors the
//    figure pipeline already returns.
//
//  * Deterministic cross-replica merge. MergeFrom() combines two snapshots
//    (counters and histogram buckets add, gauges take the donor's value
//    when the donor ever set one). Merging replica registries in strictly
//    increasing run index — the ReplicaRunner merge contract — makes the
//    aggregate byte-identical for every --threads=N.
//
//  * Machine-readable export. WriteJson() emits a stable, name-sorted JSON
//    snapshot (the artifact scripts/regen_experiments.sh collects next to
//    bench_output.txt); ParseJson() reads one back, so artifacts round-trip
//    through tooling without loss.
//
// Histograms use a fixed power-of-two magnitude geometry, so any two
// histograms (any replica, any run length) merge by bucket addition without
// rebinning — the property that keeps the merge associative and exact.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "common/check.h"

namespace tmesh {

// Monotonic event count. Hot-path handle: plain int64 adds.
class Counter {
 public:
  void Increment() { ++value_; }
  void Add(std::int64_t delta) { value_ += delta; }
  std::int64_t value() const { return value_; }

 private:
  friend class MetricsRegistry;
  std::int64_t value_ = 0;
};

// Last-written level (a config knob, a final total, a headline fraction).
class Gauge {
 public:
  void Set(double v) {
    value_ = v;
    set_ = true;
  }
  double value() const { return value_; }
  bool set() const { return set_; }

 private:
  friend class MetricsRegistry;
  double value_ = 0.0;
  bool set_ = false;
};

// Distribution sketch over non-negative samples: count/sum/min/max plus a
// power-of-two magnitude histogram (bucket b counts samples <= 2^b, first
// bucket <= 1, values above the last bound land in the final bucket).
// Fixed geometry means two histograms always merge by bucket addition.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void Observe(double v) {
    TMESH_DCHECK(v >= 0.0);
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
    ++buckets_[BucketOf(v)];
  }

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  std::int64_t bucket(std::size_t b) const { return buckets_[b]; }
  // Upper bound of bucket b (inclusive): 2^b.
  static double BucketBound(std::size_t b) {
    return static_cast<double>(std::uint64_t{1} << b);
  }
  static std::size_t BucketOf(double v) {
    std::size_t b = 0;
    while (BucketBound(b) < v && b + 1 < kBuckets) ++b;
    return b;
  }

 private:
  friend class MetricsRegistry;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::array<std::int64_t, kBuckets> buckets_{};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(MetricsRegistry&&) = default;
  MetricsRegistry& operator=(MetricsRegistry&&) = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Resolve a name to a handle, creating the metric on first use. Handles
  // stay valid (and keep pointing at the same metric) for the registry's
  // lifetime, including across moves. Re-resolving a name as a different
  // kind is a TMESH_CHECK failure.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  // Read-only lookups; null when the name is absent or of another kind.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  bool empty() const { return metrics_.empty(); }
  std::size_t size() const { return metrics_.size(); }
  // Drops every metric (handles become dangling; re-resolve after).
  void Clear() { metrics_.clear(); }

  // Adds `other` into this registry: counters and histogram buckets add,
  // gauges take other's value whenever other ever Set() one (so the last
  // merged replica in run-index order wins — a deterministic convention).
  // Merging metrics of mismatched kinds is a TMESH_CHECK failure.
  void MergeFrom(const MetricsRegistry& other);

  // Stable name-sorted JSON snapshot:
  //   {"counters":{...},"gauges":{...},
  //    "histograms":{"n":{"count":c,"sum":s,"min":m,"max":M,
  //                       "buckets":{"<=1":c0,"<=2":c1,...}}}}
  // Numbers print via shortest-round-trip formatting, so WriteJson ∘
  // ParseJson ∘ WriteJson is byte-stable.
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;

  // Parses a WriteJson() snapshot into this registry (merging into any
  // existing metrics, same rules as MergeFrom). Returns false — leaving the
  // registry unchanged — on input that does not match the schema.
  bool ParseJson(const std::string& json);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    Kind kind;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Metric* Resolve(const std::string& name, Kind kind);
  const Metric* Find(const std::string& name, Kind kind) const;

  // Name-sorted for stable JSON; unique_ptr for handle stability across
  // rebalancing and moves.
  std::map<std::string, std::unique_ptr<Metric>> metrics_;
};

}  // namespace tmesh
