#include "ipmc/ip_multicast.h"

namespace tmesh {

IpMulticast::Result IpMulticast::Multicast(
    HostId source, const std::vector<HostId>& receivers,
    std::size_t encryptions) const {
  Result res;
  res.delay_ms.assign(static_cast<std::size_t>(net_.host_count()), -1.0);
  res.link_encryptions.assign(static_cast<std::size_t>(net_.link_count()), 0);
  res.link_messages.assign(static_cast<std::size_t>(net_.link_count()), 0);

  const Graph::SptResult& spt = net_.SptFromHost(source);
  std::vector<char> on_tree(static_cast<std::size_t>(net_.link_count()), 0);
  std::vector<LinkId> path;
  for (HostId r : receivers) {
    if (r == source) continue;
    res.delay_ms[static_cast<std::size_t>(r)] =
        static_cast<double>(
            spt.dist_ms[static_cast<std::size_t>(net_.attach_router(r))]) /
        2.0;
    path.clear();
    net_.AppendPathLinks(r == source ? r : source, r, path);
    for (LinkId l : path) on_tree[static_cast<std::size_t>(l)] = 1;
  }
  for (std::size_t l = 0; l < on_tree.size(); ++l) {
    if (!on_tree[l]) continue;
    ++res.tree_links;
    res.link_messages[l] = 1;
    res.link_encryptions[l] = static_cast<std::int64_t>(encryptions);
  }
  return res;
}

}  // namespace tmesh
