// IP-multicast rekey transport baseline (protocol P_ip of Table 2).
//
// "The IP multicast scheme used in P_ip is based on the DVMRP multicast
// routing algorithm" (§4.3): routers forward along a source-rooted
// shortest-path tree, so each physical link of the tree carries exactly one
// copy of the rekey message. End hosts receive the full message (no
// application-layer splitting is possible below the routing layer) and
// forward nothing themselves.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/gtitm.h"

namespace tmesh {

class IpMulticast {
 public:
  explicit IpMulticast(const GtItmNetwork& net) : net_(net) {}

  struct Result {
    std::vector<double> delay_ms;  // per host; -1 for non-receivers
    std::vector<std::int64_t> link_encryptions;  // per LinkId
    std::vector<std::int32_t> link_messages;
    int tree_links = 0;
  };

  // Multicasts a message of `encryptions` encryptions from `source`'s
  // router to every receiver's router along the shortest-path tree.
  Result Multicast(HostId source, const std::vector<HostId>& receivers,
                   std::size_t encryptions) const;

 private:
  const GtItmNetwork& net_;
};

}  // namespace tmesh
