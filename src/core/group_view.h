// The read-side interface of a T-mesh group: everything the multicast
// transport needs to route — group parameters, host mapping, liveness, and
// the neighbor tables.
//
// Two implementations exist:
//   - Directory: the centralized membership oracle (the paper's own
//     simulation simplification, §4), which maintains K-consistency
//     instantly and supports failure injection/repair;
//   - SilkGroup: the message-driven join/leave protocol (simplified Silk,
//     §3.2), where tables are built and updated by protocol messages over
//     the simulator.
#pragma once

#include "common/digit_string.h"
#include "core/neighbor_table.h"
#include "topology/network.h"

namespace tmesh {

struct GroupParams {
  int digits = 5;    // D
  int base = 256;    // B
  int capacity = 4;  // K (neighbors per entry)
};

class GroupView {
 public:
  virtual ~GroupView() = default;

  virtual const GroupParams& params() const = 0;
  virtual HostId server_host() const = 0;
  virtual const Network& network() const = 0;

  virtual bool Contains(const UserId& id) const = 0;
  virtual bool IsAlive(const UserId& id) const = 0;
  virtual HostId HostOf(const UserId& id) const = 0;
  virtual const NeighborTable& TableOf(const UserId& id) const = 0;
  virtual const NeighborTable& ServerTable() const = 0;
};

}  // namespace tmesh
