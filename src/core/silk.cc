#include "core/silk.h"

#include <algorithm>
#include <functional>
#include <memory>
#include <set>

#include "core/id_tree.h"

namespace tmesh {

namespace {
const Network& RequireNet(const SilkGroup::Config& config) {
  TMESH_CHECK_MSG(config.net != nullptr, "SilkGroup::Config::net is required");
  return *config.net;
}
}  // namespace

SilkGroup::SilkGroup(Transport& transport, const Config& config)
    : net_(RequireNet(config)),
      params_(config.group),
      server_host_(config.server_host),
      transport_(transport),
      server_table_(1, config.group.base, config.group.capacity) {
  TMESH_CHECK(params_.digits >= 1 && params_.digits <= kMaxDigits);
  TMESH_CHECK(params_.base >= 2 && params_.base <= kMaxBase);
  TMESH_CHECK(params_.capacity >= 1);
  TMESH_CHECK(server_host_ >= 0 && server_host_ < net_.host_count());
}

HostId SilkGroup::HostOf(const UserId& id) const {
  auto it = members_.find(id);
  TMESH_CHECK_MSG(it != members_.end(), "unknown member " + id.ToString());
  return it->second.host;
}

const NeighborTable& SilkGroup::TableOf(const UserId& id) const {
  auto it = members_.find(id);
  TMESH_CHECK_MSG(it != members_.end(), "unknown member " + id.ToString());
  return it->second.table;
}

SilkGroup::Member& SilkGroup::MemberRef(const UserId& id) {
  auto it = members_.find(id);
  TMESH_CHECK(it != members_.end());
  return it->second;
}

NeighborRecord SilkGroup::RecordOf(const Member& m, HostId owner) const {
  NeighborRecord rec;
  rec.id = m.id;
  rec.host = m.host;
  rec.join_time = m.join_time;
  rec.rtt_ms = net_.RttHosts(owner, m.host);
  return rec;
}

void SilkGroup::Broadcast(const UserId& origin,
                          std::function<void(const UserId& at)> fn) {
  // FORWARD (Fig. 2) over the live tables, with a per-broadcast visited set
  // (the moral equivalent of Silk's message sequence numbers): membership
  // changes mid-flood must not double-deliver or loop.
  auto visited = std::make_shared<std::set<UserId>>();
  auto shared_fn = std::make_shared<std::function<void(const UserId&)>>(
      std::move(fn));
  visited->insert(origin);

  // Recursive forwarding closure. It captures itself weakly: every
  // invocation comes from a scheduled event holding a strong copy (or from
  // the local `forward` below), so the lock always succeeds, and the
  // closure is freed once the flood drains instead of leaking in a
  // shared_ptr cycle.
  using ForwardFn = std::function<void(const UserId&, int)>;
  auto forward = std::make_shared<ForwardFn>();
  *forward = [this, visited, shared_fn,
              weak = std::weak_ptr<ForwardFn>(forward)](const UserId& at,
                                                        int level) {
    auto forward = weak.lock();
    if (forward == nullptr || !Contains(at)) return;
    const Member& m = members_.at(at);
    for (int i = level; i < params_.digits; ++i) {
      for (const auto& [digit, entry] : m.table.row(i)) {
        (void)digit;
        const NeighborRecord* primary = nullptr;
        for (const NeighborRecord& rec : entry) {
          if (Contains(rec.id)) {
            primary = &rec;
            break;
          }
        }
        if (primary == nullptr) continue;
        const UserId next = primary->id;
        const int next_level = i + 1;
        Message(m.host, primary->host,
                [this, visited, shared_fn, forward, next, next_level]() {
                  if (!Contains(next)) return;
                  if (!visited->insert(next).second) return;
                  (*shared_fn)(next);
                  (*forward)(next, next_level);
                });
      }
    }
  };
  (*forward)(origin, 0);
}

void SilkGroup::AcceptAnnouncement(const UserId& w, const NeighborRecord& rec) {
  if (w == rec.id || !Contains(w) || !Contains(rec.id)) return;
  Member& m = MemberRef(w);
  int cpl = w.CommonPrefixLen(rec.id);
  if (m.table.ContainsNeighbor(cpl, rec.id.digit(cpl), rec.id)) return;
  // w measures its own RTT to the announced member.
  NeighborRecord mine = rec;
  mine.rtt_ms = net_.RttHosts(m.host, rec.host);
  ++stats_.rtt_probes;
  m.table.Insert(cpl, rec.id.digit(cpl), mine);
}

void SilkGroup::AcceptLeave(const UserId& w, const UserId& gone,
                            const std::vector<NeighborRecord>& candidates) {
  if (!Contains(w)) return;
  Member& m = MemberRef(w);
  int cpl = w.CommonPrefixLen(gone);
  int digit = gone.digit(cpl);
  // Top up from the candidates even when `gone` was not in w's entry: under
  // concurrent leaves the entry may have been emptied by an earlier notice
  // whose candidates were all dead, and this notice can be the only carrier
  // of a live replacement (fuzzer find; repro
  // tests/fuzz_repros/silk_leave_refill_dead_candidates.repro).
  bool removed = m.table.Remove(cpl, digit, gone);
  // Refill from the departing member's candidates: those in the same
  // (cpl, digit)-ID subtree of w, closest first.
  DigitString subtree = w.Prefix(cpl).Child(digit);
  std::vector<NeighborRecord> fits;
  for (const NeighborRecord& c : candidates) {
    if (c.id == gone || c.id == w) continue;
    if (!Contains(c.id)) continue;
    if (!subtree.IsPrefixOf(c.id)) continue;
    if (m.table.ContainsNeighbor(cpl, digit, c.id)) continue;
    NeighborRecord mine = c;
    mine.rtt_ms = net_.RttHosts(m.host, c.host);
    ++stats_.rtt_probes;
    fits.push_back(mine);
  }
  std::sort(fits.begin(), fits.end(),
            [](const NeighborRecord& a, const NeighborRecord& b) {
              return a.rtt_ms < b.rtt_ms;
            });
  const NeighborTable::Entry* e = m.table.entry(cpl, digit);
  int have = e == nullptr ? 0 : static_cast<int>(e->size());
  for (const NeighborRecord& c : fits) {
    if (have >= params_.capacity) break;
    m.table.Insert(cpl, digit, c);
    ++have;
  }
  // A removal that leaves the entry empty with no live candidate to refill
  // from is the failure mode 1-consistency cannot absorb: if the subtree
  // still has members, w has lost its last route to them. Ask the
  // neighbors that keep a parallel entry for the same subtree.
  if (removed && have == 0) RecoverEntry(w, cpl, digit);
}

void SilkGroup::RecoverEntry(const UserId& w, int cpl, int digit) {
  ++stats_.entry_recoveries;
  const Member& m = MemberRef(w);
  // Every live neighbor in rows >= cpl shares w's first cpl digits, so its
  // table has its own (cpl, digit)-entry covering the same ID subtree.
  std::vector<NeighborRecord> peers;
  for (int i = cpl; i < params_.digits; ++i) {
    for (const auto& [d, entry] : m.table.row(i)) {
      if (i == cpl && d == digit) continue;  // the hole being repaired
      for (const NeighborRecord& rec : entry) {
        if (Contains(rec.id)) peers.push_back(rec);
      }
    }
  }
  UserId wid = w;
  for (const NeighborRecord& peer : peers) {
    UserId pid = peer.id;
    Message(m.host, peer.host, [this, wid, pid, cpl, digit]() {
      if (!Contains(pid) || !Contains(wid)) return;
      const Member& q = members_.at(pid);
      const NeighborTable::Entry* e = q.table.entry(cpl, digit);
      if (e == nullptr || e->empty()) return;
      auto recs = std::make_shared<std::vector<NeighborRecord>>(*e);
      Message(q.host, members_.at(wid).host,
              [this, wid, cpl, digit, recs]() {
                if (!Contains(wid)) return;
                Member& me = MemberRef(wid);
                const NeighborTable::Entry* mine = me.table.entry(cpl, digit);
                int have = mine == nullptr ? 0
                                           : static_cast<int>(mine->size());
                for (const NeighborRecord& rec : *recs) {
                  if (have >= params_.capacity) break;
                  if (rec.id == wid || !Contains(rec.id)) continue;
                  if (me.table.ContainsNeighbor(cpl, digit, rec.id)) continue;
                  NeighborRecord probed = rec;
                  probed.rtt_ms = net_.RttHosts(me.host, rec.host);
                  ++stats_.rtt_probes;
                  me.table.Insert(cpl, digit, probed);
                  ++have;
                }
              });
    });
  }
}

void SilkGroup::Join(const UserId& id, HostId host, SimTime join_time) {
  TMESH_CHECK(id.size() == params_.digits);
  TMESH_CHECK_MSG(!Contains(id), "duplicate member " + id.ToString());
  TMESH_CHECK(host >= 0 && host < net_.host_count());
  TMESH_CHECK(host != server_host_);
  TMESH_CHECK_MSG(host_index_.count(host) == 0, "host already a member");

  if (members_.empty()) {
    auto [it, ok] = members_.try_emplace(id, id, host, join_time,
                                         params_.digits, params_.base,
                                         params_.capacity);
    TMESH_CHECK(ok);
    host_index_[host] = id;
    // Register with the key server.
    Member& me = it->second;
    NeighborRecord rec = RecordOf(me, server_host_);
    Message(host, server_host_, [this, rec, id]() {
      if (Contains(id)) server_table_.Insert(0, rec.id.digit(0), rec);
    });
    return;
  }

  // The joiner's protocol state, shared across its message events.
  struct JoinCtx {
    UserId id;
    HostId host;
    SimTime join_time;
    std::map<UserId, NeighborRecord> candidates;  // dedup by id
    std::set<UserId> queried;
    int best_cpl = -1;
  };
  auto ctx = std::make_shared<JoinCtx>();
  ctx->id = id;
  ctx->host = host;
  ctx->join_time = join_time;

  // Completion: build the table from candidates, install, and announce.
  auto finish = [this, ctx]() {
    auto [it, ok] = members_.try_emplace(
        ctx->id, ctx->id, ctx->host, ctx->join_time, params_.digits,
        params_.base, params_.capacity);
    TMESH_CHECK(ok);
    host_index_[ctx->host] = ctx->id;
    Member& me = it->second;
    for (const auto& [cid, crec] : ctx->candidates) {
      if (cid == ctx->id || !Contains(cid)) continue;
      int cpl = ctx->id.CommonPrefixLen(cid);
      NeighborRecord mine = crec;
      mine.rtt_ms = net_.RttHosts(ctx->host, crec.host);
      ++stats_.rtt_probes;
      me.table.Insert(cpl, cid.digit(cpl), mine);
    }
    // Register with the key server and announce to the group over the
    // joiner's own (fresh, K-consistent) table.
    NeighborRecord rec = RecordOf(me, server_host_);
    UserId jid = ctx->id;
    Message(ctx->host, server_host_, [this, rec, jid]() {
      if (Contains(jid)) server_table_.Insert(0, rec.id.digit(0), rec);
    });
    NeighborRecord announce;
    announce.id = me.id;
    announce.host = me.host;
    announce.join_time = me.join_time;
    Broadcast(ctx->id, [this, announce](const UserId& at) {
      AcceptAnnouncement(at, announce);
    });
  };

  // Gateway chain: repeatedly query the known member sharing the longest
  // prefix, absorbing its table, until no better gateway appears.
  // Like Broadcast's forwarding closure, `step` captures itself weakly to
  // avoid a shared_ptr cycle; each continuation event carries a strong copy.
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, ctx, finish,
           weak = std::weak_ptr<std::function<void()>>(step)]() {
    auto step = weak.lock();
    if (step == nullptr) return;
    // Pick the unqueried candidate with the longest shared prefix.
    const UserId* gw = nullptr;
    int gw_cpl = -1;
    for (const auto& [cid, crec] : ctx->candidates) {
      (void)crec;
      if (!Contains(cid) || ctx->queried.count(cid) > 0) continue;
      int cpl = ctx->id.CommonPrefixLen(cid);
      if (cpl > gw_cpl) {
        gw_cpl = cpl;
        gw = &cid;
      }
    }
    if (gw == nullptr || gw_cpl <= ctx->best_cpl) {
      finish();
      return;
    }
    ctx->best_cpl = gw_cpl;
    UserId gateway = *gw;
    ctx->queried.insert(gateway);
    HostId gw_host = members_.at(gateway).host;
    // Request/response round trip, then absorb and iterate.
    Message(ctx->host, gw_host, [this, ctx, gateway, gw_host, step]() {
      if (!Contains(gateway)) {
        // Gateway vanished; try another. The retry must hold a strong ref
        // (a bare copy of *step would carry only the weak self-reference).
        transport_.ScheduleIn(0, [step]() { (*step)(); });
        return;
      }
      const Member& g = members_.at(gateway);
      // Response: g's own record plus every record in its table, built once
      // as a shared immutable snapshot instead of copied into the closure.
      auto response = std::make_shared<std::vector<NeighborRecord>>();
      response->push_back(RecordOf(g, g.host));
      for (int i = 0; i < g.table.rows(); ++i) {
        for (const auto& [digit, entry] : g.table.row(i)) {
          (void)digit;
          response->insert(response->end(), entry.begin(), entry.end());
        }
      }
      Message(gw_host, ctx->host,
              [this, ctx, response = std::move(response), step]() {
                for (const NeighborRecord& rec : *response) {
                  ctx->candidates.emplace(rec.id, rec);
                }
                (*step)();
              });
    });
  };

  // Seed: the key server hands out the record of one existing member (we
  // use the earliest member for determinism).
  const Member& contact = members_.begin()->second;
  ctx->candidates.emplace(contact.id, RecordOf(contact, host));
  (*step)();
}

void SilkGroup::Leave(UserId id) {
  TMESH_CHECK_MSG(Contains(id), "leave of unknown member " + id.ToString());
  Member& me = MemberRef(id);

  // Replacement candidates: everything the leaver knows.
  auto candidates = std::make_shared<std::vector<NeighborRecord>>();
  for (int i = 0; i < me.table.rows(); ++i) {
    for (const auto& [digit, entry] : me.table.row(i)) {
      (void)digit;
      candidates->insert(candidates->end(), entry.begin(), entry.end());
    }
  }

  UserId gone = id;
  Broadcast(id, [this, gone, candidates](const UserId& at) {
    AcceptLeave(at, gone, *candidates);
  });
  // Notify the key server with the same candidates.
  Message(me.host, server_host_, [this, gone, candidates]() {
    int digit = gone.digit(0);
    // Same top-up-on-any-notice rule as AcceptLeave: a notice whose subject
    // was already removed can still carry the only live replacement.
    server_table_.Remove(0, digit, gone);
    std::vector<NeighborRecord> fits;
    for (const NeighborRecord& c : *candidates) {
      if (c.id == gone || !Contains(c.id)) continue;
      if (c.id.digit(0) != digit) continue;
      if (server_table_.ContainsNeighbor(0, digit, c.id)) continue;
      NeighborRecord mine = c;
      mine.rtt_ms = net_.RttHosts(server_host_, c.host);
      fits.push_back(mine);
    }
    std::sort(fits.begin(), fits.end(),
              [](const NeighborRecord& a, const NeighborRecord& b) {
                return a.rtt_ms < b.rtt_ms;
              });
    const NeighborTable::Entry* e = server_table_.entry(0, digit);
    int have = e == nullptr ? 0 : static_cast<int>(e->size());
    for (const NeighborRecord& c : fits) {
      if (have >= params_.capacity) break;
      server_table_.Insert(0, digit, c);
      ++have;
    }
  });

  // The leaver departs immediately; in-flight floods route around it via
  // backup neighbors (requires K > 1, §2.2).
  host_index_.erase(me.host);
  members_.erase(id);
}

bool SilkGroup::RunMaintenance() {
  bool changed = false;
  // Phase 1: heartbeat probes. Snapshot each row before mutating it.
  for (auto& [id, m] : members_) {
    for (int i = 0; i < params_.digits; ++i) {
      std::vector<std::pair<int, UserId>> dead;
      std::vector<NeighborRecord> live;
      for (const auto& [d, entry] : m.table.row(i)) {
        for (const NeighborRecord& rec : entry) {
          stats_.messages += 2;  // ping + pong (or timeout)
          if (Contains(rec.id)) {
            live.push_back(rec);
          } else {
            dead.emplace_back(d, rec.id);
          }
        }
      }
      for (const auto& [d, uid] : dead) {
        m.table.Remove(i, d, uid);
        changed = true;
      }
      // A successful probe tells the neighbor the prober is alive; it
      // records the prober if the matching entry has room (no eviction, so
      // the sweep stays monotone).
      for (const NeighborRecord& rec : live) {
        Member& peer = MemberRef(rec.id);
        int cpl = rec.id.CommonPrefixLen(id);
        int digit = id.digit(cpl);
        if (peer.table.ContainsNeighbor(cpl, digit, id)) continue;
        const NeighborTable::Entry* e = peer.table.entry(cpl, digit);
        if (e != nullptr && static_cast<int>(e->size()) >= params_.capacity) {
          continue;
        }
        NeighborRecord mine = RecordOf(m, peer.host);
        ++stats_.rtt_probes;
        peer.table.Insert(cpl, digit, mine);
        changed = true;
      }
    }
  }
  // Phase 2: repair. An entry position with no record at all queries the
  // neighbors that keep a parallel entry for the same subtree; the first
  // peer with records answers (one round trip per peer asked).
  for (auto& [id, m] : members_) {
    for (int i = 0; i < params_.digits; ++i) {
      for (int j = 0; j < params_.base; ++j) {
        if (j == id.digit(i)) continue;
        const NeighborTable::Entry* e = m.table.entry(i, j);
        if (e != nullptr && !e->empty()) continue;
        bool filled = false;
        for (int r = i; r < params_.digits && !filled; ++r) {
          for (const auto& [d, entry] : m.table.row(r)) {
            if (r == i && d == j) continue;
            if (filled) break;
            for (const NeighborRecord& peer_rec : entry) {
              if (!Contains(peer_rec.id)) continue;
              stats_.messages += 2;  // query + response
              const Member& q = members_.at(peer_rec.id);
              const NeighborTable::Entry* qe = q.table.entry(i, j);
              if (qe == nullptr) continue;
              for (const NeighborRecord& rec : *qe) {
                if (rec.id == id || !Contains(rec.id)) continue;
                if (m.table.ContainsNeighbor(i, j, rec.id)) continue;
                NeighborRecord mine = rec;
                mine.rtt_ms = net_.RttHosts(m.host, rec.host);
                ++stats_.rtt_probes;
                m.table.Insert(i, j, mine);
                ++stats_.entry_recoveries;
                changed = true;
                filled = true;
              }
              if (filled) break;
            }
          }
        }
      }
    }
  }
  // The server's row-0 table gets the same treatment.
  for (int j = 0; j < params_.base; ++j) {
    const NeighborTable::Entry* e = server_table_.entry(0, j);
    if (e == nullptr) continue;
    std::vector<UserId> dead;
    for (const NeighborRecord& rec : *e) {
      stats_.messages += 2;
      if (!Contains(rec.id)) dead.push_back(rec.id);
    }
    for (const UserId& uid : dead) {
      server_table_.Remove(0, j, uid);
      changed = true;
    }
  }
  for (int j = 0; j < params_.base; ++j) {
    const NeighborTable::Entry* e = server_table_.entry(0, j);
    if (e != nullptr && !e->empty()) continue;
    bool filled = false;
    for (int d = 0; d < params_.base && !filled; ++d) {
      if (d == j) continue;
      const NeighborTable::Entry* other = server_table_.entry(0, d);
      if (other == nullptr) continue;
      for (const NeighborRecord& peer_rec : *other) {
        if (!Contains(peer_rec.id)) continue;
        stats_.messages += 2;
        const Member& q = members_.at(peer_rec.id);
        const NeighborTable::Entry* qe = q.table.entry(0, j);
        if (qe == nullptr) continue;
        for (const NeighborRecord& rec : *qe) {
          if (!Contains(rec.id)) continue;
          if (server_table_.ContainsNeighbor(0, j, rec.id)) continue;
          NeighborRecord mine = rec;
          mine.rtt_ms = net_.RttHosts(server_host_, rec.host);
          server_table_.Insert(0, j, mine);
          changed = true;
          filled = true;
        }
        if (filled) break;
      }
    }
  }
  return changed;
}

void SilkGroup::CheckConsistency(int strength) const {
  TMESH_CHECK(strength >= 1 && strength <= params_.capacity);
  // Ground truth: an ID tree over the current membership.
  IdTree truth(params_.digits, params_.base);
  for (const auto& [id, m] : members_) {
    (void)m;
    truth.Insert(id);
  }

  auto check_table = [&](const NeighborTable& table, const UserId* owner,
                         int rows) {
    for (int i = 0; i < rows; ++i) {
      DigitString prefix = owner == nullptr ? DigitString{} : owner->Prefix(i);
      const std::set<int>& digits = truth.ChildDigits(prefix);
      for (int j : digits) {
        if (owner != nullptr && j == owner->digit(i)) {
          TMESH_CHECK_MSG(table.entry(i, j) == nullptr,
                          "(i, own-digit) entry must be empty");
          continue;
        }
        int m = truth.CountWithPrefix(prefix.Child(j));
        const NeighborTable::Entry* e = table.entry(i, j);
        int live = 0;
        if (e != nullptr) {
          for (const NeighborRecord& rec : *e) {
            TMESH_CHECK_MSG(prefix.Child(j).IsPrefixOf(rec.id),
                            "record outside the entry's subtree");
            if (Contains(rec.id)) ++live;
          }
        }
        TMESH_CHECK_MSG(live >= std::min(strength, m),
                        "entry below required strength: owner=" +
                            (owner == nullptr ? std::string("server")
                                              : owner->ToString()) +
                            " row=" + std::to_string(i) + " digit=" +
                            std::to_string(j) + " live=" +
                            std::to_string(live) + " records=" +
                            std::to_string(e == nullptr ? 0 : e->size()) +
                            " population=" + std::to_string(m));
        TMESH_CHECK_MSG(live <= std::min(params_.capacity, m),
                        "entry above capacity / population");
      }
      for (const auto& [j, e] : table.row(i)) {
        (void)e;
        // Entries for emptied subtrees may linger only if every record in
        // them is stale; strength-1 checking tolerates them, full strength
        // does not.
        if (strength >= params_.capacity) {
          TMESH_CHECK_MSG(digits.count(j) > 0,
                          "entry for an empty ID subtree");
        }
      }
    }
  };

  for (const auto& [id, m] : members_) {
    check_table(m.table, &id, params_.digits);
  }
  check_table(server_table_, nullptr, 1);
}

}  // namespace tmesh
