#include "core/wire.h"

#include <cstring>

namespace tmesh {

namespace {

constexpr std::uint8_t kMagic[4] = {'T', 'M', 'R', 'K'};

class Writer {
 public:
  void U8(std::uint8_t v) { out_.push_back(v); }
  void U32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void I64(std::int64_t v) {
    auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i) out_.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
  }
  void Digits(const DigitString& s) {
    U8(static_cast<std::uint8_t>(s.size()));
    for (int i = 0; i < s.size(); ++i) {
      U8(static_cast<std::uint8_t>(s.digit(i)));
    }
  }
  void Zeros(std::size_t n) { out_.insert(out_.end(), n, 0); }
  std::vector<std::uint8_t> Take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& in) : in_(in) {}

  bool U8(std::uint8_t& v) {
    if (pos_ + 1 > in_.size()) return false;
    v = in_[pos_++];
    return true;
  }
  bool U32(std::uint32_t& v) {
    if (pos_ + 4 > in_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(in_[pos_++]) << (8 * i);
    }
    return true;
  }
  bool I64(std::int64_t& v) {
    if (pos_ + 8 > in_.size()) return false;
    std::uint64_t u = 0;
    for (int i = 0; i < 8; ++i) {
      u |= static_cast<std::uint64_t>(in_[pos_++]) << (8 * i);
    }
    v = static_cast<std::int64_t>(u);
    return true;
  }
  bool Digits(DigitString& s) {
    std::uint8_t len;
    if (!U8(len) || len > kMaxDigits) return false;
    if (pos_ + len > in_.size()) return false;
    s = DigitString::FromDigits(in_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool Skip(std::size_t n) {
    if (pos_ + n > in_.size()) return false;
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == in_.size(); }

 private:
  const std::vector<std::uint8_t>& in_;
  std::size_t pos_ = 0;
};

}  // namespace

std::size_t WireSize(const Encryption& e) {
  return 1 + static_cast<std::size_t>(e.enc_key_id.size()) +  // enc_key_id
         1 + static_cast<std::size_t>(e.new_key_id.size()) +  // new_key_id
         4 + 4 +                                              // versions
         kKeyBytes;                                           // payload
}

std::size_t WireSize(const RekeyMessage& msg) {
  std::size_t n = sizeof kMagic + 4;
  for (const Encryption& e : msg.encryptions) n += WireSize(e);
  return n;
}

std::size_t WireSize(const NeighborRecord& rec) {
  return 1 + static_cast<std::size_t>(rec.id.size()) + 4 + 4 + 8;
}

std::vector<std::uint8_t> EncodeRekeyMessage(const RekeyMessage& msg) {
  Writer w;
  for (std::uint8_t b : kMagic) w.U8(b);
  w.U32(static_cast<std::uint32_t>(msg.encryptions.size()));
  for (const Encryption& e : msg.encryptions) {
    w.Digits(e.enc_key_id);
    w.Digits(e.new_key_id);
    w.U32(e.new_key_version);
    w.U32(e.enc_key_version);
    w.Zeros(kKeyBytes);  // the ciphertext itself (mocked as zeros)
  }
  return w.Take();
}

std::optional<RekeyMessage> DecodeRekeyMessage(
    const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  for (std::uint8_t expected : kMagic) {
    std::uint8_t b;
    if (!r.U8(b) || b != expected) return std::nullopt;
  }
  std::uint32_t count;
  if (!r.U32(count)) return std::nullopt;
  RekeyMessage msg;
  // Guard against absurd counts before reserving.
  if (count > bytes.size()) return std::nullopt;
  msg.encryptions.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Encryption e;
    if (!r.Digits(e.enc_key_id)) return std::nullopt;
    if (!r.Digits(e.new_key_id)) return std::nullopt;
    if (!r.U32(e.new_key_version)) return std::nullopt;
    if (!r.U32(e.enc_key_version)) return std::nullopt;
    if (!r.Skip(kKeyBytes)) return std::nullopt;
    msg.encryptions.push_back(e);
  }
  if (!r.AtEnd()) return std::nullopt;  // trailing garbage
  return msg;
}

std::vector<std::uint8_t> EncodeNeighborRecord(const NeighborRecord& rec) {
  Writer w;
  w.Digits(rec.id);
  w.U32(static_cast<std::uint32_t>(rec.host));
  w.U32(static_cast<std::uint32_t>(rec.rtt_ms * 1000.0 + 0.5));  // microseconds
  w.I64(rec.join_time);
  return w.Take();
}

std::optional<NeighborRecord> DecodeNeighborRecord(
    const std::vector<std::uint8_t>& bytes) {
  Reader r(bytes);
  NeighborRecord rec;
  std::uint32_t host, rtt_us;
  if (!r.Digits(rec.id)) return std::nullopt;
  if (!r.U32(host)) return std::nullopt;
  if (!r.U32(rtt_us)) return std::nullopt;
  if (!r.I64(rec.join_time)) return std::nullopt;
  if (!r.AtEnd()) return std::nullopt;
  rec.host = static_cast<HostId>(host);
  rec.rtt_ms = rtt_us / 1000.0;
  return rec;
}

}  // namespace tmesh
