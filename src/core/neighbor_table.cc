#include "core/neighbor_table.h"

#include <algorithm>

namespace tmesh {

bool NeighborTable::Insert(int row, int digit, const NeighborRecord& rec) {
  auto& r = rows_[CheckedRow(row, digit)];
  Entry& e = r[digit];
  TMESH_DCHECK(!std::any_of(e.begin(), e.end(), [&](const NeighborRecord& x) {
    return x.id == rec.id;
  }));
  auto pos = std::upper_bound(
      e.begin(), e.end(), rec,
      [](const NeighborRecord& a, const NeighborRecord& b) {
        return a.rtt_ms < b.rtt_ms;
      });
  e.insert(pos, rec);
  if (static_cast<int>(e.size()) > capacity_) {
    bool kept = e.back().id != rec.id;
    e.pop_back();
    return kept;
  }
  return true;
}

bool NeighborTable::Remove(int row, int digit, const UserId& id) {
  auto& r = rows_[CheckedRow(row, digit)];
  auto it = r.find(digit);
  if (it == r.end()) return false;
  Entry& e = it->second;
  auto pos = std::find_if(e.begin(), e.end(), [&](const NeighborRecord& x) {
    return x.id == id;
  });
  if (pos == e.end()) return false;
  e.erase(pos);
  if (e.empty()) r.erase(it);
  return true;
}

bool NeighborTable::ContainsNeighbor(int row, int digit,
                                     const UserId& id) const {
  const Entry* e = entry(row, digit);
  if (e == nullptr) return false;
  return std::any_of(e->begin(), e->end(), [&](const NeighborRecord& x) {
    return x.id == id;
  });
}

int NeighborTable::TotalRecords() const {
  int n = 0;
  for (const auto& r : rows_) {
    for (const auto& [digit, e] : r) {
      (void)digit;
      n += static_cast<int>(e.size());
    }
  }
  return n;
}

}  // namespace tmesh
