#include "core/key_server.h"

namespace tmesh {

KeyServer::KeyServer(const Network& net, HostId server_host, Simulator& sim,
                     const Config& config)
    : cfg_(config),
      dir_(net, config.group, server_host),
      assigner_(dir_, config.assign, config.seed),
      mtree_(config.group.digits),
      clusters_(config.group.digits),
      sim_(sim),
      tmesh_(dir_, sim) {}

void KeyServer::SetMetrics(MetricsRegistry* metrics) {
  tmesh_.SetMetrics(metrics);
  if (metrics == nullptr) {
    metrics_ = MetricHandles{};
    return;
  }
  metrics_.joins = metrics->GetCounter("keyserver.joins");
  metrics_.leaves = metrics->GetCounter("keyserver.leaves");
  metrics_.failures_repaired =
      metrics->GetCounter("keyserver.failures_repaired");
  metrics_.intervals = metrics->GetCounter("keyserver.intervals");
  metrics_.quiet_intervals = metrics->GetCounter("keyserver.quiet_intervals");
  metrics_.encryptions = metrics->GetCounter("keyserver.encryptions");
  metrics_.batch_size = metrics->GetHistogram("keyserver.batch_size");
  metrics_.rekey_encryptions =
      metrics->GetHistogram("keyserver.rekey_encryptions");
}

void KeyServer::Start() {
  TMESH_CHECK_MSG(!running_, "already started");
  running_ = true;
  // A Stop()ped-but-unfired tick is still in flight; it will see running_
  // and re-arm, so scheduling here would fork a second tick chain.
  if (tick_at_ == kNoTime) {
    tick_at_ = sim_.Now() + cfg_.rekey_interval;
    sim_.ScheduleIn(cfg_.rekey_interval, [this]() { EndInterval(); });
  }
}

std::optional<UserId> KeyServer::RequestJoin(HostId host) {
  std::optional<UserId> id = assigner_.AssignId(host);
  if (!id.has_value()) return std::nullopt;
  dir_.AddMember(*id, host, sim_.Now());
  mtree_.Join(*id);
  clusters_.Join(*id, sim_.Now());
  ++interval_joins_;
  if (metrics_.joins != nullptr) metrics_.joins->Increment();
  // The server unicasts the joiner its ID and current path keys (§3.1 and
  // footnote 1); key state is modeled by the tree's live versions, so
  // nothing further to do here.
  return id;
}

void KeyServer::RequestLeave(UserId id) {
  TMESH_CHECK_MSG(dir_.Contains(id), "leave of unknown member");
  dir_.RemoveMember(id);
  mtree_.Leave(id);
  clusters_.Leave(id);
  ++interval_leaves_;
  if (metrics_.leaves != nullptr) metrics_.leaves->Increment();
}

void KeyServer::RepairFailure(UserId id) {
  TMESH_CHECK_MSG(dir_.Contains(id), "repair of unknown member");
  dir_.RepairFailure(id);
  mtree_.Leave(id);
  clusters_.Leave(id);
  ++interval_leaves_;
  if (metrics_.failures_repaired != nullptr) {
    metrics_.failures_repaired->Increment();
  }
}

void KeyServer::EndInterval() {
  tick_at_ = kNoTime;
  IntervalRecord rec;
  rec.when = sim_.Now();
  rec.joins = interval_joins_;
  rec.leaves = interval_leaves_;
  interval_joins_ = 0;
  interval_leaves_ = 0;

  // Both trees track the full membership; the distributed message comes
  // from whichever scheme is active.
  RekeyMessage full = mtree_.Rekey(cfg_.rekey_shards);
  RekeyMessage clustered = clusters_.Rekey();
  RekeyMessage& chosen = cfg_.cluster_heuristic ? clustered : full;
  rec.rekey_cost = chosen.RekeyCost();

  if (metrics_.intervals != nullptr) {
    metrics_.intervals->Increment();
    metrics_.batch_size->Observe(static_cast<double>(rec.joins + rec.leaves));
    if (rec.rekey_cost > 0) {
      metrics_.encryptions->Add(static_cast<std::int64_t>(rec.rekey_cost));
      metrics_.rekey_encryptions->Observe(
          static_cast<double>(rec.rekey_cost));
    } else {
      metrics_.quiet_intervals->Increment();
    }
  }

  if (rec.rekey_cost > 0 && dir_.alive_count() > 0) {
    messages_.push_back(std::make_unique<RekeyMessage>(std::move(chosen)));
    TMesh::Options opts;
    opts.split = cfg_.split;
    opts.clusters = cfg_.cluster_heuristic ? &clusters_ : nullptr;
    opts.record_encryptions = cfg_.record_encryptions;
    opts.loss_prob = cfg_.loss_prob;
    opts.max_send_attempts = cfg_.max_send_attempts;
    opts.loss_seed = cfg_.seed * 0x9E3779B97F4A7C15ull +
                     static_cast<std::uint64_t>(deliveries_.size());
    deliveries_.push_back(tmesh_.BeginRekey(*messages_.back(), opts));
    rec.delivery = static_cast<int>(deliveries_.size()) - 1;
  }
  history_.push_back(rec);

  if (running_) {
    tick_at_ = sim_.Now() + cfg_.rekey_interval;
    sim_.ScheduleIn(cfg_.rekey_interval, [this]() { EndInterval(); });
  }
}

}  // namespace tmesh
