#include "core/key_server.h"

#include <algorithm>

namespace tmesh {

namespace {
const Network& RequireNet(const KeyServer::Config& config) {
  TMESH_CHECK_MSG(config.net != nullptr, "KeyServer::Config::net is required");
  return *config.net;
}
}  // namespace

KeyServer::KeyServer(Transport& transport, const Config& config)
    : cfg_(config),
      dir_(RequireNet(config), config.group, config.server_host),
      assigner_(dir_, config.assign, config.seed),
      mtree_(config.group.digits),
      clusters_(config.group.digits),
      transport_(transport),
      tmesh_(dir_, transport) {}

void KeyServer::SetMetrics(MetricsRegistry* metrics) {
  tmesh_.SetMetrics(metrics);
  if (metrics == nullptr) {
    metrics_ = MetricHandles{};
    return;
  }
  metrics_.joins = metrics->GetCounter("keyserver.joins");
  metrics_.leaves = metrics->GetCounter("keyserver.leaves");
  metrics_.failures_repaired =
      metrics->GetCounter("keyserver.failures_repaired");
  metrics_.intervals = metrics->GetCounter("keyserver.intervals");
  metrics_.quiet_intervals = metrics->GetCounter("keyserver.quiet_intervals");
  metrics_.undistributed_rekeys =
      metrics->GetCounter("keyserver.undistributed_rekeys");
  metrics_.encryptions = metrics->GetCounter("keyserver.encryptions");
  metrics_.batch_size = metrics->GetHistogram("keyserver.batch_size");
  metrics_.rekey_encryptions =
      metrics->GetHistogram("keyserver.rekey_encryptions");
}

void KeyServer::Start() {
  TMESH_CHECK_MSG(!running_, "already started");
  TMESH_CHECK_MSG(!halted_, "start of a halted server");
  running_ = true;
  // A Stop()ped-but-unfired tick is still in flight; it will see running_
  // and re-arm, so scheduling here would fork a second tick chain.
  if (tick_at_ == kNoTime) {
    tick_at_ = transport_.Now() + cfg_.rekey_interval;
    transport_.ScheduleIn(cfg_.rekey_interval, [this]() { EndInterval(); });
  }
}

std::optional<UserId> KeyServer::RequestJoin(HostId host) {
  TMESH_CHECK_MSG(!halted_, "join on a halted server");
  std::optional<UserId> id = assigner_.AssignId(host);
  if (!id.has_value()) return std::nullopt;
  dir_.AddMember(*id, host, transport_.Now());
  mtree_.Join(*id);
  clusters_.Join(*id, transport_.Now());
  ++interval_joins_;
  if (metrics_.joins != nullptr) metrics_.joins->Increment();
  // The server unicasts the joiner its ID and current path keys (§3.1 and
  // footnote 1); key state is modeled by the tree's live versions, so
  // nothing further to do here.
  return id;
}

void KeyServer::RequestLeave(UserId id) {
  TMESH_CHECK_MSG(!halted_, "leave on a halted server");
  TMESH_CHECK_MSG(dir_.Contains(id), "leave of unknown member");
  if (!dir_.IsAlive(id)) {
    // §2.3 failure window: the member was MarkFailed and its "leave" is the
    // failure detection completing (a voluntary-leave notice cannot come
    // from a crashed member). Taking the leave path here would skip the
    // table repair and leave the directory believing a graceful departure
    // happened — route to RepairFailure instead.
    RepairFailure(id);
    return;
  }
  dir_.RemoveMember(id);
  mtree_.Leave(id);
  clusters_.Leave(id);
  ++interval_leaves_;
  if (metrics_.leaves != nullptr) metrics_.leaves->Increment();
}

void KeyServer::RepairFailure(UserId id) {
  TMESH_CHECK_MSG(!halted_, "repair on a halted server");
  TMESH_CHECK_MSG(dir_.Contains(id), "repair of unknown member");
  dir_.RepairFailure(id);
  mtree_.Leave(id);
  clusters_.Leave(id);
  ++interval_leaves_;
  if (metrics_.failures_repaired != nullptr) {
    metrics_.failures_repaired->Increment();
  }
}

void KeyServer::EndInterval() {
  // A tick that outlives its server (the replication layer Halt()ed this
  // instance with the tick already queued) fires as a no-op: a dead server
  // processes no batch and re-arms nothing.
  if (halted_) return;
  const SimTime fired_at = tick_at_;
  tick_at_ = kNoTime;
  IntervalRecord rec;
  rec.when = transport_.Now();
  rec.joins = interval_joins_;
  rec.leaves = interval_leaves_;
  interval_joins_ = 0;
  interval_leaves_ = 0;

  // Both trees track the full membership, but only the active scheme does
  // (and accounts) rekey work; the inactive one drops its pending batch so
  // bench timings and keyserver.encryptions measure the chosen scheme only.
  RekeyMessage chosen;
  if (cfg_.cluster_heuristic) {
    chosen = clusters_.Rekey();
    mtree_.DiscardPending();
  } else {
    chosen = mtree_.Rekey(cfg_.rekey_shards);
    clusters_.DiscardPending();
  }
  rec.rekey_cost = chosen.RekeyCost();

  if (crash_before_distribute_ && rec.rekey_cost > 0) {
    // Mid-batch crash (DESIGN.md §3g): the batch rekey ran — the renewed
    // versions exist only on this dead server — but the message never
    // leaves. Those versions are burned: the successor re-stamps the
    // renewed paths (TakeSnapshot exports them as unsent_renewed) and its
    // next interval issues fresh versions, so no (key ID, version) pair is
    // ever distributed twice and no member is locked out by a version it
    // never received. The interval counters are restored so the successor's
    // first record still reports the batch it re-keys.
    crash_before_distribute_ = false;
    unsent_message_ = std::make_unique<RekeyMessage>(std::move(chosen));
    unsent_renewed_.clear();
    for (const Encryption& e : unsent_message_->encryptions) {
      if (std::find(unsent_renewed_.begin(), unsent_renewed_.end(),
                    e.new_key_id) == unsent_renewed_.end()) {
        unsent_renewed_.push_back(e.new_key_id);
      }
    }
    interval_joins_ = rec.joins;
    interval_leaves_ = rec.leaves;
    Halt();
    if (on_crash_) on_crash_();
    return;
  }

  const bool distributed = rec.rekey_cost > 0 && dir_.alive_count() > 0;
  if (metrics_.intervals != nullptr) {
    metrics_.intervals->Increment();
    metrics_.batch_size->Observe(static_cast<double>(rec.joins + rec.leaves));
    if (distributed) {
      metrics_.encryptions->Add(static_cast<std::int64_t>(rec.rekey_cost));
      metrics_.rekey_encryptions->Observe(
          static_cast<double>(rec.rekey_cost));
    } else if (rec.rekey_cost > 0) {
      // Rekey work with no alive recipient (e.g. the whole group left or
      // failed this interval): no delivery happens, and the encryption
      // counter — which tracks distributed rekey traffic — must agree with
      // the record's delivery == -1 rather than silently counting it.
      metrics_.undistributed_rekeys->Increment();
    } else {
      metrics_.quiet_intervals->Increment();
    }
  }

  if (distributed) {
    messages_.push_back(std::make_unique<RekeyMessage>(std::move(chosen)));
    TMesh::Options opts;
    opts.split = cfg_.split;
    opts.clusters = cfg_.cluster_heuristic ? &clusters_ : nullptr;
    opts.record_encryptions = cfg_.record_encryptions;
    opts.loss_prob = cfg_.loss_prob;
    opts.max_send_attempts = cfg_.max_send_attempts;
    opts.loss_seed = cfg_.seed * 0x9E3779B97F4A7C15ull +
                     static_cast<std::uint64_t>(deliveries_.size());
    deliveries_.push_back(tmesh_.BeginRekey(*messages_.back(), opts));
    rec.delivery = static_cast<int>(deliveries_.size()) - 1;
  }
  history_.push_back(rec);

  if (running_) {
    // Absolute cadence: re-arm from the tick's *scheduled* instant, not
    // from Now(). A wall-clock transport fires the tick late by processing
    // and scheduling jitter; a Now()-relative re-arm would compound that
    // drift every interval (regression: key_server_test
    // IntervalCadenceDoesNotDriftUnderLateTimers). In the simulator,
    // Now() == fired_at inside the tick, so this is byte-identical to the
    // former Now()-relative schedule. The max() keeps a tick that overran
    // a whole interval from landing in the past.
    tick_at_ = std::max(fired_at + cfg_.rekey_interval, transport_.Now());
    transport_.ScheduleAt(tick_at_, [this]() { EndInterval(); });
  }
  if (on_interval_) on_interval_(history_.back());
}

KeyServer::Snapshot KeyServer::TakeSnapshot() const {
  Snapshot snap;
  snap.members.reserve(dir_.members().size());
  for (const auto& [id, info] : dir_.members()) {
    snap.members.push_back(
        Snapshot::Member{id, info.host, info.join_time, info.alive});
  }
  snap.mtree = mtree_.Snapshot();
  snap.clusters = clusters_.Snapshot();
  snap.interval_joins = interval_joins_;
  snap.interval_leaves = interval_leaves_;
  snap.unsent_renewed = unsent_renewed_;
  return snap;
}

void KeyServer::InstallSnapshot(const Snapshot& snap) {
  TMESH_CHECK_MSG(!running_ && !halted_ && tick_at_ == kNoTime &&
                      history_.empty() && dir_.member_count() == 0,
                  "install requires a fresh, never-started server");
  // Survivor re-registration in (join time, id) order: the directory
  // rebuilds neighbor tables from scratch, which is K-consistent by
  // construction (AddMember maintains Definition 3 for any join order).
  // Failed-but-unrepaired members re-enter their §2.3 window afterwards.
  std::vector<const Snapshot::Member*> order;
  order.reserve(snap.members.size());
  for (const auto& m : snap.members) order.push_back(&m);
  std::stable_sort(order.begin(), order.end(),
                   [](const Snapshot::Member* a, const Snapshot::Member* b) {
                     if (a->join_time != b->join_time) {
                       return a->join_time < b->join_time;
                     }
                     return a->id < b->id;
                   });
  for (const Snapshot::Member* m : order) {
    dir_.AddMember(m->id, m->host, m->join_time);
  }
  for (const auto& m : snap.members) {
    if (!m.alive) dir_.MarkFailed(m.id);
  }
  mtree_.Install(snap.mtree);
  clusters_.Install(snap.clusters);
  interval_joins_ = snap.interval_joins;
  interval_leaves_ = snap.interval_leaves;
  // Burned versions from the predecessor's mid-batch crash: re-stamp the
  // surviving paths so the next interval re-issues them one version up.
  ModifiedKeyTree* tree = cfg_.cluster_heuristic ? nullptr : &mtree_;
  for (const KeyId& k : snap.unsent_renewed) {
    if (tree != nullptr) {
      tree->MarkPending(k);
    } else {
      clusters_.MarkLeaderKeyPending(k);
    }
  }
}

}  // namespace tmesh
