// T-mesh: the paper's multicast scheme over neighbor tables (§2.3), with
// rekey-message splitting (§2.5, Fig. 5), the cluster-rekeying forwarding
// rule (Appendix B), loss recovery via backup neighbors, and an optional
// access-link model for studying rekey/data interference.
//
// A multicast message carries a forward_level field. The sender emits at
// level 0; a user receiving at level i forwards, for each row i..D-1 of its
// neighbor table, one copy per non-empty entry to that entry's primary
// neighbor, tagged level i+1 (routine FORWARD, Fig. 2). With 1-consistent
// tables and no loss every member except the sender receives exactly one
// copy (Theorem 1) — the tests assert this for every session.
//
// Splitting (rekey transport only): a forwarder at level s copies an
// encryption e into the message for next hop w iff e.ID is a prefix of
// w.ID[0:s] or w.ID[0:s] is a prefix of e.ID (routine REKEY-MESSAGE-SPLIT,
// Fig. 5). Messages are split in units of encryptions by default; packet-
// granularity splitting (§2.5's coarser alternative) is available for the
// ablation benches. Split messages carry indices into the original rekey
// message, never copies.
//
// Failure and loss recovery (§2.3): entries hold up to K neighbors. A
// forwarder skips neighbors already marked failed; when per-hop loss is
// simulated, an unacknowledged transmission is retried after an RTT-scaled
// timeout on the *next* neighbor of the same entry — "it can simply forward
// messages to another neighbor in the same table entry".
//
// Concurrent sessions: the paper's goal is concurrent rekey and data
// transport over the same tables. Begin* starts a session without running
// the simulator, so several sessions (e.g. a rekey burst plus a data
// stream) can progress together; when the access-link model is enabled,
// all sessions of one TMesh share each host's uplink, so a bulky rekey
// message delays concurrent data — unless splitting shrinks it. That is
// the paper's §1 motivation, quantified in bench/ablation_congestion.
//
// Cluster mode (Appendix B): forwarding stops at row D-2; the one member of
// each bottom cluster that receives the message relays it to its cluster
// leader if it is not the leader itself; the leader then unicasts the new
// group key (one encryption under each pairwise key) to every other member
// of its cluster. Per footnote 8, row-(D-2) primaries prefer the earliest
// joiner (the leader) among live entry records.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/cluster_rekeying.h"
#include "core/group_view.h"
#include "keytree/rekey_types.h"
#include "metrics/registry.h"
#include "metrics/trace.h"
#include "sim/simulator.h"
#include "transport/sim_transport.h"
#include "transport/transport.h"

namespace tmesh {

struct MemberDeliveryRecord {
  int copies = 0;        // multicast copies received (Theorem 1: exactly 1)
  double delay_ms = -1.0;  // application-layer delay of the first copy
  double rdp = -1.0;       // relative delay penalty of the first copy
  int forward_level = -1;  // forwarding level of the first copy
  HostId from = kNoHost;   // previous hop of the first copy
  int stress = 0;          // messages this user sent or forwarded
  int group_key_copies = 0;  // Appendix-B pairwise group-key unicasts got
  std::int64_t encs_received = 0;
  std::int64_t encs_forwarded = 0;
};

struct LinkLoad {
  std::vector<std::int64_t> encryptions;  // per LinkId
  std::vector<std::int32_t> messages;     // per LinkId
};

class TMesh {
 public:
  struct Options {
    // Apply REKEY-MESSAGE-SPLIT (rekey sessions only).
    bool split = false;
    // When > 0 (and split is on), split at *packet* granularity instead of
    // encryption granularity: encryptions are packed `split_packet_encs`
    // per packet in message order, and a whole packet is forwarded if any
    // of its encryptions passes the Fig. 5 test (§2.5's alternative; the
    // ablation bench quantifies the overhead).
    int split_packet_encs = 0;
    // Non-null enables Appendix-B cluster forwarding for rekey sessions.
    const ClusterRekeying* clusters = nullptr;
    // Account per-link encryption/message counts (needs router paths).
    bool track_links = false;
    // Record, per member, the indices (into the rekey message) of every
    // encryption received — used by the correctness tests (Corollary 1 and
    // the decryption-closure property).
    bool record_encryptions = false;
    // Per-transmission loss probability. A lost transmission is retried on
    // the next live neighbor of the same entry after a timeout of
    // retry_rtt_factor × the hop RTT (§2.3's burst-loss recovery).
    double loss_prob = 0.0;
    // Seed for the loss draws. Multi-replica callers must derive this from
    // the replica's base seed (as key_server.cc does per interval) —
    // leaving the default correlates every replica's loss pattern.
    std::uint64_t loss_seed = 1;
    int max_send_attempts = 8;
    double retry_rtt_factor = 3.0;
  };

  struct Result {
    std::vector<MemberDeliveryRecord> member;  // indexed by HostId
    LinkLoad links;                            // sized iff track_links
    // Per-host received encryption indices (iff record_encryptions).
    std::vector<std::vector<std::int32_t>> member_encs;
    int messages_sent = 0;   // transmissions (including lost ones)
    int messages_lost = 0;   // transmissions dropped by the loss model
    int deliveries_failed = 0;  // sends abandoned after max_send_attempts
    SimTime start = 0;

    int ReceivedCount() const {
      int n = 0;
      for (const auto& r : member) n += r.copies > 0 ? 1 : 0;
      return n;
    }
  };

  // Optional access-link model: each host's uplink serializes its outgoing
  // messages at `kbps`; a rekey packet of encryptions {e} occupies the
  // uplink for (header_bytes + Σ WireSize(e)) × 8 / kbps milliseconds,
  // using each encryption's exact wire.cc size (IDs are depth-dependent, so
  // a flat per-encryption estimate misstates congestion at other depths).
  // Shared across all concurrent sessions of this TMesh — this is what
  // makes a bulky rekey burst delay a concurrent data stream (§1).
  struct UplinkModel {
    double kbps = 0.0;  // 0 disables the model
    int header_bytes = 48;
    // Transmission size of a non-rekey (data) message in bytes.
    int data_bytes = 1024;
  };

  // The protocol speaks only to the Transport seam (DESIGN.md §3h): a
  // clock for uplink/delivery arithmetic and one-shot timers for scheduled
  // transmissions. Any Transport works; over a SimTransport the event
  // history is byte-identical to the pre-seam simulator binding. Every
  // scheduled event is host-affinity-tagged (deliveries at the receiver,
  // retry timers at the sender), so a PsimTransport over the conservative
  // parallel driver (DESIGN.md §3i) partitions the run across workers with
  // the same byte-identical history; per-lane scratch and deferred metric
  // counts (sized by ExecLanes()) keep worker threads from sharing state.
  TMesh(const GroupView& dir, Transport& transport)
      : dir_(dir),
        transport_(transport),
        drain_sim_(SimulatorOf(transport)) {
    InitLanes();
  }
  // Convenience for simulator studies: owns a timer-plane SimTransport over
  // `sim`, so the ~45 existing call sites (tests, benches, examples) keep
  // their shape and the MulticastRekey/MulticastData drivers can drain.
  TMesh(const GroupView& dir, Simulator& sim)
      : dir_(dir),
        owned_transport_(
            std::make_unique<SimTransport>(sim, dir.server_host())),
        transport_(*owned_transport_),
        drain_sim_(&sim) {
    InitLanes();
  }

  void SetUplinkModel(const UplinkModel& model);

  // Attaches a registry (null detaches). Counter handles under "tmesh." are
  // resolved once here; the forwarding hot path then pays one null check
  // plus plain member increments per transmission. The registry must
  // outlive the TMesh (or be detached first) and is typically the
  // replica-local registry a ReplicaRunner body merges in run-index order.
  void SetMetrics(MetricsRegistry* metrics);
  // Observes the per-uplink byte totals accumulated since attach (or the
  // last flush) into the "tmesh.uplink_bytes_per_host" histogram and resets
  // them, and — on a multi-lane transport — folds the per-lane deferred
  // counter increments into the registry handles (sums are order-
  // independent, so the fold is thread-count-invariant). Call once per run,
  // after the simulator or driver drains.
  void FlushMetrics();

  // Attaches a message tracer (null detaches): every session records a
  // birth span, a forward span per transmission (uplink departure →
  // arrival, lossy attempts included), and a zero-length delivery span.
  void SetTracer(MessageTracer* tracer) { tracer_ = tracer; }

  // A running multicast session. Keep the handle alive until the simulator
  // has drained; read result() afterwards. For rekey sessions the message
  // must outlive the handle.
  class Handle {
   public:
    const Result& result() const;
    Result TakeResult();

   private:
    friend class TMesh;
    struct Session;
    explicit Handle(std::unique_ptr<Session> s);
    std::unique_ptr<Session> session_;

   public:
    Handle(Handle&&) noexcept;
    Handle& operator=(Handle&&) noexcept;
    ~Handle();
  };

  // Starts a rekey multicast from the key server (events are scheduled but
  // the simulator is NOT run — drive it yourself for concurrent sessions).
  Handle BeginRekey(const RekeyMessage& msg, const Options& opts);
  // Starts a data multicast from `sender`.
  Handle BeginData(const UserId& sender, const Options& opts);
  Handle BeginData(const UserId& sender) { return BeginData(sender, {}); }

  // Convenience: begin + run the simulator to completion + return results.
  Result MulticastRekey(const RekeyMessage& msg, const Options& opts);
  Result MulticastData(const UserId& sender);

 private:
  // Encryption-index payloads travel as shared immutable snapshots: every
  // hop that forwards the same index set (always, when splitting is off;
  // whenever the Fig. 5 filter keeps everything, when it is on) shares one
  // refcounted vector instead of copying it into each scheduled event.
  using EncList = std::vector<std::int32_t>;
  using EncSnapshot = std::shared_ptr<const EncList>;

  struct Packet {
    int forward_level = 0;
    EncSnapshot encs;                // indices into the rekey message; may
                                     // be null (data packets, key unicasts)
    bool group_key_unicast = false;  // Appendix-B last hop (1 encryption)
    bool leader_relay = false;       // non-leader -> leader full-message hop
    bool is_rekey = false;
  };

  using Session = Handle::Session;

  // Per-execution-lane state: the forwarding-path scratch buffers plus the
  // deferred metric counts a worker lane accumulates instead of touching
  // the (single-threaded) registry handles. Sequential transports have one
  // lane, so lanes_[0] behaves exactly like the old member scratch. Event
  // entry points (Deliver, RetrySend, Begin*) fetch the lane once via
  // transport_.ExecLane() and pass it down the synchronous call chain.
  struct Lane {
    std::size_t index = 0;
    std::vector<UserId> cand;
    std::vector<const NeighborRecord*> live;
    EncList split;
    std::vector<LinkId> path;
    // Deferred "tmesh." counter increments (multi-lane transports only;
    // folded into the handles by FlushMetrics).
    std::int64_t messages_sent = 0;
    std::int64_t forwards = 0;
    std::int64_t deliveries = 0;
    std::int64_t encs_sent = 0;
    std::int64_t split_messages = 0;
    std::int64_t uplink_bytes = 0;
  };

  // Transmits `pkt` to the first candidate (`lane.cand` is a scratch
  // buffer the caller may reuse immediately after the call returns); on
  // simulated loss, copies the candidates and schedules RetrySend.
  void SendFirst(Session& s, const UserId* from, HostId from_host,
                 const std::vector<UserId>& candidates, Packet pkt,
                 Lane& lane);
  // Loss-recovery path (§2.3): transmits to the attempt-th live candidate;
  // owns its candidate list across retries.
  void RetrySend(Session& s, const UserId* from, HostId from_host,
                 std::vector<UserId> candidates, Packet pkt, int attempt);
  void Transmit(Session& s, const UserId* from, HostId from_host,
                const UserId& to, const Packet& pkt, bool lost,
                SimTime depart, SimTime tx_time, Lane& lane);
  void Deliver(Session& s, const UserId& user, const Packet& pkt,
               HostId from_host);
  void Forward(Session& s, const UserId& user, const Packet& pkt,
               Lane& lane);
  void ClusterDuty(Session& s, const UserId& user, const Packet& pkt,
                   Lane& lane);

  // Fig. 5's per-next-hop filter: encryptions needed within w's level-(s+1)
  // subtree, where `w_prefix` = w.ID[0:s]. Writes the surviving indices
  // into `out` (a scratch buffer; cleared first).
  void SplitFor(const Session& s, const EncList& encs,
                const DigitString& w_prefix, EncList& out);

  // Live candidates of an entry, preference-ordered: RTT order, except in
  // cluster mode at row D-2 where the earliest joiner leads (footnote 8).
  // Writes into `lane.cand` (cleared first), using `lane.live` as scratch.
  void CandidatesOf(const NeighborTable::Entry& entry, int row,
                    bool cluster_mode, Lane& lane);

  // Splits the parent payload for the entry whose candidates share
  // `prefix`, sharing the parent snapshot when the filter keeps everything.
  EncSnapshot SplitSnapshot(Session& s, const EncSnapshot& parent,
                            const DigitString& prefix, Lane& lane);

  std::size_t EncCount(const Packet& pkt) const {
    if (pkt.group_key_unicast) return 1;
    return pkt.encs == nullptr ? 0 : pkt.encs->size();
  }
  // Bytes on the wire for the uplink model (exact wire.cc sizes, summed
  // from the session's per-encryption table).
  double PacketBytes(const Session& s, const Packet& pkt) const;
  // Occupies the sender's uplink; returns {depart, tx_time}.
  std::pair<SimTime, SimTime> OccupyUplink(HostId from, double bytes,
                                           Lane& lane);

  Handle MakeSession(const Options& opts, HostId source_host, bool is_rekey,
                     const RekeyMessage* msg);

  void InitLanes() {
    lanes_.resize(transport_.ExecLanes());
    for (std::size_t i = 0; i < lanes_.size(); ++i) lanes_[i].index = i;
    parallel_ = lanes_.size() > 1;
  }
  Lane& LaneRef() { return lanes_[transport_.ExecLane()]; }

  // Recovers the simulator behind a SimTransport so the convenience
  // MulticastRekey/MulticastData drivers (begin + drain + return) still
  // work; null for transports with no drainable event loop (UDP), where
  // callers must use the Begin* forms.
  static Simulator* SimulatorOf(Transport& transport) {
    auto* st = dynamic_cast<SimTransport*>(&transport);
    return st != nullptr ? &st->simulator() : nullptr;
  }

  const GroupView& dir_;
  std::unique_ptr<SimTransport> owned_transport_;  // convenience ctor only
  Transport& transport_;
  Simulator* drain_sim_ = nullptr;
  UplinkModel uplink_;
  std::vector<SimTime> uplink_free_;  // per host; sized when model enabled

  // Resolved metric handles ("tmesh." namespace); all null when detached,
  // so the hot path tests one pointer. Sessions share these handles — the
  // registry aggregates across concurrent sessions of this TMesh.
  struct MetricHandles {
    Counter* messages_sent = nullptr;
    Counter* messages_lost = nullptr;
    Counter* retries = nullptr;
    Counter* deliveries_failed = nullptr;
    Counter* forwards = nullptr;
    Counter* deliveries = nullptr;
    Counter* encs_sent = nullptr;
    Counter* split_messages = nullptr;
    Counter* uplink_bytes = nullptr;
    Counter* sessions = nullptr;
  };
  MetricHandles metrics_;
  MetricsRegistry* registry_ = nullptr;
  std::vector<double> metric_uplink_bytes_;  // per host since last flush
  MessageTracer* tracer_ = nullptr;
  std::int64_t next_trace_id_ = 0;

  // One Lane per transport execution lane (1 on sequential transports, one
  // per worker on the parallel driver). The scratch buffers are reused
  // across hops so the no-loss message path performs no heap allocation
  // (beyond at most one payload snapshot per hop when splitting actually
  // shrinks the message). Safe because Forward/SendFirst complete
  // synchronously within one event — nothing holds a scratch reference
  // across scheduled events — and a lane is only ever touched by the one
  // thread executing that lane's events.
  std::vector<Lane> lanes_;
  bool parallel_ = false;  // lanes_.size() > 1
};

}  // namespace tmesh
