#include "core/cluster_rekeying.h"

#include <algorithm>

namespace tmesh {

ClusterRekeying::ClusterRekeying(int depth)
    : depth_(depth), leader_tree_(depth) {}

bool ClusterRekeying::Join(const UserId& u, SimTime join_time) {
  DigitString c = ClusterOf(u);
  Cluster& cluster = clusters_[c];
  for (const Member& m : cluster.members) {
    TMESH_CHECK_MSG(m.id != u, "duplicate cluster member");
  }
  cluster.members.push_back(Member{u, join_time});
  ++member_count_;
  if (cluster.members.size() == 1) {
    // First user of the cluster: "a cluster leader is always the first join
    // in its cluster. The key server follows the regular rekeying procedure
    // to process its join."
    cluster.leader = 0;
    leader_tree_.Join(u);
    return true;
  }
  return false;
}

bool ClusterRekeying::Leave(UserId u) {
  DigitString c = ClusterOf(u);
  auto it = clusters_.find(c);
  TMESH_CHECK_MSG(it != clusters_.end(), "leave from unknown cluster");
  Cluster& cluster = it->second;
  auto pos = std::find_if(cluster.members.begin(), cluster.members.end(),
                          [&](const Member& m) { return m.id == u; });
  TMESH_CHECK_MSG(pos != cluster.members.end(), "leave of non-member");

  bool was_leader =
      static_cast<std::size_t>(pos - cluster.members.begin()) == cluster.leader;
  // Remove, fixing the leader index if it shifts.
  std::size_t removed = static_cast<std::size_t>(pos - cluster.members.begin());
  cluster.members.erase(pos);
  --member_count_;
  if (!was_leader) {
    if (removed < cluster.leader) --cluster.leader;
    return false;
  }

  // Leader departure: rekey its path away; hand leadership to the earliest
  // remaining joiner (Appendix B's handover), whose u-node now anchors the
  // cluster's keys.
  leader_tree_.Leave(u);
  if (cluster.members.empty()) {
    clusters_.erase(it);
    return true;
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < cluster.members.size(); ++i) {
    if (cluster.members[i].join_time < cluster.members[best].join_time) {
      best = i;
    }
  }
  cluster.leader = best;
  leader_tree_.Join(cluster.members[best].id);
  return true;
}

ClusterRekeyingState ClusterRekeying::Snapshot() const {
  ClusterRekeyingState s;
  s.members.reserve(static_cast<std::size_t>(member_count_));
  for (const auto& [prefix, cluster] : clusters_) {
    (void)prefix;
    for (const Member& m : cluster.members) {
      s.members.emplace_back(m.id, m.join_time);
    }
  }
  std::sort(s.members.begin(), s.members.end());
  s.leader_tree = leader_tree_.Snapshot();
  return s;
}

void ClusterRekeying::Install(const ClusterRekeyingState& state) {
  TMESH_CHECK_MSG(clusters_.empty() && member_count_ == 0,
                  "install requires a fresh instance");
  leader_tree_.Install(state.leader_tree);
  for (const auto& [id, join_time] : state.members) {
    clusters_[ClusterOf(id)].members.push_back(Member{id, join_time});
    ++member_count_;
  }
  for (auto& [prefix, cluster] : clusters_) {
    (void)prefix;
    std::size_t leader = cluster.members.size();
    for (std::size_t i = 0; i < cluster.members.size(); ++i) {
      if (leader_tree_.Contains(cluster.members[i].id)) {
        TMESH_CHECK_MSG(leader == cluster.members.size(),
                        "two leaders in one snapshot cluster");
        leader = i;
      }
    }
    TMESH_CHECK_MSG(leader < cluster.members.size(),
                    "snapshot cluster without a leader");
    cluster.leader = leader;
  }
}

bool ClusterRekeying::IsLeader(const UserId& u) const {
  auto it = clusters_.find(ClusterOf(u));
  if (it == clusters_.end()) return false;
  const Cluster& cluster = it->second;
  return !cluster.members.empty() && cluster.members[cluster.leader].id == u;
}

UserId ClusterRekeying::LeaderOf(const UserId& u) const {
  auto it = clusters_.find(ClusterOf(u));
  TMESH_CHECK_MSG(it != clusters_.end(), "unknown cluster");
  const Cluster& cluster = it->second;
  TMESH_CHECK(!cluster.members.empty());
  return cluster.members[cluster.leader].id;
}

std::vector<UserId> ClusterRekeying::ClusterMembers(
    const DigitString& cluster) const {
  auto it = clusters_.find(cluster);
  if (it == clusters_.end()) return {};
  std::vector<UserId> out;
  out.reserve(it->second.members.size());
  for (const Member& m : it->second.members) out.push_back(m.id);
  return out;
}

std::vector<UserId> ClusterRekeying::PeersOf(const UserId& u) const {
  std::vector<UserId> out = ClusterMembers(ClusterOf(u));
  out.erase(std::remove(out.begin(), out.end(), u), out.end());
  return out;
}

void ClusterRekeying::CheckInvariants() const {
  int members = 0;
  for (const auto& [prefix, cluster] : clusters_) {
    TMESH_CHECK(prefix.size() == depth_ - 1);
    TMESH_CHECK(!cluster.members.empty());
    TMESH_CHECK(cluster.leader < cluster.members.size());
    const Member& leader = cluster.members[cluster.leader];
    TMESH_CHECK_MSG(leader_tree_.Contains(leader.id),
                    "leader missing from leader tree");
    for (const Member& m : cluster.members) {
      TMESH_CHECK(prefix.IsPrefixOf(m.id));
      // Leadership belongs to the earliest joiner.
      TMESH_CHECK_MSG(leader.join_time <= m.join_time,
                      "leader is not the earliest joiner");
      if (m.id != leader.id) {
        TMESH_CHECK_MSG(!leader_tree_.Contains(m.id),
                        "non-leader present in leader tree");
      }
      ++members;
    }
  }
  TMESH_CHECK(members == member_count_);
  TMESH_CHECK(leader_tree_.user_count() == cluster_count());
}

}  // namespace tmesh
