// Binary wire format for the protocol payloads.
//
// The paper attaches IDs to every encryption ("The ID is attached to each
// encryption", §2.4) and ships user records inside query responses and
// announcements (§2.2, §3.1). This module defines the byte encoding a
// deployment would put on the wire, so message sizes in the access-link
// model are honest and a real transport could be dropped in:
//
//   DigitString    := u8 length, then `length` digit bytes
//   Encryption     := enc_key_id  DigitString
//                     new_key_id  DigitString
//                     new_key_version u32le
//                     enc_key_version u32le
//                     payload (the encrypted key itself): kKeyBytes bytes
//   RekeyMessage   := "TMRK" magic, u32le count, encryptions...
//   NeighborRecord := id DigitString, host u32le (stand-in for an IP
//                     address), rtt_us u32le, join_time i64le
//
// Decoding is total: any byte string either decodes cleanly or returns
// nullopt — no partial state, no exceptions, no reads past the buffer.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/neighbor_table.h"
#include "keytree/rekey_types.h"

namespace tmesh {

// Size of the (mock) encrypted key payload carried per encryption.
inline constexpr std::size_t kKeyBytes = 16;

std::vector<std::uint8_t> EncodeRekeyMessage(const RekeyMessage& msg);
std::optional<RekeyMessage> DecodeRekeyMessage(
    const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> EncodeNeighborRecord(const NeighborRecord& rec);
std::optional<NeighborRecord> DecodeNeighborRecord(
    const std::vector<std::uint8_t>& bytes);

// Exact on-the-wire sizes (used by tests and available to the uplink
// model's calibration).
std::size_t WireSize(const Encryption& e);
std::size_t WireSize(const RekeyMessage& msg);
std::size_t WireSize(const NeighborRecord& rec);

}  // namespace tmesh
