#include "core/id_tree.h"

namespace tmesh {

const std::set<int> IdTree::kEmptyDigits = {};
const std::vector<UserId> IdTree::kNoUsers = {};

void IdTree::Insert(const UserId& u) {
  TMESH_CHECK(u.size() == depth_);
  TMESH_CHECK_MSG(nodes_.count(u) == 0, "duplicate user ID");
  auto& slots = pos_[u];
  for (int len = 0; len <= depth_; ++len) {
    DigitString p = u.Prefix(len);
    Node& node = nodes_[p];
    slots[static_cast<std::size_t>(len)] =
        static_cast<std::int32_t>(node.users.size());
    node.users.push_back(u);
    if (len < depth_) node.child_digits.insert(u.digit(len));
  }
  ++user_count_;
}

void IdTree::Erase(const UserId& u) {
  TMESH_CHECK(u.size() == depth_);
  TMESH_CHECK_MSG(nodes_.count(u) > 0, "erasing absent user ID");
  auto pit = pos_.find(u);
  TMESH_CHECK(pit != pos_.end());
  for (int len = depth_; len >= 0; --len) {
    DigitString p = u.Prefix(len);
    auto it = nodes_.find(p);
    TMESH_CHECK(it != nodes_.end());
    Node& node = it->second;
    // Swap-erase via the position index: O(1) per level.
    std::size_t idx =
        static_cast<std::size_t>(pit->second[static_cast<std::size_t>(len)]);
    TMESH_DCHECK(idx < node.users.size() && node.users[idx] == u);
    std::size_t last = node.users.size() - 1;
    if (idx != last) {
      node.users[idx] = node.users[last];
      pos_[node.users[idx]][static_cast<std::size_t>(len)] =
          static_cast<std::int32_t>(idx);
    }
    node.users.pop_back();
    if (len < depth_) {
      // Drop the child digit if that child subtree just vanished.
      if (nodes_.count(p.Child(u.digit(len))) == 0) {
        node.child_digits.erase(u.digit(len));
      }
    }
    if (node.users.empty()) nodes_.erase(it);
  }
  pos_.erase(pit);
  --user_count_;
}

std::vector<UserId> IdTree::UsersWithPrefix(const DigitString& prefix) const {
  auto it = nodes_.find(prefix);
  if (it == nodes_.end()) return {};
  return it->second.users;
}

const std::vector<UserId>& IdTree::UsersRef(const DigitString& prefix) const {
  auto it = nodes_.find(prefix);
  return it == nodes_.end() ? kNoUsers : it->second.users;
}

int IdTree::CountWithPrefix(const DigitString& prefix) const {
  auto it = nodes_.find(prefix);
  return it == nodes_.end() ? 0 : static_cast<int>(it->second.users.size());
}

const std::set<int>& IdTree::ChildDigits(const DigitString& prefix) const {
  auto it = nodes_.find(prefix);
  return it == nodes_.end() ? kEmptyDigits : it->second.child_digits;
}

}  // namespace tmesh
