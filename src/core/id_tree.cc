#include "core/id_tree.h"

#include <algorithm>

namespace tmesh {

const std::set<int> IdTree::kEmptyDigits = {};

void IdTree::Insert(const UserId& u) {
  TMESH_CHECK(u.size() == depth_);
  TMESH_CHECK_MSG(nodes_.count(u) == 0, "duplicate user ID");
  for (int len = 0; len <= depth_; ++len) {
    DigitString p = u.Prefix(len);
    Node& node = nodes_[p];
    node.users.push_back(u);
    if (len < depth_) node.child_digits.insert(u.digit(len));
  }
  ++user_count_;
}

void IdTree::Erase(const UserId& u) {
  TMESH_CHECK(u.size() == depth_);
  TMESH_CHECK_MSG(nodes_.count(u) > 0, "erasing absent user ID");
  for (int len = depth_; len >= 0; --len) {
    DigitString p = u.Prefix(len);
    auto it = nodes_.find(p);
    TMESH_CHECK(it != nodes_.end());
    Node& node = it->second;
    node.users.erase(std::find(node.users.begin(), node.users.end(), u));
    if (len < depth_) {
      // Drop the child digit if that child subtree just vanished.
      if (nodes_.count(p.Child(u.digit(len))) == 0) {
        node.child_digits.erase(u.digit(len));
      }
    }
    if (node.users.empty()) nodes_.erase(it);
  }
  --user_count_;
}

std::vector<UserId> IdTree::UsersWithPrefix(const DigitString& prefix) const {
  auto it = nodes_.find(prefix);
  if (it == nodes_.end()) return {};
  return it->second.users;
}

int IdTree::CountWithPrefix(const DigitString& prefix) const {
  auto it = nodes_.find(prefix);
  return it == nodes_.end() ? 0 : static_cast<int>(it->second.users.size());
}

const std::set<int>& IdTree::ChildDigits(const DigitString& prefix) const {
  auto it = nodes_.find(prefix);
  return it == nodes_.end() ? kEmptyDigits : it->second.child_digits;
}

}  // namespace tmesh
