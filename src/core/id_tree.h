// The ID tree (Definitions 1 and 2 of the paper).
//
// "Note that an ID tree is not a data structure maintained by the key server
// or any user. It is defined as a conceptual structure to guide us in
// protocol design." — we materialize it anyway as a queryable index: the
// Directory uses it to maintain K-consistent neighbor tables and the key
// server uses it for unique-ID assignment; the tests use it to state the
// paper's definitions directly.
//
// A node exists at level i (ID = an i-digit string) iff some user's ID has
// that string as a prefix. Users are the leaves (level D).
//
// Each node keeps its users in a vector whose order is the *canonical
// candidate order* of that prefix bucket: insertion order, perturbed by
// swap-erase on departures. The indexed Directory admission path and its
// scan-reference twin both draw bounded candidate windows from this shared
// order, which is what makes their neighbor tables byte-identical.
#pragma once

#include <array>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/digit_string.h"

namespace tmesh {

class IdTree {
 public:
  IdTree(int depth, int base) : depth_(depth), base_(base) {
    TMESH_CHECK(depth >= 1 && depth <= kMaxDigits);
    TMESH_CHECK(base >= 2 && base <= kMaxBase);
  }

  int depth() const { return depth_; }
  int base() const { return base_; }

  void Insert(const UserId& u);
  void Erase(const UserId& u);
  bool ContainsUser(const UserId& u) const {
    return u.size() == depth_ && nodes_.count(u) > 0;
  }
  bool NodeExists(const DigitString& prefix) const {
    return nodes_.count(prefix) > 0;
  }
  int user_count() const { return user_count_; }
  int node_count() const { return static_cast<int>(nodes_.size()); }

  // All users belonging to the ID subtree rooted at `prefix` (Definition 1:
  // users whose IDs have that prefix).
  std::vector<UserId> UsersWithPrefix(const DigitString& prefix) const;
  // Same set, by reference (canonical candidate order, no copy). The
  // reference is invalidated by the next Insert/Erase.
  const std::vector<UserId>& UsersRef(const DigitString& prefix) const;
  int CountWithPrefix(const DigitString& prefix) const;

  // The digits j such that prefix+j is a node (the children of `prefix`).
  const std::set<int>& ChildDigits(const DigitString& prefix) const;

  // Definition 2: the users in u's (i,j)-ID subtree — those sharing the
  // first i digits with u and whose i-th digit is j. Valid for any j,
  // including j == u.ID[i] (then the subtree contains u itself).
  std::vector<UserId> UsersInSubtree(const UserId& u, int i, int j) const {
    TMESH_CHECK(i >= 0 && i < depth_);
    return UsersWithPrefix(u.Prefix(i).Child(j));
  }

 private:
  struct Node {
    std::set<int> child_digits;
    std::vector<UserId> users;  // users under this prefix, canonical order
  };
  int depth_;
  int base_;
  int user_count_ = 0;
  std::unordered_map<DigitString, Node> nodes_;
  // Where each user sits in the user vector of its level-len prefix node,
  // making Erase O(depth) swap-erases instead of an O(m) find per level.
  std::unordered_map<UserId, std::array<std::int32_t, kMaxDigits + 1>> pos_;
  static const std::set<int> kEmptyDigits;
  static const std::vector<UserId> kNoUsers;
};

}  // namespace tmesh
