// Neighbor tables (§2.2) supporting hypercube routing.
//
// A user's table has D rows of B entries. The (i,j)-entry holds up to K
// records of users from the owner's (i,j)-ID subtree, "arranged in
// increasing order of their RTTs"; the first record of an entry is that
// entry's *primary neighbor*. The key server's table is a single row of B
// entries (its ID is the null string).
//
// Entries are stored sparsely (digit -> entry maps per row): with B = 256
// and realistic group sizes, almost all entries are empty.
#pragma once

#include <map>
#include <vector>

#include "common/digit_string.h"
#include "sim/simulator.h"
#include "topology/network.h"

namespace tmesh {

// What a user record carries (§2.2: "IP address, ID, and some other
// information"; Appendix B adds the joining time).
struct NeighborRecord {
  UserId id;
  HostId host = kNoHost;
  double rtt_ms = 0.0;  // RTT between the table owner and this neighbor
  SimTime join_time = 0;
};

class NeighborTable {
 public:
  // `rows` is D for a user table, 1 for the key server's table.
  NeighborTable(int rows, int base, int capacity)
      : base_(base), capacity_(capacity), rows_(static_cast<std::size_t>(rows)) {
    TMESH_CHECK(rows >= 1 && base >= 2 && capacity >= 1);
  }

  int rows() const { return static_cast<int>(rows_.size()); }
  int base() const { return base_; }
  int capacity() const { return capacity_; }

  using Entry = std::vector<NeighborRecord>;  // ascending rtt_ms

  // Null if the (row, digit) entry is empty.
  const Entry* entry(int row, int digit) const {
    const auto& r = rows_[CheckedRow(row, digit)];
    auto it = r.find(digit);
    return it == r.end() ? nullptr : &it->second;
  }

  // All non-empty entries of a row, keyed by digit.
  const std::map<int, Entry>& row(int i) const {
    TMESH_CHECK(i >= 0 && i < rows());
    return rows_[static_cast<std::size_t>(i)];
  }

  // Inserts a record keeping ascending-RTT order; evicts the worst record if
  // the entry exceeds capacity. Returns false if the record was not retained
  // (entry full of closer neighbors) — still K-consistent, since the entry
  // then holds K records from the right subtree.
  bool Insert(int row, int digit, const NeighborRecord& rec);

  // Removes the record with this user ID if present; returns true if removed.
  bool Remove(int row, int digit, const UserId& id);

  bool ContainsNeighbor(int row, int digit, const UserId& id) const;

  // Total records across all entries.
  int TotalRecords() const;

 private:
  std::size_t CheckedRow(int row, int digit) const {
    TMESH_CHECK(row >= 0 && row < rows());
    TMESH_CHECK(digit >= 0 && digit < base_);
    return static_cast<std::size_t>(row);
  }

  int base_;
  int capacity_;
  std::vector<std::map<int, Entry>> rows_;
};

}  // namespace tmesh
