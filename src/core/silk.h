// SilkGroup: message-driven neighbor-table construction and update — a
// simplified version of the Silk join/leave protocols [15, 12] the paper's
// §3.2 builds on.
//
// Where the Directory is the centralized oracle (what the paper's own
// simulator used), SilkGroup maintains the tables purely through protocol
// messages exchanged over the discrete-event simulator:
//
//   Join (u, with an already-assigned ID):
//     1. Row copying — u walks a gateway chain g_0, g_1, ... where g_i
//        shares at least i digits with u (each g_i is found in g_{i-1}'s
//        response): u requests each gateway's table and absorbs every
//        record (plus the gateway's own). Because g_i's row i holds
//        min(K, m) members of each of u's (i, j)-ID subtrees, the absorbed
//        candidate set suffices to build a K-consistent table for u.
//     2. Table build — u measures RTTs to its candidates and fills each
//        (i, j)-entry with up to K closest members of that subtree.
//     3. Announcement — u multicasts its user record over its *own* fresh
//        table (routine FORWARD); by Theorem 1 the announcement reaches
//        every member exactly once, and each member inserts u into the one
//        entry u belongs to. The key server is notified directly.
//
//   Leave (u):
//     u multicasts a leave notice carrying its own table's records as
//     replacement candidates; each member removes u and refills the shrunk
//     entry from the carried candidates (u's table holds at least one
//     member of every non-empty subtree u belongs to, so 1-consistency
//     survives). The key server refills its entry the same way.
//
// Guarantees (as proved for Silk and checked by the tests):
//   - after an arbitrary sequence of joins with reliable delivery and no
//     leaves, all tables are K-consistent (Definition 3);
//   - with interleaved leaves, tables remain 1-consistent (every non-empty
//     entry keeps at least one live member), which is what Theorem 1 needs.
//
// Operations are sequential: each Join/Leave schedules its messages and the
// caller drains the simulator before issuing the next operation (the same
// serialization the paper applies to NICE joins).
#pragma once

#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/digit_string.h"
#include "core/group_view.h"
#include "metrics/registry.h"
#include "transport/transport.h"

namespace tmesh {

class SilkGroup : public GroupView {
 public:
  // Environment config, mirroring KeyServer::Config so all three protocol
  // classes share the {Transport&, Config} init shape.
  struct Config {
    const Network* net = nullptr;  // required
    GroupParams group;
    HostId server_host = 0;
  };

  // The protocol speaks only to the Transport seam (DESIGN.md §3h): every
  // Silk message is a timed closure delayed by the topology's one-way
  // latency.
  SilkGroup(Transport& transport, const Config& config);

  // --- GroupView --------------------------------------------------------
  const GroupParams& params() const override { return params_; }
  HostId server_host() const override { return server_host_; }
  const Network& network() const override { return net_; }
  bool Contains(const UserId& id) const override {
    return members_.count(id) > 0;
  }
  bool IsAlive(const UserId& id) const override { return Contains(id); }
  HostId HostOf(const UserId& id) const override;
  const NeighborTable& TableOf(const UserId& id) const override;
  const NeighborTable& ServerTable() const override { return server_table_; }

  // --- protocol operations ----------------------------------------------
  // Schedules the join protocol for (id, host); `contact` is the record the
  // key server hands out (ignored for the first member). Drain the
  // simulator to complete the operation before the next one.
  void Join(const UserId& id, HostId host, SimTime join_time);
  void Leave(UserId id);

  int member_count() const { return static_cast<int>(members_.size()); }

  // Cumulative protocol cost.
  struct Stats {
    std::int64_t messages = 0;    // protocol messages sent
    std::int64_t rtt_probes = 0;  // RTT measurements by joiners
    // Recovery actions: RecoverEntry invocations (a leave notice emptied an
    // entry with no live replacement) plus maintenance-sweep entry refills.
    std::int64_t entry_recoveries = 0;
  };
  const Stats& stats() const { return stats_; }

  // Adds the cumulative stats into `reg` under "silk.". Call once per run.
  void ExportMetrics(MetricsRegistry& reg) const {
    reg.GetCounter("silk.messages")->Add(stats_.messages);
    reg.GetCounter("silk.rtt_probes")->Add(stats_.rtt_probes);
    reg.GetCounter("silk.entry_recoveries")->Add(stats_.entry_recoveries);
  }

  // Verifies Definition 3 at the given strength: `capacity` = K checks full
  // K-consistency; 1 checks 1-consistency (entries non-empty whenever their
  // subtree is). Throws on violation.
  void CheckConsistency(int strength) const;

  // One synchronous soft-state maintenance sweep — the model of Silk's
  // periodic neighbor heartbeats, which are what repairs tables after
  // churn bursts beyond Definition 3's K-1 concurrent-departure tolerance
  // (leave floods can lose their only route into a subtree then).
  //   1. Probe: every member pings each record in its table; dead
  //      neighbors are scrubbed (the timeout), live ones learn the prober
  //      is alive and record it if the matching entry has room.
  //   2. Repair: entries left without a single record query the neighbors
  //      that keep a parallel entry for the same subtree.
  // All probes/queries are charged to stats().messages. Returns true if
  // any table changed; callers iterate to a fixpoint (insertions never
  // evict, so the sweep is monotone and terminates).
  bool RunMaintenance();

 private:
  struct Member {
    UserId id;
    HostId host = kNoHost;
    SimTime join_time = 0;
    NeighborTable table;
    Member(const UserId& u, HostId h, SimTime t, int rows, int base, int cap)
        : id(u), host(h), join_time(t), table(rows, base, cap) {}
  };

  NeighborRecord RecordOf(const Member& m, HostId owner) const;
  Member& MemberRef(const UserId& id);
  // Delivers `rec`'s insertion at member w (one protocol message).
  void AcceptAnnouncement(const UserId& w, const NeighborRecord& rec);
  // Delivers u's leave notice with replacement candidates at member w.
  void AcceptLeave(const UserId& w, const UserId& gone,
                   const std::vector<NeighborRecord>& candidates);
  // Repairs w's emptied (cpl, digit)-entry by querying live neighbors that
  // share at least cpl digits with w — each keeps its own entry for the
  // same ID subtree. Runs when a leave notice removes the entry's last
  // record and its carried candidates are all dead.
  void RecoverEntry(const UserId& w, int cpl, int digit);
  // FORWARD-based flood of a closure over the current tables, starting at
  // `origin` (which must be a member); fn runs at each *other* member upon
  // delivery. Returns immediately; effects land as simulator events.
  void Broadcast(const UserId& origin,
                 std::function<void(const UserId& at)> fn);
  // Messages between two hosts take one-way network latency. Templated so
  // the closure lands directly in the runtime's pooled event record
  // (usually inline) instead of being wrapped in a std::function first.
  template <class Fn>
  void Message(HostId from, HostId to, Fn&& fn) {
    ++stats_.messages;
    transport_.ScheduleIn(FromMillis(net_.OneWayDelayMs(from, to)),
                          std::forward<Fn>(fn));
  }

  const Network& net_;
  GroupParams params_;
  HostId server_host_;
  Transport& transport_;
  std::map<UserId, Member> members_;
  std::unordered_map<HostId, UserId> host_index_;
  NeighborTable server_table_;
  Stats stats_;
};

}  // namespace tmesh
