#include "core/id_assignment.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/stats.h"

namespace tmesh {

IdAssigner::IdAssigner(Directory& directory, IdAssignParams params,
                       std::uint64_t seed)
    : dir_(directory), params_(std::move(params)), rng_(seed) {
  TMESH_CHECK_MSG(static_cast<int>(params_.thresholds_ms.size()) ==
                      dir_.params().digits - 1,
                  "need exactly D-1 delay thresholds R_1..R_{D-1}");
  TMESH_CHECK(params_.collect_target >= 1);
}

double IdAssigner::GatewayRtt(HostId a, HostId b) const {
  return params_.gnp != nullptr ? params_.gnp->EstimatedRtt(a, b)
                                : dir_.network().RttGateways(a, b);
}

std::optional<UserId> IdAssigner::ServerAssignTail(const DigitString& prefix,
                                                   int from_pos) {
  const int d = dir_.params().digits;
  const int b = dir_.params().base;
  TMESH_CHECK(prefix.size() == from_pos);
  if (from_pos == d) {
    // A complete ID: unique iff no user occupies it.
    if (dir_.id_tree().CountWithPrefix(prefix) == 0) return prefix;
    return std::nullopt;
  }

  const std::set<int>& used = dir_.id_tree().ChildDigits(prefix);
  // Prefer a fresh (unused) digit: the new subtree is empty, so the rest of
  // the ID can be all zeros (§3.1.4: the user becomes "a user in a new
  // level-(l+1) subtree to which none of the other users belong").
  if (static_cast<int>(used.size()) < b) {
    int pick;
    do {
      pick = static_cast<int>(rng_.UniformInt(0, b - 1));
    } while (used.count(pick) > 0);
    DigitString id = prefix.Child(pick);
    while (id.size() < d) id.Append(0);
    return id;
  }
  // Every digit occupied: descend into subtrees, least populated first, and
  // backtrack on failure.
  std::vector<int> order(used.begin(), used.end());
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    int cx = dir_.id_tree().CountWithPrefix(prefix.Child(x));
    int cy = dir_.id_tree().CountWithPrefix(prefix.Child(y));
    if (cx != cy) return cx < cy;
    return x < y;
  });
  for (int digit : order) {
    auto id = ServerAssignTail(prefix.Child(digit), from_pos + 1);
    if (id.has_value()) return id;
  }
  return std::nullopt;
}

std::optional<UserId> IdAssigner::ServerAssignLastDigit(
    const DigitString& prefix) {
  const int d = dir_.params().digits;
  TMESH_CHECK(prefix.size() == d - 1);
  // Normal case: a free last digit within the user's level-(D-1) subtree.
  auto id = ServerAssignTail(prefix, d - 1);
  if (id.has_value()) return id;
  // Footnote 3: the subtree is full; try modifying ever-earlier digits to
  // make a unique ID, falling back to a brand-new level-1 subtree (and,
  // beyond the footnote, to a full backtracking search so we only report
  // failure when the ID space is truly exhausted).
  for (int l = d - 2; l >= 0; --l) {
    id = ServerAssignTail(prefix.Prefix(l), l);
    if (id.has_value()) return id;
  }
  return std::nullopt;
}

std::optional<UserId> IdAssigner::AssignId(HostId joiner,
                                           IdAssignStats* stats) {
  IdAssignStats local;
  IdAssignStats& st = stats != nullptr ? *stats : local;
  st = IdAssignStats{};

  const int d = dir_.params().digits;

  // First join: all zeros (§3.1).
  if (dir_.alive_count() == 0) {
    DigitString id;
    while (id.size() < d) id.Append(0);
    if (dir_.id_tree().CountWithPrefix(id) == 0) return id;
    return ServerAssignTail(DigitString{}, 0);
  }

  // The key server hands the joiner the record of one existing user.
  std::optional<UserId> contact = dir_.RandomAliveMember(rng_);
  TMESH_CHECK(contact.has_value());

  DigitString my_prefix;  // digits determined so far
  // Users known to belong to the current prefix's subtree (seeds for the
  // next level's queries). Initially just the contact (prefix is null, so
  // everyone qualifies).
  std::vector<NeighborRecord> seeds;
  {
    const MemberInfo& c = dir_.Info(*contact);
    NeighborRecord rec;
    rec.id = c.id;
    rec.host = c.host;
    rec.join_time = c.join_time;
    seeds.push_back(rec);
  }

  for (int i = 0; i <= d - 2; ++i) {
    // ---- Step 1: collect up to P records per (i,j)-ID subtree. ----------
    // collected[j] holds users whose IDs extend my_prefix with digit j.
    std::map<int, std::vector<NeighborRecord>> collected;
    std::unordered_set<DigitString> seen;
    std::unordered_set<DigitString> queried;

    auto admit = [&](const NeighborRecord& rec) {
      if (!my_prefix.IsPrefixOf(rec.id)) return;
      if (!dir_.IsAlive(rec.id)) return;
      auto& bucket = collected[rec.id.digit(i)];
      // The joiner only needs P users per subtree (§3.1.1) — extra records
      // would just cost extra RTT probes in step 2.
      if (static_cast<int>(bucket.size()) >= params_.collect_target) return;
      if (!seen.insert(rec.id).second) return;
      bucket.push_back(rec);
    };
    for (const NeighborRecord& s : seeds) admit(s);

    // Keep querying: per subtree j, query collected-but-unqueried users
    // until P records are in hand for j or everyone collected from j has
    // been queried (§3.1.1).
    bool progress = true;
    while (progress) {
      progress = false;
      for (auto& [j, recs] : collected) {
        if (static_cast<int>(recs.size()) >= params_.collect_target) continue;
        // Find an unqueried user collected from this subtree.
        NeighborRecord target;
        bool found = false;
        for (const NeighborRecord& rec : recs) {
          if (queried.count(rec.id) == 0) {
            target = rec;
            found = true;
            break;
          }
        }
        if (!found) continue;
        queried.insert(target.id);
        ++st.queries;
        for (const NeighborRecord& rec :
             dir_.QueryRecords(target.id, my_prefix)) {
          admit(rec);
        }
        progress = true;
        break;  // re-scan: the reply may have filled several subtrees
      }
    }

    if (collected.empty()) {
      // Nobody in this subtree (can happen when the seed users left):
      // fall through to the key server.
      st.server_assigned_tail = true;
      return ServerAssignTail(my_prefix, i);
    }

    // ---- Steps 2+3: measure gateway RTTs, pick the closest subtree. -----
    int best_digit = -1;
    double best_f = 0.0;
    for (auto& [j, recs] : collected) {
      std::vector<double> rtts;
      rtts.reserve(recs.size());
      for (const NeighborRecord& rec : recs) {
        rtts.push_back(GatewayRtt(joiner, rec.host));
        if (params_.gnp == nullptr) ++st.rtt_probes;
      }
      double f = Percentile(std::move(rtts), params_.percentile);
      if (best_digit == -1 || f < best_f ||
          (f == best_f && j < best_digit)) {
        best_digit = j;
        best_f = f;
      }
    }

    if (best_f <= params_.thresholds_ms[static_cast<std::size_t>(i)]) {
      // Close enough: adopt the digit and descend (§3.1.3 case 1).
      my_prefix.Append(best_digit);
      ++st.digits_self_determined;
      seeds = collected[best_digit];
      continue;
    }
    // Not close to anyone (§3.1.3 case 2): the key server assigns the rest.
    st.server_assigned_tail = true;
    return ServerAssignTail(my_prefix, i);
  }

  // ---- Step 4: the key server assigns the last digit. -------------------
  return ServerAssignLastDigit(my_prefix);
}

std::optional<UserId> IdAssigner::AssignIdCentralized(HostId joiner,
                                                      IdAssignStats* stats) {
  IdAssignStats local;
  IdAssignStats& st = stats != nullptr ? *stats : local;
  st = IdAssignStats{};

  const int d = dir_.params().digits;
  if (dir_.alive_count() == 0) {
    DigitString id;
    while (id.size() < d) id.Append(0);
    if (dir_.id_tree().CountWithPrefix(id) == 0) return id;
    return ServerAssignTail(DigitString{}, 0);
  }

  DigitString my_prefix;
  for (int i = 0; i <= d - 2; ++i) {
    int best_digit = -1;
    double best_f = 0.0;
    for (int j : dir_.id_tree().ChildDigits(my_prefix)) {
      std::vector<double> rtts;
      for (const UserId& w : dir_.id_tree().UsersWithPrefix(
               my_prefix.Child(j))) {
        if (!dir_.IsAlive(w)) continue;
        rtts.push_back(GatewayRtt(joiner, dir_.HostOf(w)));
      }
      if (rtts.empty()) continue;
      double f = Percentile(std::move(rtts), params_.percentile);
      if (best_digit == -1 || f < best_f || (f == best_f && j < best_digit)) {
        best_digit = j;
        best_f = f;
      }
    }
    if (best_digit != -1 &&
        best_f <= params_.thresholds_ms[static_cast<std::size_t>(i)]) {
      my_prefix.Append(best_digit);
      ++st.digits_self_determined;
      continue;
    }
    st.server_assigned_tail = true;
    return ServerAssignTail(my_prefix, i);
  }
  return ServerAssignLastDigit(my_prefix);
}

}  // namespace tmesh
