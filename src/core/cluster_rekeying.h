// The cluster rekeying heuristic (§4.2 and Appendix B).
//
// All users of the same level-(D-1) ID subtree form a *bottom cluster*; the
// member with the earliest joining time is its *leader*. Only leaders hold
// the full root path of keys — the key tree effectively contains one u-node
// per cluster (the leader's). A non-leader holds just three keys: the group
// key, its individual key, and a pairwise key shared with its leader.
//
// Consequences the paper exploits:
//   - a non-leader's join or leave incurs NO group rekeying;
//   - a leader's join (first user of a new cluster) or leave (with
//     leadership handover to the earliest remaining member) rekeys the
//     leader tree's changed path;
//   - during rekey multicast, the message stops at cluster granularity and
//     each leader unicasts the new group key — one encryption under each
//     member's pairwise key (the TMesh transport implements that last hop;
//     this class tracks clusters, leaders and the leader key tree).
#pragma once

#include <unordered_map>
#include <vector>

#include "common/digit_string.h"
#include "core/modified_key_tree.h"
#include "sim/simulator.h"

namespace tmesh {

// Portable cluster state for key-server replication (DESIGN.md §3g). The
// leader of each cluster is recoverable from the leader tree (it holds
// exactly the leaders' u-nodes), so members + leader-tree state suffice.
struct ClusterRekeyingState {
  std::vector<std::pair<UserId, SimTime>> members;  // id -> join time, sorted
  ModifiedKeyTreeState leader_tree;
};

class ClusterRekeying {
 public:
  explicit ClusterRekeying(int depth);

  // Mirrors group membership. Join/Leave return true iff the event touches
  // a leader (and therefore incurs group rekeying).
  bool Join(const UserId& u, SimTime join_time);
  bool Leave(UserId u);

  // Rekey message over the leader key tree for the interval's accumulated
  // leader changes.
  RekeyMessage Rekey() { return leader_tree_.Rekey(); }

  // Drops the pending leader-tree batch without renewing keys; the key
  // server calls this every interval the cluster scheme is not the one
  // being distributed.
  void DiscardPending() { leader_tree_.DiscardPending(); }

  // Re-stamps a leader-tree key for the next rekey (failover after a
  // mid-batch crash; see ModifiedKeyTree::MarkPending).
  void MarkLeaderKeyPending(const KeyId& id) { leader_tree_.MarkPending(id); }

  // State transfer for replication; Install() requires a freshly
  // constructed instance of the same depth.
  ClusterRekeyingState Snapshot() const;
  void Install(const ClusterRekeyingState& state);

  bool IsLeader(const UserId& u) const;
  // The leader of u's bottom cluster.
  UserId LeaderOf(const UserId& u) const;
  // All members of the cluster identified by a level-(D-1) prefix.
  std::vector<UserId> ClusterMembers(const DigitString& cluster) const;
  // All members of u's cluster other than u itself.
  std::vector<UserId> PeersOf(const UserId& u) const;

  int cluster_count() const { return static_cast<int>(clusters_.size()); }
  int member_count() const { return member_count_; }
  const ModifiedKeyTree& leader_tree() const { return leader_tree_; }

  void CheckInvariants() const;

 private:
  struct Member {
    UserId id;
    SimTime join_time;
  };
  struct Cluster {
    std::vector<Member> members;  // unsorted; leader tracked by index
    std::size_t leader = 0;
  };

  DigitString ClusterOf(const UserId& u) const {
    TMESH_CHECK(u.size() == depth_);
    return u.Prefix(depth_ - 1);
  }

  int depth_;
  int member_count_ = 0;
  ModifiedKeyTree leader_tree_;
  std::unordered_map<DigitString, Cluster> clusters_;
};

}  // namespace tmesh
