// The modified key tree (§2.4): a key tree whose structure matches the ID
// tree exactly.
//
// "Our modified key tree has a fixed height, and it grows in a horizontal
// direction when users join." Every k-node is an ID-tree node (its key's ID
// is the node's ID); every u-node is a user (its ID is the user's ID). A
// user holds its individual key plus the keys of the k-nodes on the path
// from its u-node to the root — i.e. the keys whose IDs are prefixes of its
// user ID, which is what makes Lemma 3 ("a user needs the key in an
// encryption iff the encryption's ID is a prefix of the user's ID") hold by
// construction.
//
// Batch rekeying (§2.4): joins/leaves accumulate during a rekey interval
// (Join/Leave mutate the structure immediately and record the changed
// paths); Rekey() then renews every k-node key on a changed path and emits,
// per updated k-node, one encryption per child — the new key encrypted
// under the child's key (the child's *new* key if the child was updated
// too). The encryption's ID is the encrypting child's ID.
//
// Flat layout (million-user scale). Nodes are compact records in one pool
// (child digits as a 256-bit bitmap, no per-node set/vector), addressed
// through a single id → slot index. Join/Leave stamp the touched k-nodes
// into a dirty list as they go, so Rekey() streams over exactly the
// affected nodes — no per-interval changed-leaf prefix probing, no
// materialized update set — and costs O(affected · depth), independent of
// the population.
//
// Sharded rekeying: Rekey(shards) with shards > 1 partitions the updated
// k-nodes by their level-1 digit and renews the buckets on worker threads.
// Buckets are vertex-disjoint subtrees (every descendant of [d] shares the
// digit), each thread only writes versions inside its own buckets, and
// child-version reads stay bucket-local (u-node versions are frozen during
// an interval); the root is renewed after the join barrier since it reads
// all level-1 keys. Bucket outputs are concatenated per (level desc, digit
// asc) segment, which equals the serial (size desc, lex asc) sort — the
// message is byte-identical to Rekey(1) and to the retained
// SeedModifiedKeyTree (pinned by tests/keytree_differential_test.cc).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/digit_string.h"
#include "keytree/rekey_types.h"

namespace tmesh {

// Portable key-tree state for key-server replication (DESIGN.md §3g): the
// exact node versions, the retired-version ledger, and the pending batch.
// Everything else (child bitmaps, counters, slot layout) is derivable from
// the node set, so Install() reconstructs it.
struct ModifiedKeyTreeState {
  // Every live node (k-nodes and u-nodes), sorted by (size, lex) so slot
  // assignment on install is deterministic.
  std::vector<std::pair<DigitString, std::uint32_t>> nodes;  // id -> version
  std::vector<DigitString> dirty;    // k-nodes stamped for the next rekey
  std::vector<UserId> changed;       // pending changed leaves, sorted
  std::vector<std::pair<DigitString, std::uint32_t>> retired;  // sorted
};

class ModifiedKeyTree {
 public:
  explicit ModifiedKeyTree(int depth);

  int depth() const { return depth_; }
  int user_count() const { return user_count_; }
  bool Contains(const UserId& u) const {
    return u.size() == depth_ && Find(u) != -1;
  }

  // Adds the u-node for `u` (and any missing k-nodes on its path); the
  // change is remembered for the next Rekey().
  void Join(const UserId& u);

  // Removes the u-node (pruning k-nodes left childless); remembered for the
  // next Rekey().
  void Leave(UserId u);

  // Ends the rekey interval: renews keys on all changed paths, emits the
  // rekey message, clears the pending-change set. `shards` > 1 renews the
  // level-1 subtrees on that many worker threads; the message is identical
  // for every shard count.
  RekeyMessage Rekey(int shards = 1);

  // Drops the pending batch without renewing any key: clears the dirty
  // stamps and the changed-leaf set, leaving structure and versions as they
  // are. The key server calls this on the scheme whose message it does NOT
  // distribute, so the inactive tree never does (or accumulates) rekey work.
  void DiscardPending();

  // Re-stamps an existing k-node for the next rekey. Used on failover after
  // a mid-batch crash: key versions the dead server renewed but never
  // distributed are burned, and the successor must issue fresh ones on the
  // same paths (DESIGN.md §3g). No-op if the node has been pruned since.
  void MarkPending(const KeyId& id);

  // State transfer for replication. Install() requires a freshly
  // constructed tree of the same depth and reproduces the source exactly:
  // versions, retired ledger, pending batch, and therefore every future
  // rekey message byte-for-byte.
  ModifiedKeyTreeState Snapshot() const;
  void Install(const ModifiedKeyTreeState& state);

  // Number of pending changed paths (joined or departed user IDs).
  int pending_changes() const { return static_cast<int>(changed_.size()); }

  // The IDs of the keys user u currently holds, shortest first: the group
  // key "[]", the auxiliary keys u.ID[0:0..D-2], and its individual key
  // (ID = u.ID). Requires membership.
  std::vector<KeyId> KeysOf(const UserId& u) const;

  // Current version of a key; 0 if the node does not exist.
  std::uint32_t KeyVersion(const KeyId& id) const;

  int knode_count() const { return knode_count_; }  // levels 0..D-1, O(1)

  // Structural check: node set is prefix-closed, child bitmaps consistent,
  // u-nodes exactly at level D, counters exact.
  void CheckInvariants() const;

 private:
  static constexpr int kChildWords = kMaxBase / 64;

  struct Node {
    KeyId id;
    std::uint32_t version = 1;
    std::uint32_t dirty_epoch = 0;  // 0 = clean
    std::int32_t child_count = 0;
    std::uint64_t child_bits[kChildWords] = {};  // next digits (k-nodes)
    bool in_use = false;

    bool HasChild(int d) const {
      return (child_bits[d >> 6] >> (d & 63)) & 1u;
    }
    void SetChild(int d) {
      std::uint64_t& w = child_bits[d >> 6];
      std::uint64_t bit = std::uint64_t{1} << (d & 63);
      if (!(w & bit)) {
        w |= bit;
        ++child_count;
      }
    }
    void ClearChild(int d) {
      std::uint64_t& w = child_bits[d >> 6];
      std::uint64_t bit = std::uint64_t{1} << (d & 63);
      if (w & bit) {
        w &= ~bit;
        --child_count;
      }
    }
  };

  std::int32_t Find(const DigitString& id) const {
    auto it = index_.find(id);
    return it == index_.end() ? -1 : it->second;
  }
  std::int32_t NewNode(const DigitString& id);
  void FreeNode(std::int32_t slot);
  void MarkDirty(std::int32_t slot);
  // Renews one node's key and appends its encryptions to `out`. Touches
  // only the node's record plus its children's versions (read-only).
  void EmitNode(std::int32_t slot, std::vector<Encryption>& out);

  int depth_;
  int user_count_ = 0;
  int knode_count_ = 0;
  std::vector<Node> pool_;
  std::vector<std::int32_t> free_slots_;
  std::unordered_map<DigitString, std::int32_t> index_;  // levels 0..D
  // K-nodes touched this interval, stamped with epoch_ (streamed at Rekey;
  // stale entries for since-pruned slots are filtered by the stamp).
  std::vector<std::int32_t> dirty_;
  std::uint32_t epoch_ = 1;
  std::unordered_set<UserId> changed_;  // changed leaf IDs (pending count)
  // Last version of every pruned node: re-created nodes resume one past it,
  // so no (key ID, version) pair is ever issued twice — a departed member
  // holding the old keys must not be able to decrypt a later chain.
  std::unordered_map<DigitString, std::uint32_t> retired_versions_;
};

}  // namespace tmesh
