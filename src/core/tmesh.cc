#include "core/tmesh.h"

#include <algorithm>
#include <unordered_set>

#include "core/wire.h"

namespace tmesh {

// One multicast session: owns the result, the loss-model RNG, and the
// immutable per-session options. Heap-allocated so concurrent sessions can
// coexist and so scheduled events can safely reference it through the
// Handle that keeps it alive.
struct TMesh::Handle::Session {
  const RekeyMessage* msg = nullptr;
  Options opts;
  HostId source_host = kNoHost;
  bool is_rekey = false;
  Result result;
  Rng loss_rng{1};
  // Exact wire.cc size of each encryption in `msg`, indexed like
  // msg->encryptions; summed per packet by the uplink model.
  std::vector<std::uint32_t> enc_bytes;
  // Size of the Appendix-B group-key unicast's single encryption (group
  // key under the receiver's D-digit individual key).
  std::uint32_t group_key_enc_bytes = 0;
  // Groups this session's trace spans (the chrome-trace pid).
  std::int64_t trace_id = 0;
  // Per-lane transmission counts (multi-lane transports only): worker lanes
  // cannot share the plain-int result counter, so each lane accumulates its
  // own and FoldLaneCounts() sums them — a thread-count-invariant total —
  // before the result is observed.
  std::vector<std::int64_t> lane_messages_sent;

  void FoldLaneCounts() {
    for (std::int64_t& n : lane_messages_sent) {
      result.messages_sent += static_cast<int>(n);
      n = 0;
    }
  }
};

TMesh::Handle::Handle(std::unique_ptr<Session> s) : session_(std::move(s)) {}
TMesh::Handle::Handle(Handle&&) noexcept = default;
TMesh::Handle& TMesh::Handle::operator=(Handle&&) noexcept = default;
TMesh::Handle::~Handle() = default;

const TMesh::Result& TMesh::Handle::result() const {
  TMESH_CHECK(session_ != nullptr);
  session_->FoldLaneCounts();
  return session_->result;
}

TMesh::Result TMesh::Handle::TakeResult() {
  TMESH_CHECK(session_ != nullptr);
  session_->FoldLaneCounts();
  return std::move(session_->result);
}

void TMesh::SetUplinkModel(const UplinkModel& model) {
  TMESH_CHECK(model.kbps >= 0.0);
  uplink_ = model;
  uplink_free_.assign(static_cast<std::size_t>(dir_.network().host_count()),
                      0);
}

void TMesh::SetMetrics(MetricsRegistry* metrics) {
  registry_ = metrics;
  if (metrics == nullptr) {
    metrics_ = MetricHandles{};
    metric_uplink_bytes_.clear();
    return;
  }
  metrics_.messages_sent = metrics->GetCounter("tmesh.messages_sent");
  metrics_.messages_lost = metrics->GetCounter("tmesh.messages_lost");
  metrics_.retries = metrics->GetCounter("tmesh.retries");
  metrics_.deliveries_failed = metrics->GetCounter("tmesh.deliveries_failed");
  metrics_.forwards = metrics->GetCounter("tmesh.forwards");
  metrics_.deliveries = metrics->GetCounter("tmesh.deliveries");
  metrics_.encs_sent = metrics->GetCounter("tmesh.encs_sent");
  metrics_.split_messages = metrics->GetCounter("tmesh.split_messages");
  metrics_.uplink_bytes = metrics->GetCounter("tmesh.uplink_bytes");
  metrics_.sessions = metrics->GetCounter("tmesh.sessions");
  metric_uplink_bytes_.assign(
      static_cast<std::size_t>(dir_.network().host_count()), 0.0);
}

void TMesh::FlushMetrics() {
  if (registry_ == nullptr) return;
  // Fold the lanes' deferred counts (all zero on sequential transports,
  // where the hot path incremented the handles directly). Lane order does
  // not matter: counter addition commutes, so the folded registry is
  // identical at every worker count.
  for (Lane& lane : lanes_) {
    if (metrics_.messages_sent != nullptr) {
      metrics_.messages_sent->Add(lane.messages_sent);
      metrics_.forwards->Add(lane.forwards);
      metrics_.deliveries->Add(lane.deliveries);
      metrics_.encs_sent->Add(lane.encs_sent);
      metrics_.split_messages->Add(lane.split_messages);
      metrics_.uplink_bytes->Add(lane.uplink_bytes);
    }
    lane.messages_sent = lane.forwards = lane.deliveries = lane.encs_sent =
        lane.split_messages = lane.uplink_bytes = 0;
  }
  Histogram* per_host = registry_->GetHistogram("tmesh.uplink_bytes_per_host");
  for (double& bytes : metric_uplink_bytes_) {
    if (bytes > 0.0) per_host->Observe(bytes);
    bytes = 0.0;
  }
}

void TMesh::CandidatesOf(const NeighborTable::Entry& entry, int row,
                         bool cluster_mode, Lane& lane) {
  std::vector<UserId>& out = lane.cand;
  out.clear();
  if (cluster_mode && row == dir_.params().digits - 2) {
    // Footnote 8: at the (D-2)th row prefer the earliest joiner so that
    // cluster leaders receive rekey messages at forwarding level D-1.
    lane.live.clear();
    for (const NeighborRecord& rec : entry) {
      if (dir_.IsAlive(rec.id)) lane.live.push_back(&rec);
    }
    std::sort(lane.live.begin(), lane.live.end(),
              [](const NeighborRecord* a, const NeighborRecord* b) {
                if (a->join_time != b->join_time) {
                  return a->join_time < b->join_time;
                }
                return a->rtt_ms < b->rtt_ms;
              });
    for (const NeighborRecord* rec : lane.live) out.push_back(rec->id);
    return;
  }
  for (const NeighborRecord& rec : entry) {  // entries are RTT-sorted
    if (dir_.IsAlive(rec.id)) out.push_back(rec.id);
  }
}

void TMesh::SplitFor(const Session& s, const EncList& encs,
                     const DigitString& w_prefix, EncList& out) {
  auto passes = [&](std::int32_t idx) {
    const Encryption& e = s.msg->encryptions[static_cast<std::size_t>(idx)];
    return e.enc_key_id.IsPrefixOf(w_prefix) ||
           w_prefix.IsPrefixOf(e.enc_key_id);
  };
  out.clear();
  const int pkt = s.opts.split_packet_encs;
  if (pkt <= 1) {
    // Unit-of-encryption splitting (the paper's main scheme, Fig. 5).
    for (std::int32_t idx : encs) {
      if (passes(idx)) out.push_back(idx);
    }
    return;
  }
  // Packet-level splitting: a packet (consecutive indices of the original
  // message) travels whole if any of its encryptions is needed downstream.
  std::unordered_set<std::int32_t> keep_packets;
  for (std::int32_t idx : encs) {
    if (passes(idx)) keep_packets.insert(idx / pkt);
  }
  for (std::int32_t idx : encs) {
    if (keep_packets.count(idx / pkt) > 0) out.push_back(idx);
  }
}

TMesh::EncSnapshot TMesh::SplitSnapshot(Session& s, const EncSnapshot& parent,
                                        const DigitString& prefix,
                                        Lane& lane) {
  SplitFor(s, *parent, prefix, lane.split);
  // The filter keeps a subsequence, so equal size means identical contents:
  // share the parent snapshot instead of allocating a copy.
  if (lane.split.size() == parent->size()) return parent;
  if (metrics_.split_messages != nullptr) {
    if (parallel_) {
      ++lane.split_messages;
    } else {
      metrics_.split_messages->Increment();
    }
  }
  return std::make_shared<const EncList>(lane.split);
}

double TMesh::PacketBytes(const Session& s, const Packet& pkt) const {
  if (!pkt.is_rekey) return uplink_.data_bytes;
  double bytes = uplink_.header_bytes;
  if (pkt.group_key_unicast) return bytes + s.group_key_enc_bytes;
  if (pkt.encs != nullptr) {
    for (std::int32_t idx : *pkt.encs) {
      bytes += s.enc_bytes[static_cast<std::size_t>(idx)];
    }
  }
  return bytes;
}

std::pair<SimTime, SimTime> TMesh::OccupyUplink(HostId from, double bytes,
                                                Lane& lane) {
  if (metrics_.uplink_bytes != nullptr) {
    // PacketBytes sums integers, so the cast is exact. The per-host byte
    // array is lane-safe as-is: `from` is the executing event's affine
    // host, and one lane owns all of a partition's hosts.
    if (parallel_) {
      lane.uplink_bytes += static_cast<std::int64_t>(bytes);
    } else {
      metrics_.uplink_bytes->Add(static_cast<std::int64_t>(bytes));
    }
    metric_uplink_bytes_[static_cast<std::size_t>(from)] += bytes;
  }
  if (uplink_.kbps <= 0.0) return {transport_.Now(), 0};
  auto f = static_cast<std::size_t>(from);
  SimTime depart = std::max(transport_.Now(), uplink_free_[f]);
  SimTime tx = FromMillis(bytes * 8.0 / uplink_.kbps);
  uplink_free_[f] = depart + tx;
  return {depart, tx};
}

void TMesh::SendFirst(Session& s, const UserId* from, HostId from_host,
                      const std::vector<UserId>& candidates, Packet pkt,
                      Lane& lane) {
  // The caller just filtered `candidates` to live members; this first
  // attempt borrows the scratch buffer and only copies it on the (rare)
  // loss path, keeping the no-loss forwarding hot path allocation-free.
  if (candidates.empty() || s.opts.max_send_attempts <= 0) return;
  const UserId to = candidates.front();

  bool lost = s.opts.loss_prob > 0.0 && s.loss_rng.Bernoulli(s.opts.loss_prob);
  auto [depart, tx] = OccupyUplink(from_host, PacketBytes(s, pkt), lane);
  Transmit(s, from, from_host, to, pkt, lost, depart, tx, lane);

  if (lost) {
    // §2.3: after detecting the loss (an RTT-scaled timeout), forward to
    // another neighbor in the same table entry. The retry timer is affine
    // to the sender's host — it re-occupies that host's uplink.
    double rtt = dir_.network().RttHosts(from_host, dir_.HostOf(to));
    SimTime timeout =
        depart + tx + FromMillis(std::max(1.0, rtt * s.opts.retry_rtt_factor));
    Session* sp = &s;
    const UserId from_copy = from != nullptr ? *from : UserId{};
    const bool has_from = from != nullptr;
    transport_.ScheduleAtHost(
        from_host, timeout,
        [this, sp, has_from, from_copy, from_host,
         candidates = std::vector<UserId>(candidates),
         pkt = std::move(pkt)]() mutable {
          RetrySend(*sp, has_from ? &from_copy : nullptr, from_host,
                    std::move(candidates), std::move(pkt), /*attempt=*/1);
        });
  }
}

void TMesh::RetrySend(Session& s, const UserId* from, HostId from_host,
                      std::vector<UserId> candidates, Packet pkt,
                      int attempt) {
  // Event entry point (fired from a scheduled retry timer). Only reachable
  // when the loss model is on, which MakeSession forbids on multi-lane
  // transports — so the direct result/metric increments below stay
  // single-threaded.
  Lane& lane = LaneRef();
  // Drop candidates that died since the last attempt.
  while (!candidates.empty()) {
    std::size_t i = static_cast<std::size_t>(attempt) % candidates.size();
    if (dir_.IsAlive(candidates[i])) break;
    candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(i));
  }
  if (candidates.empty() || attempt >= s.opts.max_send_attempts) {
    ++s.result.deliveries_failed;
    if (metrics_.deliveries_failed != nullptr) {
      metrics_.deliveries_failed->Increment();
    }
    return;
  }
  if (metrics_.retries != nullptr) metrics_.retries->Increment();
  const UserId to =
      candidates[static_cast<std::size_t>(attempt) % candidates.size()];

  bool lost = s.opts.loss_prob > 0.0 && s.loss_rng.Bernoulli(s.opts.loss_prob);
  auto [depart, tx] = OccupyUplink(from_host, PacketBytes(s, pkt), lane);
  Transmit(s, from, from_host, to, pkt, lost, depart, tx, lane);

  if (lost) {
    double rtt = dir_.network().RttHosts(from_host, dir_.HostOf(to));
    SimTime timeout =
        depart + tx + FromMillis(std::max(1.0, rtt * s.opts.retry_rtt_factor));
    Session* sp = &s;
    const UserId from_copy = from != nullptr ? *from : UserId{};
    const bool has_from = from != nullptr;
    transport_.ScheduleAtHost(
        from_host, timeout,
        [this, sp, has_from, from_copy, from_host,
         candidates = std::move(candidates), pkt = std::move(pkt),
         attempt]() mutable {
          RetrySend(*sp, has_from ? &from_copy : nullptr, from_host,
                    std::move(candidates), std::move(pkt), attempt + 1);
        });
  }
}

void TMesh::Transmit(Session& s, const UserId* from, HostId from_host,
                     const UserId& to, const Packet& pkt, bool lost,
                     SimTime depart, SimTime tx_time, Lane& lane) {
  const std::size_t encs = EncCount(pkt);
  HostId to_host = dir_.HostOf(to);

  if (parallel_) {
    ++s.lane_messages_sent[lane.index];
  } else {
    ++s.result.messages_sent;
  }
  if (lost) ++s.result.messages_lost;  // loss model is sequential-only
  if (metrics_.messages_sent != nullptr) {
    if (parallel_) {
      ++lane.messages_sent;
      if (from != nullptr) ++lane.forwards;
      lane.encs_sent += static_cast<std::int64_t>(encs);
    } else {
      metrics_.messages_sent->Increment();
      if (lost) metrics_.messages_lost->Increment();
      if (from != nullptr) metrics_.forwards->Increment();
      metrics_.encs_sent->Add(static_cast<std::int64_t>(encs));
    }
  }
  if (from != nullptr) {
    MemberDeliveryRecord& rec =
        s.result.member[static_cast<std::size_t>(from_host)];
    ++rec.stress;
    rec.encs_forwarded += static_cast<std::int64_t>(encs);
  }
  if (s.opts.track_links && dir_.network().HasRouterPaths()) {
    lane.path.clear();
    dir_.network().AppendPathLinks(from_host, to_host, lane.path);
    for (LinkId l : lane.path) {
      s.result.links.encryptions[static_cast<std::size_t>(l)] +=
          static_cast<std::int64_t>(encs);
      ++s.result.links.messages[static_cast<std::size_t>(l)];
    }
  }
  if (lost) {
    if (tracer_ != nullptr) {
      tracer_->Record("forward-lost", s.trace_id,
                      static_cast<std::int64_t>(from_host), ToMillis(depart),
                      ToMillis(tx_time));
    }
    return;
  }

  SimTime arrive = depart + tx_time +
                   FromMillis(dir_.network().OneWayDelayMs(from_host, to_host));
  if (tracer_ != nullptr) {
    tracer_->Record("forward", s.trace_id,
                    static_cast<std::int64_t>(from_host), ToMillis(depart),
                    ToMillis(arrive - depart));
  }
  Session* sp = &s;
  // Delivery runs at the receiver's host: the event reads and writes that
  // host's member record and forwards from that host's uplink. When
  // to_host != from_host the arrival is at least one cross-host one-way
  // delay away, i.e. >= the topology's MinCrossHostDelayMs — exactly the
  // parallel driver's lookahead condition.
  transport_.ScheduleAtHost(to_host, arrive, [this, sp, to, pkt, from_host]() {
    Deliver(*sp, to, pkt, from_host);
  });
}

void TMesh::Deliver(Session& s, const UserId& user, const Packet& pkt,
                    HostId from_host) {
  Lane& lane = LaneRef();  // event entry point
  if (!dir_.Contains(user) || !dir_.IsAlive(user)) return;  // raced a leave
  HostId host = dir_.HostOf(user);
  if (metrics_.deliveries != nullptr) {
    if (parallel_) {
      ++lane.deliveries;
    } else {
      metrics_.deliveries->Increment();
    }
  }
  if (tracer_ != nullptr) {
    tracer_->Record("deliver", s.trace_id, static_cast<std::int64_t>(host),
                    ToMillis(transport_.Now()), 0.0);
  }
  MemberDeliveryRecord& rec = s.result.member[static_cast<std::size_t>(host)];
  ++rec.copies;
  if (pkt.group_key_unicast) ++rec.group_key_copies;
  rec.encs_received += static_cast<std::int64_t>(EncCount(pkt));
  if (s.opts.record_encryptions && !pkt.group_key_unicast &&
      pkt.encs != nullptr) {
    auto& got = s.result.member_encs[static_cast<std::size_t>(host)];
    got.insert(got.end(), pkt.encs->begin(), pkt.encs->end());
  }
  bool first = rec.copies == 1;
  if (first) {
    rec.delay_ms = ToMillis(transport_.Now() - s.result.start);
    rec.forward_level = pkt.forward_level;
    rec.from = from_host;
    double unicast = dir_.network().OneWayDelayMs(s.source_host, host);
    rec.rdp = unicast > 0.0 ? rec.delay_ms / unicast : 1.0;
  }

  if (pkt.group_key_unicast) return;  // terminal hop; nothing to forward

  Forward(s, user, pkt, lane);
  if (s.opts.clusters != nullptr && pkt.is_rekey && first) {
    ClusterDuty(s, user, pkt, lane);
  }
}

void TMesh::Forward(Session& s, const UserId& user, const Packet& pkt,
                    Lane& lane) {
  const int d = dir_.params().digits;
  const bool cluster_mode = s.opts.clusters != nullptr && pkt.is_rekey;
  // Appendix B: "the message multicast process is as usual when forwarding
  // level is less than D-1" — i.e. rows up to D-2; the last level is the
  // leaders' pairwise unicast instead.
  const int max_row = cluster_mode ? d - 2 : d - 1;
  if (pkt.forward_level >= d) return;

  const NeighborTable& table = dir_.TableOf(user);
  HostId host = dir_.HostOf(user);
  for (int i = pkt.forward_level; i <= max_row; ++i) {
    for (const auto& [digit, entry] : table.row(i)) {
      (void)digit;
      CandidatesOf(entry, i, cluster_mode, lane);
      if (lane.cand.empty()) continue;  // all entry records failed
      Packet child = pkt;  // shares the parent payload snapshot
      child.forward_level = i + 1;
      if (pkt.is_rekey && s.opts.split && pkt.encs != nullptr) {
        // All candidates of an (i,j)-entry share the owner's first i digits
        // plus digit j, so Fig. 5's filter is identical for every backup.
        child.encs =
            SplitSnapshot(s, pkt.encs, lane.cand[0].Prefix(i + 1), lane);
      }
      SendFirst(s, &user, host, lane.cand, std::move(child), lane);
    }
  }
}

void TMesh::ClusterDuty(Session& s, const UserId& user, const Packet& pkt,
                        Lane& lane) {
  const ClusterRekeying& clusters = *s.opts.clusters;
  HostId host = dir_.HostOf(user);
  if (clusters.IsLeader(user)) {
    // Unicast the new group key to each cluster member under its pairwise
    // key: one encryption per member (Appendix B).
    Packet gk;
    gk.forward_level = dir_.params().digits;
    gk.group_key_unicast = true;
    gk.is_rekey = true;
    for (const UserId& peer : clusters.PeersOf(user)) {
      if (!dir_.IsAlive(peer)) continue;
      lane.cand.assign(1, peer);
      SendFirst(s, &user, host, lane.cand, gk, lane);
    }
  } else if (!pkt.leader_relay) {
    // The single in-cluster receiver of the multicast copy relays the full
    // message to its leader.
    UserId leader = clusters.LeaderOf(user);
    if (leader != user && dir_.IsAlive(leader)) {
      Packet relay = pkt;
      relay.forward_level = dir_.params().digits;  // no further FORWARD rows
      relay.leader_relay = true;
      lane.cand.assign(1, leader);
      SendFirst(s, &user, host, lane.cand, std::move(relay), lane);
    }
  }
}

TMesh::Handle TMesh::MakeSession(const Options& opts, HostId source_host,
                                 bool is_rekey, const RekeyMessage* msg) {
  if (parallel_) {
    // Features whose outcome depends on global event execution order (a
    // shared RNG stream, a global trace log, global per-link tallies)
    // cannot be partitioned without breaking the byte-identity contract.
    // fig08/fig11-style runs use none of them.
    TMESH_CHECK_MSG(opts.loss_prob == 0.0,
                    "the loss model draws from one sequential RNG stream; "
                    "run lossy sessions on a sequential transport");
    TMESH_CHECK_MSG(!opts.track_links,
                    "per-link tallies are not lane-partitioned; run "
                    "track_links sessions on a sequential transport");
    TMESH_CHECK_MSG(tracer_ == nullptr,
                    "the message tracer records in execution order; detach "
                    "it before multicasting over a parallel transport");
  }
  auto session = std::make_unique<Session>();
  if (parallel_) {
    session->lane_messages_sent.assign(lanes_.size(), 0);
  }
  session->msg = msg;
  session->opts = opts;
  session->source_host = source_host;
  session->is_rekey = is_rekey;
  session->loss_rng = Rng(opts.loss_seed);
  if (msg != nullptr) {
    session->enc_bytes.reserve(msg->encryptions.size());
    for (const Encryption& e : msg->encryptions) {
      session->enc_bytes.push_back(static_cast<std::uint32_t>(WireSize(e)));
    }
    // Appendix-B last hop: the group key (root ID, empty) encrypted under
    // the receiver's individual key (D digits).
    Encryption unicast;
    unicast.enc_key_id = DigitString{};
    for (int i = 0; i < dir_.params().digits; ++i) {
      unicast.enc_key_id.Append(0);
    }
    session->group_key_enc_bytes =
        static_cast<std::uint32_t>(WireSize(unicast));
  }
  auto& result = session->result;
  result.member.resize(static_cast<std::size_t>(dir_.network().host_count()));
  if (opts.record_encryptions) {
    result.member_encs.resize(
        static_cast<std::size_t>(dir_.network().host_count()));
  }
  if (opts.track_links) {
    result.links.encryptions.assign(
        static_cast<std::size_t>(dir_.network().link_count()), 0);
    result.links.messages.assign(
        static_cast<std::size_t>(dir_.network().link_count()), 0);
  }
  result.start = transport_.Now();
  session->trace_id = next_trace_id_++;
  if (metrics_.sessions != nullptr) metrics_.sessions->Increment();
  if (tracer_ != nullptr) {
    tracer_->Record("birth", session->trace_id,
                    static_cast<std::int64_t>(source_host),
                    ToMillis(transport_.Now()), 0.0);
  }
  return Handle(std::move(session));
}

TMesh::Handle TMesh::BeginRekey(const RekeyMessage& msg, const Options& opts) {
  Handle handle = MakeSession(opts, dir_.server_host(), /*is_rekey=*/true,
                              &msg);
  Session& s = *handle.session_;

  // All encryptions, by index — one shared snapshot for every level-0 copy
  // (and, when splitting is off, every downstream hop of the session).
  auto all = std::make_shared<EncList>(msg.encryptions.size());
  for (std::size_t i = 0; i < all->size(); ++i) {
    (*all)[i] = static_cast<std::int32_t>(i);
  }
  const EncSnapshot all_snap = std::move(all);

  // The key server executes FORWARD at level 0: one copy per non-empty
  // (0,j)-entry of its one-row table (Fig. 2 lines 3-5), each split for its
  // next hop (Fig. 5 with s = 0).
  const NeighborTable& st = dir_.ServerTable();
  Lane& lane = LaneRef();  // the calling thread's lane (lane 0 outside Run)
  for (const auto& [digit, entry] : st.row(0)) {
    (void)digit;
    CandidatesOf(entry, 0, /*cluster_mode=*/false, lane);
    if (lane.cand.empty()) continue;
    Packet pkt;
    pkt.forward_level = 1;
    pkt.is_rekey = true;
    pkt.encs = opts.split
                   ? SplitSnapshot(s, all_snap, lane.cand[0].Prefix(1), lane)
                   : all_snap;
    SendFirst(s, nullptr, dir_.server_host(), lane.cand, std::move(pkt),
              lane);
  }
  return handle;
}

TMesh::Handle TMesh::BeginData(const UserId& sender, const Options& opts) {
  TMESH_CHECK_MSG(dir_.IsAlive(sender), "data sender must be a live member");
  TMESH_CHECK_MSG(!opts.split, "splitting applies to rekey transport only");
  Handle handle =
      MakeSession(opts, dir_.HostOf(sender), /*is_rekey=*/false, nullptr);
  // The sender runs FORWARD at level 0 over its own table (Fig. 2 lines
  // 6-9): rows 0..D-1.
  Packet pkt;
  pkt.forward_level = 0;
  Forward(*handle.session_, sender, pkt, LaneRef());
  return handle;
}

TMesh::Result TMesh::MulticastRekey(const RekeyMessage& msg,
                                    const Options& opts) {
  Handle handle = BeginRekey(msg, opts);
  TMESH_CHECK_MSG(drain_sim_ != nullptr,
                  "MulticastRekey needs a drainable simulator; use "
                  "BeginRekey over a real transport");
  drain_sim_->Run();
  return handle.TakeResult();
}

TMesh::Result TMesh::MulticastData(const UserId& sender) {
  Handle handle = BeginData(sender, Options{});
  TMESH_CHECK_MSG(drain_sim_ != nullptr,
                  "MulticastData needs a drainable simulator; use "
                  "BeginData over a real transport");
  drain_sim_->Run();
  return handle.TakeResult();
}

}  // namespace tmesh
