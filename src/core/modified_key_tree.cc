#include "core/modified_key_tree.h"

#include <algorithm>
#include <thread>

#include "common/check.h"

namespace tmesh {

ModifiedKeyTree::ModifiedKeyTree(int depth) : depth_(depth) {
  TMESH_CHECK(depth >= 1 && depth <= kMaxDigits);
}

std::int32_t ModifiedKeyTree::NewNode(const DigitString& id) {
  std::int32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    pool_.emplace_back();
    slot = static_cast<std::int32_t>(pool_.size() - 1);
  }
  Node& n = pool_[static_cast<std::size_t>(slot)];
  n = Node{};
  n.id = id;
  n.in_use = true;
  // A re-created node must not reuse the versions its previous incarnation
  // handed out — a departed member still holds those keys, and a version
  // collision would let it decrypt the new key chain (fuzzer find; repro
  // tests/fuzz_repros/keytree_version_reuse_forward_secrecy.repro).
  auto retired = retired_versions_.find(id);
  if (retired != retired_versions_.end()) {
    n.version = retired->second + 1;
  }
  index_[id] = slot;
  if (id.size() < depth_) ++knode_count_;
  return slot;
}

void ModifiedKeyTree::FreeNode(std::int32_t slot) {
  Node& n = pool_[static_cast<std::size_t>(slot)];
  if (n.id.size() < depth_) --knode_count_;
  index_.erase(n.id);
  n = Node{};  // clears the dirty stamp: freed slots must not be collected
  free_slots_.push_back(slot);
}

void ModifiedKeyTree::MarkDirty(std::int32_t slot) {
  Node& n = pool_[static_cast<std::size_t>(slot)];
  if (n.dirty_epoch != epoch_) {
    n.dirty_epoch = epoch_;
    dirty_.push_back(slot);
  }
}

void ModifiedKeyTree::Join(const UserId& u) {
  TMESH_CHECK(u.size() == depth_);
  TMESH_CHECK_MSG(Find(u) == -1, "join of present user " + u.ToString());
  for (int len = 0; len <= depth_; ++len) {
    DigitString p = u.Prefix(len);
    std::int32_t slot = Find(p);
    if (slot == -1) slot = NewNode(p);
    if (len < depth_) {
      pool_[static_cast<std::size_t>(slot)].SetChild(u.digit(len));
      MarkDirty(slot);
    }
  }
  changed_.insert(u);
  ++user_count_;
}

void ModifiedKeyTree::Leave(UserId u) {
  TMESH_CHECK(u.size() == depth_);
  std::int32_t leaf = Find(u);
  TMESH_CHECK_MSG(leaf != -1, "leave of absent user " + u.ToString());
  retired_versions_[u] = pool_[static_cast<std::size_t>(leaf)].version;
  FreeNode(leaf);
  // Prune childless k-nodes bottom-up, retiring their versions so a later
  // re-creation cannot repeat them.
  for (int len = depth_ - 1; len >= 0; --len) {
    DigitString p = u.Prefix(len);
    std::int32_t slot = Find(p);
    TMESH_CHECK(slot != -1);  // prefix closure: shorter prefixes survive
    Node& node = pool_[static_cast<std::size_t>(slot)];
    int child_digit = u.digit(len);
    if (Find(p.Child(child_digit)) == -1) node.ClearChild(child_digit);
    if (node.child_count == 0) {
      retired_versions_[p] = node.version;
      FreeNode(slot);
    }
  }
  // The surviving path still guards remaining users: stamp it for the next
  // rekey (pruned prefixes need no new key — they have no users left).
  for (int len = 0; len < depth_; ++len) {
    std::int32_t slot = Find(u.Prefix(len));
    if (slot != -1) MarkDirty(slot);
  }
  changed_.insert(u);
  --user_count_;
}

void ModifiedKeyTree::EmitNode(std::int32_t slot,
                               std::vector<Encryption>& out) {
  Node& node = pool_[static_cast<std::size_t>(slot)];
  ++node.version;
  // Ascending-digit child order (the seed's std::set iteration).
  for (int w = 0; w < kChildWords; ++w) {
    std::uint64_t bits = node.child_bits[w];
    while (bits != 0) {
      int digit = w * 64 + __builtin_ctzll(bits);
      bits &= bits - 1;
      DigitString child = node.id.Child(digit);
      Encryption e;
      e.enc_key_id = child;  // "the ID of an encryption is the ID of the
                             // encrypting key" (§2.4)
      e.new_key_id = node.id;
      e.new_key_version = node.version;
      e.enc_key_version = pool_[static_cast<std::size_t>(Find(child))].version;
      out.push_back(e);
    }
  }
}

RekeyMessage ModifiedKeyTree::Rekey(int shards) {
  TMESH_CHECK(shards >= 1);
  // Stream the dirty list: every stamped, still-alive k-node gets a new
  // key. Slots pruned after stamping were reset (stamp cleared); slots
  // reused by a new node carry a fresh stamp iff that node was re-marked.
  std::vector<std::int32_t> updated;
  updated.reserve(dirty_.size());
  for (std::int32_t slot : dirty_) {
    Node& n = pool_[static_cast<std::size_t>(slot)];
    if (n.in_use && n.dirty_epoch == epoch_ && n.id.size() < depth_) {
      n.dirty_epoch = 0;  // consume: duplicates in dirty_ collect once
      updated.push_back(slot);
    }
  }
  dirty_.clear();
  ++epoch_;
  changed_.clear();

  // Deterministic deep-first order: children's new keys exist before they
  // encrypt their parents' new keys.
  auto deep_first = [this](std::int32_t a, std::int32_t b) {
    const DigitString& ia = pool_[static_cast<std::size_t>(a)].id;
    const DigitString& ib = pool_[static_cast<std::size_t>(b)].id;
    if (ia.size() != ib.size()) return ia.size() > ib.size();
    return ia < ib;
  };

  RekeyMessage msg;
  if (shards <= 1 || depth_ < 2) {
    std::sort(updated.begin(), updated.end(), deep_first);
    for (std::int32_t slot : updated) EmitNode(slot, msg.encryptions);
    return msg;
  }

  // Sharded: bucket the non-root nodes by level-1 digit. Each bucket is a
  // vertex-disjoint subtree, so bucket workers write disjoint version
  // fields and read child versions only from their own bucket (or from
  // u-nodes, which no rekey writes). The root reads level-1 versions, so
  // it is renewed after the join barrier.
  std::int32_t root_slot = -1;
  std::unordered_map<int, std::size_t> bucket_of;  // digit -> buckets index
  std::vector<int> bucket_digits;
  std::vector<std::vector<std::int32_t>> buckets;
  for (std::int32_t slot : updated) {
    const DigitString& id = pool_[static_cast<std::size_t>(slot)].id;
    if (id.size() == 0) {
      root_slot = slot;
      continue;
    }
    auto [it, created] = bucket_of.try_emplace(id.digit(0), buckets.size());
    if (created) {
      bucket_digits.push_back(id.digit(0));
      buckets.emplace_back();
    }
    buckets[it->second].push_back(slot);
  }

  // Per-bucket output, segmented by level so the merge can reproduce the
  // global (size desc, lex asc) order: at a fixed size, lexicographic order
  // groups by the leading digit.
  std::vector<std::vector<std::vector<Encryption>>> by_level(
      buckets.size(),
      std::vector<std::vector<Encryption>>(static_cast<std::size_t>(depth_)));
  const int workers =
      std::min<int>(shards, static_cast<int>(buckets.size()));
  auto run_bucket = [&](std::size_t b) {
    std::sort(buckets[b].begin(), buckets[b].end(), deep_first);
    for (std::int32_t slot : buckets[b]) {
      int level = pool_[static_cast<std::size_t>(slot)].id.size();
      EmitNode(slot, by_level[b][static_cast<std::size_t>(level)]);
    }
  };
  if (workers <= 1) {
    for (std::size_t b = 0; b < buckets.size(); ++b) run_bucket(b);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        for (std::size_t b = static_cast<std::size_t>(w); b < buckets.size();
             b += static_cast<std::size_t>(workers)) {
          run_bucket(b);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }

  // Merge: levels deep-first; within a level, buckets by ascending leading
  // digit (== lexicographic order); bucket-internal order is already
  // lexicographic. The root comes last (size 0 sorts after everything).
  std::vector<std::size_t> bucket_order(buckets.size());
  for (std::size_t i = 0; i < buckets.size(); ++i) bucket_order[i] = i;
  std::sort(bucket_order.begin(), bucket_order.end(),
            [&](std::size_t a, std::size_t b) {
              return bucket_digits[a] < bucket_digits[b];
            });
  for (int level = depth_ - 1; level >= 1; --level) {
    for (std::size_t b : bucket_order) {
      auto& seg = by_level[b][static_cast<std::size_t>(level)];
      msg.encryptions.insert(msg.encryptions.end(), seg.begin(), seg.end());
    }
  }
  if (root_slot != -1) EmitNode(root_slot, msg.encryptions);
  return msg;
}

void ModifiedKeyTree::DiscardPending() {
  for (std::int32_t slot : dirty_) {
    Node& n = pool_[static_cast<std::size_t>(slot)];
    if (n.dirty_epoch == epoch_) n.dirty_epoch = 0;
  }
  dirty_.clear();
  ++epoch_;
  changed_.clear();
}

void ModifiedKeyTree::MarkPending(const KeyId& id) {
  TMESH_CHECK(id.size() < depth_);
  std::int32_t slot = Find(id);
  if (slot != -1) MarkDirty(slot);
}

ModifiedKeyTreeState ModifiedKeyTree::Snapshot() const {
  ModifiedKeyTreeState s;
  s.nodes.reserve(index_.size());
  for (const auto& [id, slot] : index_) {
    s.nodes.emplace_back(id, pool_[static_cast<std::size_t>(slot)].version);
  }
  for (std::int32_t slot : dirty_) {
    const Node& n = pool_[static_cast<std::size_t>(slot)];
    if (n.in_use && n.dirty_epoch == epoch_ && n.id.size() < depth_) {
      s.dirty.push_back(n.id);
    }
  }
  s.changed.assign(changed_.begin(), changed_.end());
  s.retired.assign(retired_versions_.begin(), retired_versions_.end());
  auto by_depth_lex = [](const auto& a, const auto& b) {
    if (a.first.size() != b.first.size()) return a.first.size() < b.first.size();
    return a.first < b.first;
  };
  std::sort(s.nodes.begin(), s.nodes.end(), by_depth_lex);
  std::sort(s.dirty.begin(), s.dirty.end());
  std::sort(s.changed.begin(), s.changed.end());
  std::sort(s.retired.begin(), s.retired.end());
  return s;
}

void ModifiedKeyTree::Install(const ModifiedKeyTreeState& state) {
  TMESH_CHECK_MSG(index_.empty() && changed_.empty() && dirty_.empty(),
                  "install requires a fresh tree");
  retired_versions_.insert(state.retired.begin(), state.retired.end());
  // Parents precede children in the (size, lex) node order, so child bitmaps
  // can be set as nodes materialize.
  for (const auto& [id, version] : state.nodes) {
    std::int32_t slot = NewNode(id);
    pool_[static_cast<std::size_t>(slot)].version = version;
    if (id.size() == depth_) ++user_count_;
    if (id.size() > 0) {
      std::int32_t parent = Find(id.Parent());
      TMESH_CHECK_MSG(parent != -1, "snapshot node set not prefix-closed");
      pool_[static_cast<std::size_t>(parent)].SetChild(id.LastDigit());
    }
  }
  for (const DigitString& id : state.dirty) {
    std::int32_t slot = Find(id);
    TMESH_CHECK_MSG(slot != -1, "snapshot dirty entry without node");
    MarkDirty(slot);
  }
  changed_.insert(state.changed.begin(), state.changed.end());
}

std::vector<KeyId> ModifiedKeyTree::KeysOf(const UserId& u) const {
  TMESH_CHECK_MSG(Contains(u), "not a member: " + u.ToString());
  std::vector<KeyId> keys;
  keys.reserve(static_cast<std::size_t>(depth_) + 1);
  for (int len = 0; len <= depth_; ++len) keys.push_back(u.Prefix(len));
  return keys;
}

std::uint32_t ModifiedKeyTree::KeyVersion(const KeyId& id) const {
  std::int32_t slot = Find(id);
  return slot == -1 ? 0 : pool_[static_cast<std::size_t>(slot)].version;
}

void ModifiedKeyTree::CheckInvariants() const {
  int users = 0;
  int knodes = 0;
  for (const auto& [id, slot] : index_) {
    const Node& node = pool_[static_cast<std::size_t>(slot)];
    TMESH_CHECK_MSG(node.in_use && node.id == id, "index/pool mismatch");
    if (id.size() == depth_) {
      TMESH_CHECK_MSG(node.child_count == 0, "u-node with children");
      ++users;
    } else {
      TMESH_CHECK_MSG(node.child_count > 0, "childless k-node survived");
      ++knodes;
    }
    if (id.size() > 0) {
      std::int32_t parent = Find(id.Parent());
      TMESH_CHECK_MSG(parent != -1, "orphan node");
      TMESH_CHECK_MSG(
          pool_[static_cast<std::size_t>(parent)].HasChild(id.LastDigit()),
          "parent unaware of child");
    }
    int bits = 0;
    for (int d = 0; d < kMaxBase; ++d) {
      if (!node.HasChild(d)) continue;
      ++bits;
      TMESH_CHECK_MSG(Find(id.Child(d)) != -1,
                      "child digit without child node");
    }
    TMESH_CHECK_MSG(bits == node.child_count, "child_count drift");
  }
  std::size_t in_use = 0;
  for (const Node& n : pool_) {
    if (n.in_use) ++in_use;
  }
  TMESH_CHECK(in_use == index_.size());
  TMESH_CHECK(users == user_count_);
  TMESH_CHECK(knodes == knode_count_);
}

}  // namespace tmesh
