// The key server: the online orchestration of the paper's system.
//
// "In batch rekeying, the key server processes the join and leave requests
// during a rekey interval as a batch, and generates a single rekey message
// at the end of the rekey interval. The rekey message is then sent to all
// users immediately" (§1). This class runs that loop on the simulator:
//
//   - RequestJoin(host): runs ID assignment (§3.1), admits the member to
//     the directory (neighbor tables), adds its u-node to the key tree(s),
//     and unicasts the user its current path keys — footnote 1's rule that
//     a joiner that completes mid-interval receives the current group key
//     by unicast is modeled by granting the joiner the live key versions.
//   - RequestLeave(id): removes the member everywhere; its path re-keys at
//     the interval end.
//   - Every `rekey_interval`, the accumulated batch is processed: the key
//     tree emits the rekey message and T-mesh multicasts it (with
//     splitting, and Appendix-B cluster forwarding when the heuristic is
//     enabled). Delivery results are retained per interval.
//
// The server never blocks the simulator: interval work is scheduled as
// events, so application traffic (data multicasts via the same TMesh) runs
// concurrently — the paper's concurrent rekey + data transport.
#pragma once

#include <optional>
#include <vector>

#include "core/cluster_rekeying.h"
#include "core/directory.h"
#include "core/id_assignment.h"
#include "core/modified_key_tree.h"
#include "core/tmesh.h"

namespace tmesh {

class KeyServer {
 public:
  struct Config {
    GroupParams group;
    IdAssignParams assign;
    SimTime rekey_interval = FromSeconds(512);  // the paper's §4.3 value
    bool split = true;
    bool cluster_heuristic = false;
    bool record_encryptions = false;  // pass through to delivery results
    // Loss model for the interval rekey multicasts (per-transmission loss
    // with §2.3 backup-neighbor retries). Each interval's session gets a
    // distinct loss stream derived from `seed` and the interval index.
    double loss_prob = 0.0;
    int max_send_attempts = 8;
    std::uint64_t seed = 1;
    // Worker threads for the end-of-interval key-tree rekey (level-1
    // subtree sharding). The rekey message is byte-identical for every
    // value; > 1 only pays off at very large batch sizes.
    int rekey_shards = 1;
  };

  struct IntervalRecord {
    SimTime when = 0;
    int joins = 0;
    int leaves = 0;
    std::size_t rekey_cost = 0;
    // Index into deliveries() for the interval's multicast; -1 if the
    // interval was quiet (no rekey message sent).
    int delivery = -1;
  };

  KeyServer(const Network& net, HostId server_host, Simulator& sim,
            const Config& config);

  // Attaches a registry (null detaches): "keyserver." counters/histograms
  // here (joins, leaves, repairs, per-interval batch sizes and encryption
  // counts) and the "tmesh." transport counters on the internal TMesh. The
  // registry must outlive the server or be detached first.
  void SetMetrics(MetricsRegistry* metrics);

  // Starts the periodic rekey timer (first interval ends one
  // rekey_interval from now). Checked lifecycle: Start() on a running
  // server is a TMESH_CHECK failure, and a Start() after Stop() while the
  // stopped tick is still in flight reuses that tick instead of scheduling
  // a second one — the server can never double-schedule intervals.
  void Start();
  // Stops scheduling further intervals. Idempotent; an already-scheduled
  // tick still fires once (processing the batch accumulated so far) but
  // does not re-arm.
  void Stop() { running_ = false; }

  bool running() const { return running_; }
  // Simulated time of the next scheduled interval tick, kNoTime if none is
  // in flight. The online driver loop uses this as its RunFor deadline.
  SimTime next_interval_at() const { return tick_at_; }

  // --- client-facing operations (invoked at simulator-now) ---------------
  // Admits a new user; returns its assigned ID, or nullopt if the ID space
  // is exhausted. The joiner is granted the current path keys (modeled by
  // the key tree's live versions).
  std::optional<UserId> RequestJoin(HostId host);
  void RequestLeave(UserId id);

  // Crash/repair pass-throughs that keep the key tree and cluster map in
  // step with the directory. MarkFailed opens the §2.3 failure window — the
  // member is still a group member cryptographically, so no key state
  // changes. RepairFailure completes detection: the member is evicted
  // everywhere and its path re-keys at the interval end exactly like a
  // leave (otherwise the crashed member would keep a decryptable path to
  // every future group key — found by the churn fuzzer, repro
  // tests/fuzz_repros/keyserver_repair_forward_secrecy.repro).
  void MarkFailed(const UserId& id) { dir_.MarkFailed(id); }
  void RepairFailure(UserId id);

  // Concurrent application traffic over the same tables and uplinks.
  TMesh::Handle MulticastData(const UserId& sender) {
    return tmesh_.BeginData(sender);
  }

  // --- state --------------------------------------------------------------
  Directory& directory() { return dir_; }
  const Directory& directory() const { return dir_; }
  const ModifiedKeyTree& key_tree() const { return mtree_; }
  const ClusterRekeying& clusters() const { return clusters_; }
  TMesh& transport() { return tmesh_; }
  std::uint32_t group_key_version() const {
    return cfg_.cluster_heuristic
               ? clusters_.leader_tree().KeyVersion(DigitString{})
               : mtree_.KeyVersion(DigitString{});
  }

  const std::vector<IntervalRecord>& history() const { return history_; }
  const TMesh::Result& delivery(int index) const {
    return deliveries_[static_cast<std::size_t>(index)].result();
  }
  // The rekey message distributed in interval `index` (alive as long as the
  // server; split results reference it).
  const RekeyMessage& message(int index) const {
    return *messages_[static_cast<std::size_t>(index)];
  }

 private:
  void EndInterval();

  Config cfg_;
  Directory dir_;
  IdAssigner assigner_;
  ModifiedKeyTree mtree_;
  ClusterRekeying clusters_;
  Simulator& sim_;
  TMesh tmesh_;
  bool running_ = false;
  SimTime tick_at_ = kNoTime;  // when the in-flight interval tick fires
  int interval_joins_ = 0;
  int interval_leaves_ = 0;
  // Resolved "keyserver." handles; all null when no registry is attached.
  struct MetricHandles {
    Counter* joins = nullptr;
    Counter* leaves = nullptr;
    Counter* failures_repaired = nullptr;
    Counter* intervals = nullptr;
    Counter* quiet_intervals = nullptr;
    Counter* encryptions = nullptr;
    Histogram* batch_size = nullptr;
    Histogram* rekey_encryptions = nullptr;
  };
  MetricHandles metrics_;
  std::vector<IntervalRecord> history_;
  std::vector<TMesh::Handle> deliveries_;
  std::vector<std::unique_ptr<RekeyMessage>> messages_;
};

}  // namespace tmesh
