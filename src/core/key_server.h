// The key server: the online orchestration of the paper's system.
//
// "In batch rekeying, the key server processes the join and leave requests
// during a rekey interval as a batch, and generates a single rekey message
// at the end of the rekey interval. The rekey message is then sent to all
// users immediately" (§1). This class runs that loop on the simulator:
//
//   - RequestJoin(host): runs ID assignment (§3.1), admits the member to
//     the directory (neighbor tables), adds its u-node to the key tree(s),
//     and unicasts the user its current path keys — footnote 1's rule that
//     a joiner that completes mid-interval receives the current group key
//     by unicast is modeled by granting the joiner the live key versions.
//   - RequestLeave(id): removes the member everywhere; its path re-keys at
//     the interval end.
//   - Every `rekey_interval`, the accumulated batch is processed: the key
//     tree emits the rekey message and T-mesh multicasts it (with
//     splitting, and Appendix-B cluster forwarding when the heuristic is
//     enabled). Delivery results are retained per interval.
//
// The server never blocks the simulator: interval work is scheduled as
// events, so application traffic (data multicasts via the same TMesh) runs
// concurrently — the paper's concurrent rekey + data transport.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/cluster_rekeying.h"
#include "core/directory.h"
#include "core/id_assignment.h"
#include "core/modified_key_tree.h"
#include "core/tmesh.h"

namespace tmesh {

class KeyServer {
 public:
  struct Config {
    // Environment: the topology used for admission, ID assignment, and the
    // internal TMesh, and the logical host the server serves from. Folded
    // into Config (instead of positional constructor arguments) so all
    // three protocol classes share one idiomatic init shape —
    // {Transport&, Config} — and transport injection stays uniform.
    const Network* net = nullptr;  // required
    HostId server_host = 0;
    GroupParams group;
    IdAssignParams assign;
    SimTime rekey_interval = FromSeconds(512);  // the paper's §4.3 value
    bool split = true;
    bool cluster_heuristic = false;
    bool record_encryptions = false;  // pass through to delivery results
    // Loss model for the interval rekey multicasts (per-transmission loss
    // with §2.3 backup-neighbor retries). Each interval's session gets a
    // distinct loss stream derived from `seed` and the interval index.
    double loss_prob = 0.0;
    int max_send_attempts = 8;
    std::uint64_t seed = 1;
    // Worker threads for the end-of-interval key-tree rekey (level-1
    // subtree sharding). The rekey message is byte-identical for every
    // value; > 1 only pays off at very large batch sizes.
    int rekey_shards = 1;
  };

  struct IntervalRecord {
    SimTime when = 0;
    int joins = 0;
    int leaves = 0;
    std::size_t rekey_cost = 0;
    // Index into deliveries() for the interval's multicast; -1 if the
    // interval was quiet (no rekey message sent) or had no alive recipient.
    int delivery = -1;
  };

  // Portable server state for replication (DESIGN.md §3g): the membership
  // roster, both key trees' exact state, and the interval bookkeeping. A
  // successor installing this snapshot rebuilds its neighbor tables by
  // canonical survivor re-registration (K-consistent by construction) and
  // continues the key chains byte-for-byte.
  struct Snapshot {
    struct Member {
      UserId id;
      HostId host = kNoHost;
      SimTime join_time = 0;
      bool alive = true;
    };
    std::vector<Member> members;  // sorted by id (directory map order)
    ModifiedKeyTreeState mtree;
    ClusterRekeyingState clusters;
    int interval_joins = 0;
    int interval_leaves = 0;
    // Key IDs renewed by a rekey whose message was never distributed (the
    // mid-batch-crash window): those versions are burned, and the installer
    // re-stamps the paths so its next interval issues fresh ones.
    std::vector<KeyId> unsent_renewed;
  };

  // The server speaks only to the Transport seam (DESIGN.md §3h): its
  // clock stamps joins/leaves and its timers drive the periodic interval
  // tick, so the same server runs on the simulator (SimTransport) or on
  // the wall clock (UdpTransport — examples/multiproc_rekey.cc).
  KeyServer(Transport& transport, const Config& config);

  // Attaches a registry (null detaches): "keyserver." counters/histograms
  // here (joins, leaves, repairs, per-interval batch sizes and encryption
  // counts) and the "tmesh." transport counters on the internal TMesh. The
  // registry must outlive the server or be detached first.
  void SetMetrics(MetricsRegistry* metrics);

  // Starts the periodic rekey timer (first interval ends one
  // rekey_interval from now). Checked lifecycle: Start() on a running
  // server is a TMESH_CHECK failure, and a Start() after Stop() while the
  // stopped tick is still in flight reuses that tick instead of scheduling
  // a second one — the server can never double-schedule intervals.
  void Start();
  // Stops scheduling further intervals. Idempotent; an already-scheduled
  // tick still fires once (processing the batch accumulated so far) but
  // does not re-arm.
  void Stop() { running_ = false; }

  // Crash-stops the server: unlike Stop(), an in-flight interval tick fires
  // as a no-op (the dead server processes nothing), and every further
  // client operation is a CHECK failure. Irreversible; the replication
  // layer halts an instance on failover and routes to the successor.
  void Halt() {
    running_ = false;
    halted_ = true;
  }
  bool halted() const { return halted_; }

  // Fault injection for the mid-batch-crash window (DESIGN.md §3g): the
  // next non-quiet EndInterval runs the batch rekey — burning the renewed
  // key versions — then Halts without distributing the message. The crash
  // handler (if set) fires at that instant, with the undistributed message
  // retained in unsent_message() and the renewed-but-undistributed key IDs
  // visible to TakeSnapshot() as `unsent_renewed`.
  void InjectCrashBeforeDistribute() { crash_before_distribute_ = true; }
  void SetCrashHandler(std::function<void()> handler) {
    on_crash_ = std::move(handler);
  }
  // Non-null after a mid-batch crash: the rekey message that was generated
  // but never multicast.
  const RekeyMessage* unsent_message() const { return unsent_message_.get(); }

  // Fires at the end of every processed interval (after the record is
  // appended to history(); not on the mid-batch-crash path). Online
  // drivers use it to export the interval's rekey message to real members
  // the instant it exists — the multi-process demo unicasts the wire.cc
  // encoding from here. Null detaches.
  void SetIntervalHandler(std::function<void(const IntervalRecord&)> handler) {
    on_interval_ = std::move(handler);
  }

  // --- replication ---------------------------------------------------------
  // Captures the server's full logical state. Valid at any op boundary;
  // deterministic (canonically ordered).
  Snapshot TakeSnapshot() const;
  // Installs a snapshot into a freshly constructed, never-started server:
  // re-registers the roster into the directory (tables rebuilt, K-consistent
  // by construction), restores both key trees exactly, and re-stamps any
  // unsent-renewed paths so the next interval re-issues those keys.
  void InstallSnapshot(const Snapshot& snap);

  bool running() const { return running_; }
  // Simulated time of the next scheduled interval tick, kNoTime if none is
  // in flight. The online driver loop uses this as its RunFor deadline.
  SimTime next_interval_at() const { return tick_at_; }

  // --- client-facing operations (invoked at simulator-now) ---------------
  // Admits a new user; returns its assigned ID, or nullopt if the ID space
  // is exhausted. The joiner is granted the current path keys (modeled by
  // the key tree's live versions).
  std::optional<UserId> RequestJoin(HostId host);
  // Removes the member everywhere. A leave for a member already inside the
  // §2.3 failure window (MarkFailed, not yet repaired) is really failure
  // detection completing — the "leave" notice raced the crash — so it
  // routes to RepairFailure rather than silently taking the voluntary-leave
  // path (and is counted as a repair, not a leave).
  void RequestLeave(UserId id);

  // Crash/repair pass-throughs that keep the key tree and cluster map in
  // step with the directory. MarkFailed opens the §2.3 failure window — the
  // member is still a group member cryptographically, so no key state
  // changes. RepairFailure completes detection: the member is evicted
  // everywhere and its path re-keys at the interval end exactly like a
  // leave (otherwise the crashed member would keep a decryptable path to
  // every future group key — found by the churn fuzzer, repro
  // tests/fuzz_repros/keyserver_repair_forward_secrecy.repro).
  void MarkFailed(const UserId& id) {
    TMESH_CHECK_MSG(!halted_, "fail on a halted server");
    dir_.MarkFailed(id);
  }
  void RepairFailure(UserId id);

  // Concurrent application traffic over the same tables and uplinks.
  TMesh::Handle MulticastData(const UserId& sender) {
    return tmesh_.BeginData(sender);
  }

  // --- state --------------------------------------------------------------
  Directory& directory() { return dir_; }
  const Directory& directory() const { return dir_; }
  const ModifiedKeyTree& key_tree() const { return mtree_; }
  const ClusterRekeying& clusters() const { return clusters_; }
  TMesh& mesh() { return tmesh_; }
  std::uint32_t group_key_version() const {
    return cfg_.cluster_heuristic
               ? clusters_.leader_tree().KeyVersion(DigitString{})
               : mtree_.KeyVersion(DigitString{});
  }

  const std::vector<IntervalRecord>& history() const { return history_; }
  const TMesh::Result& delivery(int index) const {
    return deliveries_[static_cast<std::size_t>(index)].result();
  }
  // The rekey message distributed in interval `index` (alive as long as the
  // server; split results reference it).
  const RekeyMessage& message(int index) const {
    return *messages_[static_cast<std::size_t>(index)];
  }

 private:
  void EndInterval();

  Config cfg_;
  Directory dir_;
  IdAssigner assigner_;
  ModifiedKeyTree mtree_;
  ClusterRekeying clusters_;
  Transport& transport_;
  TMesh tmesh_;
  bool running_ = false;
  bool halted_ = false;
  bool crash_before_distribute_ = false;
  SimTime tick_at_ = kNoTime;  // when the in-flight interval tick fires
  int interval_joins_ = 0;
  int interval_leaves_ = 0;
  std::function<void()> on_crash_;
  std::function<void(const IntervalRecord&)> on_interval_;
  std::unique_ptr<RekeyMessage> unsent_message_;
  std::vector<KeyId> unsent_renewed_;
  // Resolved "keyserver." handles; all null when no registry is attached.
  // Contract (pinned by key_server_test): keyserver.encryptions equals the
  // sum of rekey_cost over intervals that produced a delivery;
  // keyserver.undistributed_rekeys counts the intervals whose rekey work
  // had no alive recipient (rekey_cost > 0, delivery == -1).
  struct MetricHandles {
    Counter* joins = nullptr;
    Counter* leaves = nullptr;
    Counter* failures_repaired = nullptr;
    Counter* intervals = nullptr;
    Counter* quiet_intervals = nullptr;
    Counter* undistributed_rekeys = nullptr;
    Counter* encryptions = nullptr;
    Histogram* batch_size = nullptr;
    Histogram* rekey_encryptions = nullptr;
  };
  MetricHandles metrics_;
  std::vector<IntervalRecord> history_;
  std::vector<TMesh::Handle> deliveries_;
  std::vector<std::unique_ptr<RekeyMessage>> messages_;
};

}  // namespace tmesh
