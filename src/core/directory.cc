#include "core/directory.h"

#include <algorithm>

namespace tmesh {

Directory::Directory(const Network& net, const GroupParams& params,
                     HostId server_host, AdmissionOptions admission)
    : net_(net),
      params_(params),
      server_host_(server_host),
      admission_(admission),
      window_(admission.window > 0 ? admission.window : 4 * params.capacity),
      id_tree_(params.digits, params.base),
      server_table_(1, params.base, params.capacity) {
  TMESH_CHECK(params.digits >= 1 && params.digits <= kMaxDigits);
  TMESH_CHECK(params.base >= 2 && params.base <= kMaxBase);
  TMESH_CHECK(params.capacity >= 1);
  TMESH_CHECK_MSG(window_ >= params.capacity,
                  "candidate window below entry capacity");
  TMESH_CHECK(server_host >= 0 && server_host < net.host_count());
}

NeighborRecord Directory::MakeRecord(const MemberInfo& of,
                                     HostId owner_host) const {
  NeighborRecord rec;
  rec.id = of.id;
  rec.host = of.host;
  rec.join_time = of.join_time;
  rec.rtt_ms = net_.RttHosts(owner_host, of.host);
  return rec;
}

MemberInfo& Directory::InfoMut(const UserId& id) {
  auto it = members_.find(id);
  TMESH_CHECK_MSG(it != members_.end(), "unknown member " + id.ToString());
  return it->second;
}

void Directory::UnderfullInsert(const DigitString& node, const UserId& holder) {
  underfull_[node].insert(holder);
}

void Directory::UnderfullErase(const DigitString& node, const UserId& holder) {
  auto it = underfull_.find(node);
  if (it == underfull_.end()) return;
  it->second.erase(holder);
  if (it->second.empty()) underfull_.erase(it);
}

void Directory::InsertIntoHolder(MemberInfo& w, int row, int digit,
                                 const MemberInfo& who) {
  TMESH_DCHECK(w.table.entry(row, digit) == nullptr ||
               static_cast<int>(w.table.entry(row, digit)->size()) <
                   params_.capacity);
  bool kept = w.table.Insert(row, digit, MakeRecord(who, w.host));
  TMESH_DCHECK(kept);
  (void)kept;
  ++stats_.holders_updated;
  rev_holders_[who.id].insert(w.id);
  // The entry maps to who's (row+1)-prefix node (w and who share `row`
  // digits, and `digit` is who's digit there).
  const DigitString node = who.id.Prefix(row + 1);
  const NeighborTable::Entry* e = w.table.entry(row, digit);
  if (static_cast<int>(e->size()) < params_.capacity) {
    UnderfullInsert(node, w.id);
  } else {
    UnderfullErase(node, w.id);
  }
}

void Directory::Refill(MemberInfo& w, int row, int digit) {
  ++stats_.refill_calls;
  const DigitString node = w.id.Prefix(row).Child(digit);
  const int k = params_.capacity;
  const NeighborTable::Entry* e = w.table.entry(row, digit);
  int have = e == nullptr ? 0 : static_cast<int>(e->size());
  if (!id_tree_.NodeExists(node)) {
    // Subtree vanished: the entry must already be gone, and there is nothing
    // to track — a recreated subtree arrives via the new-node broadcast.
    TMESH_DCHECK(have == 0);
    return;
  }
  if (have < k) {
    // Windowed candidate gathering: RTT-probe at most window_ eligible
    // members, in the bucket's canonical order, and keep the nearest.
    // With window_ >= K, exhausting the bucket means every alive
    // not-yet-held member was probed, so the entry still reaches
    // min(K, m) records.
    struct Cand {
      NeighborRecord rec;
      std::size_t pos;
    };
    std::vector<Cand> cands;
    const std::vector<UserId>& bucket = id_tree_.UsersRef(node);
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (static_cast<int>(cands.size()) >= window_) break;
      const MemberInfo& c = Info(bucket[i]);
      if (!c.alive) continue;
      if (w.table.ContainsNeighbor(row, digit, c.id)) continue;
      ++stats_.candidates_probed;
      cands.push_back({MakeRecord(c, w.host), i});
    }
    // Nearest first; canonical position breaks RTT ties, so both admission
    // policies insert the same records in the same order.
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      return a.rec.rtt_ms != b.rec.rtt_ms ? a.rec.rtt_ms < b.rec.rtt_ms
                                          : a.pos < b.pos;
    });
    const int need = k - have;
    if (static_cast<int>(cands.size()) > need) {
      cands.resize(static_cast<std::size_t>(need));
    }
    for (const Cand& c : cands) {
      bool kept = w.table.Insert(row, digit, c.rec);
      TMESH_DCHECK(kept);
      (void)kept;
      rev_holders_[c.rec.id].insert(w.id);
      ++have;
    }
  }
  if (have < k) {
    UnderfullInsert(node, w.id);
  } else {
    UnderfullErase(node, w.id);
  }
}

void Directory::BuildOwnTable(MemberInfo& me) {
  // Runs before me is in the ID tree, so every bucket consists of existing
  // members only and the (i, own-digit) entries stay empty.
  for (int i = 0; i < params_.digits; ++i) {
    DigitString prefix = me.id.Prefix(i);
    for (int j : id_tree_.ChildDigits(prefix)) {
      if (j == me.id.digit(i)) continue;
      Refill(me, i, j);
    }
  }
}

void Directory::PropagateJoinScan(const MemberInfo& me) {
  for (auto& [wid, w] : members_) {
    if (wid == me.id) continue;
    ++stats_.holders_examined;
    if (!w.alive) continue;
    int cpl = me.id.CommonPrefixLen(wid);
    TMESH_DCHECK(cpl < params_.digits);  // IDs are unique
    const NeighborTable::Entry* e = w.table.entry(cpl, me.id.digit(cpl));
    if (e == nullptr || static_cast<int>(e->size()) < params_.capacity) {
      InsertIntoHolder(w, cpl, me.id.digit(cpl), me);
    }
  }
}

void Directory::PropagateJoinIndexed(const MemberInfo& me,
                                     const std::vector<bool>& fresh_level) {
  const UserId& id = me.id;
  for (int len = 1; len <= params_.digits; ++len) {
    const DigitString node = id.Prefix(len);
    const int row = len - 1;
    const int digit = id.digit(row);
    if (fresh_level[static_cast<std::size_t>(len)]) {
      // First member of a brand-new subtree: Definition 3 now requires this
      // record in every alive member under the parent prefix — an inherent
      // O(output) broadcast. (Deeper fresh levels have only `me` under the
      // parent, so their loops are empty.)
      const std::vector<UserId>& sibs = id_tree_.UsersRef(id.Prefix(row));
      for (const UserId& uid : sibs) {
        if (uid == id) continue;
        ++stats_.holders_examined;
        MemberInfo& w = InfoMut(uid);
        if (!w.alive) continue;
        InsertIntoHolder(w, row, digit, me);
      }
    } else {
      auto uf = underfull_.find(node);
      if (uf == underfull_.end()) continue;
      // Copy: InsertIntoHolder edits the set when an entry reaches K.
      std::vector<UserId> holders(uf->second.begin(), uf->second.end());
      for (const UserId& wid : holders) {
        ++stats_.holders_examined;
        MemberInfo& w = InfoMut(wid);
        if (!w.alive) {
          UnderfullErase(node, wid);  // lazy drop of failed holders
          continue;
        }
        InsertIntoHolder(w, row, digit, me);
      }
    }
  }
}

void Directory::AddMember(const UserId& id, HostId host, SimTime join_time) {
  TMESH_CHECK(id.size() == params_.digits);
  TMESH_CHECK_MSG(!Contains(id), "duplicate member ID " + id.ToString());
  TMESH_CHECK(host >= 0 && host < net_.host_count());
  TMESH_CHECK_MSG(host_index_.count(host) == 0, "host already a member");
  TMESH_CHECK(host != server_host_);

  auto [it, inserted] = members_.try_emplace(
      id, id, host, join_time, params_.digits, params_.base, params_.capacity);
  TMESH_CHECK(inserted);
  MemberInfo& me = it->second;
  ++stats_.joins;

  BuildOwnTable(me);

  // The server's table keeps the legacy nearest-K semantics: one insert
  // attempt per join (evicting the worst record when full) is O(1).
  NeighborRecord server_rec;
  server_rec.id = id;
  server_rec.host = host;
  server_rec.join_time = join_time;
  server_rec.rtt_ms = net_.RttHosts(server_host_, host);
  server_table_.Insert(0, id.digit(0), server_rec);

  // Record which prefix nodes this join creates, then insert and offer the
  // new record to exactly the tables Definition 3 obliges to take it.
  std::vector<bool> fresh_level(static_cast<std::size_t>(params_.digits) + 1,
                                false);
  for (int len = 1; len <= params_.digits; ++len) {
    fresh_level[static_cast<std::size_t>(len)] =
        !id_tree_.NodeExists(id.Prefix(len));
  }
  id_tree_.Insert(id);
  if (admission_.policy == AdmissionPolicy::kScanReference) {
    PropagateJoinScan(me);
  } else {
    PropagateJoinIndexed(me, fresh_level);
  }

  host_index_[host] = id;
  AliveInsert(id);
  ++alive_count_;
}

void Directory::AliveInsert(const UserId& id) {
  TMESH_CHECK(alive_ids_.insert(id).second);
}

void Directory::AliveErase(const UserId& id) {
  TMESH_CHECK(alive_ids_.erase(id) == 1);
}

bool Directory::IsAlive(const UserId& id) const {
  auto it = members_.find(id);
  return it != members_.end() && it->second.alive;
}

const MemberInfo& Directory::Info(const UserId& id) const {
  auto it = members_.find(id);
  TMESH_CHECK_MSG(it != members_.end(), "unknown member " + id.ToString());
  return it->second;
}

const UserId* Directory::IdOfHost(HostId h) const {
  auto it = host_index_.find(h);
  return it == host_index_.end() ? nullptr : &it->second;
}

std::vector<UserId> Directory::AliveMembers() const {
  // std::set iterates in sorted order, which is exactly the old walk's
  // std::map iteration order.
  return std::vector<UserId>(alive_ids_.begin(), alive_ids_.end());
}

std::optional<UserId> Directory::RandomAliveMember(Rng& rng) const {
  if (alive_count_ == 0) return std::nullopt;
  // Indexed draw over the sorted alive set: the same index resolves to the
  // same ID as the previous sorted-vector (and original std::map walk)
  // implementation, so the random picks are unchanged. The O(index) advance
  // only runs for simulator-scale groups; the big-N campaigns never call
  // this, and keeping the set makes admission O(log N) rather than paying
  // the vector's O(N) middle-insert per join.
  auto it = alive_ids_.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(rng.UniformInt(
                       0, static_cast<std::int64_t>(alive_ids_.size()) - 1)));
  return *it;
}

void Directory::RemoveFromAllTables(const UserId& id) {
  if (admission_.policy == AdmissionPolicy::kScanReference) {
    for (auto& [wid, w] : members_) {
      if (wid == id) continue;
      ++stats_.holders_examined;
      int cpl = id.CommonPrefixLen(wid);
      if (w.table.Remove(cpl, id.digit(cpl), id)) {
        ++stats_.holders_updated;
        if (w.alive) Refill(w, cpl, id.digit(cpl));
      }
    }
  } else {
    auto rv = rev_holders_.find(id);
    if (rv != rev_holders_.end()) {
      // The set itself is stable while refills add *other* members' holder
      // edges (node-based map: no element moves on rehash).
      const IdSet& holders = rv->second;
      for (const UserId& wid : holders) {
        ++stats_.holders_examined;
        MemberInfo& w = InfoMut(wid);
        int cpl = id.CommonPrefixLen(wid);
        bool removed = w.table.Remove(cpl, id.digit(cpl), id);
        TMESH_DCHECK(removed);
        (void)removed;
        ++stats_.holders_updated;
        if (w.alive) Refill(w, cpl, id.digit(cpl));
      }
    }
  }
  rev_holders_.erase(id);
  if (server_table_.Remove(0, id.digit(0), id)) {
    RefillServer(id.digit(0));
  }
}

void Directory::PurgeMember(const UserId& id) {
  ++stats_.removals;
  MemberInfo& gone = InfoMut(id);
  // Unregister the departing member's own underfull entries while its
  // prefix nodes are still queryable.
  for (int i = 0; i < params_.digits; ++i) {
    DigitString prefix = id.Prefix(i);
    for (int j : id_tree_.ChildDigits(prefix)) {
      if (j == id.digit(i)) continue;
      UnderfullErase(prefix.Child(j), id);
    }
  }
  // The departing member stops holding anyone in its own table.
  for (int i = 0; i < gone.table.rows(); ++i) {
    for (const auto& [digit, entry] : gone.table.row(i)) {
      (void)digit;
      for (const NeighborRecord& rec : entry) {
        auto rv = rev_holders_.find(rec.id);
        TMESH_DCHECK(rv != rev_holders_.end());
        if (rv != rev_holders_.end()) {
          rv->second.erase(id);
          if (rv->second.empty()) rev_holders_.erase(rv);
        }
      }
    }
  }
  // Underfull sets of subtrees that vanish with this member go wholesale;
  // any surviving entries that mapped there are emptied by the holder pass
  // below (the last member's record was their only possible content).
  std::vector<DigitString> vanishing;
  for (int len = 1; len <= params_.digits; ++len) {
    DigitString p = id.Prefix(len);
    if (id_tree_.CountWithPrefix(p) == 1) vanishing.push_back(p);
  }
  // Order matters: drop the member from the ID tree first so refills do not
  // consider it a candidate.
  id_tree_.Erase(id);
  for (const DigitString& p : vanishing) underfull_.erase(p);
  host_index_.erase(gone.host);
  RemoveFromAllTables(id);
  members_.erase(id);
}

void Directory::RemoveMember(UserId id) {
  TMESH_CHECK_MSG(Contains(id), "removing unknown member");
  if (Info(id).alive) {
    AliveErase(id);
    --alive_count_;
  }
  PurgeMember(id);
}

void Directory::MarkFailed(UserId id) {
  auto it = members_.find(id);
  TMESH_CHECK(it != members_.end());
  TMESH_CHECK_MSG(it->second.alive, "member already failed");
  it->second.alive = false;
  // The member stays in the ID tree, in other tables, and (lazily) in the
  // underfull sets until RepairFailure purges it.
  AliveErase(id);
  --alive_count_;
}

void Directory::RepairFailure(UserId id) {
  auto it = members_.find(id);
  TMESH_CHECK(it != members_.end());
  TMESH_CHECK_MSG(!it->second.alive, "repairing a live member");
  PurgeMember(id);
}

void Directory::RefillServer(int digit) {
  const NeighborTable::Entry* e = server_table_.entry(0, digit);
  int have = e == nullptr ? 0 : static_cast<int>(e->size());
  if (have >= params_.capacity) return;
  DigitString subtree = DigitString{}.Child(digit);
  // Exact global-nearest refill (legacy semantics). The scan is O(bucket),
  // but it only runs when a removed member actually sat in the server's
  // K·B-record table, so the amortized cost per removal is O(K).
  const NeighborRecord* best = nullptr;
  NeighborRecord best_rec;
  for (const UserId& cand : id_tree_.UsersRef(subtree)) {
    const MemberInfo& c = Info(cand);
    if (!c.alive) continue;
    if (server_table_.ContainsNeighbor(0, digit, cand)) continue;
    ++stats_.server_candidates;
    NeighborRecord rec = MakeRecord(c, server_host_);
    if (best == nullptr || rec.rtt_ms < best_rec.rtt_ms) {
      best_rec = rec;
      best = &best_rec;
    }
  }
  if (best != nullptr) {
    server_table_.Insert(0, digit, best_rec);
    RefillServer(digit);  // keep filling until K or candidates exhausted
  }
}

std::vector<NeighborRecord> Directory::QueryRecords(
    const UserId& w, const DigitString& target_prefix) const {
  const MemberInfo& info = Info(w);
  std::vector<NeighborRecord> out;
  if (target_prefix.IsPrefixOf(w)) {
    out.push_back(MakeRecord(info, info.host));  // rtt 0 to self; id is what matters
  }
  for (int i = 0; i < info.table.rows(); ++i) {
    for (const auto& [digit, entry] : info.table.row(i)) {
      (void)digit;
      for (const NeighborRecord& rec : entry) {
        if (target_prefix.IsPrefixOf(rec.id)) out.push_back(rec);
      }
    }
  }
  return out;
}

void Directory::CheckKConsistency() const {
  const int d = params_.digits;
  const int k = params_.capacity;
  auto check_table = [&](const NeighborTable& table, const UserId* owner_id,
                         int rows) {
    for (int i = 0; i < rows; ++i) {
      DigitString prefix =
          owner_id == nullptr ? DigitString{} : owner_id->Prefix(i);
      const std::set<int>& digits = id_tree_.ChildDigits(prefix);
      // (1) Entries present where the definition requires them.
      for (int j : digits) {
        if (owner_id != nullptr && j == owner_id->digit(i)) {
          TMESH_CHECK_MSG(table.entry(i, j) == nullptr,
                          "(i, own-digit) entry must be empty");
          continue;
        }
        int m = id_tree_.CountWithPrefix(prefix.Child(j));
        const NeighborTable::Entry* e = table.entry(i, j);
        int have = e == nullptr ? 0 : static_cast<int>(e->size());
        TMESH_CHECK_MSG(have == std::min(k, m),
                        "entry must hold min(K, m) neighbors");
        if (e == nullptr) continue;
        double prev = -1.0;
        for (const NeighborRecord& rec : *e) {
          TMESH_CHECK_MSG(prefix.Child(j).IsPrefixOf(rec.id),
                          "record outside the entry's ID subtree");
          TMESH_CHECK_MSG(Contains(rec.id), "stale record of absent member");
          TMESH_CHECK_MSG(rec.rtt_ms >= prev, "entry not sorted by RTT");
          prev = rec.rtt_ms;
        }
      }
      // (2) No entries outside existing subtrees.
      for (const auto& [j, e] : table.row(i)) {
        (void)e;
        TMESH_CHECK_MSG(digits.count(j) > 0,
                        "entry for an empty ID subtree");
      }
    }
  };

  for (const auto& [id, m] : members_) {
    if (!m.alive) continue;
    check_table(m.table, &id, d);
  }
  check_table(server_table_, nullptr, 1);
}

void Directory::CheckIndexIntegrity() const {
  const int k = params_.capacity;
  // (1) The reverse holder index matches member-table contents exactly.
  std::size_t table_records = 0;
  for (const auto& [wid, w] : members_) {
    for (int i = 0; i < w.table.rows(); ++i) {
      for (const auto& [digit, entry] : w.table.row(i)) {
        (void)digit;
        for (const NeighborRecord& rec : entry) {
          ++table_records;
          auto rv = rev_holders_.find(rec.id);
          TMESH_CHECK_MSG(
              rv != rev_holders_.end() && rv->second.count(wid) > 0,
              "record missing from the reverse holder index");
        }
      }
    }
  }
  std::size_t rev_records = 0;
  for (const auto& [id, holders] : rev_holders_) {
    TMESH_CHECK_MSG(Contains(id), "reverse index entry for absent member");
    TMESH_CHECK_MSG(!holders.empty(), "empty reverse index entry retained");
    rev_records += holders.size();
  }
  TMESH_CHECK_MSG(rev_records == table_records,
                  "reverse holder index does not match table contents");

  // (2) Underfull-set soundness: registered alive holders really do have a
  // below-K entry mapped to an existing node they sit beside.
  for (const auto& [node, holders] : underfull_) {
    TMESH_CHECK_MSG(id_tree_.NodeExists(node),
                    "underfull set for a vanished ID-tree node");
    TMESH_CHECK_MSG(!holders.empty(), "empty underfull set retained");
    const int row = node.size() - 1;
    for (const UserId& wid : holders) {
      auto mi = members_.find(wid);
      TMESH_CHECK_MSG(mi != members_.end(),
                      "underfull holder is not a member");
      const MemberInfo& w = mi->second;
      if (!w.alive) continue;  // dropped lazily on the next join there
      TMESH_CHECK_MSG(w.id.Prefix(row) == node.Prefix(row) &&
                          w.id.digit(row) != node.digit(row),
                      "underfull holder outside the node's parent subtree");
      const NeighborTable::Entry* e = w.table.entry(row, node.digit(row));
      TMESH_CHECK_MSG(e == nullptr || static_cast<int>(e->size()) < k,
                      "underfull set holds a full entry");
    }
  }

  // (3) Completeness: every alive member's below-K entry slot (including
  // still-absent entries for existing sibling subtrees) is registered, so a
  // join into that subtree reaches it.
  for (const auto& [wid, w] : members_) {
    if (!w.alive) continue;
    for (int i = 0; i < params_.digits; ++i) {
      DigitString prefix = w.id.Prefix(i);
      for (int j : id_tree_.ChildDigits(prefix)) {
        if (j == w.id.digit(i)) continue;
        const NeighborTable::Entry* e = w.table.entry(i, j);
        int have = e == nullptr ? 0 : static_cast<int>(e->size());
        if (have >= k) continue;
        auto uf = underfull_.find(prefix.Child(j));
        TMESH_CHECK_MSG(uf != underfull_.end() && uf->second.count(wid) > 0,
                        "below-K entry missing from its underfull set");
      }
    }
  }
}

}  // namespace tmesh
