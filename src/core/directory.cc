#include "core/directory.h"

#include <algorithm>

namespace tmesh {

Directory::Directory(const Network& net, const GroupParams& params,
                     HostId server_host)
    : net_(net),
      params_(params),
      server_host_(server_host),
      id_tree_(params.digits, params.base),
      server_table_(1, params.base, params.capacity) {
  TMESH_CHECK(params.digits >= 1 && params.digits <= kMaxDigits);
  TMESH_CHECK(params.base >= 2 && params.base <= kMaxBase);
  TMESH_CHECK(params.capacity >= 1);
  TMESH_CHECK(server_host >= 0 && server_host < net.host_count());
}

NeighborRecord Directory::MakeRecord(const MemberInfo& of,
                                     HostId owner_host) const {
  NeighborRecord rec;
  rec.id = of.id;
  rec.host = of.host;
  rec.join_time = of.join_time;
  rec.rtt_ms = net_.RttHosts(owner_host, of.host);
  return rec;
}

void Directory::AddMember(const UserId& id, HostId host, SimTime join_time) {
  TMESH_CHECK(id.size() == params_.digits);
  TMESH_CHECK_MSG(!Contains(id), "duplicate member ID " + id.ToString());
  TMESH_CHECK(host >= 0 && host < net_.host_count());
  TMESH_CHECK_MSG(host_index_.count(host) == 0, "host already a member");
  TMESH_CHECK(host != server_host_);

  auto [it, inserted] = members_.try_emplace(
      id, id, host, join_time, params_.digits, params_.base, params_.capacity);
  TMESH_CHECK(inserted);
  MemberInfo& me = it->second;

  for (auto& [wid, w] : members_) {
    if (wid == id || !w.alive) continue;
    int cpl = id.CommonPrefixLen(wid);
    TMESH_DCHECK(cpl < params_.digits);  // IDs are unique
    // w belongs to my (cpl, wid[cpl])-ID subtree and vice versa.
    me.table.Insert(cpl, wid.digit(cpl), MakeRecord(w, host));
    w.table.Insert(cpl, id.digit(cpl), MakeRecord(me, w.host));
  }

  NeighborRecord server_rec;
  server_rec.id = id;
  server_rec.host = host;
  server_rec.join_time = join_time;
  server_rec.rtt_ms = net_.RttHosts(server_host_, host);
  server_table_.Insert(0, id.digit(0), server_rec);

  id_tree_.Insert(id);
  host_index_[host] = id;
  AliveInsert(id);
  ++alive_count_;
}

void Directory::AliveInsert(const UserId& id) {
  alive_ids_.insert(
      std::lower_bound(alive_ids_.begin(), alive_ids_.end(), id), id);
}

void Directory::AliveErase(const UserId& id) {
  auto it = std::lower_bound(alive_ids_.begin(), alive_ids_.end(), id);
  TMESH_CHECK(it != alive_ids_.end() && *it == id);
  alive_ids_.erase(it);
}

bool Directory::IsAlive(const UserId& id) const {
  auto it = members_.find(id);
  return it != members_.end() && it->second.alive;
}

const MemberInfo& Directory::Info(const UserId& id) const {
  auto it = members_.find(id);
  TMESH_CHECK_MSG(it != members_.end(), "unknown member " + id.ToString());
  return it->second;
}

const UserId* Directory::IdOfHost(HostId h) const {
  auto it = host_index_.find(h);
  return it == host_index_.end() ? nullptr : &it->second;
}

std::vector<UserId> Directory::AliveMembers() const {
  // alive_ids_ is kept sorted, which is exactly the old walk's std::map
  // iteration order.
  return alive_ids_;
}

std::optional<UserId> Directory::RandomAliveMember(Rng& rng) const {
  if (alive_count_ == 0) return std::nullopt;
  // A direct indexed draw over the maintained sorted alive list: O(log N)
  // per call instead of materializing all members, same draw for the same
  // rng state as the previous implementation.
  return alive_ids_[static_cast<std::size_t>(rng.UniformInt(
      0, static_cast<std::int64_t>(alive_ids_.size()) - 1))];
}

void Directory::RemoveFromAllTables(const UserId& id) {
  const MemberInfo& gone = Info(id);
  for (auto& [wid, w] : members_) {
    if (wid == id) continue;
    int cpl = id.CommonPrefixLen(wid);
    if (w.table.Remove(cpl, id.digit(cpl), id)) {
      if (w.alive) Refill(w, cpl, id.digit(cpl));
    }
  }
  if (server_table_.Remove(0, id.digit(0), id)) {
    RefillServer(id.digit(0));
  }
  (void)gone;
}

void Directory::RemoveMember(UserId id) {
  TMESH_CHECK_MSG(Contains(id), "removing unknown member");
  bool was_alive = Info(id).alive;
  HostId host = Info(id).host;
  // Order matters: drop the member from the ID tree first so refills do not
  // consider it a candidate.
  id_tree_.Erase(id);
  host_index_.erase(host);
  if (was_alive) {
    AliveErase(id);
    --alive_count_;
  }
  // Keep the MemberInfo alive during table cleanup (its digits drive the
  // per-member entry lookups), then erase it.
  RemoveFromAllTables(id);
  members_.erase(id);
}

void Directory::MarkFailed(UserId id) {
  auto it = members_.find(id);
  TMESH_CHECK(it != members_.end());
  TMESH_CHECK_MSG(it->second.alive, "member already failed");
  it->second.alive = false;
  AliveErase(id);
  --alive_count_;
}

void Directory::RepairFailure(UserId id) {
  auto it = members_.find(id);
  TMESH_CHECK(it != members_.end());
  TMESH_CHECK_MSG(!it->second.alive, "repairing a live member");
  id_tree_.Erase(id);
  host_index_.erase(it->second.host);
  RemoveFromAllTables(id);
  members_.erase(it);
}

void Directory::Refill(MemberInfo& w, int row, int digit) {
  const NeighborTable::Entry* e = w.table.entry(row, digit);
  int have = e == nullptr ? 0 : static_cast<int>(e->size());
  if (have >= params_.capacity) return;
  DigitString subtree = w.id.Prefix(row).Child(digit);
  // Candidates: alive members of the subtree not already in the entry.
  const NeighborRecord* best = nullptr;
  NeighborRecord best_rec;
  for (const UserId& cand : id_tree_.UsersWithPrefix(subtree)) {
    const MemberInfo& c = Info(cand);
    if (!c.alive) continue;
    if (w.table.ContainsNeighbor(row, digit, cand)) continue;
    NeighborRecord rec = MakeRecord(c, w.host);
    if (best == nullptr || rec.rtt_ms < best_rec.rtt_ms) {
      best_rec = rec;
      best = &best_rec;
    }
  }
  if (best != nullptr) {
    w.table.Insert(row, digit, best_rec);
    Refill(w, row, digit);  // keep filling until K or candidates exhausted
  }
}

void Directory::RefillServer(int digit) {
  const NeighborTable::Entry* e = server_table_.entry(0, digit);
  int have = e == nullptr ? 0 : static_cast<int>(e->size());
  if (have >= params_.capacity) return;
  DigitString subtree = DigitString{}.Child(digit);
  const NeighborRecord* best = nullptr;
  NeighborRecord best_rec;
  for (const UserId& cand : id_tree_.UsersWithPrefix(subtree)) {
    const MemberInfo& c = Info(cand);
    if (!c.alive) continue;
    if (server_table_.ContainsNeighbor(0, digit, cand)) continue;
    NeighborRecord rec = MakeRecord(c, server_host_);
    if (best == nullptr || rec.rtt_ms < best_rec.rtt_ms) {
      best_rec = rec;
      best = &best_rec;
    }
  }
  if (best != nullptr) {
    server_table_.Insert(0, digit, best_rec);
    RefillServer(digit);
  }
}

std::vector<NeighborRecord> Directory::QueryRecords(
    const UserId& w, const DigitString& target_prefix) const {
  const MemberInfo& info = Info(w);
  std::vector<NeighborRecord> out;
  if (target_prefix.IsPrefixOf(w)) {
    out.push_back(MakeRecord(info, info.host));  // rtt 0 to self; id is what matters
  }
  for (int i = 0; i < info.table.rows(); ++i) {
    for (const auto& [digit, entry] : info.table.row(i)) {
      (void)digit;
      for (const NeighborRecord& rec : entry) {
        if (target_prefix.IsPrefixOf(rec.id)) out.push_back(rec);
      }
    }
  }
  return out;
}

void Directory::CheckKConsistency() const {
  const int d = params_.digits;
  const int k = params_.capacity;
  auto check_table = [&](const NeighborTable& table, const UserId* owner_id,
                         int rows) {
    for (int i = 0; i < rows; ++i) {
      DigitString prefix =
          owner_id == nullptr ? DigitString{} : owner_id->Prefix(i);
      const std::set<int>& digits = id_tree_.ChildDigits(prefix);
      // (1) Entries present where the definition requires them.
      for (int j : digits) {
        if (owner_id != nullptr && j == owner_id->digit(i)) {
          TMESH_CHECK_MSG(table.entry(i, j) == nullptr,
                          "(i, own-digit) entry must be empty");
          continue;
        }
        int m = id_tree_.CountWithPrefix(prefix.Child(j));
        const NeighborTable::Entry* e = table.entry(i, j);
        int have = e == nullptr ? 0 : static_cast<int>(e->size());
        TMESH_CHECK_MSG(have == std::min(k, m),
                        "entry must hold min(K, m) neighbors");
        if (e == nullptr) continue;
        double prev = -1.0;
        for (const NeighborRecord& rec : *e) {
          TMESH_CHECK_MSG(prefix.Child(j).IsPrefixOf(rec.id),
                          "record outside the entry's ID subtree");
          TMESH_CHECK_MSG(Contains(rec.id), "stale record of absent member");
          TMESH_CHECK_MSG(rec.rtt_ms >= prev, "entry not sorted by RTT");
          prev = rec.rtt_ms;
        }
      }
      // (2) No entries outside existing subtrees.
      for (const auto& [j, e] : table.row(i)) {
        (void)e;
        TMESH_CHECK_MSG(digits.count(j) > 0,
                        "entry for an empty ID subtree");
      }
    }
  };

  for (const auto& [id, m] : members_) {
    if (!m.alive) continue;
    check_table(m.table, &id, d);
  }
  check_table(server_table_, nullptr, 1);
}

}  // namespace tmesh
