// The distributed user-ID assignment protocol (§3.1).
//
// A joining user determines its ID digit by digit. For digit i it
//   (1) collects up to P user records per (i,j)-ID subtree by querying users
//       it already knows (each query returns the neighbors of the queried
//       user's table matching the target prefix);
//   (2) measures gateway-router RTTs r(u,w) to the collected users;
//   (3) computes, per subtree j, the F-percentile f_{i,j} of those RTTs and
//       compares the minimum against the delay threshold R_{i+1}: at or
//       under the threshold it adopts that digit and recurses one level
//       deeper; over the threshold it asks the key server for a fresh
//       subtree (digits i..D-1);
//   (4) finally asks the key server for the last digit, which the server
//       picks to keep IDs unique (with the footnote-3 fallback when the
//       level-(D-1) subtree is full).
//
// The paper's defaults: P = 10, F = 90-percentile, R = (150, 30, 9, 3) ms
// for D = 5. Probing cost is O(P·D·N^{1/D}) messages on average (§3.1.4) —
// the stats struct counts queries and RTT probes so the bench can verify.
#pragma once

#include <optional>

#include "common/rng.h"
#include "core/directory.h"
#include "topology/gnp.h"

namespace tmesh {

struct IdAssignParams {
  int collect_target = 10;     // P
  double percentile = 90.0;    // F
  // R_1 .. R_{D-1} in ms; must have exactly D-1 entries.
  std::vector<double> thresholds_ms = {150.0, 30.0, 9.0, 3.0};
  // Optional GNP model (§5): when set, gateway RTTs are *estimated* from
  // coordinates instead of probed — zero probe traffic, at the price of the
  // embedding's estimation error.
  const GnpModel* gnp = nullptr;
};

struct IdAssignStats {
  int queries = 0;      // user-to-user record queries (step 1)
  int rtt_probes = 0;   // gateway RTT measurements (step 2)
  int digits_self_determined = 0;  // digits chosen by proximity (step 3)
  bool server_assigned_tail = false;  // fell through to the key server early
};

class IdAssigner {
 public:
  // `seed` drives the random first contact and the server's random choice
  // among unused digits.
  IdAssigner(Directory& directory, IdAssignParams params, std::uint64_t seed);

  // Determines an ID for a user at `joiner` (not yet a member). Returns
  // nullopt only if the ID space is exhausted. Does NOT add the member to
  // the directory — callers decide when the join completes.
  std::optional<UserId> AssignId(HostId joiner, IdAssignStats* stats = nullptr);

  // §5's GNP variant: "if the key server knows the GNP coordinates of all
  // the users, it can determine the ID for a joining user by centralized
  // computing." The oracle equivalent: the server applies the same
  // F-percentile/threshold rule over *all* members of each subtree — no
  // queries, no sampling error, no probe traffic from the joiner.
  std::optional<UserId> AssignIdCentralized(HostId joiner,
                                            IdAssignStats* stats = nullptr);

 private:
  // Key-server assignment of digits [from_pos, D-1] under `prefix`
  // (prefix.size() == from_pos): prefers an unused digit (fresh subtree,
  // rest zeros); when every digit is occupied, descends into the least
  // populated subtree; backtracks across siblings on dead ends.
  std::optional<UserId> ServerAssignTail(const DigitString& prefix,
                                         int from_pos);
  // Footnote 3: make the whole ID unique when the target level-(D-1)
  // subtree is full, by re-choosing ever earlier digits.
  std::optional<UserId> ServerAssignLastDigit(const DigitString& prefix);
  // Gateway RTT: probed from the network, or estimated from GNP
  // coordinates when a model is configured.
  double GatewayRtt(HostId a, HostId b) const;

  Directory& dir_;
  IdAssignParams params_;
  Rng rng_;
};

}  // namespace tmesh
