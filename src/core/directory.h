// Group membership and neighbor-table maintenance.
//
// The Directory plays the role the Silk join/leave protocols [15, 12] play
// in the real system: it keeps every member's neighbor table K-consistent
// (Definition 3) across joins, leaves, and failure recoveries. The paper
// itself runs its simulations this way — "the join and leave protocols of
// T-mesh are based on the Silk protocols, but simplified to improve
// simulation efficiency" (§4) and "we use a centralized controller to
// simulate the J joins and L leaves" (§4.2) — so a centralized, incrementally
// maintained view is the faithful substrate here, and the K-consistency
// property is what the tests pin down.
//
// Admission discipline (see DESIGN.md "Indexed directory admission"): each
// (i,j) entry holds min(K, m) records from the right ID subtree in ascending
// RTT order — Definition 3 exactly — with the *choice* of records made by
// bounded canonical candidate windows over the ID-tree bucket lists rather
// than a global nearest-K scan, and no eviction on later joins (a full entry
// stays as-is; a joiner is only offered to entries still below K). Two
// interchangeable engines implement this one discipline:
//   - AdmissionPolicy::kIndexed (default): prefix-bucket index — a reverse
//     holder index plus per-node underfull-entry sets — so AddMember and
//     RemoveMember touch only the members whose tables actually change.
//   - AdmissionPolicy::kScanReference: the retained all-members scan, kept
//     as the differential-test oracle; byte-identical tables by design.
// The key server's own table keeps the exact legacy semantics (nearest-K per
// first digit with eviction on join, global-nearest refill on removal).
//
// Failure model: MarkFailed() marks a member dead *without* repairing any
// tables (the window between a crash and its detection); forwarding then
// relies on the K-1 backup neighbors per entry (§2.3). RepairFailure()
// completes recovery, restoring K-consistency among the survivors.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/digit_string.h"
#include "common/rng.h"
#include "core/group_view.h"
#include "core/id_tree.h"
#include "core/neighbor_table.h"
#include "sim/simulator.h"
#include "topology/network.h"

namespace tmesh {

struct MemberInfo {
  UserId id;
  HostId host = kNoHost;
  SimTime join_time = 0;
  bool alive = true;
  NeighborTable table;

  MemberInfo(const UserId& u, HostId h, SimTime t, int rows, int base, int cap)
      : id(u), host(h), join_time(t), table(rows, base, cap) {}
};

// How AddMember/RemoveMember locate the neighbor-table entries they must
// update. Both policies implement the same admission discipline and produce
// byte-identical tables (pinned by tests/directory_test.cc's differential
// suite); they differ only in cost.
enum class AdmissionPolicy {
  kIndexed,        // prefix-bucket index: O(touched members) per operation
  kScanReference,  // all-members scan: O(N) per operation (test oracle)
};

struct AdmissionOptions {
  AdmissionPolicy policy = AdmissionPolicy::kIndexed;
  // Canonical candidate window: entry builds and refills RTT-probe at most
  // this many eligible candidates, in ID-tree bucket order. 0 means
  // 4 * capacity. Must end up >= capacity so windowed picks still reach
  // min(K, m) records per entry.
  int window = 0;
};

class Directory : public GroupView {
 public:
  Directory(const Network& net, const GroupParams& params, HostId server_host,
            AdmissionOptions admission = {});

  const GroupParams& params() const override { return params_; }
  HostId server_host() const override { return server_host_; }
  const Network& network() const override { return net_; }
  const AdmissionOptions& admission() const { return admission_; }

  // --- membership -----------------------------------------------------
  void AddMember(const UserId& id, HostId host, SimTime join_time);
  // Graceful leave: the member's record is deleted from all tables and
  // every shrunk entry is refilled (§3.2, Silk leave protocol).
  void RemoveMember(UserId id);  // by value: callers often pass references
                                 // into storage this call mutates
  // Crash: member stops responding; no table is updated yet.
  void MarkFailed(UserId id);
  // Failure recovery: the failed member's records are purged and entries
  // refilled from live members (§3.2, [13]).
  void RepairFailure(UserId id);

  bool Contains(const UserId& id) const override {
    return members_.count(id) > 0;
  }
  bool IsAlive(const UserId& id) const override;
  int member_count() const { return static_cast<int>(members_.size()); }
  int alive_count() const { return alive_count_; }

  // --- lookup ----------------------------------------------------------
  const MemberInfo& Info(const UserId& id) const;
  const NeighborTable& TableOf(const UserId& id) const override {
    return Info(id).table;
  }
  const NeighborTable& ServerTable() const override { return server_table_; }
  HostId HostOf(const UserId& id) const override { return Info(id).host; }
  const UserId* IdOfHost(HostId h) const;
  const IdTree& id_tree() const { return id_tree_; }
  const std::map<UserId, MemberInfo>& members() const { return members_; }

  std::vector<UserId> AliveMembers() const;
  // A uniformly random alive member (what the key server hands a joining
  // user as its first contact, §3.1.1). Nullopt if the group is empty.
  std::optional<UserId> RandomAliveMember(Rng& rng) const;

  // The records a member `w` would return for a query with `target_prefix`
  // (§3.1.1): every neighbor in w's table whose ID has the prefix, plus w's
  // own record if it matches. Only alive neighbors respond to the follow-up
  // RTT probes, but the query returns whatever the table holds.
  std::vector<NeighborRecord> QueryRecords(const UserId& w,
                                           const DigitString& target_prefix) const;

  // --- observability ----------------------------------------------------
  // Monotonic operation counters; tests snapshot deltas to pin admission
  // complexity (touched members per join must not scale with N on the
  // indexed policy).
  struct OpStats {
    std::int64_t joins = 0;
    std::int64_t removals = 0;    // RemoveMember + RepairFailure purges
    std::int64_t holders_examined = 0;   // members inspected for an update
    std::int64_t holders_updated = 0;    // member-table writes on others
    std::int64_t candidates_probed = 0;  // windowed RTT probes (build/refill)
    std::int64_t refill_calls = 0;
    std::int64_t server_candidates = 0;  // server-table refill scans
  };
  const OpStats& op_stats() const { return stats_; }

  // --- invariants -------------------------------------------------------
  // Verifies Definition 3 (K-consistency) for every alive member and the
  // key server's table; throws on any violation. Only meaningful when no
  // unrepaired failures are outstanding.
  void CheckKConsistency() const;
  // Verifies the admission index against the tables it summarizes: the
  // reverse holder index matches table contents exactly, and every alive
  // member's below-K entry is registered in the underfull set of its ID-tree
  // node (so future joins reach it). O(N·D·B); test/debug only. Valid under
  // both policies — the scan path maintains the same index.
  void CheckIndexIntegrity() const;

 private:
  using IdSet = std::unordered_set<UserId>;

  MemberInfo& InfoMut(const UserId& id);
  void Refill(MemberInfo& w, int row, int digit);
  void RefillServer(int digit);
  NeighborRecord MakeRecord(const MemberInfo& of, HostId owner_host) const;
  // Build every entry of a brand-new member's own table via windowed picks.
  // Must run before the member is inserted into the ID tree.
  void BuildOwnTable(MemberInfo& me);
  // Insert `who`'s record into w's (row, digit) entry, which must be below
  // capacity, and maintain the reverse/underfull indexes.
  void InsertIntoHolder(MemberInfo& w, int row, int digit,
                        const MemberInfo& who);
  void PropagateJoinScan(const MemberInfo& me);
  void PropagateJoinIndexed(const MemberInfo& me,
                            const std::vector<bool>& fresh_level);
  void RemoveFromAllTables(const UserId& id);
  // Shared tail of RemoveMember/RepairFailure: index unregistration, ID-tree
  // erase, table purge, MemberInfo erase.
  void PurgeMember(const UserId& id);
  void UnderfullInsert(const DigitString& node, const UserId& holder);
  void UnderfullErase(const DigitString& node, const UserId& holder);

  // Incremental maintenance of the sorted alive-ID set. Sorted iteration
  // preserves the exact order (and therefore the exact RandomAliveMember
  // picks) of the original materialize-from-std::map implementation, while
  // insert/erase stay O(log N) — a sorted vector here cost an O(N) memmove
  // per admission, which dominated everything the indexed admission path
  // saved at 10^5 members.
  void AliveInsert(const UserId& id);
  void AliveErase(const UserId& id);

  const Network& net_;
  GroupParams params_;
  HostId server_host_;
  AdmissionOptions admission_;
  int window_;  // resolved candidate window (>= capacity)
  IdTree id_tree_;
  std::map<UserId, MemberInfo> members_;
  std::unordered_map<HostId, UserId> host_index_;
  NeighborTable server_table_;
  std::set<UserId> alive_ids_;  // mirrors {id : Info(id).alive}
  int alive_count_ = 0;
  OpStats stats_;

  // Reverse holder index: rev_holders_[x] = the members whose tables hold
  // x's record (the row is implied: cpl(holder, x)). Drives O(#holders)
  // removal. Maintained under both policies.
  std::unordered_map<UserId, IdSet> rev_holders_;
  // underfull_[node] = alive holders whose entry mapped to that ID-tree node
  // holds fewer than K records (including holders with no entry yet); these
  // are exactly the tables a join into `node` must update. Dead holders are
  // dropped lazily. Maintained under both policies.
  std::unordered_map<DigitString, IdSet> underfull_;
};

}  // namespace tmesh
