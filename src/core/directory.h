// Group membership and neighbor-table maintenance.
//
// The Directory plays the role the Silk join/leave protocols [15, 12] play
// in the real system: it keeps every member's neighbor table K-consistent
// (Definition 3) across joins, leaves, and failure recoveries. The paper
// itself runs its simulations this way — "the join and leave protocols of
// T-mesh are based on the Silk protocols, but simplified to improve
// simulation efficiency" (§4) and "we use a centralized controller to
// simulate the J joins and L leaves" (§4.2) — so a centralized, incrementally
// maintained view is the faithful substrate here, and the K-consistency
// property is what the tests pin down.
//
// Failure model: MarkFailed() marks a member dead *without* repairing any
// tables (the window between a crash and its detection); forwarding then
// relies on the K-1 backup neighbors per entry (§2.3). RepairFailure()
// completes recovery, restoring K-consistency among the survivors.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/digit_string.h"
#include "common/rng.h"
#include "core/group_view.h"
#include "core/id_tree.h"
#include "core/neighbor_table.h"
#include "sim/simulator.h"
#include "topology/network.h"

namespace tmesh {

struct MemberInfo {
  UserId id;
  HostId host = kNoHost;
  SimTime join_time = 0;
  bool alive = true;
  NeighborTable table;

  MemberInfo(const UserId& u, HostId h, SimTime t, int rows, int base, int cap)
      : id(u), host(h), join_time(t), table(rows, base, cap) {}
};

class Directory : public GroupView {
 public:
  Directory(const Network& net, const GroupParams& params, HostId server_host);

  const GroupParams& params() const override { return params_; }
  HostId server_host() const override { return server_host_; }
  const Network& network() const override { return net_; }

  // --- membership -----------------------------------------------------
  void AddMember(const UserId& id, HostId host, SimTime join_time);
  // Graceful leave: the member's record is deleted from all tables and
  // every shrunk entry is refilled (§3.2, Silk leave protocol).
  void RemoveMember(UserId id);  // by value: callers often pass references
                                 // into storage this call mutates
  // Crash: member stops responding; no table is updated yet.
  void MarkFailed(UserId id);
  // Failure recovery: the failed member's records are purged and entries
  // refilled from live members (§3.2, [13]).
  void RepairFailure(UserId id);

  bool Contains(const UserId& id) const override {
    return members_.count(id) > 0;
  }
  bool IsAlive(const UserId& id) const override;
  int member_count() const { return static_cast<int>(members_.size()); }
  int alive_count() const { return alive_count_; }

  // --- lookup ----------------------------------------------------------
  const MemberInfo& Info(const UserId& id) const;
  const NeighborTable& TableOf(const UserId& id) const override {
    return Info(id).table;
  }
  const NeighborTable& ServerTable() const override { return server_table_; }
  HostId HostOf(const UserId& id) const override { return Info(id).host; }
  const UserId* IdOfHost(HostId h) const;
  const IdTree& id_tree() const { return id_tree_; }
  const std::map<UserId, MemberInfo>& members() const { return members_; }

  std::vector<UserId> AliveMembers() const;
  // A uniformly random alive member (what the key server hands a joining
  // user as its first contact, §3.1.1). Nullopt if the group is empty.
  std::optional<UserId> RandomAliveMember(Rng& rng) const;

  // The records a member `w` would return for a query with `target_prefix`
  // (§3.1.1): every neighbor in w's table whose ID has the prefix, plus w's
  // own record if it matches. Only alive neighbors respond to the follow-up
  // RTT probes, but the query returns whatever the table holds.
  std::vector<NeighborRecord> QueryRecords(const UserId& w,
                                           const DigitString& target_prefix) const;

  // --- invariants -------------------------------------------------------
  // Verifies Definition 3 (K-consistency) for every alive member and the
  // key server's table; throws on any violation. Only meaningful when no
  // unrepaired failures are outstanding.
  void CheckKConsistency() const;

 private:
  void Refill(MemberInfo& w, int row, int digit);
  void RefillServer(int digit);
  NeighborRecord MakeRecord(const MemberInfo& of, HostId owner_host) const;
  void RemoveFromAllTables(const UserId& id);

  // Incremental maintenance of the sorted alive-ID list (insert/erase by
  // binary search). Keeping it sorted makes AliveMembers() O(1)-per-element
  // and RandomAliveMember() a single indexed draw, while preserving the
  // exact order (and therefore the exact random picks) of the previous
  // materialize-from-std::map implementation.
  void AliveInsert(const UserId& id);
  void AliveErase(const UserId& id);

  const Network& net_;
  GroupParams params_;
  HostId server_host_;
  IdTree id_tree_;
  std::map<UserId, MemberInfo> members_;
  std::unordered_map<HostId, UserId> host_index_;
  NeighborTable server_table_;
  std::vector<UserId> alive_ids_;  // sorted; mirrors {id : Info(id).alive}
  int alive_count_ = 0;
};

}  // namespace tmesh
