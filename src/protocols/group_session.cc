#include "protocols/group_session.h"

namespace tmesh {

GroupSession::GroupSession(const Network& net, HostId server_host,
                           SessionConfig cfg)
    : cfg_(cfg),
      dir_(net, cfg.group, server_host),
      assigner_(dir_, cfg.assign, cfg.seed),
      id_rng_(cfg.seed * 977 + 3),
      mtree_(cfg.group.digits),
      clusters_(cfg.group.digits) {
  if (cfg.with_nice) nice_.emplace(net, cfg.nice);
}

std::optional<UserId> GroupSession::RandomUnusedId() {
  // Rejection-sample only while the space is sparsely used; otherwise fall
  // back to the server's exhaustive search.
  for (int attempt = 0; attempt < 64; ++attempt) {
    UserId id;
    for (int i = 0; i < cfg_.group.digits; ++i) {
      id.Append(static_cast<int>(id_rng_.UniformInt(0, cfg_.group.base - 1)));
    }
    if (!dir_.Contains(id)) return id;
  }
  return std::nullopt;
}

std::optional<UserId> GroupSession::Join(HostId h, SimTime t,
                                         IdAssignStats* stats) {
  std::optional<UserId> id;
  if (cfg_.random_ids) {
    id = RandomUnusedId();
    if (stats != nullptr) *stats = IdAssignStats{};
  } else if (cfg_.centralized_assignment) {
    id = assigner_.AssignIdCentralized(h, stats);
  } else {
    id = assigner_.AssignId(h, stats);
  }
  if (!id.has_value()) return std::nullopt;
  dir_.AddMember(*id, h, t);
  mtree_.Join(*id);
  clusters_.Join(*id, t);
  if (nice_) nice_->Join(h);
  return id;
}

void GroupSession::Leave(UserId id) {
  HostId h = dir_.HostOf(id);
  dir_.RemoveMember(id);
  mtree_.Leave(id);
  clusters_.Leave(id);
  if (nice_) nice_->Leave(h);
}

void GroupSession::LeaveHost(HostId h) {
  const UserId* id = dir_.IdOfHost(h);
  TMESH_CHECK_MSG(id != nullptr, "host is not a member");
  Leave(*id);
}

void GroupSession::FlushRekeyState() {
  (void)mtree_.Rekey();
  (void)clusters_.Rekey();
}

}  // namespace tmesh
