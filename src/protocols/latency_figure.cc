#include "protocols/latency_figure.h"

#include <cstdio>

#include "metrics/report.h"
#include "sim/replica_runner.h"
#include "topology/gtitm.h"
#include "topology/planetlab.h"

namespace tmesh {

std::unique_ptr<Network> MakeFigureNetwork(FigureTopology topo, int hosts,
                                           std::uint64_t seed) {
  if (topo == FigureTopology::kPlanetLab) {
    PlanetLabParams p;
    p.hosts = hosts;
    p.seed = seed;
    return std::make_unique<PlanetLabNetwork>(p);
  }
  GtItmParams p;
  p.seed = seed;
  return std::make_unique<GtItmNetwork>(p, hosts, seed * 31 + 1);
}

void PrintLatencyFigure(std::ostream& os, const LatencyFigureConfig& cfg) {
  RankedRunStats t_stress, t_delay, t_rdp, n_stress, n_delay, n_rdp;
  std::vector<double> t_rdp_all, n_rdp_all;

  // A replica's tables AND its metrics travel together and merge in
  // run-index order, so the aggregate registry — like the printed tables —
  // is byte-identical for every thread count.
  struct ReplicaOut {
    LatencyRunResult res;
    MetricsRegistry reg;
  };

  ReplicaRunner runner(cfg.threads, cfg.sim_options);
  runner.Run(
      cfg.runs,
      [&](ReplicaRunner::Replica& rep) {
        const std::uint64_t run_seed =
            cfg.seed + static_cast<std::uint64_t>(rep.index) * 1000003;
        auto net = MakeFigureNetwork(cfg.topo, cfg.users + 1, run_seed);
        LatencyRunConfig rcfg;
        rcfg.users = cfg.users;
        rcfg.data_path = cfg.data_path;
        rcfg.join_window_s =
            cfg.topo == FigureTopology::kPlanetLab ? 452.0 : 2048.0;
        rcfg.session = cfg.session;
        rcfg.step_events = cfg.step_events;
        rcfg.sim_options = cfg.sim_options;
        rcfg.psim_workers = cfg.psim_workers;
        if (cfg.step_events > 0) {
          rcfg.on_slice = [&rep]() { rep.CheckCancelled(); };
        }
        ReplicaOut out;
        if (cfg.metrics != nullptr) rcfg.metrics = &out.reg;
        // The tracer records in global execution order, which the parallel
        // driver cannot reproduce live — drop it rather than crash the run.
        if (cfg.tracer != nullptr && rep.index == 0 && cfg.psim_workers == 0) {
          rcfg.tracer = cfg.tracer;
        }
        out.res = RunLatencyExperiment(*net, rcfg, run_seed * 7 + 13,
                                       &rep.sim);
        if (cfg.progress) {
          std::fprintf(stderr, "  run %d/%d done\n", rep.index + 1, cfg.runs);
        }
        return out;
      },
      [&](int, ReplicaOut&& out) {
        LatencyRunResult& res = out.res;
        t_stress.AddRun(res.tmesh.stress);
        t_delay.AddRun(res.tmesh.delay_ms);
        t_rdp.AddRun(res.tmesh.rdp);
        n_stress.AddRun(res.nice.stress);
        n_delay.AddRun(res.nice.delay_ms);
        n_rdp.AddRun(res.nice.rdp);
        t_rdp_all.insert(t_rdp_all.end(), res.tmesh.rdp.begin(),
                         res.tmesh.rdp.end());
        n_rdp_all.insert(n_rdp_all.end(), res.nice.rdp.begin(),
                         res.nice.rdp.end());
        if (cfg.metrics != nullptr) cfg.metrics->MergeFrom(out.reg);
      });

  auto fr = DefaultFractions();
  PrintRankedTable(os, cfg.title + " (a): user stress", fr,
                   {{"T-mesh", &t_stress}, {"NICE", &n_stress}});
  os << "\n";
  PrintRankedTable(os, cfg.title + " (b): application-layer delay [ms]", fr,
                   {{"T-mesh", &t_delay}, {"NICE", &n_delay}});
  os << "\n";
  PrintRankedTable(os, cfg.title + " (c): relative delay penalty (RDP)", fr,
                   {{"T-mesh", &t_rdp}, {"NICE", &n_rdp}});

  InverseCdf tc(t_rdp_all), nc(n_rdp_all);
  char headline[256];
  std::snprintf(
      headline, sizeof(headline),
      "\n# headline: T-mesh RDP<2: %.0f%%, RDP<3: %.0f%%  |  NICE RDP<2: "
      "%.0f%%, RDP<3: %.0f%%\n"
      "#   (paper, Fig. 6: T-mesh 78%% / 95%%; NICE 23%% / 47%%)\n",
      100 * tc.FractionAtOrBelow(2.0), 100 * tc.FractionAtOrBelow(3.0),
      100 * nc.FractionAtOrBelow(2.0), 100 * nc.FractionAtOrBelow(3.0));
  os << headline;
}

}  // namespace tmesh
