// The Figs. 6-11 latency-figure driver, runnable on a replica pool.
//
// A latency figure is `runs` independent replicas of the §4.1 workload
// (RunLatencyExperiment) aggregated into three inverse-CDF tables (user
// stress / application-layer delay / RDP, T-mesh vs NICE) plus the headline
// RDP fractions the paper quotes. Replica `run` uses seed
// `seed + run * 1000003` — the exact seeds the original sequential bench
// loop used — and the tables merge replicas in run order, so the printed
// output is byte-identical for every thread count (tier1-tested by
// replica_runner_test).
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>

#include "protocols/latency_experiment.h"
#include "topology/network.h"

namespace tmesh {

enum class FigureTopology { kPlanetLab, kGtItm };

// The evaluation's two substrates with the benches' parameter conventions:
// PlanetLab uses `seed` directly; GT-ITM derives the attachment seed as
// seed * 31 + 1 so the same router graph hosts different placements.
std::unique_ptr<Network> MakeFigureNetwork(FigureTopology topo, int hosts,
                                           std::uint64_t seed);

struct LatencyFigureConfig {
  std::string title;
  FigureTopology topo = FigureTopology::kPlanetLab;
  int users = 226;
  bool data_path = false;  // false: rekey path from the key server
  int runs = 10;
  std::uint64_t seed = 1;
  // Replica pool width (ReplicaRunner semantics: <= 0 selects hardware
  // concurrency, 1 is the sequential path). Output does not depend on it.
  int threads = 1;
  SessionConfig session;
  // Per-replica progress notes on stderr ("run i/N done"); their ordering
  // across replicas is the only thread-count-dependent output.
  bool progress = false;
  // RunFor slice size for each replica's simulator drain (0: monolithic).
  // Bit-identical output either way; slicing also lets a pooled replica
  // notice another replica's failure between chunks and stop early.
  std::size_t step_events = 0;
  // Worker-simulator construction options (discipline, calendar tuning);
  // stdout is byte-identical for every value.
  Simulator::Options sim_options;
  // When non-null, every replica's "tmesh."/"sim." counters are recorded
  // into a replica-local registry and merged here in run-index order — the
  // same contract that makes the tables thread-count-independent, so the
  // aggregate is byte-identical for every --threads=N. The figure's text
  // output is byte-identical with or without a registry attached.
  MetricsRegistry* metrics = nullptr;
  // When non-null, replica 0's multicast session is traced here (only
  // replica 0, so the trace is deterministic across thread counts and the
  // tracer needs no synchronization). Ignored when psim_workers > 0 (the
  // parallel driver forbids execution-order-dependent observers).
  MessageTracer* tracer = nullptr;
  // When > 0, every replica's multicast drains on the conservative parallel
  // driver with this many workers (LatencyRunConfig::psim_workers). All
  // printed tables and merged metrics are byte-identical to the sequential
  // drain at every value — this knob buys wall-clock speed on multi-core
  // hardware, never different numbers.
  int psim_workers = 0;
};

// Runs the figure and prints it to `os`.
void PrintLatencyFigure(std::ostream& os, const LatencyFigureConfig& cfg);

}  // namespace tmesh
