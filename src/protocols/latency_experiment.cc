#include "protocols/latency_experiment.h"

#include <algorithm>
#include <memory>

#include "core/tmesh.h"
#include "sim/parallel_driver.h"
#include "sim/sim_metrics.h"
#include "transport/psim_transport.h"

namespace tmesh {

LatencyRunResult RunLatencyExperiment(const Network& net,
                                      const LatencyRunConfig& cfg,
                                      std::uint64_t run_seed, Simulator* sim) {
  TMESH_CHECK(cfg.users >= 2);
  TMESH_CHECK_MSG(sim == nullptr || (sim->Empty() && sim->Now() == 0),
                  "external Simulator must be fresh or Reset()");
  TMESH_CHECK(net.host_count() >= cfg.users + 1);
  Rng rng(run_seed);

  SessionConfig scfg = cfg.session;
  scfg.seed = rng.Fork().engine()();
  const HostId server = 0;
  GroupSession session(net, server, scfg);

  // Users join at random times within the window; sort by time.
  std::vector<std::pair<SimTime, HostId>> joins;
  joins.reserve(static_cast<std::size_t>(cfg.users));
  for (HostId h = 1; h <= cfg.users; ++h) {
    joins.push_back({FromSeconds(rng.UniformReal(0.0, cfg.join_window_s)), h});
  }
  std::sort(joins.begin(), joins.end());
  for (const auto& [t, h] : joins) {
    auto id = session.Join(h, t);
    TMESH_CHECK_MSG(id.has_value(), "ID space exhausted during join workload");
  }
  session.FlushRekeyState();

  LatencyRunResult out;
  Simulator local_sim(cfg.sim_options);
  // psim path: same protocol object, same session, but the multicast drains
  // on the conservative parallel driver — an external Simulator, if passed,
  // stays untouched (it was checked fresh above).
  std::unique_ptr<ParallelDriver> driver;
  std::unique_ptr<PsimTransport> psim_transport;
  std::unique_ptr<TMesh> tmesh_box;
  if (cfg.psim_workers > 0) {
    const double min_ms = net.MinCrossHostDelayMs();
    TMESH_CHECK_MSG(min_ms > 0.0,
                    "this topology reports no cross-host delay bound; "
                    "parallel driving needs a positive lookahead");
    ParallelDriver::Options dopts;
    dopts.workers = cfg.psim_workers;
    dopts.hosts = net.host_count();
    dopts.lookahead = FromMillis(min_ms);
    driver = std::make_unique<ParallelDriver>(dopts);
    psim_transport = std::make_unique<PsimTransport>(*driver, server);
    tmesh_box = std::make_unique<TMesh>(session.directory(), *psim_transport);
  } else {
    tmesh_box = std::make_unique<TMesh>(session.directory(),
                                        sim != nullptr ? *sim : local_sim);
  }
  TMesh& tmesh = *tmesh_box;
  tmesh.SetMetrics(cfg.metrics);
  tmesh.SetTracer(cfg.tracer);

  HostId sender_host = server;
  Simulator& session_sim = sim != nullptr ? *sim : local_sim;
  // The message must outlive the handle (rekey sessions reference it).
  const RekeyMessage rekey_msg;
  TMesh::Handle handle = [&] {
    if (cfg.data_path) {
      // A random user multicasts a data message.
      auto sender = session.directory().RandomAliveMember(rng);
      TMESH_CHECK(sender.has_value());
      sender_host = session.directory().HostOf(*sender);
      return tmesh.BeginData(*sender);
    }
    // The key server multicasts a (rekey) message; splitting does not
    // change paths or timing, so an empty message suffices for latency.
    return tmesh.BeginRekey(rekey_msg, TMesh::Options{});
  }();
  if (driver != nullptr) {
    driver->Run();
    if (cfg.on_slice) cfg.on_slice();
  } else if (cfg.step_events == 0 && !cfg.on_slice) {
    session_sim.Run();
  } else {
    // Chunked drive: identical event order (one RunOne path underneath),
    // with room between slices for the caller's poll.
    const EventBudget chunk = EventBudget::Events(
        cfg.step_events > 0 ? cfg.step_events : std::size_t{1024});
    while (session_sim.RunFor(chunk).exhausted_reason == Exhausted::kEvents) {
      if (cfg.on_slice) cfg.on_slice();
    }
    if (cfg.on_slice) cfg.on_slice();
  }
  TMesh::Result tresult = handle.TakeResult();
  if (cfg.metrics != nullptr) {
    tmesh.FlushMetrics();
    if (driver != nullptr) {
      ExportPsimMetrics(*driver, *cfg.metrics);
    } else {
      ExportSimMetrics(session_sim, *cfg.metrics);
    }
  }

  for (HostId h = 1; h <= cfg.users; ++h) {
    if (h == sender_host) continue;
    const MemberDeliveryRecord& rec =
        tresult.member[static_cast<std::size_t>(h)];
    TMESH_CHECK_MSG(rec.copies == 1, "Theorem 1 violated in T-mesh session");
    out.tmesh.delay_ms.push_back(rec.delay_ms);
    out.tmesh.rdp.push_back(rec.rdp);
  }
  // Stress distribution covers every user, including the sender when it is
  // a user (its sends are forwarding work it performs).
  for (HostId h = 1; h <= cfg.users; ++h) {
    out.tmesh.stress.push_back(
        tresult.member[static_cast<std::size_t>(h)].stress);
  }

  if (const NiceOverlay* nice = session.nice()) {
    NiceOverlay::Delivery d = cfg.data_path
                                  ? nice->DataFrom(sender_host)
                                  : nice->RekeyFromServer(server);
    for (HostId h = 1; h <= cfg.users; ++h) {
      if (h == d.origin && cfg.data_path) continue;
      TMESH_CHECK_MSG(d.copies[static_cast<std::size_t>(h)] == 1,
                      "NICE delivery not exact-once");
      double delay = d.delay_ms[static_cast<std::size_t>(h)];
      double unicast = net.OneWayDelayMs(sender_host, h);
      out.nice.delay_ms.push_back(delay);
      out.nice.rdp.push_back(unicast > 0.0 ? delay / unicast : 1.0);
    }
    for (HostId h = 1; h <= cfg.users; ++h) {
      out.nice.stress.push_back(d.stress[static_cast<std::size_t>(h)]);
    }
  }
  return out;
}

}  // namespace tmesh
