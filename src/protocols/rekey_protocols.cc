#include "protocols/rekey_protocols.h"

#include <algorithm>

#include "core/tmesh.h"
#include "ipmc/ip_multicast.h"
#include "keytree/wgl_key_tree.h"
#include "protocols/nice_accounting.h"
#include "sim/sim_metrics.h"

namespace tmesh {

RekeyBandwidthExperiment::RekeyBandwidthExperiment(const BandwidthConfig& cfg)
    : cfg_(cfg) {}

namespace {

// Per-user vectors over current members from a T-mesh result.
void FillFromTMesh(const Directory& dir, const TMesh::Result& res,
                   BandwidthReport& report) {
  for (const auto& [id, info] : dir.members()) {
    (void)id;
    const MemberDeliveryRecord& rec =
        res.member[static_cast<std::size_t>(info.host)];
    report.encs_received_per_user.push_back(
        static_cast<double>(rec.encs_received));
    report.encs_forwarded_per_user.push_back(
        static_cast<double>(rec.encs_forwarded));
  }
  report.encs_per_link.assign(res.links.encryptions.begin(),
                              res.links.encryptions.end());
}

}  // namespace

std::vector<BandwidthReport> RekeyBandwidthExperiment::Run() {
  Rng rng(cfg_.seed);
  const int total_hosts = 1 + cfg_.initial_users + cfg_.batch_joins;
  GtItmNetwork net(cfg_.topology, total_hosts, rng.Fork().engine()());

  SessionConfig scfg = cfg_.session;
  scfg.with_nice = true;
  scfg.seed = rng.Fork().engine()();
  const HostId server = 0;
  GroupSession session(net, server, scfg);

  // ---- Initial population. --------------------------------------------
  std::vector<std::pair<SimTime, HostId>> joins;
  for (HostId h = 1; h <= cfg_.initial_users; ++h) {
    joins.push_back({FromSeconds(rng.UniformReal(0.0, cfg_.join_window_s)), h});
  }
  std::sort(joins.begin(), joins.end());
  for (const auto& [t, h] : joins) {
    auto id = session.Join(h, t);
    TMESH_CHECK(id.has_value());
  }
  session.FlushRekeyState();

  // The original key tree is assumed full and balanced over the initial
  // users (§4.2); member ids are host ids.
  WglKeyTree wgl(cfg_.wgl_degree);
  {
    std::vector<MemberId> members;
    for (HostId h = 1; h <= cfg_.initial_users; ++h) members.push_back(h);
    std::size_t w = 1;
    while (w < members.size()) w *= static_cast<std::size_t>(cfg_.wgl_degree);
    if (w == members.size()) {
      wgl.BuildFullBalanced(members);
    } else {
      wgl.BuildIncremental(members);
    }
  }

  // ---- One rekey interval: batch joins + leaves. ------------------------
  SimTime t0 = FromSeconds(cfg_.join_window_s);
  struct Event {
    SimTime t;
    bool join;
    HostId host;  // joins only
  };
  std::vector<Event> events;
  for (int i = 0; i < cfg_.batch_joins; ++i) {
    events.push_back({t0 + FromSeconds(rng.UniformReal(0.0, cfg_.rekey_interval_s)),
                      true, static_cast<HostId>(cfg_.initial_users + 1 + i)});
  }
  for (int i = 0; i < cfg_.batch_leaves; ++i) {
    events.push_back({t0 + FromSeconds(rng.UniformReal(0.0, cfg_.rekey_interval_s)),
                      false, kNoHost});
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.t < b.t; });

  std::vector<MemberId> wgl_joins, wgl_leaves;
  for (const Event& ev : events) {
    if (ev.join) {
      auto id = session.Join(ev.host, ev.t);
      TMESH_CHECK(id.has_value());
      wgl_joins.push_back(ev.host);
    } else {
      auto victim = session.directory().RandomAliveMember(rng);
      TMESH_CHECK(victim.has_value());
      HostId vh = session.directory().HostOf(*victim);
      session.Leave(*victim);
      // A member that joined and left within the interval cancels out in
      // the WGL batch.
      auto jit = std::find(wgl_joins.begin(), wgl_joins.end(), vh);
      if (jit != wgl_joins.end()) {
        wgl_joins.erase(jit);
      } else {
        wgl_leaves.push_back(vh);
      }
    }
  }

  // ---- Rekey messages. ---------------------------------------------------
  RekeyMessage msg_wgl = wgl.Rekey(wgl_joins, wgl_leaves);
  RekeyMessage msg_mod = session.key_tree().Rekey();
  RekeyMessage msg_cluster = session.clusters().Rekey();

  // ---- Distribution under each protocol. ---------------------------------
  std::vector<BandwidthReport> reports;
  Directory& dir = session.directory();

  auto note_cost = [&](std::size_t cost) {
    if (cfg_.metrics != nullptr) {
      cfg_.metrics->GetHistogram("bandwidth.rekey_cost")
          ->Observe(static_cast<double>(cost));
    }
  };

  auto run_nice = [&](const std::string& name, bool split) {
    BandwidthReport rep;
    rep.protocol = name;
    rep.rekey_cost = msg_wgl.RekeyCost();
    note_cost(rep.rekey_cost);
    NiceOverlay::Delivery tree = session.nice()->RekeyFromServer(server);
    NiceBandwidth bw = AccountNiceRekey(net, tree, wgl, msg_wgl, split);
    for (const auto& [id, info] : dir.members()) {
      (void)id;
      rep.encs_received_per_user.push_back(static_cast<double>(
          bw.encs_received[static_cast<std::size_t>(info.host)]));
      rep.encs_forwarded_per_user.push_back(static_cast<double>(
          bw.encs_forwarded[static_cast<std::size_t>(info.host)]));
    }
    rep.encs_per_link.assign(bw.link_encryptions.begin(),
                             bw.link_encryptions.end());
    reports.push_back(std::move(rep));
  };

  auto run_tmesh = [&](const std::string& name, const RekeyMessage& msg,
                       bool split, bool cluster) {
    BandwidthReport rep;
    rep.protocol = name;
    rep.rekey_cost = msg.RekeyCost();
    note_cost(rep.rekey_cost);
    Simulator sim(cfg_.sim_options);
    TMesh tmesh(dir, sim);
    tmesh.SetMetrics(cfg_.metrics);
    TMesh::Options opts;
    opts.split = split;
    opts.clusters = cluster ? &session.clusters() : nullptr;
    opts.track_links = true;
    TMesh::Handle handle = tmesh.BeginRekey(msg, opts);
    DrainSliced(sim, cfg_.step_events);
    TMesh::Result res = handle.TakeResult();
    if (cfg_.metrics != nullptr) {
      tmesh.FlushMetrics();
      ExportSimMetrics(sim, *cfg_.metrics);
    }
    FillFromTMesh(dir, res, rep);
    reports.push_back(std::move(rep));
  };

  run_nice("P0", /*split=*/false);
  run_nice("P0'", /*split=*/true);
  run_tmesh("P1", msg_mod, /*split=*/false, /*cluster=*/false);
  run_tmesh("P1'", msg_mod, /*split=*/true, /*cluster=*/false);
  run_tmesh("P2", msg_cluster, /*split=*/false, /*cluster=*/true);
  run_tmesh("P2'", msg_cluster, /*split=*/true, /*cluster=*/true);

  {
    BandwidthReport rep;
    rep.protocol = "Pip";
    rep.rekey_cost = msg_wgl.RekeyCost();
    note_cost(rep.rekey_cost);
    IpMulticast ipmc(net);
    std::vector<HostId> receivers;
    for (const auto& [id, info] : dir.members()) {
      (void)id;
      receivers.push_back(info.host);
    }
    IpMulticast::Result res =
        ipmc.Multicast(server, receivers, msg_wgl.RekeyCost());
    for (std::size_t i = 0; i < receivers.size(); ++i) {
      rep.encs_received_per_user.push_back(
          static_cast<double>(msg_wgl.RekeyCost()));
      rep.encs_forwarded_per_user.push_back(0.0);  // routers forward, not users
    }
    rep.encs_per_link.assign(res.link_encryptions.begin(),
                             res.link_encryptions.end());
    reports.push_back(std::move(rep));
  }

  return reports;
}

}  // namespace tmesh
