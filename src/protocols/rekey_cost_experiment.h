// The Fig. 12 experiment: rekey cost (encryptions per rekey message) as a
// function of the number of joins J and leaves L in one rekey interval, for
//   (a) the modified key tree,
//   (b) the modified minus the original (WGL degree-4, batch) key tree,
//   (c) the modified key tree with the cluster rekeying heuristic minus the
//       original key tree.
//
// Workload (§4.2): 1024 users join (IDs assigned by the protocol over a
// GT-ITM topology); then, per (J,L) grid cell, J joins and L leaves are
// processed as one batch by each key-management scheme and the rekey costs
// recorded. Cells are independent (each starts from the same base group).
#pragma once

#include <vector>

#include "metrics/registry.h"
#include "protocols/group_session.h"
#include "topology/gtitm.h"

namespace tmesh {

struct RekeyCostConfig {
  std::uint64_t seed = 1;
  int initial_users = 1024;
  std::vector<int> grid = {0, 128, 256, 384, 512, 640, 768, 896, 1024};
  int runs = 3;
  int wgl_degree = 4;
  double join_window_s = 2048.0;
  // Replica pool width (ReplicaRunner semantics: <= 0 selects hardware
  // concurrency). Per-run RNGs are pre-forked from the master seed in run
  // order and cells merge in run order, so results are identical for any
  // value.
  int threads = 1;
  SessionConfig session;
  GtItmParams topology;
  // Worker-simulator construction options; cell values are identical for
  // every value.
  Simulator::Options sim_options;
  // When non-null, per-run per-cell rekey costs are recorded into
  // "rekeycost.{modified,original,cluster}" histograms via replica-local
  // registries merged in run order (identical for every thread count).
  MetricsRegistry* metrics = nullptr;
};

struct RekeyCostCell {
  int joins = 0;
  int leaves = 0;
  double modified = 0.0;        // avg rekey cost, modified key tree
  double original = 0.0;        // avg rekey cost, original (WGL) key tree
  double cluster = 0.0;         // avg rekey cost with the cluster heuristic
};

// Returns one cell per (J, L) in grid x grid, averaged over `runs` runs.
std::vector<RekeyCostCell> RunRekeyCostExperiment(const RekeyCostConfig& cfg);

}  // namespace tmesh
