// The latency experiments of §4.1 (Figs. 6-11) and §4.4 (Fig. 14).
//
// Workload: N users join at uniformly random times in a window (the order
// is what matters; T-mesh and NICE see the same order). After the joins, a
// single multicast session runs:
//   - rekey path: the key server is the sender (T-mesh FORWARD from the
//     server; in NICE the server unicasts to the tree root first);
//   - data path: a random user is the sender.
// Metrics per user: user stress (messages forwarded), application-layer
// delay, and relative delay penalty RDP = delay / one-way unicast delay
// from the sender.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "metrics/registry.h"
#include "metrics/trace.h"
#include "protocols/group_session.h"
#include "sim/simulator.h"
#include "topology/network.h"

namespace tmesh {

struct LatencySeries {
  std::vector<double> stress;
  std::vector<double> delay_ms;
  std::vector<double> rdp;
};

struct LatencyRunConfig {
  int users = 226;
  double join_window_s = 452.0;
  bool data_path = false;  // false: rekey path from the key server
  SessionConfig session;
  // When > 0, the session's simulator drain is sliced into RunFor chunks of
  // this many events (0: one monolithic Run()). Results are bit-identical
  // either way; `on_slice`, if set, runs between chunks — the figure
  // harness installs a ReplicaRunner cancellation poll there.
  std::size_t step_events = 0;
  // Construction options for the internally-built Simulator (ignored when
  // the caller passes an external one). Geometry only: results are
  // byte-identical for every value.
  Simulator::Options sim_options;
  std::function<void()> on_slice;
  // When non-null, the run's TMesh counters ("tmesh.") and simulator
  // counters ("sim.") are recorded here. Pure observation: the printed
  // results are byte-identical with or without a registry attached.
  MetricsRegistry* metrics = nullptr;
  // When non-null, the run's multicast session records birth/forward/
  // delivery spans here (metrics/trace.h).
  MessageTracer* tracer = nullptr;
  // When > 0, the multicast session runs on the conservative parallel
  // driver (sim/parallel_driver.h) with this many workers instead of the
  // sequential simulator: hosts are partitioned, the lookahead comes from
  // net.MinCrossHostDelayMs() (which must be positive), and the printed
  // series, TMesh counters, and "sim." event counts are byte-identical to
  // psim_workers == 0 at every worker count. Requires tracer == nullptr
  // (checked); step_events is ignored (the driver drains monolithically,
  // with one on_slice call after the drain).
  int psim_workers = 0;
};

struct LatencyRunResult {
  LatencySeries tmesh;
  LatencySeries nice;  // empty when session.with_nice is false
};

// One simulation run: hosts 1..users join (host 0 is the key server); the
// session's group/NICE parameters come from cfg.session; `run_seed` drives
// the join times/order and the data sender choice. When `sim` is non-null
// the run uses it instead of a run-local Simulator — it must be idle in its
// freshly-constructed/Reset() state, and results are identical either way
// (ReplicaRunner workers pass their pooled Simulator here so the event
// arenas stay warm across replicas).
LatencyRunResult RunLatencyExperiment(const Network& net,
                                      const LatencyRunConfig& cfg,
                                      std::uint64_t run_seed,
                                      Simulator* sim = nullptr);

}  // namespace tmesh
