// Per-user and per-link encryption accounting for rekey transport over a
// NICE delivery tree (protocols P0 / P0' of Table 2).
//
// NICE has no identification scheme, so splitting there requires each
// forwarder to know its downstream users and the encryptions they need —
// the O(N)-state scheme §2.6 describes. We grant the baseline that
// knowledge for free (as the paper did: "we did not count such maintenance
// cost") and compute the *ideal* split: an encryption travels an edge iff
// some member in the edge's subtree needs it.
#pragma once

#include <cstdint>
#include <vector>

#include "keytree/rekey_types.h"
#include "keytree/wgl_key_tree.h"
#include "nice/nice_overlay.h"
#include "topology/network.h"

namespace tmesh {

struct NiceBandwidth {
  std::vector<std::int64_t> encs_received;   // per host
  std::vector<std::int64_t> encs_forwarded;  // per host
  std::vector<std::int64_t> link_encryptions;  // per link (empty w/o paths)
};

// `tree` must be a rekey delivery (origin = root, parent of root = server).
// `keytree` is the original key tree that produced `msg`; member ids are
// host ids.
NiceBandwidth AccountNiceRekey(const Network& net,
                               const NiceOverlay::Delivery& tree,
                               const WglKeyTree& keytree,
                               const RekeyMessage& msg, bool split);

}  // namespace tmesh
