// The seven rekey transport protocols of Table 2 and the Fig. 13 rekey
// bandwidth experiment.
//
//   P0   original key tree + NICE,        no splitting
//   P0'  original key tree + NICE,        (idealized) splitting
//   P1   modified key tree + T-mesh,      no splitting
//   P1'  modified key tree + T-mesh,      splitting
//   P2   modified key tree + T-mesh + cluster rekeying, no splitting
//   P2'  modified key tree + T-mesh + cluster rekeying, splitting
//   Pip  original key tree + IP multicast (DVMRP SPT),  no splitting
//
// Workload (§4.3): `initial_users` join at random times; then one rekey
// interval processes `batch_joins` joins and `batch_leaves` leaves as a
// batch; the resulting rekey message is distributed by each protocol and we
// report, per user, the number of encryptions received and forwarded, and,
// per network link, the number of encryptions carried.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "metrics/registry.h"
#include "protocols/group_session.h"
#include "topology/gtitm.h"

namespace tmesh {

struct BandwidthReport {
  std::string protocol;
  std::size_t rekey_cost = 0;              // encryptions in the rekey message
  std::vector<double> encs_received_per_user;
  std::vector<double> encs_forwarded_per_user;
  std::vector<double> encs_per_link;       // all physical links
};

struct BandwidthConfig {
  std::uint64_t seed = 1;
  int initial_users = 1024;
  int batch_joins = 256;
  int batch_leaves = 256;
  double join_window_s = 2048.0;
  double rekey_interval_s = 512.0;
  int wgl_degree = 4;
  SessionConfig session;
  GtItmParams topology;
  // RunFor slice size for the per-protocol simulator drains (0: one
  // monolithic Run() each). Bit-identical reports either way.
  std::size_t step_events = 0;
  // Per-protocol simulator construction options; bit-identical reports for
  // every value (queue geometry cannot reorder events).
  Simulator::Options sim_options;
  // When non-null, the T-mesh protocols' "tmesh."/"sim." counters
  // accumulate here (the experiment is sequential, so one shared registry
  // is race-free) and every protocol's rekey cost lands in the
  // "bandwidth.rekey_cost" histogram. Reports are identical either way.
  MetricsRegistry* metrics = nullptr;
};

class RekeyBandwidthExperiment {
 public:
  explicit RekeyBandwidthExperiment(const BandwidthConfig& cfg);

  // Runs the full workload and returns one report per protocol, in Table-2
  // order: P0, P0', P1, P1', P2, P2', Pip.
  std::vector<BandwidthReport> Run();

 private:
  BandwidthConfig cfg_;
};

}  // namespace tmesh
