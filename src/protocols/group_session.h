// A co-maintained group: one membership stream driving every state machine
// the experiments compare — the Directory (T-mesh neighbor tables), the
// modified key tree, the cluster-rekeying state, and optionally a NICE
// overlay over the same hosts. The paper's workloads ("users follow the
// same join and leave order in T-mesh and NICE", §4) need exactly this.
#pragma once

#include <optional>

#include "core/cluster_rekeying.h"
#include "core/directory.h"
#include "common/rng.h"
#include "core/id_assignment.h"
#include "core/modified_key_tree.h"
#include "nice/nice_overlay.h"

namespace tmesh {

struct SessionConfig {
  GroupParams group;
  IdAssignParams assign;
  NiceParams nice;
  bool with_nice = true;
  // Use the §5 centralized (GNP-style) ID assignment instead of the
  // distributed 4-step protocol.
  bool centralized_assignment = false;
  // Bypass proximity entirely: IDs drawn uniformly at random (the §2.6
  // strawman the ablation benches compare against).
  bool random_ids = false;
  std::uint64_t seed = 1;
};

class GroupSession {
 public:
  GroupSession(const Network& net, HostId server_host, SessionConfig cfg);

  // Runs the ID-assignment protocol for `h` and admits it everywhere.
  // Returns the assigned ID (nullopt iff the ID space is exhausted).
  std::optional<UserId> Join(HostId h, SimTime t, IdAssignStats* stats = nullptr);
  void Leave(UserId id);  // by value: the reference may live in storage
                          // the leave mutates
  void LeaveHost(HostId h);

  // Clears pending key-tree changes without emitting a message (the initial
  // population's keys are delivered by unicast at join time, §3.1, so the
  // first measured interval starts clean).
  void FlushRekeyState();

  Directory& directory() { return dir_; }
  const Directory& directory() const { return dir_; }
  ModifiedKeyTree& key_tree() { return mtree_; }
  ClusterRekeying& clusters() { return clusters_; }
  NiceOverlay* nice() { return nice_ ? &*nice_ : nullptr; }
  const NiceOverlay* nice() const { return nice_ ? &*nice_ : nullptr; }

 private:
  std::optional<UserId> RandomUnusedId();

  SessionConfig cfg_;
  Directory dir_;
  IdAssigner assigner_;
  Rng id_rng_;
  ModifiedKeyTree mtree_;
  ClusterRekeying clusters_;
  std::optional<NiceOverlay> nice_;
};

}  // namespace tmesh
