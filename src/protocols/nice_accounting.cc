#include "protocols/nice_accounting.h"

#include <algorithm>

#include "common/check.h"

namespace tmesh {

NiceBandwidth AccountNiceRekey(const Network& net,
                               const NiceOverlay::Delivery& tree,
                               const WglKeyTree& keytree,
                               const RekeyMessage& msg, bool split) {
  const std::size_t hosts = tree.copies.size();
  NiceBandwidth out;
  out.encs_received.assign(hosts, 0);
  out.encs_forwarded.assign(hosts, 0);
  if (net.HasRouterPaths()) {
    out.link_encryptions.assign(static_cast<std::size_t>(net.link_count()), 0);
  }

  // Members in delivery order (parents strictly precede children because a
  // child's delivery time exceeds its parent's).
  std::vector<HostId> order;
  for (std::size_t h = 0; h < hosts; ++h) {
    if (tree.copies[h] > 0) order.push_back(static_cast<HostId>(h));
  }
  std::sort(order.begin(), order.end(), [&](HostId a, HostId b) {
    double da = tree.delay_ms[static_cast<std::size_t>(a)];
    double db = tree.delay_ms[static_cast<std::size_t>(b)];
    if (da != db) return da < db;
    return a < b;
  });

  // Encryptions carried by each member's incoming edge.
  std::vector<std::int64_t> edge_count(hosts, 0);
  if (!split) {
    for (HostId m : order) {
      edge_count[static_cast<std::size_t>(m)] =
          static_cast<std::int64_t>(msg.encryptions.size());
    }
  } else {
    // Per encryption: mark needing members, aggregate subtree sums
    // bottom-up (reverse delivery order), and charge every edge whose
    // subtree needs the encryption.
    std::vector<std::int32_t> subtree(hosts, 0);
    for (const Encryption& e : msg.encryptions) {
      std::fill(subtree.begin(), subtree.end(), 0);
      for (MemberId m : keytree.MembersNeeding(e)) {
        if (static_cast<std::size_t>(m) < hosts && tree.copies[static_cast<std::size_t>(m)] > 0) {
          subtree[static_cast<std::size_t>(m)] = 1;
        }
      }
      for (auto it = order.rbegin(); it != order.rend(); ++it) {
        HostId m = *it;
        if (subtree[static_cast<std::size_t>(m)] == 0) continue;
        ++edge_count[static_cast<std::size_t>(m)];
        HostId p = tree.parent[static_cast<std::size_t>(m)];
        if (p != kNoHost && static_cast<std::size_t>(p) < hosts &&
            tree.copies[static_cast<std::size_t>(p)] > 0) {
          subtree[static_cast<std::size_t>(p)] = 1;
        }
      }
    }
  }

  std::vector<LinkId> path;
  for (HostId m : order) {
    std::int64_t count = edge_count[static_cast<std::size_t>(m)];
    out.encs_received[static_cast<std::size_t>(m)] = count;
    HostId p = tree.parent[static_cast<std::size_t>(m)];
    if (p != kNoHost && static_cast<std::size_t>(p) < hosts &&
        tree.copies[static_cast<std::size_t>(p)] > 0) {
      out.encs_forwarded[static_cast<std::size_t>(p)] += count;
    }
    if (net.HasRouterPaths() && p != kNoHost && count > 0) {
      path.clear();
      net.AppendPathLinks(p, m, path);
      for (LinkId l : path) {
        out.link_encryptions[static_cast<std::size_t>(l)] += count;
      }
    }
  }
  return out;
}

}  // namespace tmesh
