#include "protocols/rekey_cost_experiment.h"

#include <algorithm>

#include "keytree/wgl_key_tree.h"
#include "sim/replica_runner.h"

namespace tmesh {

std::vector<RekeyCostCell> RunRekeyCostExperiment(const RekeyCostConfig& cfg) {
  TMESH_CHECK(!cfg.grid.empty());
  TMESH_CHECK(cfg.runs >= 1);
  const int max_joins = *std::max_element(cfg.grid.begin(), cfg.grid.end());

  std::vector<RekeyCostCell> cells;
  for (int j : cfg.grid) {
    for (int l : cfg.grid) {
      cells.push_back(RekeyCostCell{j, l, 0.0, 0.0, 0.0});
    }
  }

  // Per-run generators are forked from the master sequentially — exactly
  // the stream the old sequential loop drew — then each run executes
  // independently on the replica pool. A run's contribution is a local copy
  // of the cell grid; contributions merge in run order, so the averages are
  // bit-identical to the sequential loop for any thread count.
  // Each run's cells and its metric observations travel together and merge
  // in run order, keeping the registry thread-count-independent.
  struct RunOut {
    std::vector<RekeyCostCell> cells;
    MetricsRegistry reg;
  };

  Rng master(cfg.seed);
  std::vector<Rng> run_rngs;
  run_rngs.reserve(static_cast<std::size_t>(cfg.runs));
  for (int run = 0; run < cfg.runs; ++run) run_rngs.push_back(master.Fork());

  ReplicaRunner runner(cfg.threads, cfg.sim_options);
  runner.Run(
      cfg.runs,
      [&](ReplicaRunner::Replica& rep) {
    // A zeroed copy of the grid: merge may already have folded earlier
    // runs into `cells`, so only the (j, l) coordinates carry over.
    RunOut out;
    std::vector<RekeyCostCell>& local = out.cells;
    local.reserve(cells.size());
    for (const RekeyCostCell& c : cells) {
      local.push_back(RekeyCostCell{c.joins, c.leaves, 0.0, 0.0, 0.0});
    }
    Rng rng = run_rngs[static_cast<std::size_t>(rep.index)];
    const int total_hosts = 1 + cfg.initial_users + max_joins;
    GtItmNetwork net(cfg.topology, total_hosts, rng.Fork().engine()());

    // Base group: 1024 users with protocol-assigned IDs; NICE not needed.
    SessionConfig scfg = cfg.session;
    scfg.with_nice = false;
    scfg.seed = rng.Fork().engine()();
    GroupSession base(net, /*server=*/0, scfg);
    std::vector<std::pair<SimTime, HostId>> joins;
    for (HostId h = 1; h <= cfg.initial_users; ++h) {
      joins.push_back(
          {FromSeconds(rng.UniformReal(0.0, cfg.join_window_s)), h});
    }
    std::sort(joins.begin(), joins.end());
    for (const auto& [t, h] : joins) {
      auto id = base.Join(h, t);
      TMESH_CHECK(id.has_value());
    }
    base.FlushRekeyState();

    std::vector<MemberId> wgl_members;
    for (HostId h = 1; h <= cfg.initial_users; ++h) wgl_members.push_back(h);
    std::size_t w = 1;
    while (w < wgl_members.size()) {
      w *= static_cast<std::size_t>(cfg.wgl_degree);
    }
    const bool full = w == wgl_members.size();

    for (RekeyCostCell& cell : local) {
      Rng cell_rng = rng.Fork();
      // Independent copies of every key-management state machine.
      Directory dir = base.directory();
      IdAssigner assigner(dir, cfg.session.assign, cell_rng.engine()());
      ModifiedKeyTree mtree = base.key_tree();
      ClusterRekeying clusters = base.clusters();
      WglKeyTree wgl(cfg.wgl_degree);
      if (full) {
        wgl.BuildFullBalanced(wgl_members);
      } else {
        wgl.BuildIncremental(wgl_members);
      }

      // Interleave J joins and L leaves at random interval offsets.
      struct Ev {
        double t;
        bool join;
        HostId host;
      };
      std::vector<Ev> events;
      for (int i = 0; i < cell.joins; ++i) {
        events.push_back({cell_rng.UniformReal(0.0, 1.0), true,
                          static_cast<HostId>(cfg.initial_users + 1 + i)});
      }
      for (int i = 0; i < cell.leaves; ++i) {
        events.push_back({cell_rng.UniformReal(0.0, 1.0), false, kNoHost});
      }
      std::sort(events.begin(), events.end(),
                [](const Ev& a, const Ev& b) { return a.t < b.t; });

      std::vector<MemberId> wgl_joins, wgl_leaves;
      SimTime tbase = FromSeconds(cfg.join_window_s);
      for (const Ev& ev : events) {
        if (ev.join) {
          auto id = assigner.AssignId(ev.host);
          TMESH_CHECK(id.has_value());
          dir.AddMember(*id, ev.host, tbase + FromSeconds(ev.t));
          mtree.Join(*id);
          clusters.Join(*id, tbase + FromSeconds(ev.t));
          wgl_joins.push_back(ev.host);
        } else {
          auto victim = dir.RandomAliveMember(cell_rng);
          TMESH_CHECK(victim.has_value());
          HostId vh = dir.HostOf(*victim);
          dir.RemoveMember(*victim);
          mtree.Leave(*victim);
          clusters.Leave(*victim);
          auto jit = std::find(wgl_joins.begin(), wgl_joins.end(), vh);
          if (jit != wgl_joins.end()) {
            wgl_joins.erase(jit);
          } else {
            wgl_leaves.push_back(vh);
          }
        }
      }

      cell.modified += static_cast<double>(mtree.Rekey().RekeyCost());
      cell.cluster += static_cast<double>(clusters.Rekey().RekeyCost());
      cell.original +=
          static_cast<double>(wgl.Rekey(wgl_joins, wgl_leaves).RekeyCost());
      if (cfg.metrics != nullptr) {
        out.reg.GetHistogram("rekeycost.modified")->Observe(cell.modified);
        out.reg.GetHistogram("rekeycost.original")->Observe(cell.original);
        out.reg.GetHistogram("rekeycost.cluster")->Observe(cell.cluster);
      }
    }
    return out;
      },
      [&](int, RunOut&& out) {
        const std::vector<RekeyCostCell>& local = out.cells;
        for (std::size_t i = 0; i < cells.size(); ++i) {
          cells[i].modified += local[i].modified;
          cells[i].original += local[i].original;
          cells[i].cluster += local[i].cluster;
        }
        if (cfg.metrics != nullptr) cfg.metrics->MergeFrom(out.reg);
      });

  for (RekeyCostCell& cell : cells) {
    cell.modified /= cfg.runs;
    cell.original /= cfg.runs;
    cell.cluster /= cfg.runs;
  }
  return cells;
}

}  // namespace tmesh
