// FROZEN SEED BASELINE — do not "improve".
//
// This is the pre-flat-layout ModifiedKeyTree kept verbatim (class renamed,
// moved under src/keytree/ so it depends only on tmesh_common) as the golden
// oracle for the differential equivalence suite
// (tests/keytree_differential_test.cc). The production ModifiedKeyTree
// (core/modified_key_tree.h) replaced the per-node unordered_set children
// and the set-materializing batch rekey with a flat node pool, digit
// bitmaps, and a streaming (optionally sharded) rekey; its contract is
// byte-identical RekeyMessage output and identical KeyVersion/KeysOf state
// vs THIS implementation on every schedule.
//
// (Original header comment follows.)
//
// The modified key tree (§2.4): a key tree whose structure matches the ID
// tree exactly.
//
// "Our modified key tree has a fixed height, and it grows in a horizontal
// direction when users join." Every k-node is an ID-tree node (its key's ID
// is the node's ID); every u-node is a user (its ID is the user's ID). A
// user holds its individual key plus the keys of the k-nodes on the path
// from its u-node to the root — i.e. the keys whose IDs are prefixes of its
// user ID, which is what makes Lemma 3 ("a user needs the key in an
// encryption iff the encryption's ID is a prefix of the user's ID") hold by
// construction.
//
// Batch rekeying (§2.4): joins/leaves accumulate during a rekey interval
// (Join/Leave mutate the structure immediately and record the changed
// paths); Rekey() then renews every k-node key on a changed path and emits,
// per updated k-node, one encryption per child — the new key encrypted
// under the child's key (the child's *new* key if the child was updated
// too). The encryption's ID is the encrypting child's ID.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/digit_string.h"
#include "keytree/rekey_types.h"

namespace tmesh {

class SeedModifiedKeyTree {
 public:
  explicit SeedModifiedKeyTree(int depth);

  int depth() const { return depth_; }
  int user_count() const { return user_count_; }
  bool Contains(const UserId& u) const {
    return u.size() == depth_ && nodes_.count(u) > 0;
  }

  // Adds the u-node for `u` (and any missing k-nodes on its path); the
  // change is remembered for the next Rekey().
  void Join(const UserId& u);

  // Removes the u-node (pruning k-nodes left childless); remembered for the
  // next Rekey().
  void Leave(UserId u);

  // Ends the rekey interval: renews keys on all changed paths, emits the
  // rekey message, clears the pending-change set.
  RekeyMessage Rekey();

  // Number of pending changed paths (joined or departed user IDs).
  int pending_changes() const { return static_cast<int>(changed_.size()); }

  // The IDs of the keys user u currently holds, shortest first: the group
  // key "[]", the auxiliary keys u.ID[0:0..D-2], and its individual key
  // (ID = u.ID). Requires membership.
  std::vector<KeyId> KeysOf(const UserId& u) const;

  // Current version of a key; 0 if the node does not exist.
  std::uint32_t KeyVersion(const KeyId& id) const;

  int knode_count() const;  // internal nodes, levels 0..D-1

  // Structural check: node set is prefix-closed, children sets consistent,
  // u-nodes exactly at level D.
  void CheckInvariants() const;

 private:
  struct Node {
    std::unordered_set<int> children;  // next digits (levels 0..D-1 only)
    std::uint32_t version = 1;
  };

  int depth_;
  int user_count_ = 0;
  std::unordered_map<DigitString, Node> nodes_;  // levels 0..D
  std::unordered_set<UserId> changed_;           // changed leaf IDs
  // Last version of every pruned node: re-created nodes resume one past it,
  // so no (key ID, version) pair is ever issued twice — a departed member
  // holding the old keys must not be able to decrypt a later chain.
  std::unordered_map<DigitString, std::uint32_t> retired_versions_;
};

}  // namespace tmesh
