// Types shared by both key trees and the rekey transport protocols.
//
// The paper's rekey message is a sequence of "encryptions" {k'}_k — a new
// key k' encrypted under a key k the receiver already holds (§2.4). All
// evaluated metrics are counts of encryptions and message latencies, so an
// Encryption here is a counted record, not ciphertext:
//   - enc_key_id: the ID of the *encrypting* key k. The paper defines "the
//     ID of an encryption ... to be the ID of the encrypting key" — this is
//     the field the splitting scheme (Fig. 5) tests prefixes against.
//   - new_key_id / new_key_version: which key is being distributed.
//   - wgl_enc_node: for the original (WGL) key tree, whose keys have no
//     prefix IDs, the node index of the encrypting key instead.
#pragma once

#include <cstdint>
#include <vector>

#include "common/digit_string.h"

namespace tmesh {

// Index of a member as the key server numbers them (we use the HostId).
using MemberId = std::int32_t;
inline constexpr MemberId kNoMember = -1;

struct Encryption {
  KeyId enc_key_id;            // the encryption's ID (modified key tree)
  KeyId new_key_id;            // the key being distributed
  std::uint32_t new_key_version = 0;
  // Version of the encrypting key at emission time (a receiver can only
  // decrypt if it holds exactly this version) — lets tests verify that the
  // emitted message is decryption-complete for every member.
  std::uint32_t enc_key_version = 0;
  std::int32_t wgl_enc_node = -1;  // encrypting node (original key tree only)
  std::int32_t wgl_new_node = -1;  // node whose new key is carried (WGL only)
};

// Field-wise equality: two encryptions are the same record. The
// differential equivalence suite compares whole rekey messages this way to
// pin the flat key trees byte-for-byte against the frozen seed baselines.
inline bool operator==(const Encryption& a, const Encryption& b) {
  return a.enc_key_id == b.enc_key_id && a.new_key_id == b.new_key_id &&
         a.new_key_version == b.new_key_version &&
         a.enc_key_version == b.enc_key_version &&
         a.wgl_enc_node == b.wgl_enc_node && a.wgl_new_node == b.wgl_new_node;
}
inline bool operator!=(const Encryption& a, const Encryption& b) {
  return !(a == b);
}

struct RekeyMessage {
  std::vector<Encryption> encryptions;

  // The paper's "rekey cost": the number of encryptions contained in a rekey
  // message (§4.2).
  std::size_t RekeyCost() const { return encryptions.size(); }
};

// Lemma 3: a user needs the key carried in an encryption if and only if the
// encryption's ID is a prefix of the user's ID. (Modified key tree only.)
inline bool UserNeedsEncryption(const UserId& user, const Encryption& e) {
  return e.enc_key_id.IsPrefixOf(user);
}

}  // namespace tmesh
