// FROZEN SEED BASELINE — do not "improve".
//
// This is the pre-flat-layout WglKeyTree kept verbatim (class renamed) as
// the golden oracle for the differential equivalence suite
// (tests/keytree_differential_test.cc). The production WglKeyTree
// (keytree/wgl_key_tree.h) replaced the per-node child vectors and the
// O(N) whole-tree scans with a flat, augmented layout; its contract is
// byte-identical RekeyMessage / KeysHeld / PathNodes output to THIS
// implementation at every population where both can run. Any intentional
// behavior change to the production tree must come with a matching change
// here — which is exactly the point: there should never be one.
//
// (Original header comment follows.)
//
// The original key tree: Wong-Gouda-Lam key graph with periodic batch
// rekeying — the paper's baseline key-management scheme (§4.2).
//
// Unlike the modified key tree (whose shape is pinned to the ID tree), this
// tree has a fixed degree and grows/shrinks with membership:
//   - a joining u-node first takes the position of a departed u-node;
//   - extra joins split a shallowest u-node into a k-node holding the old
//     and new u-nodes;
//   - extra departures are pruned (k-nodes that lose all children vanish).
// At the end of a rekey interval the server updates every key on the path
// from each changed position to the root and emits, per updated k-node, one
// encryption per child (encrypted under the child's current/new key).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "keytree/rekey_types.h"

namespace tmesh {

class SeedWglKeyTree {
 public:
  explicit SeedWglKeyTree(int degree = 4);

  void BuildFullBalanced(const std::vector<MemberId>& members);
  void BuildIncremental(const std::vector<MemberId>& members);

  RekeyMessage Rekey(const std::vector<MemberId>& joins,
                     const std::vector<MemberId>& leaves);

  bool Contains(MemberId m) const { return leaf_of_.count(m) > 0; }
  int member_count() const { return static_cast<int>(leaf_of_.size()); }
  int degree() const { return degree_; }

  int LeafDepth(MemberId m) const;
  int KeysHeld(MemberId m) const;
  std::vector<MemberId> MembersNeeding(const Encryption& e) const;
  bool MemberUnder(MemberId m, std::int32_t n) const;
  std::vector<std::pair<std::int32_t, std::uint32_t>> PathNodes(
      MemberId m) const;
  void CheckInvariants() const;

 private:
  struct Node {
    std::int32_t parent = -1;
    std::vector<std::int32_t> children;  // empty for u-nodes
    MemberId member = kNoMember;         // set for u-nodes only
    std::uint32_t version = 0;           // bumped when the key is renewed
    bool alive = true;
    bool IsLeaf() const { return member != kNoMember; }
  };

  std::int32_t NewNode();
  void MarkPathUpdated(std::int32_t node, std::vector<char>& updated) const;
  std::int32_t ShallowLeaf() const;  // a u-node of minimum depth
  void DetachLeaf(std::int32_t leaf, std::vector<char>& updated);

  int degree_;
  std::int32_t root_ = -1;
  std::vector<Node> nodes_;
  std::vector<std::int32_t> free_list_;
  std::unordered_map<MemberId, std::int32_t> leaf_of_;
};

}  // namespace tmesh
