#include "keytree/seed_wgl_key_tree.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "common/check.h"

namespace tmesh {

SeedWglKeyTree::SeedWglKeyTree(int degree) : degree_(degree) {
  TMESH_CHECK(degree >= 2);
}

std::int32_t SeedWglKeyTree::NewNode() {
  if (!free_list_.empty()) {
    std::int32_t id = free_list_.back();
    free_list_.pop_back();
    nodes_[static_cast<std::size_t>(id)] = Node{};
    return id;
  }
  nodes_.emplace_back();
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

void SeedWglKeyTree::BuildFullBalanced(const std::vector<MemberId>& members) {
  nodes_.clear();
  free_list_.clear();
  leaf_of_.clear();
  root_ = -1;
  if (members.empty()) return;

  // |members| must be degree^h for some h >= 0.
  std::size_t n = members.size();
  std::size_t w = 1;
  while (w < n) w *= static_cast<std::size_t>(degree_);
  TMESH_CHECK_MSG(w == n, "full balanced tree needs degree^h members");

  root_ = NewNode();
  // Build level by level until the widths match the member count.
  std::vector<std::int32_t> frontier{root_};
  std::size_t width = 1;
  while (width < n) {
    std::vector<std::int32_t> next;
    next.reserve(width * static_cast<std::size_t>(degree_));
    for (std::int32_t p : frontier) {
      for (int c = 0; c < degree_; ++c) {
        std::int32_t id = NewNode();
        nodes_[static_cast<std::size_t>(id)].parent = p;
        nodes_[static_cast<std::size_t>(p)].children.push_back(id);
        next.push_back(id);
      }
    }
    frontier = std::move(next);
    width *= static_cast<std::size_t>(degree_);
  }
  TMESH_CHECK(frontier.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_[static_cast<std::size_t>(frontier[i])].member = members[i];
    leaf_of_[members[i]] = frontier[i];
  }
  // Degenerate single-member case: the root itself cannot be a u-node (the
  // group key lives there), so wrap it.
  if (n == 1) {
    // frontier[0] == root_; rebuild as root k-node with one u-node child.
    nodes_.clear();
    free_list_.clear();
    leaf_of_.clear();
    root_ = NewNode();
    std::int32_t leaf = NewNode();
    nodes_[static_cast<std::size_t>(leaf)].parent = root_;
    nodes_[static_cast<std::size_t>(leaf)].member = members[0];
    nodes_[static_cast<std::size_t>(root_)].children.push_back(leaf);
    leaf_of_[members[0]] = leaf;
  }
}

void SeedWglKeyTree::BuildIncremental(const std::vector<MemberId>& members) {
  nodes_.clear();
  free_list_.clear();
  leaf_of_.clear();
  root_ = -1;
  for (MemberId m : members) {
    (void)Rekey({m}, {});
  }
}

int SeedWglKeyTree::LeafDepth(MemberId m) const {
  auto it = leaf_of_.find(m);
  TMESH_CHECK(it != leaf_of_.end());
  int d = 0;
  std::int32_t cur = it->second;
  while (nodes_[static_cast<std::size_t>(cur)].parent != -1) {
    cur = nodes_[static_cast<std::size_t>(cur)].parent;
    ++d;
  }
  return d;
}

int SeedWglKeyTree::KeysHeld(MemberId m) const {
  // k-node keys on the root path plus the individual key.
  return LeafDepth(m) + 1;
}

bool SeedWglKeyTree::MemberUnder(MemberId m, std::int32_t n) const {
  auto it = leaf_of_.find(m);
  if (it == leaf_of_.end()) return false;
  std::int32_t cur = it->second;
  while (cur != -1) {
    if (cur == n) return true;
    cur = nodes_[static_cast<std::size_t>(cur)].parent;
  }
  return false;
}

std::vector<MemberId> SeedWglKeyTree::MembersNeeding(const Encryption& e) const {
  TMESH_CHECK_MSG(e.wgl_enc_node >= 0, "not a WGL-tree encryption");
  std::vector<MemberId> out;
  std::vector<std::int32_t> stack{e.wgl_enc_node};
  while (!stack.empty()) {
    std::int32_t n = stack.back();
    stack.pop_back();
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    if (node.IsLeaf()) {
      out.push_back(node.member);
    } else {
      for (std::int32_t c : node.children) stack.push_back(c);
    }
  }
  return out;
}

std::vector<std::pair<std::int32_t, std::uint32_t>> SeedWglKeyTree::PathNodes(
    MemberId m) const {
  auto it = leaf_of_.find(m);
  TMESH_CHECK(it != leaf_of_.end());
  std::vector<std::pair<std::int32_t, std::uint32_t>> out;
  std::int32_t cur = it->second;
  while (cur != -1) {
    out.push_back({cur, nodes_[static_cast<std::size_t>(cur)].version});
    cur = nodes_[static_cast<std::size_t>(cur)].parent;
  }
  return out;
}

void SeedWglKeyTree::DetachLeaf(std::int32_t leaf, std::vector<char>& updated) {
  Node& ln = nodes_[static_cast<std::size_t>(leaf)];
  TMESH_CHECK(ln.IsLeaf());
  leaf_of_.erase(ln.member);
  std::int32_t cur = leaf;
  // Remove the leaf, then prune k-nodes left childless (but keep the root:
  // the group key node persists even through an empty instant).
  while (cur != root_) {
    std::int32_t p = nodes_[static_cast<std::size_t>(cur)].parent;
    Node& pn = nodes_[static_cast<std::size_t>(p)];
    pn.children.erase(
        std::find(pn.children.begin(), pn.children.end(), cur));
    nodes_[static_cast<std::size_t>(cur)].alive = false;
    free_list_.push_back(cur);
    if (!pn.children.empty()) {
      if (static_cast<std::size_t>(p) < updated.size()) updated[static_cast<std::size_t>(p)] = 1;
      return;
    }
    cur = p;
  }
}

std::int32_t SeedWglKeyTree::ShallowLeaf() const {
  std::deque<std::int32_t> q{root_};
  while (!q.empty()) {
    std::int32_t n = q.front();
    q.pop_front();
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    if (node.IsLeaf()) return n;
    for (std::int32_t c : node.children) q.push_back(c);
  }
  return -1;
}

RekeyMessage SeedWglKeyTree::Rekey(const std::vector<MemberId>& joins,
                               const std::vector<MemberId>& leaves) {
  for (MemberId m : joins) TMESH_CHECK_MSG(!Contains(m), "join of present member");
  for (MemberId m : leaves) TMESH_CHECK_MSG(Contains(m), "leave of absent member");

  if (root_ == -1 && !joins.empty()) root_ = NewNode();

  // `updated` marks nodes whose subtree changed; it is grown as nodes are
  // created. Indexed by node id.
  std::vector<char> updated(nodes_.size(), 0);
  auto mark = [&updated, this](std::int32_t n) {
    if (static_cast<std::size_t>(n) >= updated.size()) {
      updated.resize(nodes_.size(), 0);
    }
    updated[static_cast<std::size_t>(n)] = 1;
  };

  const std::size_t nj = joins.size(), nl = leaves.size();
  const std::size_t reuse = std::min(nj, nl);

  // 1. Joins take the positions of departed members [32].
  for (std::size_t i = 0; i < reuse; ++i) {
    std::int32_t leaf = leaf_of_.at(leaves[i]);
    leaf_of_.erase(leaves[i]);
    nodes_[static_cast<std::size_t>(leaf)].member = joins[i];
    leaf_of_[joins[i]] = leaf;
    mark(leaf);
  }

  // 2. Extra departures are pruned.
  for (std::size_t i = reuse; i < nl; ++i) {
    std::int32_t leaf = leaf_of_.at(leaves[i]);
    // Mark the parent path before detaching (DetachLeaf marks the surviving
    // parent too, but the path marking happens in the sweep below via the
    // surviving parent).
    DetachLeaf(leaf, updated);
  }

  // 3. Extra joins attach at the shallowest spot: a k-node with spare
  // capacity if one is at least as shallow as the shallowest u-node,
  // otherwise by splitting the shallowest u-node.
  for (std::size_t i = reuse; i < nj; ++i) {
    MemberId m = joins[i];
    // Breadth-first scan for the shallowest k-node with space and the
    // shallowest u-node.
    std::int32_t k_space = -1, shallow_leaf = -1;
    int k_depth = 0, leaf_depth = 0;
    std::deque<std::pair<std::int32_t, int>> q{{root_, 0}};
    while (!q.empty() && (k_space == -1 || shallow_leaf == -1)) {
      auto [n, d] = q.front();
      q.pop_front();
      const Node& node = nodes_[static_cast<std::size_t>(n)];
      if (node.IsLeaf()) {
        if (shallow_leaf == -1) {
          shallow_leaf = n;
          leaf_depth = d;
        }
      } else {
        if (k_space == -1 &&
            static_cast<int>(node.children.size()) < degree_) {
          k_space = n;
          k_depth = d;
        }
        for (std::int32_t c : node.children) q.push_back({c, d + 1});
      }
    }
    std::int32_t new_leaf = NewNode();
    nodes_[static_cast<std::size_t>(new_leaf)].member = m;
    leaf_of_[m] = new_leaf;
    if (k_space != -1 && (shallow_leaf == -1 || k_depth <= leaf_depth)) {
      nodes_[static_cast<std::size_t>(new_leaf)].parent = k_space;
      nodes_[static_cast<std::size_t>(k_space)].children.push_back(new_leaf);
      mark(k_space);
    } else {
      TMESH_CHECK(shallow_leaf != -1);
      // Split: replace the u-node with a k-node holding {old, new}.
      std::int32_t p = nodes_[static_cast<std::size_t>(shallow_leaf)].parent;
      std::int32_t knode = NewNode();
      Node& kn = nodes_[static_cast<std::size_t>(knode)];
      kn.parent = p;
      kn.children = {shallow_leaf, new_leaf};
      nodes_[static_cast<std::size_t>(shallow_leaf)].parent = knode;
      nodes_[static_cast<std::size_t>(new_leaf)].parent = knode;
      TMESH_CHECK(p != -1);  // root is always a k-node
      Node& pn = nodes_[static_cast<std::size_t>(p)];
      *std::find(pn.children.begin(), pn.children.end(), shallow_leaf) = knode;
      mark(knode);
    }
    mark(new_leaf);
  }

  // 4. Sweep: every alive k-node on the path from a marked node to the root
  // gets a new key.
  updated.resize(nodes_.size(), 0);
  std::vector<std::int32_t> updated_knodes;
  std::vector<char> on_path(nodes_.size(), 0);
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    if (!updated[n]) continue;
    std::int32_t cur = static_cast<std::int32_t>(n);
    while (cur != -1 && !on_path[static_cast<std::size_t>(cur)]) {
      on_path[static_cast<std::size_t>(cur)] = 1;
      cur = nodes_[static_cast<std::size_t>(cur)].parent;
    }
  }
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const Node& node = nodes_[n];
    if (on_path[n] && node.alive && !node.IsLeaf()) {
      updated_knodes.push_back(static_cast<std::int32_t>(n));
    }
  }

  // 5. Emit: per updated k-node, one encryption per child. Deterministic
  // order: deeper nodes first (children's new keys are distributed before
  // they are used to encrypt, mirroring how a receiver decrypts).
  auto depth_of = [this](std::int32_t n) {
    int d = 0;
    while (nodes_[static_cast<std::size_t>(n)].parent != -1) {
      n = nodes_[static_cast<std::size_t>(n)].parent;
      ++d;
    }
    return d;
  };
  std::sort(updated_knodes.begin(), updated_knodes.end(),
            [&](std::int32_t a, std::int32_t b) {
              int da = depth_of(a), db = depth_of(b);
              if (da != db) return da > db;
              return a < b;
            });

  RekeyMessage msg;
  for (std::int32_t n : updated_knodes) {
    Node& node = nodes_[static_cast<std::size_t>(n)];
    ++node.version;
    for (std::int32_t c : node.children) {
      Encryption e;
      e.wgl_enc_node = c;
      e.wgl_new_node = n;
      e.new_key_version = node.version;
      // Deep-first emission order means an updated child was already
      // re-versioned, so this is the key the receiver will actually hold.
      e.enc_key_version = nodes_[static_cast<std::size_t>(c)].version;
      msg.encryptions.push_back(e);
    }
  }
  return msg;
}

void SeedWglKeyTree::CheckInvariants() const {
  if (root_ == -1) {
    TMESH_CHECK(leaf_of_.empty());
    return;
  }
  std::unordered_set<std::int32_t> seen;
  std::size_t members_seen = 0;
  std::vector<std::int32_t> stack{root_};
  while (!stack.empty()) {
    std::int32_t n = stack.back();
    stack.pop_back();
    TMESH_CHECK(seen.insert(n).second);
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    TMESH_CHECK(node.alive);
    if (node.IsLeaf()) {
      auto it = leaf_of_.find(node.member);
      TMESH_CHECK(it != leaf_of_.end() && it->second == n);
      ++members_seen;
    } else {
      TMESH_CHECK(n == root_ || !node.children.empty());
      TMESH_CHECK(static_cast<int>(node.children.size()) <= degree_);
      for (std::int32_t c : node.children) {
        TMESH_CHECK(nodes_[static_cast<std::size_t>(c)].parent == n);
        stack.push_back(c);
      }
    }
  }
  TMESH_CHECK(members_seen == leaf_of_.size());
}

}  // namespace tmesh
