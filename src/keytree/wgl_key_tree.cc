#include "keytree/wgl_key_tree.h"

#include <algorithm>

#include "common/check.h"

namespace tmesh {

WglKeyTree::WglKeyTree(int degree, WglPlacement placement)
    : degree_(degree), placement_(placement) {
  TMESH_CHECK(degree >= 2);
}

void WglKeyTree::TagVolatile(MemberId m, bool is_volatile) {
  if (is_volatile) {
    if (!volatile_.insert(m).second) return;
  } else {
    if (volatile_.erase(m) == 0) return;
  }
  auto it = leaf_of_.find(m);
  if (it != leaf_of_.end()) FixPath(it->second);
}

std::int32_t WglKeyTree::NewNode() {
  // Same id-allocation discipline as the seed (LIFO free list, else append):
  // node ids appear verbatim in Encryptions, so allocation order is part of
  // the determinism contract.
  if (!free_list_.empty()) {
    std::int32_t id = free_list_.back();
    free_list_.pop_back();
    N(id) = Node{};
    return id;
  }
  nodes_.emplace_back();
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

void WglKeyTree::AppendChild(std::int32_t p, std::int32_t c) {
  Node& pn = N(p);
  N(c).parent = p;
  N(c).next_sibling = -1;
  if (pn.first_child == -1) {
    pn.first_child = c;
  } else {
    std::int32_t tail = pn.first_child;
    while (N(tail).next_sibling != -1) tail = N(tail).next_sibling;
    N(tail).next_sibling = c;
  }
  ++pn.child_count;
}

void WglKeyTree::UnlinkChild(std::int32_t p, std::int32_t c) {
  Node& pn = N(p);
  if (pn.first_child == c) {
    pn.first_child = N(c).next_sibling;
  } else {
    std::int32_t prev = pn.first_child;
    while (N(prev).next_sibling != c) prev = N(prev).next_sibling;
    N(prev).next_sibling = N(c).next_sibling;
  }
  N(c).next_sibling = -1;
  --pn.child_count;
}

void WglKeyTree::ReplaceChild(std::int32_t p, std::int32_t old_c,
                              std::int32_t new_c) {
  Node& pn = N(p);
  N(new_c).next_sibling = N(old_c).next_sibling;
  N(new_c).parent = p;
  if (pn.first_child == old_c) {
    pn.first_child = new_c;
  } else {
    std::int32_t prev = pn.first_child;
    while (N(prev).next_sibling != old_c) prev = N(prev).next_sibling;
    N(prev).next_sibling = new_c;
  }
  N(old_c).next_sibling = -1;
}

void WglKeyTree::PullUp(std::int32_t n) {
  ++op_stats_.aug_path_updates;
  Node& node = N(n);
  if (node.IsLeaf()) {
    node.min_u_depth = node.depth;
    node.min_slack_depth = kNoDepth;
    node.subtree_members = 1;
    node.volatile_members = volatile_.count(node.member) ? 1 : 0;
    return;
  }
  std::int32_t min_u = kNoDepth;
  std::int32_t min_slack = node.child_count < degree_ ? node.depth : kNoDepth;
  std::int32_t members = 0;
  std::int32_t volatiles = 0;
  for (std::int32_t c = node.first_child; c != -1; c = N(c).next_sibling) {
    min_u = std::min(min_u, N(c).min_u_depth);
    min_slack = std::min(min_slack, N(c).min_slack_depth);
    members += N(c).subtree_members;
    volatiles += N(c).volatile_members;
  }
  node.min_u_depth = min_u;
  node.min_slack_depth = min_slack;
  node.subtree_members = members;
  node.volatile_members = volatiles;
}

void WglKeyTree::FixPath(std::int32_t n) {
  for (std::int32_t cur = n; cur != -1; cur = N(cur).parent) PullUp(cur);
}

void WglKeyTree::BuildFullBalanced(const std::vector<MemberId>& members) {
  nodes_.clear();
  free_list_.clear();
  leaf_of_.clear();
  marked_.clear();
  root_ = -1;
  if (members.empty()) return;

  // |members| must be degree^h for some h >= 0.
  std::size_t n = members.size();
  std::size_t w = 1;
  while (w < n) w *= static_cast<std::size_t>(degree_);
  TMESH_CHECK_MSG(w == n, "full balanced tree needs degree^h members");

  root_ = NewNode();
  // Build level by level until the widths match the member count. Same
  // allocation order as the seed: children of each frontier node in turn.
  std::vector<std::int32_t> frontier{root_};
  std::size_t width = 1;
  while (width < n) {
    std::vector<std::int32_t> next;
    next.reserve(width * static_cast<std::size_t>(degree_));
    for (std::int32_t p : frontier) {
      for (int c = 0; c < degree_; ++c) {
        std::int32_t id = NewNode();
        N(id).depth = N(p).depth + 1;
        AppendChild(p, id);
        next.push_back(id);
      }
    }
    frontier = std::move(next);
    width *= static_cast<std::size_t>(degree_);
  }
  TMESH_CHECK(frontier.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    N(frontier[i]).member = members[i];
    leaf_of_[members[i]] = frontier[i];
  }
  // Degenerate single-member case: the root itself cannot be a u-node (the
  // group key lives there), so wrap it.
  if (n == 1) {
    nodes_.clear();
    free_list_.clear();
    leaf_of_.clear();
    root_ = NewNode();
    std::int32_t leaf = NewNode();
    N(leaf).depth = 1;
    N(leaf).member = members[0];
    AppendChild(root_, leaf);
    leaf_of_[members[0]] = leaf;
  }
  // Level-by-level allocation means every child id exceeds its parent's, so
  // one reverse pass computes all aggregates bottom-up.
  for (std::int32_t i = static_cast<std::int32_t>(nodes_.size()) - 1; i >= 0;
       --i) {
    PullUp(i);
  }
}

void WglKeyTree::BuildIncremental(const std::vector<MemberId>& members) {
  nodes_.clear();
  free_list_.clear();
  leaf_of_.clear();
  marked_.clear();
  root_ = -1;
  for (MemberId m : members) {
    (void)Rekey({m}, {});
  }
}

int WglKeyTree::LeafDepth(MemberId m) const {
  auto it = leaf_of_.find(m);
  TMESH_CHECK(it != leaf_of_.end());
  return N(it->second).depth;
}

int WglKeyTree::KeysHeld(MemberId m) const {
  // k-node keys on the root path plus the individual key.
  return LeafDepth(m) + 1;
}

bool WglKeyTree::MemberUnder(MemberId m, std::int32_t n) const {
  auto it = leaf_of_.find(m);
  if (it == leaf_of_.end()) return false;
  std::int32_t cur = it->second;
  while (cur != -1) {
    if (cur == n) return true;
    cur = N(cur).parent;
  }
  return false;
}

std::vector<MemberId> WglKeyTree::MembersNeeding(const Encryption& e) const {
  TMESH_CHECK_MSG(e.wgl_enc_node >= 0, "not a WGL-tree encryption");
  std::vector<MemberId> out;
  out.reserve(static_cast<std::size_t>(N(e.wgl_enc_node).subtree_members));
  // DFS with the seed's exact visit order (children pushed first-to-last,
  // popped from the back). Visits only the encrypting node's subtree:
  // O(answer), not O(N).
  std::vector<std::int32_t> stack{e.wgl_enc_node};
  while (!stack.empty()) {
    std::int32_t n = stack.back();
    stack.pop_back();
    ++op_stats_.members_needing_steps;
    const Node& node = N(n);
    if (node.IsLeaf()) {
      out.push_back(node.member);
    } else {
      for (std::int32_t c = node.first_child; c != -1; c = N(c).next_sibling) {
        stack.push_back(c);
      }
    }
  }
  return out;
}

std::vector<std::pair<std::int32_t, std::uint32_t>> WglKeyTree::PathNodes(
    MemberId m) const {
  auto it = leaf_of_.find(m);
  TMESH_CHECK(it != leaf_of_.end());
  std::vector<std::pair<std::int32_t, std::uint32_t>> out;
  out.reserve(static_cast<std::size_t>(N(it->second).depth) + 1);
  std::int32_t cur = it->second;
  while (cur != -1) {
    out.push_back({cur, N(cur).version});
    cur = N(cur).parent;
  }
  return out;
}

void WglKeyTree::DetachLeaf(std::int32_t leaf) {
  TMESH_CHECK(N(leaf).IsLeaf());
  volatile_.erase(N(leaf).member);  // departure retires the churn tag
  leaf_of_.erase(N(leaf).member);
  std::int32_t cur = leaf;
  // Remove the leaf, then prune k-nodes left childless (but keep the root:
  // the group key node persists even through an empty instant). Nodes are
  // freed in the seed's order — leaf first, then parents ascending.
  while (cur != root_) {
    std::int32_t p = N(cur).parent;
    UnlinkChild(p, cur);
    N(cur).alive = false;
    free_list_.push_back(cur);
    if (N(p).child_count > 0) {
      Mark(p);
      FixPath(p);
      return;
    }
    cur = p;
  }
  // Drained to the bare root: refresh its aggregates (0 members, own slack).
  FixPath(root_);
}

std::int32_t WglKeyTree::DescendToMin(std::int32_t top,
                                      std::int32_t target_depth,
                                      bool want_leaf) const {
  // Greedy descent to the BFS-first node at `target_depth` achieving the
  // subtree minimum. BFS order at a fixed depth equals lexicographic order
  // of child-position paths, so taking the first child whose subtree
  // minimum equals the target reproduces the seed's BFS tie-break.
  std::int32_t cur = top;
  while (true) {
    ++op_stats_.shallow_scan_steps;
    const Node& node = N(cur);
    if (node.depth == target_depth) return cur;
    std::int32_t next = -1;
    for (std::int32_t c = node.first_child; c != -1; c = N(c).next_sibling) {
      ++op_stats_.shallow_scan_steps;
      std::int32_t sub_min = want_leaf ? N(c).min_u_depth : N(c).min_slack_depth;
      if (sub_min == target_depth) {
        next = c;
        break;
      }
    }
    TMESH_CHECK_MSG(next != -1, "augmented descent lost the target");
    cur = next;
  }
}

std::int32_t WglKeyTree::ShallowLeaf() const {
  if (root_ == -1 || N(root_).min_u_depth == kNoDepth) return -1;
  return DescendToMin(root_, N(root_).min_u_depth, /*want_leaf=*/true);
}

void WglKeyTree::PlaceInSubtree(MemberId m, std::int32_t top) {
  const std::int32_t ks = N(top).min_slack_depth;  // k-node with space
  const std::int32_t ku = N(top).min_u_depth;      // shallowest u-node
  if (ks != kNoDepth && (ku == kNoDepth || ks <= ku)) {
    std::int32_t k_space = DescendToMin(top, ks, /*want_leaf=*/false);
    std::int32_t new_leaf = NewNode();
    N(new_leaf).member = m;
    N(new_leaf).depth = N(k_space).depth + 1;
    leaf_of_[m] = new_leaf;
    AppendChild(k_space, new_leaf);
    PullUp(new_leaf);
    FixPath(k_space);
    Mark(k_space);
    Mark(new_leaf);
  } else {
    TMESH_CHECK(ku != kNoDepth);
    std::int32_t shallow_leaf = DescendToMin(top, ku, /*want_leaf=*/true);
    // Split: replace the u-node with a k-node holding {old, new}. Seed
    // allocation order: the joiner's u-node first, then the k-node.
    std::int32_t new_leaf = NewNode();
    N(new_leaf).member = m;
    leaf_of_[m] = new_leaf;
    std::int32_t p = N(shallow_leaf).parent;
    TMESH_CHECK(p != -1);  // root is always a k-node
    std::int32_t knode = NewNode();
    N(knode).depth = N(shallow_leaf).depth;
    ReplaceChild(p, shallow_leaf, knode);
    N(knode).first_child = shallow_leaf;
    N(knode).child_count = 2;
    N(shallow_leaf).parent = knode;
    N(shallow_leaf).next_sibling = new_leaf;
    N(shallow_leaf).depth += 1;
    N(new_leaf).parent = knode;
    N(new_leaf).next_sibling = -1;
    N(new_leaf).depth = N(shallow_leaf).depth;
    PullUp(shallow_leaf);
    PullUp(new_leaf);
    FixPath(knode);
    Mark(knode);
    Mark(new_leaf);
  }
}

std::int32_t WglKeyTree::ChooseAffinitySubtree(MemberId m) const {
  const Node& r = N(root_);
  if (r.first_child == -1) return root_;
  const std::int32_t ks = r.min_slack_depth;
  const std::int32_t ku = r.min_u_depth;
  // Slack directly under the root: a global placement opens a fresh
  // root-child subtree there, which is itself a new cluster seed.
  if (ks == 0) return root_;
  // Depth the new u-node lands at under global shallowest placement:
  // attach-at-slack puts it one below the slack k-node, a split one below
  // the shallowest u-node's old position.
  const std::int32_t global_depth =
      (ks != kNoDepth && (ku == kNoDepth || ks <= ku)) ? ks + 1 : ku + 1;
  const bool joiner_volatile = volatile_.count(m) > 0;
  std::int32_t best = -1;
  double best_score = 0.0;
  for (std::int32_t c = r.first_child; c != -1; c = N(c).next_sibling) {
    ++op_stats_.shallow_scan_steps;
    const Node& cn = N(c);
    if (cn.subtree_members == 0) continue;
    const std::int32_t cs = cn.min_slack_depth;
    const std::int32_t cu = cn.min_u_depth;
    const std::int32_t local_depth =
        (cs != kNoDepth && (cu == kNoDepth || cs <= cu)) ? cs + 1 : cu + 1;
    if (local_depth > global_depth + kAffinityDepthSlack) continue;
    const double frac = static_cast<double>(cn.volatile_members) /
                        static_cast<double>(cn.subtree_members);
    // Volatile joiners seek the churn-heavy subtree, stable joiners avoid
    // it. First eligible child wins ties (deterministic sibling order).
    const double score = joiner_volatile ? frac : -frac;
    if (best == -1 || score > best_score) {
      best = c;
      best_score = score;
    }
  }
  // The child containing the global optimum is always eligible, so best can
  // only be -1 when the root has no eligible child at all (empty tree).
  return best == -1 ? root_ : best;
}

RekeyMessage WglKeyTree::Rekey(const std::vector<MemberId>& joins,
                               const std::vector<MemberId>& leaves) {
  for (MemberId m : joins) {
    TMESH_CHECK_MSG(!Contains(m), "join of present member");
  }
  for (MemberId m : leaves) {
    TMESH_CHECK_MSG(Contains(m), "leave of absent member");
  }

  if (root_ == -1 && !joins.empty()) {
    root_ = NewNode();
    PullUp(root_);  // bare root: 0 members, slack at depth 0
  }
  marked_.clear();

  const std::size_t nj = joins.size(), nl = leaves.size();
  const std::size_t reuse = std::min(nj, nl);

  // 1. Joins take the positions of departed members [32]. Structure and
  // aggregates are unchanged (a u-node stays a u-node at the same depth).
  for (std::size_t i = 0; i < reuse; ++i) {
    std::int32_t leaf = leaf_of_.at(leaves[i]);
    leaf_of_.erase(leaves[i]);
    const bool vol_old = volatile_.erase(leaves[i]) > 0;  // retire the tag
    N(leaf).member = joins[i];
    leaf_of_[joins[i]] = leaf;
    // Only a changed volatile flag needs an aggregate repair; gating keeps
    // the untagged path's op-stat trace identical to the seed's.
    if (vol_old != (volatile_.count(joins[i]) > 0)) FixPath(leaf);
    Mark(leaf);
  }

  // 2. Extra departures are pruned.
  for (std::size_t i = reuse; i < nl; ++i) {
    DetachLeaf(leaf_of_.at(leaves[i]));
  }

  // 3. Extra joins attach at the shallowest spot: a k-node with spare
  // capacity if one is at least as shallow as the shallowest u-node,
  // otherwise by splitting the shallowest u-node. The root's aggregates
  // give both candidate depths; one O(depth) descent finds the seed's
  // BFS-first choice. kChurnAffinity first narrows the search to a root
  // child by volatile-mass affinity, then runs the same algorithm there.
  for (std::size_t i = reuse; i < nj; ++i) {
    std::int32_t top = root_;
    if (placement_ == WglPlacement::kChurnAffinity) {
      top = ChooseAffinitySubtree(joins[i]);
    }
    PlaceInSubtree(joins[i], top);
  }

  // 4. Stream: every alive k-node on the path from a marked position to the
  // root gets a new key. Climb from each mark, epoch-stamping visited nodes
  // so shared path suffixes are walked once — O(affected · depth) total, no
  // whole-pool sweep. Climbing from a since-pruned mark follows its stale
  // parent chain to the surviving ancestor, exactly as the seed's bitmap
  // sweep did.
  ++epoch_;
  std::vector<std::int32_t> updated_knodes;
  for (std::int32_t start : marked_) {
    std::int32_t cur = start;
    while (cur != -1 && N(cur).mark_epoch != epoch_) {
      N(cur).mark_epoch = epoch_;
      ++op_stats_.rekey_marked_nodes;
      if (N(cur).alive && !N(cur).IsLeaf()) updated_knodes.push_back(cur);
      cur = N(cur).parent;
    }
  }
  marked_.clear();

  // 5. Emit: per updated k-node, one encryption per child. Deterministic
  // order: deeper nodes first (children's new keys are distributed before
  // they are used to encrypt, mirroring how a receiver decrypts); ties by
  // ascending node id — the seed's exact sort, with stored depths.
  std::sort(updated_knodes.begin(), updated_knodes.end(),
            [this](std::int32_t a, std::int32_t b) {
              if (N(a).depth != N(b).depth) return N(a).depth > N(b).depth;
              return a < b;
            });

  RekeyMessage msg;
  for (std::int32_t n : updated_knodes) {
    Node& node = N(n);
    ++node.version;
    for (std::int32_t c = node.first_child; c != -1; c = N(c).next_sibling) {
      Encryption e;
      e.wgl_enc_node = c;
      e.wgl_new_node = n;
      e.new_key_version = node.version;
      // Deep-first emission order means an updated child was already
      // re-versioned, so this is the key the receiver will actually hold.
      e.enc_key_version = N(c).version;
      msg.encryptions.push_back(e);
    }
  }
  return msg;
}

void WglKeyTree::CheckInvariants() const {
  if (root_ == -1) {
    TMESH_CHECK(leaf_of_.empty());
    return;
  }
  std::size_t members_seen = 0;
  std::size_t nodes_seen = 0;
  // Post-order walk verifying links, depths, and every stored aggregate
  // against a from-scratch recomputation.
  struct Frame {
    std::int32_t node;
    bool expanded;
  };
  std::vector<Frame> stack{{root_, false}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    const Node& node = N(f.node);
    if (!f.expanded) {
      ++nodes_seen;
      TMESH_CHECK(nodes_seen <= nodes_.size());  // cycle guard
      TMESH_CHECK(node.alive);
      if (f.node == root_) {
        TMESH_CHECK(node.parent == -1 && node.depth == 0);
      } else {
        TMESH_CHECK(node.parent != -1);
        TMESH_CHECK(node.depth == N(node.parent).depth + 1);
      }
      if (node.IsLeaf()) {
        TMESH_CHECK(node.first_child == -1 && node.child_count == 0);
        auto it = leaf_of_.find(node.member);
        TMESH_CHECK(it != leaf_of_.end() && it->second == f.node);
        ++members_seen;
        TMESH_CHECK(node.min_u_depth == node.depth);
        TMESH_CHECK(node.min_slack_depth == kNoDepth);
        TMESH_CHECK(node.subtree_members == 1);
        TMESH_CHECK(node.volatile_members ==
                    (volatile_.count(node.member) ? 1 : 0));
      } else {
        TMESH_CHECK(f.node == root_ || node.first_child != -1);
        TMESH_CHECK(node.child_count <= degree_);
        stack.push_back({f.node, true});
        std::int32_t count = 0;
        for (std::int32_t c = node.first_child; c != -1;
             c = N(c).next_sibling) {
          TMESH_CHECK(N(c).parent == f.node);
          stack.push_back({c, false});
          ++count;
        }
        TMESH_CHECK(count == node.child_count);
      }
    } else {
      // Children fully verified: recheck this k-node's aggregates.
      std::int32_t min_u = kNoDepth;
      std::int32_t min_slack =
          node.child_count < degree_ ? node.depth : kNoDepth;
      std::int32_t members = 0;
      std::int32_t volatiles = 0;
      for (std::int32_t c = node.first_child; c != -1;
           c = N(c).next_sibling) {
        min_u = std::min(min_u, N(c).min_u_depth);
        min_slack = std::min(min_slack, N(c).min_slack_depth);
        members += N(c).subtree_members;
        volatiles += N(c).volatile_members;
      }
      TMESH_CHECK(node.min_u_depth == min_u);
      TMESH_CHECK(node.min_slack_depth == min_slack);
      TMESH_CHECK(node.subtree_members == members);
      TMESH_CHECK(node.volatile_members == volatiles);
    }
  }
  TMESH_CHECK(members_seen == leaf_of_.size());
}

}  // namespace tmesh
