#include "keytree/seed_modified_key_tree.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace tmesh {

SeedModifiedKeyTree::SeedModifiedKeyTree(int depth) : depth_(depth) {
  TMESH_CHECK(depth >= 1 && depth <= kMaxDigits);
}

void SeedModifiedKeyTree::Join(const UserId& u) {
  TMESH_CHECK(u.size() == depth_);
  TMESH_CHECK_MSG(nodes_.count(u) == 0, "join of present user " + u.ToString());
  for (int len = 0; len <= depth_; ++len) {
    DigitString p = u.Prefix(len);
    // Creates missing k-nodes (and the u-node). A re-created node must not
    // reuse the versions its previous incarnation handed out — a departed
    // member still holds those keys, and a version collision would let it
    // decrypt the new key chain (fuzzer find; repro
    // tests/fuzz_repros/keytree_version_reuse_forward_secrecy.repro).
    auto [it, created] = nodes_.try_emplace(p);
    if (created) {
      auto retired = retired_versions_.find(p);
      if (retired != retired_versions_.end()) {
        it->second.version = retired->second + 1;
      }
    }
    if (len < depth_) it->second.children.insert(u.digit(len));
  }
  changed_.insert(u);
  ++user_count_;
}

void SeedModifiedKeyTree::Leave(UserId u) {
  TMESH_CHECK(u.size() == depth_);
  auto leaf = nodes_.find(u);
  TMESH_CHECK_MSG(leaf != nodes_.end(), "leave of absent user " + u.ToString());
  retired_versions_[u] = leaf->second.version;
  nodes_.erase(leaf);
  // Prune childless k-nodes bottom-up, retiring their versions so a later
  // re-creation cannot repeat them.
  for (int len = depth_ - 1; len >= 0; --len) {
    DigitString p = u.Prefix(len);
    Node& node = nodes_.at(p);
    int child_digit = u.digit(len);
    if (nodes_.count(p.Child(child_digit)) == 0) {
      node.children.erase(child_digit);
    }
    if (node.children.empty()) {
      retired_versions_[p] = node.version;
      nodes_.erase(p);
    }
  }
  changed_.insert(u);
  --user_count_;
}

RekeyMessage SeedModifiedKeyTree::Rekey() {
  // Updated k-nodes: every *existing* k-node on the path from a changed
  // leaf position to the root (k-nodes deleted by pruning need no new key —
  // they have no remaining users).
  std::unordered_set<DigitString> updated;
  for (const UserId& u : changed_) {
    for (int len = 0; len < depth_; ++len) {
      DigitString p = u.Prefix(len);
      if (nodes_.count(p) > 0) updated.insert(p);
    }
  }
  changed_.clear();

  // Deterministic deep-first order: children's new keys exist before they
  // encrypt their parents' new keys.
  std::vector<DigitString> order(updated.begin(), updated.end());
  std::sort(order.begin(), order.end(), [](const DigitString& a,
                                           const DigitString& b) {
    if (a.size() != b.size()) return a.size() > b.size();
    return a < b;
  });

  RekeyMessage msg;
  for (const DigitString& p : order) {
    Node& node = nodes_.at(p);
    ++node.version;
    for (int digit : std::set<int>(node.children.begin(),
                                   node.children.end())) {
      DigitString child = p.Child(digit);
      Encryption e;
      e.enc_key_id = child;  // "the ID of an encryption is the ID of the
                             // encrypting key" (§2.4)
      e.new_key_id = p;
      e.new_key_version = node.version;
      e.enc_key_version = nodes_.at(child).version;
      msg.encryptions.push_back(e);
    }
  }
  return msg;
}

std::vector<KeyId> SeedModifiedKeyTree::KeysOf(const UserId& u) const {
  TMESH_CHECK_MSG(Contains(u), "not a member: " + u.ToString());
  std::vector<KeyId> keys;
  keys.reserve(static_cast<std::size_t>(depth_) + 1);
  for (int len = 0; len <= depth_; ++len) keys.push_back(u.Prefix(len));
  return keys;
}

std::uint32_t SeedModifiedKeyTree::KeyVersion(const KeyId& id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second.version;
}

int SeedModifiedKeyTree::knode_count() const {
  int n = 0;
  for (const auto& [id, node] : nodes_) {
    (void)node;
    if (id.size() < depth_) ++n;
  }
  return n;
}

void SeedModifiedKeyTree::CheckInvariants() const {
  int users = 0;
  for (const auto& [id, node] : nodes_) {
    if (id.size() == depth_) {
      TMESH_CHECK_MSG(node.children.empty(), "u-node with children");
      ++users;
    } else {
      TMESH_CHECK_MSG(!node.children.empty(), "childless k-node survived");
    }
    if (id.size() > 0) {
      auto parent = nodes_.find(id.Parent());
      TMESH_CHECK_MSG(parent != nodes_.end(), "orphan node");
      TMESH_CHECK_MSG(parent->second.children.count(id.LastDigit()) > 0,
                      "parent unaware of child");
    }
  }
  for (const auto& [id, node] : nodes_) {
    for (int digit : node.children) {
      TMESH_CHECK_MSG(nodes_.count(id.Child(digit)) > 0,
                      "child digit without child node");
    }
  }
  TMESH_CHECK(users == user_count_);
}

}  // namespace tmesh
