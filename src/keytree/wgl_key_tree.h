// The original key tree: Wong-Gouda-Lam key graph with periodic batch
// rekeying — the paper's baseline key-management scheme (§4.2).
//
// "The original key tree is based on the Wong-Gouda-Lam key tree [28] with
// degree 4 and the batch rekeying algorithm proposed in [32]. A degree of 4
// is proved to be optimal in terms of rekey cost per join or leave. After
// the initial 1024 users join the group, we assume that the original key
// tree is full and balanced."
//
// Unlike the modified key tree (whose shape is pinned to the ID tree), this
// tree has a fixed degree and grows/shrinks with membership:
//   - a joining u-node first takes the position of a departed u-node;
//   - extra joins split a shallowest u-node into a k-node holding the old
//     and new u-nodes;
//   - extra departures are pruned (k-nodes that lose all children vanish).
// At the end of a rekey interval the server updates every key on the path
// from each changed position to the root and emits, per updated k-node, one
// encryption per child (encrypted under the child's current/new key).
//
// Flat layout (million-user scale). Nodes live in one contiguous pool of
// compact records; the child list is intrusive (first_child / next_sibling
// indices in insertion order), so there is no per-node heap allocation
// anywhere on the hot path. Every record carries its depth plus three
// subtree aggregates maintained bottom-up along the O(depth) changed path:
//   - min_u_depth:     shallowest u-node depth in the subtree,
//   - min_slack_depth: shallowest under-capacity k-node depth (incl. self),
//   - subtree_members: u-node count (the subtree range size).
// They turn the seed's whole-tree BFS scans (shallowest-leaf selection,
// join-placement) into greedy root descents, and batch rekeying streams
// over the marked subtree — climb from each changed position, epoch-stamp,
// emit — instead of sweeping every node id. A rekey interval therefore
// costs O(affected · depth + affected · log affected), independent of N.
//
// Determinism contract: node ids, structure, and the emitted RekeyMessage
// are byte-identical to SeedWglKeyTree (the retained pre-flat
// implementation) on every schedule — pinned by
// tests/keytree_differential_test.cc. The greedy descents reproduce the
// seed's BFS tie-breaks exactly: the BFS-first node of minimal depth with a
// property is the one with the lexicographically least child-position path,
// which is what descending into the first child achieving the subtree
// minimum selects.
#pragma once

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "keytree/rekey_types.h"

namespace tmesh {

// Join-placement policy (the tree-shape ablation knob; DESIGN.md §3e).
enum class WglPlacement {
  // The paper's batch algorithm [32]: extra joins attach at the shallowest
  // slack k-node, else split the shallowest u-node. Byte-identical to the
  // seed tree — the differential suite pins this mode.
  kShallowest,
  // Sakai-Yamamoto-style churn clustering: members tagged volatile (via
  // TagVolatile) are steered toward the root-child subtree with the highest
  // volatile mass — and stable members away from it — provided that subtree
  // can place the joiner within kAffinityDepthSlack of the globally
  // shallowest position; then the standard shallowest placement runs inside
  // the chosen subtree. Clustering the likely leavers makes their departure
  // paths overlap, cutting encryptions per interval under skewed churn at
  // a bounded depth cost.
  kChurnAffinity,
};

class WglKeyTree {
 public:
  // Operation counters (monotonic; ResetOpStats() zeroes them). The
  // complexity regression tests pin that the augmented scans touch
  // O(degree · depth) records — not O(N) — per call, and that a rekey
  // interval's work is proportional to the affected subtree.
  struct OpStats {
    std::uint64_t shallow_scan_steps = 0;    // ShallowLeaf + join placement
    std::uint64_t members_needing_steps = 0; // MembersNeeding node visits
    std::uint64_t aug_path_updates = 0;      // per-node aggregate recomputes
    std::uint64_t rekey_marked_nodes = 0;    // streaming-walk stamps
  };

  explicit WglKeyTree(int degree = 4,
                      WglPlacement placement = WglPlacement::kShallowest);

  // Tags a member as volatile (likely to leave soon) for kChurnAffinity
  // placement; idempotent, allowed before the member joins, and cleared
  // automatically when the member leaves. A no-op signal under kShallowest
  // (the aggregate is still maintained, the placement just ignores it).
  void TagVolatile(MemberId m, bool is_volatile);
  bool IsVolatile(MemberId m) const { return volatile_.count(m) > 0; }
  WglPlacement placement() const { return placement_; }

  // Builds a full, balanced tree over `members` (requires |members| to be a
  // power of the degree, as in the paper's 4^5 = 1024 setup). Replaces any
  // existing tree; no encryptions are emitted for the initial build (the
  // server unicasts initial keys at join time, §3.1).
  void BuildFullBalanced(const std::vector<MemberId>& members);

  // Starts empty and inserts members one by one (for non-power-of-degree
  // populations); equivalent to a sequence of batch joins.
  void BuildIncremental(const std::vector<MemberId>& members);

  // Processes one rekey interval: J joins and L leaves as a batch. Returns
  // the rekey message. All leave members must be present; all join members
  // absent.
  RekeyMessage Rekey(const std::vector<MemberId>& joins,
                     const std::vector<MemberId>& leaves);

  bool Contains(MemberId m) const { return leaf_of_.count(m) > 0; }
  int member_count() const { return static_cast<int>(leaf_of_.size()); }
  int degree() const { return degree_; }

  // Depth of the member's u-node (root = 0). O(1): depths are stored.
  int LeafDepth(MemberId m) const;

  // Number of keys the member holds (k-node keys on its root path, incl.
  // the group key, plus its individual key).
  int KeysHeld(MemberId m) const;

  // Members holding the encrypting key of `e` — exactly the members that
  // need `e` (the key being distributed sits on all of their root paths).
  // Used by the idealized splitting baseline P0'. O(answer): the output is
  // sized from the node's subtree-member range and the walk only visits the
  // encrypting node's subtree (order matches the seed exactly).
  std::vector<MemberId> MembersNeeding(const Encryption& e) const;

  // True iff the member's u-node lies below (or at) node `n`.
  bool MemberUnder(MemberId m, std::int32_t n) const;

  // (node id, key version) for every node on m's root path, leaf first —
  // exactly the keys the server unicasts to m when it joins. Used by the
  // decryption-closure tests.
  std::vector<std::pair<std::int32_t, std::uint32_t>> PathNodes(
      MemberId m) const;

  // Structural invariants (for tests): parent/child links consistent,
  // every u-node mapped, no empty k-nodes, and all stored depths and
  // subtree aggregates equal to a from-scratch recomputation.
  void CheckInvariants() const;

  const OpStats& op_stats() const { return op_stats_; }
  void ResetOpStats() { op_stats_ = OpStats{}; }

 private:
  static constexpr std::int32_t kNoDepth =
      std::numeric_limits<std::int32_t>::max();

  // Compact POD record; children are an intrusive singly linked list in
  // insertion order (the order the seed's per-node vector kept).
  struct Node {
    std::int32_t parent = -1;
    std::int32_t first_child = -1;
    std::int32_t next_sibling = -1;
    std::int32_t child_count = 0;
    MemberId member = kNoMember;  // set for u-nodes only
    std::uint32_t version = 0;    // bumped when the key is renewed
    std::int32_t depth = 0;       // root = 0
    std::int32_t min_u_depth = kNoDepth;
    std::int32_t min_slack_depth = kNoDepth;
    std::int32_t subtree_members = 0;
    std::int32_t volatile_members = 0;  // tagged u-nodes in the subtree
    std::uint32_t mark_epoch = 0;  // streaming-rekey stamp (0 = never)
    bool alive = true;
    bool IsLeaf() const { return member != kNoMember; }
  };

  Node& N(std::int32_t id) { return nodes_[static_cast<std::size_t>(id)]; }
  const Node& N(std::int32_t id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }

  std::int32_t NewNode();
  // Appends `c` at the tail of p's child list (seed push_back order).
  void AppendChild(std::int32_t p, std::int32_t c);
  // Unlinks `c` from p's child list, preserving sibling order.
  void UnlinkChild(std::int32_t p, std::int32_t c);
  // Replaces child `old_c` with `new_c` in place (seed's split splice).
  void ReplaceChild(std::int32_t p, std::int32_t old_c, std::int32_t new_c);
  // Recomputes one node's aggregates from its children.
  void PullUp(std::int32_t n);
  // PullUp from `n` to the root (after a structural change below/at n).
  void FixPath(std::int32_t n);
  // Detaches a u-node, prunes childless ancestors (root survives), marks
  // the surviving parent. Frees nodes in the seed's order (leaf upward).
  void DetachLeaf(std::int32_t leaf);
  // The BFS-first node of depth `target_depth` under `top` whose subtree
  // minimum (min_u_depth when `want_leaf`, else min_slack_depth) equals it.
  std::int32_t DescendToMin(std::int32_t top, std::int32_t target_depth,
                            bool want_leaf) const;
  std::int32_t ShallowLeaf() const;  // a u-node of minimum depth
  // The paper's placement (attach at shallowest slack, else split the
  // shallowest u-node) restricted to `top`'s subtree; `top == root_` is the
  // global algorithm.
  void PlaceInSubtree(MemberId m, std::int32_t top);
  // kChurnAffinity: the root child to place `m` under, or root_ for global
  // placement (no children, or the root itself has slack).
  std::int32_t ChooseAffinitySubtree(MemberId m) const;
  void Mark(std::int32_t n) { marked_.push_back(n); }

  // How much deeper than the globally shallowest position an affinity-chosen
  // subtree may place a joiner.
  static constexpr std::int32_t kAffinityDepthSlack = 1;

  int degree_;
  WglPlacement placement_;
  std::unordered_set<MemberId> volatile_;  // drives Node::volatile_members
  std::int32_t root_ = -1;
  std::vector<Node> nodes_;
  std::vector<std::int32_t> free_list_;
  std::unordered_map<MemberId, std::int32_t> leaf_of_;
  // Positions touched by the current interval (streamed; replaces the
  // seed's node-indexed `updated` bitmap and its O(N) end-of-interval
  // sweep). May contain duplicates and since-freed ids — exactly the set
  // the seed's bitmap represented.
  std::vector<std::int32_t> marked_;
  std::uint32_t epoch_ = 0;
  mutable OpStats op_stats_;
};

}  // namespace tmesh
