// The original key tree: Wong-Gouda-Lam key graph with periodic batch
// rekeying — the paper's baseline key-management scheme (§4.2).
//
// "The original key tree is based on the Wong-Gouda-Lam key tree [28] with
// degree 4 and the batch rekeying algorithm proposed in [32]. A degree of 4
// is proved to be optimal in terms of rekey cost per join or leave. After
// the initial 1024 users join the group, we assume that the original key
// tree is full and balanced."
//
// Unlike the modified key tree (whose shape is pinned to the ID tree), this
// tree has a fixed degree and grows/shrinks with membership:
//   - a joining u-node first takes the position of a departed u-node;
//   - extra joins split a shallowest u-node into a k-node holding the old
//     and new u-nodes;
//   - extra departures are pruned (k-nodes that lose all children vanish).
// At the end of a rekey interval the server updates every key on the path
// from each changed position to the root and emits, per updated k-node, one
// encryption per child (encrypted under the child's current/new key).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "keytree/rekey_types.h"

namespace tmesh {

class WglKeyTree {
 public:
  explicit WglKeyTree(int degree = 4);

  // Builds a full, balanced tree over `members` (requires |members| to be a
  // power of the degree, as in the paper's 4^5 = 1024 setup). Replaces any
  // existing tree; no encryptions are emitted for the initial build (the
  // server unicasts initial keys at join time, §3.1).
  void BuildFullBalanced(const std::vector<MemberId>& members);

  // Starts empty and inserts members one by one (for non-power-of-degree
  // populations); equivalent to a sequence of batch joins.
  void BuildIncremental(const std::vector<MemberId>& members);

  // Processes one rekey interval: J joins and L leaves as a batch. Returns
  // the rekey message. All leave members must be present; all join members
  // absent.
  RekeyMessage Rekey(const std::vector<MemberId>& joins,
                     const std::vector<MemberId>& leaves);

  bool Contains(MemberId m) const { return leaf_of_.count(m) > 0; }
  int member_count() const { return static_cast<int>(leaf_of_.size()); }
  int degree() const { return degree_; }

  // Depth of the member's u-node (root = 0).
  int LeafDepth(MemberId m) const;

  // Number of keys the member holds (k-node keys on its root path, incl.
  // the group key, plus its individual key).
  int KeysHeld(MemberId m) const;

  // Members holding the encrypting key of `e` — exactly the members that
  // need `e` (the key being distributed sits on all of their root paths).
  // Used by the idealized splitting baseline P0'.
  std::vector<MemberId> MembersNeeding(const Encryption& e) const;

  // True iff the member's u-node lies below (or at) node `n`.
  bool MemberUnder(MemberId m, std::int32_t n) const;

  // (node id, key version) for every node on m's root path, leaf first —
  // exactly the keys the server unicasts to m when it joins. Used by the
  // decryption-closure tests.
  std::vector<std::pair<std::int32_t, std::uint32_t>> PathNodes(
      MemberId m) const;

  // Structural invariants (for tests): parent/child links consistent,
  // every u-node mapped, no empty k-nodes.
  void CheckInvariants() const;

 private:
  struct Node {
    std::int32_t parent = -1;
    std::vector<std::int32_t> children;  // empty for u-nodes
    MemberId member = kNoMember;         // set for u-nodes only
    std::uint32_t version = 0;           // bumped when the key is renewed
    bool alive = true;
    bool IsLeaf() const { return member != kNoMember; }
  };

  std::int32_t NewNode();
  void MarkPathUpdated(std::int32_t node, std::vector<char>& updated) const;
  std::int32_t ShallowLeaf() const;  // a u-node of minimum depth
  void DetachLeaf(std::int32_t leaf, std::vector<char>& updated);

  int degree_;
  std::int32_t root_ = -1;
  std::vector<Node> nodes_;
  std::vector<std::int32_t> free_list_;
  std::unordered_map<MemberId, std::int32_t> leaf_of_;
};

}  // namespace tmesh
