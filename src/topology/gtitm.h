// GT-ITM-style transit-stub topology with end-host attachment.
//
// The paper's main evaluation substrate is "a transit-stub topology based on
// the GT-ITM topology models [6]. The topology consists of 5000 routers and
// 13000 network links" with two-way propagation delays drawn per link class:
//   stub-stub            U(0.1, 1)  ms
//   stub-transit         U(2, 3)    ms
//   transit-transit (same domain)  U(10, 15) ms
//   transit-transit (cross domain) U(75, 85) ms
// (§4). We implement the generator ourselves (the GT-ITM tool is not
// available offline): transit domains connected by a random ring-plus-chords
// pattern, per-transit-router stub domains built as random connected
// subgraphs, with default parameters tuned to land at ~5000 routers and
// ~13000 links.
//
// Members attach to distinct, uniformly chosen routers; the attachment
// router is the member's gateway, and the host-gateway RTT is zero (the
// paper attaches members directly to routers and abstracts access links on
// GT-ITM).
#pragma once

#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "topology/graph.h"
#include "topology/network.h"

namespace tmesh {

struct GtItmParams {
  std::uint64_t seed = 1;
  int transit_domains = 10;
  int transit_routers_per_domain = 10;
  // Probability of a chord between two transit routers of the same domain
  // (on top of the connecting ring).
  double intra_transit_edge_prob = 0.4;
  // Probability of an extra link between two transit domains (on top of the
  // connecting ring); the endpoint routers are chosen at random.
  double inter_transit_edge_prob = 0.5;
  int stub_domains_per_transit_router = 3;
  int stub_routers_min = 12;
  int stub_routers_max = 21;
  // Probability of a chord between two stub routers of the same stub domain
  // (on top of the connecting spanning tree).
  double intra_stub_edge_prob = 0.19;
  // Probability that a stub domain gets a second (multi-homing) link to a
  // random transit router.
  double stub_multihome_prob = 0.1;

  // Link-delay classes (two-way, ms) — the paper's values.
  double stub_delay_min = 0.1, stub_delay_max = 1.0;
  double stub_transit_delay_min = 2.0, stub_transit_delay_max = 3.0;
  double intra_transit_delay_min = 10.0, intra_transit_delay_max = 15.0;
  double inter_transit_delay_min = 75.0, inter_transit_delay_max = 85.0;
};

class GtItmNetwork : public Network {
 public:
  // Generates the router graph and attaches `hosts` members to distinct
  // uniformly-random routers (attachment randomness from `attach_seed` so
  // the same router graph can host different placements across runs).
  GtItmNetwork(const GtItmParams& params, int hosts,
               std::uint64_t attach_seed);

  int host_count() const override {
    return static_cast<int>(attach_router_.size());
  }
  double RttHosts(HostId a, HostId b) const override;
  double RttGateways(HostId a, HostId b) const override;
  double RttHostGateway(HostId) const override { return 0.0; }

  // Hosts attach to *distinct* routers, so any cross-host path crosses at
  // least one link; half the cheapest link RTT bounds the one-way delay.
  double MinCrossHostDelayMs() const override {
    return min_cross_host_delay_ms_;
  }

  bool HasRouterPaths() const override { return true; }
  int link_count() const override { return graph_.link_count(); }
  void AppendPathLinks(HostId a, HostId b,
                       std::vector<LinkId>& out) const override;

  const Graph& graph() const { return graph_; }
  RouterId attach_router(HostId h) const {
    return attach_router_[static_cast<std::size_t>(h)];
  }
  int router_count() const { return graph_.node_count(); }
  int transit_router_count() const { return transit_router_count_; }

  // The cached shortest-path tree rooted at a host's attachment router
  // (computed on demand; shared by RTT queries, path extraction, and the
  // IP-multicast baseline). Thread-safe: concurrent replicas sharing one
  // network (the ablation benches under ReplicaRunner) may query in
  // parallel; a cache miss computes the Dijkstra outside the lock and the
  // first insert wins, so the returned reference is stable for the
  // network's lifetime either way.
  const Graph::SptResult& SptFromHost(HostId h) const;
  const Graph::SptResult& SptFromRouter(RouterId r) const;

 private:
  void Generate(const GtItmParams& params);

  Graph graph_;
  int transit_router_count_ = 0;
  double min_cross_host_delay_ms_ = 0.0;
  std::vector<RouterId> attach_router_;
  mutable std::shared_mutex spt_mu_;
  mutable std::unordered_map<RouterId, std::unique_ptr<Graph::SptResult>>
      spt_cache_;
};

}  // namespace tmesh
