// Synthetic PlanetLab-like RTT matrix.
//
// The paper's second substrate is a measured RTT matrix over 227 PlanetLab
// hosts "spread in North America, Europe, Asia, and Australia" (§4), with
// one-way member delay = RTT/2. We do not have the August 2004 measurement,
// so we synthesize a matrix with the same structure the paper's protocols
// exploit (see DESIGN.md §2): hosts grouped into continents and, inside a
// continent, into sites; RTTs drawn per band:
//   same site                 U(0.5, 3) ms
//   same continent, x-site    U(10, 60) ms        (site-pair base, per-host jitter)
//   cross continent           base matrix + jitter (95..310 ms)
// plus a per-host access (host-gateway) RTT U(0.2, 5) ms, so that the
// gateway-RTT vs host-RTT distinction of §3.1.2 is exercised.
//
// The bands are chosen so the paper's delay thresholds R = (150, 30, 9, 3) ms
// are discriminative: R1≈continent, R2≈metro/site cluster, R3/R4≈LAN.
#pragma once

#include <vector>

#include "common/rng.h"
#include "topology/network.h"

namespace tmesh {

struct PlanetLabParams {
  std::uint64_t seed = 1;
  int hosts = 227;
  // Continent weights: NA, EU, Asia, AU — roughly PlanetLab's 2004 footprint.
  std::vector<double> continent_weights{0.45, 0.27, 0.20, 0.08};
  // Probability that a newly placed host starts a new site rather than
  // joining an existing site of its continent.
  double new_site_prob = 0.35;
  double same_site_rtt_min = 0.5, same_site_rtt_max = 3.0;
  double intra_continent_rtt_min = 10.0, intra_continent_rtt_max = 60.0;
  // Per-host-pair jitter added on top of the site-pair base RTT.
  double pair_jitter_max = 4.0;
  double access_rtt_min = 0.2, access_rtt_max = 5.0;
};

class PlanetLabNetwork : public Network {
 public:
  explicit PlanetLabNetwork(const PlanetLabParams& params);

  int host_count() const override { return static_cast<int>(access_rtt_.size()); }
  double RttHosts(HostId a, HostId b) const override;
  double RttGateways(HostId a, HostId b) const override;
  double RttHostGateway(HostId a) const override {
    return access_rtt_[static_cast<std::size_t>(a)];
  }

  // Exact minimum over all distinct host pairs, precomputed in the
  // constructor (the matrix is materialized anyway, so the O(N^2) scan is
  // free relative to filling it).
  double MinCrossHostDelayMs() const override {
    return min_cross_host_delay_ms_;
  }

  int continent_of(HostId h) const { return continent_[static_cast<std::size_t>(h)]; }
  int site_of(HostId h) const { return site_[static_cast<std::size_t>(h)]; }
  int site_count() const { return site_count_; }

 private:
  double& Gw(HostId a, HostId b) {
    return gw_rtt_[static_cast<std::size_t>(a) *
                       static_cast<std::size_t>(host_count()) +
                   static_cast<std::size_t>(b)];
  }
  double GwC(HostId a, HostId b) const {
    return gw_rtt_[static_cast<std::size_t>(a) *
                       static_cast<std::size_t>(access_rtt_.size()) +
                   static_cast<std::size_t>(b)];
  }

  std::vector<double> gw_rtt_;     // host_count^2 gateway-to-gateway RTTs
  std::vector<double> access_rtt_;  // host-gateway RTT per host
  std::vector<int> continent_;
  std::vector<int> site_;
  int site_count_ = 0;
  double min_cross_host_delay_ms_ = 0.0;
};

}  // namespace tmesh
