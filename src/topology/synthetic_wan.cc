#include "topology/synthetic_wan.h"

#include <algorithm>

namespace tmesh {

namespace {

// Same 2004-era inter-continent RTT bases as PlanetLabNetwork (NA, EU,
// Asia, AU).
constexpr std::array<std::array<double, 4>, 4> kContinentBaseRtt = {{
    {0.0, 95.0, 170.0, 190.0},
    {95.0, 0.0, 260.0, 310.0},
    {170.0, 260.0, 0.0, 130.0},
    {190.0, 310.0, 130.0, 0.0},
}};

// PlanetLab's 2004 footprint as cumulative thresholds over 2^64
// (0.45, 0.27, 0.20, 0.08).
constexpr std::uint64_t kContCum0 = 0x7333333333333333ull;  // 0.45
constexpr std::uint64_t kContCum1 = 0xb851eb851eb851ebull;  // 0.72
constexpr std::uint64_t kContCum2 = 0xeb851eb851eb851eull;  // 0.92

// Domain-separation salts for the per-entity hash streams.
constexpr std::uint64_t kSiteSalt = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kContSalt = 0xbf58476d1ce4e5b9ull;
constexpr std::uint64_t kAccessSalt = 0x94d049bb133111ebull;
constexpr std::uint64_t kSitePairSalt = 0xd6e8feb86659fd93ull;
constexpr std::uint64_t kHostPairSalt = 0xa5a5a5a5a5a5a5a5ull;

std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double UnitReal(std::uint64_t h) {
  // 53 high bits -> [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double RealIn(std::uint64_t h, double lo, double hi) {
  return lo + UnitReal(h) * (hi - lo);
}

std::uint64_t PairKey(std::uint64_t lo_id, std::uint64_t hi_id) {
  return (lo_id << 32) ^ hi_id;
}

}  // namespace

SyntheticWanNetwork::SyntheticWanNetwork(const SyntheticWanParams& params)
    : seed_(params.seed), hosts_(params.hosts), sites_(params.sites),
      p_(params) {
  TMESH_CHECK(hosts_ >= 2);
  if (sites_ <= 0) sites_ = std::max(8, hosts_ / 16);
}

int SyntheticWanNetwork::site_of(HostId h) const {
  TMESH_CHECK(h >= 0 && h < hosts_);
  return static_cast<int>(Mix(seed_ ^ kSiteSalt ^ static_cast<std::uint64_t>(h)) %
                          static_cast<std::uint64_t>(sites_));
}

int SyntheticWanNetwork::ContinentOfSite(int site) const {
  std::uint64_t h = Mix(seed_ ^ kContSalt ^ static_cast<std::uint64_t>(site));
  if (h < kContCum0) return 0;
  if (h < kContCum1) return 1;
  if (h < kContCum2) return 2;
  return 3;
}

double SyntheticWanNetwork::RttHostGateway(HostId a) const {
  TMESH_CHECK(a >= 0 && a < hosts_);
  return RealIn(Mix(seed_ ^ kAccessSalt ^ static_cast<std::uint64_t>(a)),
                p_.access_rtt_min, p_.access_rtt_max);
}

double SyntheticWanNetwork::RttGateways(HostId a, HostId b) const {
  TMESH_CHECK(a >= 0 && a < hosts_ && b >= 0 && b < hosts_);
  if (a == b) return 0.0;
  const int sa = site_of(a), sb = site_of(b);
  const std::uint64_t host_pair =
      Mix(seed_ ^ kHostPairSalt ^
          PairKey(static_cast<std::uint64_t>(std::min(a, b)),
                  static_cast<std::uint64_t>(std::max(a, b))));
  if (sa == sb) {
    return RealIn(host_pair, p_.same_site_rtt_min, p_.same_site_rtt_max);
  }
  const std::uint64_t site_pair =
      Mix(seed_ ^ kSitePairSalt ^
          PairKey(static_cast<std::uint64_t>(std::min(sa, sb)),
                  static_cast<std::uint64_t>(std::max(sa, sb))));
  const int ca = ContinentOfSite(sa), cb = ContinentOfSite(sb);
  double base;
  if (ca == cb) {
    base = RealIn(site_pair, p_.intra_continent_rtt_min,
                  p_.intra_continent_rtt_max);
  } else {
    base = kContinentBaseRtt[static_cast<std::size_t>(ca)]
                            [static_cast<std::size_t>(cb)] +
           RealIn(site_pair, -15.0, 45.0);
  }
  return base + RealIn(host_pair, 0.0, p_.pair_jitter_max);
}

double SyntheticWanNetwork::RttHosts(HostId a, HostId b) const {
  if (a == b) return 0.0;
  return RttHostGateway(a) + RttGateways(a, b) + RttHostGateway(b);
}

}  // namespace tmesh
