// Weighted undirected router graph with single-source shortest paths.
//
// The evaluation topologies (§4) need two queries: the RTT between any two
// attachment routers (edge weights are two-way propagation delays, per the
// paper's GT-ITM setup, so a shortest-path distance *is* an RTT), and the
// router-level link path between two routers (for the link-stress metric of
// Fig. 13(c)).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"

namespace tmesh {

using RouterId = std::int32_t;
using LinkId = std::int32_t;

inline constexpr RouterId kNoRouter = -1;
inline constexpr LinkId kNoLink = -1;

class Graph {
 public:
  RouterId AddNode();
  // Adds an undirected edge with weight `rtt_ms` (a two-way delay). Returns
  // its LinkId; link ids are dense in [0, link_count()).
  LinkId AddEdge(RouterId a, RouterId b, double rtt_ms);

  int node_count() const { return static_cast<int>(adj_.size()); }
  int link_count() const { return static_cast<int>(links_.size()); }

  struct Link {
    RouterId a;
    RouterId b;
    double rtt_ms;
  };
  const Link& link(LinkId id) const {
    TMESH_DCHECK(id >= 0 && id < link_count());
    return links_[static_cast<std::size_t>(id)];
  }

  // The shortest-path tree rooted at one source: distance (ms, two-way),
  // parent router and parent link toward the source for every reachable node.
  struct SptResult {
    RouterId source = kNoRouter;
    std::vector<float> dist_ms;
    std::vector<RouterId> parent;
    std::vector<LinkId> parent_link;

    bool Reachable(RouterId r) const {
      return parent[static_cast<std::size_t>(r)] != kNoRouter ||
             r == source;
    }
  };

  SptResult Dijkstra(RouterId source) const;

  // Appends the link ids on the shortest path from spt.source to `dest`
  // (order: dest-side first). Precondition: dest reachable.
  void AppendPathLinks(const SptResult& spt, RouterId dest,
                       std::vector<LinkId>& out) const;

  // True iff every node is reachable from node 0 (graphs we generate must be
  // connected or RTTs would be infinite).
  bool IsConnected() const;

 private:
  struct Arc {
    RouterId to;
    LinkId link;
    float w;
  };
  std::vector<std::vector<Arc>> adj_;
  std::vector<Link> links_;
};

}  // namespace tmesh
