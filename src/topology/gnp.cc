#include "topology/gnp.h"

#include <algorithm>
#include <cmath>

namespace tmesh {

GnpModel::GnpModel(const Network& net, const Params& params)
    : dims_(params.dimensions), iterations_(params.iterations) {
  TMESH_CHECK(params.dimensions >= 1);
  TMESH_CHECK(params.landmarks >= params.dimensions + 1);
  TMESH_CHECK(params.landmarks <= net.host_count());
  Rng rng(params.seed);

  // Landmarks: a random spread of hosts.
  std::vector<HostId> all(static_cast<std::size_t>(net.host_count()));
  for (HostId h = 0; h < net.host_count(); ++h) all[static_cast<std::size_t>(h)] = h;
  rng.Shuffle(all);
  landmarks_.assign(all.begin(), all.begin() + params.landmarks);
  std::sort(landmarks_.begin(), landmarks_.end());

  coords_.assign(static_cast<std::size_t>(net.host_count()),
                 std::vector<double>(static_cast<std::size_t>(dims_), 0.0));

  // Phase 1: landmark coordinates against landmark-pair RTTs. Seed them
  // randomly in a box scaled to the largest measured RTT, then iterate:
  // each landmark re-solves its coordinates against the (current) others.
  double max_rtt = 1.0;
  for (std::size_t i = 0; i < landmarks_.size(); ++i) {
    for (std::size_t j = i + 1; j < landmarks_.size(); ++j) {
      max_rtt = std::max(max_rtt,
                         net.RttGateways(landmarks_[i], landmarks_[j]));
    }
  }
  for (HostId l : landmarks_) {
    for (double& c : coords_[static_cast<std::size_t>(l)]) {
      c = rng.UniformReal(0.0, max_rtt);
    }
  }
  for (int sweep = 0; sweep < 8; ++sweep) {
    for (HostId l : landmarks_) {
      std::vector<const std::vector<double>*> points;
      std::vector<double> targets;
      for (HostId other : landmarks_) {
        if (other == l) continue;
        points.push_back(&coords_[static_cast<std::size_t>(other)]);
        targets.push_back(net.RttGateways(l, other));
      }
      Solve(coords_[static_cast<std::size_t>(l)], points, targets, rng);
    }
  }

  // Phase 2: every other host solves against the fixed landmarks (this is
  // the per-host "L probes" step of GNP).
  for (HostId h = 0; h < net.host_count(); ++h) {
    if (std::binary_search(landmarks_.begin(), landmarks_.end(), h)) continue;
    std::vector<const std::vector<double>*> points;
    std::vector<double> targets;
    for (HostId l : landmarks_) {
      points.push_back(&coords_[static_cast<std::size_t>(l)]);
      targets.push_back(net.RttGateways(h, l));
    }
    // Start near the closest landmark.
    std::size_t best = 0;
    for (std::size_t i = 1; i < targets.size(); ++i) {
      if (targets[i] < targets[best]) best = i;
    }
    coords_[static_cast<std::size_t>(h)] = *points[best];
    Solve(coords_[static_cast<std::size_t>(h)], points, targets, rng);
  }
}

double GnpModel::Distance(const std::vector<double>& a,
                          const std::vector<double>& b) const {
  double s = 0.0;
  for (int d = 0; d < dims_; ++d) {
    double diff = a[static_cast<std::size_t>(d)] - b[static_cast<std::size_t>(d)];
    s += diff * diff;
  }
  return std::sqrt(s);
}

double GnpModel::Objective(
    const std::vector<double>& coords,
    const std::vector<const std::vector<double>*>& points,
    const std::vector<double>& targets) const {
  double err = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    double est = Distance(coords, *points[i]);
    double t = std::max(targets[i], 0.1);
    double rel = (est - targets[i]) / t;
    err += rel * rel;
  }
  return err;
}

void GnpModel::Solve(std::vector<double>& coords,
                     const std::vector<const std::vector<double>*>& points,
                     const std::vector<double>& targets, Rng& rng) {
  double best = Objective(coords, points, targets);
  // Geometric cooling of the per-axis step, starting at the scale of the
  // largest target distance.
  double step = 1.0;
  for (double t : targets) step = std::max(step, t);
  for (int it = 0; it < iterations_; ++it) {
    bool improved = false;
    for (int d = 0; d < dims_; ++d) {
      for (double dir : {+1.0, -1.0}) {
        auto& c = coords[static_cast<std::size_t>(d)];
        double old = c;
        c = old + dir * step;
        double e = Objective(coords, points, targets);
        if (e < best) {
          best = e;
          improved = true;
        } else {
          c = old;
        }
      }
    }
    if (!improved) {
      step *= 0.5;
      if (step < 1e-3) break;
    }
    // A rare random kick escapes shallow local minima deterministically.
    if (it % 16 == 15 && rng.Bernoulli(0.25)) {
      int d = static_cast<int>(rng.UniformInt(0, dims_ - 1));
      auto& c = coords[static_cast<std::size_t>(d)];
      double old = c;
      c = old + rng.UniformReal(-step, step);
      double e = Objective(coords, points, targets);
      if (e < best) {
        best = e;
      } else {
        c = old;
      }
    }
  }
}

double GnpModel::EstimatedRtt(HostId a, HostId b) const {
  if (a == b) return 0.0;
  return Distance(coords_[static_cast<std::size_t>(a)],
                  coords_[static_cast<std::size_t>(b)]);
}

const std::vector<double>& GnpModel::CoordinatesOf(HostId h) const {
  return coords_[static_cast<std::size_t>(h)];
}

double GnpModel::MeanRelativeError(const Network& net, int samples,
                                   std::uint64_t seed) const {
  Rng rng(seed);
  double sum = 0.0;
  int n = 0;
  for (int i = 0; i < samples; ++i) {
    HostId a = static_cast<HostId>(rng.UniformInt(0, net.host_count() - 1));
    HostId b = static_cast<HostId>(rng.UniformInt(0, net.host_count() - 1));
    if (a == b) continue;
    double truth = net.RttGateways(a, b);
    if (truth < 0.5) continue;
    sum += std::abs(EstimatedRtt(a, b) - truth) / truth;
    ++n;
  }
  return n > 0 ? sum / n : 0.0;
}

}  // namespace tmesh
