#include "topology/planetlab.h"

#include <array>

namespace tmesh {

namespace {
// Approximate 2004-era inter-continent RTT bases in ms (NA, EU, Asia, AU).
constexpr std::array<std::array<double, 4>, 4> kContinentBaseRtt = {{
    {0.0, 95.0, 170.0, 190.0},
    {95.0, 0.0, 260.0, 310.0},
    {170.0, 260.0, 0.0, 130.0},
    {190.0, 310.0, 130.0, 0.0},
}};
}  // namespace

PlanetLabNetwork::PlanetLabNetwork(const PlanetLabParams& params) {
  TMESH_CHECK(params.hosts >= 2);
  TMESH_CHECK(params.continent_weights.size() == 4);
  Rng rng(params.seed);
  const int n = params.hosts;

  continent_.resize(static_cast<std::size_t>(n));
  site_.resize(static_cast<std::size_t>(n));
  access_rtt_.resize(static_cast<std::size_t>(n));
  std::vector<std::vector<int>> sites_of_continent(4);  // site ids per continent
  std::vector<int> site_continent;                      // continent per site

  for (int h = 0; h < n; ++h) {
    int c = static_cast<int>(rng.Weighted(params.continent_weights));
    continent_[static_cast<std::size_t>(h)] = c;
    auto& sites = sites_of_continent[static_cast<std::size_t>(c)];
    int site;
    if (sites.empty() || rng.Bernoulli(params.new_site_prob)) {
      site = site_count_++;
      sites.push_back(site);
      site_continent.push_back(c);
    } else {
      site = sites[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(sites.size()) - 1))];
    }
    site_[static_cast<std::size_t>(h)] = site;
    access_rtt_[static_cast<std::size_t>(h)] =
        rng.UniformReal(params.access_rtt_min, params.access_rtt_max);
  }

  // Per-site-pair base RTTs keep the matrix metric-like: hosts of the same
  // two sites see the same base, plus small per-pair jitter.
  std::vector<double> site_pair_base(
      static_cast<std::size_t>(site_count_) *
      static_cast<std::size_t>(site_count_), 0.0);
  auto base_at = [&](int s1, int s2) -> double& {
    return site_pair_base[static_cast<std::size_t>(s1) *
                              static_cast<std::size_t>(site_count_) +
                          static_cast<std::size_t>(s2)];
  };
  for (int s1 = 0; s1 < site_count_; ++s1) {
    for (int s2 = s1 + 1; s2 < site_count_; ++s2) {
      int c1 = site_continent[static_cast<std::size_t>(s1)];
      int c2 = site_continent[static_cast<std::size_t>(s2)];
      double base;
      if (c1 == c2) {
        base = rng.UniformReal(params.intra_continent_rtt_min,
                               params.intra_continent_rtt_max);
      } else {
        base = kContinentBaseRtt[static_cast<std::size_t>(c1)]
                                [static_cast<std::size_t>(c2)] +
               rng.UniformReal(-15.0, 45.0);
      }
      base_at(s1, s2) = base_at(s2, s1) = base;
    }
  }

  gw_rtt_.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                 0.0);
  for (HostId a = 0; a < n; ++a) {
    for (HostId b = a + 1; b < n; ++b) {
      int sa = site_[static_cast<std::size_t>(a)];
      int sb = site_[static_cast<std::size_t>(b)];
      double rtt;
      if (sa == sb) {
        rtt = rng.UniformReal(params.same_site_rtt_min,
                              params.same_site_rtt_max);
      } else {
        rtt = base_at(sa, sb) + rng.UniformReal(0.0, params.pair_jitter_max);
      }
      Gw(a, b) = Gw(b, a) = rtt;
    }
  }

  // Exact lookahead bound: min one-way delay over all distinct host pairs.
  double min_rtt = 0.0;
  for (HostId a = 0; a < n; ++a) {
    for (HostId b = a + 1; b < n; ++b) {
      const double rtt = access_rtt_[static_cast<std::size_t>(a)] + GwC(a, b) +
                         access_rtt_[static_cast<std::size_t>(b)];
      if (min_rtt == 0.0 || rtt < min_rtt) min_rtt = rtt;
    }
  }
  min_cross_host_delay_ms_ = min_rtt / 2.0;
}

double PlanetLabNetwork::RttGateways(HostId a, HostId b) const {
  if (a == b) return 0.0;
  return GwC(a, b);
}

double PlanetLabNetwork::RttHosts(HostId a, HostId b) const {
  if (a == b) return 0.0;
  return access_rtt_[static_cast<std::size_t>(a)] + GwC(a, b) +
         access_rtt_[static_cast<std::size_t>(b)];
}

}  // namespace tmesh
