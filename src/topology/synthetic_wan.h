// Hash-derived banded WAN with O(1) storage per query.
//
// PlanetLabNetwork materializes a host_count^2 RTT matrix, which caps it at a
// few thousand hosts. This network keeps the same banded structure (hosts in
// sites, sites in continents, RTT = access + gateway band + jitter; see
// planetlab.h and DESIGN.md §2) but derives every quantity on demand from a
// SplitMix64 hash of (seed, host/site/pair), so 10^5..10^6-host directories —
// the `fuzz_churn --scale` through-directory mode and the degree-sweep
// ablations — pay a few hash mixes per RTT probe and no per-pair memory.
//
// Same-band constants as PlanetLabNetwork:
//   same site                 U(0.5, 3) ms
//   same continent, x-site    U(10, 60) ms site-pair base + U(0, 4) jitter
//   cross continent           2004-era base matrix + U(-15, 45) + jitter
//   host-gateway access       U(0.2, 5) ms
// The draws are hash-indexed rather than sequential, so the two networks
// produce different (but same-shaped) matrices for a given seed.
#pragma once

#include <array>
#include <cstdint>

#include "topology/network.h"

namespace tmesh {

struct SyntheticWanParams {
  std::uint64_t seed = 1;
  int hosts = 100000;
  // Number of sites; 0 means max(8, hosts / 16). Continents are assigned
  // per site with PlanetLab's 2004 footprint weights (NA/EU/Asia/AU).
  int sites = 0;
  double same_site_rtt_min = 0.5, same_site_rtt_max = 3.0;
  double intra_continent_rtt_min = 10.0, intra_continent_rtt_max = 60.0;
  double pair_jitter_max = 4.0;
  double access_rtt_min = 0.2, access_rtt_max = 5.0;
};

class SyntheticWanNetwork : public Network {
 public:
  explicit SyntheticWanNetwork(const SyntheticWanParams& params);

  int host_count() const override { return hosts_; }
  double RttHosts(HostId a, HostId b) const override;
  double RttGateways(HostId a, HostId b) const override;
  double RttHostGateway(HostId a) const override;

  // Analytic lookahead bound from the band minima: every distinct pair pays
  // two access legs plus at least the same-site gateway band, so
  // RTT >= 2*access_rtt_min + same_site_rtt_min regardless of which band the
  // hash draws land in. Not tight, but valid for every (seed, pair) — which
  // is all the conservative parallel driver needs.
  double MinCrossHostDelayMs() const override {
    return (2.0 * p_.access_rtt_min + p_.same_site_rtt_min) / 2.0;
  }

  int continent_of(HostId h) const { return ContinentOfSite(site_of(h)); }
  int site_of(HostId h) const;
  int site_count() const { return sites_; }

 private:
  int ContinentOfSite(int site) const;

  std::uint64_t seed_;
  int hosts_;
  int sites_;
  SyntheticWanParams p_;
};

}  // namespace tmesh
