#include "topology/graph.h"

#include <queue>

namespace tmesh {

RouterId Graph::AddNode() {
  adj_.emplace_back();
  return static_cast<RouterId>(adj_.size() - 1);
}

LinkId Graph::AddEdge(RouterId a, RouterId b, double rtt_ms) {
  TMESH_CHECK(a >= 0 && a < node_count());
  TMESH_CHECK(b >= 0 && b < node_count());
  TMESH_CHECK(a != b);
  TMESH_CHECK(rtt_ms > 0.0);
  LinkId id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{a, b, rtt_ms});
  float w = static_cast<float>(rtt_ms);
  adj_[static_cast<std::size_t>(a)].push_back(Arc{b, id, w});
  adj_[static_cast<std::size_t>(b)].push_back(Arc{a, id, w});
  return id;
}

Graph::SptResult Graph::Dijkstra(RouterId source) const {
  TMESH_CHECK(source >= 0 && source < node_count());
  const std::size_t n = adj_.size();
  SptResult res;
  res.source = source;
  res.dist_ms.assign(n, std::numeric_limits<float>::infinity());
  res.parent.assign(n, kNoRouter);
  res.parent_link.assign(n, kNoLink);

  using Item = std::pair<float, RouterId>;  // (dist, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  res.dist_ms[static_cast<std::size_t>(source)] = 0.0f;
  pq.push({0.0f, source});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > res.dist_ms[static_cast<std::size_t>(u)]) continue;  // stale
    for (const Arc& arc : adj_[static_cast<std::size_t>(u)]) {
      float nd = d + arc.w;
      auto v = static_cast<std::size_t>(arc.to);
      if (nd < res.dist_ms[v]) {
        res.dist_ms[v] = nd;
        res.parent[v] = u;
        res.parent_link[v] = arc.link;
        pq.push({nd, arc.to});
      }
    }
  }
  return res;
}

void Graph::AppendPathLinks(const SptResult& spt, RouterId dest,
                            std::vector<LinkId>& out) const {
  TMESH_CHECK(dest >= 0 && dest < node_count());
  TMESH_CHECK_MSG(spt.Reachable(dest), "destination unreachable from source");
  RouterId cur = dest;
  while (cur != spt.source) {
    LinkId l = spt.parent_link[static_cast<std::size_t>(cur)];
    TMESH_DCHECK(l != kNoLink);
    out.push_back(l);
    cur = spt.parent[static_cast<std::size_t>(cur)];
  }
}

bool Graph::IsConnected() const {
  if (adj_.empty()) return true;
  std::vector<char> seen(adj_.size(), 0);
  std::vector<RouterId> stack{0};
  seen[0] = 1;
  std::size_t count = 1;
  while (!stack.empty()) {
    RouterId u = stack.back();
    stack.pop_back();
    for (const Arc& arc : adj_[static_cast<std::size_t>(u)]) {
      if (!seen[static_cast<std::size_t>(arc.to)]) {
        seen[static_cast<std::size_t>(arc.to)] = 1;
        ++count;
        stack.push_back(arc.to);
      }
    }
  }
  return count == adj_.size();
}

}  // namespace tmesh
