// Global Network Positioning (GNP) — Ng & Zhang, INFOCOM 2002.
//
// §5 of the paper: "Ng and Zhang proposed a global network positioning
// scheme. With this scheme, the delay between two hosts can be estimated
// using their GNP coordinates. This scheme can be used in our system to
// reduce the probing cost of each joining user. For example, if the key
// server knows the GNP coordinates of all the users, it can determine the
// ID for a joining user by centralized computing."
//
// This module implements the landmark-based embedding: a small set of
// landmark hosts fits coordinates in a low-dimensional space against their
// measured pairwise RTTs; every other host then solves its own coordinates
// against the landmarks only (L probes per host instead of N). Estimated
// RTT = Euclidean distance. Fitting minimizes squared relative error by
// randomized coordinate descent — simple, deterministic per seed, and
// faithful to the original scheme's structure.
//
// IdAssignParams::gnp can point at a fitted model: the ID-assignment
// protocols then use coordinate-based RTT estimates (with their real
// estimation error) instead of fresh probes.
#pragma once

#include <vector>

#include "common/rng.h"
#include "topology/network.h"

namespace tmesh {

class GnpModel {
 public:
  struct Params {
    int dimensions = 5;   // the original paper's sweet spot is 5-7
    int landmarks = 15;
    int iterations = 60;  // coordinate-descent sweeps
    std::uint64_t seed = 1;
  };

  // Fits coordinates for every host of `net` using gateway RTTs (the
  // quantity the ID-assignment protocol estimates, §3.1.2).
  GnpModel(const Network& net, const Params& params);

  double EstimatedRtt(HostId a, HostId b) const;
  const std::vector<double>& CoordinatesOf(HostId h) const;
  const std::vector<HostId>& landmarks() const { return landmarks_; }

  // Mean relative estimation error |est - true| / true over `samples`
  // random host pairs — the standard GNP quality metric.
  double MeanRelativeError(const Network& net, int samples,
                           std::uint64_t seed) const;

 private:
  double Distance(const std::vector<double>& a,
                  const std::vector<double>& b) const;
  // Relative-error objective of placing `coords` at distance targets
  // (targets[i] against points[i]).
  double Objective(const std::vector<double>& coords,
                   const std::vector<const std::vector<double>*>& points,
                   const std::vector<double>& targets) const;
  // Randomized coordinate descent from a seeded start.
  void Solve(std::vector<double>& coords,
             const std::vector<const std::vector<double>*>& points,
             const std::vector<double>& targets, Rng& rng);

  int dims_;
  int iterations_;
  std::vector<HostId> landmarks_;
  std::vector<std::vector<double>> coords_;  // per host
};

}  // namespace tmesh
