// The network abstraction every protocol in this library runs over.
//
// A Network exposes the measurements the paper's protocols use:
//   - end-host RTT h(u,w) — what neighbor-table entries store (§2.2 fn. 2);
//   - gateway-router RTT r(u,w) — what the ID-assignment protocol compares
//     against the delay thresholds R_i (§3.1.2: "u uses r(u,w) instead of
//     h(u,w) to estimate whether it is close to w topologically");
//   - the host-gateway RTT needed to derive one from the other;
//   - optionally, the router-level link path between two hosts, for the
//     link-stress / encryptions-per-link metrics (Fig. 13(c)).
//
// One-way latency is modeled as RTT/2, exactly as the paper sets "one-way
// delay between two members to be half of their RTT" (§4).
#pragma once

#include <cstdint>
#include <vector>

#include "topology/graph.h"

namespace tmesh {

using HostId = std::int32_t;
inline constexpr HostId kNoHost = -1;

class Network {
 public:
  virtual ~Network() = default;

  virtual int host_count() const = 0;

  // End-host round-trip time in milliseconds.
  virtual double RttHosts(HostId a, HostId b) const = 0;

  // RTT between the gateway (first-hop) routers of a and b.
  virtual double RttGateways(HostId a, HostId b) const = 0;

  // RTT between a host and its own gateway router.
  virtual double RttHostGateway(HostId a) const = 0;

  // One-way end-host latency = RTT/2.
  double OneWayDelayMs(HostId a, HostId b) const {
    return a == b ? 0.0 : RttHosts(a, b) / 2.0;
  }

  // A positive lower bound (ms) on OneWayDelayMs(a, b) over all pairs of
  // *distinct* hosts — the conservative-parallel-simulation lookahead
  // (sim/parallel_driver.h): no event at one host can affect another host
  // sooner than this, so partitions may run [T, T+lookahead) windows
  // independently. The bound need not be tight, only valid; topologies
  // without a cheap bound return 0.0, which means "no lookahead, parallel
  // driving unavailable".
  virtual double MinCrossHostDelayMs() const { return 0.0; }

  // Router-level paths (for link-stress metrics). Networks without a router
  // graph (the PlanetLab RTT matrix) return false and the metrics layer
  // skips per-link accounting.
  virtual bool HasRouterPaths() const { return false; }
  virtual int link_count() const { return 0; }
  // Appends the LinkIds on the unicast path from a to b. Only valid when
  // HasRouterPaths(). Hosts on the same router yield an empty path.
  virtual void AppendPathLinks(HostId a, HostId b,
                               std::vector<LinkId>& out) const {
    (void)a;
    (void)b;
    (void)out;
    TMESH_CHECK_MSG(false, "this network has no router-level paths");
  }
};

}  // namespace tmesh
