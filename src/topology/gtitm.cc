#include "topology/gtitm.h"

#include <algorithm>
#include <mutex>

namespace tmesh {

GtItmNetwork::GtItmNetwork(const GtItmParams& params, int hosts,
                           std::uint64_t attach_seed) {
  Generate(params);
  TMESH_CHECK_MSG(hosts <= graph_.node_count(),
                  "more hosts than routers; cannot attach distinctly");
  // Attach hosts to distinct uniformly-random routers (partial Fisher-Yates
  // over the router id range).
  Rng rng(attach_seed);
  std::vector<RouterId> routers(static_cast<std::size_t>(graph_.node_count()));
  for (int i = 0; i < graph_.node_count(); ++i) routers[static_cast<std::size_t>(i)] = i;
  rng.Shuffle(routers);
  attach_router_.assign(routers.begin(), routers.begin() + hosts);

  // Lookahead bound: distinct attachment routers mean every cross-host path
  // traverses >= 1 link, so min link RTT / 2 lower-bounds the one-way delay.
  double min_link = 0.0;
  for (LinkId l = 0; l < graph_.link_count(); ++l) {
    const double rtt = graph_.link(l).rtt_ms;
    if (min_link == 0.0 || rtt < min_link) min_link = rtt;
  }
  min_cross_host_delay_ms_ = min_link / 2.0;
}

void GtItmNetwork::Generate(const GtItmParams& params) {
  Rng rng(params.seed);
  auto delay = [&rng](double lo, double hi) { return rng.UniformReal(lo, hi); };

  const int td = params.transit_domains;
  const int tr = params.transit_routers_per_domain;
  TMESH_CHECK(td >= 1 && tr >= 1);

  // Transit routers: domain d holds routers [d*tr, (d+1)*tr).
  for (int i = 0; i < td * tr; ++i) graph_.AddNode();
  transit_router_count_ = td * tr;

  // Intra-domain transit mesh: connecting ring + random chords.
  for (int d = 0; d < td; ++d) {
    const RouterId base = d * tr;
    if (tr > 1) {
      for (int i = 0; i < tr; ++i) {
        RouterId a = base + i;
        RouterId b = base + (i + 1) % tr;
        if (tr == 2 && i == 1) break;  // avoid duplicating the single edge
        graph_.AddEdge(a, b,
                       delay(params.intra_transit_delay_min,
                             params.intra_transit_delay_max));
      }
      for (int i = 0; i < tr; ++i) {
        for (int j = i + 2; j < tr; ++j) {
          if (i == 0 && j == tr - 1) continue;  // ring already has it
          if (rng.Bernoulli(params.intra_transit_edge_prob)) {
            graph_.AddEdge(base + i, base + j,
                           delay(params.intra_transit_delay_min,
                                 params.intra_transit_delay_max));
          }
        }
      }
    }
  }

  // Inter-domain links: ring over domains (guarantees connectivity) plus
  // random extras; endpoints are random routers of each domain.
  auto random_router_of = [&](int domain) {
    return domain * tr + static_cast<RouterId>(rng.UniformInt(0, tr - 1));
  };
  if (td > 1) {
    for (int d = 0; d < td; ++d) {
      int e = (d + 1) % td;
      if (td == 2 && d == 1) break;
      graph_.AddEdge(random_router_of(d), random_router_of(e),
                     delay(params.inter_transit_delay_min,
                           params.inter_transit_delay_max));
    }
    for (int d = 0; d < td; ++d) {
      for (int e = d + 2; e < td; ++e) {
        if (d == 0 && e == td - 1) continue;
        if (rng.Bernoulli(params.inter_transit_edge_prob)) {
          graph_.AddEdge(random_router_of(d), random_router_of(e),
                         delay(params.inter_transit_delay_min,
                               params.inter_transit_delay_max));
        }
      }
    }
  }

  // Stub domains: for each transit router, a fixed number of stub domains,
  // each a random tree plus chords, homed on the transit router.
  for (RouterId t = 0; t < transit_router_count_; ++t) {
    for (int s = 0; s < params.stub_domains_per_transit_router; ++s) {
      int size = static_cast<int>(
          rng.UniformInt(params.stub_routers_min, params.stub_routers_max));
      std::vector<RouterId> stub;
      stub.reserve(static_cast<std::size_t>(size));
      for (int i = 0; i < size; ++i) {
        RouterId r = graph_.AddNode();
        stub.push_back(r);
        if (i > 0) {
          // Random-parent tree keeps the stub connected with low diameter.
          RouterId parent = stub[static_cast<std::size_t>(
              rng.UniformInt(0, i - 1))];
          graph_.AddEdge(r, parent,
                         delay(params.stub_delay_min, params.stub_delay_max));
        }
      }
      for (int i = 0; i < size; ++i) {
        for (int j = i + 1; j < size; ++j) {
          if (rng.Bernoulli(params.intra_stub_edge_prob)) {
            graph_.AddEdge(stub[static_cast<std::size_t>(i)],
                           stub[static_cast<std::size_t>(j)],
                           delay(params.stub_delay_min, params.stub_delay_max));
          }
        }
      }
      // Home link to the owning transit router, plus optional multi-homing.
      RouterId home = stub[static_cast<std::size_t>(
          rng.UniformInt(0, size - 1))];
      graph_.AddEdge(home, t,
                     delay(params.stub_transit_delay_min,
                           params.stub_transit_delay_max));
      if (rng.Bernoulli(params.stub_multihome_prob)) {
        RouterId other_t =
            static_cast<RouterId>(rng.UniformInt(0, transit_router_count_ - 1));
        if (other_t != t) {
          graph_.AddEdge(stub[static_cast<std::size_t>(
                             rng.UniformInt(0, size - 1))],
                         other_t,
                         delay(params.stub_transit_delay_min,
                               params.stub_transit_delay_max));
        }
      }
    }
  }

  TMESH_CHECK_MSG(graph_.IsConnected(), "generated topology must be connected");
}

const Graph::SptResult& GtItmNetwork::SptFromRouter(RouterId r) const {
  {
    std::shared_lock<std::shared_mutex> lk(spt_mu_);
    auto it = spt_cache_.find(r);
    if (it != spt_cache_.end()) return *it->second;
  }
  // Compute outside the lock (Dijkstra over ~5000 routers dwarfs any lock
  // cost); racing computations of the same root produce identical trees and
  // the first emplace wins.
  auto spt = std::make_unique<Graph::SptResult>(graph_.Dijkstra(r));
  std::unique_lock<std::shared_mutex> lk(spt_mu_);
  auto [it, inserted] = spt_cache_.emplace(r, std::move(spt));
  return *it->second;
}

const Graph::SptResult& GtItmNetwork::SptFromHost(HostId h) const {
  return SptFromRouter(attach_router(h));
}

double GtItmNetwork::RttHosts(HostId a, HostId b) const {
  if (a == b) return 0.0;
  return RttGateways(a, b);
}

double GtItmNetwork::RttGateways(HostId a, HostId b) const {
  RouterId ra = attach_router(a), rb = attach_router(b);
  if (ra == rb) return 0.0;
  const auto& spt = SptFromRouter(ra);
  return static_cast<double>(spt.dist_ms[static_cast<std::size_t>(rb)]);
}

void GtItmNetwork::AppendPathLinks(HostId a, HostId b,
                                   std::vector<LinkId>& out) const {
  RouterId ra = attach_router(a), rb = attach_router(b);
  if (ra == rb) return;
  graph_.AppendPathLinks(SptFromRouter(ra), rb, out);
}

}  // namespace tmesh
