// The NICE application-layer multicast protocol (Banerjee, Bhattacharjee,
// Kommareddy, SIGCOMM 2002) — the paper's comparison ALM scheme (§4).
//
// Re-implemented from the protocol description, as the paper itself did
// ("we simulate the NICE protocol based on its protocol description and the
// authors' simulation code"; §4 fn. 7). Members form clusters of size
// [k, 3k-1] (k = 3, so "each cluster contains three to eight users") in
// layers: every member is in layer 0; the leader (graph-theoretic center)
// of each layer-i cluster also belongs to layer i+1; the top layer is a
// single cluster whose leader is the root of the hierarchy.
//
// Joins are sequential (§4: "a user will not join or leave the group until
// the previous join or leave terminates"): a joiner descends from the root,
// at each layer picking the cluster leader closest to it, and joins that
// leader's layer-0 cluster. Oversized clusters split, undersized clusters
// merge with the nearest cluster of their layer, and leadership follows the
// cluster center.
//
// Delivery: the control hierarchy implies the data paths. A member
// receiving a message from one of its clusters forwards it to every other
// cluster it belongs to; since the member-cluster incidence graph is a
// tree, every member receives exactly one copy. A data sender floods from
// its own clusters (the paper's "bottom-up and then top-down fashion"); a
// rekey message is unicast by the key server to the root first (§4.1.1:
// NICE has no notion of a key server, so the server "unicasts the message
// to the root of the NICE tree").
#pragma once

#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "topology/network.h"

namespace tmesh {

struct NiceParams {
  int k = 3;  // cluster size bounds [k, 3k-1]
};

class NiceOverlay {
 public:
  NiceOverlay(const Network& net, NiceParams params = {});

  void Join(HostId h);
  void Leave(HostId h);
  bool Contains(HostId h) const { return pos_.count(h) > 0; }
  int member_count() const { return static_cast<int>(pos_.size()); }
  int layer_count() const { return static_cast<int>(layers_.size()); }
  // The leader of the single top-layer cluster — "the topological center of
  // all the users in the group".
  HostId root() const;

  // One multicast session's outcome, per host id.
  struct Delivery {
    std::vector<int> copies;       // exact-once: 1 for every member
    std::vector<HostId> parent;    // kNoHost for the origin
    std::vector<double> delay_ms;  // from session start
    std::vector<int> stress;       // copies sent (the paper's user stress)
    HostId origin = kNoHost;
    int messages = 0;

    int ReceivedCount() const {
      int n = 0;
      for (int c : copies) n += c > 0 ? 1 : 0;
      return n;
    }
  };

  // Rekey transport: server -> root unicast, then top-down flood. `server`
  // is a host outside the overlay.
  Delivery RekeyFromServer(HostId server) const;
  // Data transport: member `sender` floods from its own clusters.
  Delivery DataFrom(HostId sender) const;

  // Structural invariants; throws on violation.
  void CheckInvariants() const;

 private:
  struct Cluster {
    int layer = 0;
    std::vector<HostId> members;
    HostId leader = kNoHost;
  };

  double Rtt(HostId a, HostId b) const { return net_.RttHosts(a, b); }
  HostId CenterOf(const std::vector<HostId>& members) const;
  int ClusterIdOf(HostId h, int layer) const;
  Cluster& ClusterAt(int cid) { return clusters_.at(cid); }
  const Cluster& ClusterAt(int cid) const { return clusters_.at(cid); }

  int NewCluster(int layer);
  void EraseCluster(int cid);

  // Places h into the given cluster (bookkeeping only), then fixes bounds
  // and leadership.
  void AddMember(HostId h, int cid);
  // Removes h from its cluster at `layer`, reassigning leadership and
  // cascading through upper layers as needed.
  void RemoveFromLayer(HostId h, int layer);

  void FixUp(int cid);
  void MaybeSplit(int cid);
  void MaybeMerge(int cid);
  void ReelectLeader(int cid);
  void ChangeLeader(int cid, HostId next);
  void CollapseTop();

  Delivery Flood(HostId origin, double initial_delay_ms,
                 HostId external_parent) const;

  const Network& net_;
  NiceParams params_;
  std::unordered_map<int, Cluster> clusters_;
  std::vector<std::vector<int>> layers_;           // cids per layer
  std::unordered_map<HostId, std::vector<int>> pos_;  // cid per layer, 0..top
  int next_cid_ = 0;
};

}  // namespace tmesh
