#include "nice/nice_overlay.h"

#include <algorithm>
#include <queue>
#include <tuple>

namespace tmesh {

NiceOverlay::NiceOverlay(const Network& net, NiceParams params)
    : net_(net), params_(params) {
  TMESH_CHECK(params_.k >= 2);
}

HostId NiceOverlay::CenterOf(const std::vector<HostId>& members) const {
  TMESH_CHECK(!members.empty());
  HostId best = members[0];
  double best_radius = -1.0;
  for (HostId c : members) {
    double radius = 0.0;
    for (HostId m : members) {
      if (m != c) radius = std::max(radius, Rtt(c, m));
    }
    if (best_radius < 0.0 || radius < best_radius ||
        (radius == best_radius && c < best)) {
      best = c;
      best_radius = radius;
    }
  }
  return best;
}

int NiceOverlay::ClusterIdOf(HostId h, int layer) const {
  auto it = pos_.find(h);
  TMESH_CHECK(it != pos_.end());
  TMESH_CHECK(layer >= 0 &&
              layer < static_cast<int>(it->second.size()));
  return it->second[static_cast<std::size_t>(layer)];
}

int NiceOverlay::NewCluster(int layer) {
  int cid = next_cid_++;
  Cluster c;
  c.layer = layer;
  clusters_.emplace(cid, std::move(c));
  if (static_cast<int>(layers_.size()) <= layer) {
    layers_.resize(static_cast<std::size_t>(layer) + 1);
  }
  layers_[static_cast<std::size_t>(layer)].push_back(cid);
  return cid;
}

void NiceOverlay::EraseCluster(int cid) {
  int layer = ClusterAt(cid).layer;
  auto& row = layers_[static_cast<std::size_t>(layer)];
  row.erase(std::find(row.begin(), row.end(), cid));
  clusters_.erase(cid);
  while (!layers_.empty() && layers_.back().empty()) layers_.pop_back();
}

void NiceOverlay::AddMember(HostId h, int cid) {
  Cluster& c = ClusterAt(cid);
  auto& p = pos_[h];
  TMESH_CHECK_MSG(static_cast<int>(p.size()) == c.layer,
                  "member must enter layers bottom-up");
  p.push_back(cid);
  c.members.push_back(h);
  FixUp(cid);
}

void NiceOverlay::ReelectLeader(int cid) {
  Cluster& c = ClusterAt(cid);
  HostId center = CenterOf(c.members);
  if (center != c.leader) ChangeLeader(cid, center);
}

void NiceOverlay::ChangeLeader(int cid, HostId next) {
  Cluster& c = ClusterAt(cid);
  HostId old = c.leader;
  if (old == next) return;
  c.leader = next;
  if (c.layer == static_cast<int>(layers_.size()) - 1) {
    return;  // top layer: no super-cluster to adjust
  }
  // The old leader sits in a layer-(l+1) cluster; the new one replaces it.
  TMESH_CHECK(old != kNoHost);
  TMESH_CHECK(static_cast<int>(pos_.at(old).size()) > c.layer + 1);
  int parent = pos_.at(old)[static_cast<std::size_t>(c.layer) + 1];
  AddMember(next, parent);
  RemoveFromLayer(old, c.layer + 1);
}

void NiceOverlay::RemoveFromLayer(HostId h, int layer) {
  int cid = ClusterIdOf(h, layer);
  Cluster& c = ClusterAt(cid);
  auto& p = pos_.at(h);
  bool had_above = static_cast<int>(p.size()) > layer + 1;

  if (c.leader == h) {
    if (c.members.size() == 1) {
      // The cluster vanishes with its only member.
      c.members.clear();
      p.resize(static_cast<std::size_t>(layer));
      EraseCluster(cid);
      if (had_above) RemoveFromLayer(h, layer + 1);
      CollapseTop();
      return;
    }
    // Hand leadership to the center of the remaining members first; this
    // also swaps the upper-layer slot from h to the new leader.
    std::vector<HostId> rest;
    rest.reserve(c.members.size() - 1);
    for (HostId m : c.members) {
      if (m != h) rest.push_back(m);
    }
    ChangeLeader(cid, CenterOf(rest));
  }
  // h is now a plain member of this cluster and absent from upper layers.
  Cluster& c2 = ClusterAt(cid);
  c2.members.erase(std::find(c2.members.begin(), c2.members.end(), h));
  pos_.at(h).resize(static_cast<std::size_t>(layer));
  FixUp(cid);
  CollapseTop();
}

void NiceOverlay::FixUp(int cid) {
  if (clusters_.count(cid) == 0) return;
  const Cluster& c = ClusterAt(cid);
  const int hi = 3 * params_.k - 1;
  if (static_cast<int>(c.members.size()) > hi) {
    MaybeSplit(cid);
    return;
  }
  if (static_cast<int>(c.members.size()) < params_.k &&
      layers_[static_cast<std::size_t>(c.layer)].size() > 1) {
    MaybeMerge(cid);
    return;
  }
  ReelectLeader(cid);
}

void NiceOverlay::MaybeSplit(int cid) {
  Cluster& c = ClusterAt(cid);
  const int layer = c.layer;
  HostId old = c.leader;

  // Seeds: the farthest pair of members.
  std::vector<HostId> members = c.members;
  HostId sa = members[0], sb = members[1];
  double far = -1.0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      double d = Rtt(members[i], members[j]);
      if (d > far) {
        far = d;
        sa = members[i];
        sb = members[j];
      }
    }
  }
  // Balanced locality split: order by affinity delta, halve.
  std::sort(members.begin(), members.end(), [&](HostId x, HostId y) {
    double dx = Rtt(x, sa) - Rtt(x, sb);
    double dy = Rtt(y, sa) - Rtt(y, sb);
    if (dx != dy) return dx < dy;
    return x < y;
  });
  std::size_t half = members.size() / 2;
  std::vector<HostId> a(members.begin(), members.begin() + half);
  std::vector<HostId> b(members.begin() + half, members.end());

  c.members = a;
  int cid_b = NewCluster(layer);
  ClusterAt(cid_b).members = b;
  for (HostId m : b) {
    pos_.at(m)[static_cast<std::size_t>(layer)] = cid_b;
  }
  HostId la = CenterOf(a);
  HostId lb = CenterOf(b);
  ClusterAt(cid).leader = la;
  ClusterAt(cid_b).leader = lb;

  bool was_top = layer == static_cast<int>(layers_.size()) - 1;
  if (was_top) {
    // The split top cluster spawns a new top layer over the two leaders.
    int top = NewCluster(layer + 1);
    AddMember(la, top);
    AddMember(lb, top);
    ReelectLeader(top);
    return;
  }
  // Replace `old` by the (up to two) new leaders in the parent cluster.
  int parent = pos_.at(old)[static_cast<std::size_t>(layer) + 1];
  if (la != old) {
    AddMember(la, parent);
    parent = pos_.at(old)[static_cast<std::size_t>(layer) + 1];
  }
  if (lb != old) {
    AddMember(lb, parent);
  }
  if (la != old && lb != old) {
    RemoveFromLayer(old, layer + 1);
  }
}

void NiceOverlay::MaybeMerge(int cid) {
  Cluster snapshot = ClusterAt(cid);
  const int layer = snapshot.layer;
  auto& row = layers_[static_cast<std::size_t>(layer)];
  TMESH_CHECK(row.size() > 1);

  // Merge into the cluster whose leader is nearest to ours.
  int target = -1;
  double best = 0.0;
  for (int other : row) {
    if (other == cid) continue;
    double d = Rtt(snapshot.leader, ClusterAt(other).leader);
    if (target == -1 || d < best) {
      target = other;
      best = d;
    }
  }
  TMESH_CHECK(target != -1);

  EraseCluster(cid);
  Cluster& t = ClusterAt(target);
  for (HostId m : snapshot.members) {
    pos_.at(m)[static_cast<std::size_t>(layer)] = target;
    t.members.push_back(m);
  }
  // Our old leader no longer leads anything; pull it out of upper layers
  // before re-evaluating the merged cluster.
  if (static_cast<int>(pos_.at(snapshot.leader).size()) > layer + 1) {
    RemoveFromLayer(snapshot.leader, layer + 1);
  }
  FixUp(target);
  CollapseTop();
}

void NiceOverlay::CollapseTop() {
  // A top layer whose single cluster has a single member is redundant: that
  // member is the leader of the single cluster below.
  while (layers_.size() > 1) {
    auto& top = layers_.back();
    if (top.size() != 1) break;
    Cluster& c = ClusterAt(top[0]);
    if (c.members.size() != 1) break;
    HostId h = c.members[0];
    c.members.clear();
    pos_.at(h).resize(layers_.size() - 1);
    EraseCluster(top[0]);
  }
}

void NiceOverlay::Join(HostId h) {
  TMESH_CHECK(h >= 0 && h < net_.host_count());
  TMESH_CHECK_MSG(!Contains(h), "host already joined");
  if (pos_.empty()) {
    int cid = NewCluster(0);
    Cluster& c = ClusterAt(cid);
    c.members.push_back(h);
    c.leader = h;
    pos_[h] = {cid};
    return;
  }
  // Descend leader-wise from the root (the joiner probes each layer's
  // cluster and picks the closest member).
  int top = static_cast<int>(layers_.size()) - 1;
  TMESH_CHECK(layers_[static_cast<std::size_t>(top)].size() == 1);
  int cid = layers_[static_cast<std::size_t>(top)][0];
  for (int l = top; l >= 1; --l) {
    const Cluster& c = ClusterAt(cid);
    HostId best = c.members[0];
    for (HostId m : c.members) {
      if (Rtt(h, m) < Rtt(h, best) || (Rtt(h, m) == Rtt(h, best) && m < best)) {
        best = m;
      }
    }
    cid = pos_.at(best)[static_cast<std::size_t>(l) - 1];
  }
  AddMember(h, cid);
}

void NiceOverlay::Leave(HostId h) {
  TMESH_CHECK_MSG(Contains(h), "leave of non-member");
  RemoveFromLayer(h, 0);
  auto it = pos_.find(h);
  if (it != pos_.end() && it->second.empty()) pos_.erase(it);
}

HostId NiceOverlay::root() const {
  TMESH_CHECK_MSG(!pos_.empty(), "empty overlay has no root");
  const auto& top = layers_.back();
  TMESH_CHECK(top.size() == 1);
  return ClusterAt(top[0]).leader;
}

NiceOverlay::Delivery NiceOverlay::Flood(HostId origin,
                                         double initial_delay_ms,
                                         HostId external_parent) const {
  Delivery d;
  std::size_t n = static_cast<std::size_t>(net_.host_count());
  d.copies.assign(n, 0);
  d.parent.assign(n, kNoHost);
  d.delay_ms.assign(n, -1.0);
  d.stress.assign(n, 0);
  d.origin = origin;

  // (time, seq, to, from_host, from_cid)
  using Item = std::tuple<double, std::uint64_t, HostId, HostId, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> pq;
  std::uint64_t seq = 0;
  pq.push({initial_delay_ms, seq++, origin, external_parent, -1});

  while (!pq.empty()) {
    auto [t, s, h, from, from_cid] = pq.top();
    (void)s;
    pq.pop();
    auto hi = static_cast<std::size_t>(h);
    ++d.copies[hi];
    if (d.copies[hi] > 1) continue;  // duplicate: count, don't forward
    d.delay_ms[hi] = t;
    d.parent[hi] = from;
    // Forward to every cluster this member belongs to except the one the
    // message came from.
    auto it = pos_.find(h);
    TMESH_CHECK(it != pos_.end());
    for (int cid : it->second) {
      if (cid == from_cid) continue;
      const Cluster& c = ClusterAt(cid);
      for (HostId m : c.members) {
        if (m == h) continue;
        ++d.stress[hi];
        ++d.messages;
        pq.push({t + net_.OneWayDelayMs(h, m), seq++, m, h, cid});
      }
    }
  }
  return d;
}

NiceOverlay::Delivery NiceOverlay::RekeyFromServer(HostId server) const {
  TMESH_CHECK_MSG(!pos_.empty(), "empty overlay");
  HostId r = root();
  return Flood(r, net_.OneWayDelayMs(server, r), server);
}

NiceOverlay::Delivery NiceOverlay::DataFrom(HostId sender) const {
  TMESH_CHECK_MSG(Contains(sender), "data sender must be a member");
  return Flood(sender, 0.0, kNoHost);
}

void NiceOverlay::CheckInvariants() const {
  if (pos_.empty()) {
    TMESH_CHECK(layers_.empty());
    TMESH_CHECK(clusters_.empty());
    return;
  }
  TMESH_CHECK(!layers_.empty());
  // Top layer: exactly one cluster.
  TMESH_CHECK(layers_.back().size() == 1);
  const int hi = 3 * params_.k - 1;

  for (std::size_t l = 0; l < layers_.size(); ++l) {
    for (int cid : layers_[l]) {
      const Cluster& c = ClusterAt(cid);
      TMESH_CHECK(c.layer == static_cast<int>(l));
      TMESH_CHECK(!c.members.empty());
      TMESH_CHECK_MSG(static_cast<int>(c.members.size()) <= hi,
                      "cluster above size bound");
      if (layers_[l].size() > 1) {
        TMESH_CHECK_MSG(static_cast<int>(c.members.size()) >= params_.k,
                        "undersized cluster in a multi-cluster layer");
      }
      TMESH_CHECK(std::find(c.members.begin(), c.members.end(), c.leader) !=
                  c.members.end());
      for (HostId m : c.members) {
        TMESH_CHECK(ClusterIdOf(m, static_cast<int>(l)) == cid);
        // A member appears at layer l+1 iff it leads its layer-l cluster.
        bool above = pos_.at(m).size() > l + 1;
        bool is_top = l + 1 == layers_.size();
        if (m == c.leader) {
          TMESH_CHECK(is_top ? !above : above);
        } else {
          TMESH_CHECK(!above);
        }
      }
    }
  }
  // Every member is in exactly one cluster per layer 0..top(h): implied by
  // pos_ being the single source of cluster ids, checked above; also check
  // every member appears at layer 0.
  for (const auto& [h, p] : pos_) {
    (void)h;
    TMESH_CHECK(!p.empty());
  }
  // Total layer-0 membership equals the member count.
  std::size_t total = 0;
  for (int cid : layers_[0]) total += ClusterAt(cid).members.size();
  TMESH_CHECK(total == pos_.size());
}

}  // namespace tmesh
