#include "sim/replica_runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace tmesh {

ReplicaRunner::ReplicaRunner(int threads, const Simulator::Options& sim_options)
    : threads_(threads > 0 ? threads : HardwareThreads()),
      sim_options_(sim_options) {}

int ReplicaRunner::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ReplicaRunner::Dispatch(int runs,
                             const std::function<void(Replica&)>& task) const {
  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mu;

  auto worker = [&](int w) {
    Simulator sim(sim_options_);  // one per worker; arenas persist
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= runs) return;
      sim.Reset();
      Replica r{i, w, sim, &failed};
      try {
        task(r);
      } catch (const Cancelled&) {
        // Another replica's failure is already recorded; this replica just
        // honoured the stop request mid-run.
        return;
      } catch (...) {
        {
          std::lock_guard<std::mutex> lk(error_mu);
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  const int pool_size = threads_ < runs ? threads_ : runs;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(pool_size - 1));
  for (int w = 1; w < pool_size; ++w) pool.emplace_back(worker, w);
  worker(0);  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace tmesh
