// The seed simulator, kept verbatim in behaviour as a reference.
//
// This is the binary-heap-of-std::function implementation the repository
// grew up on. It is no longer used by any protocol module — Simulator
// (sim/simulator.h) replaced it with pooled event records and a calendar
// queue — but it survives for two jobs:
//
//  * the golden-ordering fixture in simulator_determinism_test.cc proves
//    the old→new queue migration preserved the exact (time, seq) ordering
//    contract by replaying identical workloads on both;
//  * bench/micro_sim_core.cc uses it as the "before" baseline so the
//    recorded scheduler speedup (BENCH_sim_core.json) is measured against
//    the real seed implementation, not a strawman.
//
// Ordering contract (shared with Simulator): events run in strictly
// increasing (time, sequence-number) order; sequence numbers are assigned
// at Schedule* time, so simultaneous events run in schedule order.
//
// One fix relative to the seed: the seed popped the heap by moving out of
// priority_queue::top() through a const_cast, which is UB-adjacent (it
// mutates an object the container only exposes as const). This copy manages
// the heap directly with std::push_heap/std::pop_heap — std::pop_heap
// legitimately hands us a mutable reference to the extracted element at the
// back of the vector.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/check.h"
#include "sim/sim_time.h"

namespace tmesh {

class LegacySimulator {
 public:
  LegacySimulator() = default;
  LegacySimulator(const LegacySimulator&) = delete;
  LegacySimulator& operator=(const LegacySimulator&) = delete;

  SimTime Now() const { return now_; }

  // Schedules `fn` to run at Now() + delay. delay must be non-negative.
  void ScheduleIn(SimTime delay, std::function<void()> fn) {
    TMESH_CHECK(delay >= 0);
    ScheduleAt(now_ + delay, std::move(fn));
  }

  // Schedules `fn` at an absolute time >= Now().
  void ScheduleAt(SimTime when, std::function<void()> fn) {
    TMESH_CHECK_MSG(when >= now_, "cannot schedule into the past");
    heap_.push_back(Event{when, next_seq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  // Runs events until the queue drains. Returns the number of events run.
  std::size_t Run() {
    std::size_t n = 0;
    while (!heap_.empty()) {
      RunOne();
      ++n;
    }
    return n;
  }

  // Runs events with time <= deadline; leaves later events queued and
  // advances the clock to the deadline.
  std::size_t RunUntil(SimTime deadline) {
    std::size_t n = 0;
    while (!heap_.empty() && heap_.front().when <= deadline) {
      RunOne();
      ++n;
    }
    if (now_ < deadline) now_ = deadline;
    return n;
  }

  bool Empty() const { return heap_.empty(); }
  std::size_t Pending() const { return heap_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-breaker: earlier-scheduled runs first
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void RunOne() {
    // pop_heap moves the minimum to the back, where it is legitimately
    // mutable; move the closure out before erasing so re-entrant
    // scheduling is safe.
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    TMESH_DCHECK(ev.when >= now_);
    now_ = ev.when;
    ev.fn();
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<Event> heap_;  // min-heap under Later
};

}  // namespace tmesh
